/**
 * @file
 * Tests for model configurations, parameter store and footprint
 * accounting. The constants checked here are the paper's Table I and
 * Table II values.
 */

#include <gtest/gtest.h>

#include "model/config.hh"
#include "model/footprint.hh"
#include "model/model.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(ModelConfigTest, BertBaseTableI)
{
    auto c = fullConfig(ModelFamily::BertBase);
    EXPECT_EQ(c.numLayers, 12u);
    EXPECT_EQ(c.hidden, 768u);
    EXPECT_EQ(c.intermediate, 3072u);
    EXPECT_EQ(c.numFcLayers(), 73u); // 12*6 + pooler, as in Fig. 3
    EXPECT_EQ(c.headDim(), 64u);
    // 12*(4*768^2 + 2*768*3072) + 768^2 = 85,524,480 weights.
    EXPECT_EQ(c.fcWeightParams(), 85524480u);
}

TEST(ModelConfigTest, BertLargeTableI)
{
    auto c = fullConfig(ModelFamily::BertLarge);
    EXPECT_EQ(c.numLayers, 24u);
    EXPECT_EQ(c.hidden, 1024u);
    EXPECT_EQ(c.intermediate, 4096u);
    EXPECT_EQ(c.numFcLayers(), 145u); // 24*6 + pooler
    EXPECT_EQ(c.fcWeightParams(), 303038464u);
}

TEST(ModelConfigTest, FamilyNames)
{
    EXPECT_EQ(familyName(ModelFamily::BertBase), "BERT-Base");
    EXPECT_EQ(familyName(ModelFamily::RoBertaLarge), "RoBERTa-Large");
    EXPECT_EQ(fcKindName(FcKind::Intermediate), "intermediate");
    EXPECT_EQ(allFamilies().size(), 5u);
}

TEST(ModelConfigTest, MiniConfigsValid)
{
    for (auto family : allFamilies()) {
        auto mini = miniConfig(family);
        auto full = fullConfig(family);
        EXPECT_EQ(mini.numLayers, full.numLayers)
            << mini.name << ": mini keeps the layer count";
        EXPECT_LT(mini.hidden, full.hidden);
        EXPECT_EQ(mini.numFcLayers(), full.numFcLayers());
        EXPECT_NO_THROW(mini.check());
    }
}

TEST(ModelConfigTest, CheckRejectsBadConfigs)
{
    auto c = fullConfig(ModelFamily::BertBase);
    c.numHeads = 7; // 768 % 7 != 0
    EXPECT_THROW(c.check(), FatalError);
    c = fullConfig(ModelFamily::BertBase);
    c.numLayers = 0;
    EXPECT_THROW(c.check(), FatalError);
}

TEST(FootprintTest, BertBaseTableII)
{
    auto f = footprint(fullConfig(ModelFamily::BertBase));
    // Paper Table II: embeddings 89.42 MB, weights 326.26 MB, input
    // per word 3 KB, largest act per word 12 KB, activations 1.5 MB.
    EXPECT_NEAR(toMiB(f.embeddingBytes), 89.42, 0.01);
    EXPECT_NEAR(toMiB(f.weightBytes), 326.25, 0.05);
    EXPECT_NEAR(toKiB(f.inputPerWordBytes), 3.0, 0.01);
    EXPECT_NEAR(toKiB(f.largestActPerWordBytes), 12.0, 0.01);
    EXPECT_EQ(f.sequenceLength, 128u);
    EXPECT_NEAR(toMiB(f.activationBytes), 1.5, 0.01);
}

TEST(FootprintTest, BertLargeTableII)
{
    auto f = footprint(fullConfig(ModelFamily::BertLarge));
    EXPECT_NEAR(toMiB(f.embeddingBytes), 119.22, 0.01);
    EXPECT_NEAR(toMiB(f.weightBytes) / 1024.0, 1.12, 0.02); // 1.12 GB
    EXPECT_NEAR(toKiB(f.inputPerWordBytes), 4.0, 0.01);
    EXPECT_NEAR(toKiB(f.largestActPerWordBytes), 16.0, 0.01);
    EXPECT_NEAR(toMiB(f.activationBytes), 2.0, 0.01);
}

TEST(FootprintTest, EmbeddingSizesTableVII)
{
    // Paper Table VII baseline column (MiB of the word table).
    EXPECT_NEAR(toMiB(footprint(fullConfig(ModelFamily::BertBase))
                          .embeddingBytes),
                89.42, 0.01);
    EXPECT_NEAR(toMiB(footprint(fullConfig(ModelFamily::DistilBert))
                          .embeddingBytes),
                89.42, 0.01);
    EXPECT_NEAR(toMiB(footprint(fullConfig(ModelFamily::RoBerta))
                          .embeddingBytes),
                147.26, 0.01);
    EXPECT_NEAR(toMiB(footprint(fullConfig(ModelFamily::RoBertaLarge))
                          .embeddingBytes),
                196.34, 0.01);
}

TEST(BertModelTest, AllocatesConfiguredShapes)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel m(cfg);
    EXPECT_EQ(m.encoders.size(), cfg.numLayers);
    EXPECT_EQ(m.wordEmbedding.rows(), cfg.vocabSize);
    EXPECT_EQ(m.wordEmbedding.cols(), cfg.hidden);
    EXPECT_EQ(m.encoders[0].interW.rows(), cfg.intermediate);
    EXPECT_EQ(m.encoders[0].interW.cols(), cfg.hidden);
    EXPECT_EQ(m.encoders[0].outW.rows(), cfg.hidden);
    EXPECT_EQ(m.encoders[0].outW.cols(), cfg.intermediate);
    EXPECT_EQ(m.poolerW.rows(), cfg.hidden);
}

TEST(BertModelTest, LayerNormGammaStartsAtOne)
{
    BertModel m(miniConfig(ModelFamily::DistilBert));
    EXPECT_EQ(m.embLnGamma(0), 1.0f);
    EXPECT_EQ(m.encoders[0].attnLnGamma(0), 1.0f);
    EXPECT_EQ(m.encoders[0].outLnGamma(0), 1.0f);
}

TEST(BertModelTest, FcLayerEnumerationOrder)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m(cfg);
    auto layers = m.fcLayers();
    ASSERT_EQ(layers.size(), cfg.numFcLayers());
    EXPECT_EQ(layers[0].name, "encoder0.query");
    EXPECT_EQ(layers[0].kind, FcKind::Query);
    EXPECT_EQ(layers[5].name, "encoder0.output");
    EXPECT_EQ(layers[6].name, "encoder1.query");
    EXPECT_EQ(layers.back().name, "pooler");
    EXPECT_EQ(layers.back().kind, FcKind::Pooler);
    EXPECT_EQ(layers.back().encoder, cfg.numLayers);
    // The refs point into the model.
    layers[0].weight->fill(2.5f);
    EXPECT_EQ(m.encoders[0].queryW(0, 0), 2.5f);
}

TEST(BertModelTest, ConstEnumerationMatches)
{
    const BertModel m(miniConfig(ModelFamily::DistilBert));
    auto layers = m.fcLayers();
    EXPECT_EQ(layers.size(), m.config().numFcLayers());
    EXPECT_EQ(layers[2].name, "encoder0.value");
}

TEST(BertModelTest, ResizeHead)
{
    BertModel m(miniConfig(ModelFamily::BertBase));
    m.resizeHead(3);
    EXPECT_EQ(m.headW.rows(), 3u);
    EXPECT_EQ(m.headW.cols(), m.config().hidden);
    EXPECT_EQ(m.headB.size(), 3u);
    EXPECT_THROW(m.resizeHead(0), FatalError);
}

TEST(BertModelTest, ParameterCountConsistent)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m(cfg);
    // At least all FC weights + embeddings are in there.
    EXPECT_GT(m.parameterCount(),
              cfg.fcWeightParams() + cfg.wordEmbeddingParams());
}

} // namespace
} // namespace gobo
