/**
 * @file
 * Subprocess tests for tools/bench_diff.py: the machine-dependent
 * block contract (a candidate-only `pmu` block is explicitly skipped,
 * never gated), the unknown-bench error naming the known dispatch
 * keys, the micro_kernels throughput gate, and the tile-width
 * refusals — a forward candidate whose seq_tile or decode_cache_kb
 * stamp differs from the baseline's exits 2, kernel rows sharing a
 * key but disagreeing on per-result seq_tile exit 2, and a
 * candidate-only tier prints an explicit not-gated line instead of
 * failing. These run the real script with python3; hosts without an
 * interpreter skip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifdef __unix__
#include <sys/wait.h>
#endif

#ifndef GOBO_SOURCE_DIR
#error "test_benchdiff needs GOBO_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace gobo {
namespace {

bool
havePython()
{
    static const bool have =
        std::system("python3 -c pass >/dev/null 2>&1") == 0;
    return have;
}

int
exitCode(int status)
{
#ifdef __unix__
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
    return status;
#endif
}

struct DiffResult
{
    int exit = -1;
    std::string output; ///< stdout + stderr, interleaved.
};

/** Run bench_diff.py over two files, capturing combined output. */
DiffResult
runDiff(const std::string &baseline, const std::string &candidate)
{
    std::string outPath = ::testing::TempDir() + "benchdiff_out.txt";
    std::string cmd = "python3 \"" GOBO_SOURCE_DIR
                      "/tools/bench_diff.py\" \"" +
                      baseline + "\" \"" + candidate + "\" > \"" +
                      outPath + "\" 2>&1";
    DiffResult r;
    r.exit = exitCode(std::system(cmd.c_str()));
    std::ifstream in(outPath);
    std::ostringstream os;
    os << in.rdbuf();
    r.output = os.str();
    return r;
}

std::string
writeTemp(const char *name, const std::string &content)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream(path) << content;
    return path;
}

const char *kKernelsResults =
    "  \"results\": [\n"
    "    {\"kernel\": \"dot\", \"tier\": \"generic\", \"bits\": 0,"
    " \"n\": 4096, \"gb_per_sec\": 10.0, \"gflop_per_sec\": 2.5}\n"
    "  ]";

std::string
kernelsBaseline()
{
    return std::string("{\n  \"bench\": \"micro_kernels\",\n"
                       "  \"seq_tile\": 8,\n") +
           kKernelsResults + "\n}\n";
}

TEST(BenchDiffTest, CandidateOnlyPmuBlockIsExplicitlySkipped)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    // Same results; the candidate additionally carries the
    // machine-dependent roofline block the baseline lacks.
    std::string cand =
        std::string("{\n  \"bench\": \"micro_kernels\",\n"
                    "  \"seq_tile\": 8,\n") +
        kKernelsResults +
        ",\n  \"pmu\": {\"available\": true, \"backend\": \"fake\","
        " \"cache_line_bytes\": 64, \"results\": []}\n}\n";

    DiffResult r =
        runDiff(writeTemp("kbase.json", kernelsBaseline()),
                writeTemp("kcand_pmu.json", cand));
    EXPECT_EQ(r.exit, 0) << r.output;
    EXPECT_NE(r.output.find("pmu: skipped (machine-dependent"),
              std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(BenchDiffTest, UnknownBenchNamesTheKnownDispatchKeys)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    std::string bogus =
        writeTemp("bogus.json", "{\"bench\": \"bogus\"}\n");
    DiffResult r = runDiff(bogus, bogus);
    EXPECT_EQ(r.exit, 2) << r.output;
    EXPECT_NE(r.output.find("unknown bench 'bogus'"), std::string::npos)
        << r.output;
    for (const char *known :
         {"micro_forward", "micro_serve", "micro_kernels"})
        EXPECT_NE(r.output.find(known), std::string::npos)
            << "error does not name " << known << ": " << r.output;
}

TEST(BenchDiffTest, KernelsThroughputCollapseFails)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    std::string cand =
        "{\n  \"bench\": \"micro_kernels\",\n  \"seq_tile\": 8,\n"
        "  \"results\": [\n"
        "    {\"kernel\": \"dot\", \"tier\": \"generic\", \"bits\": 0,"
        " \"n\": 4096, \"gb_per_sec\": 1.0, \"gflop_per_sec\": 0.25}\n"
        "  ]\n}\n";
    DiffResult r =
        runDiff(writeTemp("kbase2.json", kernelsBaseline()),
                writeTemp("kcand_slow.json", cand));
    EXPECT_EQ(r.exit, 1) << r.output;
    EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

/** Minimal forward doc: enough stamps for the environment gates plus
 * empty measurement blocks so a matching pair diffs clean. */
std::string
forwardDoc(int seqTile, int cacheKb)
{
    std::ostringstream os;
    os << "{\n  \"bench\": \"micro_forward\",\n"
       << "  \"kernel_tier\": \"generic\",\n  \"threads\": 1,\n"
       << "  \"seq_tile\": " << seqTile << ",\n"
       << "  \"decode_cache_kb\": " << cacheKb << ",\n"
       << "  \"results\": [], \"scaling\": [], \"spans\": []\n}\n";
    return os.str();
}

TEST(BenchDiffTest, ForwardSeqTileMismatchIsRefused)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    DiffResult r =
        runDiff(writeTemp("fbase_tile.json", forwardDoc(8, 1024)),
                writeTemp("fcand_tile.json", forwardDoc(16, 1024)));
    EXPECT_EQ(r.exit, 2) << r.output;
    EXPECT_NE(r.output.find("seq_tile mismatch"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("regenerate the baseline"),
              std::string::npos)
        << r.output;
}

TEST(BenchDiffTest, ForwardDecodeCacheMismatchIsRefused)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    DiffResult r =
        runDiff(writeTemp("fbase_dc.json", forwardDoc(8, 1024)),
                writeTemp("fcand_dc.json", forwardDoc(8, 64)));
    EXPECT_EQ(r.exit, 2) << r.output;
    EXPECT_NE(r.output.find("decode_cache_kb mismatch"),
              std::string::npos)
        << r.output;
}

TEST(BenchDiffTest, KernelsPerResultSeqTileMismatchIsRefused)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    // Same (kernel, tier, bits) key, different per-result tile width:
    // the working set changed, so GB/s carries no signal.
    std::string base =
        "{\n  \"bench\": \"micro_kernels\",\n  \"seq_tile\": 8,\n"
        "  \"results\": [\n"
        "    {\"kernel\": \"bucket_acc_tile\", \"tier\": \"avx512\","
        " \"bits\": 3, \"n\": 3072, \"seq_tile\": 8,"
        " \"gb_per_sec\": 10.0, \"gflop_per_sec\": 2.5}\n  ]\n}\n";
    std::string cand =
        "{\n  \"bench\": \"micro_kernels\",\n  \"seq_tile\": 8,\n"
        "  \"results\": [\n"
        "    {\"kernel\": \"bucket_acc_tile\", \"tier\": \"avx512\","
        " \"bits\": 3, \"n\": 3072, \"seq_tile\": 16,"
        " \"gb_per_sec\": 20.0, \"gflop_per_sec\": 5.0}\n  ]\n}\n";
    DiffResult r = runDiff(writeTemp("kbase_tile.json", base),
                           writeTemp("kcand_tile.json", cand));
    EXPECT_EQ(r.exit, 2) << r.output;
    EXPECT_NE(r.output.find("per-result seq_tile mismatch"),
              std::string::npos)
        << r.output;
}

TEST(BenchDiffTest, CandidateOnlyTierIsSkippedNotGated)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    // The candidate machine runs a tier the baseline machine lacked
    // (e.g. avx512): its rows are acknowledged, never thresholded.
    std::string cand = std::string(
        "{\n  \"bench\": \"micro_kernels\",\n  \"seq_tile\": 8,\n"
        "  \"results\": [\n"
        "    {\"kernel\": \"dot\", \"tier\": \"generic\", \"bits\": 0,"
        " \"n\": 4096, \"gb_per_sec\": 10.0, \"gflop_per_sec\": 2.5},\n"
        "    {\"kernel\": \"dot\", \"tier\": \"avx512\", \"bits\": 0,"
        " \"n\": 4096, \"seq_tile\": 16, \"gb_per_sec\": 40.0,"
        " \"gflop_per_sec\": 10.0}\n  ]\n}\n");
    DiffResult r =
        runDiff(writeTemp("kbase_newtier.json", kernelsBaseline()),
                writeTemp("kcand_newtier.json", cand));
    EXPECT_EQ(r.exit, 0) << r.output;
    EXPECT_NE(r.output.find("dot/avx512"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("new in candidate; not gated"),
              std::string::npos)
        << r.output;
}

TEST(BenchDiffTest, IdenticalKernelsFilesPass)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";

    std::string base = writeTemp("kbase3.json", kernelsBaseline());
    DiffResult r = runDiff(base, base);
    EXPECT_EQ(r.exit, 0) << r.output;
    EXPECT_NE(r.output.find("all within tolerance"), std::string::npos)
        << r.output;
}

} // namespace
} // namespace gobo
