/**
 * @file
 * Tests for tensor operations against brute-force references.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "tensor/ops.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    std::mt19937_64 eng(seed);
    std::normal_distribution<float> n(0.0f, 1.0f);
    Tensor t(r, c);
    for (auto &v : t.flat())
        v = n(eng);
    return t;
}

TEST(Matmul, SmallKnownProduct)
{
    Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Matmul, MatchesNaiveReference)
{
    Tensor a = randomTensor(7, 11, 1);
    Tensor b = randomTensor(11, 5, 2);
    Tensor c = matmul(a, b);
    for (std::size_t i = 0; i < 7; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < 11; ++k)
                acc += a(i, k) * b(k, j);
            EXPECT_NEAR(c(i, j), acc, 1e-4);
        }
    }
}

TEST(Matmul, ShapeMismatchIsFatal)
{
    Tensor a(2, 3);
    Tensor b(4, 2);
    EXPECT_THROW(matmul(a, b), FatalError);
}

TEST(Matmul, PropagatesNanAndInfThroughZeroEntries)
{
    // Regression: a zero-skip in the inner loop dropped 0 * NaN and
    // 0 * Inf terms, silently diverging from IEEE semantics (and from
    // any reference dense matmul). A zero row against a NaN/Inf column
    // must yield NaN, never a clean 0.
    constexpr float inf = std::numeric_limits<float>::infinity();
    constexpr float nan = std::numeric_limits<float>::quiet_NaN();
    Tensor a(2, 2, {0.0f, 0.0f, 1.0f, 0.0f});
    Tensor b(2, 2, {nan, 1.0f, inf, 2.0f});
    Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c(0, 0))); // 0*NaN + 0*Inf
    EXPECT_FLOAT_EQ(c(0, 1), 0.0f);   // 0*1 + 0*2, finite stays exact
    EXPECT_TRUE(std::isnan(c(1, 0))); // 1*NaN + 0*Inf
    EXPECT_FLOAT_EQ(c(1, 1), 1.0f);   // 1*1 + 0*2
    // Parallel context takes the same path.
    Tensor cp = matmul(ExecContext::parallel(4), a, b);
    EXPECT_TRUE(std::isnan(cp(0, 0)));
}

TEST(Linear, MatchesTransposedMatmulPlusBias)
{
    Tensor x = randomTensor(4, 6, 3);
    Tensor w = randomTensor(5, 6, 4); // [out, in]
    Tensor bias(5);
    for (std::size_t o = 0; o < 5; ++o)
        bias(o) = static_cast<float>(o) * 0.1f;
    Tensor y = linear(x, w, bias);
    ASSERT_EQ(y.rows(), 4u);
    ASSERT_EQ(y.cols(), 5u);
    for (std::size_t s = 0; s < 4; ++s) {
        for (std::size_t o = 0; o < 5; ++o) {
            float acc = bias(o);
            for (std::size_t i = 0; i < 6; ++i)
                acc += x(s, i) * w(o, i);
            EXPECT_NEAR(y(s, o), acc, 1e-4);
        }
    }
}

TEST(Linear, BiasSizeChecked)
{
    Tensor x(2, 3);
    Tensor w(4, 3);
    Tensor bias(3);
    EXPECT_THROW(linear(x, w, bias), FatalError);
}

TEST(Add, Elementwise)
{
    Tensor a(2, 2, {1, 2, 3, 4});
    Tensor b(2, 2, {10, 20, 30, 40});
    Tensor c = add(a, b);
    EXPECT_FLOAT_EQ(c(1, 1), 44.0f);
    Tensor d(4);
    EXPECT_THROW(add(a, d), FatalError);
}

TEST(Softmax, RowsSumToOne)
{
    Tensor x = randomTensor(5, 9, 6);
    softmaxRows(x);
    for (std::size_t r = 0; r < 5; ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < 9; ++c) {
            EXPECT_GT(x(r, c), 0.0f);
            sum += x(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Softmax, InvariantToRowShift)
{
    Tensor a(1, 3, {1.0f, 2.0f, 3.0f});
    Tensor b(1, 3, {101.0f, 102.0f, 103.0f});
    softmaxRows(a);
    softmaxRows(b);
    for (std::size_t c = 0; c < 3; ++c)
        EXPECT_NEAR(a(0, c), b(0, c), 1e-5);
}

TEST(Softmax, NumericallyStableOnLargeLogits)
{
    Tensor x(1, 2, {1000.0f, 999.0f});
    softmaxRows(x);
    EXPECT_NEAR(x(0, 0) + x(0, 1), 1.0f, 1e-5);
    EXPECT_GT(x(0, 0), x(0, 1));
}

TEST(Gelu, KnownValues)
{
    Tensor x(1, 3, {0.0f, 10.0f, -10.0f});
    geluInplace(x);
    EXPECT_NEAR(x(0, 0), 0.0f, 1e-6);
    EXPECT_NEAR(x(0, 1), 10.0f, 1e-3); // ~identity for large positive
    EXPECT_NEAR(x(0, 2), 0.0f, 1e-3);  // ~zero for large negative
}

TEST(Gelu, MidpointMatchesTanhApproximation)
{
    Tensor x(1, 1, {1.0f});
    geluInplace(x);
    // gelu(1) with the tanh approximation is about 0.8412.
    EXPECT_NEAR(x(0, 0), 0.8412f, 1e-3);
}

TEST(Tanh, Bounds)
{
    Tensor x(1, 3, {-100.0f, 0.0f, 100.0f});
    tanhInplace(x);
    EXPECT_NEAR(x(0, 0), -1.0f, 1e-6);
    EXPECT_NEAR(x(0, 1), 0.0f, 1e-6);
    EXPECT_NEAR(x(0, 2), 1.0f, 1e-6);
}

TEST(LayerNorm, NormalizesRows)
{
    Tensor x = randomTensor(4, 32, 8);
    std::vector<float> gamma(32, 1.0f), beta(32, 0.0f);
    layerNormInplace(x, gamma, beta);
    for (std::size_t r = 0; r < 4; ++r) {
        double mu = 0.0, var = 0.0;
        for (std::size_t c = 0; c < 32; ++c)
            mu += x(r, c);
        mu /= 32.0;
        for (std::size_t c = 0; c < 32; ++c)
            var += (x(r, c) - mu) * (x(r, c) - mu);
        var /= 32.0;
        EXPECT_NEAR(mu, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(LayerNorm, AppliesGammaBeta)
{
    Tensor x(1, 2, {-1.0f, 1.0f});
    std::vector<float> gamma{2.0f, 2.0f}, beta{1.0f, 1.0f};
    layerNormInplace(x, gamma, beta);
    // Normalized values are -1 and +1; scaled/shifted to -1 and 3.
    EXPECT_NEAR(x(0, 0), -1.0f, 1e-2);
    EXPECT_NEAR(x(0, 1), 3.0f, 1e-2);
}

TEST(LayerNorm, ParameterSizeChecked)
{
    Tensor x(1, 4);
    std::vector<float> gamma(3, 1.0f), beta(4, 0.0f);
    EXPECT_THROW(layerNormInplace(x, gamma, beta), FatalError);
}

TEST(Argmax, FirstOnTies)
{
    std::vector<float> xs{1.0f, 3.0f, 3.0f, 2.0f};
    EXPECT_EQ(argmax(xs), 1u);
    EXPECT_THROW(argmax(std::vector<float>{}), FatalError);
}

TEST(MeanRows, Averages)
{
    Tensor x(2, 3, {1, 2, 3, 3, 4, 5});
    Tensor m = meanRows(x);
    ASSERT_EQ(m.size(), 3u);
    EXPECT_FLOAT_EQ(m(0), 2.0f);
    EXPECT_FLOAT_EQ(m(1), 3.0f);
    EXPECT_FLOAT_EQ(m(2), 4.0f);
}

TEST(RelativeError, ZeroForIdentical)
{
    Tensor a = randomTensor(3, 3, 10);
    EXPECT_EQ(relativeError(a, a), 0.0);
}

TEST(RelativeError, ScalesWithPerturbation)
{
    Tensor a(1, 2, {3.0f, 4.0f});
    Tensor b(1, 2, {3.0f, 4.5f});
    // ||a-b|| = 0.5, ||a|| = 5 -> 0.1.
    EXPECT_NEAR(relativeError(a, b), 0.1, 1e-6);
}

} // namespace
} // namespace gobo
