/**
 * @file
 * Tests for the timeline layer (obs/timeline) and its serve plumbing:
 * exact per-window aggregates from a hand-built event stream,
 * out-of-order emission, maxWindows clamping, flight-recorder
 * boundedness and shed pinning, and the contracts the serve
 * integration must keep — the windowed series is byte-identical
 * across backends and weight formats, window sums reconcile with the
 * run summary, the recorder never alters a response bit, and every
 * shed request is reconstructable from the recorder tail.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "jsonlint.hh"
#include "model/generate.hh"
#include "obs/timeline.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

TEST(TimelineBuilder, WindowAggregatesAreExact)
{
    // Hand-built lifecycle: one request admitted at t=100 and served
    // at t=1500 (wait 1400), one rejected at t=200, one 1-lane tile of
    // 30 tokens dispatched at t=500. Window width 1000us.
    TimelineBuilder tb({1000, 100});
    tb.arrival(100);
    tb.admit(100);
    tb.arrival(200);
    tb.shedOverload(200);
    tb.dispatch(500, 1, 8);
    tb.complete(1500, 1400);
    tb.batchComplete(1500, 30);

    TimelineSeries s = tb.build();
    EXPECT_EQ(s.windowUs, 1000u);
    EXPECT_EQ(s.spanUs, 1500u);
    EXPECT_FALSE(s.clamped);
    ASSERT_EQ(s.windows.size(), 2u);

    const TimelineWindow &w0 = s.windows[0];
    EXPECT_EQ(w0.index, 0u);
    EXPECT_EQ(w0.startUs, 0u);
    EXPECT_EQ(w0.arrivals, 2u);
    EXPECT_EQ(w0.admitted, 1u);
    EXPECT_EQ(w0.completed, 0u);
    EXPECT_EQ(w0.shedOverload, 1u);
    EXPECT_EQ(w0.shedDeadline, 0u);
    EXPECT_EQ(w0.batches, 1u);
    EXPECT_EQ(w0.lanesFilled, 1u);
    EXPECT_EQ(w0.lanesTotal, 8u);
    EXPECT_EQ(w0.tokens, 0u);
    EXPECT_DOUBLE_EQ(w0.tokensPerSec, 0.0);
    // Depth 1 from the admit at t=100 to the window edge at t=1000:
    // 900 depth-us over a 1000us window.
    EXPECT_DOUBLE_EQ(w0.meanQueueDepth, 0.9);
    EXPECT_DOUBLE_EQ(w0.occupancy, 0.125);
    // Nothing completed here: the quantiles are NaN by contract.
    EXPECT_TRUE(std::isnan(w0.queueWaitP50Us));
    EXPECT_TRUE(std::isnan(w0.queueWaitP99Us));

    const TimelineWindow &w1 = s.windows[1];
    EXPECT_EQ(w1.arrivals, 0u);
    EXPECT_EQ(w1.completed, 1u);
    EXPECT_EQ(w1.batches, 0u);
    EXPECT_EQ(w1.tokens, 30u);
    // 30 tokens over a 1ms window = 30000 tok/s, exactly.
    EXPECT_DOUBLE_EQ(w1.tokensPerSec, 30000.0);
    // Depth 1 from t=1000 until the completion at t=1500.
    EXPECT_DOUBLE_EQ(w1.meanQueueDepth, 0.5);
    EXPECT_DOUBLE_EQ(w1.occupancy, 0.0);
    ASSERT_TRUE(std::isfinite(w1.queueWaitP50Us));
    ASSERT_TRUE(std::isfinite(w1.queueWaitP99Us));
    EXPECT_GT(w1.queueWaitP50Us, 0.0);
    EXPECT_GE(w1.queueWaitP99Us, w1.queueWaitP50Us);
}

TEST(TimelineBuilder, EmptySeriesHasNoWindows)
{
    TimelineBuilder tb({1000, 100});
    TimelineSeries s = tb.build();
    EXPECT_EQ(s.windows.size(), 0u);
    EXPECT_EQ(s.spanUs, 0u);
    EXPECT_FALSE(s.clamped);
}

TEST(TimelineBuilder, EmissionOrderDoesNotMatterAtDistinctTimes)
{
    // The serve loop emits a tile's completion at dispatch time (the
    // virtual completion is computed then), so events arrive out of
    // time order. build() must produce the same series either way for
    // events with distinct timestamps.
    TimelineBuilder inOrder({500, 100});
    inOrder.admit(100);
    inOrder.dispatch(300, 2, 8);
    inOrder.complete(900, 800);
    inOrder.complete(901, 801);
    inOrder.batchComplete(902, 40);

    TimelineBuilder scrambled({500, 100});
    scrambled.batchComplete(902, 40);
    scrambled.complete(901, 801);
    scrambled.admit(100);
    scrambled.complete(900, 800);
    scrambled.dispatch(300, 2, 8);

    std::ostringstream a, b;
    writeTimelineWindows(inOrder.build(), a, 2);
    writeTimelineWindows(scrambled.build(), b, 2);
    EXPECT_EQ(a.str(), b.str());
}

TEST(TimelineBuilder, ClampsTailIntoLastWindow)
{
    TimelineBuilder tb({1000, 2});
    tb.arrival(100);
    tb.arrival(2500);
    tb.arrival(5500);
    TimelineSeries s = tb.build();
    EXPECT_TRUE(s.clamped);
    EXPECT_EQ(s.spanUs, 5500u);
    ASSERT_EQ(s.windows.size(), 2u);
    EXPECT_EQ(s.windows[0].arrivals, 1u);
    // Both post-cap arrivals fold into the final window.
    EXPECT_EQ(s.windows[1].arrivals, 2u);
}

RequestRecord
okRecord(std::uint64_t id)
{
    RequestRecord r;
    r.id = id;
    r.admitUs = id;
    r.dispatchUs = id + 1;
    r.completeUs = id + 2;
    r.lane = 0;
    r.batchId = 0;
    return r;
}

RequestRecord
shedRecord(std::uint64_t id, ShedCause cause)
{
    RequestRecord r;
    r.id = id;
    r.shed = cause;
    return r;
}

TEST(FlightRecorderTest, TailRingKeepsLastCapacityRecords)
{
    FlightRecorder rec(4, 2);
    EXPECT_TRUE(rec.enabled());
    for (std::uint64_t id = 0; id < 10; ++id)
        rec.record(okRecord(id));
    EXPECT_EQ(rec.recorded(), 10u);
    auto tail = rec.tail();
    ASSERT_EQ(tail.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(tail[i].id, 6u + i); // sorted by id, last 4 survive
}

TEST(FlightRecorderTest, ShedRecordsSurviveTailRollover)
{
    FlightRecorder rec(4, 2);
    rec.record(shedRecord(0, ShedCause::Overload));
    rec.record(shedRecord(1, ShedCause::Deadline));
    for (std::uint64_t id = 2; id < 10; ++id)
        rec.record(okRecord(id));
    auto tail = rec.tail();
    // Last 4 Ok records plus the two pinned sheds, sorted, no dupes.
    ASSERT_EQ(tail.size(), 6u);
    EXPECT_EQ(tail[0].id, 0u);
    EXPECT_EQ(tail[0].shed, ShedCause::Overload);
    EXPECT_EQ(tail[1].id, 1u);
    EXPECT_EQ(tail[1].shed, ShedCause::Deadline);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(tail[2 + i].id, 6u + i);

    // The shed ring is itself bounded: a third shed evicts the oldest.
    rec.record(shedRecord(10, ShedCause::Overload));
    tail = rec.tail();
    bool has0 = false, has1 = false, has10 = false;
    for (const RequestRecord &r : tail) {
        has0 |= r.id == 0;
        has1 |= r.id == 1;
        has10 |= r.id == 10;
    }
    EXPECT_FALSE(has0); // rolled out of both rings
    EXPECT_TRUE(has1);
    EXPECT_TRUE(has10);
}

TEST(FlightRecorderTest, ZeroCapacityDisablesRecording)
{
    FlightRecorder rec(0, 8);
    EXPECT_FALSE(rec.enabled());
    rec.record(okRecord(1));
    rec.record(shedRecord(2, ShedCause::Overload));
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_TRUE(rec.tail().empty());
}

// ---------------------------------------------------------------------
// Serve integration: the same mini model / stress trace the serve
// tests pin their determinism contracts on.

/** Shared mini model with a filled task head (generateModel leaves it
 * zeroed; identity checks need real logits). Built once. */
const BertModel &
testModel()
{
    static const BertModel model = [] {
        BertModel m = generateModel(miniConfig(ModelFamily::BertBase), 42);
        Rng rng(42 * 31 + 5);
        m.resizeHead(3);
        rng.fillGaussian(m.headW.data(), 0.0, 0.5);
        rng.fillGaussian(m.headB.data(), 0.0, 0.5);
        return m;
    }();
    return model;
}

InferenceSession
makeSession(bool parallel, WeightFormat format)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = format;
    ExecContext ctx =
        parallel ? ExecContext::parallel(2) : ExecContext::serial();
    ctx.weightFormat = format;
    return InferenceSession(QuantizedBertModel(testModel(), qopt), ctx);
}

/** Small near-saturation trace: bursts against maxQueue=8 force
 * overload sheds and a tight deadline forces deadline sheds, so the
 * timeline and recorder exercise every lifecycle path. */
TraceSpec
stressSpec()
{
    auto spec = parseTraceSpec(
        "n=160,seed=7,rate=400,len=1:64,long=0.25,burst=6x0.3,"
        "period=50000");
    EXPECT_TRUE(spec.has_value());
    return *spec;
}

ServeOptions
stressOptions()
{
    ServeOptions opt;
    opt.maxQueue = 8;
    opt.requestDeadlineUs = 30000;
    // ~400ms of trace at 50ms windows: several nonempty windows.
    opt.timelineWindowUs = 50000;
    // Pin the tile width (the default resolves to the executing
    // tier's seqTile) so lane bounds and shed decisions are the same
    // on every host these tests run on.
    opt.tileLanes = 8;
    return opt;
}

TEST(ServeTimeline, ByteIdenticalAcrossBackendsAndFormats)
{
    auto trace = generateTrace(stressSpec(), testModel().config().vocabSize);
    ServeOptions opt = stressOptions();

    std::string first;
    for (bool parallel : {false, true})
        for (WeightFormat fmt :
             {WeightFormat::Unpacked, WeightFormat::Packed}) {
            InferenceSession session = makeSession(parallel, fmt);
            ServeServer server(session, opt);
            ServeRun run = server.runTrace(trace);
            std::ostringstream os;
            writeTimelineWindows(run.summary.timeline, os, 2);
            if (first.empty()) {
                first = os.str();
                EXPECT_GT(run.summary.timeline.windows.size(), 3u);
            } else {
                EXPECT_EQ(os.str(), first)
                    << "parallel=" << parallel << " format "
                    << weightFormatName(fmt);
            }
        }
}

TEST(ServeTimeline, WindowSumsReconcileWithSummary)
{
    auto trace = generateTrace(stressSpec(), testModel().config().vocabSize);
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeServer server(session, stressOptions());
    ServeRun run = server.runTrace(trace);
    const ServeSummary &sum = run.summary;
    EXPECT_GT(sum.shedOverload, 0u);
    EXPECT_GT(sum.shedDeadline, 0u);

    TimelineWindow total;
    for (const TimelineWindow &w : sum.timeline.windows) {
        total.arrivals += w.arrivals;
        total.admitted += w.admitted;
        total.completed += w.completed;
        total.shedOverload += w.shedOverload;
        total.shedDeadline += w.shedDeadline;
        total.batches += w.batches;
        total.lanesFilled += w.lanesFilled;
        total.lanesTotal += w.lanesTotal;
        total.tokens += w.tokens;
    }
    EXPECT_EQ(total.arrivals, sum.requests);
    EXPECT_EQ(total.admitted, sum.completed + sum.shedDeadline);
    EXPECT_EQ(total.completed, sum.completed);
    EXPECT_EQ(total.shedOverload, sum.shedOverload);
    EXPECT_EQ(total.shedDeadline, sum.shedDeadline);
    EXPECT_EQ(total.batches, sum.batches);
    EXPECT_EQ(total.lanesFilled, sum.lanesFilled);
    EXPECT_EQ(total.lanesTotal, sum.lanesTotal);
    EXPECT_EQ(total.tokens, sum.tokensServed);
}

TEST(ServeTimeline, RecorderNeverAltersResponses)
{
    auto trace = generateTrace(stressSpec(), testModel().config().vocabSize);
    InferenceSession session = makeSession(false, WeightFormat::Packed);

    ServeOptions on = stressOptions();
    ServeServer serverOn(session, on);
    ServeRun runOn = serverOn.runTrace(trace);
    EXPECT_GT(runOn.flightRecorded, 0u);
    EXPECT_FALSE(runOn.flightRecords.empty());

    ServeOptions off = stressOptions();
    off.recorderCapacity = 0;
    off.recorderShedCapacity = 0;
    ServeServer serverOff(session, off);
    ServeRun runOff = serverOff.runTrace(trace);
    EXPECT_EQ(runOff.flightRecorded, 0u);
    EXPECT_TRUE(runOff.flightRecords.empty());

    EXPECT_EQ(runOn.summary.responseChecksum,
              runOff.summary.responseChecksum);
    ASSERT_EQ(runOn.responses.size(), runOff.responses.size());
    for (std::size_t i = 0; i < runOn.responses.size(); ++i)
        EXPECT_EQ(runOn.responses[i].status, runOff.responses[i].status);
}

TEST(ServeTimeline, RecorderReconstructsEveryShedLifecycle)
{
    auto trace = generateTrace(stressSpec(), testModel().config().vocabSize);
    ServeOptions opt = stressOptions();
    // Capacity above the trace size: nothing rolls out, so the tail
    // is the complete lifecycle log and must explain every response.
    opt.recorderCapacity = 1024;
    opt.recorderShedCapacity = 1024;
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeServer server(session, opt);
    ServeRun run = server.runTrace(trace);
    ASSERT_EQ(run.flightRecords.size(), trace.size());
    ASSERT_EQ(run.flightRecorded, trace.size());

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const RequestRecord &rec = run.flightRecords[i];
        const ServeResponse &resp = run.responses[i];
        ASSERT_EQ(rec.id, resp.id);
        EXPECT_EQ(rec.tokens, trace[i].tokens.size());
        EXPECT_EQ(rec.arrivalUs, trace[i].arrivalUs);
        switch (resp.status) {
          case ServeStatus::Ok:
            EXPECT_EQ(rec.shed, ShedCause::None);
            EXPECT_LT(rec.lane, opt.tileLanes);
            EXPECT_GE(rec.batchId, 0);
            EXPECT_NE(rec.admitUs, kNeverUs);
            EXPECT_NE(rec.dispatchUs, kNeverUs);
            EXPECT_NE(rec.completeUs, kNeverUs);
            EXPECT_EQ(rec.queueWaitUs, resp.queueWaitUs);
            break;
          case ServeStatus::ShedOverload:
            // Never entered the queue: no admission, no dispatch.
            EXPECT_EQ(rec.shed, ShedCause::Overload);
            EXPECT_EQ(rec.lane, UINT32_MAX);
            EXPECT_EQ(rec.batchId, -1);
            EXPECT_EQ(rec.admitUs, kNeverUs);
            EXPECT_EQ(rec.dispatchUs, kNeverUs);
            EXPECT_EQ(rec.completeUs, kNeverUs);
            break;
          case ServeStatus::ShedDeadline:
            // Admitted, dropped at dispatch, never served.
            EXPECT_EQ(rec.shed, ShedCause::Deadline);
            EXPECT_EQ(rec.lane, UINT32_MAX);
            EXPECT_EQ(rec.batchId, -1);
            EXPECT_NE(rec.admitUs, kNeverUs);
            EXPECT_NE(rec.dispatchUs, kNeverUs);
            EXPECT_EQ(rec.completeUs, kNeverUs);
            EXPECT_EQ(rec.queueWaitUs, resp.queueWaitUs);
            break;
        }
    }
}

TEST(ServeTimeline, TimelineDocumentIsValidJson)
{
    auto spec = stressSpec();
    auto trace = generateTrace(spec, testModel().config().vocabSize);
    ServeOptions opt = stressOptions();
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeServer server(session, opt);
    ServeRun run = server.runTrace(trace);

    ServeReportMeta meta;
    meta.trace = traceSpecString(spec);
    meta.kernelTier = "generic";
    meta.threads = 1;
    meta.engine = "qexec";
    meta.format = "packed";

    std::ostringstream tl;
    writeTimelineJson(run, opt, meta, tl);
    std::string doc = tl.str();
    EXPECT_TRUE(jsonValid(doc)) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"format\": \"gobo-timeline-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"flight_recorder\""), std::string::npos);
    EXPECT_NE(doc.find("\"shed\": \"deadline\""), std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);

    // The serve report embeds the same windows byte for byte: both
    // documents render through writeTimelineWindows, so the bench gate
    // and the standalone timeline can never drift.
    std::ostringstream sj;
    writeServeJson(run.summary, opt, meta, sj);
    EXPECT_TRUE(jsonValid(sj.str()));
    std::ostringstream windows;
    writeTimelineWindows(run.summary.timeline, windows, 4);
    EXPECT_NE(sj.str().find(windows.str()), std::string::npos);
}

} // namespace
} // namespace gobo
