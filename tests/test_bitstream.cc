/**
 * @file
 * Unit and property tests for the bit-granular packing codec.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "util/bitstream.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(BitWriter, EmptyStream)
{
    BitWriter w;
    EXPECT_EQ(w.bitCount(), 0u);
    EXPECT_EQ(w.byteCount(), 0u);
    EXPECT_TRUE(w.take().empty());
}

TEST(BitWriter, SingleBits)
{
    BitWriter w;
    // 1,0,1,1 LSB-first within the byte => 0b1101 = 13.
    w.put(1, 1);
    w.put(0, 1);
    w.put(1, 1);
    w.put(1, 1);
    EXPECT_EQ(w.bitCount(), 4u);
    EXPECT_EQ(w.byteCount(), 1u);
    auto bytes = w.take();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0b1101);
}

TEST(BitWriter, CrossesByteBoundary)
{
    BitWriter w;
    w.put(0b101, 3);
    w.put(0b11111, 5);
    w.put(0b1, 1);
    EXPECT_EQ(w.bitCount(), 9u);
    EXPECT_EQ(w.byteCount(), 2u);
    auto bytes = w.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0b11111101);
    EXPECT_EQ(bytes[1], 0b1);
}

TEST(BitWriter, TakeResetsState)
{
    BitWriter w;
    w.put(7, 3);
    (void)w.take();
    EXPECT_EQ(w.bitCount(), 0u);
    w.put(1, 1);
    EXPECT_EQ(w.bitCount(), 1u);
}

TEST(BitWriter, ReusableAfterTake)
{
    // Regression: take() used to leave the backing vector moved-from,
    // so a subsequent put() indexed into unspecified state. A reused
    // writer must produce a pristine second stream.
    BitWriter w;
    w.put(0b101, 3);
    w.put(0xab, 8);
    auto first = w.take();
    EXPECT_EQ(first.size(), 2u);
    EXPECT_TRUE(w.bytes().empty());
    EXPECT_EQ(w.byteCount(), 0u);

    w.put(0b11, 2);
    w.put(0x3c, 6);
    EXPECT_EQ(w.bitCount(), 8u);
    auto second = w.take();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0], 0b11110011);

    // And a third round, to make sure reuse is stable, not one-shot.
    w.put(0xffff, 16);
    auto third = w.take();
    ASSERT_EQ(third.size(), 2u);
    EXPECT_EQ(third[0], 0xff);
    EXPECT_EQ(third[1], 0xff);
}

TEST(BitWriter, RejectsZeroAndOverwideWidths)
{
    BitWriter w;
    EXPECT_THROW(w.put(0, 0), FatalError);
    EXPECT_THROW(w.put(0, 33), FatalError);
}

TEST(BitWriter, FullWidthValue)
{
    BitWriter w;
    w.put(0xdeadbeef, 32);
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(32), 0xdeadbeefu);
}

TEST(BitReader, ExhaustionIsFatal)
{
    std::vector<std::uint8_t> bytes{0xff};
    BitReader r(bytes.data(), 8);
    EXPECT_EQ(r.get(5), 0b11111u);
    EXPECT_EQ(r.remaining(), 3u);
    EXPECT_THROW(r.get(4), FatalError);
}

TEST(BitReader, RejectsZeroAndOverwideWidths)
{
    std::vector<std::uint8_t> bytes{0xff, 0xff, 0xff, 0xff, 0xff};
    BitReader r(bytes);
    EXPECT_THROW(r.get(0), FatalError);
    EXPECT_THROW(r.get(33), FatalError);
}

TEST(PackIndexes, ThreeBitExample)
{
    std::vector<std::uint32_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
    auto bytes = packIndexes(idx, 3);
    EXPECT_EQ(bytes.size(), 3u); // 24 bits
    auto back = unpackIndexes(bytes, 3, idx.size());
    EXPECT_EQ(back, idx);
}

/** Roundtrip property across every index width the library supports. */
class BitstreamWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitstreamWidth, RandomRoundtrip)
{
    unsigned bits = GetParam();
    std::mt19937_64 eng(1234 + bits);
    std::uint64_t mask = bits == 32 ? 0xffffffffULL
                                    : ((1ULL << bits) - 1);
    std::vector<std::uint32_t> values(997);
    for (auto &v : values)
        v = static_cast<std::uint32_t>(eng() & mask);

    BitWriter w;
    for (auto v : values)
        w.put(v, bits);
    EXPECT_EQ(w.bitCount(), values.size() * bits);

    BitReader r(w.bytes().data(), w.bitCount());
    for (auto v : values)
        EXPECT_EQ(r.get(bits), v);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST_P(BitstreamWidth, PackedSizeIsExact)
{
    unsigned bits = GetParam();
    std::vector<std::uint32_t> values(129, 0);
    auto bytes = packIndexes(values, bits);
    EXPECT_EQ(bytes.size(), (values.size() * bits + 7) / 8);
}

TEST_P(BitstreamWidth, MixedWidthInterleaving)
{
    unsigned bits = GetParam();
    BitWriter w;
    w.put(1, 1);
    w.put(bits == 32 ? 0x7fffffffu : (1u << bits) - 1u, bits);
    w.put(0, 2);
    w.put(1, 1);
    BitReader r(w.bytes().data(), w.bitCount());
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(bits), bits == 32 ? 0x7fffffffu : (1u << bits) - 1u);
    EXPECT_EQ(r.get(2), 0u);
    EXPECT_EQ(r.get(1), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitstreamWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 12u, 16u, 17u, 24u, 31u,
                                           32u));

} // namespace
} // namespace gobo
