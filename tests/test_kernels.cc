/**
 * @file
 * Tests for the SIMD kernel layer (kernels/kernels.hh).
 *
 * Pins down the tier contract of DESIGN.md §11:
 *   - the generic tier is bit-identical to the pre-kernel-layer
 *     scalar code (golden logits captured before the refactor);
 *   - the sequence-tiled bucket kernels are bit-identical across
 *     tiers (compressed-domain FC outputs never depend on the tier),
 *     asserted per-lane against a scalar reference at each tier's own
 *     seqTile width (8 for generic/avx2, 16 for avx512);
 *   - packed-row decode (KernelSet::decodePackedRow) is integer-exact
 *     on every tier, for every B, unaligned bit offsets, and lengths
 *     around the 64-index bulk-group boundary;
 *   - the dense/row SIMD kernels match generic to tolerance, on every
 *     masked-tail length, and propagate NaN/Inf exactly.
 * AVX2 cases skip on hosts without AVX2+FMA; AVX-512 cases skip (with
 * a message) on hosts without F+BW+DQ+VL or when the build lacks the
 * tier.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "core/qexec.hh"
#include "core/quantizer.hh"
#include "exec/session.hh"
#include "kernels/kernels.hh"
#include "model/generate.hh"
#include "nn/encoder.hh"
#include "tensor/ops.hh"
#include "util/bitstream.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

#define SKIP_WITHOUT_AVX2()                                              \
    const KernelSet *avx2 = avx2Kernels();                               \
    if (!avx2)                                                           \
    GTEST_SKIP() << "AVX2+FMA tier unavailable on this host"

#define SKIP_WITHOUT_AVX512()                                            \
    const KernelSet *avx512 = avx512Kernels();                           \
    if (!avx512)                                                         \
    GTEST_SKIP() << "AVX-512 F+BW+DQ+VL tier unavailable on this host "  \
                    "(CPU or build lacks it); cross-tier identity "      \
                    "still covered by generic/avx2"

/** Every tier the host can run; generic is always first. */
std::vector<const KernelSet *>
allTiers()
{
    std::vector<const KernelSet *> tiers = {&genericKernels()};
    if (const KernelSet *a = avx2Kernels())
        tiers.push_back(a);
    if (const KernelSet *a = avx512Kernels())
        tiers.push_back(a);
    return tiers;
}

/** The SIMD tiers only (everything after generic). */
std::vector<const KernelSet *>
simdTiers()
{
    auto tiers = allTiers();
    tiers.erase(tiers.begin());
    return tiers;
}

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    std::mt19937_64 eng(seed);
    std::normal_distribution<float> n(0.0f, 1.0f);
    Tensor t(r, c);
    for (auto &v : t.flat())
        v = n(eng);
    return t;
}

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed, float stddev = 1.0f)
{
    std::mt19937_64 eng(seed);
    std::normal_distribution<float> d(0.0f, stddev);
    std::vector<float> v(n);
    for (auto &x : v)
        x = d(eng);
    return v;
}

/** The tail-heavy length set every dense/row fuzz sweeps. */
const std::vector<std::size_t> kFuzzLengths = {
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
    31, 32, 33, 1007};

/**
 * The historical scalar compressed-domain forward, reconstructed from
 * the public QuantizedTensor fields: per (o, s), fill the buckets in
 * ascending-i order, fold the centroid table in ascending-c order from
 * the bias, apply outlier corrections in position order — all in
 * double. QuantizedLinear::forward on any tier/backend/format must
 * reproduce this bit-for-bit.
 */
Tensor
scalarReference(const QuantizedTensor &qt, const Tensor &bias,
                const Tensor &x)
{
    std::size_t out = qt.rows, in = qt.cols;
    std::size_t seq = x.rows();
    std::size_t k = qt.centroids.size();
    auto idx = unpackIndexes(qt.packedIndexes, qt.bits,
                             qt.elementCount());

    std::vector<std::vector<std::pair<std::uint32_t, float>>> row_out(
        out);
    for (std::size_t o = 0; o < qt.outlierPositions.size(); ++o) {
        std::uint32_t pos = qt.outlierPositions[o];
        std::uint32_t row = pos / static_cast<std::uint32_t>(in);
        std::uint32_t col = pos % static_cast<std::uint32_t>(in);
        float corr =
            qt.outlierValues[o] - qt.centroids[qt.indexAt(pos)];
        row_out[row].emplace_back(col, corr);
    }

    Tensor y(seq, out);
    std::vector<double> bucket(k);
    for (std::size_t o = 0; o < out; ++o) {
        for (std::size_t s = 0; s < seq; ++s) {
            const float *xrow = x.row(s).data();
            std::fill(bucket.begin(), bucket.end(), 0.0);
            for (std::size_t i = 0; i < in; ++i)
                bucket[idx[o * in + i]] += xrow[i];
            double acc = bias(o);
            for (std::size_t c = 0; c < k; ++c)
                acc += static_cast<double>(qt.centroids[c]) * bucket[c];
            for (const auto &[col, corr] : row_out[o])
                acc += static_cast<double>(corr) * xrow[col];
            y(s, o) = static_cast<float>(acc);
        }
    }
    return y;
}

/** Serial context pinned to one tier. */
ExecContext
tierCtx(const KernelSet &kn)
{
    ExecContext ctx = ExecContext::serial();
    ctx.kernels = &kn;
    return ctx;
}

/** The micro_forward / golden-capture model: mini BERT-base, seed 42,
 * 3-class head, and its fixed 13-token input. */
struct GoldenSetup
{
    BertModel model;
    std::vector<std::int32_t> tokens;
};

GoldenSetup
goldenSetup()
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    GoldenSetup g{generateModel(cfg, 42), {}};
    Rng rng(42 * 31 + 5);
    g.model.resizeHead(3);
    rng.fillGaussian(g.model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(g.model.headB.data(), 0.0, 0.5);
    for (std::size_t t = 0; t < 13; ++t)
        g.tokens.push_back(static_cast<std::int32_t>(rng.integer(
            0, static_cast<int>(cfg.vocabSize) - 1)));
    return g;
}

TEST(Dispatch, GenericTierIsCompleteAndNamed)
{
    const KernelSet &g = genericKernels();
    EXPECT_STREQ(g.name, "generic");
    EXPECT_FALSE(g.reassociates);
    EXPECT_NE(g.dot, nullptr);
    EXPECT_NE(g.axpy, nullptr);
    EXPECT_NE(g.softmaxRow, nullptr);
    EXPECT_NE(g.layerNormRow, nullptr);
    EXPECT_NE(g.geluRow, nullptr);
    EXPECT_NE(g.tanhRow, nullptr);
    EXPECT_NE(g.bucketAccTile, nullptr);
    EXPECT_NE(g.centroidDotTile, nullptr);
    EXPECT_NE(g.outlierTile, nullptr);
}

TEST(Dispatch, Avx2TierMatchesCpuid)
{
    const KernelSet *a = avx2Kernels();
    EXPECT_EQ(a != nullptr, cpuSupportsAvx2());
    if (a) {
        EXPECT_STREQ(a->name, "avx2");
        EXPECT_TRUE(a->reassociates);
        EXPECT_EQ(a->seqTile, kSeqTile);
    }
}

TEST(Dispatch, Avx512TierMatchesCpuidAndWidensTile)
{
    const KernelSet *a = avx512Kernels();
    if (a) {
        EXPECT_TRUE(cpuSupportsAvx512());
        EXPECT_STREQ(a->name, "avx512");
        EXPECT_TRUE(a->reassociates);
        EXPECT_EQ(a->seqTile, 16u);
        EXPECT_LE(a->seqTile, kMaxSeqTile);
        EXPECT_NE(a->decodePackedRow, nullptr);
    }
    // avx512Kernels() may be null on a supporting CPU when the *build*
    // lacks the tier, so only the one-way implication holds.
    if (!cpuSupportsAvx512())
        EXPECT_EQ(a, nullptr);
}

TEST(Dispatch, EveryTierCarriesTileWidthAndDecode)
{
    for (const KernelSet *t : allTiers()) {
        SCOPED_TRACE(t->name);
        EXPECT_GE(t->seqTile, 1u);
        EXPECT_LE(t->seqTile, kMaxSeqTile);
        EXPECT_NE(t->decodePackedRow, nullptr);
    }
}

TEST(Dispatch, NamedLookupAndActiveOverride)
{
    EXPECT_EQ(&kernelsByName("generic"), &genericKernels());
    const KernelSet &native = kernelsByName("native");
    EXPECT_NE(native.name, nullptr);

    const KernelSet &before = activeKernels();
    setActiveKernels(genericKernels());
    EXPECT_STREQ(activeKernels().name, "generic");
    EXPECT_EQ(&resolveKernels(nullptr), &genericKernels());
    setActiveKernels(before);
    const KernelSet *avx2 = avx2Kernels();
    if (avx2)
        EXPECT_EQ(&resolveKernels(avx2), avx2);
}

// ---------------------------------------------------------------------
// Golden bit-identity: the generic tier reproduces the exact logits the
// repo produced before the kernel layer existed (hex floats captured
// from the pre-refactor build). This is the GOBO_KERNEL=generic
// acceptance contract, asserted rather than benched.

TEST(GoldenGeneric, Fp32SerialLogitsMatchPreKernelBuild)
{
    GoldenSetup g = goldenSetup();
    InferenceSession session(std::move(g.model),
                             tierCtx(genericKernels()));
    Tensor logits = session.headLogits(g.tokens);
    ASSERT_EQ(logits.size(), 3u);
    EXPECT_EQ(logits(0), 0x1.f5eec6p-4f);
    EXPECT_EQ(logits(1), -0x1.cedf88p+0f);
    EXPECT_EQ(logits(2), 0x1.680f08p+0f);
}

TEST(GoldenGeneric, QuantizedPackedLogitsMatchPreKernelBuild)
{
    GoldenSetup g = goldenSetup();
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.base.method = CentroidMethod::Gobo;
    qopt.embeddingBits = 4;
    qopt.format = WeightFormat::Packed;
    InferenceSession session(QuantizedBertModel(g.model, qopt),
                             tierCtx(genericKernels()));
    Tensor logits = session.headLogits(g.tokens);
    ASSERT_EQ(logits.size(), 3u);
    EXPECT_EQ(logits(0), 0x1.6a7ebp-1f);
    EXPECT_EQ(logits(1), -0x1.a3e54p+0f);
    EXPECT_EQ(logits(2), 0x1.343e1ep+1f);
}

// ---------------------------------------------------------------------
// Sequence-tiled compressed-domain forward: exact against the
// historical scalar loop, for every tier, format, and awkward sequence
// length (1 = the pooler path; 7/9/13 = partial tail tiles; 8 = one
// exact tile).

TEST(QexecTile, ForwardMatchesScalarReferenceEverywhere)
{
    std::vector<const KernelSet *> tiers = allTiers();

    std::size_t in = 24, out = 10;
    for (unsigned bits : {2u, 3u, 4u}) {
        GoboConfig cfg;
        cfg.bits = bits;
        Tensor w = randomTensor(out, in, 1000 + bits);
        Tensor bias(out);
        {
            auto bv = randomVec(out, 2000 + bits);
            std::copy(bv.begin(), bv.end(), bias.flat().begin());
        }
        QuantizedTensor qt = quantizeTensor(w, cfg);
        ASSERT_GT(qt.outlierPositions.size(), 0u)
            << "fuzz layer should have outliers to cover phase 3";

        // 1 = the pooler path; 7/8/9/13 = partial and exact 8-lane
        // tiles; 15/16/17 and 31/32/33 bracket the avx512 16-lane
        // tile and its masked tails.
        for (std::size_t seq :
             {std::size_t{1}, std::size_t{7}, std::size_t{8},
              std::size_t{9}, std::size_t{13}, std::size_t{15},
              std::size_t{16}, std::size_t{17}, std::size_t{31},
              std::size_t{32}, std::size_t{33}}) {
            Tensor x = randomTensor(seq, in, 3000 + seq * 17 + bits);
            Tensor ref = scalarReference(qt, bias, x);
            for (auto fmt :
                 {WeightFormat::Unpacked, WeightFormat::Packed}) {
                QuantizedLinear layer(qt, bias, fmt);
                for (const KernelSet *tier : tiers) {
                    Tensor y = layer.forward(tierCtx(*tier), x);
                    ASSERT_EQ(y.rows(), seq);
                    ASSERT_EQ(y.cols(), out);
                    for (std::size_t s = 0; s < seq; ++s)
                        for (std::size_t o = 0; o < out; ++o)
                            EXPECT_EQ(y(s, o), ref(s, o))
                                << "tier=" << tier->name
                                << " fmt=" << weightFormatName(fmt)
                                << " bits=" << bits << " seq=" << seq
                                << " s=" << s << " o=" << o;
                }
            }
        }
    }
}

TEST(QexecTile, OpCountsUnchangedBySequenceTiling)
{
    // The tiled loop must count per real lane, not per padded tile:
    // counts are closed-form in (seq, in, k, outliers).
    std::size_t in = 24, out = 10;
    Tensor w = randomTensor(out, in, 77);
    Tensor bias(out);
    QuantizedTensor qt = quantizeTensor(w, GoboConfig{});
    QuantizedLinear layer(qt, bias, WeightFormat::Unpacked);
    for (std::size_t seq : {std::size_t{1}, std::size_t{9}}) {
        Tensor x = randomTensor(seq, in, 88 + seq);
        OpCounts measured;
        layer.forward(ExecContext::serial(), x, &measured);
        OpCounts expected = layer.opCounts(seq);
        EXPECT_EQ(measured.additions, expected.additions) << seq;
        EXPECT_EQ(measured.multiplications, expected.multiplications)
            << seq;
    }
}

TEST(QexecTile, WholeModelBitIdenticalAcrossTiers)
{
    if (simdTiers().empty())
        GTEST_SKIP() << "no SIMD tier available on this host";
    GoldenSetup g = goldenSetup();
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = WeightFormat::Packed;
    QuantizedBertModel qmodel(g.model, qopt);

    // encode() is FC layers + attention/norm glue; only compare the FC
    // outputs tier-to-tier, which means going through one layer
    // directly: encode/classify mix in dense row ops that legitimately
    // differ at tolerance. Drive the first FC via identical inputs.
    Tensor x = randomTensor(13, qmodel.config().hidden, 4242);
    std::vector<const QuantizedLinear *> layers;
    qmodel.forEachLayer([&](const QuantizedLinear &l) {
        layers.push_back(&l);
    });
    ASSERT_FALSE(layers.empty());
    const QuantizedLinear &first = *layers.front();
    Tensor a = first.forward(tierCtx(genericKernels()), x);
    for (const KernelSet *simd : simdTiers()) {
        Tensor b = first.forward(tierCtx(*simd), x);
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a.flat()[i], b.flat()[i])
                << simd->name << " i=" << i;
    }
}

// ---------------------------------------------------------------------
// Direct bucket-kernel fuzz: AVX2 tile kernels are bit-identical to
// generic for arbitrary bucket counts and outlier densities.

TEST(BucketKernels, TilePhasesExactAcrossTiers)
{
    SKIP_WITHOUT_AVX2();
    const KernelSet &gen = genericKernels();
    std::mt19937_64 eng(7);
    for (unsigned bits = 2; bits <= 8; ++bits) {
        std::size_t k = std::size_t{1} << bits;
        for (std::size_t in : {std::size_t{1}, std::size_t{13},
                               std::size_t{64}, std::size_t{257}}) {
            std::vector<std::uint8_t> irow(in);
            for (auto &v : irow)
                v = static_cast<std::uint8_t>(eng() % k);
            auto xt = randomVec(in * kSeqTile, eng());

            std::vector<double> bucket_g(k * kSeqTile, -1.0);
            std::vector<double> bucket_a(k * kSeqTile, -1.0);
            gen.bucketAccTile(irow.data(), in, xt.data(),
                              bucket_g.data(), k);
            avx2->bucketAccTile(irow.data(), in, xt.data(),
                                bucket_a.data(), k);
            for (std::size_t i = 0; i < bucket_g.size(); ++i)
                ASSERT_EQ(bucket_g[i], bucket_a[i])
                    << "bits=" << bits << " in=" << in << " i=" << i;

            auto centroids = randomVec(k, eng());
            double acc_g[kSeqTile], acc_a[kSeqTile];
            gen.centroidDotTile(centroids.data(), k, bucket_g.data(),
                                0.25, acc_g);
            avx2->centroidDotTile(centroids.data(), k, bucket_a.data(),
                                  0.25, acc_a);
            for (std::size_t l = 0; l < kSeqTile; ++l)
                ASSERT_EQ(acc_g[l], acc_a[l]) << l;

            // Outlier densities from none to ~half the row.
            for (std::size_t n_out :
                 {std::size_t{0}, std::size_t{1}, in / 2}) {
                std::vector<OutlierTerm> terms;
                for (std::size_t t = 0; t < n_out; ++t)
                    terms.push_back(
                        {static_cast<std::uint32_t>(eng() % in),
                         static_cast<float>(
                             static_cast<double>(eng() % 1000) / 250.0
                             - 2.0)});
                double og[kSeqTile], oa[kSeqTile];
                std::copy(acc_g, acc_g + kSeqTile, og);
                std::copy(acc_a, acc_a + kSeqTile, oa);
                gen.outlierTile(terms.data(), terms.size(), xt.data(),
                                og);
                avx2->outlierTile(terms.data(), terms.size(), xt.data(),
                                  oa);
                for (std::size_t l = 0; l < kSeqTile; ++l)
                    ASSERT_EQ(og[l], oa[l])
                        << "n_out=" << n_out << " l=" << l;
            }
        }
    }
}

TEST(BucketKernels, TilePhasesMatchPerLaneReferenceAtNativeWidth)
{
    // Each tier's tile kernels at the tier's own seqTile width against
    // a per-lane scalar reference (ascending i / c / outlier order,
    // double mul-then-add) — the same contract scalarReference() pins
    // end-to-end, here per kernel so a 16-lane avx512 tile is checked
    // lane by lane rather than through an 8-lane peer.
    std::mt19937_64 eng(19);
    for (const KernelSet *tier : allTiers()) {
        const KernelSet &kn = *tier;
        const std::size_t tile = kn.seqTile;
        SCOPED_TRACE(kn.name);
        for (unsigned bits = 2; bits <= 8; bits += 3) {
            std::size_t k = std::size_t{1} << bits;
            for (std::size_t in : {std::size_t{1}, std::size_t{13},
                                   std::size_t{64}, std::size_t{257}}) {
                std::vector<std::uint8_t> irow(in);
                for (auto &v : irow)
                    v = static_cast<std::uint8_t>(eng() % k);
                auto xt = randomVec(in * tile, eng());

                std::vector<double> bucket(k * tile, -1.0);
                kn.bucketAccTile(irow.data(), in, xt.data(),
                                 bucket.data(), k);
                std::vector<double> ref(k * tile, 0.0);
                for (std::size_t i = 0; i < in; ++i)
                    for (std::size_t l = 0; l < tile; ++l)
                        ref[irow[i] * tile + l] +=
                            static_cast<double>(xt[i * tile + l]);
                for (std::size_t i = 0; i < bucket.size(); ++i)
                    ASSERT_EQ(bucket[i], ref[i])
                        << "bits=" << bits << " in=" << in
                        << " i=" << i;

                auto centroids = randomVec(k, eng());
                std::vector<double> acc(tile);
                kn.centroidDotTile(centroids.data(), k, bucket.data(),
                                   0.25, acc.data());
                std::vector<double> acc_ref(tile, 0.25);
                for (std::size_t c = 0; c < k; ++c)
                    for (std::size_t l = 0; l < tile; ++l)
                        acc_ref[l] += static_cast<double>(centroids[c])
                                      * bucket[c * tile + l];
                for (std::size_t l = 0; l < tile; ++l)
                    ASSERT_EQ(acc[l], acc_ref[l]) << l;

                std::vector<OutlierTerm> terms;
                for (std::size_t t = 0; t < in / 2 + 1; ++t)
                    terms.push_back(
                        {static_cast<std::uint32_t>(eng() % in),
                         static_cast<float>(
                             static_cast<double>(eng() % 1000) / 250.0
                             - 2.0)});
                auto out_ref = acc_ref;
                kn.outlierTile(terms.data(), terms.size(), xt.data(),
                               acc.data());
                for (const auto &term : terms)
                    for (std::size_t l = 0; l < tile; ++l)
                        out_ref[l] +=
                            static_cast<double>(term.correction)
                            * xt[term.column * tile + l];
                for (std::size_t l = 0; l < tile; ++l)
                    ASSERT_EQ(acc[l], out_ref[l]) << l;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Packed-row decode: integer-exact on every tier, for every B,
// unaligned bit offsets, and lengths bracketing the 64-index bulk
// group of the avx512 VBMI path. Short buffers (no slack past the
// last packed byte) exercise the bulk loop's load guard.

TEST(DecodeRow, MatchesBitstreamReferenceEveryTier)
{
    std::mt19937_64 eng(99);
    auto tiers = allTiers();
    for (std::uint32_t b = 2; b <= 8; ++b) {
        for (std::size_t n :
             {std::size_t{1}, std::size_t{7}, std::size_t{63},
              std::size_t{64}, std::size_t{65}, std::size_t{127},
              std::size_t{129}, std::size_t{300}}) {
            for (std::size_t off : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{8},
                                    std::size_t{21}}) {
                // Exactly the bytes the stream needs — the bulk paths
                // must not read past byteLen.
                std::size_t total_bits = off + n * b;
                std::vector<std::uint8_t> bytes((total_bits + 7) / 8);
                for (auto &v : bytes)
                    v = static_cast<std::uint8_t>(eng());

                std::vector<std::uint8_t> ref(n);
                std::uint32_t mask = (1u << b) - 1u;
                for (std::size_t i = 0; i < n; ++i) {
                    std::size_t bit = off + i * b;
                    std::uint32_t window = bytes[bit / 8];
                    if (bit % 8 + b > 8)
                        window |= static_cast<std::uint32_t>(
                                      bytes[bit / 8 + 1])
                                  << 8;
                    ref[i] = static_cast<std::uint8_t>(
                        (window >> (bit % 8)) & mask);
                }

                for (const KernelSet *tier : tiers) {
                    std::vector<std::uint8_t> out(n, 0xAA);
                    tier->decodePackedRow(bytes.data(), bytes.size(),
                                          off, b, n, out.data());
                    for (std::size_t i = 0; i < n; ++i)
                        ASSERT_EQ(out[i], ref[i])
                            << tier->name << " b=" << b << " n=" << n
                            << " off=" << off << " i=" << i;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dense/row kernels: AVX2 matches generic to tolerance on every tail
// length (the vector kernels switch to scalar tails mid-row).

TEST(DenseKernels, DotToleranceFuzzWithTails)
{
    if (simdTiers().empty())
        GTEST_SKIP() << "no SIMD tier available on this host";
    const KernelSet &gen = genericKernels();
    for (std::size_t n : kFuzzLengths) {
        auto a = randomVec(n, 10 + n);
        auto b = randomVec(n, 20 + n);
        double ref = 0.5;
        double sum_abs = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            double p = static_cast<double>(a[i]) * b[i];
            ref += p;
            sum_abs += std::abs(p);
        }
        double tol = 1e-5 * sum_abs;
        EXPECT_NEAR(gen.dot(0.5f, a.data(), b.data(), n), ref, tol)
            << n;
        for (const KernelSet *simd : simdTiers())
            EXPECT_NEAR(simd->dot(0.5f, a.data(), b.data(), n), ref,
                        tol)
                << simd->name << " n=" << n;
    }
}

TEST(DenseKernels, AxpyToleranceFuzzWithTails)
{
    if (simdTiers().empty())
        GTEST_SKIP() << "no SIMD tier available on this host";
    const KernelSet &gen = genericKernels();
    for (std::size_t n : kFuzzLengths) {
        auto x = randomVec(n, 30 + n);
        auto y0 = randomVec(n, 40 + n);
        auto yg = y0;
        gen.axpy(0.75f, x.data(), yg.data(), n);
        for (const KernelSet *simd : simdTiers()) {
            auto ya = y0;
            simd->axpy(0.75f, x.data(), ya.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_NEAR(yg[i], ya[i],
                            1e-6 * (1.0 + std::abs(yg[i])))
                    << simd->name << " n=" << n << " i=" << i;
        }
    }
}

TEST(RowKernels, ToleranceFuzzWithTails)
{
    if (simdTiers().empty())
        GTEST_SKIP() << "no SIMD tier available on this host";
    const KernelSet &gen = genericKernels();
    for (const KernelSet *simd : simdTiers()) {
        SCOPED_TRACE(simd->name);
        for (std::size_t n : kFuzzLengths) {
            auto gamma = randomVec(n, 50 + n);
            auto beta = randomVec(n, 60 + n);

            auto sg = randomVec(n, 70 + n, 2.0f);
            auto sa = sg;
            gen.softmaxRow(sg.data(), n);
            simd->softmaxRow(sa.data(), n);
            double sum = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(sg[i], sa[i], 1e-5) << "softmax n=" << n;
                sum += sa[i];
            }
            EXPECT_NEAR(sum, 1.0, 1e-4) << n;

            auto lg = randomVec(n, 80 + n, 2.0f);
            auto la = lg;
            gen.layerNormRow(lg.data(), n, gamma.data(), beta.data(),
                             1e-5f);
            simd->layerNormRow(la.data(), n, gamma.data(), beta.data(),
                               1e-5f);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_NEAR(lg[i], la[i],
                            1e-4 * (1.0 + std::abs(lg[i])))
                    << "layernorm n=" << n << " i=" << i;

            auto gg = randomVec(n, 90 + n, 2.0f);
            auto ga = gg;
            gen.geluRow(gg.data(), n);
            simd->geluRow(ga.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_NEAR(gg[i], ga[i],
                            1e-5 * (1.0 + std::abs(gg[i])))
                    << "gelu n=" << n << " i=" << i;

            auto tg = randomVec(n, 100 + n, 3.0f);
            auto ta = tg;
            gen.tanhRow(tg.data(), n);
            simd->tanhRow(ta.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_NEAR(tg[i], ta[i], 1e-5) << "tanh n=" << n;
        }
    }
}

TEST(RowKernels, DenseForwardCloseAcrossTiers)
{
    // End-to-end tolerance: whole FP32 logits generic vs each SIMD
    // tier agree to a few decimal places (reassociation only, no
    // algorithm change).
    if (simdTiers().empty())
        GTEST_SKIP() << "no SIMD tier available on this host";
    GoldenSetup g = goldenSetup();
    InferenceSession sg(g.model, tierCtx(genericKernels()));
    Tensor lg = sg.headLogits(g.tokens);
    for (const KernelSet *simd : simdTiers()) {
        InferenceSession sa(g.model, tierCtx(*simd));
        Tensor la = sa.headLogits(g.tokens);
        ASSERT_EQ(lg.size(), la.size());
        for (std::size_t i = 0; i < lg.size(); ++i)
            EXPECT_NEAR(lg(i), la(i), 1e-3 * (1.0 + std::abs(lg(i))))
                << simd->name << " i=" << i;
    }
}

// ---------------------------------------------------------------------
// NaN/Inf propagation: vector min/max/blend tricks must not launder
// non-finite values on either tier.

TEST(NanInf, PropagatesThroughEveryKernel)
{
    for (const KernelSet *tier : allTiers()) {
        const KernelSet &kn = *tier;
        const std::size_t tile = kn.seqTile;
        SCOPED_TRACE(kn.name);

        for (std::size_t n : {std::size_t{9}, std::size_t{33}}) {
            // dot: NaN anywhere poisons the sum; 0 * Inf is NaN (the
            // kernel must not skip zero products).
            auto a = randomVec(n, n);
            auto b = randomVec(n, n + 1);
            auto an = a;
            an[n / 2] = kNan;
            EXPECT_TRUE(std::isnan(kn.dot(0.0f, an.data(), b.data(), n)));
            auto bz = b;
            auto ai = a;
            ai[n - 1] = kInf;
            bz[n - 1] = 0.0f;
            EXPECT_TRUE(std::isnan(kn.dot(0.0f, ai.data(), bz.data(), n)));

            // axpy with a = 0 against Inf input: 0 * Inf = NaN lands.
            auto y = randomVec(n, n + 2);
            kn.axpy(0.0f, ai.data(), y.data(), n);
            EXPECT_TRUE(std::isnan(y[n - 1]));
            for (std::size_t i = 0; i + 1 < n; ++i)
                EXPECT_FALSE(std::isnan(y[i])) << i;

            // softmax: NaN poisons the whole row; so does +Inf — the
            // max-subtraction yields Inf - Inf = NaN at the Inf slot
            // and the NaN spreads through the normalising sum. That is
            // the historical scalar behaviour and both tiers keep it.
            auto sn = randomVec(n, n + 3);
            sn[1] = kNan;
            kn.softmaxRow(sn.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_TRUE(std::isnan(sn[i])) << i;
            auto si = randomVec(n, n + 4);
            si[2] = kInf;
            kn.softmaxRow(si.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_TRUE(std::isnan(si[i])) << i;

            // layernorm: NaN spreads through the row statistics.
            auto ln = randomVec(n, n + 5);
            ln[0] = kNan;
            auto gamma = randomVec(n, n + 6);
            auto beta = randomVec(n, n + 7);
            kn.layerNormRow(ln.data(), n, gamma.data(), beta.data(),
                            1e-5f);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_TRUE(std::isnan(ln[i])) << i;

            // gelu: NaN stays NaN; +Inf -> +Inf; -Inf -> NaN
            // (0.5 * -Inf * (1 + tanh(-Inf)) = -Inf * 0).
            float gl[3] = {kNan, kInf, -kInf};
            kn.geluRow(gl, 3);
            EXPECT_TRUE(std::isnan(gl[0]));
            EXPECT_EQ(gl[1], kInf);
            EXPECT_TRUE(std::isnan(gl[2]));

            // tanh: saturates exactly at +-1 for +-Inf, NaN stays.
            float th[3] = {kNan, kInf, -kInf};
            kn.tanhRow(th, 3);
            EXPECT_TRUE(std::isnan(th[0]));
            EXPECT_EQ(th[1], 1.0f);
            EXPECT_EQ(th[2], -1.0f);

            // bucket tile: a NaN/Inf lane contaminates exactly the
            // buckets its indexes touch, per lane — at the tier's own
            // tile width.
            std::size_t in = n, k = 4;
            std::vector<std::uint8_t> irow(in);
            for (std::size_t i = 0; i < in; ++i)
                irow[i] = static_cast<std::uint8_t>(i % k);
            std::vector<float> xt(in * tile, 1.0f);
            xt[0 * tile + 3] = kNan; // i = 0 (bucket 0), lane 3
            xt[1 * tile + 5] = kInf; // i = 1 (bucket 1), lane 5
            std::vector<double> bucket(k * tile);
            kn.bucketAccTile(irow.data(), in, xt.data(), bucket.data(),
                             k);
            EXPECT_TRUE(std::isnan(bucket[0 * tile + 3]));
            EXPECT_EQ(bucket[1 * tile + 5],
                      std::numeric_limits<double>::infinity());
            EXPECT_FALSE(std::isnan(bucket[0 * tile + 2]));

            // ...and flows through phases 2 and 3.
            std::vector<float> centroids(k, 1.0f);
            std::vector<double> acc(tile);
            kn.centroidDotTile(centroids.data(), k, bucket.data(), 0.0,
                               acc.data());
            EXPECT_TRUE(std::isnan(acc[3]));
            EXPECT_EQ(acc[5], std::numeric_limits<double>::infinity());
            OutlierTerm term{0, 2.0f};
            kn.outlierTile(&term, 1, xt.data(), acc.data());
            EXPECT_TRUE(std::isnan(acc[3]));
        }
    }
}

} // namespace
} // namespace gobo
