/**
 * @file
 * Unit and property tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "util/logging.hh"
#include "util/stats.hh"

namespace gobo {
namespace {

TEST(RunningStats, MatchesDirectComputation)
{
    std::vector<float> xs{1.0f, 2.0f, 3.0f, 4.0f, 10.0f};
    RunningStats rs;
    rs.addAll(xs);
    EXPECT_EQ(rs.count(), 5u);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
    // Population variance: mean of squared deviations.
    double var = (9.0 + 4.0 + 1.0 + 0.0 + 36.0) / 5.0;
    EXPECT_NEAR(rs.variance(), var, 1e-12);
    EXPECT_NEAR(rs.stddev(), std::sqrt(var), 1e-12);
    EXPECT_EQ(rs.min(), 1.0);
    EXPECT_EQ(rs.max(), 10.0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, EmptyMinMaxAreInfinities)
{
    // Regression: the header documents +/-infinity on an empty
    // accumulator; the old 1e300/-1e300 sentinels leaked out instead.
    RunningStats rs;
    EXPECT_EQ(rs.min(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(rs.max(), -std::numeric_limits<double>::infinity());
    EXPECT_TRUE(std::isinf(rs.min()));
    EXPECT_TRUE(std::isinf(rs.max()));
    // The identity elements must not perturb real observations.
    rs.add(-3.0);
    rs.add(7.0);
    EXPECT_EQ(rs.min(), -3.0);
    EXPECT_EQ(rs.max(), 7.0);
}

TEST(RunningStats, StableOnLargeOffset)
{
    // Welford must survive a large common offset where naive
    // sum-of-squares cancels catastrophically.
    RunningStats rs;
    for (int i = 0; i < 10000; ++i)
        rs.add(1e9 + (i % 2 ? 0.5 : -0.5));
    EXPECT_NEAR(rs.variance(), 0.25, 1e-6);
}

TEST(Mean, SpanHelpers)
{
    std::vector<float> xs{2.0f, 4.0f, 6.0f};
    EXPECT_DOUBLE_EQ(mean(xs), 4.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(8.0 / 3.0), 1e-6);
    EXPECT_EQ(mean(std::vector<float>{}), 0.0);
}

TEST(Distances, L1AndL2)
{
    std::vector<float> xs{1.0f, 3.0f, 5.0f};
    EXPECT_DOUBLE_EQ(l1Distance(xs, 3.0f), 4.0);
    EXPECT_DOUBLE_EQ(l2Distance(xs, 3.0f), 8.0);
    EXPECT_DOUBLE_EQ(l1Distance(xs, 0.0f), 9.0);
}

TEST(Quantile, InterpolatesSortedValues)
{
    std::vector<float> xs{4.0f, 1.0f, 3.0f, 2.0f};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_THROW(quantile(xs, 1.5), FatalError);
    EXPECT_THROW(quantile(std::vector<float>{}, 0.5), FatalError);
}

TEST(HistogramTest, CountsAndClamping)
{
    std::vector<float> xs{-10.0f, 0.1f, 0.2f, 0.9f, 10.0f};
    auto h = histogram(xs, 0.0, 1.0, 4);
    ASSERT_EQ(h.counts.size(), 4u);
    // -10 clamps into bin 0; 10 clamps into bin 3.
    EXPECT_EQ(h.counts[0], 3u); // -10 (clamped), 0.1, 0.2
    EXPECT_EQ(h.counts[1], 0u);
    EXPECT_EQ(h.counts[3], 2u); // 0.9 and 10 (clamped)
    std::size_t total = 0;
    for (auto c : h.counts)
        total += c;
    EXPECT_EQ(total, xs.size());
    EXPECT_NEAR(h.binWidth(), 0.25, 1e-12);
    EXPECT_NEAR(h.binCenter(0), 0.125, 1e-12);
    EXPECT_GE(h.maxCount(), 1u);
}

TEST(Quantile, SingleElementIsThatElement)
{
    std::vector<float> xs{42.0f};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 42.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 42.0);
}

TEST(HistogramTest, AllOutOfRangeClampsToEdgeBins)
{
    // Every observation lands in a bin even when the whole input sits
    // outside [lo, hi]; nothing is silently dropped.
    std::vector<float> xs{-100.0f, -5.0f, 5.0f, 100.0f, 1e30f};
    auto h = histogram(xs, 0.0, 1.0, 3);
    EXPECT_EQ(h.counts[0], 2u); // the two below-range values
    EXPECT_EQ(h.counts[1], 0u);
    EXPECT_EQ(h.counts[2], 3u); // the three above-range values
    std::size_t total = 0;
    for (auto c : h.counts)
        total += c;
    EXPECT_EQ(total, xs.size());
}

TEST(HistogramTest, BoundaryValuesStayInRange)
{
    // Exactly-lo lands in the first bin, exactly-hi clamps into the
    // last (not one past the end).
    std::vector<float> xs{0.0f, 1.0f};
    auto h = histogram(xs, 0.0, 1.0, 4);
    EXPECT_EQ(h.counts[0], 1u);
    EXPECT_EQ(h.counts[3], 1u);
}

TEST(HistogramTest, RejectsBadRanges)
{
    std::vector<float> xs{1.0f};
    EXPECT_THROW(histogram(xs, 1.0, 0.0, 4), FatalError);
    EXPECT_THROW(histogram(xs, 0.0, 1.0, 0), FatalError);
}

TEST(Pearson, PerfectAndInverse)
{
    std::vector<double> a{1, 2, 3, 4};
    std::vector<double> b{2, 4, 6, 8};
    std::vector<double> c{8, 6, 4, 2};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{5, 5, 5};
    EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, SizeMismatchIsFatal)
{
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{1, 2};
    EXPECT_THROW(pearson(a, b), FatalError);
}

TEST(AverageRanks, HandlesTies)
{
    std::vector<double> xs{10, 20, 20, 30};
    auto r = averageRanks(xs);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, InvariantUnderMonotoneTransform)
{
    std::mt19937_64 eng(99);
    std::normal_distribution<double> n(0, 1);
    std::vector<double> a(200), b(200), bt(200);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = n(eng);
        b[i] = a[i] + 0.5 * n(eng);
        bt[i] = std::exp(b[i]); // strictly monotone transform
    }
    EXPECT_NEAR(spearman(a, b), spearman(a, bt), 1e-12);
}

TEST(Spearman, PerfectRankAgreement)
{
    std::vector<double> a{1, 5, 3, 4};
    std::vector<double> b{10, 500, 30, 40};
    EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Spearman, UncorrelatedNearZero)
{
    std::mt19937_64 eng(5);
    std::normal_distribution<double> n(0, 1);
    std::vector<double> a(5000), b(5000);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = n(eng);
        b[i] = n(eng);
    }
    EXPECT_NEAR(spearman(a, b), 0.0, 0.05);
}

TEST(Spearman, AllTiedRanksIsZero)
{
    // A constant series ranks every element identically; the rank
    // variance is zero, so the correlation is defined as 0 (matching
    // pearson's constant-series convention), not NaN.
    std::vector<double> tied{5, 5, 5, 5};
    std::vector<double> varying{1, 2, 3, 4};
    EXPECT_EQ(spearman(tied, varying), 0.0);
    EXPECT_EQ(spearman(varying, tied), 0.0);
    EXPECT_EQ(spearman(tied, tied), 0.0);
    auto ranks = averageRanks(tied);
    for (double r : ranks)
        EXPECT_DOUBLE_EQ(r, 2.5);
}

/** Property sweep: spearman in [-1, 1] and symmetric for noise mixes. */
class SpearmanNoise : public ::testing::TestWithParam<double>
{
};

TEST_P(SpearmanNoise, WithinBoundsAndSymmetric)
{
    double noise = GetParam();
    std::mt19937_64 eng(17);
    std::normal_distribution<double> n(0, 1);
    std::vector<double> a(500), b(500);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = n(eng);
        b[i] = a[i] + noise * n(eng);
    }
    double s = spearman(a, b);
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
    EXPECT_NEAR(s, spearman(b, a), 1e-12);
    if (noise < 0.1) {
        EXPECT_GT(s, 0.9);
    }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SpearmanNoise,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5, 1.0, 3.0));

} // namespace
} // namespace gobo
