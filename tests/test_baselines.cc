/**
 * @file
 * Tests for the Q8BERT-like and Q-BERT-like comparator implementations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/q8bert.hh"
#include "baselines/qbert.hh"
#include "model/generate.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

Tensor
gaussianTensor(std::size_t r, std::size_t c, std::uint64_t seed,
               double sigma = 0.05)
{
    Rng rng(seed);
    std::vector<float> data(r * c);
    rng.fillGaussian(data, 0.0, sigma);
    return Tensor(r, c, std::move(data));
}

TEST(Q8, RoundtripErrorBoundedByScale)
{
    Tensor w = gaussianTensor(32, 48, 81);
    Q8Tensor q = quantizeQ8(w);
    Tensor back = q.dequantize();
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_LE(std::abs(w.flat()[i] - back.flat()[i]),
                  q.scale / 2.0f + 1e-7f);
    }
}

TEST(Q8, ScaleCoversMaxValue)
{
    Tensor w = gaussianTensor(16, 16, 83);
    w(3, 3) = -0.9f; // dominate the range
    Q8Tensor q = quantizeQ8(w);
    EXPECT_NEAR(q.scale, 0.9f / 127.0f, 1e-6);
    Tensor back = q.dequantize();
    EXPECT_NEAR(back(3, 3), -0.9f, q.scale);
}

TEST(Q8, PayloadIsOneBytePerWeight)
{
    Tensor w = gaussianTensor(10, 10, 85);
    Q8Tensor q = quantizeQ8(w);
    EXPECT_EQ(q.payloadBytes(), 100u + sizeof(float));
}

TEST(Q8, ModelInPlaceGivesFourXCompression)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 87);
    auto report = q8bertQuantizeModelInPlace(m);
    EXPECT_NEAR(report.weightCompressionRatio(), 4.0, 0.01);
    EXPECT_NEAR(report.totalCompressionRatio(), 4.0, 0.01);
    EXPECT_EQ(report.layers.size(), cfg.numFcLayers());
}

TEST(Q8, AccountConfigMatchesArithmetic)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto report = q8bertAccountConfig(cfg);
    EXPECT_EQ(report.weightOriginalBytes,
              cfg.fcWeightParams() * sizeof(float));
    // One byte per weight plus one scale per layer.
    EXPECT_EQ(report.weightPayloadBytes,
              cfg.fcWeightParams() + 73 * sizeof(float));
    EXPECT_NEAR(report.totalCompressionRatio(), 4.0, 0.001);
}

TEST(GroupQuant, GroupOfMapsRowsEvenly)
{
    Tensor w = gaussianTensor(128, 8, 89);
    auto q = quantizeGroupwise(w, 3, 4);
    EXPECT_EQ(q.dictionaries.size(), 4u);
    EXPECT_EQ(q.groupOf(0), 0u);
    EXPECT_EQ(q.groupOf(31), 0u);
    EXPECT_EQ(q.groupOf(32), 1u);
    EXPECT_EQ(q.groupOf(127), 3u);
}

TEST(GroupQuant, DequantizedValuesComeFromOwnGroupDictionary)
{
    Tensor w = gaussianTensor(64, 8, 91);
    auto q = quantizeGroupwise(w, 3, 8);
    Tensor back = q.dequantize();
    for (std::size_t r = 0; r < back.rows(); ++r) {
        const auto &dict = q.dictionaries[q.groupOf(r)];
        for (std::size_t c = 0; c < back.cols(); ++c) {
            bool found = false;
            for (float d : dict)
                found |= d == back(r, c);
            EXPECT_TRUE(found) << "row " << r << " col " << c;
        }
    }
}

TEST(GroupQuant, MoreGroupsReduceError)
{
    // Give each row-block a different scale so per-group dictionaries
    // genuinely help.
    Tensor w(64, 16);
    Rng rng(93);
    for (std::size_t r = 0; r < 64; ++r) {
        double sigma = 0.01 * (1.0 + static_cast<double>(r / 16));
        for (std::size_t c = 0; c < 16; ++c)
            w(r, c) = static_cast<float>(rng.gaussian(0.0, sigma));
    }
    auto q1 = quantizeGroupwise(w, 3, 1);
    auto q4 = quantizeGroupwise(w, 3, 4);
    EXPECT_LT(relativeError(w, q4.dequantize()),
              relativeError(w, q1.dequantize()));
}

TEST(GroupQuant, GroupsClampedToRows)
{
    Tensor w = gaussianTensor(5, 8, 95);
    auto q = quantizeGroupwise(w, 3, 128);
    EXPECT_EQ(q.dictionaries.size(), 5u);
    EXPECT_NO_THROW(q.dequantize());
}

TEST(GroupQuant, PayloadAccountsDictionaries)
{
    Tensor w = gaussianTensor(128, 16, 97);
    auto q = quantizeGroupwise(w, 3, 8);
    std::size_t dict_bits = 0;
    for (const auto &d : q.dictionaries)
        dict_bits += d.size() * 32;
    EXPECT_EQ(q.payloadBytes(), (128 * 16 * 3 + dict_bits + 7) / 8);
}

TEST(GroupQuant, RejectsBadArguments)
{
    Tensor w = gaussianTensor(8, 8, 99);
    EXPECT_THROW(quantizeGroupwise(w, 0, 4), FatalError);
    EXPECT_THROW(quantizeGroupwise(w, 9, 4), FatalError);
    EXPECT_THROW(quantizeGroupwise(w, 3, 0), FatalError);
    Tensor v(8);
    EXPECT_THROW(quantizeGroupwise(v, 3, 4), FatalError);
}

TEST(QBert, ModelInPlaceCompressionMatchesPaperArithmetic)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 101);
    auto report = qbertQuantizeModelInPlace(m, 3, 16);
    // Index payload dominates: between 32/4 and 32/3 per weight, plus
    // an 8-bit embedding table.
    EXPECT_GT(report.weightCompressionRatio(), 8.0);
    EXPECT_LT(report.weightCompressionRatio(), 32.0 / 3.0);
    EXPECT_NEAR(report.embeddingCompressionRatio(), 4.0, 0.01);
}

TEST(GroupQuant, GoboMethodLowersL1PerGroup)
{
    // The design-ablation path: per-group tables selected by GOBO's
    // L1-monitored refinement instead of K-Means. Summed |w - c| over
    // the whole tensor must not exceed the K-Means variant's.
    Tensor w = gaussianTensor(64, 32, 103);
    auto km = quantizeGroupwise(w, 3, 8, CentroidMethod::KMeans);
    auto gobo = quantizeGroupwise(w, 3, 8, CentroidMethod::Gobo);
    auto l1_of = [&](const GroupQuantTensor &q) {
        Tensor d = q.dequantize();
        double l1 = 0.0;
        for (std::size_t i = 0; i < w.size(); ++i)
            l1 += std::abs(static_cast<double>(w.flat()[i])
                           - d.flat()[i]);
        return l1;
    };
    EXPECT_LE(l1_of(gobo), l1_of(km) * 1.0001);
}

TEST(GroupQuant, LinearMethodIsSupported)
{
    Tensor w = gaussianTensor(16, 16, 107);
    auto q = quantizeGroupwise(w, 3, 4, CentroidMethod::Linear);
    EXPECT_EQ(q.dictionaries.size(), 4u);
    EXPECT_NO_THROW(q.dequantize());
}

TEST(QBert, AccountConfigFullScale)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto r3 = qbertAccountConfig(cfg, 3);
    auto r4 = qbertAccountConfig(cfg, 4);
    // Paper Table III: Q-BERT 3-bit 7.81x, 4-bit 6.52x overall.
    EXPECT_NEAR(r3.totalCompressionRatio(), 7.81, 0.25);
    EXPECT_NEAR(r4.totalCompressionRatio(), 6.52, 0.25);
}

} // namespace
} // namespace gobo
