/**
 * @file
 * Tests for the 1-D EM Gaussian-mixture fitter and the mixture-based
 * outlier split.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/gaussian.hh"
#include "core/mixture.hh"
#include "core/outliers.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

std::vector<float>
twoScaleMixture(std::size_t n, double frac_wide, double sigma_narrow,
                double sigma_wide, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &x : xs) {
        double sd = rng.uniform() < frac_wide ? sigma_wide
                                              : sigma_narrow;
        x = static_cast<float>(rng.gaussian(0.0, sd));
    }
    return xs;
}

TEST(Mixture, SingleComponentMatchesGaussianFit)
{
    Rng rng(501);
    std::vector<float> xs(20000);
    rng.fillGaussian(xs, 0.1, 0.05);
    auto gm = GaussianMixture::fit(xs, 1);
    auto fit = GaussianFit::fit(xs);
    ASSERT_EQ(gm.components().size(), 1u);
    EXPECT_NEAR(gm.components()[0].mean, fit.mean(), 1e-9);
    EXPECT_NEAR(gm.components()[0].sigma, fit.sigma(), 1e-9);
    EXPECT_NEAR(gm.components()[0].weight, 1.0, 1e-12);
    // logPdf agrees with the closed form.
    for (double x : {-0.1, 0.1, 0.3})
        EXPECT_NEAR(gm.logPdf(x), fit.logPdf(x), 1e-9);
}

TEST(Mixture, RecoversTwoScales)
{
    auto xs = twoScaleMixture(60000, 0.3, 0.02, 0.08, 503);
    auto gm = GaussianMixture::fit(xs, 2);
    ASSERT_EQ(gm.components().size(), 2u);
    const auto &narrow = gm.components()[0];
    const auto &wide = gm.components()[1];
    EXPECT_NEAR(narrow.sigma, 0.02, 0.006);
    EXPECT_NEAR(wide.sigma, 0.08, 0.015);
    EXPECT_NEAR(wide.weight, 0.3, 0.08);
    EXPECT_NEAR(narrow.mean, 0.0, 0.005);
}

TEST(Mixture, LikelihoodImprovesWithComponents)
{
    auto xs = twoScaleMixture(30000, 0.25, 0.02, 0.09, 509);
    auto gm1 = GaussianMixture::fit(xs, 1);
    auto gm2 = GaussianMixture::fit(xs, 2);
    EXPECT_GT(gm2.meanLogLikelihood(),
              gm1.meanLogLikelihood() + 1e-4);
}

TEST(Mixture, WeightsSumToOne)
{
    auto xs = twoScaleMixture(10000, 0.4, 0.03, 0.06, 511);
    for (std::size_t k : {1u, 2u, 3u}) {
        auto gm = GaussianMixture::fit(xs, k);
        double sum = 0.0;
        for (const auto &c : gm.components())
            sum += c.weight;
        EXPECT_NEAR(sum, 1.0, 1e-6) << "k=" << k;
    }
}

TEST(Mixture, RejectsDegenerateInput)
{
    std::vector<float> one{1.0f};
    EXPECT_THROW(GaussianMixture::fit(one, 2), FatalError);
    std::vector<float> constant(100, 2.0f);
    EXPECT_THROW(GaussianMixture::fit(constant, 2), FatalError);
    std::vector<float> ok{0.0f, 1.0f, 2.0f};
    EXPECT_THROW(GaussianMixture::fit(ok, 0), FatalError);
    EXPECT_THROW(GaussianMixture::fit(ok, 17), FatalError);
}

TEST(MixtureSplitTest, SingleComponentMatchesSplitOutliers)
{
    Rng rng(521);
    std::vector<float> xs(30000);
    rng.fillGaussian(xs, 0.0, 0.05);
    xs[100] = 0.5f;
    xs[2000] = -0.45f;
    auto classic = splitOutliers(xs, -4.0);
    auto mixture = splitOutliersMixture(xs, 1, -4.0);
    EXPECT_EQ(mixture.outlierPositions, classic.outlierPositions);
    EXPECT_EQ(mixture.outlierValues, classic.outlierValues);
    EXPECT_EQ(mixture.gValues.size(), classic.gValues.size());
}

TEST(MixtureSplitTest, TwoComponentsAbsorbTheShoulder)
{
    // On two-scale data, a 2-component fit explains the wide shoulder
    // as structure instead of flagging its tail as outliers.
    auto xs = twoScaleMixture(50000, 0.2, 0.02, 0.08, 523);
    auto one = splitOutliersMixture(xs, 1, -4.0);
    auto two = splitOutliersMixture(xs, 2, -4.0);
    EXPECT_LT(two.outlierFraction(), one.outlierFraction());
}

} // namespace
} // namespace gobo
