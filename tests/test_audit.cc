/**
 * @file
 * Tests for the quantization audit layer: static fidelity edge cases
 * (all-outlier, single-centroid, empty tensors must stay finite), the
 * ActivationProbe capture/compare protocol, the bit-identity contract
 * for attached-but-disabled probes across backends and weight formats,
 * measured-traffic attribution arithmetic, and the end-to-end
 * auditModel report.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "memsim/memsim.hh"
#include "model/generate.hh"
#include "obs/audit.hh"
#include "obs/observer.hh"
#include "obs/probe.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

/** A 2x2 matrix where every element is an outlier. */
QuantizedTensor
allOutlierTensor()
{
    QuantizedTensor q;
    q.bits = 2;
    q.rows = 2;
    q.cols = 2;
    q.centroids = {0.0f};
    q.packedIndexes = {0}; // four 2-bit zero indexes
    q.outlierPositions = {0, 1, 2, 3};
    q.outlierValues = {5.0f, -5.0f, 7.0f, -7.0f};
    q.check();
    return q;
}

TEST(LayerFidelityTest, AllOutlierLayerIsFinite)
{
    QuantizedTensor q = allOutlierTensor();
    Tensor fp32(2, 2);
    fp32(0, 0) = 5.0f;
    fp32(0, 1) = -5.0f;
    fp32(1, 0) = 7.0f;
    fp32(1, 1) = -7.0f;

    LayerFidelity f = layerFidelity("all_out", "span", fp32, q);
    EXPECT_DOUBLE_EQ(f.outlierFraction, 1.0);
    // Outliers reconstruct exactly, so the error is zero — and finite.
    EXPECT_DOUBLE_EQ(f.l1, 0.0);
    EXPECT_DOUBLE_EQ(f.mse, 0.0);
    EXPECT_DOUBLE_EQ(f.maxAbs, 0.0);
    // Every index slot points at the single centroid.
    ASSERT_EQ(f.occupancy.size(), 1u);
    EXPECT_EQ(f.occupancy[0], 4u);
    EXPECT_EQ(f.deadCentroids, 0u);
    EXPECT_DOUBLE_EQ(f.topCentroidShare, 1.0);
    EXPECT_TRUE(f.saturated);
}

TEST(LayerFidelityTest, SingleCentroidTableIsFinite)
{
    QuantizedTensor q;
    q.bits = 1;
    q.rows = 1;
    q.cols = 8;
    q.centroids = {0.5f};
    q.packedIndexes = {0}; // eight 1-bit zero indexes
    q.check();

    Tensor fp32(1, 8);
    for (std::size_t c = 0; c < 8; ++c)
        fp32(0, c) = 0.25f;

    LayerFidelity f = layerFidelity("b1", "span", fp32, q);
    EXPECT_TRUE(std::isfinite(f.l1));
    EXPECT_NEAR(f.l1, 0.25, 1e-9);
    EXPECT_NEAR(f.mse, 0.0625, 1e-9);
    EXPECT_NEAR(f.maxAbs, 0.25, 1e-9);
    EXPECT_DOUBLE_EQ(f.topCentroidShare, 1.0);
    EXPECT_TRUE(f.saturated);
}

TEST(LayerFidelityTest, EmptyTensorIsFinite)
{
    QuantizedTensor q;
    q.bits = 3;
    q.rows = 0;
    q.cols = 0;
    q.centroids = {0.0f};
    q.check();

    Tensor fp32(std::size_t{0}, std::size_t{0});
    LayerFidelity f = layerFidelity("empty", "span", fp32, q);
    EXPECT_EQ(f.elements, 0u);
    EXPECT_DOUBLE_EQ(f.l1, 0.0);
    EXPECT_DOUBLE_EQ(f.mse, 0.0);
    EXPECT_DOUBLE_EQ(f.maxAbs, 0.0);
    EXPECT_DOUBLE_EQ(f.outlierFraction, 0.0);
    EXPECT_DOUBLE_EQ(f.topCentroidShare, 0.0);
    EXPECT_DOUBLE_EQ(f.compressionRatio, 1.0);
    EXPECT_FALSE(f.saturated);
    // The lone (unused) centroid counts as dead, not as a crash.
    EXPECT_EQ(f.deadCentroids, 1u);
}

TEST(LayerFidelityTest, DeadCentroidsAreCounted)
{
    QuantizedTensor q;
    q.bits = 2;
    q.rows = 1;
    q.cols = 4;
    q.centroids = {-1.0f, 0.0f, 1.0f, 2.0f};
    q.packedIndexes = {0b01010101}; // all four slots pick centroid 1
    q.check();

    Tensor fp32(1, 4);
    LayerFidelity f = layerFidelity("dead", "span", fp32, q);
    EXPECT_EQ(f.deadCentroids, 3u);
    EXPECT_DOUBLE_EQ(f.topCentroidShare, 1.0);
    EXPECT_TRUE(f.saturated);
}

TEST(ActivationProbeTest, CaptureThenCompareMeasuresDivergence)
{
    ActivationProbe probe(ProbeMode::Capture);
    Tensor ref(1, 4);
    ref(0, 0) = 1.0f;
    ref(0, 1) = 2.0f;
    ref(0, 2) = 3.0f;
    ref(0, 3) = 4.0f;
    probe.record("p", ref);
    EXPECT_EQ(probe.capturedCount("p"), 1u);

    probe.setMode(ProbeMode::Compare);
    Tensor obs = ref;
    obs(0, 2) = 3.5f; // max-abs divergence of 0.5
    probe.record("p", obs);

    auto div = probe.divergence();
    ASSERT_EQ(div.size(), 1u);
    EXPECT_EQ(div[0].point, "p");
    EXPECT_EQ(div[0].samples, 1u);
    EXPECT_EQ(div[0].mismatches, 0u);
    EXPECT_NEAR(div[0].maxAbs, 0.5, 1e-6);
    EXPECT_GT(div[0].meanCosine, 0.99);
    EXPECT_LE(div[0].meanCosine, 1.0 + 1e-12);
}

TEST(ActivationProbeTest, IdenticalTensorsHaveZeroDivergence)
{
    ActivationProbe probe;
    Tensor t(2, 3);
    Rng(5).fillGaussian(t.data(), 0.0, 1.0);
    probe.record("x", t);
    probe.setMode(ProbeMode::Compare);
    probe.record("x", t);
    auto div = probe.divergence();
    ASSERT_EQ(div.size(), 1u);
    EXPECT_DOUBLE_EQ(div[0].maxAbs, 0.0);
    EXPECT_NEAR(div[0].meanCosine, 1.0, 1e-12);
    EXPECT_NEAR(div[0].minCosine, 1.0, 1e-12);
}

TEST(ActivationProbeTest, MissingReferenceCountsAsMismatch)
{
    ActivationProbe probe(ProbeMode::Compare);
    Tensor t(1, 2);
    probe.record("never_captured", t);
    auto div = probe.divergence();
    ASSERT_EQ(div.size(), 1u);
    EXPECT_EQ(div[0].samples, 0u);
    EXPECT_EQ(div[0].mismatches, 1u);
}

TEST(ActivationProbeTest, SamplingDisabledRecordsNothing)
{
    ActivationProbe probe;
    probe.setSampling(false);
    Tensor t(1, 2);
    probe.record("p", t);
    EXPECT_EQ(probe.capturedCount("p"), 0u);
    EXPECT_TRUE(probe.divergence().empty());
}

TEST(AttributeMeasuredTest, EnergyAndLatencyArithmetic)
{
    MeasuredTraffic t;
    t.layer = "enc[0].query";
    t.forwards = 2;
    t.bytesStreamed = 1000;
    t.macs = 5000.0;

    MemParams p;
    p.dramPjPerBit = 20.0;
    p.pjPerMac = 0.6;
    p.dramGBps = 25.6;
    p.macsPerSecond = 8e12;

    auto out = attributeMeasured({t}, p);
    ASSERT_EQ(out.size(), 1u);
    const LayerAttribution &a = out[0];
    EXPECT_EQ(a.layer, "enc[0].query");
    // 1000 bytes * 8 bits * 20 pJ = 160000 pJ = 0.16 uJ.
    EXPECT_NEAR(a.offChipEnergyMicroJ, 0.16, 1e-9);
    // 5000 MACs * 0.6 pJ = 3000 pJ = 0.003 uJ.
    EXPECT_NEAR(a.computeEnergyMicroJ, 0.003, 1e-9);
    EXPECT_NEAR(a.totalEnergyMicroJ, 0.163, 1e-9);
    // 1000 B / 25.6 GB/s vs 5000 / 8e12 MACs/s: memory wins.
    EXPECT_TRUE(a.memoryBound);
    EXPECT_DOUBLE_EQ(a.latencyMs, a.memoryLatencyMs);
}

/** Mini model with a live head, shared by the end-to-end audit tests. */
class AuditFixture : public ::testing::Test
{
  protected:
    AuditFixture()
        : model(generateModel(miniConfig(ModelFamily::BertBase), 11))
    {
        model.resizeHead(3);
        Rng rng(23);
        rng.fillGaussian(model.headW.data(), 0.0, 0.5);
        rng.fillGaussian(model.headB.data(), 0.0, 0.5);
        for (int s = 0; s < 3; ++s) {
            std::vector<std::int32_t> seq;
            for (int t = 0; t < 10; ++t)
                seq.push_back(static_cast<std::int32_t>(rng.integer(
                    0,
                    static_cast<int>(model.config().vocabSize) - 1)));
            batch.push_back(std::move(seq));
        }
    }

    static void
    expectIdentical(const std::vector<Tensor> &a,
                    const std::vector<Tensor> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].size(), b[i].size());
            for (std::size_t j = 0; j < a[i].size(); ++j)
                EXPECT_EQ(a[i](j), b[i](j))
                    << "logit mismatch at [" << i << "][" << j << "]";
        }
    }

    BertModel model;
    TokenBatch batch;
};

TEST_F(AuditFixture, DisabledProbeIsBitIdenticalEverywhere)
{
    // The contract: an *attached* divergence probe with sampling
    // disabled must leave every engine/backend/format combination
    // exactly unchanged.
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    InferenceSession plain(QuantizedBertModel(model, qopt),
                           ExecContext::serial());
    auto expected = plain.headLogitsBatch(batch);

    ActivationProbe probe;
    probe.setSampling(false);
    Observer obs;
    obs.probe = &probe;

    for (bool parallel : {false, true}) {
        for (WeightFormat fmt :
             {WeightFormat::Unpacked, WeightFormat::Packed}) {
            ExecContext ctx = parallel ? ExecContext::parallel(4)
                                       : ExecContext::serial();
            ctx.obs = &obs;
            qopt.format = fmt;
            InferenceSession session(QuantizedBertModel(model, qopt),
                                     ctx);
            expectIdentical(expected, session.headLogitsBatch(batch));
        }
    }
    // And the probe really recorded nothing.
    EXPECT_EQ(probe.capturedCount("embed"), 0u);
    EXPECT_TRUE(probe.divergence().empty());

    // FP32 engine under the same disabled probe: also unchanged.
    InferenceSession fp32_plain(model, ExecContext::serial());
    auto fp32_expected = fp32_plain.headLogitsBatch(batch);
    ExecContext ctx = ExecContext::serial();
    ctx.obs = &obs;
    InferenceSession fp32_probed(model, ctx);
    expectIdentical(fp32_expected, fp32_probed.headLogitsBatch(batch));
    EXPECT_TRUE(probe.divergence().empty());
}

TEST_F(AuditFixture, EnabledProbeDoesNotPerturbResults)
{
    // Stronger than the disabled contract: even an actively sampling
    // probe only reads activations, so logits stay bit-identical.
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    InferenceSession plain(QuantizedBertModel(model, qopt),
                           ExecContext::serial());
    auto expected = plain.headLogitsBatch(batch);

    ActivationProbe probe(ProbeMode::Capture);
    Observer obs;
    obs.probe = &probe;
    ExecContext ctx = ExecContext::serial();
    ctx.obs = &obs;
    InferenceSession probed(QuantizedBertModel(model, qopt), ctx);
    expectIdentical(expected, probed.headLogitsBatch(batch));
    EXPECT_GT(probe.capturedCount("embed"), 0u);
}

TEST_F(AuditFixture, AuditModelProducesFullReport)
{
    AuditOptions opt;
    opt.quant.base.bits = 3;
    opt.quant.format = WeightFormat::Packed;
    opt.sequences = 2;
    opt.seqLen = 8;
    opt.seed = 9;

    AuditReport r = auditModel(model, opt);

    // Pillar 1: one fidelity entry per FC layer, finite everywhere.
    std::size_t fc_count = model.fcLayers().size();
    ASSERT_EQ(r.fidelity.size(), fc_count);
    for (const auto &f : r.fidelity) {
        EXPECT_TRUE(std::isfinite(f.l1)) << f.name;
        EXPECT_TRUE(std::isfinite(f.mse)) << f.name;
        EXPECT_GT(f.elements, 0u) << f.name;
        EXPECT_EQ(f.bits, 3u) << f.name;
        EXPECT_FALSE(f.occupancy.empty()) << f.name;
    }
    EXPECT_EQ(r.fidelity.front().name, "encoder0.query");
    EXPECT_EQ(r.fidelity.front().spanLabel, "enc[0].query");
    EXPECT_EQ(r.fidelity.back().spanLabel, "pooler");

    // Pillar 2: emission-ordered divergence with no pairing failures.
    ASSERT_FALSE(r.divergence.empty());
    EXPECT_EQ(r.divergence.front().point, "embed");
    EXPECT_EQ(r.divergence.back().point, "logits");
    for (const auto &d : r.divergence) {
        EXPECT_EQ(d.samples, opt.sequences) << d.point;
        EXPECT_EQ(d.mismatches, 0u) << d.point;
        EXPECT_TRUE(std::isfinite(d.maxAbs)) << d.point;
        EXPECT_LE(d.meanCosine, 1.0 + 1e-9) << d.point;
    }
    // 3-bit quantization diverges somewhere past the embedding.
    EXPECT_GT(r.divergence.back().maxAbs, 0.0);

    // Pillar 3: measured counters attributed per layer.
    ASSERT_EQ(r.traffic.size(), fc_count);
    ASSERT_EQ(r.attribution.size(), fc_count);
    for (std::size_t i = 0; i < r.traffic.size(); ++i) {
        const auto &t = r.traffic[i];
        EXPECT_EQ(t.forwards, opt.sequences) << t.layer;
        EXPECT_GT(t.bytesStreamed, 0u) << t.layer;
        EXPECT_GT(t.rowsDecoded, 0u) << t.layer; // Packed decodes rows
        EXPECT_GT(t.macs, 0.0) << t.layer;
        EXPECT_EQ(r.attribution[i].layer, t.layer);
        EXPECT_GT(r.attribution[i].totalEnergyMicroJ, 0.0);
    }
    EXPECT_GT(r.totalBytesStreamed, 0u);
    EXPECT_GT(r.totalEnergyMicroJ, 0.0);
    EXPECT_GT(r.totalLatencyMs, 0.0);
}

TEST_F(AuditFixture, AuditJsonIsBalancedAndTagged)
{
    AuditOptions opt;
    opt.quant.base.bits = 3;
    opt.sequences = 1;
    opt.seqLen = 6;

    AuditReport r = auditModel(model, opt);
    std::ostringstream os;
    writeAuditJson(r, os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"gobo-audit-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"fidelity\""), std::string::npos);
    EXPECT_NE(json.find("\"divergence\""), std::string::npos);
    EXPECT_NE(json.find("\"attribution\""), std::string::npos);
    EXPECT_NE(json.find("enc[0].query"), std::string::npos);
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    std::ostringstream console;
    printAuditReport(r, console);
    EXPECT_NE(console.str().find("encoder0.query"), std::string::npos);
    EXPECT_NE(console.str().find("totals:"), std::string::npos);
}

TEST_F(AuditFixture, UnpackedAuditDecodesNoRows)
{
    AuditOptions opt;
    opt.quant.base.bits = 3;
    opt.quant.format = WeightFormat::Unpacked;
    opt.sequences = 1;
    opt.seqLen = 6;
    AuditReport r = auditModel(model, opt);
    for (const auto &t : r.traffic)
        EXPECT_EQ(t.rowsDecoded, 0u) << t.layer;
}

} // namespace
} // namespace gobo
