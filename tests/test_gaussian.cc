/**
 * @file
 * Tests for the Gaussian fit and log-PDF outlier scoring.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "core/gaussian.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

TEST(GaussianFit, RecoversKnownParameters)
{
    Rng rng(31);
    std::vector<float> xs(100000);
    rng.fillGaussian(xs, 0.5, 0.05);
    auto fit = GaussianFit::fit(xs);
    EXPECT_NEAR(fit.mean(), 0.5, 1e-3);
    EXPECT_NEAR(fit.sigma(), 0.05, 1e-3);
}

TEST(GaussianFit, LogPdfMatchesFormula)
{
    GaussianFit fit(0.0, 2.0);
    for (double x : {-3.0, 0.0, 1.0, 5.0}) {
        double expected = -std::log(2.0 * std::sqrt(2.0
                                                    * std::numbers::pi))
                          - x * x / 8.0;
        EXPECT_NEAR(fit.logPdf(x), expected, 1e-12);
    }
}

TEST(GaussianFit, PeakValue)
{
    GaussianFit fit(3.0, 1.0);
    EXPECT_NEAR(fit.logPdf(3.0), -std::log(std::sqrt(2.0
                                                     * std::numbers::pi)),
                1e-12);
}

TEST(GaussianFit, ZCutoffIsInverseOfLogPdf)
{
    GaussianFit fit(0.1, 0.04);
    double z = fit.zCutoff(-4.0);
    ASSERT_TRUE(std::isfinite(z));
    // At exactly z sigmas from the mean, logPdf equals the threshold.
    EXPECT_NEAR(fit.logPdf(fit.mean() + z * fit.sigma()), -4.0, 1e-9);
    EXPECT_NEAR(fit.logPdf(fit.mean() - z * fit.sigma()), -4.0, 1e-9);
    EXPECT_NEAR(fit.absoluteCutoff(-4.0), z * 0.04, 1e-12);
}

TEST(GaussianFit, ZCutoffInfiniteWhenUnreachable)
{
    // A very wide Gaussian never scores above a generous threshold.
    GaussianFit fit(0.0, 100.0);
    EXPECT_TRUE(std::isinf(fit.zCutoff(-1000.0)) == false);
    // Peak logPdf = -log(100*sqrt(2pi)) ~ -5.52; threshold above the
    // peak means every point scores below it -> cutoff 0-ish, but a
    // threshold below any achievable density yields +inf only when
    // rhs <= 0: use a threshold above the peak.
    EXPECT_TRUE(std::isinf(fit.zCutoff(-5.0)));
}

TEST(GaussianFit, MonotoneThresholds)
{
    GaussianFit fit(0.0, 0.05);
    // A stricter (lower) threshold admits only farther outliers.
    EXPECT_LT(fit.zCutoff(-3.0), fit.zCutoff(-4.0));
    EXPECT_LT(fit.zCutoff(-4.0), fit.zCutoff(-6.0));
}

TEST(GaussianFit, RejectsDegenerateInput)
{
    std::vector<float> constant(10, 1.0f);
    EXPECT_THROW(GaussianFit::fit(constant), FatalError);
    std::vector<float> one{1.0f};
    EXPECT_THROW(GaussianFit::fit(one), FatalError);
    EXPECT_THROW(GaussianFit(0.0, 0.0), FatalError);
    EXPECT_THROW(GaussianFit(0.0, -1.0), FatalError);
}

} // namespace
} // namespace gobo
