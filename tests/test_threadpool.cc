/**
 * @file
 * Tests for the persistent work-stealing thread pool: reuse across
 * submissions, worker capping, exception propagation, the steal path
 * under skewed work, nested-submission composition, grain gating, and
 * determinism of index-addressed results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/context.hh"
#include "exec/threadpool.hh"

namespace gobo {
namespace {

TEST(ThreadPool, CoversEveryIndexOnceAcrossManySubmissions)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::atomic<int>> hits(97);
        for (auto &h : hits)
            h = 0;
        pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (auto &h : hits)
            ASSERT_EQ(h.load(), 1) << "round " << round;
    }
}

TEST(ThreadPool, ReusesPersistentWorkers)
{
    // Across many submissions the pool only ever uses its fixed set
    // of workers plus the calling thread — the spawn-per-call
    // behaviour this pool replaced would show a new id every round.
    ThreadPool pool(3);
    std::mutex m;
    std::set<std::thread::id> seen;
    for (int round = 0; round < 50; ++round)
        pool.run(64, [&](std::size_t) {
            std::lock_guard lock(m);
            seen.insert(std::this_thread::get_id());
        });
    EXPECT_LE(seen.size(), pool.workerCount() + 1);
}

TEST(ThreadPool, InlineWhenSerialOrTrivial)
{
    ThreadPool pool(4);
    std::vector<int> order;
    // parallelism 1: runs on the calling thread, in order, unlocked.
    pool.run(5, 1, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    // count 1 is inline too.
    auto caller = std::this_thread::get_id();
    pool.run(1, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    // count 0 never calls fn.
    pool.run(0, [&](std::size_t) { FAIL() << "called for empty range"; });
}

TEST(ThreadPool, CapsWorkersByWorkItemCount)
{
    ThreadPool pool(8);
    std::mutex m;
    std::set<std::thread::id> seen;
    pool.run(2, [&](std::size_t) {
        std::lock_guard lock(m);
        seen.insert(std::this_thread::get_id());
    });
    // Two items: at most two threads (caller + one worker) touch them.
    EXPECT_LE(seen.size(), 2u);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    EXPECT_THROW(
        pool.run(100,
                 [&](std::size_t i) {
                     ++calls;
                     if (i == 13)
                         throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The pool is still usable after an exception.
    std::atomic<int> ok{0};
    pool.run(10, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedSubmissionComposesWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(16 * 8);
    for (auto &h : hits)
        h = 0;
    // A submission from inside a worker shares its range onto the
    // worker's own deque (idle threads steal it) instead of running
    // inline. It must not deadlock on its own pool, the whole nest
    // still covers every slot exactly once, and the telemetry counts
    // it as a nested job, not a top-level one.
    pool.run(16, [&](std::size_t outer) {
        pool.run(8, [&](std::size_t inner) {
            ++hits[outer * 8 + inner];
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    PoolTelemetry t = pool.telemetry();
    EXPECT_EQ(t.jobs, 1u);
    EXPECT_EQ(t.nestedJobs, 16u);
    // Outer indexes + every nested index pass through the deques.
    EXPECT_EQ(t.itemsDrained, 16u + 16u * 8u);
}

TEST(ThreadPool, StealsFromABlockedParticipant)
{
    // One worker, so the range is split between the submitter and the
    // worker. Index 0 (always claimed first by the submitter, which
    // self-schedules off its own deque before stealing) blocks for a
    // while; the worker finishes its own half and must steal the
    // submitter's remaining indexes for the job to finish promptly.
    ThreadPool pool(1);
    std::atomic<int> hits{0};
    pool.run(64, [&](std::size_t i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ++hits;
    });
    EXPECT_EQ(hits.load(), 64);
    PoolTelemetry t = pool.telemetry();
    EXPECT_GE(t.steals, 1u);
    // The worker drained more than the half it was handed.
    ASSERT_EQ(t.workerItems.size(), 1u);
    EXPECT_GT(t.workerItems[0], 32u);
}

TEST(ThreadPool, SkewedItemsBalanceAcrossWorkers)
{
    // Pathological skew: item 0 carries ~all the sleep time in one
    // indivisible unit, the rest are trivial. Work-stealing must keep
    // total wall time near the longest single item, not the sum a
    // static half/half split would pay if the slow item's owner also
    // kept its whole remaining range.
    ThreadPool pool(3);
    std::atomic<int> hits{0};
    auto begin = std::chrono::steady_clock::now();
    pool.run(256, [&](std::size_t i) {
        if (i % 64 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
        ++hits;
    });
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - begin);
    EXPECT_EQ(hits.load(), 256);
    // Four 40ms sleeps across four participants: perfectly balanced is
    // ~40ms, a serial pile-up is ~160ms. Allow generous slack for a
    // loaded CI box — the assertion only rules out *systematic*
    // serialization (it passes trivially on a 1-core runner, where
    // 160ms is also the lower bound and the generous cap still holds).
    EXPECT_LT(elapsed.count(), 400);
}

TEST(ThreadPool, SharedPoolSingleton)
{
    EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
    std::vector<std::atomic<int>> hits(33);
    for (auto &h : hits)
        h = 0;
    ThreadPool::shared().run(hits.size(),
                             [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DeterministicIndexAddressedResults)
{
    // threads=1 and threads=N fill identical index-addressed slots.
    ThreadPool pool(7);
    std::vector<std::size_t> serial(1000), parallel(1000);
    pool.run(serial.size(), 1,
             [&](std::size_t i) { serial[i] = i * i + 3; });
    pool.run(parallel.size(),
             [&](std::size_t i) { parallel[i] = i * i + 3; });
    EXPECT_EQ(serial, parallel);
}

TEST(ExecContext, SerialByDefaultAndParallelFactory)
{
    ExecContext def;
    EXPECT_EQ(def.backend, Backend::Serial);
    EXPECT_FALSE(def.isParallel());

    auto par = ExecContext::parallel(4);
    EXPECT_EQ(par.backend, Backend::Parallel);
    EXPECT_EQ(par.threads, 4u);
    EXPECT_TRUE(par.isParallel());

    // A one-thread "parallel" context degenerates to serial.
    auto one = ExecContext::parallel(1);
    EXPECT_FALSE(one.isParallel());
}

TEST(ExecContext, ParallelRowsCoversRangeExactlyOnce)
{
    auto ctx = ExecContext::parallel(4);
    std::vector<std::atomic<int>> hits(1237);
    for (auto &h : hits)
        h = 0;
    ctx.parallelRows(hits.size(), [&](std::size_t b, std::size_t e) {
        ASSERT_LT(b, e);
        for (std::size_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(DefaultThreads, SpecGrammar)
{
    // The accepted grammar for GOBO_THREADS, pinned without mutating
    // the process environment (defaultThreads() itself caches the
    // parse, so env changes after first use are invisible anyway).
    EXPECT_EQ(parseThreadsSpec("1"), std::size_t{1});
    EXPECT_EQ(parseThreadsSpec("4"), std::size_t{4});
    EXPECT_EQ(parseThreadsSpec("65536"), std::size_t{65536});

    EXPECT_EQ(parseThreadsSpec(nullptr), std::nullopt);
    EXPECT_EQ(parseThreadsSpec(""), std::nullopt);
    EXPECT_EQ(parseThreadsSpec("0"), std::nullopt);
    EXPECT_EQ(parseThreadsSpec("-2"), std::nullopt);
    EXPECT_EQ(parseThreadsSpec("not-a-number"), std::nullopt);
    EXPECT_EQ(parseThreadsSpec("4x"), std::nullopt);       // junk tail
    EXPECT_EQ(parseThreadsSpec("1e3"), std::nullopt);      // no floats
    EXPECT_EQ(parseThreadsSpec("65537"), std::nullopt);    // cap
    EXPECT_EQ(parseThreadsSpec("99999999999999999999"),
              std::nullopt); // overflow
}

TEST(DefaultThreads, CachedAcrossEnvironmentChanges)
{
    // The environment is read once per process; later mutations must
    // not change the answer (hot paths call this per batch).
    std::size_t first = defaultThreads();
    EXPECT_GE(first, 1u);
    setenv("GOBO_THREADS", "61", 1);
    EXPECT_EQ(defaultThreads(), first);
    unsetenv("GOBO_THREADS");
    EXPECT_EQ(defaultThreads(), first);
}

TEST(ExecContext, UnderGrainLoopsRunInline)
{
    // A parallel context routes loops whose total estimated flops sit
    // under the grain through the pool's inline path: counted in
    // inlineRuns, never dispatched as a job. Big loops still dispatch.
    ThreadPool pool(2);
    auto ctx = ExecContext::parallel(3);
    ctx.pool = &pool;

    std::vector<int> order;
    ctx.parallelFor(4, std::size_t{1}, [&](std::size_t i) {
        order.push_back(static_cast<int>(i)); // unsynchronized: inline
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    PoolTelemetry t = pool.telemetry();
    EXPECT_EQ(t.jobs, 0u);
    EXPECT_EQ(t.inlineRuns, 1u);

    // Same loop with an over-grain cost hint becomes a real job.
    std::atomic<int> hits{0};
    ctx.parallelFor(4, ExecContext::kMinParallelFlops,
                    [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 4);
    EXPECT_EQ(pool.telemetry().jobs, 1u);

    // The hinted parallelRows under grain is inline too.
    std::vector<int> rows(100, 0);
    ctx.parallelRows(rows.size(), std::size_t{2},
                     [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i)
                             rows[i] = 1;
                     });
    EXPECT_EQ(std::accumulate(rows.begin(), rows.end(), 0), 100);
    EXPECT_EQ(pool.telemetry().inlineRuns, 2u);

    // grainFlops overrides the default: grain 1 parallelizes anything.
    ctx.grainFlops = 1;
    ctx.parallelFor(4, std::size_t{1}, [&](std::size_t) {});
    EXPECT_EQ(pool.telemetry().jobs, 2u);
}

} // namespace
} // namespace gobo
