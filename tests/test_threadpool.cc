/**
 * @file
 * Tests for the persistent thread pool: reuse across submissions,
 * worker capping, exception propagation, nested-submission fallback,
 * and determinism of index-addressed results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/context.hh"
#include "exec/threadpool.hh"

namespace gobo {
namespace {

TEST(ThreadPool, CoversEveryIndexOnceAcrossManySubmissions)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::atomic<int>> hits(97);
        for (auto &h : hits)
            h = 0;
        pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (auto &h : hits)
            ASSERT_EQ(h.load(), 1) << "round " << round;
    }
}

TEST(ThreadPool, ReusesPersistentWorkers)
{
    // Across many submissions the pool only ever uses its fixed set
    // of workers plus the calling thread — the spawn-per-call
    // behaviour this pool replaced would show a new id every round.
    ThreadPool pool(3);
    std::mutex m;
    std::set<std::thread::id> seen;
    for (int round = 0; round < 50; ++round)
        pool.run(64, [&](std::size_t) {
            std::lock_guard lock(m);
            seen.insert(std::this_thread::get_id());
        });
    EXPECT_LE(seen.size(), pool.workerCount() + 1);
}

TEST(ThreadPool, InlineWhenSerialOrTrivial)
{
    ThreadPool pool(4);
    std::vector<int> order;
    // parallelism 1: runs on the calling thread, in order, unlocked.
    pool.run(5, 1, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    // count 1 is inline too.
    auto caller = std::this_thread::get_id();
    pool.run(1, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    // count 0 never calls fn.
    pool.run(0, [&](std::size_t) { FAIL() << "called for empty range"; });
}

TEST(ThreadPool, CapsWorkersByWorkItemCount)
{
    ThreadPool pool(8);
    std::mutex m;
    std::set<std::thread::id> seen;
    pool.run(2, [&](std::size_t) {
        std::lock_guard lock(m);
        seen.insert(std::this_thread::get_id());
    });
    // Two items: at most two threads (caller + one worker) touch them.
    EXPECT_LE(seen.size(), 2u);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    EXPECT_THROW(
        pool.run(100,
                 [&](std::size_t i) {
                     ++calls;
                     if (i == 13)
                         throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The pool is still usable after an exception.
    std::atomic<int> ok{0};
    pool.run(10, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedSubmissionRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(16 * 8);
    for (auto &h : hits)
        h = 0;
    // A submission from inside a worker must not deadlock on its own
    // pool; it runs inline and the whole nest still covers every slot.
    pool.run(16, [&](std::size_t outer) {
        pool.run(8, [&](std::size_t inner) {
            ++hits[outer * 8 + inner];
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SharedPoolSingleton)
{
    EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
    std::vector<std::atomic<int>> hits(33);
    for (auto &h : hits)
        h = 0;
    ThreadPool::shared().run(hits.size(),
                             [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DeterministicIndexAddressedResults)
{
    // threads=1 and threads=N fill identical index-addressed slots.
    ThreadPool pool(7);
    std::vector<std::size_t> serial(1000), parallel(1000);
    pool.run(serial.size(), 1,
             [&](std::size_t i) { serial[i] = i * i + 3; });
    pool.run(parallel.size(),
             [&](std::size_t i) { parallel[i] = i * i + 3; });
    EXPECT_EQ(serial, parallel);
}

TEST(ExecContext, SerialByDefaultAndParallelFactory)
{
    ExecContext def;
    EXPECT_EQ(def.backend, Backend::Serial);
    EXPECT_FALSE(def.isParallel());

    auto par = ExecContext::parallel(4);
    EXPECT_EQ(par.backend, Backend::Parallel);
    EXPECT_EQ(par.threads, 4u);
    EXPECT_TRUE(par.isParallel());

    // A one-thread "parallel" context degenerates to serial.
    auto one = ExecContext::parallel(1);
    EXPECT_FALSE(one.isParallel());
}

TEST(ExecContext, ParallelRowsCoversRangeExactlyOnce)
{
    auto ctx = ExecContext::parallel(4);
    std::vector<std::atomic<int>> hits(1237);
    for (auto &h : hits)
        h = 0;
    ctx.parallelRows(hits.size(), [&](std::size_t b, std::size_t e) {
        ASSERT_LT(b, e);
        for (std::size_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(DefaultThreads, HonorsEnvironmentOverride)
{
    setenv("GOBO_THREADS", "3", 1);
    EXPECT_EQ(defaultThreads(), 3u);
    setenv("GOBO_THREADS", "not-a-number", 1);
    EXPECT_GE(defaultThreads(), 1u);
    unsetenv("GOBO_THREADS");
    EXPECT_GE(defaultThreads(), 1u);
}

} // namespace
} // namespace gobo
