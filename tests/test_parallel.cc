/**
 * @file
 * Tests for the parallel-for helper and the determinism guarantee of
 * multi-threaded model quantization.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/quantizer.hh"
#include "model/generate.hh"
#include "util/parallel.hh"

namespace gobo {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    parallelFor(hits.size(), 8, [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, InlineWhenSingleThreaded)
{
    std::vector<int> order;
    parallelFor(5, 1, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyAndSingleRanges)
{
    int calls = 0;
    parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelQuantization, BitIdenticalToSerial)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);

    ModelQuantOptions serial;
    serial.base.bits = 3;
    serial.embeddingBits = 4;
    serial.threads = 1;
    ModelQuantOptions parallel = serial;
    parallel.threads = 8;

    BertModel a = generateModel(cfg, 601);
    BertModel b = generateModel(cfg, 601);
    auto ra = quantizeModelInPlace(a, serial);
    auto rb = quantizeModelInPlace(b, parallel);

    EXPECT_EQ(ra.weightPayloadBytes, rb.weightPayloadBytes);
    ASSERT_EQ(ra.layers.size(), rb.layers.size());
    for (std::size_t i = 0; i < ra.layers.size(); ++i) {
        EXPECT_EQ(ra.layers[i].name, rb.layers[i].name);
        EXPECT_EQ(ra.layers[i].payloadBytes, rb.layers[i].payloadBytes);
        EXPECT_EQ(ra.layers[i].stats.outlierCount,
                  rb.layers[i].stats.outlierCount);
    }
    auto la = a.fcLayers();
    auto lb = b.fcLayers();
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i].weight->data(), lb[i].weight->data())
            << la[i].name;
    EXPECT_EQ(a.wordEmbedding.data(), b.wordEmbedding.data());
}

TEST(ParallelQuantization, StreamingBitIdenticalToSerial)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    ModelQuantOptions serial;
    serial.base.bits = 3;
    serial.embeddingBits = 4;
    ModelQuantOptions parallel = serial;
    parallel.threads = defaultThreads();

    auto ra = quantizeConfigStreaming(cfg, 603, serial);
    auto rb = quantizeConfigStreaming(cfg, 603, parallel);
    EXPECT_EQ(ra.weightPayloadBytes, rb.weightPayloadBytes);
    EXPECT_EQ(ra.embeddingPayloadBytes, rb.embeddingPayloadBytes);
    ASSERT_EQ(ra.layers.size(), rb.layers.size());
    for (std::size_t i = 0; i < ra.layers.size(); ++i)
        EXPECT_EQ(ra.layers[i].payloadBytes, rb.layers[i].payloadBytes);
}

} // namespace
} // namespace gobo
