/**
 * @file
 * Tests for the per-thread scratch arenas and the bounded decoded-row
 * cache (exec/scratch.hh).
 *
 * The cache is pure capacity management over integer-exact decode
 * output, so the contract splits cleanly: functional (a hit returns
 * exactly the bytes a fresh decode would produce; owner ids never
 * alias; a zero budget or over-budget block bypasses into the
 * transient path), accounting (hits/misses/evictions/bytes move the
 * scratchStats() aggregates, capacity reflects the budget), and
 * end-to-end (a packed model forward is bit-identical with the cache
 * on or off, and a second forward hits on the layers the first one
 * populated — the pooler being the canonical cross-forward winner).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/qexec.hh"
#include "exec/scratch.hh"
#include "exec/session.hh"
#include "model/generate.hh"
#include "obs/observer.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

/** Decode context: row r gets bytes (seed + r + col) & 0x3f over
 * exactly `cols` bytes — the callback contract is one row per call. */
struct PatternCtx
{
    std::uint8_t seed = 0;
    std::size_t cols = 0;
    std::size_t decodes = 0; ///< rows actually decoded (mutable probe).
};

void
patternDecode(const void *ctx, std::size_t row, std::uint8_t *out)
{
    auto *p = const_cast<PatternCtx *>(
        static_cast<const PatternCtx *>(ctx));
    ++p->decodes;
    for (std::size_t c = 0; c < p->cols; ++c)
        out[c] = static_cast<std::uint8_t>((p->seed + row + c) & 0x3f);
}

/** Expected bytes for rows [row0, row1) at `cols` <= 64. */
std::vector<std::uint8_t>
expectedBlock(std::uint8_t seed, std::size_t row0, std::size_t row1,
              std::size_t cols)
{
    std::vector<std::uint8_t> v((row1 - row0) * cols);
    for (std::size_t r = row0; r < row1; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            v[(r - row0) * cols + c] =
                static_cast<std::uint8_t>((seed + r + c) & 0x3f);
    return v;
}

TEST(DecodeCache, HitServesIdenticalBytesAndSkipsDecode)
{
    ScratchArena arena(4096);
    PatternCtx ctx{7, 32};
    std::uint64_t owner = nextScratchOwnerId();

    bool hit = true;
    const std::uint8_t *a =
        arena.decodedRows(owner, 0, 2, 6, 32, patternDecode, &ctx, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(ctx.decodes, 4u);
    auto want = expectedBlock(7, 2, 6, 32);
    EXPECT_EQ(std::memcmp(a, want.data(), want.size()), 0);

    hit = false;
    const std::uint8_t *b =
        arena.decodedRows(owner, 0, 2, 6, 32, patternDecode, &ctx, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(ctx.decodes, 4u) << "hit must not re-decode";
    EXPECT_EQ(a, b) << "hit serves the cached slot";
}

TEST(DecodeCache, AccountingFlowsIntoScratchStats)
{
    ScratchStats before = scratchStats();
    ScratchArena arena(4096);
    PatternCtx ctx{1, 16};
    std::uint64_t owner = nextScratchOwnerId();

    arena.decodedRows(owner, 0, 0, 4, 16, patternDecode, &ctx);
    arena.decodedRows(owner, 0, 0, 4, 16, patternDecode, &ctx);
    arena.decodedRows(owner, 0, 0, 4, 16, patternDecode, &ctx);

    ScratchStats after = scratchStats();
    EXPECT_EQ(after.arenas, before.arenas + 1);
    EXPECT_EQ(after.decodeRowMisses, before.decodeRowMisses + 4);
    EXPECT_EQ(after.decodeRowHits, before.decodeRowHits + 8);
    EXPECT_EQ(after.decodeCacheBytes, before.decodeCacheBytes + 64);
    EXPECT_EQ(after.decodeCacheCapacity,
              before.decodeCacheCapacity + 4096);
}

TEST(DecodeCache, EvictsUnderBudgetAndStaysBounded)
{
    // Budget fits exactly two 256-byte blocks; inserting four distinct
    // blocks must evict, and the held bytes never exceed the budget.
    ScratchStats before = scratchStats();
    ScratchArena arena(512);
    PatternCtx ctx{3, 32};
    std::uint64_t owner = nextScratchOwnerId();

    for (std::size_t blk = 0; blk < 4; ++blk)
        arena.decodedRows(owner, blk, 8 * blk, 8 * blk + 8, 32,
                          patternDecode, &ctx);
    ScratchStats after = scratchStats();
    EXPECT_GE(after.decodeCacheEvictions,
              before.decodeCacheEvictions + 2);
    EXPECT_LE(after.decodeCacheBytes - before.decodeCacheBytes, 512u);

    // The first block was evicted: asking again misses and re-decodes.
    bool hit = true;
    std::size_t decoded_before = ctx.decodes;
    arena.decodedRows(owner, 0, 0, 8, 32, patternDecode, &ctx, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(ctx.decodes, decoded_before + 8);
}

TEST(DecodeCache, OwnerIdsNeverAlias)
{
    // Same (block, rows, cols) tag under two owners: each owner sees
    // its own bytes, never the other's — the reuse-safety contract
    // behind handing out process-unique ids instead of pointers.
    ScratchArena arena(4096);
    PatternCtx ctx_a{10, 16}, ctx_b{40, 16};
    std::uint64_t owner_a = nextScratchOwnerId();
    std::uint64_t owner_b = nextScratchOwnerId();

    arena.decodedRows(owner_a, 0, 0, 2, 16, patternDecode, &ctx_a);
    bool hit = true;
    const std::uint8_t *b = arena.decodedRows(owner_b, 0, 0, 2, 16,
                                              patternDecode, &ctx_b,
                                              &hit);
    EXPECT_FALSE(hit) << "a different owner must not hit";
    auto want_b = expectedBlock(40, 0, 2, 16);
    EXPECT_EQ(std::memcmp(b, want_b.data(), want_b.size()), 0);

    // And owner A's slot survived B's insertion.
    hit = false;
    arena.decodedRows(owner_a, 0, 0, 2, 16, patternDecode, &ctx_a,
                      &hit);
    EXPECT_TRUE(hit);
}

TEST(DecodeCache, ZeroBudgetAndOverBudgetBypass)
{
    // Budget 0 = caching disabled: every request misses and decodes,
    // exactly the pre-cache behavior.
    ScratchArena off(0);
    PatternCtx ctx{5, 16};
    std::uint64_t owner = nextScratchOwnerId();
    for (int pass = 0; pass < 2; ++pass) {
        bool hit = true;
        const std::uint8_t *p = off.decodedRows(
            owner, 0, 0, 2, 16, patternDecode, &ctx, &hit);
        EXPECT_FALSE(hit);
        auto want = expectedBlock(5, 0, 2, 16);
        EXPECT_EQ(std::memcmp(p, want.data(), want.size()), 0);
    }
    EXPECT_EQ(ctx.decodes, 4u);

    // A block larger than the whole budget bypasses without evicting
    // what is cached.
    ScratchArena small(128);
    PatternCtx big{9, 16};
    std::uint64_t owner2 = nextScratchOwnerId();
    small.decodedRows(owner2, 0, 0, 2, 16, patternDecode, &big);
    bool hit = true;
    small.decodedRows(owner2, 1, 0, 32, 32, patternDecode, &big, &hit);
    EXPECT_FALSE(hit);
    hit = false;
    small.decodedRows(owner2, 0, 0, 2, 16, patternDecode, &big, &hit);
    EXPECT_TRUE(hit) << "over-budget bypass must not evict slots";
}

TEST(DecodeCache, SetBudgetDropsSlots)
{
    ScratchArena arena(4096);
    PatternCtx ctx{2, 16};
    std::uint64_t owner = nextScratchOwnerId();
    arena.decodedRows(owner, 0, 0, 2, 16, patternDecode, &ctx);
    arena.setDecodeCacheBudget(4096);
    bool hit = true;
    arena.decodedRows(owner, 0, 0, 2, 16, patternDecode, &ctx, &hit);
    EXPECT_FALSE(hit) << "budget replacement drops every slot";
    EXPECT_EQ(arena.decodeCacheBudget(), 4096u);
}

// ---------------------------------------------------------------------
// End-to-end: the cache under a real packed-model forward.

struct ModelSetup
{
    BertModel model;
    std::vector<std::int32_t> tokens;
};

ModelSetup
modelSetup()
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    ModelSetup s{generateModel(cfg, 42), {}};
    Rng rng(42 * 31 + 5);
    s.model.resizeHead(3);
    rng.fillGaussian(s.model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(s.model.headB.data(), 0.0, 0.5);
    for (std::size_t t = 0; t < 13; ++t)
        s.tokens.push_back(static_cast<std::int32_t>(rng.integer(
            0, static_cast<int>(cfg.vocabSize) - 1)));
    return s;
}

QuantizedBertModel
packedModel(const BertModel &m)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = WeightFormat::Packed;
    return QuantizedBertModel(m, qopt);
}

TEST(DecodeCacheForward, BitIdenticalCacheOnVsOff)
{
    ModelSetup s = modelSetup();
    InferenceSession session(packedModel(s.model),
                             ExecContext::serial());

    // Serial backend: every decode goes through this thread's arena.
    ScratchArena &arena = execScratch();
    std::size_t restore = arena.decodeCacheBudget();

    arena.setDecodeCacheBudget(std::size_t{4} * 1024 * 1024);
    Tensor cached = session.headLogits(s.tokens);
    Tensor cached2 = session.headLogits(s.tokens); // warm, hits served
    arena.setDecodeCacheBudget(0);
    Tensor uncached = session.headLogits(s.tokens);
    arena.setDecodeCacheBudget(restore);

    ASSERT_EQ(cached.size(), uncached.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
        EXPECT_EQ(cached(i), uncached(i)) << i;
        EXPECT_EQ(cached(i), cached2(i)) << i;
    }
}

TEST(DecodeCacheForward, SecondForwardHitsOnPooler)
{
    ModelSetup s = modelSetup();
    Observer obs;
    ExecContext ctx = ExecContext::serial();
    ctx.obs = &obs;
    InferenceSession session(packedModel(s.model), ctx);

    ScratchArena &arena = execScratch();
    std::size_t restore = arena.decodeCacheBudget();
    // Room for the whole mini model's decoded rows.
    arena.setDecodeCacheBudget(std::size_t{4} * 1024 * 1024);

    session.headLogits(s.tokens);
    session.headLogits(s.tokens);
    arena.setDecodeCacheBudget(restore);

    MetricsSnapshot snap = obs.metrics.snapshot();
    const auto *hits =
        snap.findCounter("qexec.layer.pooler.decode_cache_hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_GT(hits->value, 0u)
        << "pooler rows decoded in forward #1 must be served from "
           "cache in forward #2";
    const auto *misses =
        snap.findCounter("qexec.layer.pooler.decode_cache_misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_GT(misses->value, 0u) << "forward #1 populates via misses";
    // Every quantized layer re-decoded nothing on the second pass, so
    // across the run hits at least match misses.
    std::uint64_t total_hits = 0, total_misses = 0;
    for (const auto &c : snap.counters) {
        if (c.name.find(".decode_cache_hits") != std::string::npos)
            total_hits += c.value;
        if (c.name.find(".decode_cache_misses") != std::string::npos)
            total_misses += c.value;
    }
    EXPECT_GE(total_hits, total_misses);
}

} // namespace
} // namespace gobo
