/**
 * @file
 * Minimal strict JSON validator for tests. The exporters promise
 * *valid* JSON for arbitrary input bytes (hostile names, NaN
 * quantiles, never-happened timestamps); the brace-counting checks the
 * older tests use cannot catch an unescaped control character or a
 * bare `nan` token, so exporter tests validate with a real grammar.
 * Accepts exactly RFC 8259 (any byte >= 0x20 except `"` and `\` may
 * appear raw inside strings), rejects trailing garbage.
 */

#ifndef GOBO_TESTS_JSONLINT_HH
#define GOBO_TESTS_JSONLINT_HH

#include <cstddef>
#include <string_view>

namespace gobo {
namespace jsonlint {

class Parser
{
  public:
    explicit Parser(std::string_view text) : s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    static constexpr int maxDepth = 128;

    bool
    eof() const
    {
        return pos >= s.size();
    }

    char
    peek() const
    {
        return s[pos];
    }

    bool
    consume(char c)
    {
        if (eof() || s[pos] != c)
            return false;
        ++pos;
        return true;
    }

    void
    skipWs()
    {
        while (!eof() && (s[pos] == ' ' || s[pos] == '\t'
                          || s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(std::string_view word)
    {
        if (s.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    static bool
    isDigit(char c)
    {
        return c >= '0' && c <= '9';
    }

    static bool
    isHex(char c)
    {
        return isDigit(c) || (c >= 'a' && c <= 'f')
               || (c >= 'A' && c <= 'F');
    }

    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (!eof()) {
            char c = s[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control byte: must be escaped
            if (c == '\\') {
                if (eof())
                    return false;
                char e = s[pos++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i)
                        if (eof() || !isHex(s[pos++]))
                            return false;
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b'
                           && e != 'f' && e != 'n' && e != 'r'
                           && e != 't') {
                    return false;
                }
            }
        }
        return false; // unterminated
    }

    bool
    number()
    {
        consume('-');
        if (eof() || !isDigit(peek()))
            return false;
        if (!consume('0'))
            while (!eof() && isDigit(peek()))
                ++pos;
        if (consume('.')) {
            if (eof() || !isDigit(peek()))
                return false;
            while (!eof() && isDigit(peek()))
                ++pos;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!consume('+'))
                consume('-');
            if (eof() || !isDigit(peek()))
                return false;
            while (!eof() && isDigit(peek()))
                ++pos;
        }
        return true;
    }

    bool
    object()
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            if (!value())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    array()
    {
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    value()
    {
        if (++depth > maxDepth)
            return false;
        skipWs();
        bool ok;
        if (eof())
            ok = false;
        else if (peek() == '{')
            ok = object();
        else if (peek() == '[')
            ok = array();
        else if (peek() == '"')
            ok = string();
        else if (peek() == 't')
            ok = literal("true");
        else if (peek() == 'f')
            ok = literal("false");
        else if (peek() == 'n')
            ok = literal("null");
        else
            ok = number();
        --depth;
        return ok;
    }

    std::string_view s;
    std::size_t pos = 0;
    int depth = 0;
};

} // namespace jsonlint

/** True iff `text` is one complete, valid JSON document. */
inline bool
jsonValid(std::string_view text)
{
    return jsonlint::Parser(text).parse();
}

} // namespace gobo

#endif // GOBO_TESTS_JSONLINT_HH
