/**
 * @file
 * Tests for the serving layer (src/serve): load-generator determinism
 * and spec grammar, batch-forming bit-identity against one-at-a-time
 * serial replay, queue drain on shutdown (every request answered
 * exactly once), explicit overload/deadline shedding, tile occupancy
 * accounting, and checksum stability across backends and weight
 * formats — the properties that make a 100k-request soak a replayable
 * CI scenario.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "model/generate.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

/** Shared mini model with a filled task head (generateModel leaves it
 * zeroed; identity checks need real logits). Built once. */
const BertModel &
testModel()
{
    static const BertModel model = [] {
        BertModel m = generateModel(miniConfig(ModelFamily::BertBase), 42);
        Rng rng(42 * 31 + 5);
        m.resizeHead(3);
        rng.fillGaussian(m.headW.data(), 0.0, 0.5);
        rng.fillGaussian(m.headB.data(), 0.0, 0.5);
        return m;
    }();
    return model;
}

InferenceSession
makeSession(bool parallel, WeightFormat format)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = format;
    ExecContext ctx =
        parallel ? ExecContext::parallel(2) : ExecContext::serial();
    ctx.weightFormat = format;
    return InferenceSession(QuantizedBertModel(testModel(), qopt), ctx);
}

/** Small near-saturation trace: bursts against maxQueue=8 force
 * overload sheds, deadline below the worst queue wait forces deadline
 * sheds, and len spans every band the mini model can hold. */
TraceSpec
stressSpec()
{
    auto spec = parseTraceSpec(
        "n=160,seed=7,rate=400,len=1:64,long=0.25,burst=6x0.3,"
        "period=50000");
    EXPECT_TRUE(spec.has_value());
    return *spec;
}

TEST(Loadgen, SpecGrammarAcceptsAndRoundtrips)
{
    auto spec = parseTraceSpec(
        "n=100000,seed=7,rate=250.5,len=4:96,long=0.4,burst=4x0.2,"
        "period=100000");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->requests, 100000u);
    EXPECT_EQ(spec->seed, 7u);
    EXPECT_DOUBLE_EQ(spec->ratePerSec, 250.5);
    EXPECT_EQ(spec->minLen, 4u);
    EXPECT_EQ(spec->maxLen, 96u);
    EXPECT_DOUBLE_EQ(spec->longFraction, 0.4);
    EXPECT_DOUBLE_EQ(spec->burstFactor, 4.0);
    EXPECT_DOUBLE_EQ(spec->burstDuty, 0.2);
    EXPECT_EQ(spec->burstPeriodUs, 100000u);

    // Canonical string parses back to the same spec.
    auto again = parseTraceSpec(traceSpecString(*spec));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(traceSpecString(*again), traceSpecString(*spec));

    // Defaults apply for omitted keys.
    auto minimal = parseTraceSpec("n=10");
    ASSERT_TRUE(minimal.has_value());
    EXPECT_EQ(minimal->requests, 10u);
    EXPECT_EQ(minimal->seed, TraceSpec{}.seed);
}

TEST(Loadgen, SpecGrammarRejectsMalformedInput)
{
    const char *bad[] = {
        "",            // empty
        "n=0",         // zero requests
        "n=10000001",  // over the cap
        "n=-5",        // sign
        "n=5x",        // trailing junk
        "n=5,n",       // key with no value
        "rate=0",      // non-positive rate
        "rate=-3",     // sign
        "len=0:8",     // zero min
        "len=9:8",     // min > max
        "len=8",       // missing colon
        "long=1.5",    // out of [0,1]
        "burst=0.5x0.2", // factor < 1
        "burst=4x1.5", // duty out of [0,1]
        "burst=4",     // missing duty
        "period=0",    // zero period
        "frogs=7",     // unknown key
        "n=5,,rate=3", // empty pair
    };
    for (const char *text : bad)
        EXPECT_FALSE(parseTraceSpec(text).has_value()) << text;
}

TEST(Loadgen, ReplayIsDeterministic)
{
    auto spec = stressSpec();
    auto a = generateTrace(spec, 512);
    auto b = generateTrace(spec, 512);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), spec.requests);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_EQ(a[i].arrivalUs, b[i].arrivalUs);
        EXPECT_EQ(a[i].tokens, b[i].tokens);
        EXPECT_GE(a[i].arrivalUs, prev); // arrivals are sorted
        prev = a[i].arrivalUs;
        EXPECT_GE(a[i].tokens.size(), spec.minLen);
        EXPECT_LE(a[i].tokens.size(), spec.maxLen);
        for (std::int32_t t : a[i].tokens) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 512);
        }
    }

    // A different seed changes the trace (arrivals or tokens).
    spec.seed = 8;
    auto c = generateTrace(spec, 512);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].arrivalUs != c[i].arrivalUs
                  || a[i].tokens != c[i].tokens;
    EXPECT_TRUE(differs);
}

TEST(Serve, BatchFormingIsInvisibleInLogits)
{
    // Skewed lengths across every band; the batched tiles the server
    // forms must reproduce one-at-a-time serial logits bit for bit.
    auto spec = stressSpec();
    spec.requests = 96;
    auto trace = generateTrace(spec, testModel().config().vocabSize);

    InferenceSession parallel = makeSession(true, WeightFormat::Packed);
    ServeOptions opt; // generous queue: nothing sheds
    ServeServer server(parallel, opt);
    ServeRun run = server.runTrace(trace);
    EXPECT_EQ(run.summary.completed, trace.size());

    InferenceSession serial = makeSession(false, WeightFormat::Packed);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ServeResponse &r = run.responses[i];
        ASSERT_EQ(r.status, ServeStatus::Ok);
        Tensor ref = serial.headLogits(trace[i].tokens);
        ASSERT_EQ(ref.size(), r.logits.size());
        for (std::size_t j = 0; j < ref.size(); ++j)
            EXPECT_EQ(ref(j), r.logits(j))
                << "request " << i << " logit " << j;
    }
}

TEST(Serve, DrainAnswersEveryRequestExactlyOnce)
{
    auto spec = stressSpec();
    auto trace = generateTrace(spec, testModel().config().vocabSize);
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeOptions opt;
    opt.maxQueue = 8;
    opt.requestDeadlineUs = 30000;
    ServeServer server(session, opt);
    ServeRun run = server.runTrace(trace);
    const ServeSummary &sum = run.summary;

    // One response per request id, none lost, none duplicated.
    ASSERT_EQ(run.responses.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(run.responses[i].id, trace[i].id);
        if (run.responses[i].status == ServeStatus::Ok)
            EXPECT_GT(run.responses[i].logits.size(), 0u);
        else
            EXPECT_EQ(run.responses[i].logits.size(), 0u);
    }
    EXPECT_EQ(sum.completed + sum.shedOverload + sum.shedDeadline,
              sum.requests);
    EXPECT_EQ(sum.requests, trace.size());
}

TEST(Serve, OverloadAndDeadlineShedExplicitlyAndDeterministically)
{
    auto spec = stressSpec();
    auto trace = generateTrace(spec, testModel().config().vocabSize);
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeOptions opt;
    opt.maxQueue = 8;          // bursts overflow this
    opt.requestDeadlineUs = 30000; // below worst-case queue wait
    ServeServer a(session, opt);
    ServeRun ra = a.runTrace(trace);
    EXPECT_GT(ra.summary.shedOverload, 0u);
    EXPECT_GT(ra.summary.shedDeadline, 0u);
    EXPECT_GT(ra.summary.completed, 0u);

    // Same trace + options => identical shed decisions and checksum:
    // the queue dynamics run in virtual time, not wall time.
    ServeServer b(session, opt);
    ServeRun rb = b.runTrace(trace);
    EXPECT_EQ(ra.summary.shedOverload, rb.summary.shedOverload);
    EXPECT_EQ(ra.summary.shedDeadline, rb.summary.shedDeadline);
    EXPECT_EQ(ra.summary.batches, rb.summary.batches);
    EXPECT_EQ(ra.summary.responseChecksum, rb.summary.responseChecksum);
    EXPECT_DOUBLE_EQ(ra.summary.latencyP99Us, rb.summary.latencyP99Us);
    for (std::size_t i = 0; i < ra.responses.size(); ++i)
        EXPECT_EQ(ra.responses[i].status, rb.responses[i].status);
}

TEST(Serve, TileOccupancyAccountsFilledLanes)
{
    // Hand-built trace: 16 same-length requests arriving back to back
    // form exactly two full tiles -> occupancy 1.0; one more request
    // flushes alone on the deadline timer -> overall 17/24.
    std::vector<TraceRequest> trace;
    SplitMix64 tok(99);
    for (std::size_t i = 0; i < 17; ++i) {
        TraceRequest r;
        r.id = i;
        r.arrivalUs = i * 10;
        for (int t = 0; t < 8; ++t)
            r.tokens.push_back(static_cast<std::int32_t>(tok.next() % 512));
        trace.push_back(std::move(r));
    }
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeOptions opt;
    // The default resolves to the executing tier's seqTile (8 or 16);
    // pin the width the hand-built arithmetic below assumes.
    opt.tileLanes = 8;
    ServeServer server(session, opt);
    ServeRun run = server.runTrace(trace);
    EXPECT_EQ(run.summary.completed, 17u);
    EXPECT_EQ(run.summary.batches, 3u);
    EXPECT_EQ(run.summary.lanesFilled, 17u);
    EXPECT_EQ(run.summary.lanesTotal, 24u);
    EXPECT_NEAR(run.summary.tileOccupancy, 17.0 / 24.0, 1e-12);
    ASSERT_EQ(run.summary.bands.size(), 1u);
    EXPECT_EQ(run.summary.bands[0].band, 0u);
    EXPECT_EQ(run.summary.bands[0].minLen, 1u);
    EXPECT_EQ(run.summary.bands[0].maxLen, 16u);
    EXPECT_EQ(run.summary.bands[0].requests, 17u);
}

TEST(Serve, ChecksumStableAcrossBackendsAndFormats)
{
    auto spec = stressSpec();
    spec.requests = 64;
    auto trace = generateTrace(spec, testModel().config().vocabSize);
    ServeOptions opt;
    opt.maxQueue = 8;
    opt.requestDeadlineUs = 30000;

    std::uint64_t checksum = 0;
    bool first = true;
    for (bool parallel : {false, true})
        for (WeightFormat fmt :
             {WeightFormat::Unpacked, WeightFormat::Packed}) {
            InferenceSession session = makeSession(parallel, fmt);
            ServeServer server(session, opt);
            ServeRun run = server.runTrace(trace);
            if (first) {
                checksum = run.summary.responseChecksum;
                first = false;
            } else {
                EXPECT_EQ(run.summary.responseChecksum, checksum)
                    << "parallel=" << parallel;
            }
        }
    EXPECT_NE(checksum, 0u);
}

TEST(Serve, JsonReportIsWellFormed)
{
    auto spec = stressSpec();
    spec.requests = 32;
    auto trace = generateTrace(spec, testModel().config().vocabSize);
    InferenceSession session = makeSession(false, WeightFormat::Packed);
    ServeOptions opt;
    ServeServer server(session, opt);
    ServeRun run = server.runTrace(trace);

    ServeReportMeta meta;
    meta.trace = traceSpecString(spec);
    meta.kernelTier = "generic";
    meta.threads = 1;
    meta.engine = "qexec";
    meta.format = "packed";
    std::ostringstream os;
    writeServeJson(run.summary, opt, meta, os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"bench\": \"micro_serve\""), std::string::npos);
    EXPECT_NE(json.find("\"response_checksum\": \"0x"),
              std::string::npos);
    EXPECT_NE(json.find("\"tile_occupancy\""), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

} // namespace
} // namespace gobo
