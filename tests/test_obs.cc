/**
 * @file
 * Tests for the observability subsystem: metrics registry (sharded
 * counters/histograms, percentile extraction), tracer (span capture,
 * Chrome trace export), exporters, pool telemetry, and the two
 * contracts instrumentation must keep — null observers cost nothing
 * observable, and observed runs stay bit-identical across backends
 * and weight formats.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "jsonlint.hh"
#include "model/generate.hh"
#include "obs/export.hh"
#include "obs/observer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

TEST(Metrics, CountersAccumulateAndSnapshot)
{
    MetricsRegistry reg;
    CounterId a = reg.counter("a");
    CounterId b = reg.counter("b");
    reg.add(a, 3);
    reg.add(a);
    reg.add(b, 10);

    auto snap = reg.snapshot();
    ASSERT_NE(snap.findCounter("a"), nullptr);
    EXPECT_EQ(snap.findCounter("a")->value, 4u);
    EXPECT_EQ(snap.findCounter("b")->value, 10u);
    EXPECT_EQ(snap.findCounter("missing"), nullptr);
}

TEST(Metrics, CounterInterningIsIdempotent)
{
    MetricsRegistry reg;
    CounterId a1 = reg.counter("same");
    CounterId a2 = reg.counter("same");
    EXPECT_EQ(a1.index, a2.index);
    reg.add(a1);
    reg.add(a2);
    EXPECT_EQ(reg.snapshot().findCounter("same")->value, 2u);
}

TEST(Metrics, InvalidIdsAreIgnored)
{
    MetricsRegistry reg;
    reg.add(CounterId{});         // default id: no-op, no crash
    reg.observe(HistogramId{}, 1.0);
    EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST(Metrics, CountersMergeAcrossThreads)
{
    MetricsRegistry reg;
    CounterId c = reg.counter("threaded");
    constexpr int threads = 8, per_thread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i)
                reg.add(c);
        });
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(reg.snapshot().findCounter("threaded")->value,
              static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(Metrics, CountsSurviveThreadExit)
{
    MetricsRegistry reg;
    CounterId c = reg.counter("ephemeral");
    std::thread([&] { reg.add(c, 7); }).join();
    EXPECT_EQ(reg.snapshot().findCounter("ephemeral")->value, 7u);
}

TEST(Metrics, HistogramBucketsAndQuantiles)
{
    MetricsRegistry reg;
    HistogramId h = reg.histogram("lat", {1.0, 2.0, 4.0, 8.0});
    // 100 observations spread uniformly over (0, 2]: 50 land in
    // (…,1], 50 in (1,2].
    for (int i = 1; i <= 100; ++i)
        reg.observe(h, i * 0.02);
    auto snap = reg.snapshot();
    const HistogramSnapshot *hist = snap.findHistogram("lat");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 100u);
    EXPECT_EQ(hist->counts[0], 50u);
    EXPECT_EQ(hist->counts[1], 50u);
    EXPECT_NEAR(hist->mean(), 1.01, 1e-9);
    // p50 sits at the edge of the first bucket, p99 inside the second.
    EXPECT_NEAR(hist->quantile(0.5), 1.0, 0.05);
    EXPECT_GT(hist->quantile(0.99), 1.8);
    EXPECT_LE(hist->quantile(0.99), 2.0);
    EXPECT_EQ(hist->quantile(0.0), 0.0);
}

TEST(Metrics, HistogramOverflowClampsToLastBound)
{
    MetricsRegistry reg;
    HistogramId h = reg.histogram("of", {1.0, 10.0});
    reg.observe(h, 1e9);
    auto snap = reg.snapshot();
    const HistogramSnapshot *hist = snap.findHistogram("of");
    EXPECT_EQ(hist->counts[2], 1u); // overflow bucket
    EXPECT_EQ(hist->quantile(0.5), 10.0);
}

TEST(Metrics, OverflowCountAndLowerBoundFlag)
{
    MetricsRegistry reg;
    HistogramId h = reg.histogram("of2", {1.0, 10.0});
    for (int i = 0; i < 97; ++i)
        reg.observe(h, 0.5);
    for (int i = 0; i < 3; ++i)
        reg.observe(h, 1e6); // 3% overflow: past the 1% threshold
    auto snap = reg.snapshot();
    const HistogramSnapshot *hist = snap.findHistogram("of2");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->overflow(), 3u);
    EXPECT_NEAR(hist->overflowFraction(), 0.03, 1e-12);
    EXPECT_TRUE(hist->quantilesAreLowerBounds());
}

TEST(Metrics, RareOverflowDoesNotMarkLowerBounds)
{
    MetricsRegistry reg;
    HistogramId h = reg.histogram("rare", {1.0, 10.0});
    for (int i = 0; i < 999; ++i)
        reg.observe(h, 0.5);
    reg.observe(h, 1e6); // 0.1% overflow: under the threshold
    auto snap = reg.snapshot();
    const HistogramSnapshot *hist = snap.findHistogram("rare");
    EXPECT_EQ(hist->overflow(), 1u);
    EXPECT_FALSE(hist->quantilesAreLowerBounds());
}

TEST(Metrics, EmptyHistogramOverflowIsZero)
{
    MetricsRegistry reg;
    reg.histogram("nothing", {1.0});
    auto snap = reg.snapshot();
    const HistogramSnapshot *hist = snap.findHistogram("nothing");
    EXPECT_EQ(hist->overflow(), 0u);
    EXPECT_DOUBLE_EQ(hist->overflowFraction(), 0.0);
    EXPECT_FALSE(hist->quantilesAreLowerBounds());
}

TEST(Export, OverflowSurfacesInBothExporters)
{
    MetricsRegistry reg;
    HistogramId h = reg.histogram("sat_us", {1.0, 2.0});
    reg.observe(h, 0.5);
    reg.observe(h, 1e9); // 50% overflow
    auto snap = reg.snapshot();

    std::ostringstream table;
    printMetrics(snap, table);
    EXPECT_NE(table.str().find("Overflow"), std::string::npos);
    // Quantiles are clamped, so the console marks them as ">=" bounds.
    EXPECT_NE(table.str().find(">="), std::string::npos);

    std::ostringstream json;
    writeMetricsJson(snap, json);
    EXPECT_NE(json.str().find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"quantiles_lower_bound\": true"),
              std::string::npos);
}

TEST(Export, UnsaturatedHistogramIsNotMarked)
{
    MetricsRegistry reg;
    HistogramId h = reg.histogram("ok_us", {1.0, 2.0});
    for (int i = 0; i < 200; ++i)
        reg.observe(h, 0.5);
    auto snap = reg.snapshot();
    std::ostringstream table;
    printMetrics(snap, table);
    EXPECT_EQ(table.str().find(">="), std::string::npos);
    std::ostringstream json;
    writeMetricsJson(snap, json);
    EXPECT_NE(json.str().find("\"quantiles_lower_bound\": false"),
              std::string::npos);
}

TEST(Metrics, EmptyHistogramQuantileIsNaN)
{
    // An empty histogram has no defined quantile: NaN by contract, so
    // an all-shed serve run can never masquerade as 0-latency. The
    // JSON exporter must render that as null (never the invalid token
    // "nan"); the console table skips empty histograms entirely.
    MetricsRegistry reg;
    reg.histogram("never", {1.0});
    auto snap = reg.snapshot();
    EXPECT_TRUE(std::isnan(snap.findHistogram("never")->quantile(0.99)));
    EXPECT_TRUE(std::isnan(snap.findHistogram("never")->quantile(0.0)));
    EXPECT_EQ(snap.findHistogram("never")->mean(), 0.0);
    std::ostringstream json;
    writeMetricsJson(snap, json);
    EXPECT_EQ(json.str().find("nan"), std::string::npos);
    EXPECT_NE(json.str().find("\"p99\": null"), std::string::npos);
}

TEST(Metrics, RejectsBadBounds)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.histogram("h", {}), FatalError);
    EXPECT_THROW(reg.histogram("h", {2.0, 1.0}), FatalError);
    EXPECT_THROW(reg.histogram("h", {1.0, 1.0}), FatalError);
}

TEST(Metrics, LatencyBoundsAreAscending)
{
    auto bounds = latencyBoundsUs();
    ASSERT_FALSE(bounds.empty());
    EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_NEAR(bounds.back(), 1e7, 1.0); // 10 s in microseconds
}

TEST(Tracer, RecordsAndSortsSpans)
{
    Tracer tracer;
    tracer.record("b", 10.0, 5.0);
    tracer.record("a", 1.0, 2.0);
    auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "a");
    EXPECT_EQ(events[1].name, "b");
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST(Tracer, ThreadsGetDistinctTracks)
{
    Tracer tracer;
    tracer.record("main", 0.0, 1.0);
    std::thread([&] { tracer.record("worker", 0.5, 1.0); }).join();
    auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(ScopedSpanTest, RecordsDurationAndNesting)
{
    Observer obs;
    {
        ScopedSpan outer(&obs, "outer");
        ScopedSpan inner(&obs, "inner", 3);
    }
    auto events = obs.tracer.events();
    ASSERT_EQ(events.size(), 2u);
    // Inner closes first but starts later; sort is by start time.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner[3]");
    EXPECT_GE(events[1].tsUs, events[0].tsUs);
    EXPECT_LE(events[1].tsUs + events[1].durUs,
              events[0].tsUs + events[0].durUs + 1.0);
}

TEST(ScopedSpanTest, NullObserverRecordsNothing)
{
    // The null path must be safe and free of side effects.
    ScopedSpan span(nullptr, "ghost");
    ScopedSpan indexed(nullptr, "ghost", 7);
    Observer::count(nullptr, CounterId{}, 5);
    SUCCEED();
}

TEST(Export, ChromeTraceIsWellFormedJson)
{
    Observer obs;
    {
        ScopedSpan span(&obs, "layer", 0);
        ScopedSpan nested(&obs, "attention");
    }
    std::ostringstream os;
    writeChromeTrace(obs.tracer, os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"layer[0]\""), std::string::npos);
    EXPECT_NE(json.find("\"attention\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    // Crude structural check: balanced braces/brackets.
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Export, HostileNamesStillProduceValidJson)
{
    // Metric names are ASCII in practice, but the exporters promise
    // valid JSON for *any* bytes: control characters, quotes,
    // backslashes, and non-ASCII UTF-8 must all escape rather than
    // corrupt the document.
    MetricsRegistry reg;
    reg.add(reg.counter("ctl\x01|quote\"|back\\|nl\n|tab\t|caf\xc3\xa9"),
            7);
    auto snap = reg.snapshot();
    std::ostringstream json;
    writeMetricsJson(snap, json);
    const std::string doc = json.str();
    EXPECT_TRUE(jsonValid(doc)) << doc;
    EXPECT_NE(doc.find("\\u0001"), std::string::npos);
    EXPECT_NE(doc.find("\\\""), std::string::npos);
    EXPECT_NE(doc.find("\\\\"), std::string::npos);
    EXPECT_NE(doc.find("\\n"), std::string::npos);
    EXPECT_NE(doc.find("\\t"), std::string::npos);
    // The two bytes of U+00E9 escape per byte: lossless, never
    // malformed even if the input was not valid UTF-8.
    EXPECT_NE(doc.find("\\u00c3"), std::string::npos);
    EXPECT_NE(doc.find("\\u00a9"), std::string::npos);

    // Same contract through the trace exporter's span names.
    Observer obs;
    { ScopedSpan span(&obs, "bad\x02name\"\\\xc3\xa9"); }
    std::ostringstream trace;
    writeChromeTrace(obs.tracer, trace);
    EXPECT_TRUE(jsonValid(trace.str())) << trace.str();
    EXPECT_NE(trace.str().find("\\u0002"), std::string::npos);
}

TEST(Export, ChromeTraceMetadataNamesTracks)
{
    Observer obs; // ctor names the constructing thread's track "main"
    { ScopedSpan span(&obs, "on-main"); }
    std::thread([&] { obs.tracer.record("on-worker", 0.0, 1.0); })
        .join();

    std::ostringstream os;
    writeChromeTrace(obs.tracer, os);
    const std::string doc = os.str();
    EXPECT_TRUE(jsonValid(doc)) << doc;
    EXPECT_NE(doc.find("{\"name\": \"process_name\", \"ph\": \"M\", "
                       "\"pid\": 1, \"args\": {\"name\": \"gobo\"}}"),
              std::string::npos);
    EXPECT_NE(doc.find("{\"name\": \"thread_name\", \"ph\": \"M\", "
                       "\"pid\": 1, \"tid\": 0, "
                       "\"args\": {\"name\": \"main\"}}"),
              std::string::npos);
    // Unnamed tracks (pool workers never call nameThread) default.
    EXPECT_NE(doc.find("\"args\": {\"name\": \"worker-1\"}"),
              std::string::npos);
}

TEST(Export, SpanArgsRenderIntoChromeTrace)
{
    Observer obs;
    {
        ScopedSpan span(&obs, "serve.admit");
        span.arg("request", 17);
        span.arg("batch", 3);
    }
    {
        ScopedSpan plain(&obs, "unannotated");
    }
    std::ostringstream os;
    writeChromeTrace(obs.tracer, os);
    const std::string doc = os.str();
    EXPECT_TRUE(jsonValid(doc)) << doc;
    EXPECT_NE(doc.find("\"args\": {\"request\": 17, \"batch\": 3}"),
              std::string::npos);
    // Unannotated spans carry no args object at all: from the span
    // name to the end of its event object, "args" never appears.
    std::size_t at = doc.find("\"unannotated\"");
    ASSERT_NE(at, std::string::npos);
    std::string event = doc.substr(at, doc.find('}', at) - at);
    EXPECT_EQ(event.find("args"), std::string::npos) << event;
}

TEST(Export, TraceCountersSurfaceDroppedEvents)
{
    Observer obs;
    { ScopedSpan span(&obs, "kept"); }
    MetricsSnapshot snap = obs.metrics.snapshot();
    appendTraceCounters(snap, obs.tracer);
    ASSERT_NE(snap.findCounter("trace.dropped_events"), nullptr);
    EXPECT_EQ(snap.findCounter("trace.dropped_events")->value, 0u);
}

TEST(Export, MetricsConsoleAndJson)
{
    Observer obs;
    obs.metrics.add(obs.qexecForwards, 12);
    obs.metrics.observe(obs.sequenceLatencyUs, 100.0);
    auto snap = obs.metrics.snapshot();

    std::ostringstream table;
    printMetrics(snap, table);
    EXPECT_NE(table.str().find("qexec.forwards"), std::string::npos);
    EXPECT_NE(table.str().find("session.sequence_latency_us"),
              std::string::npos);

    std::ostringstream json;
    writeMetricsJson(snap, json);
    EXPECT_NE(json.str().find("\"qexec.forwards\": 12"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"p99\""), std::string::npos);
}

TEST(Export, SummarizeSpansAggregatesByName)
{
    Tracer tracer;
    tracer.record("layer[0]", 0.0, 10.0);
    tracer.record("layer[0]", 20.0, 30.0);
    tracer.record("layer[1]", 50.0, 5.0);
    auto summary = summarizeSpans(tracer);
    ASSERT_EQ(summary.size(), 2u);
    EXPECT_EQ(summary[0].name, "layer[0]"); // largest total first
    EXPECT_EQ(summary[0].count, 2u);
    EXPECT_DOUBLE_EQ(summary[0].totalUs, 40.0);
    EXPECT_DOUBLE_EQ(summary[0].meanUs, 20.0);
    EXPECT_EQ(summary[1].count, 1u);
}

TEST(Export, PoolTelemetryFoldsIntoCounters)
{
    ThreadPool pool(2);
    std::atomic<int> hits{0};
    pool.run(64, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 64);

    PoolTelemetry t = pool.telemetry();
    EXPECT_EQ(t.jobs, 1u);
    EXPECT_EQ(t.itemsDrained, 64u);
    EXPECT_EQ(t.workerItems.size(), 2u);

    MetricsSnapshot snap;
    appendPoolCounters(snap, t);
    ASSERT_NE(snap.findCounter("pool.jobs"), nullptr);
    EXPECT_EQ(snap.findCounter("pool.jobs")->value, 1u);
    EXPECT_EQ(snap.findCounter("pool.items_drained")->value, 64u);
    EXPECT_NE(snap.findCounter("pool.worker[0].items"), nullptr);
    EXPECT_NE(snap.findCounter("pool.worker[1].items"), nullptr);
}

TEST(PoolTelemetryTest, InlineRunsAreCounted)
{
    ThreadPool pool(2);
    pool.run(1, [](std::size_t) {}); // count <= 1 runs inline
    PoolTelemetry t = pool.telemetry();
    EXPECT_EQ(t.jobs, 0u);
    EXPECT_EQ(t.inlineRuns, 1u);
}

/** Shared fixture: a mini model + batch for end-to-end contracts. */
class ObservedInference : public ::testing::Test
{
  protected:
    ObservedInference()
        : model(generateModel(miniConfig(ModelFamily::BertBase), 11))
    {
        // generateModel leaves the task head zeroed; fill it so the
        // logit-level identity checks compare real values.
        model.resizeHead(3);
        Rng rng(23);
        rng.fillGaussian(model.headW.data(), 0.0, 0.5);
        rng.fillGaussian(model.headB.data(), 0.0, 0.5);
        for (int s = 0; s < 4; ++s) {
            std::vector<std::int32_t> seq;
            for (int t = 0; t < 12; ++t)
                seq.push_back(static_cast<std::int32_t>(rng.integer(
                    0,
                    static_cast<int>(model.config().vocabSize) - 1)));
            batch.push_back(std::move(seq));
        }
    }

    static void
    expectIdentical(const std::vector<Tensor> &a,
                    const std::vector<Tensor> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].size(), b[i].size());
            for (std::size_t j = 0; j < a[i].size(); ++j)
                EXPECT_EQ(a[i](j), b[i](j))
                    << "logit mismatch at [" << i << "][" << j << "]";
        }
    }

    BertModel model;
    TokenBatch batch;
};

TEST_F(ObservedInference, Fp32BitIdenticalWithObserverOn)
{
    // Baseline: no observer, serial.
    InferenceSession plain(model, ExecContext::serial());
    auto expected = plain.headLogitsBatch(batch);

    // Observed serial and observed parallel must match exactly.
    Observer obs;
    ExecContext serial = ExecContext::serial();
    serial.obs = &obs;
    InferenceSession observed_serial(model, serial);
    expectIdentical(expected, observed_serial.headLogitsBatch(batch));

    ExecContext parallel = ExecContext::parallel(4);
    parallel.obs = &obs;
    InferenceSession observed_parallel(model, parallel);
    expectIdentical(expected,
                    observed_parallel.headLogitsBatch(batch));
}

TEST_F(ObservedInference, QuantizedBitIdenticalWithObserverOn)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    InferenceSession plain(QuantizedBertModel(model, qopt),
                           ExecContext::serial());
    auto expected = plain.headLogitsBatch(batch);

    // Observed Unpacked/parallel and observed Packed/parallel agree
    // with the unobserved serial Unpacked run bit for bit.
    Observer obs;
    ExecContext parallel = ExecContext::parallel(4);
    parallel.obs = &obs;
    InferenceSession unpacked(QuantizedBertModel(model, qopt),
                              parallel);
    expectIdentical(expected, unpacked.headLogitsBatch(batch));

    qopt.format = WeightFormat::Packed;
    InferenceSession packed(QuantizedBertModel(model, qopt), parallel);
    expectIdentical(expected, packed.headLogitsBatch(batch));
}

TEST_F(ObservedInference, SpansAndCountersCoverTheForwardPass)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = WeightFormat::Packed;

    Observer obs;
    ExecContext ctx = ExecContext::serial();
    ctx.obs = &obs;
    InferenceSession session(QuantizedBertModel(model, qopt), ctx);
    session.headLogitsBatch(batch);

    auto snap = obs.metrics.snapshot();
    EXPECT_EQ(snap.findCounter("session.batches")->value, 1u);
    EXPECT_EQ(snap.findCounter("session.sequences")->value,
              batch.size());
    EXPECT_EQ(snap.findCounter("session.tokens")->value,
              batch.size() * batch[0].size());
    // Packed 3-bit decodes through the 24-bit-group path; every
    // QuantizedLinear forward decodes its output rows.
    EXPECT_GT(snap.findCounter("qexec.forwards")->value, 0u);
    EXPECT_GT(snap.findCounter("qexec.rows_decoded")->value, 0u);
    EXPECT_GT(snap.findCounter("qexec.bytes_streamed")->value, 0u);
    EXPECT_GT(snap.findCounter("qexec.decode.group24")->value, 0u);
    EXPECT_EQ(snap.findCounter("qexec.decode.unpacked")->value, 0u);
    const HistogramSnapshot *lat =
        snap.findHistogram("session.sequence_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, batch.size());
    EXPECT_GT(lat->quantile(0.99), 0.0);

    // The trace has per-layer, per-component and per-linear spans.
    auto summary = summarizeSpans(obs.tracer);
    auto has = [&](const std::string &name) {
        for (const auto &s : summary)
            if (s.name == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("layer[0]"));
    EXPECT_TRUE(has("attention"));
    EXPECT_TRUE(has("ffn"));
    EXPECT_TRUE(has("layernorm"));
    EXPECT_TRUE(has("embed"));
    EXPECT_TRUE(has("enc[0].query"));
    EXPECT_TRUE(has("pooler"));
    EXPECT_TRUE(has("session.headLogitsBatch"));
}

TEST_F(ObservedInference, UnpackedCountsNoRowDecodes)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    Observer obs;
    ExecContext ctx = ExecContext::serial();
    ctx.obs = &obs;
    InferenceSession session(QuantizedBertModel(model, qopt), ctx);
    session.headLogits(batch[0]);
    auto snap = obs.metrics.snapshot();
    EXPECT_EQ(snap.findCounter("qexec.rows_decoded")->value, 0u);
    EXPECT_GT(snap.findCounter("qexec.decode.unpacked")->value, 0u);
    EXPECT_EQ(snap.findCounter("qexec.decode.group24")->value, 0u);
}

} // namespace
} // namespace gobo
