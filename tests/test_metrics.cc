/**
 * @file
 * Tests for task metrics (span F1, accuracy).
 */

#include <gtest/gtest.h>

#include <vector>

#include "task/metrics.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(SpanF1Test, ExactMatchIsOne)
{
    EXPECT_DOUBLE_EQ(spanF1(3, 7, 3, 7), 1.0);
    EXPECT_DOUBLE_EQ(spanF1(5, 5, 5, 5), 1.0);
}

TEST(SpanF1Test, DisjointIsZero)
{
    EXPECT_DOUBLE_EQ(spanF1(0, 2, 5, 8), 0.0);
    EXPECT_DOUBLE_EQ(spanF1(5, 8, 0, 2), 0.0);
}

TEST(SpanF1Test, PartialOverlap)
{
    // Pred [0,3] (4 tokens), gold [2,5] (4 tokens), overlap 2.
    // P = 0.5, R = 0.5, F1 = 0.5.
    EXPECT_DOUBLE_EQ(spanF1(0, 3, 2, 5), 0.5);
}

TEST(SpanF1Test, AsymmetricLengths)
{
    // Pred [2,2] inside gold [0,9]: P=1, R=0.1, F1 = 2*0.1/1.1.
    EXPECT_NEAR(spanF1(2, 2, 0, 9), 2.0 * 0.1 / 1.1, 1e-12);
}

TEST(SpanF1Test, SymmetricInArguments)
{
    EXPECT_DOUBLE_EQ(spanF1(1, 4, 3, 9), spanF1(3, 9, 1, 4));
}

TEST(SpanF1Test, RejectsInvertedSpans)
{
    EXPECT_THROW(spanF1(5, 3, 0, 1), FatalError);
    EXPECT_THROW(spanF1(0, 1, 5, 3), FatalError);
}

TEST(AccuracyTest, CountsMatches)
{
    std::vector<int> pred{0, 1, 2, 1};
    std::vector<int> gold{0, 1, 1, 1};
    EXPECT_DOUBLE_EQ(accuracy(pred, gold), 0.75);
}

TEST(AccuracyTest, RejectsMismatchedOrEmpty)
{
    std::vector<int> a{1}, b{1, 2}, empty;
    EXPECT_THROW(accuracy(a, b), FatalError);
    EXPECT_THROW(accuracy(empty, empty), FatalError);
}

} // namespace
} // namespace gobo
