/**
 * @file
 * Unit and property tests for the 1-D clustering engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/cluster.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace gobo {
namespace {

std::vector<float>
gaussianSample(std::size_t n, std::uint64_t seed, double sigma = 0.05)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    rng.fillGaussian(xs, 0.0, sigma);
    return xs;
}

TEST(SortedWeightsTest, SortsAndQueries)
{
    std::vector<float> xs{3.0f, 1.0f, 2.0f, 2.0f, 5.0f};
    SortedWeights sw(xs);
    EXPECT_EQ(sw.size(), 5u);
    EXPECT_TRUE(std::is_sorted(sw.values().begin(), sw.values().end()));
    EXPECT_EQ(sw.lowerBound(2.0), 1u);
    EXPECT_EQ(sw.lowerBound(2.5), 3u);
    EXPECT_EQ(sw.lowerBound(100.0), 5u);
    EXPECT_DOUBLE_EQ(sw.segmentSum(0, 5), 13.0);
    EXPECT_DOUBLE_EQ(sw.segmentMean(1, 3), 2.0);
    EXPECT_THROW(sw.segmentMean(2, 2), FatalError);
}

TEST(SortedWeightsTest, SegmentNormsMatchBruteForce)
{
    auto xs = gaussianSample(2000, 71);
    SortedWeights sw(xs);
    const auto &v = sw.values();
    for (auto [b, e, c] :
         {std::tuple<std::size_t, std::size_t, double>{0, 2000, 0.0},
          {100, 900, 0.01},
          {0, 1, -0.3},
          {1500, 2000, 0.08},
          {0, 2000, -0.2}}) {
        double l1 = 0.0, l2 = 0.0;
        for (std::size_t i = b; i < e; ++i) {
            double d = static_cast<double>(v[i]) - c;
            l1 += std::abs(d);
            l2 += d * d;
        }
        EXPECT_NEAR(sw.segmentL1(b, e, c), l1, 1e-6 * (l1 + 1));
        EXPECT_NEAR(sw.segmentL2(b, e, c), l2, 1e-6 * (l2 + 1));
    }
}

TEST(EqualPopulationCentroids, BalancedBins)
{
    std::vector<float> xs;
    for (int i = 0; i < 80; ++i)
        xs.push_back(static_cast<float>(i));
    SortedWeights sw(xs);
    auto c = equalPopulationCentroids(sw, 8);
    ASSERT_EQ(c.size(), 8u);
    // Bin j holds [10j, 10j+9]; its mean is 10j + 4.5.
    for (std::size_t j = 0; j < 8; ++j)
        EXPECT_FLOAT_EQ(c[j], 10.0f * static_cast<float>(j) + 4.5f);
}

TEST(EqualPopulationCentroids, FewerValuesThanBins)
{
    std::vector<float> xs{1.0f, 2.0f};
    SortedWeights sw(xs);
    auto c = equalPopulationCentroids(sw, 8);
    EXPECT_LE(c.size(), 2u);
    EXPECT_FALSE(c.empty());
}

TEST(LinearCentroidsTest, Equidistant)
{
    auto c = linearCentroids(-1.0, 1.0, 5);
    ASSERT_EQ(c.size(), 5u);
    EXPECT_FLOAT_EQ(c.front(), -1.0f);
    EXPECT_FLOAT_EQ(c.back(), 1.0f);
    EXPECT_FLOAT_EQ(c[2], 0.0f);
    auto single = linearCentroids(2.0, 4.0, 1);
    EXPECT_FLOAT_EQ(single[0], 3.0f);
    EXPECT_THROW(linearCentroids(1.0, 0.0, 4), FatalError);
}

TEST(AssignNearest, MatchesBruteForce)
{
    auto xs = gaussianSample(3000, 73);
    std::vector<float> centroids{-0.08f, -0.02f, 0.0f, 0.03f, 0.09f};
    auto idx = assignNearest(xs, centroids);
    ASSERT_EQ(idx.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double best = 1e30;
        std::size_t best_j = 0;
        for (std::size_t j = 0; j < centroids.size(); ++j) {
            double d = std::abs(static_cast<double>(xs[i])
                                - centroids[j]);
            if (d < best) {
                best = d;
                best_j = j;
            }
        }
        double chosen = std::abs(static_cast<double>(xs[i])
                                 - centroids[idx[i]]);
        // Ties may go either way; distances must match.
        EXPECT_NEAR(chosen, best, 1e-9);
        (void)best_j;
    }
}

TEST(AssignNearest, RequiresSortedCentroids)
{
    std::vector<float> xs{0.0f};
    std::vector<float> empty;
    EXPECT_THROW(assignNearest(xs, empty), FatalError);
}

TEST(ClusterWeights, GoboStopsAtL1Minimum)
{
    auto xs = gaussianSample(50000, 79);
    auto res = clusterWeights(xs, 3, CentroidMethod::Gobo);
    ASSERT_FALSE(res.history.empty());
    // The chosen iteration must hold the smallest L1 in the history.
    double min_l1 = res.history.front().l1;
    for (const auto &rec : res.history)
        min_l1 = std::min(min_l1, rec.l1);
    EXPECT_NEAR(res.finalL1, min_l1, 1e-9 * (min_l1 + 1));
}

TEST(ClusterWeights, KMeansL2NonIncreasing)
{
    auto xs = gaussianSample(50000, 83);
    auto res = clusterWeights(xs, 3, CentroidMethod::KMeans);
    for (std::size_t i = 1; i < res.history.size(); ++i)
        EXPECT_LE(res.history[i].l2, res.history[i - 1].l2 + 1e-9);
}

TEST(ClusterWeights, KMeansReachesLowerL2ThanGobo)
{
    auto xs = gaussianSample(100000, 89);
    auto gobo = clusterWeights(xs, 3, CentroidMethod::Gobo);
    auto km = clusterWeights(xs, 3, CentroidMethod::KMeans);
    EXPECT_LE(km.finalL2, gobo.finalL2 + 1e-9);
    // ...but GOBO holds the lower (or equal) L1: that is its objective.
    EXPECT_LE(gobo.finalL1, km.finalL1 + 1e-9);
}

TEST(ClusterWeights, GoboConvergesFasterThanKMeans)
{
    auto xs = gaussianSample(200000, 97);
    auto gobo = clusterWeights(xs, 3, CentroidMethod::Gobo);
    auto km = clusterWeights(xs, 3, CentroidMethod::KMeans);
    EXPECT_LT(gobo.iterations, km.iterations);
    // The paper reports ~7 iterations for 3-bit GOBO.
    EXPECT_LE(gobo.iterations, 20u);
}

TEST(ClusterWeights, LinearIsNonIterative)
{
    auto xs = gaussianSample(10000, 101);
    auto res = clusterWeights(xs, 3, CentroidMethod::Linear);
    EXPECT_EQ(res.iterations, 0u);
    ASSERT_EQ(res.centroids.size(), 8u);
    float lo = res.centroids.front(), hi = res.centroids.back();
    float step = (hi - lo) / 7.0f;
    for (std::size_t j = 1; j < 8; ++j)
        EXPECT_NEAR(res.centroids[j] - res.centroids[j - 1], step, 1e-4);
}

TEST(ClusterWeights, ExactWhenFewDistinctValues)
{
    std::vector<float> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back(static_cast<float>(i % 4)); // 4 distinct values
    for (auto m : {CentroidMethod::Gobo, CentroidMethod::KMeans}) {
        auto res = clusterWeights(xs, 3, m);
        EXPECT_NEAR(res.finalL1, 0.0, 1e-9);
        EXPECT_NEAR(res.finalL2, 0.0, 1e-9);
    }
}

TEST(ClusterWeights, HandlesTinyInputs)
{
    std::vector<float> xs{0.5f, -0.5f};
    auto res = clusterWeights(xs, 3, CentroidMethod::Gobo);
    EXPECT_NEAR(res.finalL1, 0.0, 1e-9);
    EXPECT_THROW(clusterWeights({}, 3, CentroidMethod::Gobo), FatalError);
    EXPECT_THROW(clusterWeights(xs, 0, CentroidMethod::Gobo), FatalError);
    EXPECT_THROW(clusterWeights(xs, 9, CentroidMethod::Gobo), FatalError);
}

/** Properties that must hold for every (bits, method) combination. */
class ClusterSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, CentroidMethod>>
{
};

TEST_P(ClusterSweep, CentroidsSortedAndBounded)
{
    auto [bits, method] = GetParam();
    auto xs = gaussianSample(20000, 103 + bits);
    auto res = clusterWeights(xs, bits, method);
    EXPECT_LE(res.centroids.size(), std::size_t{1} << bits);
    EXPECT_FALSE(res.centroids.empty());
    EXPECT_TRUE(std::is_sorted(res.centroids.begin(),
                               res.centroids.end()));
    auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
    EXPECT_GE(res.centroids.front(), *mn - 1e-6);
    EXPECT_LE(res.centroids.back(), *mx + 1e-6);
}

TEST_P(ClusterSweep, FinalNormsMatchAssignment)
{
    auto [bits, method] = GetParam();
    auto xs = gaussianSample(5000, 211 + bits);
    auto res = clusterWeights(xs, bits, method);
    auto idx = assignNearest(xs, res.centroids);
    double l1 = 0.0, l2 = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double d = static_cast<double>(xs[i]) - res.centroids[idx[i]];
        l1 += std::abs(d);
        l2 += d * d;
    }
    EXPECT_NEAR(res.finalL1, l1, 1e-6 * (l1 + 1));
    EXPECT_NEAR(res.finalL2, l2, 1e-6 * (l2 + 1));
}

INSTANTIATE_TEST_SUITE_P(
    BitsByMethod, ClusterSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(CentroidMethod::Gobo,
                                         CentroidMethod::KMeans,
                                         CentroidMethod::Linear)));

/** More bits must never hurt the achievable L1/L2 (same method). */
class ClusterMonotone : public ::testing::TestWithParam<CentroidMethod>
{
};

TEST_P(ClusterMonotone, NormsImproveWithBits)
{
    auto method = GetParam();
    auto xs = gaussianSample(30000, 307);
    double prev_l1 = 1e300;
    for (unsigned bits = 1; bits <= 7; ++bits) {
        auto res = clusterWeights(xs, bits, method);
        EXPECT_LE(res.finalL1, prev_l1 * 1.001);
        prev_l1 = res.finalL1;
    }
}

INSTANTIATE_TEST_SUITE_P(Methods, ClusterMonotone,
                         ::testing::Values(CentroidMethod::Gobo,
                                           CentroidMethod::KMeans,
                                           CentroidMethod::Linear));

} // namespace
} // namespace gobo
