/**
 * @file
 * Tests for the console table renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"

namespace gobo {
namespace {

TEST(ConsoleTable, AlignsColumns)
{
    ConsoleTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "23"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Every line has the same or shorter width; the rule line exists.
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(ConsoleTable, RejectsWrongArity)
{
    ConsoleTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), FatalError);
}

TEST(ConsoleTable, RejectsEmptyHeader)
{
    EXPECT_THROW(ConsoleTable({}), FatalError);
}

TEST(ConsoleTable, NumberFormatting)
{
    EXPECT_EQ(ConsoleTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ConsoleTable::num(10.0, 0), "10");
    EXPECT_EQ(ConsoleTable::pct(99.956, 2), "99.96%");
    EXPECT_EQ(ConsoleTable::pct(0.5, 1), "0.5%");
}

} // namespace
} // namespace gobo
