/**
 * @file
 * Tests for model/tensor binary serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "model/generate.hh"
#include "model/serialize.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(TensorIo, Rank1Roundtrip)
{
    Tensor t(5);
    for (std::size_t i = 0; i < 5; ++i)
        t(i) = static_cast<float>(i) * 1.5f;
    std::stringstream ss;
    writeTensor(ss, t);
    Tensor back = readTensor(ss);
    EXPECT_EQ(back.rank(), 1u);
    EXPECT_EQ(back.data(), t.data());
}

TEST(TensorIo, Rank2Roundtrip)
{
    Tensor t(3, 4);
    t(2, 3) = -7.25f;
    std::stringstream ss;
    writeTensor(ss, t);
    Tensor back = readTensor(ss);
    EXPECT_EQ(back.rows(), 3u);
    EXPECT_EQ(back.cols(), 4u);
    EXPECT_EQ(back(2, 3), -7.25f);
}

TEST(TensorIo, TruncatedStreamIsFatal)
{
    Tensor t(4, 4);
    std::stringstream ss;
    writeTensor(ss, t);
    std::string full = ss.str();
    std::stringstream trunc(full.substr(0, full.size() / 2));
    EXPECT_THROW(readTensor(trunc), FatalError);
}

TEST(ModelIo, StreamRoundtrip)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 3);
    m.resizeHead(3);
    m.headW(1, 2) = 0.125f;

    std::stringstream ss;
    saveModel(ss, m);
    BertModel back = loadModel(ss);

    EXPECT_EQ(back.config().name, cfg.name);
    EXPECT_EQ(back.config().numLayers, cfg.numLayers);
    EXPECT_EQ(back.config().hidden, cfg.hidden);
    EXPECT_EQ(back.headW.rows(), 3u);
    EXPECT_EQ(back.headW(1, 2), 0.125f);
    EXPECT_EQ(back.wordEmbedding.data(), m.wordEmbedding.data());
    EXPECT_EQ(back.encoders[2].valueW.data(), m.encoders[2].valueW.data());
    EXPECT_EQ(back.encoders[5].outLnBeta.data(),
              m.encoders[5].outLnBeta.data());
    EXPECT_EQ(back.poolerW.data(), m.poolerW.data());
}

TEST(ModelIo, FileRoundtrip)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 5);
    auto path = std::filesystem::temp_directory_path()
                / "gobo_test_model.bin";
    saveModel(path.string(), m);
    BertModel back = loadModel(path.string());
    EXPECT_EQ(back.wordEmbedding.data(), m.wordEmbedding.data());
    std::filesystem::remove(path);
}

TEST(ModelIo, MissingFileIsFatal)
{
    EXPECT_THROW(loadModel("/nonexistent/path/model.bin"), FatalError);
}

TEST(ModelIo, BadMagicIsFatal)
{
    std::stringstream ss;
    ss.write("JUNKJUNKJUNKJUNK", 16);
    EXPECT_THROW(loadModel(ss), FatalError);
}

TEST(ModelIo, TruncatedModelIsFatal)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 7);
    std::stringstream ss;
    saveModel(ss, m);
    std::string full = ss.str();
    std::stringstream trunc(full.substr(0, full.size() * 3 / 4));
    EXPECT_THROW(loadModel(trunc), FatalError);
}

} // namespace
} // namespace gobo
