/**
 * @file
 * Tests for the dense tensor container.
 */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(TensorTest, EmptyByDefault)
{
    Tensor t;
    EXPECT_EQ(t.rank(), 0u);
    EXPECT_EQ(t.size(), 0u);
}

TEST(TensorTest, Rank1Construction)
{
    Tensor t(5);
    EXPECT_EQ(t.rank(), 1u);
    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.dim(0), 5u);
    EXPECT_EQ(t.rows(), 5u);
    EXPECT_EQ(t.cols(), 1u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(t(i), 0.0f);
}

TEST(TensorTest, Rank2Construction)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.size(), 12u);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    t(1, 2) = 7.0f;
    EXPECT_EQ(t(1, 2), 7.0f);
    // Row-major layout: flat index 1*4+2.
    EXPECT_EQ(t.flat()[6], 7.0f);
}

TEST(TensorTest, AdoptData)
{
    Tensor t(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_EQ(t(0, 0), 1.0f);
    EXPECT_EQ(t(1, 1), 4.0f);
    EXPECT_THROW(Tensor(2, 2, {1.0f, 2.0f}), FatalError);
}

TEST(TensorTest, RowSpans)
{
    Tensor t(2, 3);
    t(1, 0) = 5.0f;
    auto row = t.row(1);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], 5.0f);
    row[2] = 9.0f;
    EXPECT_EQ(t(1, 2), 9.0f);
    EXPECT_THROW(t.row(2), FatalError);
    Tensor v(4);
    EXPECT_THROW(v.row(0), FatalError);
}

TEST(TensorTest, Fill)
{
    Tensor t(2, 2);
    t.fill(3.5f);
    for (float v : t.flat())
        EXPECT_EQ(v, 3.5f);
}

TEST(TensorTest, DimBoundsChecked)
{
    Tensor t(2, 2);
    EXPECT_EQ(t.dim(1), 2u);
    EXPECT_THROW(t.dim(2), FatalError);
}

TEST(TensorTest, CopySemantics)
{
    Tensor a(2, 2);
    a(0, 0) = 1.0f;
    Tensor b = a;
    b(0, 0) = 2.0f;
    EXPECT_EQ(a(0, 0), 1.0f);
    EXPECT_EQ(b(0, 0), 2.0f);
}

} // namespace
} // namespace gobo
