/**
 * @file
 * Tests for the layer- and model-level quantization drivers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/quantizer.hh"
#include "model/generate.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

Tensor
gaussianTensor(std::size_t r, std::size_t c, std::uint64_t seed,
               double sigma = 0.05)
{
    Rng rng(seed);
    std::vector<float> data(r * c);
    rng.fillGaussian(data, 0.0, sigma);
    return Tensor(r, c, std::move(data));
}

TEST(QuantizeTensor, ReportsStats)
{
    GoboConfig cfg;
    cfg.bits = 3;
    LayerQuantStats stats;
    Tensor w = gaussianTensor(64, 64, 11);
    auto q = quantizeTensor(w, cfg, &stats);
    EXPECT_EQ(stats.weightCount, 4096u);
    EXPECT_NEAR(stats.sigma, 0.05, 0.01);
    EXPECT_NEAR(stats.mean, 0.0, 0.01);
    EXPECT_EQ(stats.outlierCount, q.outlierPositions.size());
    EXPECT_GT(stats.finalL1, 0.0);
    EXPECT_GE(stats.iterations, 1u);
}

TEST(QuantizeTensor, ReconstructionErrorSmall)
{
    GoboConfig cfg;
    cfg.bits = 4;
    Tensor w = gaussianTensor(64, 64, 13);
    auto q = quantizeTensor(w, cfg);
    double err = relativeError(w, q.dequantize());
    // 16 distribution-aware centroids on a Gaussian: ~10% relative L2.
    EXPECT_LT(err, 0.12);
}

TEST(QuantizeTensor, ErrorShrinksWithBits)
{
    Tensor w = gaussianTensor(96, 96, 17);
    double prev = 1e30;
    for (unsigned bits : {2u, 3u, 4u, 5u, 6u}) {
        GoboConfig cfg;
        cfg.bits = bits;
        auto q = quantizeTensor(w, cfg);
        double err = relativeError(w, q.dequantize());
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(QuantizeTensor, OutliersSurviveExactly)
{
    // Plant huge weights; they must come back bit-exact.
    Tensor w = gaussianTensor(32, 32, 19);
    w(0, 0) = 0.77f;
    w(15, 20) = -0.91f;
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    Tensor t = q.dequantize();
    EXPECT_EQ(t(0, 0), 0.77f);
    EXPECT_EQ(t(15, 20), -0.91f);
}

TEST(QuantizeTensor, NoOutlierModeQuantizesEverything)
{
    Tensor w = gaussianTensor(32, 32, 23);
    w(3, 3) = 0.9f; // would be an outlier
    GoboConfig cfg;
    cfg.bits = 3;
    cfg.detectOutliers = false;
    auto q = quantizeTensor(w, cfg);
    EXPECT_TRUE(q.outlierPositions.empty());
    Tensor t = q.dequantize();
    EXPECT_NE(t(3, 3), 0.9f); // quantized away
}

TEST(QuantizeTensor, NoOutlierModeHurtsReconstruction)
{
    Tensor w = gaussianTensor(64, 64, 29);
    // Plant a heavy far tail.
    for (int i = 0; i < 30; ++i)
        w(i, i) = (i % 2 ? 0.6f : -0.6f);
    GoboConfig with, without;
    with.bits = 3;
    without.bits = 3;
    without.detectOutliers = false;
    double err_with = relativeError(w, quantizeTensor(w, with)
                                           .dequantize());
    double err_without = relativeError(w, quantizeTensor(w, without)
                                              .dequantize());
    EXPECT_LT(err_with, err_without);
}

TEST(QuantizeTensor, ThresholdControlsOutlierCount)
{
    Tensor w = gaussianTensor(64, 64, 31);
    GoboConfig strict, loose;
    strict.bits = 3;
    strict.outlierThreshold = -6.0;
    loose.bits = 3;
    loose.outlierThreshold = -3.0;
    auto qs = quantizeTensor(w, strict);
    auto ql = quantizeTensor(w, loose);
    EXPECT_LE(qs.outlierPositions.size(), ql.outlierPositions.size());
}

TEST(QuantizeTensor, RejectsBadConfig)
{
    Tensor w = gaussianTensor(8, 8, 37);
    GoboConfig cfg;
    cfg.bits = 0;
    EXPECT_THROW(quantizeTensor(w, cfg), FatalError);
    cfg.bits = 9;
    EXPECT_THROW(quantizeTensor(w, cfg), FatalError);
}

TEST(ModelQuantOptionsTest, EffectiveBits)
{
    ModelQuantOptions opt;
    opt.base.bits = 3;
    EXPECT_EQ(opt.effectiveBits(FcKind::Query, 0), 3u);
    opt.bitsFor = mixedPolicy(6, 3, 4);
    EXPECT_EQ(opt.effectiveBits(FcKind::Value, 2), 4u);
    EXPECT_EQ(opt.effectiveBits(FcKind::Intermediate, 5), 4u);
    EXPECT_EQ(opt.effectiveBits(FcKind::Value, 6), 3u);
    EXPECT_EQ(opt.effectiveBits(FcKind::Query, 2), 3u);
    opt.bitsFor = [](FcKind, std::size_t) { return 0u; };
    EXPECT_THROW(opt.effectiveBits(FcKind::Query, 0), FatalError);
}

TEST(QuantizeModelInPlace, ReplacesAllFcWeights)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 5);
    BertModel original = model;

    ModelQuantOptions opt;
    opt.base.bits = 3;
    auto report = quantizeModelInPlace(model, opt);

    EXPECT_EQ(report.layers.size(), cfg.numFcLayers());
    EXPECT_EQ(report.weightOriginalBytes,
              cfg.fcWeightParams() * sizeof(float));
    EXPECT_GT(report.weightCompressionRatio(), 9.0);
    // Weights changed but shapes survive and the change is small.
    auto orig_layers = original.fcLayers();
    auto new_layers = model.fcLayers();
    for (std::size_t i = 0; i < orig_layers.size(); ++i) {
        EXPECT_EQ(orig_layers[i].weight->rows(),
                  new_layers[i].weight->rows());
        double err = relativeError(*orig_layers[i].weight,
                                   *new_layers[i].weight);
        EXPECT_GT(err, 0.0);
        EXPECT_LT(err, 0.4);
    }
    // Embeddings untouched at embeddingBits = 0.
    EXPECT_EQ(model.wordEmbedding.data(), original.wordEmbedding.data());
    EXPECT_EQ(report.embeddingPayloadBytes,
              report.embeddingOriginalBytes);
}

TEST(QuantizeModelInPlace, EmbeddingQuantization)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 7);
    Tensor original_emb = model.wordEmbedding;

    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    auto report = quantizeModelInPlace(model, opt);
    EXPECT_LT(report.embeddingPayloadBytes,
              report.embeddingOriginalBytes / 6);
    EXPECT_GT(report.embeddingCompressionRatio(), 6.0);
    EXPECT_GT(relativeError(original_emb, model.wordEmbedding), 0.0);
}

TEST(QuantizeModelInPlace, MixedPolicySpendsMoreBitsOnSensitiveLayers)
{
    auto cfg = miniConfig(ModelFamily::RoBerta);
    BertModel model = generateModel(cfg, 9);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.bitsFor = mixedPolicy(cfg.numLayers / 2, 3, 4);
    auto report = quantizeModelInPlace(model, opt);
    for (const auto &entry : report.layers) {
        bool sensitive = (entry.kind == FcKind::Value
                          || entry.kind == FcKind::Intermediate)
                         && entry.encoder < cfg.numLayers / 2;
        EXPECT_EQ(entry.bits, sensitive ? 4u : 3u) << entry.name;
    }
}

TEST(QuantizeConfigStreaming, MatchesInPlaceAccounting)
{
    // The streaming driver and the in-place driver must agree exactly
    // on the compressed sizes for the same config and seed.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;

    auto streaming = quantizeConfigStreaming(cfg, 21, opt);
    BertModel model = generateModel(cfg, 21);
    auto in_place = quantizeModelInPlace(model, opt);

    EXPECT_EQ(streaming.weightOriginalBytes, in_place.weightOriginalBytes);
    EXPECT_EQ(streaming.weightPayloadBytes, in_place.weightPayloadBytes);
    EXPECT_EQ(streaming.embeddingPayloadBytes,
              in_place.embeddingPayloadBytes);
    ASSERT_EQ(streaming.layers.size(), in_place.layers.size());
    for (std::size_t i = 0; i < streaming.layers.size(); ++i) {
        EXPECT_EQ(streaming.layers[i].payloadBytes,
                  in_place.layers[i].payloadBytes)
            << streaming.layers[i].name;
        EXPECT_EQ(streaming.layers[i].stats.outlierCount,
                  in_place.layers[i].stats.outlierCount);
    }
}

TEST(ModelQuantReportTest, RatioArithmetic)
{
    ModelQuantReport r;
    r.weightOriginalBytes = 3200;
    r.weightPayloadBytes = 320;
    r.embeddingOriginalBytes = 800;
    r.embeddingPayloadBytes = 100;
    EXPECT_DOUBLE_EQ(r.weightCompressionRatio(), 10.0);
    EXPECT_DOUBLE_EQ(r.embeddingCompressionRatio(), 8.0);
    EXPECT_DOUBLE_EQ(r.totalCompressionRatio(), 4000.0 / 420.0);
}

} // namespace
} // namespace gobo
