/**
 * @file
 * Cross-module integration tests: the full generate -> task -> save ->
 * load -> quantize -> infer pipeline, end to end.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/q8bert.hh"
#include "baselines/qbert.hh"
#include "core/qexec.hh"
#include "core/quantizer.hh"
#include "memsim/memsim.hh"
#include "model/generate.hh"
#include "model/serialize.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

TEST(Integration, QuantizeSerializedModelAndInfer)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 201);
    auto spec = defaultSpec(TaskKind::MnliLike, 201);
    spec.numExamples = 120;
    spec.seqLen = 8;
    Dataset data = buildTask(model, spec);

    // Persist and reload the fine-tuned model.
    std::stringstream ss;
    saveModel(ss, model);
    BertModel reloaded = loadModel(ss);
    double baseline = evaluate(model, data);
    EXPECT_EQ(evaluate(reloaded, data), baseline);

    // Quantize the reloaded model and check graceful degradation.
    ModelQuantOptions opt;
    opt.base.bits = 4;
    opt.embeddingBits = 4;
    auto report = quantizeModelInPlace(reloaded, opt);
    EXPECT_GT(report.totalCompressionRatio(), 6.5);
    double quantized_score = evaluate(reloaded, data);
    EXPECT_GT(quantized_score, baseline - 0.08);
}

TEST(Integration, DegenerateLayerSurvivesFullPipelineBothFormats)
{
    // A layer with fewer distinct weights than 2^B dedupes its
    // centroid table below 2^B entries. That degenerate shape must
    // survive quantize -> serialize -> load -> forward in both weight
    // formats with correct (and format-identical) output.
    Tensor w(12, 10);
    auto flat = w.flat();
    for (std::size_t i = 0; i < flat.size(); ++i)
        flat[i] = (i % 3 == 0) ? 0.25f : -0.125f; // 2 distinct values
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    EXPECT_LT(q.centroids.size(), std::size_t{1} << 3);

    std::stringstream ss;
    q.save(ss);
    QuantizedTensor loaded = QuantizedTensor::load(ss);

    // The deduped table must reconstruct the layer exactly: with only
    // two distinct values the centroids land on them.
    Tensor decoded = loaded.dequantize();
    for (std::size_t i = 0; i < flat.size(); ++i)
        EXPECT_EQ(decoded.flat()[i], flat[i]);

    Tensor bias(12);
    Rng rng(219);
    rng.fillGaussian(bias.data(), 0.0, 0.1);
    QuantizedLinear unpacked(loaded, bias, WeightFormat::Unpacked);
    QuantizedLinear packed(loaded, bias, WeightFormat::Packed);
    Tensor x(3, 10);
    rng.fillGaussian(x.data(), 0.0, 1.0);
    Tensor want = linear(x, decoded, bias);
    Tensor got_u = unpacked.forward(x);
    Tensor got_p = packed.forward(x);
    EXPECT_LT(relativeError(want, got_u), 1e-6);
    for (std::size_t i = 0; i < got_u.flat().size(); ++i)
        EXPECT_EQ(got_u.flat()[i], got_p.flat()[i]) << "flat " << i;
}

TEST(Integration, DecodedModelIsPlugInCompatible)
{
    // The decoded (dequantized) model must run through the unmodified
    // FP32 engine and produce finite, close outputs.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 203);
    std::vector<std::int32_t> ids{1, 2, 3, 4, 5, 6, 7, 8};
    Tensor before = encodeSequence(model, ids);

    ModelQuantOptions opt;
    opt.base.bits = 5;
    quantizeModelInPlace(model, opt);
    Tensor after = encodeSequence(model, ids);

    ASSERT_EQ(before.size(), after.size());
    EXPECT_LT(relativeError(before, after), 0.35);
}

TEST(Integration, MethodOrderingOnSmallModel)
{
    // GOBO's centroid selection must reconstruct the weights at least
    // as well as Linear at 3 bits on every generated layer (measured
    // as the G-group L1, its objective).
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 207);
    for (auto &layer : model.fcLayers()) {
        GoboConfig gobo_cfg, lin_cfg;
        gobo_cfg.bits = 3;
        lin_cfg.bits = 3;
        lin_cfg.method = CentroidMethod::Linear;
        LayerQuantStats gobo_stats, lin_stats;
        quantizeTensor(*layer.weight, gobo_cfg, &gobo_stats);
        quantizeTensor(*layer.weight, lin_cfg, &lin_stats);
        EXPECT_LE(gobo_stats.finalL1, lin_stats.finalL1 * 1.0001)
            << layer.name;
    }
}

TEST(Integration, CompressionRatiosOrderedAcrossMethods)
{
    // Full pipeline CR ordering on one mini model: GOBO 3b compresses
    // harder than Q-BERT 3b (8-bit embeddings) which beats Q8BERT.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel a = generateModel(cfg, 209);
    BertModel b = generateModel(cfg, 209);
    BertModel c = generateModel(cfg, 209);

    ModelQuantOptions gobo_opt;
    gobo_opt.base.bits = 3;
    gobo_opt.embeddingBits = 4;
    auto gobo_report = quantizeModelInPlace(a, gobo_opt);
    auto qbert_report = qbertQuantizeModelInPlace(b, 3, 16);
    auto q8_report = q8bertQuantizeModelInPlace(c);

    EXPECT_GT(gobo_report.totalCompressionRatio(),
              qbert_report.totalCompressionRatio());
    EXPECT_GT(qbert_report.totalCompressionRatio(),
              q8_report.totalCompressionRatio());
}

TEST(Integration, MemsimConsumesQuantizerOutput)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    // Use the streaming driver so no full-size model is materialized.
    auto report = quantizeConfigStreaming(miniConfig(ModelFamily::BertBase),
                                          211, opt);
    MemParams params;
    auto fp32 = estimate(inferenceCost(cfg, 128), params);
    auto comp = estimate(inferenceCost(cfg, 128,
                                       report.weightCompressionRatio(),
                                       report.embeddingCompressionRatio()),
                         params);
    EXPECT_GT(fp32.latencyMs / comp.latencyMs, 3.0);
    EXPECT_GT(fp32.totalEnergyMicroJ / comp.totalEnergyMicroJ, 2.0);
}

TEST(Integration, QuantizedTensorFileRoundtripThroughDequantize)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    auto specs = fcLayerSpecs(cfg);
    Tensor w = generateFcWeight(cfg, specs[7], 213);
    GoboConfig qcfg;
    qcfg.bits = 3;
    auto q = quantizeTensor(w, qcfg);

    std::stringstream ss;
    q.save(ss);
    auto back = QuantizedTensor::load(ss);
    EXPECT_EQ(q.dequantize().data(), back.dequantize().data());
    // On-disk cost is within a byte of the in-memory accounting.
    EXPECT_NEAR(static_cast<double>(ss.str().size()),
                static_cast<double>(q.payloadBytes()), 120.0);
}

} // namespace
} // namespace gobo
