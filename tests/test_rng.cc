/**
 * @file
 * Tests for the deterministic random source.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"

namespace gobo {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16 && !any_diff; ++i)
        any_diff = a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, IntegerInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.integer(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats rs;
    for (int i = 0; i < 50000; ++i)
        rs.add(rng.gaussian(2.0, 3.0));
    EXPECT_NEAR(rs.mean(), 2.0, 0.1);
    EXPECT_NEAR(rs.stddev(), 3.0, 0.1);
}

TEST(Rng, FillGaussianMoments)
{
    Rng rng(15);
    std::vector<float> xs(50000);
    rng.fillGaussian(xs, -1.0, 0.5);
    EXPECT_NEAR(mean(xs), -1.0, 0.02);
    EXPECT_NEAR(stddev(xs), 0.5, 0.02);
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(21);
    Rng child1 = parent.fork();
    Rng child2 = parent.fork();
    // Children must differ from each other.
    bool differ = false;
    for (int i = 0; i < 8 && !differ; ++i)
        differ = child1.uniform() != child2.uniform();
    EXPECT_TRUE(differ);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

} // namespace
} // namespace gobo
