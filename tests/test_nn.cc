/**
 * @file
 * Tests for the transformer inference engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/generate.hh"
#include "nn/encoder.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

std::vector<std::int32_t>
tokens(std::initializer_list<std::int32_t> ids)
{
    return {ids};
}

TEST(EmbedTokens, ShapeAndBounds)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 11);
    auto ids = tokens({0, 5, 9, 3});
    Tensor x = embedTokens(m, ids);
    EXPECT_EQ(x.rows(), 4u);
    EXPECT_EQ(x.cols(), cfg.hidden);
    EXPECT_THROW(embedTokens(m, tokens({-1})), FatalError);
    EXPECT_THROW(embedTokens(m, tokens({static_cast<std::int32_t>(
                                 cfg.vocabSize)})),
                 FatalError);
    EXPECT_THROW(embedTokens(m, {}), FatalError);
}

TEST(EmbedTokens, PositionDependence)
{
    // The same token at different positions gets different embeddings.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 13);
    Tensor x = embedTokens(m, tokens({7, 7}));
    bool differ = false;
    for (std::size_t c = 0; c < x.cols() && !differ; ++c)
        differ = x(0, c) != x(1, c);
    EXPECT_TRUE(differ);
}

TEST(EncoderForward, PreservesShape)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 17);
    Tensor x = embedTokens(m, tokens({1, 2, 3, 4, 5}));
    Tensor y = encoderForward(m.encoders[0], x, cfg.numHeads);
    EXPECT_EQ(y.rows(), x.rows());
    EXPECT_EQ(y.cols(), x.cols());
}

TEST(EncoderForward, OutputIsLayerNormalized)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 19);
    // Replace the final layer norm with identity parameters so the
    // normalization itself is visible.
    m.encoders[0].outLnGamma.fill(1.0f);
    m.encoders[0].outLnBeta.fill(0.0f);
    Tensor x = embedTokens(m, tokens({1, 2, 3}));
    Tensor y = encoderForward(m.encoders[0], x, cfg.numHeads);
    for (std::size_t r = 0; r < y.rows(); ++r) {
        double mu = 0.0;
        for (std::size_t c = 0; c < y.cols(); ++c)
            mu += y(r, c);
        mu /= static_cast<double>(y.cols());
        EXPECT_NEAR(mu, 0.0, 1e-3);
    }
}

TEST(EncoderForward, AttentionMixesTokens)
{
    // Changing one token must influence other tokens' outputs (through
    // attention) — this distinguishes the encoder from a per-token MLP.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 23);
    Tensor a = encodeSequence(m, tokens({1, 2, 3, 4}));
    Tensor b = encodeSequence(m, tokens({1, 2, 3, 100}));
    // Token 0's final hidden state differs between the two sequences.
    bool differ = false;
    for (std::size_t c = 0; c < a.cols() && !differ; ++c)
        differ = a(0, c) != b(0, c);
    EXPECT_TRUE(differ);
}

TEST(EncodeSequence, DeterministicAndFinite)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel m = generateModel(cfg, 29);
    auto ids = tokens({3, 1, 4, 1, 5, 9, 2, 6});
    Tensor a = encodeSequence(m, ids);
    Tensor b = encodeSequence(m, ids);
    EXPECT_EQ(a.data(), b.data());
    for (float v : a.flat())
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Pool, TanhBounded)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 31);
    Tensor h = encodeSequence(m, tokens({1, 2, 3}));
    Tensor p = pool(m, h);
    EXPECT_EQ(p.rows(), 1u);
    EXPECT_EQ(p.cols(), cfg.hidden);
    for (float v : p.flat()) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(HeadLogits, UsesHeadShape)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 37);
    m.resizeHead(3);
    m.headW.fill(0.0f);
    m.headB(1) = 5.0f;
    Tensor h = encodeSequence(m, tokens({1, 2}));
    Tensor logits = headLogits(m, pool(m, h));
    ASSERT_EQ(logits.size(), 3u);
    EXPECT_EQ(argmax(logits.flat()), 1u);
}

TEST(SpanLogitsTest, PerTokenScores)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 41);
    m.resizeHead(2);
    Tensor h = encodeSequence(m, tokens({1, 2, 3, 4, 5}));
    Tensor logits = spanLogits(m, h);
    EXPECT_EQ(logits.rows(), 5u);
    EXPECT_EQ(logits.cols(), 2u);
    m.resizeHead(3);
    EXPECT_THROW(spanLogits(m, h), FatalError);
}

TEST(MultiHeadAttentionTest, SingleHeadMatchesManualComputation)
{
    // 2 tokens, hidden 2, one head: scores = QK^T / sqrt(2), softmax,
    // ctx = scores * V — checked against hand-computed values.
    Tensor q(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
    Tensor k(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
    Tensor v(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    Tensor ctx = multiHeadAttention(q, k, v, 1);

    float s = 1.0f / std::sqrt(2.0f);
    // Row 0 scores: [s, 0] -> softmax weights [e^s, 1] normalized.
    float w00 = std::exp(s) / (std::exp(s) + 1.0f);
    float w01 = 1.0f - w00;
    EXPECT_NEAR(ctx(0, 0), w00 * 1.0f + w01 * 3.0f, 1e-5);
    EXPECT_NEAR(ctx(0, 1), w00 * 2.0f + w01 * 4.0f, 1e-5);
    // Row 1 is symmetric: weights [w01, w00].
    EXPECT_NEAR(ctx(1, 0), w01 * 1.0f + w00 * 3.0f, 1e-5);
    EXPECT_NEAR(ctx(1, 1), w01 * 2.0f + w00 * 4.0f, 1e-5);
}

TEST(MultiHeadAttentionTest, HeadsAreIndependent)
{
    // With 2 heads over hidden 4, changing K in head 1's columns must
    // not affect head 0's output columns.
    Tensor q(3, 4), k(3, 4), v(3, 4);
    Rng rng(47);
    rng.fillGaussian(q.data(), 0.0, 1.0);
    rng.fillGaussian(k.data(), 0.0, 1.0);
    rng.fillGaussian(v.data(), 0.0, 1.0);
    Tensor base = multiHeadAttention(q, k, v, 2);
    Tensor k2 = k;
    k2(0, 2) += 5.0f; // head 1 (columns 2..3)
    Tensor changed = multiHeadAttention(q, k2, v, 2);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(base(r, 0), changed(r, 0));
        EXPECT_EQ(base(r, 1), changed(r, 1));
    }
    bool head1_differs = false;
    for (std::size_t r = 0; r < 3 && !head1_differs; ++r)
        head1_differs = base(r, 2) != changed(r, 2)
                        || base(r, 3) != changed(r, 3);
    EXPECT_TRUE(head1_differs);
}

TEST(EncodeSequence, HotChannelsCarryLargeActivations)
{
    // The residual stream's hot channels (gamma-amplified) must show
    // visibly larger magnitude than cold ones — the structural premise
    // of the accuracy experiments.
    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel m = generateModel(cfg, 43);
    auto mask = hotChannelMask(cfg, 43);
    Tensor h = encodeSequence(m, tokens({3, 7, 11, 19, 23, 31}));
    double hot_energy = 0.0, cold_energy = 0.0;
    std::size_t hot_n = 0, cold_n = 0;
    for (std::size_t r = 0; r < h.rows(); ++r) {
        for (std::size_t c = 0; c < h.cols(); ++c) {
            double v = h(r, c);
            if (mask[c]) {
                hot_energy += v * v;
                ++hot_n;
            } else {
                cold_energy += v * v;
                ++cold_n;
            }
        }
    }
    double hot_ms = hot_energy / static_cast<double>(hot_n);
    double cold_ms = cold_energy / static_cast<double>(cold_n);
    EXPECT_GT(hot_ms, 4.0 * cold_ms);
}

} // namespace
} // namespace gobo
