/**
 * @file
 * Tests for the GOBC compressed-model container.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/container.hh"
#include "model/generate.hh"
#include "model/serialize.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

ModelQuantOptions
gobo3b4bEmbedding()
{
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    return opt;
}

TEST(Container, RoundtripConfigAndFp32Parts)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 301);
    m.resizeHead(3);
    m.headW(2, 5) = 0.625f;

    std::stringstream ss;
    saveCompressedModel(ss, m, gobo3b4bEmbedding());
    BertModel back = loadCompressedModel(ss);

    EXPECT_EQ(back.config().name, cfg.name);
    EXPECT_EQ(back.config().numLayers, cfg.numLayers);
    EXPECT_EQ(back.headW.rows(), 3u);
    // FP32-resident parts are bit-exact.
    EXPECT_EQ(back.headW(2, 5), 0.625f);
    EXPECT_EQ(back.positionEmbedding.data(), m.positionEmbedding.data());
    EXPECT_EQ(back.encoders[1].attnLnGamma.data(),
              m.encoders[1].attnLnGamma.data());
    EXPECT_EQ(back.encoders[4].interB.data(), m.encoders[4].interB.data());
    EXPECT_EQ(back.poolerB.data(), m.poolerB.data());
}

TEST(Container, DecodedWeightsMatchInPlaceQuantization)
{
    // Saving + loading the container must produce exactly the model
    // quantizeModelInPlace produces: same codec, same decode.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 303);
    auto opt = gobo3b4bEmbedding();

    std::stringstream ss;
    saveCompressedModel(ss, m, opt);
    BertModel from_container = loadCompressedModel(ss);

    BertModel in_place = m;
    quantizeModelInPlace(in_place, opt);

    auto a = from_container.fcLayers();
    auto b = in_place.fcLayers();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].weight->data(), b[i].weight->data())
            << a[i].name;
    EXPECT_EQ(from_container.wordEmbedding.data(),
              in_place.wordEmbedding.data());
}

TEST(Container, SourceModelUntouched)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 305);
    BertModel before = m;
    std::stringstream ss;
    saveCompressedModel(ss, m, gobo3b4bEmbedding());
    EXPECT_EQ(m.encoders[0].queryW.data(),
              before.encoders[0].queryW.data());
    EXPECT_EQ(m.wordEmbedding.data(), before.wordEmbedding.data());
}

TEST(Container, FileSizeMatchesReportedCompression)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 307);

    auto dir = std::filesystem::temp_directory_path();
    auto fp32_path = (dir / "gobo_fp32.bin").string();
    auto comp_path = (dir / "gobo_comp.bin").string();
    saveModel(fp32_path, m);
    auto report = saveCompressedModel(comp_path, m, gobo3b4bEmbedding());

    auto fp32_size = std::filesystem::file_size(fp32_path);
    auto comp_size = std::filesystem::file_size(comp_path);
    double measured = static_cast<double>(fp32_size)
                      / static_cast<double>(comp_size);
    // The container also carries FP32 biases/norms both sides, so the
    // on-disk ratio sits below the weights+embeddings ratio but must
    // be in its neighbourhood.
    EXPECT_GT(measured, report.totalCompressionRatio() * 0.5);
    EXPECT_GT(measured, 4.0);
    EXPECT_LE(measured, report.totalCompressionRatio() * 1.05);

    std::filesystem::remove(fp32_path);
    std::filesystem::remove(comp_path);
}

TEST(Container, MixedPrecisionPersists)
{
    auto cfg = miniConfig(ModelFamily::RoBerta);
    BertModel m = generateModel(cfg, 309);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.bitsFor = mixedPolicy(6, 3, 4);

    std::stringstream ss;
    auto report = saveCompressedModel(ss, m, opt);
    bool saw4 = false, saw3 = false;
    for (const auto &entry : report.layers) {
        saw4 |= entry.bits == 4;
        saw3 |= entry.bits == 3;
    }
    EXPECT_TRUE(saw4);
    EXPECT_TRUE(saw3);
    BertModel back = loadCompressedModel(ss);
    EXPECT_EQ(back.config().numLayers, cfg.numLayers);
}

TEST(Container, LoadedModelRunsInference)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 311);
    std::vector<std::int32_t> ids{1, 2, 3, 4};
    Tensor before = encodeSequence(m, ids);

    std::stringstream ss;
    saveCompressedModel(ss, m, gobo3b4bEmbedding());
    BertModel back = loadCompressedModel(ss);
    Tensor after = encodeSequence(back, ids);
    EXPECT_LT(relativeError(before, after), 0.6);
}

TEST(Container, RejectsCorruptInput)
{
    std::stringstream bad;
    bad.write("XXXXYYYY", 8);
    EXPECT_THROW(loadCompressedModel(bad), FatalError);

    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 313);
    std::stringstream ss;
    saveCompressedModel(ss, m, gobo3b4bEmbedding());
    std::string full = ss.str();
    std::stringstream trunc(full.substr(0, full.size() / 3));
    EXPECT_THROW(loadCompressedModel(trunc), FatalError);
}

TEST(Container, MissingFileIsFatal)
{
    EXPECT_THROW(loadCompressedModel("/nonexistent/gobo.gobc"),
                 FatalError);
}

} // namespace
} // namespace gobo
