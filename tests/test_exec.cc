/**
 * @file
 * Bit-identity of the serial and parallel execution backends, and the
 * InferenceSession serving layer built on them.
 *
 * The determinism contract (DESIGN.md "Execution backends"): the
 * backend only chooses which thread computes an output slot, never the
 * reduction order inside it, so every op, the full encoder stack, the
 * compressed-domain engine, and batched sessions must produce
 * *bit-identical* floats on both backends. These tests assert exact
 * equality, not tolerances.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/qexec.hh"
#include "exec/context.hh"
#include "exec/session.hh"
#include "model/generate.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

Tensor
randomTensor(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(rows, cols);
    rng.fillGaussian(t.data(), 0.0, 0.5);
    return t;
}

void
expectBitIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    auto af = a.flat();
    auto bf = b.flat();
    for (std::size_t i = 0; i < af.size(); ++i)
        ASSERT_EQ(af[i], bf[i]) << "element " << i;
}

TEST(BackendBitIdentity, Matmul)
{
    Tensor a = randomTensor(37, 64, 1);
    Tensor b = randomTensor(64, 53, 2);
    Tensor serial = matmul(ExecContext::serial(), a, b);
    Tensor parallel = matmul(ExecContext::parallel(8), a, b);
    expectBitIdentical(serial, parallel);
}

TEST(BackendBitIdentity, LinearBothSplitDirections)
{
    // seq > out exercises the sequence-blocked path, seq < out the
    // output-blocked path; both must match the serial loop exactly.
    Tensor w = randomTensor(48, 64, 3);
    Tensor bias = randomTensor(1, 48, 4);
    Tensor b1(48);
    std::copy(bias.flat().begin(), bias.flat().end(),
              b1.flat().begin());
    for (std::size_t seq : {1u, 7u, 96u}) {
        Tensor x = randomTensor(seq, 64, 5 + seq);
        Tensor serial = linear(ExecContext::serial(), x, w, b1);
        Tensor parallel = linear(ExecContext::parallel(8), x, w, b1);
        expectBitIdentical(serial, parallel);
    }
}

TEST(BackendBitIdentity, SoftmaxAndLayerNorm)
{
    Tensor s1 = randomTensor(41, 19, 6);
    Tensor s2 = s1;
    softmaxRows(ExecContext::serial(), s1);
    softmaxRows(ExecContext::parallel(8), s2);
    expectBitIdentical(s1, s2);

    Tensor n1 = randomTensor(41, 32, 7);
    Tensor n2 = n1;
    Tensor gamma = randomTensor(1, 32, 8);
    Tensor beta = randomTensor(1, 32, 9);
    layerNormInplace(ExecContext::serial(), n1, gamma.flat(),
                     beta.flat());
    layerNormInplace(ExecContext::parallel(8), n2, gamma.flat(),
                     beta.flat());
    expectBitIdentical(n1, n2);
}

TEST(BackendBitIdentity, MultiHeadAttention)
{
    Tensor q = randomTensor(23, 64, 10);
    Tensor k = randomTensor(23, 64, 11);
    Tensor v = randomTensor(23, 64, 12);
    Tensor serial = multiHeadAttention(ExecContext::serial(), q, k, v, 8);
    Tensor parallel =
        multiHeadAttention(ExecContext::parallel(8), q, k, v, 8);
    expectBitIdentical(serial, parallel);
}

class ModelBitIdentity : public ::testing::Test
{
  protected:
    ModelBitIdentity()
        : model(generateModel(miniConfig(ModelFamily::BertBase), 77))
    {
        Rng rng(123);
        // generateModel leaves the task head zeroed (the task setup
        // normally fills it); give it real weights so the logit-level
        // identity checks are non-trivial.
        model.resizeHead(3);
        rng.fillGaussian(model.headW.data(), 0.0, 0.5);
        rng.fillGaussian(model.headB.data(), 0.0, 0.5);
        for (std::size_t s = 0; s < 4; ++s) {
            std::vector<std::int32_t> seq;
            for (std::size_t t = 0; t < 12; ++t)
                seq.push_back(static_cast<std::int32_t>(rng.integer(
                    0,
                    static_cast<int>(model.config().vocabSize) - 1)));
            batch.push_back(std::move(seq));
        }
    }

    BertModel model;
    TokenBatch batch;
};

TEST_F(ModelBitIdentity, EncodeSequence)
{
    Tensor serial =
        encodeSequence(ExecContext::serial(), model, batch[0]);
    Tensor parallel =
        encodeSequence(ExecContext::parallel(8), model, batch[0]);
    expectBitIdentical(serial, parallel);
}

TEST_F(ModelBitIdentity, QuantizedLinearForward)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    QuantizedBertModel qmodel(model, qopt);

    Tensor serial = qmodel.encode(ExecContext::serial(), batch[0]);
    Tensor parallel = qmodel.encode(ExecContext::parallel(8), batch[0]);
    expectBitIdentical(serial, parallel);

    // Runtime op accounting matches the analytic counts and is
    // backend-independent.
    Tensor x = randomTensor(5, model.config().hidden, 20);
    QuantizedLinear layer(
        quantizeTensor(model.encoders[0].queryW, qopt.base),
        model.encoders[0].queryB);
    OpCounts serial_ops, parallel_ops;
    Tensor y1 = layer.forward(ExecContext::serial(), x, &serial_ops);
    Tensor y2 = layer.forward(ExecContext::parallel(8), x,
                              &parallel_ops);
    expectBitIdentical(y1, y2);
    EXPECT_EQ(serial_ops.additions, parallel_ops.additions);
    EXPECT_EQ(serial_ops.multiplications, parallel_ops.multiplications);
    auto analytic = layer.opCounts(x.rows());
    EXPECT_EQ(serial_ops.additions, analytic.additions);
    EXPECT_EQ(serial_ops.multiplications, analytic.multiplications);
}

TEST_F(ModelBitIdentity, SessionSingleVsBatchedVsSerial)
{
    InferenceSession serial(model, ExecContext::serial());
    InferenceSession parallel(model, ExecContext::parallel(8));

    auto serial_logits = serial.headLogitsBatch(batch);
    auto parallel_logits = parallel.headLogitsBatch(batch);
    ASSERT_EQ(serial_logits.size(), parallel_logits.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        expectBitIdentical(serial_logits[i], parallel_logits[i]);
        // Batched and one-at-a-time calls agree too.
        expectBitIdentical(serial_logits[i],
                           parallel.headLogits(batch[i]));
    }

    auto serial_hidden = serial.encodeBatch(batch);
    auto parallel_hidden = parallel.encodeBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectBitIdentical(serial_hidden[i], parallel_hidden[i]);
}

TEST_F(ModelBitIdentity, CompressedSessionBackends)
{
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    InferenceSession serial(QuantizedBertModel(model, qopt),
                            ExecContext::serial());
    InferenceSession parallel(QuantizedBertModel(model, qopt),
                              ExecContext::parallel(8));
    ASSERT_TRUE(serial.compressed());
    auto a = serial.headLogitsBatch(batch);
    auto b = parallel.headLogitsBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectBitIdentical(a[i], b[i]);
}

TEST_F(ModelBitIdentity, ThreadCountDeterminism)
{
    // The partitioner's contract: thread count picks which thread
    // computes a slot, never what it computes. Quantized logits must
    // be bit-identical to the serial golden at every thread count, in
    // both weight formats. grainFlops = 1 forces even this mini model
    // through the real parallel partition instead of the grain gate.
    for (WeightFormat fmt :
         {WeightFormat::Unpacked, WeightFormat::Packed}) {
        ModelQuantOptions qopt;
        qopt.base.bits = 3;
        qopt.format = fmt;
        InferenceSession golden(QuantizedBertModel(model, qopt),
                                ExecContext::serial());
        auto want = golden.headLogitsBatch(batch);
        for (std::size_t threads : {1u, 2u, 3u, 7u}) {
            SCOPED_TRACE(std::string(weightFormatName(fmt))
                         + " threads=" + std::to_string(threads));
            ExecContext ctx = ExecContext::parallel(threads);
            ctx.grainFlops = 1;
            InferenceSession session(QuantizedBertModel(model, qopt),
                                     ctx);
            auto got = session.headLogitsBatch(batch);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < want.size(); ++i)
                expectBitIdentical(want[i], got[i]);
        }
    }
}

TEST_F(ModelBitIdentity, WorkStealingOnSkewedSequenceLengths)
{
    // Pathologically skewed batch: a few maxPosition-length sequences
    // among many trivial ones. Batch-level parallelism used to degrade
    // the inner forwards to serial (all-or-nothing), so the threads
    // that drew short sequences idled for the whole long tail; now the
    // inner loops are nested submissions that get stolen. The output
    // contract stays exact equality with the serial golden, batch
    // order preserved, across repeated rounds (stealing is racy in
    // schedule, never in results).
    Rng rng(321);
    TokenBatch skewed;
    for (std::size_t len :
         {64u, 2u, 3u, 2u, 48u, 2u, 2u, 5u, 2u, 64u, 3u, 2u}) {
        std::vector<std::int32_t> seq;
        for (std::size_t t = 0; t < len; ++t)
            seq.push_back(static_cast<std::int32_t>(rng.integer(
                0, static_cast<int>(model.config().vocabSize) - 1)));
        skewed.push_back(std::move(seq));
    }

    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = WeightFormat::Packed;
    InferenceSession golden(QuantizedBertModel(model, qopt),
                            ExecContext::serial());
    auto want = golden.headLogitsBatch(skewed);

    ExecContext ctx = ExecContext::parallel(4);
    ctx.grainFlops = 1;
    InferenceSession session(QuantizedBertModel(model, qopt), ctx);
    for (int round = 0; round < 5; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        auto got = session.headLogitsBatch(skewed);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            expectBitIdentical(want[i], got[i]);
    }
}

TEST(BackendBitIdentity, EvaluateAcrossExamples)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 901);
    TaskSpec spec = defaultSpec(TaskKind::MnliLike,
                                ModelFamily::DistilBert, 901);
    spec.numExamples = 80;
    Dataset data = buildTask(model, spec);
    double serial = evaluate(ExecContext::serial(), model, data);
    double parallel = evaluate(ExecContext::parallel(8), model, data);
    EXPECT_EQ(serial, parallel);

    InferenceSession session(model, ExecContext::parallel(8));
    EXPECT_EQ(evaluate(session, data), serial);
}

} // namespace
} // namespace gobo
