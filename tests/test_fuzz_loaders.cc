/**
 * @file
 * Corruption-injection tests: every loader must either load (when a
 * flipped byte lands in a value payload, producing different but
 * well-formed data) or fail with FatalError — never crash, hang, or
 * allocate absurdly. Complements the targeted truncation tests.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/container.hh"
#include "core/qtensor.hh"
#include "core/quantizer.hh"
#include "model/generate.hh"
#include "model/serialize.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

/** Flip one byte and ensure the loader reacts gracefully. */
template <typename LoadFn>
void
fuzzOneByte(const std::string &bytes, LoadFn load, std::size_t trials,
            std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t t = 0; t < trials; ++t) {
        std::string corrupt = bytes;
        auto pos = static_cast<std::size_t>(rng.integer(
            0, static_cast<std::int64_t>(corrupt.size()) - 1));
        auto flip = static_cast<char>(rng.integer(1, 255));
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ flip);
        std::stringstream ss(corrupt);
        try {
            load(ss); // either works (payload flip) ...
        } catch (const FatalError &) {
            // ... or fails loudly. Both are acceptable.
        }
    }
}

TEST(FuzzLoaders, QuantizedTensorSurvivesByteFlips)
{
    Rng rng(701);
    Tensor w(48, 48);
    rng.fillGaussian(w.data(), 0.0, 0.05);
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    std::stringstream ss;
    q.save(ss);
    fuzzOneByte(ss.str(),
                [](std::istream &is) { (void)QuantizedTensor::load(is); },
                300, 703);
}

TEST(FuzzLoaders, ModelSurvivesByteFlips)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 705);
    std::stringstream ss;
    saveModel(ss, m);
    fuzzOneByte(ss.str(),
                [](std::istream &is) { (void)loadModel(is); }, 150, 707);
}

TEST(FuzzLoaders, ContainerSurvivesByteFlips)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 709);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    std::stringstream ss;
    saveCompressedModel(ss, m, opt);
    fuzzOneByte(ss.str(),
                [](std::istream &is) { (void)loadCompressedModel(is); },
                150, 711);
}

TEST(FuzzLoaders, WideIndexIntoDedupedCentroidTableRejected)
{
    // A degenerate layer (fewer distinct weights than 2^B) dedupes its
    // centroid table below 2^B entries; a container edited or
    // corrupted on disk can then carry a packed index past the table.
    // check() — and therefore load() — must reject it cleanly instead
    // of leaving an out-of-bounds read for the execution engines.
    Tensor w(8, 8);
    auto flat = w.flat();
    for (std::size_t i = 0; i < flat.size(); ++i)
        flat[i] = i % 2 ? 0.5f : -0.5f;
    GoboConfig cfg;
    cfg.bits = 3;
    cfg.detectOutliers = false;
    auto q = quantizeTensor(w, cfg);
    ASSERT_LT(q.centroids.size(), std::size_t{1} << 3);
    std::stringstream good;
    q.save(good);
    (void)QuantizedTensor::load(good); // sanity: valid container loads

    // Force an index beyond the deduped table into the packed stream.
    q.packedIndexes.back() = 0xff;
    EXPECT_THROW(q.check(), FatalError);
    std::stringstream bad;
    EXPECT_THROW(q.save(bad), FatalError); // save re-checks too
}

TEST(FuzzLoaders, HugeTensorDimsRejectedBeforeAllocation)
{
    // A corrupt u64 dim header must be a clean "model stream corrupt"
    // fatal, not a multi-TB allocation dying on bad_alloc.
    Rng rng(715);
    Tensor t(4, 4);
    rng.fillGaussian(t.data(), 0.0, 1.0);
    std::stringstream ss;
    writeTensor(ss, t);
    std::string bytes = ss.str();
    // Header layout: u32 rank, then u64 rows, u64 cols. Blow up rows.
    std::uint64_t huge = std::uint64_t{1} << 40;
    std::memcpy(bytes.data() + 4, &huge, sizeof(huge));
    std::stringstream in(bytes);
    EXPECT_THROW((void)readTensor(in), FatalError);

    // Two individually-plausible dims whose product overflows the
    // ceiling must be caught as well.
    std::uint64_t big = std::uint64_t{1} << 30;
    std::memcpy(bytes.data() + 4, &big, sizeof(big));
    std::memcpy(bytes.data() + 12, &big, sizeof(big));
    std::stringstream in2(bytes);
    EXPECT_THROW((void)readTensor(in2), FatalError);
}

TEST(FuzzLoaders, HugeModelConfigRejectedBeforeAllocation)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 717);
    std::stringstream ss;
    saveModel(ss, m);
    std::string bytes = ss.str();
    // Header: u32 magic, u32 version, u32 family, then u64 numLayers,
    // u64 hidden, ... Corrupt vocabSize (5th u64, offset 12 + 4*8).
    std::uint64_t huge = std::uint64_t{1} << 45;
    std::memcpy(bytes.data() + 12 + 4 * 8, &huge, sizeof(huge));
    std::stringstream in(bytes);
    EXPECT_THROW((void)loadModel(in), FatalError);
}

TEST(FuzzLoaders, HeaderFlipsAlwaysRejected)
{
    // Corruption inside the first 8 bytes (magic + version) must be
    // rejected, not survived.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 713);
    std::stringstream ss;
    saveModel(ss, m);
    std::string bytes = ss.str();
    for (std::size_t pos = 0; pos < 8; ++pos) {
        std::string corrupt = bytes;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
        std::stringstream in(corrupt);
        EXPECT_THROW((void)loadModel(in), FatalError) << "pos " << pos;
    }
}

} // namespace
} // namespace gobo
