/**
 * @file
 * Corruption-injection tests: every loader must either load (when a
 * flipped byte lands in a value payload, producing different but
 * well-formed data) or fail with FatalError — never crash, hang, or
 * allocate absurdly. Complements the targeted truncation tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/container.hh"
#include "core/qtensor.hh"
#include "core/quantizer.hh"
#include "model/generate.hh"
#include "model/serialize.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

/** Flip one byte and ensure the loader reacts gracefully. */
template <typename LoadFn>
void
fuzzOneByte(const std::string &bytes, LoadFn load, std::size_t trials,
            std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t t = 0; t < trials; ++t) {
        std::string corrupt = bytes;
        auto pos = static_cast<std::size_t>(rng.integer(
            0, static_cast<std::int64_t>(corrupt.size()) - 1));
        auto flip = static_cast<char>(rng.integer(1, 255));
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ flip);
        std::stringstream ss(corrupt);
        try {
            load(ss); // either works (payload flip) ...
        } catch (const FatalError &) {
            // ... or fails loudly. Both are acceptable.
        }
    }
}

TEST(FuzzLoaders, QuantizedTensorSurvivesByteFlips)
{
    Rng rng(701);
    Tensor w(48, 48);
    rng.fillGaussian(w.data(), 0.0, 0.05);
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    std::stringstream ss;
    q.save(ss);
    fuzzOneByte(ss.str(),
                [](std::istream &is) { (void)QuantizedTensor::load(is); },
                300, 703);
}

TEST(FuzzLoaders, ModelSurvivesByteFlips)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 705);
    std::stringstream ss;
    saveModel(ss, m);
    fuzzOneByte(ss.str(),
                [](std::istream &is) { (void)loadModel(is); }, 150, 707);
}

TEST(FuzzLoaders, ContainerSurvivesByteFlips)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 709);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    std::stringstream ss;
    saveCompressedModel(ss, m, opt);
    fuzzOneByte(ss.str(),
                [](std::istream &is) { (void)loadCompressedModel(is); },
                150, 711);
}

TEST(FuzzLoaders, HeaderFlipsAlwaysRejected)
{
    // Corruption inside the first 8 bytes (magic + version) must be
    // rejected, not survived.
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 713);
    std::stringstream ss;
    saveModel(ss, m);
    std::string bytes = ss.str();
    for (std::size_t pos = 0; pos < 8; ++pos) {
        std::string corrupt = bytes;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
        std::stringstream in(corrupt);
        EXPECT_THROW((void)loadModel(in), FatalError) << "pos " << pos;
    }
}

} // namespace
} // namespace gobo
