/**
 * @file
 * Tests for compressed-domain execution: QuantizedLinear must agree
 * with the dense FP32 layer over the decoded weights (same arithmetic,
 * different association), and QuantizedBertModel must agree with the
 * FP32 engine running the decoded model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/qexec.hh"
#include "model/generate.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

Tensor
gaussianTensor(std::size_t r, std::size_t c, std::uint64_t seed,
               double sigma = 0.05)
{
    Rng rng(seed);
    std::vector<float> data(r * c);
    rng.fillGaussian(data, 0.0, sigma);
    return Tensor(r, c, std::move(data));
}

QuantizedLinear
makeQL(std::size_t out, std::size_t in, unsigned bits,
       std::uint64_t seed)
{
    Tensor w = gaussianTensor(out, in, seed);
    // Plant a couple of outliers so the correction path is exercised.
    w(0, 1) = 0.8f;
    w(out - 1, in - 1) = -0.75f;
    Tensor b(out);
    Rng rng(seed + 1);
    for (auto &v : b.flat())
        v = static_cast<float>(rng.gaussian(0.0, 0.02));
    GoboConfig cfg;
    cfg.bits = bits;
    return {quantizeTensor(w, cfg), std::move(b)};
}

TEST(QuantizedLinearTest, MatchesDecodedDenseLayer)
{
    auto ql = makeQL(24, 40, 3, 401);
    Tensor x = gaussianTensor(5, 40, 402, 1.0);

    Tensor w = ql.compressed().dequantize();
    Tensor zero_bias(24);
    QuantizedLinear ql2(ql.compressed(), zero_bias);
    Tensor got = ql2.forward(x);
    Tensor want = linear(x, w, zero_bias);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    EXPECT_LT(relativeError(want, got), 1e-5);
}

TEST(QuantizedLinearTest, OutlierCorrectionsApplied)
{
    // Without the correction path, the planted 0.8 outlier would be
    // replaced by a centroid (<0.3) and the first output would be off
    // by ~0.5 * x[1].
    auto ql = makeQL(8, 16, 3, 405);
    Tensor x(1, 16);
    x.fill(0.0f);
    x(0, 1) = 1.0f;
    Tensor y = ql.forward(x);
    Tensor w = ql.compressed().dequantize();
    EXPECT_EQ(w(0, 1), 0.8f);
    // y[0] = bias[0] + w(0,1); verify the 0.8 really flowed through.
    Tensor zero_bias(8);
    QuantizedLinear ql2(ql.compressed(), zero_bias);
    Tensor y2 = ql2.forward(x);
    EXPECT_NEAR(y2(0, 0), 0.8f, 1e-6);
}

TEST(QuantizedLinearTest, OpCountsReflectCentroidScheme)
{
    auto ql = makeQL(64, 64, 3, 407);
    auto ops = ql.opCounts(10);
    auto dense = ql.denseOpCounts(10);
    // Multiplications collapse from in (64) to 2^3 per output (plus
    // outlier corrections).
    EXPECT_LT(ops.multiplications, dense.multiplications / 4);
    EXPECT_GE(ops.additions, dense.additions); // adds stay ~the same
    std::size_t n_out = ql.compressed().outlierPositions.size();
    EXPECT_EQ(ops.multiplications, 10u * (64u * 8u + n_out));
}

TEST(QuantizedLinearTest, RejectsBadShapes)
{
    auto ql = makeQL(8, 16, 3, 409);
    Tensor wrong(2, 8);
    EXPECT_THROW(ql.forward(wrong), FatalError);
    Tensor w = gaussianTensor(8, 16, 411);
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    Tensor bad_bias(7);
    EXPECT_THROW(QuantizedLinear(q, bad_bias), FatalError);
}

class QexecBits : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QexecBits, ForwardEquivalenceAcrossWidths)
{
    unsigned bits = GetParam();
    auto ql = makeQL(32, 48, bits, 431 + bits);
    Tensor zero_bias(32);
    QuantizedLinear ql2(ql.compressed(), zero_bias);
    Tensor x = gaussianTensor(7, 48, 433, 2.0);
    Tensor got = ql2.forward(x);
    Tensor want = linear(x, ql.compressed().dequantize(), zero_bias);
    EXPECT_LT(relativeError(want, got), 1e-5);
}

TEST_P(QexecBits, PackedMatchesUnpackedBitIdentical)
{
    // The Packed engine decodes the B-bit stream inside the kernel but
    // feeds the identical bucket/table/correction arithmetic, so the
    // contract is exact float equality, not a tolerance.
    unsigned bits = GetParam();
    auto ql = makeQL(32, 48, bits, 461 + bits);
    QuantizedLinear packed(ql.compressed(), Tensor(32),
                           WeightFormat::Packed);
    QuantizedLinear unpacked(ql.compressed(), Tensor(32),
                             WeightFormat::Unpacked);
    EXPECT_EQ(packed.format(), WeightFormat::Packed);
    EXPECT_EQ(unpacked.format(), WeightFormat::Unpacked);
    Tensor x = gaussianTensor(7, 48, 463, 2.0);
    Tensor a = unpacked.forward(x);
    Tensor b = packed.forward(x);
    Tensor c = packed.forward(ExecContext::parallel(4), x);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.flat().size(); ++i) {
        EXPECT_EQ(a.flat()[i], b.flat()[i]) << "flat index " << i;
        EXPECT_EQ(b.flat()[i], c.flat()[i]) << "flat index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, QexecBits,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(QuantizedLinearTest, PackedFuzzAcrossRandomLayers)
{
    // Random shapes, widths B in [2, 8], and inputs: Packed must stay
    // bit-identical to Unpacked everywhere, including ragged rows
    // whose bit offsets straddle byte and group boundaries.
    Rng rng(471);
    for (int trial = 0; trial < 40; ++trial) {
        auto bits = static_cast<unsigned>(rng.integer(2, 8));
        auto out = static_cast<std::size_t>(rng.integer(1, 24));
        auto in = static_cast<std::size_t>(rng.integer(1, 56));
        Tensor w(out, in);
        rng.fillGaussian(w.data(), 0.0, 0.05);
        if (out > 1 && in > 1) {
            w(0, in - 1) = 0.9f; // force the outlier-correction path
            w(out - 1, 0) = -0.85f;
        }
        GoboConfig cfg;
        cfg.bits = bits;
        auto q = quantizeTensor(w, cfg);
        Tensor bias(out);
        rng.fillGaussian(bias.data(), 0.0, 0.1);
        QuantizedLinear unpacked(q, bias, WeightFormat::Unpacked);
        QuantizedLinear packed(q, bias, WeightFormat::Packed);
        auto seq = static_cast<std::size_t>(rng.integer(1, 5));
        Tensor x(seq, in);
        rng.fillGaussian(x.data(), 0.0, 1.0);
        Tensor a = unpacked.forward(x);
        Tensor b = packed.forward(x);
        for (std::size_t i = 0; i < a.flat().size(); ++i)
            EXPECT_EQ(a.flat()[i], b.flat()[i])
                << "trial " << trial << " bits " << bits << " out "
                << out << " in " << in << " flat " << i;
    }
}

TEST(QuantizedLinearTest, ResidentBytesMatchFormat)
{
    auto ql = makeQL(32, 64, 3, 467);
    const auto &q = ql.compressed();
    QuantizedLinear packed(q, Tensor(32), WeightFormat::Packed);
    std::size_t table_and_outliers =
        q.centroids.size() * sizeof(float)
        + q.outlierPositions.size()
              * (sizeof(std::uint32_t) + sizeof(float));
    // Unpacked: one byte per weight. Packed: the 3-bit stream itself.
    EXPECT_EQ(ql.residentBytes(),
              q.elementCount() + table_and_outliers);
    EXPECT_EQ(packed.residentBytes(),
              (q.elementCount() * 3 + 7) / 8 + table_and_outliers);
    EXPECT_LT(packed.residentBytes(), ql.residentBytes());
    // Packed sits at ~B/32 of FP32 plus the small table/outlier tail.
    double fp32 = static_cast<double>(q.originalBytes());
    EXPECT_LT(static_cast<double>(packed.residentBytes()),
              fp32 * (3.0 / 32.0) + 2.0 * table_and_outliers);
}

TEST(QuantizedBertModelTest, MatchesDecodedModelPredictions)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 421);
    auto spec = defaultSpec(TaskKind::MnliLike, 421);
    spec.numExamples = 60;
    spec.seqLen = 8;
    Dataset data = buildTask(model, spec);

    ModelQuantOptions options;
    options.base.bits = 3;
    options.embeddingBits = 4;

    QuantizedBertModel qmodel(model, options);
    BertModel decoded = model;
    quantizeModelInPlace(decoded, options);

    std::size_t agree = 0;
    for (const auto &ex : data.examples) {
        Tensor q_logits = qmodel.classify(ex.tokens);
        auto dec_pred = predict(decoded, TaskKind::MnliLike, ex);
        int q_label = static_cast<int>(argmax(q_logits.flat()));
        agree += q_label == dec_pred.label ? 1 : 0;
    }
    // FP reassociation can flip razor-thin margins; anything beyond a
    // stray example means the engines diverge.
    EXPECT_GE(agree, data.examples.size() - 1);
}

TEST(QuantizedBertModelTest, EncodeMatchesDecodedHidden)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 423);
    ModelQuantOptions options;
    options.base.bits = 4;

    QuantizedBertModel qmodel(model, options);
    BertModel decoded = model;
    quantizeModelInPlace(decoded, options);

    std::vector<std::int32_t> ids{3, 1, 4, 1, 5, 9};
    Tensor a = qmodel.encode(ids);
    Tensor b = encodeSequence(decoded, ids);
    EXPECT_LT(relativeError(b, a), 1e-4);
}

TEST(QuantizedBertModelTest, OpCountsAndFootprint)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 425);
    ModelQuantOptions options;
    options.base.bits = 3;
    QuantizedBertModel qmodel(model, options);

    auto ops = qmodel.opCounts(16);
    auto dense = qmodel.denseOpCounts(16);
    EXPECT_LT(ops.multiplications, dense.multiplications / 4);
    EXPECT_GT(ops.multiplications, 0u);

    // Compressed FC bytes beat FP32 by ~10x at 3 bits.
    std::size_t fp32 = cfg.fcWeightParams() * sizeof(float);
    EXPECT_GT(static_cast<double>(fp32)
                  / static_cast<double>(qmodel.compressedWeightBytes()),
              9.0);
}

TEST(QuantizedBertModelTest, PackedModelBitIdenticalToUnpacked)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 429);
    Rng rng(430);
    model.resizeHead(3);
    rng.fillGaussian(model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(model.headB.data(), 0.0, 0.5);

    ModelQuantOptions options;
    options.base.bits = 3;
    options.embeddingBits = 4;
    QuantizedBertModel unpacked(model, options);
    options.format = WeightFormat::Packed;
    QuantizedBertModel packed(model, options);
    EXPECT_EQ(unpacked.format(), WeightFormat::Unpacked);
    EXPECT_EQ(packed.format(), WeightFormat::Packed);

    std::vector<std::int32_t> ids{3, 1, 4, 1, 5, 9, 2, 6};
    Tensor hu = unpacked.encode(ids);
    Tensor hp = packed.encode(ids);
    for (std::size_t i = 0; i < hu.flat().size(); ++i)
        EXPECT_EQ(hu.flat()[i], hp.flat()[i]) << "hidden flat " << i;

    Tensor lu = unpacked.classify(ids);
    Tensor lp = packed.classify(ExecContext::parallel(4), ids);
    ASSERT_EQ(lu.size(), lp.size());
    for (std::size_t i = 0; i < lu.size(); ++i)
        EXPECT_EQ(lu(i), lp(i)) << "logit " << i;

    // Packed keeps less weight state resident than Unpacked, and
    // lands under the B/32-of-FP32 ceiling (plus table/outlier tail).
    std::size_t fp32 = cfg.fcWeightParams() * sizeof(float);
    EXPECT_LT(packed.residentWeightBytes(),
              unpacked.residentWeightBytes());
    EXPECT_LT(static_cast<double>(packed.residentWeightBytes()),
              static_cast<double>(fp32) * (3.0 / 32.0 + 0.05));
}

TEST(QuantizedBertModelTest, MixedPrecisionBitsRespected)
{
    auto cfg = miniConfig(ModelFamily::RoBerta);
    BertModel model = generateModel(cfg, 427);
    ModelQuantOptions options;
    options.base.bits = 3;
    options.bitsFor = mixedPolicy(6, 3, 4);
    QuantizedBertModel qmodel(model, options);
    std::vector<std::int32_t> ids{1, 2, 3, 4};
    Tensor h = qmodel.encode(ids);
    for (float v : h.flat())
        EXPECT_TRUE(std::isfinite(v));
}

} // namespace
} // namespace gobo
