/**
 * @file
 * Tests for compressed-domain execution: QuantizedLinear must agree
 * with the dense FP32 layer over the decoded weights (same arithmetic,
 * different association), and QuantizedBertModel must agree with the
 * FP32 engine running the decoded model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/qexec.hh"
#include "model/generate.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

Tensor
gaussianTensor(std::size_t r, std::size_t c, std::uint64_t seed,
               double sigma = 0.05)
{
    Rng rng(seed);
    std::vector<float> data(r * c);
    rng.fillGaussian(data, 0.0, sigma);
    return Tensor(r, c, std::move(data));
}

QuantizedLinear
makeQL(std::size_t out, std::size_t in, unsigned bits,
       std::uint64_t seed)
{
    Tensor w = gaussianTensor(out, in, seed);
    // Plant a couple of outliers so the correction path is exercised.
    w(0, 1) = 0.8f;
    w(out - 1, in - 1) = -0.75f;
    Tensor b(out);
    Rng rng(seed + 1);
    for (auto &v : b.flat())
        v = static_cast<float>(rng.gaussian(0.0, 0.02));
    GoboConfig cfg;
    cfg.bits = bits;
    return {quantizeTensor(w, cfg), std::move(b)};
}

TEST(QuantizedLinearTest, MatchesDecodedDenseLayer)
{
    auto ql = makeQL(24, 40, 3, 401);
    Tensor x = gaussianTensor(5, 40, 402, 1.0);

    Tensor w = ql.compressed().dequantize();
    Tensor zero_bias(24);
    QuantizedLinear ql2(ql.compressed(), zero_bias);
    Tensor got = ql2.forward(x);
    Tensor want = linear(x, w, zero_bias);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    EXPECT_LT(relativeError(want, got), 1e-5);
}

TEST(QuantizedLinearTest, OutlierCorrectionsApplied)
{
    // Without the correction path, the planted 0.8 outlier would be
    // replaced by a centroid (<0.3) and the first output would be off
    // by ~0.5 * x[1].
    auto ql = makeQL(8, 16, 3, 405);
    Tensor x(1, 16);
    x.fill(0.0f);
    x(0, 1) = 1.0f;
    Tensor y = ql.forward(x);
    Tensor w = ql.compressed().dequantize();
    EXPECT_EQ(w(0, 1), 0.8f);
    // y[0] = bias[0] + w(0,1); verify the 0.8 really flowed through.
    Tensor zero_bias(8);
    QuantizedLinear ql2(ql.compressed(), zero_bias);
    Tensor y2 = ql2.forward(x);
    EXPECT_NEAR(y2(0, 0), 0.8f, 1e-6);
}

TEST(QuantizedLinearTest, OpCountsReflectCentroidScheme)
{
    auto ql = makeQL(64, 64, 3, 407);
    auto ops = ql.opCounts(10);
    auto dense = ql.denseOpCounts(10);
    // Multiplications collapse from in (64) to 2^3 per output (plus
    // outlier corrections).
    EXPECT_LT(ops.multiplications, dense.multiplications / 4);
    EXPECT_GE(ops.additions, dense.additions); // adds stay ~the same
    std::size_t n_out = ql.compressed().outlierPositions.size();
    EXPECT_EQ(ops.multiplications, 10u * (64u * 8u + n_out));
}

TEST(QuantizedLinearTest, RejectsBadShapes)
{
    auto ql = makeQL(8, 16, 3, 409);
    Tensor wrong(2, 8);
    EXPECT_THROW(ql.forward(wrong), FatalError);
    Tensor w = gaussianTensor(8, 16, 411);
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    Tensor bad_bias(7);
    EXPECT_THROW(QuantizedLinear(q, bad_bias), FatalError);
}

class QexecBits : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QexecBits, ForwardEquivalenceAcrossWidths)
{
    unsigned bits = GetParam();
    auto ql = makeQL(32, 48, bits, 431 + bits);
    Tensor zero_bias(32);
    QuantizedLinear ql2(ql.compressed(), zero_bias);
    Tensor x = gaussianTensor(7, 48, 433, 2.0);
    Tensor got = ql2.forward(x);
    Tensor want = linear(x, ql.compressed().dequantize(), zero_bias);
    EXPECT_LT(relativeError(want, got), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Widths, QexecBits,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(QuantizedBertModelTest, MatchesDecodedModelPredictions)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 421);
    auto spec = defaultSpec(TaskKind::MnliLike, 421);
    spec.numExamples = 60;
    spec.seqLen = 8;
    Dataset data = buildTask(model, spec);

    ModelQuantOptions options;
    options.base.bits = 3;
    options.embeddingBits = 4;

    QuantizedBertModel qmodel(model, options);
    BertModel decoded = model;
    quantizeModelInPlace(decoded, options);

    std::size_t agree = 0;
    for (const auto &ex : data.examples) {
        Tensor q_logits = qmodel.classify(ex.tokens);
        auto dec_pred = predict(decoded, TaskKind::MnliLike, ex);
        int q_label = static_cast<int>(argmax(q_logits.flat()));
        agree += q_label == dec_pred.label ? 1 : 0;
    }
    // FP reassociation can flip razor-thin margins; anything beyond a
    // stray example means the engines diverge.
    EXPECT_GE(agree, data.examples.size() - 1);
}

TEST(QuantizedBertModelTest, EncodeMatchesDecodedHidden)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 423);
    ModelQuantOptions options;
    options.base.bits = 4;

    QuantizedBertModel qmodel(model, options);
    BertModel decoded = model;
    quantizeModelInPlace(decoded, options);

    std::vector<std::int32_t> ids{3, 1, 4, 1, 5, 9};
    Tensor a = qmodel.encode(ids);
    Tensor b = encodeSequence(decoded, ids);
    EXPECT_LT(relativeError(b, a), 1e-4);
}

TEST(QuantizedBertModelTest, OpCountsAndFootprint)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel model = generateModel(cfg, 425);
    ModelQuantOptions options;
    options.base.bits = 3;
    QuantizedBertModel qmodel(model, options);

    auto ops = qmodel.opCounts(16);
    auto dense = qmodel.denseOpCounts(16);
    EXPECT_LT(ops.multiplications, dense.multiplications / 4);
    EXPECT_GT(ops.multiplications, 0u);

    // Compressed FC bytes beat FP32 by ~10x at 3 bits.
    std::size_t fp32 = cfg.fcWeightParams() * sizeof(float);
    EXPECT_GT(static_cast<double>(fp32)
                  / static_cast<double>(qmodel.compressedWeightBytes()),
              9.0);
}

TEST(QuantizedBertModelTest, MixedPrecisionBitsRespected)
{
    auto cfg = miniConfig(ModelFamily::RoBerta);
    BertModel model = generateModel(cfg, 427);
    ModelQuantOptions options;
    options.base.bits = 3;
    options.bitsFor = mixedPolicy(6, 3, 4);
    QuantizedBertModel qmodel(model, options);
    std::vector<std::int32_t> ids{1, 2, 3, 4};
    Tensor h = qmodel.encode(ids);
    for (float v : h.flat())
        EXPECT_TRUE(std::isfinite(v));
}

} // namespace
} // namespace gobo
