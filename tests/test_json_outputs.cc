/**
 * @file
 * One parameterized strict-JSON gate over every machine-readable
 * document the repo writes: BENCH_forward.json, BENCH_kernels.json
 * (with and without the pmu roofline block), BENCH_serve.json, the
 * standalone gobo-timeline-v1 document, the gobo-audit-v2 report
 * (with and without the pmu pillar), and the --metrics-json snapshot.
 * Each case renders a document through the *real* writer — synthetic
 * inputs where the structs are plain data, a miniature end-to-end run
 * where they are not — and validates it with tests/jsonlint.hh, so a
 * writer that emits a bare `nan`, an unescaped byte, or an unbalanced
 * bracket fails here instead of in a downstream consumer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "bench/bench_json.hh"
#include "core/qexec.hh"
#include "exec/session.hh"
#include "jsonlint.hh"
#include "model/generate.hh"
#include "obs/audit.hh"
#include "obs/export.hh"
#include "obs/pmu.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

const BertModel &
testModel()
{
    static const BertModel model = [] {
        BertModel m =
            generateModel(miniConfig(ModelFamily::BertBase), 42);
        Rng rng(42 * 31 + 5);
        m.resizeHead(3);
        rng.fillGaussian(m.headW.data(), 0.0, 0.5);
        rng.fillGaussian(m.headB.data(), 0.0, 0.5);
        return m;
    }();
    return model;
}

/** One near-saturation serve run shared by the serve/timeline cases
 * (sheds + deadline drops populate every nullable field once). */
const ServeRun &
serveRun()
{
    static const ServeRun run = [] {
        auto spec = parseTraceSpec(
            "n=120,seed=7,rate=400,len=1:64,long=0.25,burst=6x0.3,"
            "period=50000");
        EXPECT_TRUE(spec.has_value());
        auto trace =
            generateTrace(*spec, testModel().config().vocabSize);
        ModelQuantOptions qopt;
        qopt.base.bits = 3;
        qopt.format = WeightFormat::Packed;
        ExecContext ctx = ExecContext::serial();
        ctx.weightFormat = WeightFormat::Packed;
        InferenceSession session(QuantizedBertModel(testModel(), qopt),
                                 ctx);
        ServeOptions opt;
        opt.maxQueue = 8;
        opt.requestDeadlineUs = 30000;
        opt.timelineWindowUs = 50000;
        ServeServer server(session, opt);
        return server.runTrace(trace);
    }();
    return run;
}

ServeOptions
serveOptions()
{
    ServeOptions opt;
    opt.maxQueue = 8;
    opt.requestDeadlineUs = 30000;
    opt.timelineWindowUs = 50000;
    return opt;
}

ServeReportMeta
serveMeta()
{
    ServeReportMeta meta;
    meta.trace = "n=120,seed=7";
    meta.kernelTier = "generic";
    meta.threads = 1;
    meta.engine = "qexec";
    meta.format = "packed";
    return meta;
}

std::string
renderForward()
{
    benchjson::ForwardDoc doc;
    doc.seqLen = 64;
    doc.batch = 8;
    doc.threads = 4;
    doc.cores = 8;
    doc.kernelTier = "avx2";
    doc.seqTile = 8;
    doc.decodeCacheKb = 1024;
    doc.results.push_back({"fp32", "serial", 123.4, 1u << 20});
    doc.results.push_back({"qexec", "parallel", 456.7, 1u << 17});
    doc.scaling.push_back({1, 100.0, 1.0});
    doc.scaling.push_back({4, 350.0, 3.5});
    doc.spans.push_back({"enc[0].query", 16, 1234.5, 77.16});
    doc.fp32ParallelSpeedup = 3.2;
    doc.qexecParallelTokensPerSec = 456.7;
    doc.packedResidentOverFp32 = 0.103;
    std::ostringstream os;
    benchjson::writeForwardJson(doc, os);
    return os.str();
}

benchjson::KernelsDoc
kernelsDoc()
{
    benchjson::KernelsDoc doc;
    doc.seqTile = 8;
    doc.results.push_back({"dot", "generic", 0, 4096, 8, 10.2, 2.5});
    doc.results.push_back(
        {"bucket_acc_tile", "avx2", 3, 3072, 8, 12.6, 3.0});
    return doc;
}

std::string
renderKernelsWithPmu()
{
    benchjson::KernelsDoc doc = kernelsDoc();
    doc.pmuAvailable = true;
    doc.pmuBackend = "fake";
    doc.cacheLineBytes = 64;
    doc.roofline.push_back({"dot", "generic", 0, 10.2, 3.1, 8.5, 1.5});
    std::ostringstream os;
    benchjson::writeKernelsJson(doc, os);
    return os.str();
}

std::string
renderKernelsNoPmu()
{
    // Backend name empty = the pre-pmu byte format, exactly what the
    // committed baseline parses as.
    std::ostringstream os;
    benchjson::writeKernelsJson(kernelsDoc(), os);
    return os.str();
}

std::string
renderServe()
{
    std::ostringstream os;
    writeServeJson(serveRun().summary, serveOptions(), serveMeta(), os);
    return os.str();
}

std::string
renderTimeline()
{
    std::ostringstream os;
    writeTimelineJson(serveRun(), serveOptions(), serveMeta(), os);
    return os.str();
}

AuditReport
auditReport(PmuRegistry *pmu)
{
    AuditOptions opt;
    opt.quant.base.bits = 3;
    opt.quant.format = WeightFormat::Packed;
    opt.sequences = 1;
    opt.seqLen = 6;
    opt.pmu = pmu;
    return auditModel(testModel(), opt);
}

std::string
renderAudit()
{
    std::ostringstream os;
    writeAuditJson(auditReport(nullptr), os);
    return os.str();
}

std::string
renderAuditWithPmu()
{
    static FakePmuBackend backend;
    PmuRegistry reg(backend);
    std::ostringstream os;
    writeAuditJson(auditReport(&reg), os);
    return os.str();
}

std::string
renderMetrics()
{
    MetricsSnapshot snap;
    snap.counters.push_back({"qexec.layer.enc[0].query.forwards", 4});
    snap.counters.push_back({"pmu.llc_misses", 1234});
    snap.gauges.push_back({"pmu.available", 1.0});
    snap.gauges.push_back({"pmu.ipc", 1.5});
    // A non-finite gauge must render as null, never as a nan token.
    snap.gauges.push_back({"hostile.gauge", std::nan("")});
    HistogramSnapshot h;
    h.name = "serve.latency_us";
    h.bounds = {10.0, 100.0};
    h.counts = {1, 2, 3};
    h.count = 6;
    h.sum = 420.0;
    snap.histograms.push_back(std::move(h));
    std::ostringstream os;
    writeMetricsJson(snap, os);
    return os.str();
}

struct WriterCase
{
    const char *name;
    std::string (*render)();
};

const WriterCase kCases[] = {
    {"forward", renderForward},
    {"kernels_pmu", renderKernelsWithPmu},
    {"kernels_nopmu", renderKernelsNoPmu},
    {"serve", renderServe},
    {"timeline", renderTimeline},
    {"audit", renderAudit},
    {"audit_pmu", renderAuditWithPmu},
    {"metrics", renderMetrics},
};

class JsonOutputs : public ::testing::TestWithParam<WriterCase>
{
};

TEST_P(JsonOutputs, WriterEmitsStrictJson)
{
    std::string doc = GetParam().render();
    ASSERT_FALSE(doc.empty());
    EXPECT_TRUE(jsonValid(doc)) << doc.substr(0, 400);
    // Belt and suspenders on top of the grammar: non-finite floats
    // must have been rewritten as null by the writers.
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    EXPECT_EQ(doc.find("inf"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllWriters, JsonOutputs, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<WriterCase> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace gobo
