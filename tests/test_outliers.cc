/**
 * @file
 * Tests for the G/O split (outlier detection).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/outliers.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

std::vector<float>
gaussianWithPlantedOutliers(std::size_t n, std::size_t n_out,
                            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    rng.fillGaussian(xs, 0.0, 0.05);
    for (std::size_t i = 0; i < n_out; ++i) {
        // Plant at 8 sigma, alternating signs, at spread positions.
        std::size_t pos = (i * 977) % n;
        xs[pos] = (i % 2 ? -1.0f : 1.0f) * 0.4f;
    }
    return xs;
}

TEST(SplitOutliers, FindsPlantedOutliers)
{
    auto xs = gaussianWithPlantedOutliers(100000, 50, 41);
    auto split = splitOutliers(xs, -4.0);
    // All 50 planted 8-sigma values must be detected (plus a small
    // natural tail).
    EXPECT_GE(split.outlierValues.size(), 50u);
    EXPECT_LT(split.outlierFraction(), 0.01);
    std::size_t planted_found = 0;
    for (float v : split.outlierValues)
        planted_found += std::abs(v) == 0.4f ? 1 : 0;
    EXPECT_EQ(planted_found, 50u);
}

TEST(SplitOutliers, PartitionIsExact)
{
    auto xs = gaussianWithPlantedOutliers(10000, 10, 43);
    auto split = splitOutliers(xs, -4.0);
    EXPECT_EQ(split.gValues.size() + split.outlierValues.size(),
              xs.size());
    // Reconstruct: outlier positions carry outlier values, the rest are
    // the G values in order.
    std::vector<float> rebuilt;
    rebuilt.reserve(xs.size());
    std::size_t gi = 0, oi = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (oi < split.outlierPositions.size()
            && split.outlierPositions[oi] == i) {
            rebuilt.push_back(split.outlierValues[oi]);
            ++oi;
        } else {
            rebuilt.push_back(split.gValues[gi]);
            ++gi;
        }
    }
    EXPECT_EQ(rebuilt, xs);
}

TEST(SplitOutliers, PositionsAscending)
{
    auto xs = gaussianWithPlantedOutliers(50000, 30, 47);
    auto split = splitOutliers(xs, -4.0);
    EXPECT_TRUE(std::is_sorted(split.outlierPositions.begin(),
                               split.outlierPositions.end()));
    EXPECT_EQ(split.outlierPositions.size(), split.outlierValues.size());
}

TEST(SplitOutliers, ThresholdMonotonicity)
{
    auto xs = gaussianWithPlantedOutliers(50000, 30, 53);
    auto strict = splitOutliers(xs, -6.0); // farther cut, fewer outliers
    auto loose = splitOutliers(xs, -3.0);  // nearer cut, more outliers
    EXPECT_LE(strict.outlierValues.size(), loose.outlierValues.size());
}

TEST(SplitOutliers, PureGaussianHasTinyOutlierFraction)
{
    Rng rng(59);
    std::vector<float> xs(200000);
    rng.fillGaussian(xs, 0.0, 0.04);
    auto split = splitOutliers(xs, -4.0);
    // Natural tail beyond the -4 log-probability cut is well under 1%.
    EXPECT_LT(split.outlierFraction(), 0.005);
    EXPECT_GT(split.gValues.size(), xs.size() * 99 / 100);
}

TEST(SplitOutliers, OutliersAreTheExtremeValues)
{
    auto xs = gaussianWithPlantedOutliers(20000, 20, 61);
    auto split = splitOutliers(xs, -4.0);
    ASSERT_FALSE(split.outlierValues.empty());
    double max_g = 0.0;
    for (float v : split.gValues)
        max_g = std::max(max_g, std::abs(v - split.fit.mean()));
    double min_o = 1e30;
    for (float v : split.outlierValues)
        min_o = std::min(min_o, std::abs(v - split.fit.mean()));
    // Every outlier is farther from the mean than every G value.
    EXPECT_GE(min_o, max_g);
}

TEST(SplitOutliers, RejectsTooFewWeights)
{
    std::vector<float> one{1.0f};
    EXPECT_THROW(splitOutliers(one, -4.0), FatalError);
}

} // namespace
} // namespace gobo
