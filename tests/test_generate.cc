/**
 * @file
 * Tests for the synthetic weight generator: determinism, layer
 * independence, and the distributional properties the experiments
 * rely on (Gaussian bulk, outlier census, hot-channel structure).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/outliers.hh"
#include "model/generate.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace gobo {
namespace {

TEST(FcLayerSpecs, CountAndOrder)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    ASSERT_EQ(specs.size(), 73u);
    EXPECT_EQ(specs[0].name, "encoder0.query");
    EXPECT_EQ(specs[4].kind, FcKind::Intermediate);
    EXPECT_EQ(specs[4].rows, cfg.intermediate);
    EXPECT_EQ(specs[4].cols, cfg.hidden);
    EXPECT_EQ(specs[5].rows, cfg.hidden);
    EXPECT_EQ(specs[5].cols, cfg.intermediate);
    EXPECT_EQ(specs.back().kind, FcKind::Pooler);
}

TEST(LayerDistributionTest, DeterministicAndVaried)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto a = layerDistribution(cfg, FcKind::Query, 3);
    auto b = layerDistribution(cfg, FcKind::Query, 3);
    EXPECT_EQ(a.sigma, b.sigma);
    EXPECT_EQ(a.mean, b.mean);
    // Different layers get different parameters.
    auto c = layerDistribution(cfg, FcKind::Query, 7);
    EXPECT_NE(a.sigma, c.sigma);
    // Sigma stays in the plausible Fig. 1b range.
    for (std::size_t e = 0; e < cfg.numLayers; ++e) {
        for (auto kind : {FcKind::Query, FcKind::Key, FcKind::Value,
                          FcKind::AttnOutput, FcKind::Intermediate,
                          FcKind::Output}) {
            auto d = layerDistribution(cfg, kind, e);
            EXPECT_GT(d.sigma, 0.02);
            EXPECT_LT(d.sigma, 0.09);
            EXPECT_LT(std::abs(d.mean), 0.01);
        }
    }
}

TEST(LayerDistributionTest, RobertaSensitiveLayersHeavier)
{
    auto rob = fullConfig(ModelFamily::RoBerta);
    auto val_early = layerDistribution(rob, FcKind::Value, 1);
    auto val_late = layerDistribution(rob, FcKind::Value, 10);
    EXPECT_GT(val_early.heavyFraction, val_late.heavyFraction);
    auto bert = fullConfig(ModelFamily::BertBase);
    auto bert_val = layerDistribution(bert, FcKind::Value, 1);
    EXPECT_EQ(bert_val.heavyFraction, val_late.heavyFraction);
}

TEST(HotChannelMaskTest, QuarterOfHidden)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    auto mask = hotChannelMask(cfg, 42);
    ASSERT_EQ(mask.size(), cfg.hidden);
    std::size_t hot = 0;
    for (auto m : mask)
        hot += m;
    EXPECT_EQ(hot, cfg.hidden / 4);
    // Deterministic in (config, seed).
    EXPECT_EQ(mask, hotChannelMask(cfg, 42));
    EXPECT_NE(mask, hotChannelMask(cfg, 43));
}

TEST(HotInnerMaskTest, QuarterOfIntermediate)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    auto mask = hotInnerMask(cfg, 42);
    ASSERT_EQ(mask.size(), cfg.intermediate);
    std::size_t hot = 0;
    for (auto m : mask)
        hot += m;
    EXPECT_EQ(hot, cfg.intermediate / 4);
}

TEST(GenerateFcWeight, DeterministicPerLayer)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    Tensor a = generateFcWeight(cfg, specs[10], 42);
    Tensor b = generateFcWeight(cfg, specs[10], 42);
    EXPECT_EQ(a.data(), b.data());
    Tensor c = generateFcWeight(cfg, specs[10], 43);
    EXPECT_NE(a.data(), c.data());
    Tensor d = generateFcWeight(cfg, specs[11], 42);
    EXPECT_NE(a.data(), d.data());
}

TEST(GenerateFcWeight, MatchesGeneratedModelLayers)
{
    // The streaming generator and the whole-model generator must
    // produce identical weights for the same (config, seed).
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 77);
    auto refs = m.fcLayers();
    auto specs = fcLayerSpecs(cfg);
    ASSERT_EQ(refs.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        Tensor w = generateFcWeight(cfg, specs[i], 77);
        EXPECT_EQ(w.data(), refs[i].weight->data()) << specs[i].name;
    }
}

TEST(GenerateFcWeight, GaussianBulkMatchesDistribution)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    const auto &spec = specs[4]; // encoder0.intermediate
    auto dist = layerDistribution(cfg, spec.kind, spec.encoder);
    Tensor w = generateFcWeight(cfg, spec, 42);
    // Fitted sigma is close to (slightly below, due to narrow hot
    // columns) the configured sigma.
    double sd = stddev(w.flat());
    EXPECT_GT(sd, dist.sigma * 0.7);
    EXPECT_LT(sd, dist.sigma * 1.2);
}

TEST(GenerateFcWeight, OutlierCensusInPaperRange)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    // Non-pooler layers: detected outliers between ~0.02% and ~0.5%.
    for (std::size_t i : {std::size_t{0}, std::size_t{16},
                          std::size_t{40}, std::size_t{65}}) {
        Tensor w = generateFcWeight(cfg, specs[i], 42);
        auto split = splitOutliers(w.flat(), -4.0);
        EXPECT_GT(split.outlierFraction(), 0.0001) << specs[i].name;
        EXPECT_LT(split.outlierFraction(), 0.006) << specs[i].name;
    }
    // The pooler (last layer of Fig. 3) runs just under 1%.
    Tensor pooler = generateFcWeight(cfg, specs.back(), 42);
    auto split = splitOutliers(pooler.flat(), -4.0);
    EXPECT_GT(split.outlierFraction(), 0.004);
    EXPECT_LT(split.outlierFraction(), 0.013);
}

TEST(GenerateFcWeight, HotColumnsAreNarrow)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    const auto &spec = specs[0]; // encoder0.query reads residual stream
    Tensor w = generateFcWeight(cfg, spec, 42);
    auto mask = hotChannelMask(cfg, 42);
    RunningStats hot, cold;
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            (mask[c] ? hot : cold).add(w(r, c));
        }
    }
    // Hot columns carry roughly half the sigma of cold ones.
    EXPECT_LT(hot.stddev(), cold.stddev() * 0.7);
}

TEST(GenerateWordEmbedding, SpikesOnlyOnHotChannels)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    Tensor emb = generateWordEmbedding(cfg, 42);
    auto mask = hotChannelMask(cfg, 42);
    double sigma = stddev(emb.flat());
    std::size_t spikes = 0, cold_spikes = 0;
    for (std::size_t r = 0; r < emb.rows(); ++r) {
        for (std::size_t c = 0; c < emb.cols(); ++c) {
            if (std::abs(emb(r, c)) > 8.0 * sigma) {
                ++spikes;
                cold_spikes += mask[c] ? 0 : 1;
            }
        }
    }
    // The 8-sigma cut (sigma measured over the spiked table, so ~2x
    // the base scale) still catches a large share of the injected
    // spikes, and no cold-channel value reaches it.
    EXPECT_GT(spikes, emb.rows() / 4);
    EXPECT_EQ(cold_spikes, 0u);
}

TEST(GenerateModel, DeterministicEndToEnd)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel a = generateModel(cfg, 1);
    BertModel b = generateModel(cfg, 1);
    EXPECT_EQ(a.wordEmbedding.data(), b.wordEmbedding.data());
    EXPECT_EQ(a.encoders[3].interW.data(), b.encoders[3].interW.data());
    EXPECT_EQ(a.poolerB.data(), b.poolerB.data());
}

TEST(GenerateModel, GammaSpikesOnHotChannels)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel m = generateModel(cfg, 42);
    auto mask = hotChannelMask(cfg, 42);
    for (std::size_t d = 0; d < mask.size(); ++d) {
        float g = m.encoders[0].attnLnGamma(d);
        if (mask[d]) {
            EXPECT_GE(g, 2.5f);
        } else {
            EXPECT_LT(g, 1.5f);
        }
    }
}

} // namespace
} // namespace gobo
