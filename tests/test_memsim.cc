/**
 * @file
 * Tests for the memory traffic / energy / latency model.
 */

#include <gtest/gtest.h>

#include "memsim/memsim.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(InferenceCostTest, Fp32WeightTrafficMatchesFootprint)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto cost = inferenceCost(cfg, 128);
    EXPECT_EQ(cost.weightBytes, cfg.fcWeightParams() * sizeof(float));
    EXPECT_EQ(cost.embeddingBytes, 128u * cfg.hidden * sizeof(float));
    EXPECT_GT(cost.macs, 1e9);
    EXPECT_EQ(cost.offChipBytes(),
              cost.weightBytes + cost.embeddingBytes);
}

TEST(InferenceCostTest, CompressionDividesTraffic)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto fp32 = inferenceCost(cfg, 128);
    auto comp = inferenceCost(cfg, 128, 10.0, 8.0);
    EXPECT_NEAR(static_cast<double>(fp32.weightBytes)
                    / static_cast<double>(comp.weightBytes),
                10.0, 0.01);
    EXPECT_NEAR(static_cast<double>(fp32.embeddingBytes)
                    / static_cast<double>(comp.embeddingBytes),
                8.0, 0.01);
    // Compute is unchanged by compression.
    EXPECT_EQ(fp32.macs, comp.macs);
}

TEST(InferenceCostTest, RejectsBadArguments)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    EXPECT_THROW(inferenceCost(cfg, 0), FatalError);
    EXPECT_THROW(inferenceCost(cfg, 128, 0.5), FatalError);
}

TEST(Estimate, BertIsMemoryBoundAtBatchOne)
{
    // The paper's premise: single-stream BERT inference is dominated by
    // streaming weights.
    auto cfg = fullConfig(ModelFamily::BertLarge);
    auto cost = inferenceCost(cfg, 128);
    MemParams params;
    auto r = estimate(cost, params);
    EXPECT_TRUE(r.memoryBound);
    EXPECT_GT(r.memoryLatencyMs, r.computeLatencyMs);
    EXPECT_GT(r.offChipEnergyMicroJ, r.onChipEnergyMicroJ);
}

TEST(Estimate, CompressionCutsMemoryLatencyProportionally)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    MemParams params;
    auto fp32 = estimate(inferenceCost(cfg, 128), params);
    auto comp = estimate(inferenceCost(cfg, 128, 10.0, 10.0), params);
    EXPECT_NEAR(fp32.memoryLatencyMs / comp.memoryLatencyMs, 10.0, 0.1);
    EXPECT_LT(comp.offChipEnergyMicroJ, fp32.offChipEnergyMicroJ / 9.0);
}

TEST(Estimate, EnergySplitsSum)
{
    auto cfg = fullConfig(ModelFamily::DistilBert);
    MemParams params;
    auto r = estimate(inferenceCost(cfg, 128), params);
    EXPECT_NEAR(r.totalEnergyMicroJ,
                r.offChipEnergyMicroJ + r.onChipEnergyMicroJ
                    + r.computeEnergyMicroJ,
                1e-9);
}

TEST(Estimate, ComputeBoundWhenBandwidthHuge)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    MemParams params;
    params.dramGBps = 1e6; // effectively infinite bandwidth
    auto r = estimate(inferenceCost(cfg, 128), params);
    EXPECT_FALSE(r.memoryBound);
    EXPECT_EQ(r.latencyMs, r.computeLatencyMs);
}

} // namespace
} // namespace gobo
