/**
 * @file
 * Tests for the hardware-counter telemetry layer (obs/pmu.hh): the
 * deterministic fake backend, the GOBO_PMU grammar, registry
 * snapshots and derived metrics, span PMU annotation and per-name
 * aggregation, metrics-export folding, and the two load-bearing
 * contracts — logits are bit-identical with PMU on or off, and the
 * audit's modeled-vs-measured pillar stays finite and well-formed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exec/scratch.hh"
#include "exec/session.hh"
#include "jsonlint.hh"
#include "model/generate.hh"
#include "obs/audit.hh"
#include "obs/export.hh"
#include "obs/observer.hh"
#include "obs/pmu.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

// The fake backend's documented per-read increments; every derived
// assertion below follows from these.
constexpr std::uint64_t kCycles = 1000;
constexpr std::uint64_t kInstructions = 1500;
constexpr std::uint64_t kReferences = 100;
constexpr std::uint64_t kMisses = 10;
constexpr std::uint64_t kStalled = 200;

TEST(PmuModeTest, SpecGrammar)
{
    EXPECT_EQ(pmuModeFromSpec(nullptr), PmuMode::Probe);
    EXPECT_EQ(pmuModeFromSpec(""), PmuMode::Probe);
    EXPECT_EQ(pmuModeFromSpec("off"), PmuMode::Off);
    EXPECT_EQ(pmuModeFromSpec("0"), PmuMode::Off);
    EXPECT_EQ(pmuModeFromSpec("disabled"), PmuMode::Off);
    EXPECT_EQ(pmuModeFromSpec("fake"), PmuMode::Fake);
    // Anything unrecognized probes: the env var can never brick a run.
    EXPECT_EQ(pmuModeFromSpec("linux"), PmuMode::Probe);
    EXPECT_EQ(pmuModeFromSpec("ON"), PmuMode::Probe);
}

TEST(FakePmuBackendTest, DeterministicDeltasPerHandle)
{
    FakePmuBackend be;
    int h = be.openGroup(0);
    ASSERT_GE(h, 0);

    PmuSample a = be.readGroup(h);
    PmuSample b = be.readGroup(h);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    PmuSample d = b.since(a);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.cycles, kCycles);
    EXPECT_EQ(d.instructions, kInstructions);
    EXPECT_EQ(d.llcReferences, kReferences);
    EXPECT_EQ(d.llcMisses, kMisses);
    EXPECT_EQ(d.stalledBackend, kStalled);

    // A second handle ticks independently of the first.
    int h2 = be.openGroup(42);
    ASSERT_GE(h2, 0);
    PmuSample first2 = be.readGroup(h2);
    EXPECT_EQ(first2.cycles, kCycles);

    be.closeGroup(h);
    be.closeGroup(h2);
    // Reading a closed handle is invalid, not a crash.
    EXPECT_FALSE(be.readGroup(h).valid);
}

TEST(PmuSampleTest, SinceRequiresBothSamplesValid)
{
    PmuSample valid;
    valid.valid = true;
    valid.cycles = 100;
    PmuSample invalid;

    EXPECT_FALSE(valid.since(invalid).valid);
    EXPECT_FALSE(invalid.since(valid).valid);
    EXPECT_FALSE(invalid.since(invalid).valid);
    EXPECT_TRUE(valid.since(valid).valid);
    EXPECT_EQ(valid.since(valid).cycles, 0u);
}

TEST(PmuGroupTest, RaiiAndMoveTransferOwnership)
{
    FakePmuBackend be;
    PmuGroup g(be, 0);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g.sample().valid);

    PmuGroup moved(std::move(g));
    EXPECT_TRUE(moved.ok());
    EXPECT_FALSE(g.ok()); // NOLINT(bugprone-use-after-move): contract
    EXPECT_FALSE(g.sample().valid);
    EXPECT_TRUE(moved.sample().valid);

    PmuGroup empty;
    EXPECT_FALSE(empty.ok());
    EXPECT_FALSE(empty.sample().valid);
}

TEST(PmuRegistryTest, FakeSnapshotHasExactDerivedMetrics)
{
    FakePmuBackend be;
    PmuRegistry reg(be);
    ASSERT_TRUE(reg.available());
    EXPECT_STREQ(reg.backendName(), "fake");

    // First call opens the calling thread's group and stores the
    // baseline; subsequent reads advance the fake tick.
    ASSERT_TRUE(reg.threadSample().valid);
    reg.threadSample();
    reg.threadSample();

    PmuSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.available);
    EXPECT_EQ(snap.backend, "fake");
    ASSERT_TRUE(snap.total.valid);
    EXPECT_GT(snap.total.cycles, 0u);
    // The fake ratios are machine-independent by construction.
    EXPECT_DOUBLE_EQ(snap.ipc(), 1.5);
    EXPECT_DOUBLE_EQ(snap.llcMissRatio(), 0.1);
    EXPECT_GE(snap.llcMissGBps(), 0.0);
}

TEST(PmuRegistryTest, AttachWorkersMonitorsEachTid)
{
    FakePmuBackend be;
    PmuRegistry reg(be);
    reg.attachWorkers({101, 102, 0, 103}); // tid 0 = no gettid: skipped

    PmuSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.workers.size(), 3u);
    for (const auto &w : snap.workers)
        EXPECT_TRUE(w.sample.valid);

    // Re-attaching replaces the previous worker set, not appends.
    reg.attachWorkers({201});
    EXPECT_EQ(reg.snapshot().workers.size(), 1u);
}

TEST(PmuRegistryTest, UnavailableSnapshotNeverDividesByZero)
{
    PmuSnapshot snap; // available=false, zero totals
    EXPECT_DOUBLE_EQ(snap.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(snap.llcMissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(snap.llcMissGBps(), 0.0);
}

TEST(PmuSpanTest, SpansCarryDeltasAndSummarizeByName)
{
    FakePmuBackend be;
    PmuRegistry reg(be);
    Observer obs;
    obs.pmu = &reg;

    { ScopedSpan s(&obs, "alpha"); }
    { ScopedSpan s(&obs, "alpha"); }
    { ScopedSpan s(&obs, "beta"); }

    auto sums = summarizePmuSpans(obs.tracer);
    ASSERT_EQ(sums.size(), 2u);
    // Sorted by LLC misses descending: alpha folded two spans.
    EXPECT_EQ(sums[0].name, "alpha");
    EXPECT_EQ(sums[0].count, 2u);
    EXPECT_EQ(sums[0].llcMisses, 2 * kMisses);
    EXPECT_EQ(sums[0].instructions, 2 * kInstructions);
    EXPECT_EQ(sums[0].cycles, 2 * kCycles);
    EXPECT_EQ(sums[1].name, "beta");
    EXPECT_EQ(sums[1].llcMisses, kMisses);

    // Spans traced without a PMU registry carry no args and are
    // invisible to the PMU aggregation (but still traced normally).
    Observer plain;
    { ScopedSpan s(&plain, "gamma"); }
    EXPECT_TRUE(summarizePmuSpans(plain.tracer).empty());
    EXPECT_EQ(summarizeSpans(plain.tracer).size(), 1u);
}

TEST(PmuMetricsTest, AppendPmuMetricsFoldsCountersAndGauges)
{
    FakePmuBackend be;
    PmuRegistry reg(be);
    reg.threadSample();
    reg.threadSample();
    reg.attachWorkers({7});

    MetricsSnapshot snap;
    appendPmuMetrics(snap, reg.snapshot());

    ASSERT_NE(snap.findGauge("pmu.available"), nullptr);
    EXPECT_DOUBLE_EQ(snap.findGauge("pmu.available")->value, 1.0);
    ASSERT_NE(snap.findCounter("pmu.cycles"), nullptr);
    ASSERT_NE(snap.findCounter("pmu.llc_misses"), nullptr);
    ASSERT_NE(snap.findCounter("pmu.worker[0].llc_misses"), nullptr);
    ASSERT_NE(snap.findGauge("pmu.ipc"), nullptr);
    EXPECT_DOUBLE_EQ(snap.findGauge("pmu.ipc")->value, 1.5);
    ASSERT_NE(snap.findGauge("pmu.llc_miss_ratio"), nullptr);
    EXPECT_DOUBLE_EQ(snap.findGauge("pmu.llc_miss_ratio")->value, 0.1);
    ASSERT_NE(snap.findGauge("pmu.llc_miss_gbps"), nullptr);
}

TEST(PmuMetricsTest, UnavailableBackendAppendsOnlyAvailabilityGauge)
{
    MetricsSnapshot snap;
    appendPmuMetrics(snap, PmuSnapshot{});
    ASSERT_NE(snap.findGauge("pmu.available"), nullptr);
    EXPECT_DOUBLE_EQ(snap.findGauge("pmu.available")->value, 0.0);
    EXPECT_EQ(snap.findCounter("pmu.cycles"), nullptr);
    EXPECT_EQ(snap.findGauge("pmu.ipc"), nullptr);
}

TEST(PmuMetricsTest, ScratchGaugeIsHitRateOrAbsent)
{
    ScratchStats s;
    s.decodeRowHits = 30;
    s.decodeRowMisses = 10;
    MetricsSnapshot snap;
    appendScratchGauges(snap, s);
    ASSERT_NE(snap.findGauge("scratch.decode_row_hit_rate"), nullptr);
    EXPECT_DOUBLE_EQ(
        snap.findGauge("scratch.decode_row_hit_rate")->value, 0.75);

    // A run that decoded nothing has no rate: 0/0 is not 0%.
    MetricsSnapshot empty;
    appendScratchGauges(empty, ScratchStats{});
    EXPECT_EQ(empty.findGauge("scratch.decode_row_hit_rate"), nullptr);
}

/** Mini model with a live head, like the audit tests use. */
class PmuModelFixture : public ::testing::Test
{
  protected:
    PmuModelFixture()
        : model(generateModel(miniConfig(ModelFamily::BertBase), 11))
    {
        model.resizeHead(3);
        Rng rng(23);
        rng.fillGaussian(model.headW.data(), 0.0, 0.5);
        rng.fillGaussian(model.headB.data(), 0.0, 0.5);
        for (int s = 0; s < 2; ++s) {
            std::vector<std::int32_t> seq;
            for (int t = 0; t < 8; ++t)
                seq.push_back(static_cast<std::int32_t>(rng.integer(
                    0,
                    static_cast<int>(model.config().vocabSize) - 1)));
            batch.push_back(std::move(seq));
        }
    }

    BertModel model;
    TokenBatch batch;
};

TEST_F(PmuModelFixture, LogitsBitIdenticalWithPmuOnOrOff)
{
    // The determinism contract: PMU sampling only *reads* counters
    // around compute, so an instrumented run must reproduce an
    // uninstrumented run bit for bit, on every backend.
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.format = WeightFormat::Packed;
    InferenceSession plain(QuantizedBertModel(model, qopt),
                           ExecContext::serial());
    auto expected = plain.headLogitsBatch(batch);

    FakePmuBackend be;
    PmuRegistry reg(be);
    for (bool parallel : {false, true}) {
        Observer obs;
        obs.pmu = &reg;
        ExecContext ctx = parallel ? ExecContext::parallel(4)
                                   : ExecContext::serial();
        ctx.obs = &obs;
        InferenceSession session(QuantizedBertModel(model, qopt), ctx);
        auto got = session.headLogitsBatch(batch);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i].size(), expected[i].size());
            for (std::size_t j = 0; j < got[i].size(); ++j)
                EXPECT_EQ(got[i](j), expected[i](j))
                    << "parallel=" << parallel << " [" << i << "]["
                    << j << "]";
        }
        // And the instrumentation really ran: spans carried deltas.
        EXPECT_FALSE(summarizePmuSpans(obs.tracer).empty());
    }
}

TEST_F(PmuModelFixture, AuditPillarFourIsFinitePerLayer)
{
    FakePmuBackend be;
    PmuRegistry reg(be);

    AuditOptions opt;
    opt.quant.base.bits = 3;
    opt.quant.format = WeightFormat::Packed;
    opt.sequences = 2;
    opt.seqLen = 8;
    opt.seed = 9;
    opt.pmu = &reg;

    AuditReport r = auditModel(model, opt);
    EXPECT_TRUE(r.pmuAvailable);
    EXPECT_EQ(r.pmuBackend, "fake");
    EXPECT_GT(r.pmuCacheLineBytes, 0u);
    ASSERT_EQ(r.pmuValidation.size(), r.traffic.size());
    for (std::size_t i = 0; i < r.pmuValidation.size(); ++i) {
        const auto &v = r.pmuValidation[i];
        EXPECT_EQ(v.layer, r.traffic[i].layer);
        EXPECT_GT(v.spans, 0u) << v.layer;
        EXPECT_GT(v.measuredBytes, 0u) << v.layer;
        EXPECT_EQ(v.modeledBytes, r.traffic[i].bytesStreamed);
        EXPECT_TRUE(std::isfinite(v.modeledOverMeasured)) << v.layer;
        EXPECT_GT(v.modeledOverMeasured, 0.0) << v.layer;
    }

    std::ostringstream js;
    writeAuditJson(r, js);
    std::string json = js.str();
    EXPECT_TRUE(jsonValid(json)) << json.substr(0, 400);
    EXPECT_NE(json.find("\"schema\": \"gobo-audit-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pmu\""), std::string::npos);
    EXPECT_NE(json.find("\"modeled_over_measured\""), std::string::npos);

    std::ostringstream console;
    printAuditReport(r, console);
    EXPECT_NE(console.str().find("model validation"), std::string::npos);
}

TEST_F(PmuModelFixture, AuditWithoutPmuKeepsV1BlocksAndRecordsAbsence)
{
    AuditOptions opt;
    opt.quant.base.bits = 3;
    opt.sequences = 1;
    opt.seqLen = 6;

    AuditReport r = auditModel(model, opt);
    EXPECT_FALSE(r.pmuAvailable);
    EXPECT_TRUE(r.pmuValidation.empty());

    std::ostringstream js;
    writeAuditJson(r, js);
    std::string json = js.str();
    EXPECT_TRUE(jsonValid(json)) << json.substr(0, 400);
    // v2 is a superset: every v1 block still present, and the pmu
    // block records that counters were off rather than vanishing.
    EXPECT_NE(json.find("\"fidelity\""), std::string::npos);
    EXPECT_NE(json.find("\"divergence\""), std::string::npos);
    EXPECT_NE(json.find("\"attribution\""), std::string::npos);
    EXPECT_NE(json.find("\"available\": false"), std::string::npos);
}

} // namespace
} // namespace gobo
