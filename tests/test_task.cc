/**
 * @file
 * Tests for the synthetic task generators and the evaluation harness.
 * These use a small DistilBERT-mini and few examples to stay fast.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/quantizer.hh"
#include "model/generate.hh"
#include "task/task.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TaskSpec
smallSpec(TaskKind kind, std::size_t n = 80)
{
    auto spec = defaultSpec(kind, 7);
    spec.numExamples = n;
    spec.seqLen = 8;
    return spec;
}

TEST(TaskNames, Printable)
{
    EXPECT_STREQ(taskName(TaskKind::MnliLike), "MNLI");
    EXPECT_STREQ(taskName(TaskKind::StsbLike), "STS-B");
    EXPECT_STREQ(taskName(TaskKind::SquadLike), "SQuAD v1.1");
    EXPECT_STREQ(metricName(TaskKind::MnliLike), "Accuracy (m)");
    EXPECT_STREQ(metricName(TaskKind::StsbLike), "Spearman");
    EXPECT_STREQ(metricName(TaskKind::SquadLike), "F1 Score");
}

TEST(DefaultSpec, PaperBaselines)
{
    EXPECT_NEAR(defaultSpec(TaskKind::MnliLike, 1).targetBaseline,
                0.8445, 1e-9);
    EXPECT_NEAR(defaultSpec(TaskKind::StsbLike, 1).targetBaseline,
                0.8833, 1e-9);
    EXPECT_NEAR(defaultSpec(TaskKind::SquadLike, 1).targetBaseline,
                0.9195, 1e-9);
}

TEST(BuildTask, MnliDatasetWellFormed)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 51);
    auto spec = smallSpec(TaskKind::MnliLike);
    Dataset data = buildTask(m, spec);
    EXPECT_EQ(data.kind, TaskKind::MnliLike);
    ASSERT_EQ(data.examples.size(), spec.numExamples);
    EXPECT_EQ(m.headW.rows(), 3u);
    for (const auto &ex : data.examples) {
        EXPECT_EQ(ex.tokens.size(), spec.seqLen);
        EXPECT_GE(ex.label, 0);
        EXPECT_LT(ex.label, 3);
        for (auto t : ex.tokens) {
            EXPECT_GE(t, 0);
            EXPECT_LT(static_cast<std::size_t>(t), cfg.vocabSize);
        }
    }
}

TEST(BuildTask, MnliBaselineIsExactByConstruction)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 53);
    auto spec = smallSpec(TaskKind::MnliLike, 200);
    Dataset data = buildTask(m, spec);
    double baseline = evaluate(m, data);
    // Exactly round(p*N) labels were flipped.
    double expected = 1.0
                      - std::llround((1.0 - spec.targetBaseline) * 200)
                            / 200.0;
    EXPECT_NEAR(baseline, expected, 1e-9);
}

TEST(BuildTask, StsbBaselineNearTarget)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 57);
    auto spec = smallSpec(TaskKind::StsbLike, 300);
    Dataset data = buildTask(m, spec);
    EXPECT_EQ(m.headW.rows(), 1u);
    double baseline = evaluate(m, data);
    EXPECT_NEAR(baseline, spec.targetBaseline, 0.05);
}

TEST(BuildTask, SquadBaselineNearTarget)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 59);
    auto spec = smallSpec(TaskKind::SquadLike, 300);
    Dataset data = buildTask(m, spec);
    EXPECT_EQ(m.headW.rows(), 2u);
    double baseline = evaluate(m, data);
    EXPECT_NEAR(baseline, spec.targetBaseline, 0.04);
    for (const auto &ex : data.examples) {
        EXPECT_LE(ex.spanStart, ex.spanEnd);
        EXPECT_LT(ex.spanEnd, spec.seqLen);
    }
}

TEST(BuildTask, DeterministicInSeed)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m1 = generateModel(cfg, 61);
    BertModel m2 = generateModel(cfg, 61);
    auto spec = smallSpec(TaskKind::MnliLike);
    Dataset d1 = buildTask(m1, spec);
    Dataset d2 = buildTask(m2, spec);
    ASSERT_EQ(d1.examples.size(), d2.examples.size());
    for (std::size_t i = 0; i < d1.examples.size(); ++i) {
        EXPECT_EQ(d1.examples[i].tokens, d2.examples[i].tokens);
        EXPECT_EQ(d1.examples[i].label, d2.examples[i].label);
    }
    EXPECT_EQ(m1.headW.data(), m2.headW.data());
}

TEST(BuildTask, MarginFilterKeepsConfidentExamples)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel strict_model = generateModel(cfg, 63);
    BertModel loose_model = generateModel(cfg, 63);

    auto strict = smallSpec(TaskKind::MnliLike, 120);
    strict.marginDropFraction = 0.6;
    auto loose = smallSpec(TaskKind::MnliLike, 120);
    loose.marginDropFraction = 0.0;

    Dataset ds = buildTask(strict_model, strict);
    Dataset dl = buildTask(loose_model, loose);

    auto min_margin = [&](BertModel &m, const Dataset &d, TaskKind k) {
        double mn = 1e300;
        for (const auto &ex : d.examples)
            mn = std::min(mn, predict(m, k, ex).margin);
        return mn;
    };
    double strict_min = min_margin(strict_model, ds, TaskKind::MnliLike);
    double loose_min = min_margin(loose_model, dl, TaskKind::MnliLike);
    EXPECT_GT(strict_min, loose_min);
}

TEST(BuildTask, RejectsBadSpecs)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 65);
    auto spec = smallSpec(TaskKind::MnliLike);
    spec.numExamples = 0;
    EXPECT_THROW(buildTask(m, spec), FatalError);
    spec = smallSpec(TaskKind::MnliLike);
    spec.seqLen = cfg.maxPosition + 1;
    EXPECT_THROW(buildTask(m, spec), FatalError);
    spec = smallSpec(TaskKind::MnliLike);
    spec.marginDropFraction = 1.0;
    EXPECT_THROW(buildTask(m, spec), FatalError);
    spec = smallSpec(TaskKind::MnliLike);
    spec.targetBaseline = 0.0;
    EXPECT_THROW(buildTask(m, spec), FatalError);
}

TEST(Predict, MarginNonNegative)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 67);
    auto spec = smallSpec(TaskKind::MnliLike, 20);
    Dataset data = buildTask(m, spec);
    for (const auto &ex : data.examples) {
        auto p = predict(m, TaskKind::MnliLike, ex);
        EXPECT_GE(p.margin, 0.0);
    }
}

TEST(Evaluate, QuantizationDegradesGracefully)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 69);
    auto spec = smallSpec(TaskKind::MnliLike, 150);
    Dataset data = buildTask(m, spec);
    double baseline = evaluate(m, data);

    // 6-bit GOBO should be essentially lossless on this small model;
    // 1-bit should hurt badly.
    BertModel fine = m;
    ModelQuantOptions opt6;
    opt6.base.bits = 6;
    quantizeModelInPlace(fine, opt6);
    double fine_score = evaluate(fine, data);
    EXPECT_NEAR(fine_score, baseline, 0.02);

    BertModel coarse = m;
    ModelQuantOptions opt1;
    opt1.base.bits = 1;
    quantizeModelInPlace(coarse, opt1);
    double coarse_score = evaluate(coarse, data);
    EXPECT_LT(coarse_score, baseline - 0.03);
}

TEST(Evaluate, EmptyDatasetIsFatal)
{
    auto cfg = miniConfig(ModelFamily::DistilBert);
    BertModel m = generateModel(cfg, 71);
    Dataset empty;
    EXPECT_THROW(evaluate(m, empty), FatalError);
}

} // namespace
} // namespace gobo
