/**
 * @file
 * Tests for the compressed tensor container and its codec.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/qtensor.hh"
#include "core/quantizer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gobo {
namespace {

Tensor
gaussianTensor(std::size_t r, std::size_t c, std::uint64_t seed,
               double sigma = 0.05)
{
    Rng rng(seed);
    Tensor t(r, c);
    std::vector<float> data(r * c);
    rng.fillGaussian(data, 0.0, sigma);
    return Tensor(r, c, std::move(data));
}

QuantizedTensor
quantized(std::size_t r, std::size_t c, unsigned bits, std::uint64_t seed)
{
    GoboConfig cfg;
    cfg.bits = bits;
    return quantizeTensor(gaussianTensor(r, c, seed), cfg);
}

TEST(QuantizedTensorTest, DequantizePreservesShape)
{
    auto q = quantized(17, 23, 3, 1);
    Tensor t = q.dequantize();
    EXPECT_EQ(t.rows(), 17u);
    EXPECT_EQ(t.cols(), 23u);
}

TEST(QuantizedTensorTest, DequantizedValuesComeFromTableOrOutliers)
{
    auto q = quantized(32, 32, 3, 2);
    Tensor t = q.dequantize();
    std::size_t oi = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        bool is_outlier = oi < q.outlierPositions.size()
                          && q.outlierPositions[oi] == i;
        float v = t.flat()[i];
        if (is_outlier) {
            EXPECT_EQ(v, q.outlierValues[oi]);
            ++oi;
        } else {
            bool in_table = false;
            for (float c : q.centroids)
                in_table |= c == v;
            EXPECT_TRUE(in_table) << "value " << v << " at " << i;
        }
    }
}

TEST(QuantizedTensorTest, PayloadAccounting)
{
    auto q = quantized(64, 64, 3, 3);
    std::size_t expected = 64 * 64 * 3 + q.centroids.size() * 32
                           + q.outlierPositions.size() * 64;
    EXPECT_EQ(q.payloadBits(), expected);
    EXPECT_EQ(q.payloadBytes(), (expected + 7) / 8);
    EXPECT_EQ(q.originalBytes(), 64u * 64u * 4u);
    EXPECT_GT(q.compressionRatio(), 8.0); // ~32/3 minus overheads
    EXPECT_LT(q.compressionRatio(), 32.0 / 3.0 + 0.1);
}

TEST(QuantizedTensorTest, SaveLoadRoundtrip)
{
    auto q = quantized(31, 17, 4, 4);
    std::stringstream ss;
    q.save(ss);
    auto back = QuantizedTensor::load(ss);
    EXPECT_EQ(back.bits, q.bits);
    EXPECT_EQ(back.rows, q.rows);
    EXPECT_EQ(back.cols, q.cols);
    EXPECT_EQ(back.centroids, q.centroids);
    EXPECT_EQ(back.packedIndexes, q.packedIndexes);
    EXPECT_EQ(back.outlierPositions, q.outlierPositions);
    EXPECT_EQ(back.outlierValues, q.outlierValues);
    // And the decoded tensors agree exactly.
    Tensor a = q.dequantize();
    Tensor b = back.dequantize();
    EXPECT_EQ(a.data(), b.data());
}

TEST(QuantizedTensorTest, LoadRejectsBadMagic)
{
    std::stringstream ss;
    ss.write("NOPE", 4);
    ss.write("\0\0\0\0\0\0\0\0", 8);
    EXPECT_THROW(QuantizedTensor::load(ss), FatalError);
}

TEST(QuantizedTensorTest, LoadRejectsTruncation)
{
    auto q = quantized(16, 16, 3, 5);
    std::stringstream ss;
    q.save(ss);
    std::string full = ss.str();
    for (std::size_t cut : {std::size_t{4}, full.size() / 2,
                            full.size() - 1}) {
        std::stringstream trunc(full.substr(0, cut));
        EXPECT_THROW(QuantizedTensor::load(trunc), FatalError)
            << "cut at " << cut;
    }
}

TEST(QuantizedTensorTest, CheckCatchesCorruption)
{
    auto q = quantized(8, 8, 3, 6);
    auto bad = q;
    bad.bits = 0;
    EXPECT_THROW(bad.check(), FatalError);

    bad = q;
    bad.centroids.clear();
    EXPECT_THROW(bad.check(), FatalError);

    bad = q;
    std::reverse(bad.centroids.begin(), bad.centroids.end());
    if (bad.centroids.size() > 1) {
        EXPECT_THROW(bad.check(), FatalError);
    }

    bad = q;
    bad.packedIndexes.pop_back();
    EXPECT_THROW(bad.check(), FatalError);

    bad = q;
    bad.outlierPositions.push_back(1u << 30);
    bad.outlierValues.push_back(1.0f);
    EXPECT_THROW(bad.check(), FatalError);

    bad = q;
    bad.outlierValues.push_back(1.0f);
    EXPECT_THROW(bad.check(), FatalError);
}

TEST(QuantizedTensorTest, OutlierFraction)
{
    auto q = quantized(64, 64, 3, 7);
    EXPECT_NEAR(q.outlierFraction(),
                static_cast<double>(q.outlierPositions.size()) / 4096.0,
                1e-12);
}

} // namespace
} // namespace gobo
