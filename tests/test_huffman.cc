/**
 * @file
 * Unit and property tests for the canonical Huffman codec.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "util/huffman.hh"
#include "util/logging.hh"

namespace gobo {
namespace {

TEST(Huffman, TwoSymbolAlphabet)
{
    std::vector<std::size_t> counts{10, 90};
    auto code = HuffmanCode::build(counts);
    EXPECT_EQ(code.lengthOf(0), 1u);
    EXPECT_EQ(code.lengthOf(1), 1u);
    EXPECT_NE(code.codeOf(0), code.codeOf(1));
}

TEST(Huffman, SingleSymbolStillCodes)
{
    std::vector<std::size_t> counts{0, 42, 0};
    auto code = HuffmanCode::build(counts);
    EXPECT_EQ(code.lengthOf(1), 1u);
    EXPECT_EQ(code.lengthOf(0), 0u);
    std::vector<std::uint32_t> stream(17, 1);
    std::size_t bits = 0;
    auto bytes = code.encode(stream, bits);
    EXPECT_EQ(bits, 17u);
    auto back = code.decode(bytes, bits, stream.size());
    EXPECT_EQ(back, stream);
}

TEST(Huffman, SkewedDistributionGetsShortCodes)
{
    // Frequent symbols must get codes no longer than rare ones.
    std::vector<std::size_t> counts{1000, 200, 50, 10, 5, 1, 1, 1};
    auto code = HuffmanCode::build(counts);
    for (std::uint32_t s = 1; s < counts.size(); ++s)
        EXPECT_LE(code.lengthOf(0), code.lengthOf(s));
    // And the average length beats the fixed 3-bit rate.
    double avg = static_cast<double>(code.encodedBits(counts)) / 1268.0;
    EXPECT_LT(avg, 3.0);
    EXPECT_GE(avg, entropyBitsPerSymbol(counts) - 1e-9);
}

TEST(Huffman, UniformDistributionNearFixedRate)
{
    std::vector<std::size_t> counts(8, 1000);
    auto code = HuffmanCode::build(counts);
    for (std::uint32_t s = 0; s < 8; ++s)
        EXPECT_EQ(code.lengthOf(s), 3u);
}

TEST(Huffman, KraftInequalityHolds)
{
    std::vector<std::size_t> counts{7, 3, 19, 1, 1, 200, 42, 13, 5, 5};
    auto code = HuffmanCode::build(counts);
    double kraft = 0.0;
    for (std::uint32_t s = 0; s < counts.size(); ++s)
        if (code.lengthOf(s) > 0)
            kraft += std::pow(2.0, -static_cast<double>(
                                  code.lengthOf(s)));
    EXPECT_NEAR(kraft, 1.0, 1e-12); // Huffman codes are complete
}

TEST(Huffman, RejectsDegenerateInput)
{
    std::vector<std::size_t> zeros(4, 0);
    EXPECT_THROW(HuffmanCode::build(zeros), FatalError);
    std::vector<std::size_t> counts{1, 1};
    auto code = HuffmanCode::build(counts);
    EXPECT_THROW(code.lengthOf(5), FatalError);
    std::vector<std::uint32_t> bad{3};
    std::size_t bits;
    EXPECT_THROW(code.encode(bad, bits), FatalError);
}

TEST(Huffman, DecodeRejectsTruncation)
{
    std::vector<std::size_t> counts{5, 5, 5, 5};
    auto code = HuffmanCode::build(counts);
    std::vector<std::uint32_t> stream{0, 1, 2, 3, 0, 1};
    std::size_t bits = 0;
    auto bytes = code.encode(stream, bits);
    EXPECT_THROW(code.decode(bytes, bits / 2, stream.size()),
                 FatalError);
}

/** Roundtrip property across distribution shapes and alphabet sizes. */
class HuffmanRoundtrip
    : public ::testing::TestWithParam<std::pair<std::size_t, double>>
{
};

TEST_P(HuffmanRoundtrip, EncodeDecodeIdentity)
{
    auto [alphabet, skew] = GetParam();
    std::mt19937_64 eng(alphabet * 31 + static_cast<unsigned>(skew * 10));

    // Zipf-ish distribution with the given skew.
    std::vector<double> weights(alphabet);
    for (std::size_t s = 0; s < alphabet; ++s)
        weights[s] = 1.0 / std::pow(static_cast<double>(s + 1), skew);
    std::discrete_distribution<std::uint32_t> dist(weights.begin(),
                                                   weights.end());

    std::vector<std::uint32_t> stream(5000);
    for (auto &s : stream)
        s = dist(eng);

    auto counts = symbolCounts(stream, alphabet);
    // Ensure every symbol appears so the code covers the alphabet.
    for (std::uint32_t s = 0; s < alphabet; ++s) {
        if (counts[s] == 0) {
            stream.push_back(s);
            ++counts[s];
        }
    }

    auto code = HuffmanCode::build(counts);
    std::size_t bits = 0;
    auto bytes = code.encode(stream, bits);
    EXPECT_EQ(bits, code.encodedBits(counts));
    auto back = code.decode(bytes, bits, stream.size());
    EXPECT_EQ(back, stream);

    // Source coding theorem sandwich: entropy <= avg length <
    // entropy + 1.
    double h = entropyBitsPerSymbol(counts);
    double avg = static_cast<double>(bits)
                 / static_cast<double>(stream.size());
    EXPECT_GE(avg, h - 1e-9);
    EXPECT_LT(avg, h + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HuffmanRoundtrip,
    ::testing::Values(std::pair<std::size_t, double>{2, 0.0},
                      std::pair<std::size_t, double>{4, 1.0},
                      std::pair<std::size_t, double>{8, 0.0},
                      std::pair<std::size_t, double>{8, 1.5},
                      std::pair<std::size_t, double>{16, 1.0},
                      std::pair<std::size_t, double>{32, 2.0},
                      std::pair<std::size_t, double>{128, 1.0},
                      std::pair<std::size_t, double>{256, 0.5}));

TEST(Entropy, KnownValues)
{
    std::vector<std::size_t> uniform(4, 25);
    EXPECT_NEAR(entropyBitsPerSymbol(uniform), 2.0, 1e-12);
    std::vector<std::size_t> certain{100, 0, 0};
    EXPECT_NEAR(entropyBitsPerSymbol(certain), 0.0, 1e-12);
    std::vector<std::size_t> empty(4, 0);
    EXPECT_EQ(entropyBitsPerSymbol(empty), 0.0);
}

TEST(SymbolCountsTest, CountsAndValidates)
{
    std::vector<std::uint32_t> stream{0, 1, 1, 3};
    auto counts = symbolCounts(stream, 4);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
    std::vector<std::uint32_t> bad{9};
    EXPECT_THROW(symbolCounts(bad, 4), FatalError);
}

} // namespace
} // namespace gobo
