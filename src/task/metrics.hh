/**
 * @file
 * Task metrics: classification accuracy, Spearman correlation (STS-B),
 * and token-overlap span F1 (SQuAD v1.1).
 */

#ifndef GOBO_TASK_METRICS_HH
#define GOBO_TASK_METRICS_HH

#include <cstddef>
#include <span>

namespace gobo {

/**
 * SQuAD-style token-overlap F1 between a predicted span and a gold
 * span, both inclusive [start, end] over token positions.
 */
double spanF1(std::size_t pred_start, std::size_t pred_end,
              std::size_t gold_start, std::size_t gold_end);

/** Fraction of positions where the two label sequences agree. */
double accuracy(std::span<const int> predictions,
                std::span<const int> labels);

} // namespace gobo

#endif // GOBO_TASK_METRICS_HH
