#include "task/metrics.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gobo {

double
spanF1(std::size_t pred_start, std::size_t pred_end,
       std::size_t gold_start, std::size_t gold_end)
{
    fatalIf(pred_end < pred_start || gold_end < gold_start,
            "spanF1 spans must have end >= start");
    std::size_t lo = std::max(pred_start, gold_start);
    std::size_t hi = std::min(pred_end, gold_end);
    if (hi < lo)
        return 0.0;
    double overlap = static_cast<double>(hi - lo + 1);
    double pred_len = static_cast<double>(pred_end - pred_start + 1);
    double gold_len = static_cast<double>(gold_end - gold_start + 1);
    double precision = overlap / pred_len;
    double recall = overlap / gold_len;
    return 2.0 * precision * recall / (precision + recall);
}

double
accuracy(std::span<const int> predictions, std::span<const int> labels)
{
    fatalIf(predictions.size() != labels.size(),
            "accuracy size mismatch: ", predictions.size(), " vs ",
            labels.size());
    fatalIf(predictions.empty(), "accuracy of empty prediction set");
    std::size_t hits = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i)
        hits += predictions[i] == labels[i] ? 1 : 0;
    return static_cast<double>(hits)
           / static_cast<double>(predictions.size());
}

} // namespace gobo
