#include "task/task.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <numbers>

#include "nn/encoder.hh"
#include "task/metrics.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace gobo {

const char *
taskName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::MnliLike: return "MNLI";
      case TaskKind::StsbLike: return "STS-B";
      case TaskKind::SquadLike: return "SQuAD v1.1";
    }
    panic("unknown TaskKind");
}

const char *
metricName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::MnliLike: return "Accuracy (m)";
      case TaskKind::StsbLike: return "Spearman";
      case TaskKind::SquadLike: return "F1 Score";
    }
    panic("unknown TaskKind");
}

TaskSpec
defaultSpec(TaskKind kind, std::uint64_t seed)
{
    TaskSpec spec;
    spec.kind = kind;
    spec.seed = seed;
    switch (kind) {
      case TaskKind::MnliLike:
        spec.numExamples = 1000;
        spec.targetBaseline = 0.8445;
        break;
      case TaskKind::StsbLike:
        // Spearman needs a larger sample than accuracy for the same
        // resolution: rank noise enters quadratically.
        spec.numExamples = 1200;
        spec.targetBaseline = 0.8833;
        break;
      case TaskKind::SquadLike:
        spec.numExamples = 400;
        spec.targetBaseline = 0.9195;
        break;
    }
    return spec;
}

TaskSpec
defaultSpec(TaskKind kind, ModelFamily family, std::uint64_t seed)
{
    TaskSpec spec = defaultSpec(kind, seed);
    if (kind == TaskKind::MnliLike) {
        switch (family) {
          case ModelFamily::BertBase:
          case ModelFamily::BertLarge:
            spec.targetBaseline = 0.8445;
            break;
          case ModelFamily::DistilBert:
            spec.targetBaseline = 0.8198;
            break;
          case ModelFamily::RoBerta:
            spec.targetBaseline = 0.8760;
            break;
          case ModelFamily::RoBertaLarge:
            spec.targetBaseline = 0.9020;
            break;
        }
    }
    if (family == ModelFamily::RoBerta)
        spec.marginDropFraction = 0.25;
    // DistilBERT is half as deep, so its quantization perturbations
    // are smaller at mini scale; a weaker filter keeps its
    // sensitivity visible (the paper's Table V shows losses similar
    // to BERT-Base's).
    if (family == ModelFamily::DistilBert)
        spec.marginDropFraction = 0.4;
    // The deeper RoBERTa-Large accumulates more per-pass perturbation
    // at mini scale (see the BERT-Large note below) while the paper
    // finds it *less* quantization-sensitive than RoBERTa; the
    // stronger filter restores that relationship.
    if (family == ModelFamily::RoBertaLarge)
        spec.marginDropFraction = 0.55;
    // The 24-encoder reduced-scale models accumulate proportionally
    // more quantization perturbation per forward pass than their
    // full-width counterparts; a stronger confidence filter restores
    // the margin-to-perturbation ratio of the paper's regime.
    if (family == ModelFamily::BertLarge)
        spec.marginDropFraction = 0.82;
    return spec;
}

namespace {

/** Head outputs per task. */
std::size_t
headOutputs(TaskKind kind)
{
    switch (kind) {
      case TaskKind::MnliLike: return 3;
      case TaskKind::StsbLike: return 1;
      case TaskKind::SquadLike: return 2;
    }
    panic("unknown TaskKind");
}

/** Gap between the largest and second-largest entry of a span. */
double
topTwoGap(std::span<const float> xs)
{
    panicIf(xs.size() < 2, "topTwoGap needs at least two entries");
    float best = xs[0], second = xs[1];
    if (second > best)
        std::swap(best, second);
    for (std::size_t i = 2; i < xs.size(); ++i) {
        if (xs[i] > best) {
            second = best;
            best = xs[i];
        } else if (xs[i] > second) {
            second = xs[i];
        }
    }
    return static_cast<double>(best) - second;
}

} // namespace

Prediction
predict(const BertModel &model, TaskKind kind, const Example &example)
{
    Prediction p;
    Tensor hidden = encodeSequence(model, example.tokens);
    if (kind == TaskKind::SquadLike) {
        Tensor logits = spanLogits(model, hidden);
        std::size_t seq = logits.rows();
        std::vector<float> starts(seq), ends_all(seq);
        for (std::size_t i = 0; i < seq; ++i) {
            starts[i] = logits(i, 0);
            ends_all[i] = logits(i, 1);
        }
        std::size_t best_start = argmax(starts);
        std::size_t best_end = best_start;
        float best_end_score = logits(best_start, 1);
        for (std::size_t j = best_start + 1; j < seq; ++j) {
            if (logits(j, 1) > best_end_score) {
                best_end_score = logits(j, 1);
                best_end = j;
            }
        }
        p.spanStart = best_start;
        p.spanEnd = best_end;
        p.margin = std::min(topTwoGap(starts), topTwoGap(ends_all));
        return p;
    }

    Tensor pooled = pool(model, hidden);
    Tensor logits = headLogits(model, pooled);
    p.label = static_cast<int>(argmax(logits.flat()));
    p.score = logits(0);
    if (logits.size() >= 2)
        p.margin = topTwoGap(logits.flat());
    return p;
}

Dataset
buildTask(BertModel &model, const TaskSpec &spec)
{
    const auto &cfg = model.config();
    fatalIf(spec.numExamples == 0, "task needs at least one example");
    fatalIf(spec.seqLen < 2 || spec.seqLen > cfg.maxPosition,
            "task seqLen ", spec.seqLen, " out of range");
    fatalIf(spec.targetBaseline <= 0.0 || spec.targetBaseline > 1.0,
            "targetBaseline out of (0, 1]: ", spec.targetBaseline);

    Rng rng(spec.seed * 0x5851f42d4c957f2dULL + 7);

    model.resizeHead(headOutputs(spec.kind));
    double head_scale = 1.0 / std::sqrt(static_cast<double>(cfg.hidden));
    for (auto &v : model.headW.flat())
        v = static_cast<float>(rng.gaussian(0.0, head_scale));
    for (auto &v : model.headB.flat())
        v = static_cast<float>(rng.gaussian(0.0, 0.01));

    // Oversample candidates, run the teacher, keep the most confident.
    bool filter = spec.kind != TaskKind::StsbLike
                  && spec.marginDropFraction > 0.0;
    fatalIf(spec.marginDropFraction < 0.0 || spec.marginDropFraction >= 1.0,
            "marginDropFraction out of [0, 1)");
    std::size_t candidates =
        filter ? static_cast<std::size_t>(std::ceil(
            static_cast<double>(spec.numExamples)
            / (1.0 - spec.marginDropFraction)))
               : spec.numExamples;

    std::vector<Example> pool_examples(candidates);
    for (auto &ex : pool_examples) {
        ex.tokens.resize(spec.seqLen);
        for (auto &t : ex.tokens)
            t = static_cast<std::int32_t>(rng.integer(
                0, static_cast<std::int64_t>(cfg.vocabSize) - 1));
    }
    std::vector<Prediction> pool_teacher;
    pool_teacher.reserve(candidates);
    for (const auto &ex : pool_examples)
        pool_teacher.push_back(predict(model, spec.kind, ex));

    std::vector<std::size_t> keep(candidates);
    std::iota(keep.begin(), keep.end(), std::size_t{0});
    if (filter) {
        std::sort(keep.begin(), keep.end(),
                  [&](std::size_t a, std::size_t b) {
                      return pool_teacher[a].margin
                             > pool_teacher[b].margin;
                  });
        keep.resize(spec.numExamples);
        // Keep dataset order independent of margin rank.
        std::sort(keep.begin(), keep.end());
    }

    Dataset data;
    data.kind = spec.kind;
    data.examples.reserve(spec.numExamples);
    std::vector<Prediction> teacher;
    teacher.reserve(spec.numExamples);
    for (auto i : keep) {
        data.examples.push_back(std::move(pool_examples[i]));
        teacher.push_back(pool_teacher[i]);
    }

    // Exactly round(p * N) labels get noise, so the FP32 baseline lands
    // on the paper's number up to rounding rather than binomial noise.
    auto pick_noisy = [&](double p) {
        std::vector<std::size_t> order(teacher.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        rng.shuffle(order);
        auto count = static_cast<std::size_t>(std::llround(
            p * static_cast<double>(teacher.size())));
        order.resize(std::min(count, order.size()));
        std::vector<std::uint8_t> noisy(teacher.size(), 0);
        for (auto i : order)
            noisy[i] = 1;
        return noisy;
    };

    switch (spec.kind) {
      case TaskKind::MnliLike: {
        // Flipping to a random *other* class leaves accuracy 1 - p.
        auto noisy = pick_noisy(1.0 - spec.targetBaseline);
        for (std::size_t i = 0; i < teacher.size(); ++i) {
            int label = teacher[i].label;
            if (noisy[i]) {
                int shift = static_cast<int>(rng.integer(1, 2));
                label = (label + shift) % 3;
            }
            data.examples[i].label = label;
        }
        break;
      }
      case TaskKind::StsbLike: {
        // Additive Gaussian label noise sized from the bivariate-normal
        // identity rho_spearman = (6/pi) asin(rho_pearson / 2).
        RunningStats rs;
        for (const auto &t : teacher)
            rs.add(t.score);
        double rho_p = 2.0 * std::sin(std::numbers::pi
                                      * spec.targetBaseline / 6.0);
        // The 0.92 corrects for the teacher scores not being exactly
        // normal (the identity above assumes bivariate normality);
        // measured empirically against where the Spearman lands.
        double noise = 0.92 * rs.stddev()
                       * std::sqrt(1.0 / (rho_p * rho_p) - 1.0);
        for (std::size_t i = 0; i < teacher.size(); ++i)
            data.examples[i].score = teacher[i].score
                                     + rng.gaussian(0.0, noise);
        break;
      }
      case TaskKind::SquadLike: {
        // Replace the teacher span on a calibrated fraction; a random
        // span still overlaps the teacher occasionally (measured
        // expected F1 ~ 0.13 at these sequence lengths), hence the
        // divisor.
        double p = 1.0
                   - std::min(1.0, (spec.targetBaseline - 0.13) / 0.87);
        auto noisy = pick_noisy(p);
        for (std::size_t i = 0; i < teacher.size(); ++i) {
            auto &ex = data.examples[i];
            if (!noisy[i]) {
                ex.spanStart = teacher[i].spanStart;
                ex.spanEnd = teacher[i].spanEnd;
            } else {
                auto start = static_cast<std::size_t>(rng.integer(
                    0, static_cast<std::int64_t>(spec.seqLen) - 1));
                auto len = static_cast<std::size_t>(rng.integer(0, 3));
                ex.spanStart = start;
                ex.spanEnd = std::min(start + len, spec.seqLen - 1);
            }
        }
        break;
      }
    }
    return data;
}

double
evaluate(const ExecContext &ctx, const BertModel &model,
         const Dataset &data)
{
    fatalIf(data.examples.empty(), "evaluate on empty dataset");

    // Examples are independent: predict each into its slot on the
    // backend, then reduce the metric in example order — bit-identical
    // to the serial loop.
    std::vector<Prediction> preds(data.examples.size());
    ctx.parallelFor(data.examples.size(), [&](std::size_t i) {
        preds[i] = predict(model, data.kind, data.examples[i]);
    });

    switch (data.kind) {
      case TaskKind::MnliLike: {
        std::size_t hits = 0;
        for (std::size_t i = 0; i < preds.size(); ++i)
            hits += preds[i].label == data.examples[i].label ? 1 : 0;
        return static_cast<double>(hits)
               / static_cast<double>(data.examples.size());
      }
      case TaskKind::StsbLike: {
        std::vector<double> pred, gold;
        pred.reserve(data.examples.size());
        gold.reserve(data.examples.size());
        for (std::size_t i = 0; i < preds.size(); ++i) {
            pred.push_back(preds[i].score);
            gold.push_back(data.examples[i].score);
        }
        return spearman(pred, gold);
      }
      case TaskKind::SquadLike: {
        double f1_sum = 0.0;
        for (std::size_t i = 0; i < preds.size(); ++i)
            f1_sum += spanF1(preds[i].spanStart, preds[i].spanEnd,
                             data.examples[i].spanStart,
                             data.examples[i].spanEnd);
        return f1_sum / static_cast<double>(data.examples.size());
      }
    }
    panic("unknown TaskKind");
}

double
evaluate(const BertModel &model, const Dataset &data)
{
    return evaluate(ExecContext::serial(), model, data);
}

double
evaluate(const InferenceSession &session, const Dataset &data)
{
    return evaluate(session.context(), session.model(), data);
}

} // namespace gobo
