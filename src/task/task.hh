/**
 * @file
 * Synthetic evaluation tasks standing in for GLUE MNLI, GLUE STS-B and
 * SQuAD v1.1.
 *
 * The paper measures how much quantizing a fine-tuned model's weights
 * moves a downstream metric. That causal chain — weight perturbation ->
 * prediction change -> metric loss — is what these tasks rebuild
 * without the (unavailable) English datasets:
 *
 *  1. The fine-tuned model is a generated transformer (model/generate)
 *     with a task head sized for the task, playing the teacher.
 *  2. Inputs are random token sequences. Token embeddings carry a few
 *     high-magnitude "hot" dimensions per token (the well-documented
 *     outlier-activation phenomenon of transformer residual streams),
 *     so a weight's contribution to the logits is dominated by a small,
 *     example-dependent subset of columns — as in real BERT inference.
 *  3. Labels are the FP32 model's own predictions with calibrated
 *     noise, so the FP32 baseline lands near the paper's baseline score
 *     (84.45% m for MNLI, 88.33 Spearman for STS-B, 91.95 F1 for
 *     SQuAD) instead of a meaningless 100%.
 *
 * Quantization error then converts into metric loss exactly as in the
 * paper: a quantized model disagrees with its FP32 self on examples
 * near decision boundaries, and each disagreement costs accuracy
 * against the mostly-teacher-aligned labels.
 */

#ifndef GOBO_TASK_TASK_HH
#define GOBO_TASK_TASK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/context.hh"
#include "exec/session.hh"
#include "model/model.hh"

namespace gobo {

/** The three task shapes the paper evaluates. */
enum class TaskKind
{
    MnliLike,  ///< 3-class sentence-pair classification, accuracy.
    StsbLike,  ///< Similarity regression, Spearman correlation.
    SquadLike, ///< Span extraction, token-overlap F1.
};

/** Printable task name. */
const char *taskName(TaskKind kind);

/** Printable metric name for a task. */
const char *metricName(TaskKind kind);

/** One evaluation example with its (noisy-teacher) label. */
struct Example
{
    std::vector<std::int32_t> tokens;
    int label = 0;                  ///< MNLI-like class.
    double score = 0.0;             ///< STS-B-like target.
    std::size_t spanStart = 0;      ///< SQuAD-like gold span.
    std::size_t spanEnd = 0;
};

/** A labelled evaluation set. */
struct Dataset
{
    TaskKind kind = TaskKind::MnliLike;
    std::vector<Example> examples;
};

/** Task construction parameters. */
struct TaskSpec
{
    TaskKind kind = TaskKind::MnliLike;
    std::size_t numExamples = 1000;
    std::size_t seqLen = 16;
    /**
     * Metric the FP32 model should score, matching the paper's
     * baselines. Label noise is calibrated to land here.
     */
    double targetBaseline = 0.8445;
    /**
     * Confidence filter: candidate examples are oversampled and the
     * least-confident fraction (by teacher decision margin) dropped.
     * Real fine-tuned models are confident on most dataset examples;
     * without this the random-teacher task would sit almost entirely
     * on decision boundaries and overstate quantization loss.
     */
    double marginDropFraction = 0.5;
    std::uint64_t seed = 1;
};

/** Paper-matching defaults per task (baseline scores from Table IV). */
TaskSpec defaultSpec(TaskKind kind, std::uint64_t seed);

/**
 * Family-aware defaults: baseline targets match the paper's per-model
 * numbers (MNLI: 84.45 BERT-Base, 81.98 DistilBERT, 87.60 RoBERTa,
 * 90.20 RoBERTa-Large), and the RoBERTa families get a weaker
 * confidence filter — they fine-tune to higher accuracy with slimmer
 * decision margins, which is how their empirically higher
 * quantization sensitivity (Table VI) enters the substitute task.
 */
TaskSpec defaultSpec(TaskKind kind, ModelFamily family,
                     std::uint64_t seed);

/**
 * Prepare `model` for the task (inject hot embedding dimensions, size
 * and fill the head) and build a labelled dataset from the model's own
 * noisy-teacher predictions. Must run on the FP32 model before any
 * quantization.
 */
Dataset buildTask(BertModel &model, const TaskSpec &spec);

/** Model predictions on one example. */
struct Prediction
{
    int label = 0;
    double score = 0.0;
    std::size_t spanStart = 0;
    std::size_t spanEnd = 0;
    /**
     * Decision margin: logit gap between the decision and the
     * runner-up (classification: top-1 minus top-2; span: the smaller
     * of the start and end gaps; regression: unused, 0).
     */
    double margin = 0.0;
};

/** Run the model on one example. */
Prediction predict(const BertModel &model, TaskKind kind,
                   const Example &example);

/**
 * Score a model against a dataset: accuracy, Spearman, or mean span
 * F1, depending on the task kind. Returned in [0 (or -1 for
 * Spearman), 1]. The context parallelizes *across* examples (each
 * per-example forward stays serial), so the score is bit-identical on
 * every backend.
 */
double evaluate(const ExecContext &ctx, const BertModel &model,
                const Dataset &data);
double evaluate(const BertModel &model, const Dataset &data);

/**
 * Score an InferenceSession (FP32 engine) against a dataset under the
 * session's own execution context.
 */
double evaluate(const InferenceSession &session, const Dataset &data);

} // namespace gobo

#endif // GOBO_TASK_TASK_HH
