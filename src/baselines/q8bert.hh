/**
 * @file
 * Q8BERT-like baseline: symmetric 8-bit fixed-point quantization.
 *
 * Intel's Q8BERT [Zafrir et al.] fine-tunes BERT into 8-bit fixed-point
 * weights and activations. Fine-tuning is not available in this
 * post-training reproduction, so we implement the storage format and
 * the weight quantizer (symmetric linear, per-tensor scale) and apply
 * it post-training; EXPERIMENTS.md notes that this is pessimistic for
 * the baseline's accuracy but leaves its compression ratio — the axis
 * Table III compares — exact: 8 bits everywhere is 4x.
 */

#ifndef GOBO_BASELINES_Q8BERT_HH
#define GOBO_BASELINES_Q8BERT_HH

#include <cstdint>
#include <vector>

#include "core/quantizer.hh"
#include "exec/context.hh"
#include "model/config.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** An 8-bit symmetric fixed-point tensor. */
struct Q8Tensor
{
    std::size_t rows = 0, cols = 0;
    float scale = 1.0f;            ///< value = scale * int8.
    std::vector<std::int8_t> values;

    /** Reconstruct the FP32 tensor. */
    Tensor dequantize() const;

    /** Exact storage cost in bytes (int8 payload + the scale). */
    std::size_t payloadBytes() const;
};

/** Quantize one tensor to symmetric int8 with a per-tensor scale. */
Q8Tensor quantizeQ8(const Tensor &weights);

/**
 * Apply Q8BERT-style quantization to every FC weight matrix and the
 * word embedding (Q8BERT keeps embeddings 8-bit too), replacing each
 * with its decoded form. Returns the storage accounting in the same
 * report shape as the GOBO driver. Layers are processed on the
 * context's backend (bit-identical to serial).
 */
ModelQuantReport q8bertQuantizeModelInPlace(BertModel &model,
                                            const ExecContext &ctx = {});

/**
 * Accounting-only Q8BERT pass over a full-size configuration
 * (analytic: the int8 format's size does not depend on the data).
 */
ModelQuantReport q8bertAccountConfig(const ModelConfig &config);

} // namespace gobo

#endif // GOBO_BASELINES_Q8BERT_HH
