/**
 * @file
 * Q-BERT-like baseline: per-group dictionary quantization.
 *
 * Q-BERT [Shen et al.] quantizes each layer's weights to 2^B
 * representative values per group, splitting every layer into 128
 * groups with one dictionary each, and keeps embeddings at 8 bits. Its
 * centroid search uses second-order (Hessian) information gathered
 * during fine-tuning; post-training we substitute per-group K-Means
 * from the same data, which preserves the storage format exactly
 * (the axis Table III compares) and is the standard data-only stand-in
 * for the Hessian-weighted objective.
 */

#ifndef GOBO_BASELINES_QBERT_HH
#define GOBO_BASELINES_QBERT_HH

#include <cstdint>
#include <vector>

#include "core/quantizer.hh"
#include "exec/context.hh"
#include "model/config.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** A per-group dictionary-quantized tensor (Q-BERT storage format). */
struct GroupQuantTensor
{
    std::size_t rows = 0, cols = 0;
    unsigned bits = 0;
    /** One dictionary (2^bits entries) per group of contiguous rows. */
    std::vector<std::vector<float>> dictionaries;
    /** Packed B-bit dictionary indexes, row-major. */
    std::vector<std::uint8_t> packedIndexes;

    std::size_t elementCount() const { return rows * cols; }

    /** Group index of a row. */
    std::size_t groupOf(std::size_t row) const;

    /** Reconstruct the FP32 tensor. */
    Tensor dequantize() const;

    /** Exact storage cost: indexes + all dictionaries. */
    std::size_t payloadBytes() const;
};

/**
 * Quantize one tensor Q-BERT-style.
 * @param bits index width (Q-BERT uses 2..4 for weights).
 * @param groups number of per-layer groups (128 in the paper).
 * @param method per-group centroid policy — K-Means is Q-BERT's
 *        post-training stand-in; CentroidMethod::Gobo turns this into
 *        the "per-group GOBO tables" design-ablation of DESIGN.md.
 */
GroupQuantTensor quantizeGroupwise(
    const Tensor &weights, unsigned bits, std::size_t groups = 128,
    CentroidMethod method = CentroidMethod::KMeans);

/**
 * Apply Q-BERT-style quantization to every FC weight matrix (B-bit
 * groupwise dictionaries) and the word embedding (8-bit fixed point,
 * as in the paper), replacing each with its decoded form. Layers are
 * processed on the context's backend (bit-identical to serial).
 */
ModelQuantReport qbertQuantizeModelInPlace(BertModel &model, unsigned bits,
                                           std::size_t groups = 128,
                                           const ExecContext &ctx = {});

/** Accounting-only Q-BERT pass over a full-size configuration. */
ModelQuantReport qbertAccountConfig(const ModelConfig &config,
                                    unsigned bits,
                                    std::size_t groups = 128);

} // namespace gobo

#endif // GOBO_BASELINES_QBERT_HH
