#include "baselines/q8bert.hh"

#include <algorithm>
#include <cmath>

#include "model/generate.hh"
#include "util/logging.hh"

namespace gobo {

Tensor
Q8Tensor::dequantize() const
{
    Tensor t(rows, cols);
    auto flat = t.flat();
    panicIf(values.size() != flat.size(), "Q8Tensor size mismatch");
    for (std::size_t i = 0; i < flat.size(); ++i)
        flat[i] = scale * static_cast<float>(values[i]);
    return t;
}

std::size_t
Q8Tensor::payloadBytes() const
{
    return values.size() + sizeof(float);
}

Q8Tensor
quantizeQ8(const Tensor &weights)
{
    fatalIf(weights.size() == 0, "quantizeQ8 on empty tensor");
    Q8Tensor q;
    q.rows = weights.rows();
    q.cols = weights.cols();

    float max_abs = 0.0f;
    for (float v : weights.flat())
        max_abs = std::max(max_abs, std::abs(v));
    q.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;

    q.values.reserve(weights.size());
    for (float v : weights.flat()) {
        float r = std::round(v / q.scale);
        r = std::clamp(r, -127.0f, 127.0f);
        q.values.push_back(static_cast<std::int8_t>(r));
    }
    return q;
}

ModelQuantReport
q8bertQuantizeModelInPlace(BertModel &model, const ExecContext &ctx)
{
    ModelQuantReport report;
    // Same index-addressed layer parallelism as the GOBO driver:
    // per-layer results land in their slot and are reduced in order.
    auto layers = model.fcLayers();
    std::vector<LayerReportEntry> entries(layers.size());
    ctx.parallelFor(layers.size(), [&](std::size_t i) {
        auto &layer = layers[i];
        Q8Tensor q = quantizeQ8(*layer.weight);
        LayerReportEntry entry;
        entry.name = layer.name;
        entry.kind = layer.kind;
        entry.encoder = layer.encoder;
        entry.elements = layer.weight->size();
        entry.bits = 8;
        entry.payloadBytes = q.payloadBytes();
        entries[i] = entry;
        *layer.weight = q.dequantize();
    });
    for (auto &entry : entries) {
        report.weightOriginalBytes += entry.elements * sizeof(float);
        report.weightPayloadBytes += entry.payloadBytes;
        report.layers.push_back(std::move(entry));
    }

    report.embeddingOriginalBytes = model.wordEmbedding.size()
                                    * sizeof(float);
    Q8Tensor emb = quantizeQ8(model.wordEmbedding);
    report.embeddingPayloadBytes = emb.payloadBytes();
    model.wordEmbedding = emb.dequantize();
    return report;
}

ModelQuantReport
q8bertAccountConfig(const ModelConfig &config)
{
    ModelQuantReport report;
    for (const auto &spec : fcLayerSpecs(config)) {
        LayerReportEntry entry;
        entry.name = spec.name;
        entry.kind = spec.kind;
        entry.encoder = spec.encoder;
        entry.elements = spec.rows * spec.cols;
        entry.bits = 8;
        entry.payloadBytes = entry.elements + sizeof(float);
        report.layers.push_back(entry);
        report.weightOriginalBytes += entry.elements * sizeof(float);
        report.weightPayloadBytes += entry.payloadBytes;
    }
    report.embeddingOriginalBytes = config.wordEmbeddingParams()
                                    * sizeof(float);
    report.embeddingPayloadBytes = config.wordEmbeddingParams()
                                   + sizeof(float);
    return report;
}

} // namespace gobo
