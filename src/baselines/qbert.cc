#include "baselines/qbert.hh"

#include <algorithm>

#include "baselines/q8bert.hh"
#include "core/cluster.hh"
#include "model/generate.hh"
#include "util/bitstream.hh"
#include "util/logging.hh"

namespace gobo {

std::size_t
GroupQuantTensor::groupOf(std::size_t row) const
{
    panicIf(row >= rows, "groupOf row out of range");
    return (row * dictionaries.size()) / rows;
}

Tensor
GroupQuantTensor::dequantize() const
{
    Tensor t(rows, cols);
    BitReader reader(packedIndexes.data(), elementCount() * bits);
    for (std::size_t r = 0; r < rows; ++r) {
        const auto &dict = dictionaries[groupOf(r)];
        auto row = t.row(r);
        for (auto &v : row) {
            std::uint32_t idx = reader.get(bits);
            fatalIf(idx >= dict.size(), "group dictionary index ", idx,
                    " out of ", dict.size());
            v = dict[idx];
        }
    }
    return t;
}

std::size_t
GroupQuantTensor::payloadBytes() const
{
    std::size_t bits_total = elementCount() * bits;
    for (const auto &dict : dictionaries)
        bits_total += dict.size() * 32;
    return (bits_total + 7) / 8;
}

GroupQuantTensor
quantizeGroupwise(const Tensor &weights, unsigned bits,
                  std::size_t groups, CentroidMethod method)
{
    fatalIf(weights.rank() != 2, "quantizeGroupwise needs a matrix");
    fatalIf(bits == 0 || bits > 8, "bits out of range: ", bits);
    fatalIf(groups == 0, "need at least one group");

    GroupQuantTensor q;
    q.rows = weights.rows();
    q.cols = weights.cols();
    q.bits = bits;
    std::size_t n_groups = std::min(groups, q.rows);
    q.dictionaries.resize(n_groups);

    // Cluster each contiguous row-group independently, then pack all
    // indexes row-major in one stream.
    BitWriter writer;
    std::size_t g_begin = 0;
    for (std::size_t g = 0; g < n_groups; ++g) {
        std::size_t g_end = ((g + 1) * q.rows) / n_groups;
        panicIf(g_begin >= g_end, "empty row group");
        std::span<const float> block{weights.row(g_begin).data(),
                                     (g_end - g_begin) * q.cols};
        auto cluster = clusterWeights(block, bits, method);
        q.dictionaries[g] = cluster.centroids;
        auto idx = assignNearest(block, q.dictionaries[g]);
        for (auto v : idx)
            writer.put(v, bits);
        g_begin = g_end;
    }
    q.packedIndexes = writer.take();
    return q;
}

ModelQuantReport
qbertQuantizeModelInPlace(BertModel &model, unsigned bits,
                          std::size_t groups, const ExecContext &ctx)
{
    ModelQuantReport report;
    // Layers are quantized independently into index-addressed slots
    // and reduced in layer order, so parallel runs match serial ones
    // bit for bit.
    auto layers = model.fcLayers();
    std::vector<LayerReportEntry> entries(layers.size());
    ctx.parallelFor(layers.size(), [&](std::size_t i) {
        auto &layer = layers[i];
        GroupQuantTensor q = quantizeGroupwise(*layer.weight, bits,
                                               groups);
        LayerReportEntry entry;
        entry.name = layer.name;
        entry.kind = layer.kind;
        entry.encoder = layer.encoder;
        entry.elements = q.elementCount();
        entry.bits = bits;
        entry.payloadBytes = q.payloadBytes();
        entries[i] = entry;
        *layer.weight = q.dequantize();
    });
    for (auto &entry : entries) {
        report.weightOriginalBytes += entry.elements * sizeof(float);
        report.weightPayloadBytes += entry.payloadBytes;
        report.layers.push_back(std::move(entry));
    }

    // Q-BERT quantizes the embedding tables to 8 bits.
    report.embeddingOriginalBytes = model.wordEmbedding.size()
                                    * sizeof(float);
    Q8Tensor emb = quantizeQ8(model.wordEmbedding);
    report.embeddingPayloadBytes = emb.payloadBytes();
    model.wordEmbedding = emb.dequantize();
    return report;
}

ModelQuantReport
qbertAccountConfig(const ModelConfig &config, unsigned bits,
                   std::size_t groups)
{
    ModelQuantReport report;
    for (const auto &spec : fcLayerSpecs(config)) {
        std::size_t elements = spec.rows * spec.cols;
        std::size_t n_groups = std::min(groups, spec.rows);
        LayerReportEntry entry;
        entry.name = spec.name;
        entry.kind = spec.kind;
        entry.encoder = spec.encoder;
        entry.elements = elements;
        entry.bits = bits;
        entry.payloadBytes = (elements * bits
                              + n_groups * (std::size_t{1} << bits) * 32
                              + 7)
                             / 8;
        report.layers.push_back(entry);
        report.weightOriginalBytes += elements * sizeof(float);
        report.weightPayloadBytes += entry.payloadBytes;
    }
    report.embeddingOriginalBytes = config.wordEmbeddingParams()
                                    * sizeof(float);
    report.embeddingPayloadBytes = config.wordEmbeddingParams()
                                   + sizeof(float);
    return report;
}

} // namespace gobo
