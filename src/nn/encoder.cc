#include "nn/encoder.hh"

#include <cmath>

#include "kernels/kernels.hh"
#include "obs/observer.hh"
#include "obs/probe.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"

namespace gobo {

Tensor
embedTokens(const ExecContext &ctx, const BertModel &model,
            std::span<const std::int32_t> token_ids)
{
    const auto &cfg = model.config();
    fatalIf(token_ids.empty(), "embedTokens on empty sequence");
    fatalIf(token_ids.size() > cfg.maxPosition, "sequence length ",
            token_ids.size(), " exceeds maxPosition ", cfg.maxPosition);

    Tensor x(token_ids.size(), cfg.hidden);
    for (std::size_t s = 0; s < token_ids.size(); ++s) {
        auto id = token_ids[s];
        fatalIf(id < 0 || static_cast<std::size_t>(id) >= cfg.vocabSize,
                "token id ", id, " out of vocab ", cfg.vocabSize);
        auto word = model.wordEmbedding.row(static_cast<std::size_t>(id));
        auto posv = model.positionEmbedding.row(s);
        auto dst = x.row(s);
        for (std::size_t c = 0; c < dst.size(); ++c)
            dst[c] = word[c] + posv[c];
    }
    layerNormInplace(ctx, x, model.embLnGamma.flat(),
                     model.embLnBeta.flat());
    return x;
}

Tensor
embedTokens(const BertModel &model, std::span<const std::int32_t> token_ids)
{
    return embedTokens(ExecContext::serial(), model, token_ids);
}

Tensor
multiHeadAttention(const ExecContext &ectx, const Tensor &q,
                   const Tensor &k, const Tensor &v,
                   std::size_t num_heads)
{
    std::size_t seq = q.rows(), h = q.cols();
    panicIf(h % num_heads != 0, "hidden not divisible by heads");
    std::size_t dh = h / num_heads;
    float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    const KernelSet &kn = resolveKernels(ectx.kernels);
    Tensor ctx(seq, h);
    // Heads are independent: each owns the column slice
    // [head*dh, (head+1)*dh) of ctx and scores only itself, so
    // dispatching heads to the backend is race-free and order
    // preserving per element. The score dot, the row softmax and the
    // value accumulation (an axpy per attended token) all go through
    // the caller's kernel tier so one forward never mixes tiers.
    // Cost hint: per head, seq^2 score dots + softmax + value axpys,
    // ~4*seq*seq*dh flops — tiny attention blocks stay inline.
    ectx.parallelFor(num_heads, 4 * seq * seq * dh,
                     [&](std::size_t head) {
        Tensor scores(seq, seq);
        std::size_t off = head * dh;
        for (std::size_t i = 0; i < seq; ++i) {
            const float *qi = q.row(i).data() + off;
            float *srow = scores.row(i).data();
            for (std::size_t j = 0; j < seq; ++j) {
                const float *kj = k.row(j).data() + off;
                srow[j] = kn.dot(0.0f, qi, kj, dh) * scale;
            }
        }
        for (std::size_t i = 0; i < seq; ++i)
            kn.softmaxRow(scores.row(i).data(), seq);
        for (std::size_t i = 0; i < seq; ++i) {
            const float *srow = scores.row(i).data();
            float *crow = ctx.row(i).data() + off;
            for (std::size_t j = 0; j < seq; ++j)
                kn.axpy(srow[j], v.row(j).data() + off, crow, dh);
        }
    });
    return ctx;
}

Tensor
multiHeadAttention(const Tensor &q, const Tensor &k, const Tensor &v,
                   std::size_t num_heads)
{
    return multiHeadAttention(ExecContext::serial(), q, k, v, num_heads);
}

Tensor
encoderForward(const ExecContext &ectx, const EncoderWeights &enc,
               const Tensor &hidden, std::size_t num_heads)
{
    // Spans bracket whole components; they never reorder or touch the
    // arithmetic, so traced and untraced runs are bit-identical.
    Tensor x;
    {
        ScopedSpan span(ectx.obs, "attention");
        Tensor q = linear(ectx, hidden, enc.queryW, enc.queryB);
        Tensor k = linear(ectx, hidden, enc.keyW, enc.keyB);
        Tensor v = linear(ectx, hidden, enc.valueW, enc.valueB);
        Tensor ctx = multiHeadAttention(ectx, q, k, v, num_heads);
        Tensor attn_out = linear(ectx, ctx, enc.attnOutW, enc.attnOutB);
        x = add(hidden, attn_out);
    }
    {
        ScopedSpan span(ectx.obs, "layernorm");
        layerNormInplace(ectx, x, enc.attnLnGamma.flat(),
                         enc.attnLnBeta.flat());
    }

    Tensor y;
    {
        ScopedSpan span(ectx.obs, "ffn");
        // Intermediate component.
        Tensor inter = linear(ectx, x, enc.interW, enc.interB);
        geluInplace(ectx, inter);
        // Output component.
        Tensor out = linear(ectx, inter, enc.outW, enc.outB);
        y = add(x, out);
    }
    {
        ScopedSpan span(ectx.obs, "layernorm");
        layerNormInplace(ectx, y, enc.outLnGamma.flat(),
                         enc.outLnBeta.flat());
    }
    return y;
}

Tensor
encoderForward(const EncoderWeights &enc, const Tensor &hidden,
               std::size_t num_heads)
{
    return encoderForward(ExecContext::serial(), enc, hidden, num_heads);
}

Tensor
encodeSequence(const ExecContext &ctx, const BertModel &model,
               std::span<const std::int32_t> token_ids)
{
    Tensor x;
    {
        ScopedSpan span(ctx.obs, "embed");
        x = embedTokens(ctx, model, token_ids);
    }
    probeActivation(ctx.obs, "embed", x);
    for (std::size_t e = 0; e < model.encoders.size(); ++e) {
        {
            ScopedSpan span(ctx.obs, "layer", e);
            x = encoderForward(ctx, model.encoders[e], x,
                               model.config().numHeads);
        }
        if (probeAttached(ctx.obs))
            probeActivation(ctx.obs,
                            "layer[" + std::to_string(e) + "]", x);
    }
    return x;
}

Tensor
encodeSequence(const BertModel &model,
               std::span<const std::int32_t> token_ids)
{
    return encodeSequence(ExecContext::serial(), model, token_ids);
}

Tensor
pool(const ExecContext &ctx, const BertModel &model, const Tensor &hidden)
{
    fatalIf(hidden.rows() == 0, "pool on empty hidden state");
    Tensor first(1, hidden.cols());
    auto src = hidden.row(0);
    auto dst = first.row(0);
    std::copy(src.begin(), src.end(), dst.begin());
    Tensor pooled = linear(ctx, first, model.poolerW, model.poolerB);
    tanhInplace(ctx, pooled);
    return pooled;
}

Tensor
pool(const BertModel &model, const Tensor &hidden)
{
    return pool(ExecContext::serial(), model, hidden);
}

Tensor
headLogits(const ExecContext &ctx, const BertModel &model,
           const Tensor &pooled)
{
    Tensor logits2d = linear(ctx, pooled, model.headW, model.headB);
    Tensor logits(logits2d.cols());
    auto src = logits2d.row(0);
    std::copy(src.begin(), src.end(), logits.flat().begin());
    return logits;
}

Tensor
headLogits(const BertModel &model, const Tensor &pooled)
{
    return headLogits(ExecContext::serial(), model, pooled);
}

Tensor
spanLogits(const ExecContext &ctx, const BertModel &model,
           const Tensor &hidden)
{
    fatalIf(model.headW.rows() != 2,
            "span head needs a [2, hidden] headW, got ",
            model.headW.rows(), " rows");
    return linear(ctx, hidden, model.headW, model.headB);
}

Tensor
spanLogits(const BertModel &model, const Tensor &hidden)
{
    return spanLogits(ExecContext::serial(), model, hidden);
}

} // namespace gobo
