/**
 * @file
 * Forward-only transformer encoder (the BERT execution engine).
 *
 * Implements Fig. 1a of the paper: per encoder, an Attention component
 * (query/key/value projections, scaled dot-product multi-head
 * attention, output projection, residual + layer norm), an Intermediate
 * component (FFN up-projection with GELU) and an Output component
 * (down-projection, residual + layer norm); an embedding front end and
 * the Pooler after the last encoder. Everything consumes plain FP32
 * tensors, which is what makes decoded GOBO models plug-in compatible.
 *
 * Each stage takes an ExecContext: projections and norms dispatch
 * row-blocked to the backend, and multi-head attention parallelizes
 * over heads (each head owns a disjoint column slice of the context
 * tensor and its own score buffer). The context-free overloads run
 * serially; both backends are bit-identical (see DESIGN.md §7).
 */

#ifndef GOBO_NN_ENCODER_HH
#define GOBO_NN_ENCODER_HH

#include <cstdint>
#include <span>

#include "exec/context.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/**
 * Embedding front end: word embedding + position embedding, then the
 * embedding layer norm. Token ids must be < vocabSize and the sequence
 * no longer than maxPosition.
 */
Tensor embedTokens(const ExecContext &ctx, const BertModel &model,
                   std::span<const std::int32_t> token_ids);
Tensor embedTokens(const BertModel &model,
                   std::span<const std::int32_t> token_ids);

/**
 * Multi-head scaled dot-product attention over pre-projected Q, K, V
 * ([seq, h] each); heads are contiguous column slices of width
 * h / num_heads. Exposed so alternative execution engines (e.g. the
 * compressed-domain QuantizedBertModel) can share the exact attention
 * arithmetic.
 */
Tensor multiHeadAttention(const ExecContext &ctx, const Tensor &q,
                          const Tensor &k, const Tensor &v,
                          std::size_t num_heads);
Tensor multiHeadAttention(const Tensor &q, const Tensor &k,
                          const Tensor &v, std::size_t num_heads);

/**
 * One encoder layer: multi-head self-attention and FFN with residuals
 * and layer norms, as in Fig. 1a.
 */
Tensor encoderForward(const ExecContext &ctx, const EncoderWeights &enc,
                      const Tensor &hidden, std::size_t num_heads);
Tensor encoderForward(const EncoderWeights &enc, const Tensor &hidden,
                      std::size_t num_heads);

/** Run the embedding front end and the whole encoder stack. */
Tensor encodeSequence(const ExecContext &ctx, const BertModel &model,
                      std::span<const std::int32_t> token_ids);
Tensor encodeSequence(const BertModel &model,
                      std::span<const std::int32_t> token_ids);

/** The BERT pooler: first token through a Linear + tanh. Returns [1,h]. */
Tensor pool(const ExecContext &ctx, const BertModel &model,
            const Tensor &hidden);
Tensor pool(const BertModel &model, const Tensor &hidden);

/** Task-head logits over the pooled vector. Returns [outputs]. */
Tensor headLogits(const ExecContext &ctx, const BertModel &model,
                  const Tensor &pooled);
Tensor headLogits(const BertModel &model, const Tensor &pooled);

/**
 * Span-extraction logits (SQuAD-like head): per-token start and end
 * scores. headW must be [2, hidden]; returns [seq, 2].
 */
Tensor spanLogits(const ExecContext &ctx, const BertModel &model,
                  const Tensor &hidden);
Tensor spanLogits(const BertModel &model, const Tensor &hidden);

} // namespace gobo

#endif // GOBO_NN_ENCODER_HH
