/**
 * @file
 * Runtime kernel-tier selection: cpuid probe + GOBO_KERNEL override.
 *
 * The active tier is resolved once, on first use, from the best tier
 * the CPU supports; GOBO_KERNEL=generic|avx2|avx512|native pins it
 * (native is the cpuid choice, i.e. the default — avx512 over avx2
 * over generic). Requesting a tier the CPU or the build cannot run is
 * fatal rather than a silent downgrade — a CI leg that asks for
 * avx512 must bench avx512 or fail loudly — and the error names the
 * feature set the tier actually needs.
 */

#include "kernels/kernels.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace gobo {

// Defined in avx2.cc / avx512.cc: the tier when that file was compiled
// with the matching ISA enabled, nullptr otherwise.
const KernelSet *avx2KernelsBuild();
const KernelSet *avx512KernelsBuild();

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2")
           && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
cpuSupportsAvx512()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f")
           && __builtin_cpu_supports("avx512bw")
           && __builtin_cpu_supports("avx512dq")
           && __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
}

/** VBMI probe for the avx512 tier's in-register decode fast path
 * (queried by avx512.cc at KernelSet construction). */
bool
cpuSupportsAvx512Vbmi()
{
#if defined(__x86_64__) || defined(__i386__)
    return cpuSupportsAvx512()
           && __builtin_cpu_supports("avx512vbmi");
#else
    return false;
#endif
}

const KernelSet *
avx2Kernels()
{
    static const KernelSet *set =
        cpuSupportsAvx2() ? avx2KernelsBuild() : nullptr;
    return set;
}

const KernelSet *
avx512Kernels()
{
    static const KernelSet *set =
        cpuSupportsAvx512() ? avx512KernelsBuild() : nullptr;
    return set;
}

const KernelSet &
kernelsByName(std::string_view name)
{
    if (name == "generic")
        return genericKernels();
    if (name == "avx2") {
        const KernelSet *avx2 = avx2Kernels();
        fatalIf(avx2 == nullptr,
                "kernel tier 'avx2' requested but this ",
                avx2KernelsBuild() == nullptr ? "build" : "CPU",
                " does not support AVX2+FMA");
        return *avx2;
    }
    if (name == "avx512") {
        const KernelSet *avx512 = avx512Kernels();
        fatalIf(avx512 == nullptr,
                "kernel tier 'avx512' requested but this ",
                avx512KernelsBuild() == nullptr ? "build" : "CPU",
                " does not support AVX-512 F+BW+DQ+VL");
        return *avx512;
    }
    if (name == "native") {
        if (const KernelSet *avx512 = avx512Kernels())
            return *avx512;
        if (const KernelSet *avx2 = avx2Kernels())
            return *avx2;
        return genericKernels();
    }
    fatal("unknown kernel tier '", std::string(name),
          "' (expected generic, avx2, avx512, or native)");
}

namespace {

/**
 * The startup choice: GOBO_KERNEL if set, otherwise the best tier
 * cpuid reports. Stored as an atomic pointer so setActiveKernels()
 * from tests/CLI flags is at least well-defined, even though swapping
 * tiers mid-forward is not supported.
 */
std::atomic<const KernelSet *> &
activeSlot()
{
    static std::atomic<const KernelSet *> slot = [] {
        const char *env = std::getenv("GOBO_KERNEL");
        return env && *env ? &kernelsByName(env)
                           : &kernelsByName("native");
    }();
    return slot;
}

} // namespace

const KernelSet &
activeKernels()
{
    return *activeSlot().load(std::memory_order_acquire);
}

void
setActiveKernels(const KernelSet &kernels)
{
    activeSlot().store(&kernels, std::memory_order_release);
}

} // namespace gobo
