/**
 * @file
 * AVX-512 kernel tier (F+BW+DQ+VL, optional VBMI decode fast path).
 *
 * Dense kernels run 16-wide with masked tails (`__mmask16` loads keep
 * partial vectors exact: inactive lanes are never read, and masked
 * FMA lanes contribute an exact 0). Like the AVX2 tier they
 * reassociate float reductions, so callers get tolerance-level
 * equality with NaN/Inf still propagating. The row ops reuse the
 * Cephes-style exp/tanh polynomials of the AVX2 tier, widened to 512
 * bits with mask-register blends for the special cases.
 *
 * The bucket-tile kernels run 16 sequence lanes per tile
 * (KernelSet::seqTile == 16) and keep the scalar loop's per-lane
 * double arithmetic and order exactly (convert-then-add in phase 1,
 * multiply-then-add — deliberately NOT fmadd — in phases 2/3), so the
 * quantized FC output is bit-identical to the generic tier. Widening
 * the tile adds lanes, never reassociates within one.
 *
 * Packed-row decode: when the CPU also has AVX-512 VBMI, groups of 64
 * B-bit indexes (B <= 6) decode with three instructions — vpermb
 * gathers the 8B payload bytes so qword lane l holds the bytes of its
 * 8 indexes, vpmultishiftqb extracts all 64 fields at per-lane bit
 * offsets {0, B, .., 7B}, and one AND masks to B bits. That replaces
 * the scalar LUT walk (one table row per byte) with an in-register
 * expansion at 64 indexes per iteration. Decode output is exact
 * bytes, so the fast path is freely interchangeable with the generic
 * decoder — the tier picks it at runtime via cpuid and falls back per
 * call for B > 6. The VBMI functions carry a target attribute instead
 * of TU-wide -mavx512vbmi so the rest of this file stays runnable on
 * F+BW+DQ+VL-only parts.
 *
 * This file is compiled with -mavx512f -mavx512bw -mavx512dq
 * -mavx512vl on x86-64 builds only; elsewhere it degrades to a stub
 * that reports the tier as unavailable.
 */

#include "kernels/kernels.hh"

#if defined(__AVX512F__) && defined(__AVX512BW__) \
    && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <cmath>
#include <limits>

#if defined(__GNUC__) || defined(__clang__)
#define GOBO_VBMI_DECODE 1
#define GOBO_VBMI_TARGET __attribute__((target("avx512vbmi")))
#endif

namespace gobo {

// The runtime probe lives in dispatch.cc (plain -O2 TU).
bool cpuSupportsAvx512Vbmi();

namespace {

constexpr std::size_t kTile = 16;
static_assert(kTile <= kMaxSeqTile,
              "avx512 tile width exceeds kMaxSeqTile");

/**
 * Vector expf, the AVX2 tier's Cephes polynomial widened to 16 lanes.
 * Special cases via mask blends: NaN in -> the same NaN out,
 * x > hi -> +Inf, x < lo -> 0.
 */
inline __m512
exp512(__m512 x0)
{
    const __m512 hi = _mm512_set1_ps(88.3762626647950f);
    const __m512 lo = _mm512_set1_ps(-88.3762626647949f);
    // NaN note: max/min return the second operand on unordered
    // compares, so a NaN lane comes out clamped-finite here and is
    // blended back to NaN below.
    __m512 x = _mm512_min_ps(_mm512_max_ps(x0, lo), hi);

    const __m512 log2e = _mm512_set1_ps(1.44269504088896341f);
    __m512 fx = _mm512_roundscale_ps(
        _mm512_fmadd_ps(x, log2e, _mm512_set1_ps(0.5f)),
        _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
    // Cody-Waite: subtract fx * ln2 in two pieces to keep precision.
    x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(0.693359375f), x);
    x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(-2.12194440e-4f), x);

    __m512 z = _mm512_mul_ps(x, x);
    __m512 y = _mm512_set1_ps(1.9875691500e-4f);
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.3981999507e-3f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(8.3334519073e-3f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(4.1665795894e-2f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.6666665459e-1f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(5.0000001201e-1f));
    y = _mm512_fmadd_ps(y, z, _mm512_add_ps(x, _mm512_set1_ps(1.0f)));

    // Scale by 2^fx through the exponent bits. fx is integral and in
    // [-127, 128] after the clamp, so the shift cannot wrap.
    __m512i n = _mm512_cvtps_epi32(fx);
    n = _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(127)),
                          23);
    y = _mm512_mul_ps(y, _mm512_castsi512_ps(n));

    y = _mm512_mask_blend_ps(
        _mm512_cmp_ps_mask(x0, x0, _CMP_UNORD_Q), y, x0);
    y = _mm512_mask_blend_ps(
        _mm512_cmp_ps_mask(x0, hi, _CMP_GT_OQ), y,
        _mm512_set1_ps(std::numeric_limits<float>::infinity()));
    y = _mm512_mask_blend_ps(
        _mm512_cmp_ps_mask(x0, lo, _CMP_LT_OQ), y,
        _mm512_setzero_ps());
    return y;
}

/**
 * Vector tanh via exp(2x): (e-1)/(e+1), saturated to ±1 for |x| >= 10
 * (tanh(10) rounds to 1.0f) — which also catches ±Inf before the
 * Inf/Inf NaN. NaN falls through the formula and stays NaN.
 */
inline __m512
tanh512(__m512 x)
{
    const __m512 one = _mm512_set1_ps(1.0f);
    __m512 e = exp512(_mm512_add_ps(x, x));
    __m512 t = _mm512_div_ps(_mm512_sub_ps(e, one),
                             _mm512_add_ps(e, one));
    __mmask16 sat = _mm512_cmp_ps_mask(
        _mm512_abs_ps(x), _mm512_set1_ps(10.0f), _CMP_GE_OQ);
    // Saturated sign: copy x's sign bit onto 1.0.
    __m512 signed_one = _mm512_or_ps(
        one, _mm512_and_ps(x, _mm512_set1_ps(-0.0f)));
    return _mm512_mask_blend_ps(sat, t, signed_one);
}

float
dotAvx512(float init, const float *a, const float *b, std::size_t n)
{
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    __m512 acc2 = _mm512_setzero_ps();
    __m512 acc3 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i),
                               _mm512_loadu_ps(b + i), acc0);
        acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                               _mm512_loadu_ps(b + i + 16), acc1);
        acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 32),
                               _mm512_loadu_ps(b + i + 32), acc2);
        acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 48),
                               _mm512_loadu_ps(b + i + 48), acc3);
    }
    for (; i + 16 <= n; i += 16)
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i),
                               _mm512_loadu_ps(b + i), acc0);
    if (i < n) {
        // Masked tail: inactive lanes load as exact 0 and the FMA
        // contributes 0, so the tail never reads past n.
        __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                               _mm512_maskz_loadu_ps(m, b + i), acc0);
    }
    acc0 = _mm512_add_ps(_mm512_add_ps(acc0, acc1),
                         _mm512_add_ps(acc2, acc3));
    return init + _mm512_reduce_add_ps(acc0);
}

void
axpyAvx512(float a, const float *x, float *y, std::size_t n)
{
    const __m512 va = _mm512_set1_ps(a);
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16)
        _mm512_storeu_ps(y + j,
                         _mm512_fmadd_ps(va, _mm512_loadu_ps(x + j),
                                         _mm512_loadu_ps(y + j)));
    if (j < n) {
        __mmask16 m =
            static_cast<__mmask16>((1u << (n - j)) - 1u);
        __m512 r = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, x + j),
                                   _mm512_maskz_loadu_ps(m, y + j));
        _mm512_mask_storeu_ps(y + j, m, r);
    }
}

void
softmaxRowAvx512(float *row, std::size_t n)
{
    constexpr float ninf = -std::numeric_limits<float>::infinity();
    const __m512 ninfv = _mm512_set1_ps(ninf);
    __m512 mv = ninfv;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        mv = _mm512_max_ps(mv, _mm512_loadu_ps(row + i));
    if (i < n) {
        // Masked max: inactive lanes stay -Inf, the identity.
        __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        mv = _mm512_max_ps(mv,
                           _mm512_mask_loadu_ps(ninfv, m, row + i));
    }
    float mx = _mm512_reduce_max_ps(mv);
    // A NaN lane slips past max (unordered compares are false both
    // ways), but exp(NaN - mx) poisons the sum below, so the whole row
    // still comes out NaN exactly like the scalar path.

    const __m512 mxv = _mm512_set1_ps(mx);
    __m512 sv = _mm512_setzero_ps();
    for (i = 0; i + 16 <= n; i += 16) {
        __m512 e =
            exp512(_mm512_sub_ps(_mm512_loadu_ps(row + i), mxv));
        _mm512_storeu_ps(row + i, e);
        sv = _mm512_add_ps(sv, e);
    }
    float sum = _mm512_reduce_add_ps(sv);
    for (; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
    }

    const __m512 sumv = _mm512_set1_ps(sum);
    for (i = 0; i + 16 <= n; i += 16)
        _mm512_storeu_ps(
            row + i, _mm512_div_ps(_mm512_loadu_ps(row + i), sumv));
    for (; i < n; ++i)
        row[i] /= sum;
}

void
layerNormRowAvx512(float *row, std::size_t n, const float *gamma,
                   const float *beta, float eps)
{
    __m512d s0 = _mm512_setzero_pd();
    __m512d s1 = _mm512_setzero_pd();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 v = _mm512_loadu_ps(row + i);
        s0 = _mm512_add_pd(
            s0, _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
        s1 = _mm512_add_pd(
            s1, _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1)));
    }
    double mu = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
    for (; i < n; ++i)
        mu += row[i];
    mu /= static_cast<double>(n);

    const __m512d muv = _mm512_set1_pd(mu);
    s0 = _mm512_setzero_pd();
    s1 = _mm512_setzero_pd();
    for (i = 0; i + 16 <= n; i += 16) {
        __m512 v = _mm512_loadu_ps(row + i);
        __m512d d0 = _mm512_sub_pd(
            _mm512_cvtps_pd(_mm512_castps512_ps256(v)), muv);
        __m512d d1 = _mm512_sub_pd(
            _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1)), muv);
        s0 = _mm512_fmadd_pd(d0, d0, s0);
        s1 = _mm512_fmadd_pd(d1, d1, s1);
    }
    double var = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
    for (; i < n; ++i) {
        double d = row[i] - mu;
        var += d * d;
    }
    var /= static_cast<double>(n);
    auto inv = static_cast<float>(1.0 / std::sqrt(var + eps));

    const __m512 muf = _mm512_set1_ps(static_cast<float>(mu));
    const __m512 invv = _mm512_set1_ps(inv);
    i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 v = _mm512_sub_ps(_mm512_loadu_ps(row + i), muf);
        v = _mm512_mul_ps(_mm512_mul_ps(v, invv),
                          _mm512_loadu_ps(gamma + i));
        _mm512_storeu_ps(row + i,
                         _mm512_add_ps(v, _mm512_loadu_ps(beta + i)));
    }
    if (i < n) {
        __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        __m512 v = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, row + i),
                                 muf);
        v = _mm512_mul_ps(_mm512_mul_ps(v, invv),
                          _mm512_maskz_loadu_ps(m, gamma + i));
        v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(m, beta + i));
        _mm512_mask_storeu_ps(row + i, m, v);
    }
}

void
geluRowAvx512(float *row, std::size_t n)
{
    const __m512 k = _mm512_set1_ps(0.7978845608028654f); // sqrt(2/pi)
    const __m512 c = _mm512_set1_ps(0.044715f);
    const __m512 half = _mm512_set1_ps(0.5f);
    const __m512 one = _mm512_set1_ps(1.0f);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 v = _mm512_loadu_ps(row + i);
        __m512 v3 = _mm512_mul_ps(_mm512_mul_ps(v, v), v);
        __m512 inner =
            _mm512_mul_ps(k, _mm512_add_ps(v, _mm512_mul_ps(c, v3)));
        __m512 t = _mm512_add_ps(one, tanh512(inner));
        _mm512_storeu_ps(row + i,
                         _mm512_mul_ps(_mm512_mul_ps(half, v), t));
    }
    if (i < n) {
        // Lanes are independent, so the masked tail computes the same
        // value per live lane as the full-width body.
        __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        __m512 v = _mm512_maskz_loadu_ps(m, row + i);
        __m512 v3 = _mm512_mul_ps(_mm512_mul_ps(v, v), v);
        __m512 inner =
            _mm512_mul_ps(k, _mm512_add_ps(v, _mm512_mul_ps(c, v3)));
        __m512 t = _mm512_add_ps(one, tanh512(inner));
        _mm512_mask_storeu_ps(
            row + i, m, _mm512_mul_ps(_mm512_mul_ps(half, v), t));
    }
}

void
tanhRowAvx512(float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(row + i,
                         tanh512(_mm512_loadu_ps(row + i)));
    if (i < n) {
        __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_ps(
            row + i, m, tanh512(_mm512_maskz_loadu_ps(m, row + i)));
    }
}

void
bucketAccTileAvx512(const std::uint8_t *irow, std::size_t in,
                    const float *xT, double *bucket, std::size_t k)
{
    const __m512d zero = _mm512_setzero_pd();
    for (std::size_t c = 0; c < k; ++c) {
        _mm512_storeu_pd(bucket + c * kTile, zero);
        _mm512_storeu_pd(bucket + c * kTile + 8, zero);
    }
    // Vertical adds only: lane l accumulates its activations in
    // ascending-i order, exactly the scalar reduction, in double.
    for (std::size_t i = 0; i < in; ++i) {
        double *dst = bucket + std::size_t{irow[i]} * kTile;
        __m512 x = _mm512_loadu_ps(xT + i * kTile);
        __m512d lo = _mm512_cvtps_pd(_mm512_castps512_ps256(x));
        __m512d hi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(x, 1));
        _mm512_storeu_pd(dst,
                         _mm512_add_pd(_mm512_loadu_pd(dst), lo));
        _mm512_storeu_pd(dst + 8,
                         _mm512_add_pd(_mm512_loadu_pd(dst + 8), hi));
    }
}

void
centroidDotTileAvx512(const float *centroids, std::size_t k,
                      const double *bucket, double bias, double *acc)
{
    __m512d a0 = _mm512_set1_pd(bias);
    __m512d a1 = a0;
    for (std::size_t c = 0; c < k; ++c) {
        const __m512d cv =
            _mm512_set1_pd(static_cast<double>(centroids[c]));
        // mul then add, not fmadd: the scalar loop rounds the product
        // before accumulating, and this tier promises bit-identity.
        a0 = _mm512_add_pd(
            a0,
            _mm512_mul_pd(cv, _mm512_loadu_pd(bucket + c * kTile)));
        a1 = _mm512_add_pd(
            a1, _mm512_mul_pd(
                    cv, _mm512_loadu_pd(bucket + c * kTile + 8)));
    }
    _mm512_storeu_pd(acc, a0);
    _mm512_storeu_pd(acc + 8, a1);
}

void
outlierTileAvx512(const OutlierTerm *terms, std::size_t count,
                  const float *xT, double *acc)
{
    __m512d a0 = _mm512_loadu_pd(acc);
    __m512d a1 = _mm512_loadu_pd(acc + 8);
    for (std::size_t t = 0; t < count; ++t) {
        const __m512d cv =
            _mm512_set1_pd(static_cast<double>(terms[t].correction));
        __m512 x = _mm512_loadu_ps(
            xT + std::size_t{terms[t].column} * kTile);
        a0 = _mm512_add_pd(
            a0, _mm512_mul_pd(
                    cv, _mm512_cvtps_pd(_mm512_castps512_ps256(x))));
        a1 = _mm512_add_pd(
            a1, _mm512_mul_pd(
                    cv, _mm512_cvtps_pd(_mm512_extractf32x8_ps(x, 1))));
    }
    _mm512_storeu_pd(acc, a0);
    _mm512_storeu_pd(acc + 8, a1);
}

#ifdef GOBO_VBMI_DECODE

/**
 * VBMI bulk decode: 64 indexes per iteration for B <= 6.
 *
 * One 64-byte window holds at least the 8B payload bytes of the next
 * 64 indexes (8B <= 48). vpermb places payload bytes q*B..q*B+7 in
 * qword lane q, so lane q spans the 64 packed bits that contain its 8
 * indexes; vpmultishiftqb then extracts an 8-bit field per output
 * byte at bit offsets {0, B, .., 7B} within each qword (7B + 8 <= 50,
 * so no field wraps), and the AND keeps the low B bits. The head
 * (unaligned bit offset) and tail (fewer than 64 indexes, or a window
 * that would read past byteLen) fall back to the scalar reference.
 */
GOBO_VBMI_TARGET
void
decodePackedRowVbmi(const std::uint8_t *bytes, std::size_t byteLen,
                    std::size_t bitOffset, std::uint32_t bits,
                    std::size_t n, std::uint8_t *out)
{
    if (bits > 6) {
        decodePackedRowGeneric(bytes, byteLen, bitOffset, bits, n,
                               out);
        return;
    }
    const std::uint32_t b = bits;
    std::size_t bit = bitOffset;
    std::size_t i = 0;
    // Byte-align the stream position: 8 indexes advance 8*B bits, a
    // whole number of bytes, so at most 7 scalar steps are needed.
    const std::uint32_t mask = (1u << b) - 1u;
    while (i < n && bit % 8 != 0) {
        std::size_t byte = bit / 8;
        auto shift = static_cast<unsigned>(bit % 8);
        std::uint32_t window = bytes[byte];
        if (shift + b > 8)
            window |= static_cast<std::uint32_t>(bytes[byte + 1]) << 8;
        out[i] = static_cast<std::uint8_t>((window >> shift) & mask);
        ++i;
        bit += b;
    }

    alignas(64) std::uint8_t permBytes[64];
    alignas(64) std::uint8_t shiftBytes[64];
    for (std::uint32_t q = 0; q < 8; ++q)
        for (std::uint32_t p = 0; p < 8; ++p) {
            permBytes[q * 8 + p] =
                static_cast<std::uint8_t>(q * b + p);
            shiftBytes[q * 8 + p] =
                static_cast<std::uint8_t>(p * b);
        }
    const __m512i perm = _mm512_load_si512(permBytes);
    const __m512i shifts = _mm512_load_si512(shiftBytes);
    const __m512i maskv = _mm512_set1_epi8(static_cast<char>(mask));

    std::size_t byte = bit / 8;
    // The full 64-byte load must stay inside the stream; the last few
    // groups near the end of the buffer take the scalar tail instead.
    while (n - i >= 64 && byte + 64 <= byteLen) {
        __m512i win = _mm512_loadu_si512(bytes + byte);
        __m512i gathered = _mm512_permutexvar_epi8(perm, win);
        __m512i fields =
            _mm512_multishift_epi64_epi8(shifts, gathered);
        _mm512_storeu_si512(out + i,
                            _mm512_and_si512(fields, maskv));
        i += 64;
        bit += std::size_t{64} * b;
        byte += std::size_t{8} * b;
    }
    if (i < n)
        decodePackedRowGeneric(bytes, byteLen, bit, b, n - i, out + i);
}

#endif // GOBO_VBMI_DECODE

} // namespace

const KernelSet *
avx512KernelsBuild()
{
    static const KernelSet set = [] {
        KernelSet s{};
        s.name = "avx512";
        s.reassociates = true;
        s.seqTile = kTile;
        s.dot = dotAvx512;
        s.axpy = axpyAvx512;
        s.softmaxRow = softmaxRowAvx512;
        s.layerNormRow = layerNormRowAvx512;
        s.geluRow = geluRowAvx512;
        s.tanhRow = tanhRowAvx512;
        s.bucketAccTile = bucketAccTileAvx512;
        s.centroidDotTile = centroidDotTileAvx512;
        s.outlierTile = outlierTileAvx512;
        s.decodePackedRow = decodePackedRowGeneric;
#ifdef GOBO_VBMI_DECODE
        if (cpuSupportsAvx512Vbmi())
            s.decodePackedRow = decodePackedRowVbmi;
#endif
        return s;
    }();
    return &set;
}

} // namespace gobo

#else // !(__AVX512F__ && __AVX512BW__ && __AVX512DQ__ && __AVX512VL__)

namespace gobo {

/** Build-time stub: this target was compiled without AVX-512. */
const KernelSet *
avx512KernelsBuild()
{
    return nullptr;
}

} // namespace gobo

#endif
