/**
 * @file
 * SIMD kernel layer with runtime CPU dispatch.
 *
 * Every hot inner loop in the repo — the dense dot/axpy kernels under
 * matmul/linear/attention, the row ops (softmax, layernorm, GELU,
 * tanh), the sequence-tiled bucket kernel that executes the GOBO
 * compressed format, and the packed-index row decoder — is reached
 * through a KernelSet of function pointers. Three tiers exist:
 *
 *   generic  scalar loops with exactly the pre-SIMD reduction order;
 *            bit-identical to the historical outputs by construction.
 *   avx2     AVX2+FMA vectorized kernels. The dense and row kernels
 *            reassociate float reductions (and fuse multiply-adds), so
 *            they match generic only to tolerance; the quantized
 *            bucket-tile kernels keep the per-lane double arithmetic
 *            and order of the scalar loop and stay bit-identical.
 *   avx512   AVX-512 F+BW+DQ+VL kernels: 16-wide dense/row kernels
 *            with masked tails, 16-lane bucket-tile kernels, and —
 *            when the CPU also has VBMI — an in-register packed-row
 *            decoder (vpermb + vpmultishiftqb) for B <= 6.
 *
 * The active tier is chosen once at startup: cpuid picks the best
 * supported tier, and the GOBO_KERNEL environment variable
 * (generic|avx2|avx512|native) overrides it. ExecContext carries an
 * optional per-context override for tests and tools; a null pointer
 * means the process-wide active tier.
 *
 * Determinism contract (DESIGN.md §11): Serial/Parallel backends and
 * Packed/Unpacked formats are bit-identical *within* a tier; across
 * tiers, quantized FC outputs are bit-identical while dense ops carry
 * tolerance-level differences. The sequence tile width is a per-tier
 * property (KernelSet::seqTile) — lanes are independent sequence
 * positions, so widening the tile cannot change per-lane arithmetic.
 * Row decode produces exact bytes (a pure function of the packed
 * stream), so every tier's decoder is interchangeable. NaN and Inf
 * propagate through every kernel in every tier.
 */

#ifndef GOBO_KERNELS_KERNELS_HH
#define GOBO_KERNELS_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gobo {

/**
 * Default lane count of the sequence-tiled bucket kernels, and the
 * width of the generic and avx2 tiers. The *active* width is the
 * per-tier KernelSet::seqTile (16 for avx512); tile buffers
 * (transposed activations, buckets, accumulators) are allocated and
 * strided at the executing tier's width. kMaxSeqTile bounds every
 * tier's width so stack accumulators can be sized statically.
 */
inline constexpr std::size_t kSeqTile = 8;
inline constexpr std::size_t kMaxSeqTile = 16;

/**
 * One outlier's contribution to a quantized FC row: the weight sits at
 * `column`, and `correction` is w - centroid[assigned index] (the index
 * under an outlier still feeds its centroid through the bucket sums).
 */
struct OutlierTerm
{
    std::uint32_t column;
    float correction;
};

/**
 * One dispatchable kernel tier. All pointers are non-null in every
 * registered tier. Buffer contracts:
 *
 *   - xT is a transposed activation tile: seqTile floats per input
 *     feature, laid out [i][lane], zero-padded in unused lanes.
 *   - bucket is k * seqTile doubles, [centroid][lane].
 *   - acc is seqTile doubles, one per lane.
 */
struct KernelSet
{
    /** Tier name: "generic", "avx2", or "avx512". */
    const char *name;
    /**
     * True when the dense/row kernels reassociate float math (SIMD
     * tiers); false when every kernel keeps the exact scalar order.
     * The bucket-tile kernels are bit-identical across tiers either
     * way.
     */
    bool reassociates;
    /**
     * Sequence lanes per bucket tile for this tier (<= kMaxSeqTile).
     * Tiling, scratch strides, and the 2-D partitioner all follow this
     * width; the tile kernels below hard-code it internally.
     */
    std::size_t seqTile;

    /** Fold-left dot product: init + sum_i a[i]*b[i] in index order. */
    float (*dot)(float init, const float *a, const float *b,
                 std::size_t n);
    /** y[j] += a * x[j] for j in [0, n). */
    void (*axpy)(float a, const float *x, float *y, std::size_t n);

    /** In-place numerically-stable softmax over one row. */
    void (*softmaxRow)(float *row, std::size_t n);
    /** In-place layer norm over one row with scale/shift. */
    void (*layerNormRow)(float *row, std::size_t n, const float *gamma,
                         const float *beta, float eps);
    /** In-place tanh-approximation GELU over one row. */
    void (*geluRow)(float *row, std::size_t n);
    /** In-place tanh over one row. */
    void (*tanhRow)(float *row, std::size_t n);

    /**
     * Phase 1 of the compressed-domain FC: overwrite bucket with the
     * per-centroid activation sums of one weight row against one
     * activation tile. Per lane, bucket[irow[i]] accumulates xT lanes
     * in ascending-i order — the scalar order, in double.
     */
    void (*bucketAccTile)(const std::uint8_t *irow, std::size_t in,
                          const float *xT, double *bucket,
                          std::size_t k);
    /**
     * Phase 2: acc[l] = bias + sum_c centroids[c] * bucket[c][l] in
     * ascending-c order (double multiply then add, never fused).
     */
    void (*centroidDotTile)(const float *centroids, std::size_t k,
                            const double *bucket, double bias,
                            double *acc);
    /**
     * Phase 3: acc[l] += correction * xT[column][l] for each outlier
     * term in order (double multiply then add, never fused).
     */
    void (*outlierTile)(const OutlierTerm *terms, std::size_t count,
                        const float *xT, double *acc);

    /**
     * Expand `n` consecutive `bits`-wide indexes, starting `bitOffset`
     * bits into the packed stream `bytes` (of `byteLen` total bytes),
     * into one byte each. Decode is integer-exact, so tiers may
     * restructure it freely — the output bytes are identical across
     * tiers and the decoded-row cache never keys on the tier.
     */
    void (*decodePackedRow)(const std::uint8_t *bytes,
                            std::size_t byteLen, std::size_t bitOffset,
                            std::uint32_t bits, std::size_t n,
                            std::uint8_t *out);
};

/** The scalar reference tier (always available). */
const KernelSet &genericKernels();

/**
 * The AVX2+FMA tier, or nullptr when the build or the CPU does not
 * support it.
 */
const KernelSet *avx2Kernels();

/**
 * The AVX-512 tier (F+BW+DQ+VL, with a VBMI fast-path decoder picked
 * at runtime), or nullptr when the build or the CPU does not support
 * it.
 */
const KernelSet *avx512Kernels();

/** True when the running CPU exposes AVX2 and FMA. */
bool cpuSupportsAvx2();

/** True when the running CPU exposes AVX-512 F, BW, DQ, and VL. */
bool cpuSupportsAvx512();

/**
 * The reference scalar row decoder (byte-LUT for B dividing 8, 24-bit
 * groups for B=3, two-byte windows otherwise). Every tier without a
 * native decoder points at this; exposed for tests.
 */
void decodePackedRowGeneric(const std::uint8_t *bytes,
                            std::size_t byteLen, std::size_t bitOffset,
                            std::uint32_t bits, std::size_t n,
                            std::uint8_t *out);

/**
 * The process-wide active tier: the best tier the CPU supports, unless
 * the GOBO_KERNEL environment variable (generic|avx2|avx512|native)
 * says otherwise. Resolved once on first call; fatal when GOBO_KERNEL
 * names an unsupported or unknown tier.
 */
const KernelSet &activeKernels();

/**
 * Override the process-wide active tier (tests and CLI flags). Not
 * thread-safe against concurrent forwards; call before compute starts.
 */
void setActiveKernels(const KernelSet &kernels);

/** Look up a tier by name ("generic", "avx2", "avx512", "native");
 * fatal on an unknown name or a tier the CPU cannot run. The error
 * names the feature set the tier actually needs. */
const KernelSet &kernelsByName(std::string_view name);

/** Resolve an ExecContext-style override: null means the active tier. */
inline const KernelSet &
resolveKernels(const KernelSet *kernels)
{
    return kernels ? *kernels : activeKernels();
}

} // namespace gobo

#endif // GOBO_KERNELS_KERNELS_HH
