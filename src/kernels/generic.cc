/**
 * @file
 * Generic kernel tier: portable scalar loops.
 *
 * These bodies are the pre-SIMD inner loops of tensor/ops.cc and
 * core/qexec.cc, lifted verbatim. They are the reference every other
 * tier is validated against, and the repo's historical outputs are
 * bit-identical to them — do not "optimize" a reduction order here.
 */

#include "kernels/kernels.hh"

#include <algorithm>
#include <cmath>

namespace gobo {

namespace {

float
dotGeneric(float init, const float *a, const float *b, std::size_t n)
{
    float acc = init;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
axpyGeneric(float a, const float *x, float *y, std::size_t n)
{
    // No skip on a == 0: 0 * Inf and 0 * NaN must reach the
    // accumulator (IEEE), or the result silently diverges from any
    // reference dense matmul.
    for (std::size_t j = 0; j < n; ++j)
        y[j] += a * x[j];
}

void
softmaxRowGeneric(float *row, std::size_t n)
{
    float mx = *std::max_element(row, row + n);
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        row[i] /= sum;
}

void
layerNormRowGeneric(float *row, std::size_t n, const float *gamma,
                    const float *beta, float eps)
{
    double mu = 0.0;
    for (std::size_t c = 0; c < n; ++c)
        mu += row[c];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        double d = row[c] - mu;
        var += d * d;
    }
    var /= static_cast<double>(n);
    auto inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    for (std::size_t c = 0; c < n; ++c)
        row[c] = (row[c] - static_cast<float>(mu)) * inv * gamma[c]
                 + beta[c];
}

void
geluRowGeneric(float *row, std::size_t n)
{
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (std::size_t i = 0; i < n; ++i) {
        float v = row[i];
        float inner = k * (v + 0.044715f * v * v * v);
        row[i] = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
tanhRowGeneric(float *row, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        row[i] = std::tanh(row[i]);
}

void
bucketAccTileGeneric(const std::uint8_t *irow, std::size_t in,
                     const float *xT, double *bucket, std::size_t k)
{
    std::fill(bucket, bucket + k * kSeqTile, 0.0);
    for (std::size_t i = 0; i < in; ++i) {
        double *dst = bucket + std::size_t{irow[i]} * kSeqTile;
        const float *src = xT + i * kSeqTile;
        for (std::size_t l = 0; l < kSeqTile; ++l)
            dst[l] += src[l];
    }
}

void
centroidDotTileGeneric(const float *centroids, std::size_t k,
                       const double *bucket, double bias, double *acc)
{
    for (std::size_t l = 0; l < kSeqTile; ++l)
        acc[l] = bias;
    for (std::size_t c = 0; c < k; ++c) {
        auto cv = static_cast<double>(centroids[c]);
        const double *brow = bucket + c * kSeqTile;
        for (std::size_t l = 0; l < kSeqTile; ++l)
            acc[l] += cv * brow[l];
    }
}

void
outlierTileGeneric(const OutlierTerm *terms, std::size_t count,
                   const float *xT, double *acc)
{
    for (std::size_t t = 0; t < count; ++t) {
        auto cv = static_cast<double>(terms[t].correction);
        const float *src = xT + std::size_t{terms[t].column} * kSeqTile;
        for (std::size_t l = 0; l < kSeqTile; ++l)
            acc[l] += cv * src[l];
    }
}

} // namespace

const KernelSet &
genericKernels()
{
    static const KernelSet set = {
        "generic",
        /*reassociates=*/false,
        dotGeneric,
        axpyGeneric,
        softmaxRowGeneric,
        layerNormRowGeneric,
        geluRowGeneric,
        tanhRowGeneric,
        bucketAccTileGeneric,
        centroidDotTileGeneric,
        outlierTileGeneric,
    };
    return set;
}

} // namespace gobo
