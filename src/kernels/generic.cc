/**
 * @file
 * Generic kernel tier: portable scalar loops.
 *
 * These bodies are the pre-SIMD inner loops of tensor/ops.cc and
 * core/qexec.cc, lifted verbatim. They are the reference every other
 * tier is validated against, and the repo's historical outputs are
 * bit-identical to them — do not "optimize" a reduction order here.
 */

#include "kernels/kernels.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace gobo {

namespace {

/**
 * Byte-decode tables for B dividing 8: row v of table B holds the
 * 8/B indexes packed in byte v. Built once per process (the tables
 * are a pure function of B), shared by every layer and tier.
 */
const std::uint8_t *
byteDecodeLut(std::uint32_t bits)
{
    static const auto tables = [] {
        std::array<std::vector<std::uint8_t>, 9> t;
        for (std::uint32_t b : {1u, 2u, 4u, 8u}) {
            std::uint32_t per = 8 / b;
            std::uint32_t mask = (1u << b) - 1u;
            t[b].resize(std::size_t{256} * per);
            for (std::uint32_t v = 0; v < 256; ++v)
                for (std::uint32_t j = 0; j < per; ++j)
                    t[b][v * per + j] =
                        static_cast<std::uint8_t>((v >> (j * b)) & mask);
        }
        return t;
    }();
    return tables[bits].data();
}

float
dotGeneric(float init, const float *a, const float *b, std::size_t n)
{
    float acc = init;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
axpyGeneric(float a, const float *x, float *y, std::size_t n)
{
    // No skip on a == 0: 0 * Inf and 0 * NaN must reach the
    // accumulator (IEEE), or the result silently diverges from any
    // reference dense matmul.
    for (std::size_t j = 0; j < n; ++j)
        y[j] += a * x[j];
}

void
softmaxRowGeneric(float *row, std::size_t n)
{
    float mx = *std::max_element(row, row + n);
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        row[i] /= sum;
}

void
layerNormRowGeneric(float *row, std::size_t n, const float *gamma,
                    const float *beta, float eps)
{
    double mu = 0.0;
    for (std::size_t c = 0; c < n; ++c)
        mu += row[c];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        double d = row[c] - mu;
        var += d * d;
    }
    var /= static_cast<double>(n);
    auto inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    for (std::size_t c = 0; c < n; ++c)
        row[c] = (row[c] - static_cast<float>(mu)) * inv * gamma[c]
                 + beta[c];
}

void
geluRowGeneric(float *row, std::size_t n)
{
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (std::size_t i = 0; i < n; ++i) {
        float v = row[i];
        float inner = k * (v + 0.044715f * v * v * v);
        row[i] = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
tanhRowGeneric(float *row, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        row[i] = std::tanh(row[i]);
}

void
bucketAccTileGeneric(const std::uint8_t *irow, std::size_t in,
                     const float *xT, double *bucket, std::size_t k)
{
    std::fill(bucket, bucket + k * kSeqTile, 0.0);
    for (std::size_t i = 0; i < in; ++i) {
        double *dst = bucket + std::size_t{irow[i]} * kSeqTile;
        const float *src = xT + i * kSeqTile;
        for (std::size_t l = 0; l < kSeqTile; ++l)
            dst[l] += src[l];
    }
}

void
centroidDotTileGeneric(const float *centroids, std::size_t k,
                       const double *bucket, double bias, double *acc)
{
    for (std::size_t l = 0; l < kSeqTile; ++l)
        acc[l] = bias;
    for (std::size_t c = 0; c < k; ++c) {
        auto cv = static_cast<double>(centroids[c]);
        const double *brow = bucket + c * kSeqTile;
        for (std::size_t l = 0; l < kSeqTile; ++l)
            acc[l] += cv * brow[l];
    }
}

void
outlierTileGeneric(const OutlierTerm *terms, std::size_t count,
                   const float *xT, double *acc)
{
    for (std::size_t t = 0; t < count; ++t) {
        auto cv = static_cast<double>(terms[t].correction);
        const float *src = xT + std::size_t{terms[t].column} * kSeqTile;
        for (std::size_t l = 0; l < kSeqTile; ++l)
            acc[l] += cv * src[l];
    }
}

} // namespace

void
decodePackedRowGeneric(const std::uint8_t *bytes, std::size_t byteLen,
                       std::size_t bitOffset, std::uint32_t bits,
                       std::size_t n, std::uint8_t *out)
{
    (void)byteLen; // the scalar paths read only the bytes they decode.
    const std::uint32_t b = bits;
    const std::uint32_t mask = (1u << b) - 1u;
    std::size_t bit = bitOffset;
    std::size_t i = 0;

    // Scalar fallback: one index through a two-byte window. Also
    // decodes the unaligned head and the tail around the bulk paths.
    auto scalar = [&](std::size_t upto) {
        for (; i < upto; ++i, bit += b) {
            std::size_t byte = bit / 8;
            auto shift = static_cast<unsigned>(bit % 8);
            std::uint32_t window = bytes[byte];
            if (shift + b > 8)
                window |= static_cast<std::uint32_t>(bytes[byte + 1])
                          << 8;
            out[i] = static_cast<std::uint8_t>((window >> shift) & mask);
        }
    };

    if (8 % b == 0) {
        // B divides 8: align to a byte, then one LUT row per byte.
        const std::uint8_t *lut = byteDecodeLut(b);
        std::uint32_t per_byte = 8 / b;
        while (i < n && bit % 8 != 0)
            scalar(i + 1);
        std::size_t byte = bit / 8;
        while (n - i >= per_byte) {
            const std::uint8_t *e =
                lut + std::size_t{bytes[byte]} * per_byte;
            std::copy(e, e + per_byte, out + i);
            i += per_byte;
            bit += 8;
            ++byte;
        }
        scalar(n);
    } else if (b == 3) {
        // Align to a 24-bit group: 3 bytes hold 8 whole 3-bit indexes.
        while (i < n && bit % 24 != 0)
            scalar(i + 1);
        std::size_t byte = bit / 8;
        while (n - i >= 8) {
            std::uint32_t g =
                bytes[byte]
                | static_cast<std::uint32_t>(bytes[byte + 1]) << 8
                | static_cast<std::uint32_t>(bytes[byte + 2]) << 16;
            for (unsigned j = 0; j < 8; ++j)
                out[i + j] =
                    static_cast<std::uint8_t>((g >> (3 * j)) & 7u);
            i += 8;
            bit += 24;
            byte += 3;
        }
        scalar(n);
    } else {
        scalar(n);
    }
}

const KernelSet &
genericKernels()
{
    static const KernelSet set = {
        "generic",
        /*reassociates=*/false,
        /*seqTile=*/kSeqTile,
        dotGeneric,
        axpyGeneric,
        softmaxRowGeneric,
        layerNormRowGeneric,
        geluRowGeneric,
        tanhRowGeneric,
        bucketAccTileGeneric,
        centroidDotTileGeneric,
        outlierTileGeneric,
        decodePackedRowGeneric,
    };
    return set;
}

} // namespace gobo
