/**
 * @file
 * AVX2+FMA kernel tier.
 *
 * Dense kernels (dot/axpy) use 8-lane FMA with multiple accumulators,
 * so float reductions reassociate relative to the generic tier —
 * callers get tolerance-level equality, with NaN/Inf still propagating
 * (no zero-skips, no flush-to-zero). The row ops vectorize exp/tanh
 * with a Cephes-style polynomial whose special cases are blended back
 * explicitly so NaN stays NaN and ±Inf behaves like the scalar libm
 * path.
 *
 * The bucket-tile kernels are different: they keep the scalar loop's
 * per-lane double arithmetic and order exactly (convert-then-add in
 * phase 1, multiply-then-add — deliberately NOT fmadd — in phases 2/3),
 * so the quantized FC output is bit-identical to the generic tier.
 * Vertical SIMD across sequence lanes never reassociates a per-lane
 * reduction.
 *
 * This file is compiled with -mavx2 -mfma on x86-64 builds only; on
 * other targets (or compilers without AVX2) it degrades to a stub that
 * reports the tier as unavailable.
 */

#include "kernels/kernels.hh"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <limits>

namespace gobo {

namespace {

/** Horizontal sum of 8 float lanes. */
inline float
hsum(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

/** Horizontal max of 8 float lanes. */
inline float
hmax(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_max_ps(lo, hi);
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

/** Horizontal sum of 4 double lanes. */
inline double
hsumd(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    lo = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
    return _mm_cvtsd_f64(lo);
}

/**
 * Vector expf (Cephes polynomial, ~1 ulp over the clamped range) with
 * explicit special handling: NaN in -> the same NaN out, x > hi -> +Inf,
 * x < lo -> 0. The clamp bounds are the float exp overflow/underflow
 * edges, so finite inputs land in the polynomial's valid range.
 */
inline __m256
exp256(__m256 x0)
{
    const __m256 hi = _mm256_set1_ps(88.3762626647950f);
    const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
    // NaN note: max/min return the second operand on unordered
    // compares, so a NaN lane comes out clamped-finite here and is
    // blended back to NaN below.
    __m256 x = _mm256_min_ps(_mm256_max_ps(x0, lo), hi);

    const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
    __m256 fx = _mm256_floor_ps(_mm256_fmadd_ps(x, log2e,
                                                _mm256_set1_ps(0.5f)));
    // Cody-Waite: subtract fx * ln2 in two pieces to keep precision.
    x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
    x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);

    __m256 z = _mm256_mul_ps(x, x);
    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
    y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, _mm256_set1_ps(1.0f)));

    // Scale by 2^fx through the exponent bits. fx is integral and in
    // [-127, 128] after the clamp, so the shift cannot wrap.
    __m256i n = _mm256_cvtps_epi32(fx);
    n = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)),
                          23);
    y = _mm256_mul_ps(y, _mm256_castsi256_ps(n));

    y = _mm256_blendv_ps(y, x0,
                         _mm256_cmp_ps(x0, x0, _CMP_UNORD_Q));
    y = _mm256_blendv_ps(
        y,
        _mm256_set1_ps(std::numeric_limits<float>::infinity()),
        _mm256_cmp_ps(x0, hi, _CMP_GT_OQ));
    y = _mm256_blendv_ps(y, _mm256_setzero_ps(),
                         _mm256_cmp_ps(x0, lo, _CMP_LT_OQ));
    return y;
}

/**
 * Vector tanh via exp(2x): (e-1)/(e+1), saturated to ±1 for |x| >= 10
 * (tanh(10) rounds to 1.0f) — which also catches ±Inf before the
 * Inf/Inf NaN. NaN falls through the formula and stays NaN.
 */
inline __m256
tanh256(__m256 x)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    __m256 e = exp256(_mm256_add_ps(x, x));
    __m256 t = _mm256_div_ps(_mm256_sub_ps(e, one),
                             _mm256_add_ps(e, one));
    __m256 sat = _mm256_cmp_ps(
        _mm256_andnot_ps(_mm256_set1_ps(-0.0f), x),
        _mm256_set1_ps(10.0f), _CMP_GE_OQ);
    // Saturated sign: copy x's sign bit onto 1.0.
    __m256 signed_one = _mm256_or_ps(
        one, _mm256_and_ps(x, _mm256_set1_ps(-0.0f)));
    return _mm256_blendv_ps(t, signed_one, sat);
}

float
dotAvx2(float init, const float *a, const float *b, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                               _mm256_loadu_ps(b + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                               _mm256_loadu_ps(b + i + 24), acc3);
    }
    for (; i + 8 <= n; i += 8)
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
    acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                         _mm256_add_ps(acc2, acc3));
    float acc = init + hsum(acc0);
    for (; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
axpyAvx2(float a, const float *x, float *y, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(y + j,
                         _mm256_fmadd_ps(va, _mm256_loadu_ps(x + j),
                                         _mm256_loadu_ps(y + j)));
    for (; j < n; ++j)
        y[j] += a * x[j];
}

void
softmaxRowAvx2(float *row, std::size_t n)
{
    constexpr float ninf = -std::numeric_limits<float>::infinity();
    __m256 mv = _mm256_set1_ps(ninf);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        mv = _mm256_max_ps(mv, _mm256_loadu_ps(row + i));
    float mx = n >= 8 ? hmax(mv) : ninf;
    for (; i < n; ++i)
        mx = row[i] > mx ? row[i] : mx;
    // A NaN lane slips past max (unordered compares are false both
    // ways), but exp(NaN - mx) poisons the sum below, so the whole row
    // still comes out NaN exactly like the scalar path.

    const __m256 mxv = _mm256_set1_ps(mx);
    __m256 sv = _mm256_setzero_ps();
    for (i = 0; i + 8 <= n; i += 8) {
        __m256 e = exp256(_mm256_sub_ps(_mm256_loadu_ps(row + i), mxv));
        _mm256_storeu_ps(row + i, e);
        sv = _mm256_add_ps(sv, e);
    }
    float sum = hsum(sv);
    for (; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
    }

    const __m256 sumv = _mm256_set1_ps(sum);
    for (i = 0; i + 8 <= n; i += 8)
        _mm256_storeu_ps(row + i,
                         _mm256_div_ps(_mm256_loadu_ps(row + i), sumv));
    for (; i < n; ++i)
        row[i] /= sum;
}

void
layerNormRowAvx2(float *row, std::size_t n, const float *gamma,
                 const float *beta, float eps)
{
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(row + i);
        s0 = _mm256_add_pd(s0,
                           _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
        s1 = _mm256_add_pd(s1,
                           _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
    }
    double mu = hsumd(_mm256_add_pd(s0, s1));
    for (; i < n; ++i)
        mu += row[i];
    mu /= static_cast<double>(n);

    const __m256d muv = _mm256_set1_pd(mu);
    s0 = _mm256_setzero_pd();
    s1 = _mm256_setzero_pd();
    for (i = 0; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(row + i);
        __m256d d0 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm256_castps256_ps128(v)), muv);
        __m256d d1 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), muv);
        s0 = _mm256_fmadd_pd(d0, d0, s0);
        s1 = _mm256_fmadd_pd(d1, d1, s1);
    }
    double var = hsumd(_mm256_add_pd(s0, s1));
    for (; i < n; ++i) {
        double d = row[i] - mu;
        var += d * d;
    }
    var /= static_cast<double>(n);
    auto inv = static_cast<float>(1.0 / std::sqrt(var + eps));

    const __m256 muf = _mm256_set1_ps(static_cast<float>(mu));
    const __m256 invv = _mm256_set1_ps(inv);
    for (i = 0; i + 8 <= n; i += 8) {
        __m256 v = _mm256_sub_ps(_mm256_loadu_ps(row + i), muf);
        v = _mm256_mul_ps(_mm256_mul_ps(v, invv),
                          _mm256_loadu_ps(gamma + i));
        _mm256_storeu_ps(row + i,
                         _mm256_add_ps(v, _mm256_loadu_ps(beta + i)));
    }
    for (; i < n; ++i)
        row[i] = (row[i] - static_cast<float>(mu)) * inv * gamma[i]
                 + beta[i];
}

void
geluRowAvx2(float *row, std::size_t n)
{
    const __m256 k = _mm256_set1_ps(0.7978845608028654f); // sqrt(2/pi)
    const __m256 c = _mm256_set1_ps(0.044715f);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 one = _mm256_set1_ps(1.0f);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(row + i);
        __m256 v3 = _mm256_mul_ps(_mm256_mul_ps(v, v), v);
        __m256 inner = _mm256_mul_ps(
            k, _mm256_add_ps(v, _mm256_mul_ps(c, v3)));
        __m256 t = _mm256_add_ps(one, tanh256(inner));
        _mm256_storeu_ps(row + i,
                         _mm256_mul_ps(_mm256_mul_ps(half, v), t));
    }
    for (; i < n; ++i) {
        float v = row[i];
        float inner = 0.7978845608028654f
                      * (v + 0.044715f * v * v * v);
        row[i] = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
tanhRowAvx2(float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(row + i, tanh256(_mm256_loadu_ps(row + i)));
    for (; i < n; ++i)
        row[i] = std::tanh(row[i]);
}

static_assert(kSeqTile == 8,
              "the AVX2 bucket-tile kernels hard-code 8 lanes "
              "(2 x 4 doubles)");

void
bucketAccTileAvx2(const std::uint8_t *irow, std::size_t in,
                  const float *xT, double *bucket, std::size_t k)
{
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t c = 0; c < k; ++c) {
        _mm256_storeu_pd(bucket + c * kSeqTile, zero);
        _mm256_storeu_pd(bucket + c * kSeqTile + 4, zero);
    }
    // Vertical adds only: lane l accumulates its activations in
    // ascending-i order, exactly the scalar reduction, in double.
    for (std::size_t i = 0; i < in; ++i) {
        double *dst = bucket + std::size_t{irow[i]} * kSeqTile;
        __m256 x = _mm256_loadu_ps(xT + i * kSeqTile);
        __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
        __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
        _mm256_storeu_pd(dst,
                         _mm256_add_pd(_mm256_loadu_pd(dst), lo));
        _mm256_storeu_pd(dst + 4,
                         _mm256_add_pd(_mm256_loadu_pd(dst + 4), hi));
    }
}

void
centroidDotTileAvx2(const float *centroids, std::size_t k,
                    const double *bucket, double bias, double *acc)
{
    __m256d a0 = _mm256_set1_pd(bias);
    __m256d a1 = a0;
    for (std::size_t c = 0; c < k; ++c) {
        const __m256d cv =
            _mm256_set1_pd(static_cast<double>(centroids[c]));
        // mul then add, not fmadd: the scalar loop rounds the product
        // before accumulating, and this tier promises bit-identity.
        a0 = _mm256_add_pd(
            a0, _mm256_mul_pd(cv,
                              _mm256_loadu_pd(bucket + c * kSeqTile)));
        a1 = _mm256_add_pd(
            a1,
            _mm256_mul_pd(cv,
                          _mm256_loadu_pd(bucket + c * kSeqTile + 4)));
    }
    _mm256_storeu_pd(acc, a0);
    _mm256_storeu_pd(acc + 4, a1);
}

void
outlierTileAvx2(const OutlierTerm *terms, std::size_t count,
                const float *xT, double *acc)
{
    __m256d a0 = _mm256_loadu_pd(acc);
    __m256d a1 = _mm256_loadu_pd(acc + 4);
    for (std::size_t t = 0; t < count; ++t) {
        const __m256d cv =
            _mm256_set1_pd(static_cast<double>(terms[t].correction));
        __m256 x = _mm256_loadu_ps(
            xT + std::size_t{terms[t].column} * kSeqTile);
        a0 = _mm256_add_pd(
            a0, _mm256_mul_pd(
                    cv, _mm256_cvtps_pd(_mm256_castps256_ps128(x))));
        a1 = _mm256_add_pd(
            a1, _mm256_mul_pd(
                    cv, _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1))));
    }
    _mm256_storeu_pd(acc, a0);
    _mm256_storeu_pd(acc + 4, a1);
}

} // namespace

const KernelSet *
avx2KernelsBuild()
{
    static const KernelSet set = {
        "avx2",
        /*reassociates=*/true,
        /*seqTile=*/kSeqTile,
        dotAvx2,
        axpyAvx2,
        softmaxRowAvx2,
        layerNormRowAvx2,
        geluRowAvx2,
        tanhRowAvx2,
        bucketAccTileAvx2,
        centroidDotTileAvx2,
        outlierTileAvx2,
        decodePackedRowGeneric,
    };
    return &set;
}

} // namespace gobo

#else // !(__AVX2__ && __FMA__)

namespace gobo {

/** Build-time stub: this target was compiled without AVX2+FMA. */
const KernelSet *
avx2KernelsBuild()
{
    return nullptr;
}

} // namespace gobo

#endif
