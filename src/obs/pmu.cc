#include "obs/pmu.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace gobo {

// ---------------------------------------------------------------------------
// LinuxPmuBackend

#ifdef __linux__

namespace {

/** The five events of a group, in the order read() reports them. */
struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventSpec kGroupEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES}, // leader
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

constexpr std::size_t kGroupSize =
    sizeof(kGroupEvents) / sizeof(kGroupEvents[0]);

int
perfEventOpen(const perf_event_attr &attr, pid_t pid, int group_fd)
{
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, pid,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

/** read() layout under PERF_FORMAT_GROUP + the two TIME fields. */
struct GroupReading
{
    std::uint64_t nr;
    std::uint64_t timeEnabled;
    std::uint64_t timeRunning;
    std::uint64_t values[kGroupSize];
};

} // namespace

int
LinuxPmuBackend::openGroup(long tid)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;

    const pid_t pid = tid > 0 ? static_cast<pid_t>(tid) : 0;

    attr.type = kGroupEvents[0].type;
    attr.config = kGroupEvents[0].config;
    int leader = perfEventOpen(attr, pid, -1);
    if (leader < 0)
        return -1;

    for (std::size_t i = 1; i < kGroupSize; ++i) {
        attr.type = kGroupEvents[i].type;
        attr.config = kGroupEvents[i].config;
        int fd = perfEventOpen(attr, pid, leader);
        if (fd < 0) {
            // Partial groups would skew derived ratios; treat any
            // missing event as the whole group being unavailable.
            closeGroup(leader);
            return -1;
        }
        std::lock_guard lock(followerMutex);
        followers.push_back({leader, fd});
    }
    return leader;
}

PmuSample
LinuxPmuBackend::readGroup(int handle)
{
    PmuSample sample;
    if (handle < 0)
        return sample;
    GroupReading reading;
    std::memset(&reading, 0, sizeof(reading));
    ssize_t got = read(handle, &reading, sizeof(reading));
    if (got < static_cast<ssize_t>(sizeof(std::uint64_t) * 3) ||
        reading.nr != kGroupSize)
        return sample;
    // Scale for multiplexing: when more groups are scheduled than the
    // PMU has slots, each runs a fraction of the time; extrapolate.
    double scale = 1.0;
    if (reading.timeRunning > 0 && reading.timeEnabled > reading.timeRunning)
        scale = static_cast<double>(reading.timeEnabled) /
                static_cast<double>(reading.timeRunning);
    auto scaled = [scale](std::uint64_t v) {
        return static_cast<std::uint64_t>(static_cast<double>(v) * scale);
    };
    sample.cycles = scaled(reading.values[0]);
    sample.instructions = scaled(reading.values[1]);
    sample.llcMisses = scaled(reading.values[2]);
    sample.llcReferences = scaled(reading.values[3]);
    sample.stalledBackend = scaled(reading.values[4]);
    sample.valid = true;
    return sample;
}

void
LinuxPmuBackend::closeGroup(int handle)
{
    if (handle < 0)
        return;
    std::lock_guard lock(followerMutex);
    for (auto it = followers.begin(); it != followers.end();) {
        if (it->first == handle) {
            close(it->second);
            it = followers.erase(it);
        } else {
            ++it;
        }
    }
    close(handle);
}

#else // !__linux__

int
LinuxPmuBackend::openGroup(long)
{
    return -1;
}

PmuSample
LinuxPmuBackend::readGroup(int)
{
    return {};
}

void
LinuxPmuBackend::closeGroup(int)
{
}

#endif // __linux__

// ---------------------------------------------------------------------------
// FakePmuBackend

int
FakePmuBackend::openGroup(long)
{
    std::lock_guard lock(mutex);
    for (std::size_t i = 0; i < open.size(); ++i) {
        if (!open[i]) {
            open[i] = true;
            ticks[i] = 0;
            return static_cast<int>(i);
        }
    }
    open.push_back(true);
    ticks.push_back(0);
    return static_cast<int>(open.size() - 1);
}

PmuSample
FakePmuBackend::readGroup(int handle)
{
    PmuSample sample;
    std::lock_guard lock(mutex);
    if (handle < 0 || static_cast<std::size_t>(handle) >= open.size() ||
        !open[static_cast<std::size_t>(handle)])
        return sample;
    std::uint64_t tick = ++ticks[static_cast<std::size_t>(handle)];
    sample.cycles = tick * 1000;
    sample.instructions = tick * 1500;
    sample.llcReferences = tick * 100;
    sample.llcMisses = tick * 10;
    sample.stalledBackend = tick * 200;
    sample.valid = true;
    return sample;
}

void
FakePmuBackend::closeGroup(int handle)
{
    std::lock_guard lock(mutex);
    if (handle >= 0 && static_cast<std::size_t>(handle) < open.size())
        open[static_cast<std::size_t>(handle)] = false;
}

// ---------------------------------------------------------------------------
// PmuGroup

PmuGroup::PmuGroup(PmuBackend &backend_, long tid) : backend(&backend_)
{
    handle = backend->openGroup(tid);
}

PmuGroup::~PmuGroup()
{
    if (backend && handle >= 0)
        backend->closeGroup(handle);
}

PmuGroup::PmuGroup(PmuGroup &&other) noexcept
    : backend(other.backend), handle(other.handle)
{
    other.backend = nullptr;
    other.handle = -1;
}

PmuGroup &
PmuGroup::operator=(PmuGroup &&other) noexcept
{
    if (this != &other) {
        if (backend && handle >= 0)
            backend->closeGroup(handle);
        backend = other.backend;
        handle = other.handle;
        other.backend = nullptr;
        other.handle = -1;
    }
    return *this;
}

PmuSample
PmuGroup::sample() const
{
    if (!backend || handle < 0)
        return {};
    return backend->readGroup(handle);
}

// ---------------------------------------------------------------------------
// Mode resolution and the process-default backend

PmuMode
pmuModeFromSpec(const char *text)
{
    if (!text || !*text)
        return PmuMode::Probe;
    if (!std::strcmp(text, "off") || !std::strcmp(text, "0") ||
        !std::strcmp(text, "disabled"))
        return PmuMode::Off;
    if (!std::strcmp(text, "fake"))
        return PmuMode::Fake;
    return PmuMode::Probe;
}

PmuMode
pmuMode()
{
    static const PmuMode mode = pmuModeFromSpec(std::getenv("GOBO_PMU"));
    return mode;
}

PmuBackend *
defaultPmuBackend()
{
    // Probed exactly once per process; concurrent first calls are
    // serialized by the magic-static guard.
    static PmuBackend *const backend = []() -> PmuBackend * {
        switch (pmuMode()) {
        case PmuMode::Off:
            return nullptr;
        case PmuMode::Fake:
            static FakePmuBackend fake;
            return &fake;
        case PmuMode::Probe:
            break;
        }
        static LinuxPmuBackend linux_backend;
        int probe = linux_backend.openGroup(0);
        if (probe < 0) {
            std::fprintf(stderr,
                         "gobo: hardware counters unavailable "
                         "(perf_event_open denied; see "
                         "/proc/sys/kernel/perf_event_paranoid) — "
                         "PMU telemetry disabled\n");
            return nullptr;
        }
        linux_backend.closeGroup(probe);
        return &linux_backend;
    }();
    return backend;
}

std::size_t
pmuCacheLineBytes()
{
#if defined(__linux__) && defined(_SC_LEVEL1_DCACHE_LINESIZE)
    static const std::size_t line = []() -> std::size_t {
        long v = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
        return v > 0 ? static_cast<std::size_t>(v) : 64;
    }();
    return line;
#else
    return 64;
#endif
}

// ---------------------------------------------------------------------------
// PmuSnapshot derived figures

double
PmuSnapshot::ipc() const
{
    if (!total.valid || total.cycles == 0)
        return 0.0;
    return static_cast<double>(total.instructions) /
           static_cast<double>(total.cycles);
}

double
PmuSnapshot::llcMissRatio() const
{
    if (!total.valid || total.llcReferences == 0)
        return 0.0;
    return static_cast<double>(total.llcMisses) /
           static_cast<double>(total.llcReferences);
}

double
PmuSnapshot::llcMissGBps() const
{
    if (!total.valid || elapsedSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(total.llcMisses) *
           static_cast<double>(cacheLineBytes) / elapsedSeconds / 1e9;
}

// ---------------------------------------------------------------------------
// PmuRegistry

namespace {

/** Registry uids: their own sequence, shared with no one. */
std::atomic<std::uint64_t> next_pmu_uid{1};

/** Per-thread cache mapping registry uid -> group slot (same linear-
 * scan idiom as the Tracer's BufferCache: the vector has one entry per
 * live registry this thread has touched, i.e. almost always one). */
struct GroupCache
{
    struct Entry
    {
        std::uint64_t uid;
        void *group;
    };
    std::vector<Entry> entries;

    void *
    find(std::uint64_t uid) const
    {
        for (const auto &e : entries)
            if (e.uid == uid)
                return e.group;
        return nullptr;
    }
};

thread_local GroupCache group_cache;

} // namespace

struct PmuRegistry::Impl
{
    const std::uint64_t uid;
    const std::chrono::steady_clock::time_point epoch;

    /** One per thread that called threadSample(); slots hold the
     * group plus its first sample so snapshot() reports deltas since
     * first use, not raw counter values. */
    struct ThreadSlot
    {
        PmuGroup group;
        PmuSample first;
    };

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<ThreadSlot>> threads;

    /** Worker-monitoring groups, in pool slot order. */
    struct WorkerSlot
    {
        std::size_t worker;
        PmuGroup group;
        PmuSample first;
    };
    std::vector<WorkerSlot> workers;

    Impl()
        : uid(next_pmu_uid.fetch_add(1, std::memory_order_relaxed)),
          epoch(std::chrono::steady_clock::now())
    {
    }
};

PmuRegistry::PmuRegistry() : backend(defaultPmuBackend())
{
    impl = std::make_unique<Impl>();
}

PmuRegistry::PmuRegistry(PmuBackend &backend_) : backend(&backend_)
{
    impl = std::make_unique<Impl>();
}

PmuRegistry::~PmuRegistry() = default;

PmuSample
PmuRegistry::threadSample()
{
    if (!backend)
        return {};
    Impl::ThreadSlot *slot;
    if (void *cached = group_cache.find(impl->uid)) {
        slot = static_cast<Impl::ThreadSlot *>(cached);
    } else {
        auto fresh = std::make_unique<Impl::ThreadSlot>();
        fresh->group = PmuGroup(*backend, 0);
        fresh->first = fresh->group.sample();
        slot = fresh.get();
        {
            std::lock_guard lock(impl->mutex);
            impl->threads.push_back(std::move(fresh));
        }
        group_cache.entries.push_back({impl->uid, slot});
    }
    return slot->group.sample();
}

void
PmuRegistry::attachWorkers(const std::vector<long> &tids)
{
    if (!backend)
        return;
    std::vector<Impl::WorkerSlot> fresh;
    for (std::size_t i = 0; i < tids.size(); ++i) {
        if (tids[i] <= 0)
            continue; // platform without gettid, or worker not up yet.
        Impl::WorkerSlot slot;
        slot.worker = i;
        slot.group = PmuGroup(*backend, tids[i]);
        if (!slot.group.ok())
            continue;
        slot.first = slot.group.sample();
        fresh.push_back(std::move(slot));
    }
    std::lock_guard lock(impl->mutex);
    impl->workers = std::move(fresh);
}

PmuSnapshot
PmuRegistry::snapshot() const
{
    PmuSnapshot snap;
    snap.available = backend != nullptr;
    snap.backend = backendName();
    snap.cacheLineBytes = pmuCacheLineBytes();
    snap.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      impl->epoch)
            .count();
    if (!backend)
        return snap;

    auto accumulate = [&snap](const PmuSample &delta) {
        if (!delta.valid)
            return;
        snap.total.valid = true;
        snap.total.cycles += delta.cycles;
        snap.total.instructions += delta.instructions;
        snap.total.llcMisses += delta.llcMisses;
        snap.total.llcReferences += delta.llcReferences;
        snap.total.stalledBackend += delta.stalledBackend;
    };

    std::lock_guard lock(impl->mutex);
    for (const auto &slot : impl->threads)
        accumulate(slot->group.sample().since(slot->first));
    for (const auto &slot : impl->workers) {
        PmuSample delta = slot.group.sample().since(slot.first);
        accumulate(delta);
        snap.workers.push_back({slot.worker, delta});
    }
    return snap;
}

} // namespace gobo
