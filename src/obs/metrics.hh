/**
 * @file
 * Metrics registry — named counters and fixed-boundary latency
 * histograms with wait-free hot paths.
 *
 * Metrics are interned once (`counter()` / `histogram()` return small
 * ids) and recorded through per-thread shards: `add()` and `observe()`
 * touch only the calling thread's shard with relaxed atomics, so
 * instrumenting a parallel forward pass never introduces cross-thread
 * contention or changes scheduling. `snapshot()` merges every shard
 * under the registry mutex and derives p50/p90/p99 from the histogram
 * buckets, so reads pay the synchronization cost instead of writers.
 */

#ifndef GOBO_OBS_METRICS_HH
#define GOBO_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gobo {

/** Handle to an interned counter; value-copyable, trivially cheap. */
struct CounterId
{
    std::uint32_t index = UINT32_MAX;

    bool valid() const { return index != UINT32_MAX; }
};

/** Handle to an interned histogram. */
struct HistogramId
{
    std::uint32_t index = UINT32_MAX;

    bool valid() const { return index != UINT32_MAX; }
};

/**
 * Merged view of one histogram: bucket upper bounds (ascending; one
 * implicit +inf overflow bucket past the last bound), per-bucket
 * counts, and the running sum for mean extraction.
 */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> bounds;        ///< upper bounds, ascending.
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 entries.
    std::uint64_t count = 0;           ///< total observations.
    double sum = 0.0;                  ///< sum of observed values.

    /** Mean of the observations (0 when empty). */
    double mean() const;

    /**
     * Quantile estimate by linear interpolation inside the bucket that
     * contains rank q * count. q in [0, 1]. On an empty histogram
     * (zero observations — e.g. a serve run where every request was
     * shed) the quantile is *undefined* and this returns NaN, never an
     * arbitrary bucket value: exporters render it as "-" / JSON null,
     * and a 0 here would be indistinguishable from a real 0-latency
     * measurement. Values in the overflow bucket report the last
     * finite bound (histograms cannot interpolate toward infinity), so
     * choose bounds that cover the expected range — and check
     * quantilesAreLowerBounds() before trusting a tail quantile.
     */
    double quantile(double q) const;

    /** Observations past the last finite bound (the +inf bucket). */
    std::uint64_t overflow() const;

    /** overflow() as a fraction of count (0 when empty). */
    double overflowFraction() const;

    /**
     * True when more than 1% of samples saturated into the overflow
     * bucket: quantiles then clamp to the last finite bound and must
     * be read as lower bounds ("≥"), which is how the exporters mark
     * them.
     */
    bool quantilesAreLowerBounds() const;
};

/** Point-in-time merged view of every metric in a registry. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        std::uint64_t value = 0;
    };

    /**
     * A derived floating-point figure (hit rates, IPC, measured GB/s).
     * Gauges are never recorded on hot paths — exporters compute them
     * from counters or PMU samples at snapshot time — so the registry
     * itself stays integer-only and wait-free.
     */
    struct GaugeValue
    {
        std::string name;
        double value = 0.0;
    };

    std::vector<CounterValue> counters;
    std::vector<HistogramSnapshot> histograms;
    std::vector<GaugeValue> gauges;

    /** Counter by name; nullptr when absent. */
    const CounterValue *findCounter(std::string_view name) const;

    /** Histogram by name; nullptr when absent. */
    const HistogramSnapshot *findHistogram(std::string_view name) const;

    /** Gauge by name; nullptr when absent. */
    const GaugeValue *findGauge(std::string_view name) const;
};

/**
 * Default latency boundaries: log-spaced bucket upper bounds in
 * microseconds from 1 us to 10 s, `per_decade` buckets per decade.
 */
std::vector<double> latencyBoundsUs(std::size_t per_decade = 10);

/**
 * Registry of named counters and histograms. Registration is
 * mutex-guarded and idempotent by name; recording is wait-free
 * (per-thread shards, relaxed atomics). Thread shards survive thread
 * exit — counts are never lost — and the registry owns them, so it
 * must outlive every thread still recording into it (sessions and the
 * CLI keep the Observer alive across the whole run).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Intern (or look up) a counter by name. */
    CounterId counter(const std::string &name);

    /**
     * Intern (or look up) a histogram by name. `bounds` must be
     * non-empty, finite, and strictly ascending; a histogram
     * re-registered under the same name keeps its original bounds.
     */
    HistogramId histogram(const std::string &name,
                          std::vector<double> bounds);

    /** Add `delta` to a counter (wait-free on the hot path). */
    void add(CounterId id, std::uint64_t delta = 1);

    /** Record one observation into a histogram (wait-free). */
    void observe(HistogramId id, double value);

    /** Merge every thread shard into one consistent view. */
    MetricsSnapshot snapshot() const;

  private:
    /**
     * One thread's private slice of every metric. Only the owning
     * thread writes; snapshot() reads the same slots with relaxed
     * loads, which is why the slots are atomics.
     */
    struct Shard
    {
        /** One relaxed-atomic slot per registered counter. */
        std::unique_ptr<std::atomic<std::uint64_t>[]> counters;
        std::size_t counterCount = 0;

        struct HistShard
        {
            std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
            std::size_t bucketCount = 0;
            std::atomic<std::uint64_t> count{0};
            /** Sum as a bit-cast double updated by CAS (portable
             * fetch_add for doubles). */
            std::atomic<std::uint64_t> sumBits{0};
        };
        std::vector<std::unique_ptr<HistShard>> hists;
    };

    struct HistogramDef
    {
        std::string name;
        std::vector<double> bounds;
    };

    /** The calling thread's shard, created/grown on first use. */
    Shard &localShard();

    /** Grow `shard` to cover every metric registered so far. */
    void growShard(Shard &shard);

    /** Process-unique id for the thread-local shard cache. */
    const std::uint64_t uid;

    mutable std::mutex mutex;
    std::vector<std::string> counterNames;
    std::vector<HistogramDef> histogramDefs;
    std::vector<std::unique_ptr<Shard>> shards;
};

} // namespace gobo

#endif // GOBO_OBS_METRICS_HH
