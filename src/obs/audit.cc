#include "obs/audit.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "obs/export.hh"
#include "obs/observer.hh"
#include "obs/pmu.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace gobo {

namespace {

/** Escape a string for a JSON literal (names are ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Shortest-round-trip double for JSON. Fidelity errors span many
 * decades (an MSE of 1e-9 is a *good* result), so fixed precision
 * would round the interesting values to zero.
 */
std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/** Compact scientific cell for console tables. */
std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

} // namespace

LayerFidelity
layerFidelity(std::string name, std::string span_label,
              const Tensor &fp32, const QuantizedTensor &q)
{
    fatalIf(fp32.rows() != q.rows || fp32.cols() != q.cols,
            "layerFidelity shape mismatch: fp32 [", fp32.rows(), ", ",
            fp32.cols(), "] vs quantized [", q.rows, ", ", q.cols, "]");

    LayerFidelity f;
    f.name = std::move(name);
    f.spanLabel = std::move(span_label);
    f.elements = q.elementCount();
    f.bits = q.bits;
    f.outlierFraction = q.outlierFraction();

    if (f.elements > 0) {
        f.compressionRatio = q.compressionRatio();
        Tensor rec = q.dequantize();
        auto a = fp32.flat();
        auto b = rec.flat();
        double l1 = 0.0, l2 = 0.0, mx = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            double d = std::abs(static_cast<double>(a[i])
                                - static_cast<double>(b[i]));
            l1 += d;
            l2 += d * d;
            mx = std::max(mx, d);
        }
        auto n = static_cast<double>(f.elements);
        f.l1 = l1 / n;
        f.mse = l2 / n;
        f.maxAbs = mx;
    }

    f.occupancy = q.centroidOccupancy();
    std::uint64_t top = 0;
    for (std::uint64_t c : f.occupancy) {
        if (c == 0)
            ++f.deadCentroids;
        top = std::max(top, c);
    }
    if (f.elements > 0)
        f.topCentroidShare = static_cast<double>(top)
                             / static_cast<double>(f.elements);
    f.saturated = f.topCentroidShare >= 0.9;
    return f;
}

AuditReport
auditModel(const BertModel &model, const AuditOptions &options)
{
    fatalIf(options.sequences == 0 || options.seqLen == 0,
            "audit needs a non-empty workload");
    fatalIf(options.seqLen > model.config().maxPosition, "audit seq-len ",
            options.seqLen, " exceeds maxPosition ",
            model.config().maxPosition);

    AuditReport report;
    report.model = model.config().name;
    report.bits = options.quant.base.bits;
    report.format = options.quant.format;
    report.sequences = options.sequences;
    report.seqLen = options.seqLen;
    report.seed = options.seed;

    // Pillar 1: quantize once and zip the compressed layers with the
    // FP32 originals (forEachLayer visits in fcLayers order). Labels
    // and per-forward MAC counts are copied out as values here because
    // the model object moves into the session below.
    QuantizedBertModel qmodel(model, options.quant);
    auto refs = model.fcLayers();
    std::vector<std::string> labels;
    std::vector<double> per_forward_macs;
    std::size_t zip = 0;
    qmodel.forEachLayer([&](const QuantizedLinear &layer) {
        fatalIf(zip >= refs.size(), "audit layer zip overflow at ",
                layer.spanLabel());
        report.fidelity.push_back(
            layerFidelity(refs[zip].name, layer.spanLabel(),
                          *refs[zip].weight, layer.compressed()));
        labels.push_back(layer.spanLabel());
        // The pooler consumes only the [CLS] row, so its forward runs
        // at sequence length 1 regardless of the workload seq-len.
        std::size_t seq = layer.spanLabel() == "pooler" ? 1
                                                        : options.seqLen;
        per_forward_macs.push_back(static_cast<double>(
            layer.opCounts(seq).multiplications));
        ++zip;
    });
    fatalIf(zip != refs.size(), "audit visited ", zip, " layers but the "
            "model has ", refs.size());

    // Shared workload: same tokens for both engines.
    Rng rng(options.seed * 31 + 5);
    TokenBatch batch;
    for (std::size_t s = 0; s < options.sequences; ++s) {
        std::vector<std::int32_t> seq;
        seq.reserve(options.seqLen);
        for (std::size_t t = 0; t < options.seqLen; ++t)
            seq.push_back(static_cast<std::int32_t>(rng.integer(
                0,
                static_cast<std::int64_t>(model.config().vocabSize)
                    - 1)));
        batch.push_back(std::move(seq));
    }

    // Pillar 2: capture FP32 references, then compare the quantized
    // engine against them. Serial single-sequence calls keep emission
    // order deterministic — the probe's comparison key.
    ActivationProbe probe(ProbeMode::Capture);
    {
        Observer ref_obs;
        ref_obs.probe = &probe;
        ExecContext ctx = ExecContext::serial();
        ctx.obs = &ref_obs;
        InferenceSession session(model, ctx);
        for (const auto &seq : batch)
            session.headLogits(seq);
    }
    probe.setMode(ProbeMode::Compare);
    Observer qobs;
    qobs.probe = &probe;
    // Pillar 4 arming: the observed pass is serial, so every
    // QuantizedLinear span runs on this thread and the thread's PMU
    // group brackets exactly one layer's forward per span — which is
    // what lets the per-label miss aggregation below attribute DRAM
    // traffic to FC layers.
    const bool pmu_on = options.pmu && options.pmu->available();
    if (pmu_on)
        qobs.pmu = options.pmu;
    {
        ExecContext ctx = ExecContext::serial();
        ctx.weightFormat = options.quant.format;
        ctx.obs = &qobs;
        InferenceSession session(std::move(qmodel), ctx);
        for (const auto &seq : batch)
            session.headLogits(seq);
    }
    report.divergence = probe.divergence();

    // Pillar 3: read back what the observed quantized run streamed.
    MetricsSnapshot snap = qobs.metrics.snapshot();
    auto counter = [&](const std::string &name) -> std::uint64_t {
        const auto *c = snap.findCounter(name);
        return c ? c->value : 0;
    };
    for (std::size_t k = 0; k < labels.size(); ++k) {
        MeasuredTraffic t;
        t.layer = labels[k];
        std::string prefix = "qexec.layer." + labels[k];
        t.forwards = counter(prefix + ".forwards");
        t.bytesStreamed = counter(prefix + ".bytes_streamed");
        t.rowsDecoded = counter(prefix + ".rows_decoded");
        t.outlierCorrections = counter(prefix + ".outlier_corrections");
        t.macs = static_cast<double>(t.forwards) * per_forward_macs[k];
        report.traffic.push_back(std::move(t));
    }
    report.attribution = attributeMeasured(report.traffic, options.mem);

    for (const auto &t : report.traffic) {
        report.totalBytesStreamed += t.bytesStreamed;
        report.totalMacs += t.macs;
    }
    for (const auto &a : report.attribution) {
        report.totalEnergyMicroJ += a.totalEnergyMicroJ;
        report.totalLatencyMs += a.latencyMs;
    }

    // Pillar 4: fold the per-span PMU deltas by label and line them up
    // against the modeled traffic. Only the FC-layer labels are
    // compared — other spans (embed, layernorm, sequence[i]) measure
    // real misses too, but the model has no byte claim about them.
    if (pmu_on) {
        report.pmuAvailable = true;
        report.pmuBackend = options.pmu->backendName();
        report.pmuCacheLineBytes = pmuCacheLineBytes();
        auto pmu_spans = summarizePmuSpans(qobs.tracer);
        for (const auto &t : report.traffic) {
            PmuLayerValidation v;
            v.layer = t.layer;
            v.modeledBytes = t.bytesStreamed;
            for (const auto &s : pmu_spans) {
                if (s.name != t.layer)
                    continue;
                v.spans = s.count;
                v.llcMisses = s.llcMisses;
                v.measuredBytes =
                    s.llcMisses *
                    static_cast<std::uint64_t>(report.pmuCacheLineBytes);
                break;
            }
            if (v.measuredBytes > 0)
                v.modeledOverMeasured =
                    static_cast<double>(v.modeledBytes) /
                    static_cast<double>(v.measuredBytes);
            report.pmuValidation.push_back(std::move(v));
        }
    }
    return report;
}

void
writeAuditJson(const AuditReport &r, std::ostream &os)
{
    os << "{\n  \"schema\": \"gobo-audit-v2\",\n  \"model\": \""
       << jsonEscape(r.model) << "\",\n  \"bits\": " << r.bits
       << ",\n  \"format\": \"" << weightFormatName(r.format)
       << "\",\n  \"workload\": {\"sequences\": " << r.sequences
       << ", \"seq_len\": " << r.seqLen << ", \"seed\": " << r.seed
       << "},\n  \"fidelity\": [";
    bool first = true;
    for (const auto &f : r.fidelity) {
        os << (first ? "\n" : ",\n") << "    {\"layer\": \""
           << jsonEscape(f.name) << "\", \"span\": \""
           << jsonEscape(f.spanLabel) << "\", \"elements\": "
           << f.elements << ", \"bits\": " << f.bits
           << ", \"outlier_fraction\": " << jsonNum(f.outlierFraction)
           << ", \"compression_ratio\": " << jsonNum(f.compressionRatio)
           << ", \"l1\": " << jsonNum(f.l1) << ", \"mse\": "
           << jsonNum(f.mse) << ", \"max_abs\": " << jsonNum(f.maxAbs)
           << ", \"dead_centroids\": " << f.deadCentroids
           << ", \"top_centroid_share\": "
           << jsonNum(f.topCentroidShare) << ", \"saturated\": "
           << (f.saturated ? "true" : "false") << ", \"occupancy\": [";
        for (std::size_t i = 0; i < f.occupancy.size(); ++i)
            os << (i ? ", " : "") << f.occupancy[i];
        os << "]}";
        first = false;
    }
    os << "\n  ],\n  \"divergence\": [";
    first = true;
    for (const auto &d : r.divergence) {
        os << (first ? "\n" : ",\n") << "    {\"point\": \""
           << jsonEscape(d.point) << "\", \"samples\": " << d.samples
           << ", \"mismatches\": " << d.mismatches << ", \"max_abs\": "
           << jsonNum(d.maxAbs) << ", \"mean_cosine\": "
           << jsonNum(d.meanCosine) << ", \"min_cosine\": "
           << jsonNum(d.minCosine) << "}";
        first = false;
    }
    os << "\n  ],\n  \"traffic\": [";
    first = true;
    for (const auto &t : r.traffic) {
        os << (first ? "\n" : ",\n") << "    {\"layer\": \""
           << jsonEscape(t.layer) << "\", \"forwards\": " << t.forwards
           << ", \"bytes_streamed\": " << t.bytesStreamed
           << ", \"rows_decoded\": " << t.rowsDecoded
           << ", \"outlier_corrections\": " << t.outlierCorrections
           << ", \"macs\": " << jsonNum(t.macs) << "}";
        first = false;
    }
    os << "\n  ],\n  \"attribution\": [";
    first = true;
    for (const auto &a : r.attribution) {
        os << (first ? "\n" : ",\n") << "    {\"layer\": \""
           << jsonEscape(a.layer) << "\", \"off_chip_energy_uj\": "
           << jsonNum(a.offChipEnergyMicroJ)
           << ", \"compute_energy_uj\": "
           << jsonNum(a.computeEnergyMicroJ) << ", \"total_energy_uj\": "
           << jsonNum(a.totalEnergyMicroJ) << ", \"memory_latency_ms\": "
           << jsonNum(a.memoryLatencyMs) << ", \"compute_latency_ms\": "
           << jsonNum(a.computeLatencyMs) << ", \"latency_ms\": "
           << jsonNum(a.latencyMs) << ", \"memory_bound\": "
           << (a.memoryBound ? "true" : "false") << "}";
        first = false;
    }
    os << "\n  ],\n  \"totals\": {\"bytes_streamed\": "
       << r.totalBytesStreamed << ", \"macs\": " << jsonNum(r.totalMacs)
       << ", \"energy_uj\": " << jsonNum(r.totalEnergyMicroJ)
       << ", \"latency_ms\": " << jsonNum(r.totalLatencyMs) << "}";
    // v2 addition: the hardware-counter validation block. Always
    // present so a reader can distinguish "ran without counters"
    // (available: false) from a pre-v2 document; machine-dependent by
    // construction, so nothing in it is ever gated.
    os << ",\n  \"pmu\": {\"available\": "
       << (r.pmuAvailable ? "true" : "false") << ", \"backend\": \""
       << jsonEscape(r.pmuBackend)
       << "\", \"cache_line_bytes\": " << r.pmuCacheLineBytes
       << ", \"validation\": [";
    first = true;
    for (const auto &v : r.pmuValidation) {
        os << (first ? "\n" : ",\n") << "    {\"layer\": \""
           << jsonEscape(v.layer) << "\", \"spans\": " << v.spans
           << ", \"llc_misses\": " << v.llcMisses
           << ", \"measured_bytes\": " << v.measuredBytes
           << ", \"modeled_bytes\": " << v.modeledBytes
           << ", \"modeled_over_measured\": "
           << jsonNum(v.modeledOverMeasured) << "}";
        first = false;
    }
    os << (first ? "]" : "\n  ]") << "}\n}\n";
}

void
printAuditReport(const AuditReport &r, std::ostream &os)
{
    os << "audit: " << r.model << ", " << r.bits << "b base, "
       << weightFormatName(r.format) << " format, " << r.sequences
       << " x " << r.seqLen << " tokens (seed " << r.seed << ")\n\n";

    ConsoleTable fid({"Layer", "Bits", "Outliers", "L1", "MSE",
                      "MaxAbs", "Dead", "TopShare"});
    for (const auto &f : r.fidelity)
        fid.addRow({f.name, std::to_string(f.bits),
                    ConsoleTable::pct(100.0 * f.outlierFraction, 2),
                    sci(f.l1), sci(f.mse), sci(f.maxAbs),
                    std::to_string(f.deadCentroids),
                    ConsoleTable::pct(100.0 * f.topCentroidShare, 1)});
    fid.print(os);
    os << "\n";

    ConsoleTable div({"Point", "Samples", "MaxAbs", "MeanCos", "MinCos",
                      "Mismatch"});
    for (const auto &d : r.divergence)
        div.addRow({d.point, std::to_string(d.samples), sci(d.maxAbs),
                    ConsoleTable::num(d.meanCosine, 6),
                    ConsoleTable::num(d.minCosine, 6),
                    std::to_string(d.mismatches)});
    div.print(os);
    os << "\n";

    ConsoleTable tr({"Layer", "Fwd", "KiB streamed", "MACs", "E (uJ)",
                     "Lat (ms)", "Bound"});
    for (std::size_t i = 0; i < r.traffic.size(); ++i) {
        const auto &t = r.traffic[i];
        const auto &a = r.attribution[i];
        tr.addRow({t.layer, std::to_string(t.forwards),
                   ConsoleTable::num(
                       static_cast<double>(t.bytesStreamed) / 1024.0, 1),
                   sci(t.macs), ConsoleTable::num(a.totalEnergyMicroJ, 2),
                   sci(a.latencyMs),
                   a.memoryBound ? "memory" : "compute"});
    }
    tr.print(os);
    os << "\ntotals: " << ConsoleTable::num(
              static_cast<double>(r.totalBytesStreamed) / 1024.0, 1)
       << " KiB streamed, " << sci(r.totalMacs) << " MACs, "
       << ConsoleTable::num(r.totalEnergyMicroJ, 2) << " uJ, "
       << sci(r.totalLatencyMs) << " ms (modeled)\n";

    if (r.pmuAvailable) {
        os << "\nmodel validation (hardware counters, " << r.pmuBackend
           << " backend, " << r.pmuCacheLineBytes
           << "-byte lines; machine-dependent):\n";
        ConsoleTable pv({"Layer", "Spans", "LLC miss", "Measured KiB",
                         "Modeled KiB", "Modeled/Measured"});
        for (const auto &v : r.pmuValidation)
            pv.addRow(
                {v.layer, std::to_string(v.spans),
                 std::to_string(v.llcMisses),
                 ConsoleTable::num(
                     static_cast<double>(v.measuredBytes) / 1024.0, 1),
                 ConsoleTable::num(
                     static_cast<double>(v.modeledBytes) / 1024.0, 1),
                 v.measuredBytes > 0
                     ? ConsoleTable::num(v.modeledOverMeasured, 3)
                     : "-"});
        pv.print(os);
        os << "(~1 validates the memory-bound model; >1 means the "
              "working set stayed cached, <1 means traffic the model "
              "does not count)\n";
    }
}

} // namespace gobo
