/**
 * @file
 * Quantization-quality audit: per-layer fidelity, runtime divergence,
 * and measured-traffic energy attribution in one report.
 *
 * The paper argues GOBO holds accuracy while compressing ~10x; this
 * module makes that claim inspectable layer by layer instead of only
 * at the task-accuracy endpoint. An audit has three pillars:
 *
 *  1. Static fidelity — reconstruct each quantized FC matrix and
 *     measure L1 / MSE / max error against the FP32 original, plus the
 *     centroid occupancy histogram (dead or saturated tables are the
 *     classic failure mode of clustered quantization).
 *  2. Runtime divergence — run the FP32 and compressed-domain engines
 *     over the same token sequences with an ActivationProbe attached
 *     and fold per-point (embed, layer[e], logits) max-abs and cosine
 *     divergence.
 *  3. Measured-traffic attribution — read the qexec.layer.<label>.*
 *     counters the observed quantized run actually produced and feed
 *     them through memsim's attributeMeasured(), yielding per-layer
 *     DRAM/compute energy and a bandwidth-bound latency split from
 *     measured (not predicted) traffic.
 *
 * Everything runs serially on purpose: emission order is the probe's
 * comparison key, and the audit is a measurement tool, not a serving
 * path.
 */

#ifndef GOBO_OBS_AUDIT_HH
#define GOBO_OBS_AUDIT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/qtensor.hh"
#include "core/quantizer.hh"
#include "memsim/memsim.hh"
#include "model/model.hh"
#include "obs/probe.hh"
#include "tensor/tensor.hh"

namespace gobo {

class PmuRegistry; // obs/pmu.hh; the audit only carries the pointer.

/** Static reconstruction fidelity of one quantized layer. */
struct LayerFidelity
{
    std::string name;      ///< Model layer name, "encoder0.query".
    std::string spanLabel; ///< qexec span/counter label, "enc[0].query".
    std::size_t elements = 0;
    unsigned bits = 0;
    double outlierFraction = 0.0;
    double compressionRatio = 1.0;
    double l1 = 0.0;     ///< mean |w - w_hat| over all elements.
    double mse = 0.0;    ///< mean squared reconstruction error.
    double maxAbs = 0.0; ///< worst single-element error.
    /** Index-slot population per centroid (see centroidOccupancy). */
    std::vector<std::uint64_t> occupancy;
    std::size_t deadCentroids = 0; ///< centroids no index selects.
    double topCentroidShare = 0.0; ///< largest bucket / elements.
    /** True when one centroid holds >= 90% of all index slots. */
    bool saturated = false;
};

/**
 * Fidelity of one quantized matrix against its FP32 original. Finite
 * for every well-formed input, including empty tensors, all-outlier
 * layers, and single-centroid tables (errors and shares report 0).
 */
LayerFidelity layerFidelity(std::string name, std::string span_label,
                            const Tensor &fp32, const QuantizedTensor &q);

/** What auditModel runs and under which technology parameters. */
struct AuditOptions
{
    ModelQuantOptions quant; ///< How to quantize the audited model.
    std::size_t sequences = 4;
    std::size_t seqLen = 32;
    std::uint64_t seed = 42; ///< Workload token seed.
    MemParams mem;           ///< Technology params for attribution.

    /**
     * Optional hardware-counter registry for the fourth pillar
     * (model validation). When set and available, the observed
     * quantized pass runs with per-span PMU sampling and the report
     * gains a per-layer modeled-vs-measured DRAM-byte comparison;
     * null (the default) or an unavailable backend skips the pillar
     * without touching the other three. The caller owns the registry
     * (gobo audit --pmu passes the process-default one; tests inject
     * a FakePmuBackend).
     */
    PmuRegistry *pmu = nullptr;
};

/**
 * Pillar 4 (optional): one FC layer's modeled DRAM traffic checked
 * against what the hardware moved. Modeled bytes are memsim's input —
 * the qexec.layer.* streamed-byte counters; measured bytes are the
 * LLC-miss deltas of the same layer's spans times the cache-line
 * size. The ratio is modeled/measured: ~1 validates the memory-bound
 * model, >1 means the working set stayed cached (misses undercount
 * traffic), <1 means extra traffic the model does not see (prefetch,
 * activations). Ratio is 0 when the hardware measured no misses —
 * never inf/NaN.
 */
struct PmuLayerValidation
{
    std::string layer;  ///< qexec span/counter label, "enc[0].query".
    std::uint64_t spans = 0; ///< spans that carried PMU deltas.
    std::uint64_t llcMisses = 0;
    std::uint64_t measuredBytes = 0; ///< llcMisses x cache line.
    std::uint64_t modeledBytes = 0;  ///< traffic bytesStreamed.
    double modeledOverMeasured = 0.0;
};

/** The full three-pillar report; see writeAuditJson for the schema. */
struct AuditReport
{
    std::string model;     ///< Config name.
    unsigned bits = 0;     ///< Base index width audited.
    WeightFormat format = WeightFormat::Unpacked;
    std::size_t sequences = 0;
    std::size_t seqLen = 0;
    std::uint64_t seed = 0;

    std::vector<LayerFidelity> fidelity;     ///< fcLayers order.
    std::vector<PointDivergence> divergence; ///< emission order.
    std::vector<MeasuredTraffic> traffic;    ///< fcLayers order.
    std::vector<LayerAttribution> attribution;

    // Whole-run aggregates over the measured layers.
    std::uint64_t totalBytesStreamed = 0;
    double totalMacs = 0.0;
    double totalEnergyMicroJ = 0.0;
    /** Sum of per-layer max(memory, compute) — serial layer stream. */
    double totalLatencyMs = 0.0;

    // Pillar 4 (only when AuditOptions::pmu was set and available).
    bool pmuAvailable = false;
    std::string pmuBackend = "off";
    std::size_t pmuCacheLineBytes = 0;
    std::vector<PmuLayerValidation> pmuValidation; ///< fcLayers order.
};

/**
 * Quantize `model` per `options.quant`, then run all three audit
 * pillars over `options.sequences` random sequences. The FP32 capture
 * pass and the quantized compare pass see identical tokens; the
 * quantized pass is observed, and its qexec.layer.* counters become
 * the measured-traffic inputs. MACs are derived as forwards x the
 * layer's per-forward multiplication count (the pooler runs at
 * sequence length 1).
 */
AuditReport auditModel(const BertModel &model,
                       const AuditOptions &options);

/** Write the report as JSON (schema "gobo-audit-v2"; EXPERIMENTS.md —
 * every v1 block is intact, v2 adds the top-level "pmu" block). */
void writeAuditJson(const AuditReport &report, std::ostream &os);

/** Render the report as console tables. */
void printAuditReport(const AuditReport &report, std::ostream &os);

} // namespace gobo

#endif // GOBO_OBS_AUDIT_HH
