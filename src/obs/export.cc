#include "obs/export.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "exec/scratch.hh"
#include "exec/threadpool.hh"
#include "util/table.hh"

namespace gobo {

namespace {

/**
 * Escape a string for a JSON literal. Names are ASCII in practice,
 * but a hostile or buggy name (control bytes, raw 0x80..0xFF that may
 * not be valid UTF-8) must still produce *valid* JSON: anything
 * outside printable ASCII is emitted as a \u00xx escape, so the
 * output is parseable regardless of what went in. Multi-byte UTF-8
 * renders as per-byte escapes — ugly but lossless at the byte level
 * and never malformed.
 */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default: {
            auto byte = static_cast<unsigned char>(c);
            if (byte < 0x20 || byte >= 0x7f) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", byte);
                out += buf;
            } else {
                out += c;
            }
          }
        }
    }
    return out;
}

/** Fixed-precision double for JSON (avoids locale surprises). */
std::string
jsonNum(double v, int precision = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

/**
 * jsonNum, except non-finite values (the NaN an empty histogram's
 * quantile returns by contract) become JSON null — "nan" is not valid
 * JSON and 0 would fake a measurement that never happened.
 */
std::string
jsonNumOrNull(double v, int precision = 3)
{
    return std::isfinite(v) ? jsonNum(v, precision) : "null";
}

} // namespace

void
writeChromeTrace(const Tracer &tracer, std::ostream &os)
{
    auto events = tracer.events();
    auto names = tracer.threadNames();
    os << "{\"traceEvents\": [\n";
    // Metadata ("ph":"M") first: without process_name/thread_name,
    // Perfetto shows anonymous numeric tracks and every trace reads
    // like a different program. tid 0 is the observer's constructing
    // thread ("main"); pool workers carry their default track names.
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"args\": {\"name\": \"gobo\"}}";
    for (const auto &[tid, name] : names)
        os << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": "
           << tid << ", \"args\": {\"name\": \"" << jsonEscape(name)
           << "\"}}";
    for (const TraceEvent &e : events) {
        os << ",\n  {\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"gobo\", \"ph\": \"X\", \"ts\": "
           << jsonNum(e.tsUs) << ", \"dur\": " << jsonNum(e.durUs)
           << ", \"pid\": 1, \"tid\": " << e.tid;
        if (!e.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < e.args.size(); ++a)
                os << (a ? ", " : "") << "\""
                   << jsonEscape(e.args[a].first)
                   << "\": " << e.args[a].second;
            os << "}";
        }
        os << "}";
    }
    os << "\n],\n\"displayTimeUnit\": \"ms\"";
    if (std::uint64_t dropped = tracer.droppedEvents()) {
        os << ",\n\"gobo_dropped_events\": " << dropped;
        // The JSON field is easy to miss; a truncated trace silently
        // misleads whoever loads it, so say so where humans look.
        std::fprintf(stderr,
                     "warning: trace dropped %llu events (per-thread "
                     "buffer full); the exported trace is incomplete\n",
                     static_cast<unsigned long long>(dropped));
    }
    os << "}\n";
}

void
printMetrics(const MetricsSnapshot &snap, std::ostream &os)
{
    ConsoleTable counters({"Counter", "Value"});
    for (const auto &c : snap.counters)
        if (c.value != 0)
            counters.addRow({c.name, std::to_string(c.value)});
    if (counters.rowCount() > 0) {
        counters.print(os);
        os << "\n";
    }

    ConsoleTable gauges({"Gauge", "Value"});
    for (const auto &g : snap.gauges)
        gauges.addRow({g.name, ConsoleTable::num(g.value, 4)});
    if (gauges.rowCount() > 0) {
        gauges.print(os);
        os << "\n";
    }

    ConsoleTable hists({"Histogram", "Count", "Overflow", "Mean", "p50",
                        "p90", "p99"});
    for (const auto &h : snap.histograms) {
        if (h.count == 0)
            continue;
        // Quantiles clamp at the last finite bound, so once a
        // meaningful share of samples overflowed they are only lower
        // bounds — mark them instead of printing a misleading p99.
        const char *lb = h.quantilesAreLowerBounds() ? ">=" : "";
        hists.addRow({h.name, std::to_string(h.count),
                      std::to_string(h.overflow()),
                      ConsoleTable::num(h.mean(), 1),
                      lb + ConsoleTable::num(h.quantile(0.50), 1),
                      lb + ConsoleTable::num(h.quantile(0.90), 1),
                      lb + ConsoleTable::num(h.quantile(0.99), 1)});
    }
    if (hists.rowCount() > 0)
        hists.print(os);
}

void
writeMetricsJson(const MetricsSnapshot &snap, std::ostream &os)
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &c : snap.counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(c.name)
           << "\": " << c.value;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &g : snap.gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(g.name)
           << "\": " << jsonNumOrNull(g.value, 6);
        first = false;
    }
    os << "\n  },\n  \"histograms\": [";
    first = true;
    for (const auto &h : snap.histograms) {
        os << (first ? "\n" : ",\n") << "    {\"name\": \""
           << jsonEscape(h.name) << "\", \"count\": " << h.count
           << ", \"overflow\": " << h.overflow()
           << ", \"quantiles_lower_bound\": "
           << (h.quantilesAreLowerBounds() ? "true" : "false")
           << ", \"sum\": " << jsonNum(h.sum)
           << ", \"mean\": " << jsonNum(h.mean())
           << ", \"p50\": " << jsonNumOrNull(h.quantile(0.50))
           << ", \"p90\": " << jsonNumOrNull(h.quantile(0.90))
           << ", \"p99\": " << jsonNumOrNull(h.quantile(0.99)) << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

void
appendPoolCounters(MetricsSnapshot &snap, const PoolTelemetry &pool)
{
    auto put = [&](std::string name, std::uint64_t value) {
        snap.counters.push_back({std::move(name), value});
    };
    put("pool.jobs", pool.jobs);
    put("pool.inline_runs", pool.inlineRuns);
    put("pool.nested_jobs", pool.nestedJobs);
    put("pool.worker_wakes", pool.wakes);
    put("pool.steals", pool.steals);
    put("pool.items_drained", pool.itemsDrained);
    for (std::size_t w = 0; w < pool.workerItems.size(); ++w)
        put("pool.worker[" + std::to_string(w) + "].items",
            pool.workerItems[w]);
}

void
appendScratchCounters(MetricsSnapshot &snap, const ScratchStats &s)
{
    auto put = [&](std::string name, std::uint64_t value) {
        snap.counters.push_back({std::move(name), value});
    };
    put("scratch.arenas", s.arenas);
    put("scratch.bytes_reserved", s.bytesReserved);
    put("scratch.decode_row_hits", s.decodeRowHits);
    put("scratch.decode_row_misses", s.decodeRowMisses);
    put("scratch.decode_cache_bytes", s.decodeCacheBytes);
    put("scratch.decode_cache_capacity", s.decodeCacheCapacity);
    put("scratch.decode_cache_evictions", s.decodeCacheEvictions);
}

void
appendTraceCounters(MetricsSnapshot &snap, const Tracer &tracer)
{
    snap.counters.push_back(
        {"trace.dropped_events", tracer.droppedEvents()});
}

void
appendPmuMetrics(MetricsSnapshot &snap, const PmuSnapshot &pmu)
{
    snap.gauges.push_back({"pmu.available", pmu.available ? 1.0 : 0.0});
    if (!pmu.available || !pmu.total.valid)
        return;
    auto put = [&](std::string name, std::uint64_t value) {
        snap.counters.push_back({std::move(name), value});
    };
    put("pmu.cycles", pmu.total.cycles);
    put("pmu.instructions", pmu.total.instructions);
    put("pmu.llc_misses", pmu.total.llcMisses);
    put("pmu.llc_references", pmu.total.llcReferences);
    put("pmu.stalled_backend", pmu.total.stalledBackend);
    for (const auto &w : pmu.workers)
        if (w.sample.valid)
            put("pmu.worker[" + std::to_string(w.worker) + "].llc_misses",
                w.sample.llcMisses);
    snap.gauges.push_back({"pmu.ipc", pmu.ipc()});
    snap.gauges.push_back({"pmu.llc_miss_ratio", pmu.llcMissRatio()});
    snap.gauges.push_back({"pmu.llc_miss_gbps", pmu.llcMissGBps()});
}

void
appendScratchGauges(MetricsSnapshot &snap, const ScratchStats &s)
{
    std::uint64_t lookups = s.decodeRowHits + s.decodeRowMisses;
    if (lookups == 0)
        return;
    snap.gauges.push_back(
        {"scratch.decode_row_hit_rate",
         static_cast<double>(s.decodeRowHits) /
             static_cast<double>(lookups)});
    if (s.decodeCacheCapacity > 0)
        snap.gauges.push_back(
            {"scratch.decode_cache_fill",
             static_cast<double>(s.decodeCacheBytes) /
                 static_cast<double>(s.decodeCacheCapacity)});
}

std::vector<SpanSummary>
summarizeSpans(const Tracer &tracer)
{
    std::map<std::string, SpanSummary> by_name;
    for (const auto &e : tracer.events()) {
        SpanSummary &s = by_name[e.name];
        s.name = e.name;
        ++s.count;
        s.totalUs += e.durUs;
    }
    std::vector<SpanSummary> out;
    out.reserve(by_name.size());
    for (auto &[name, s] : by_name) {
        s.meanUs = s.totalUs / static_cast<double>(s.count);
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const SpanSummary &a, const SpanSummary &b) {
                  return a.totalUs > b.totalUs;
              });
    return out;
}

std::vector<PmuSpanSummary>
summarizePmuSpans(const Tracer &tracer)
{
    std::map<std::string, PmuSpanSummary> by_name;
    for (const auto &e : tracer.events()) {
        // A span carries PMU data iff the ScopedSpan dtor appended the
        // triple; other args (request ids) share the vector, so find
        // by key rather than position.
        const std::uint64_t *miss = nullptr, *instr = nullptr,
                            *cyc = nullptr;
        for (const auto &[key, value] : e.args) {
            if (key == "llc_miss")
                miss = &value;
            else if (key == "instructions")
                instr = &value;
            else if (key == "cycles")
                cyc = &value;
        }
        if (!miss || !instr || !cyc)
            continue;
        PmuSpanSummary &s = by_name[e.name];
        s.name = e.name;
        ++s.count;
        s.llcMisses += *miss;
        s.instructions += *instr;
        s.cycles += *cyc;
        s.totalUs += e.durUs;
    }
    std::vector<PmuSpanSummary> out;
    out.reserve(by_name.size());
    for (auto &[name, s] : by_name)
        out.push_back(std::move(s));
    std::sort(out.begin(), out.end(),
              [](const PmuSpanSummary &a, const PmuSpanSummary &b) {
                  return a.llcMisses > b.llcMisses;
              });
    return out;
}

} // namespace gobo
