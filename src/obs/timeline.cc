#include "obs/timeline.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <unordered_set>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace gobo {

const char *
shedCauseName(ShedCause c)
{
    switch (c) {
      case ShedCause::None:
        return "none";
      case ShedCause::Overload:
        return "overload";
      case ShedCause::Deadline:
        return "deadline";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::size_t shedCapacity)
    : capacity(capacity), shedCapacity(shedCapacity)
{
    // Reserve up front: record() on the serve hot loop must never
    // allocate once the rings are warm.
    ring.reserve(capacity);
    shedRing.reserve(shedCapacity);
}

void
FlightRecorder::record(const RequestRecord &r)
{
    if (capacity == 0)
        return;
    ++total;
    if (ring.size() < capacity)
        ring.push_back(r);
    else {
        ring[cursor] = r;
        cursor = (cursor + 1) % capacity;
    }
    if (r.shed != ShedCause::None && shedCapacity != 0) {
        if (shedRing.size() < shedCapacity)
            shedRing.push_back(r);
        else {
            shedRing[shedCursor] = r;
            shedCursor = (shedCursor + 1) % shedCapacity;
        }
    }
}

std::vector<RequestRecord>
FlightRecorder::tail() const
{
    std::vector<RequestRecord> out = ring;
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(out.size());
    for (const RequestRecord &r : out)
        seen.insert(r.id);
    // Pinned shed records that already rolled out of the tail ring.
    for (const RequestRecord &r : shedRing)
        if (seen.insert(r.id).second)
            out.push_back(r);
    std::sort(out.begin(), out.end(),
              [](const RequestRecord &a, const RequestRecord &b) {
                  return a.id < b.id;
              });
    return out;
}

TimelineBuilder::TimelineBuilder(TimelineOptions options) : opt(options)
{
    fatalIf(opt.windowUs == 0, "timeline: windowUs must be positive");
    fatalIf(opt.maxWindows == 0, "timeline: maxWindows must be positive");
}

void
TimelineBuilder::push(Kind kind, std::uint64_t tUs, std::uint64_t a,
                      std::uint64_t b)
{
    events.push_back(
        {tUs, static_cast<std::uint64_t>(events.size()), kind, a, b});
}

void
TimelineBuilder::arrival(std::uint64_t tUs)
{
    push(Kind::Arrival, tUs);
}

void
TimelineBuilder::admit(std::uint64_t tUs)
{
    push(Kind::Admit, tUs);
}

void
TimelineBuilder::shedOverload(std::uint64_t tUs)
{
    push(Kind::ShedOverload, tUs);
}

void
TimelineBuilder::shedDeadline(std::uint64_t tUs)
{
    push(Kind::ShedDeadline, tUs);
}

void
TimelineBuilder::dispatch(std::uint64_t tUs, std::size_t lanesFilled,
                          std::size_t lanesTotal)
{
    push(Kind::Dispatch, tUs, lanesFilled, lanesTotal);
}

void
TimelineBuilder::complete(std::uint64_t tUs, std::uint64_t queueWaitUs)
{
    push(Kind::Complete, tUs, queueWaitUs);
}

void
TimelineBuilder::batchComplete(std::uint64_t tUs, std::uint64_t tokens)
{
    push(Kind::BatchComplete, tUs, tokens);
}

TimelineSeries
TimelineBuilder::build() const
{
    TimelineSeries series;
    series.windowUs = opt.windowUs;
    if (events.empty())
        return series;

    // Emission order is not time order (a tile's completion event is
    // emitted when the dispatch computes it); sorting by (timestamp,
    // emission seq) restores the virtual-time order while reproducing
    // the server's same-instant semantics — the server emits the
    // earlier-retiring event first, so at equal timestamps seq order
    // IS the completions-before-next-dispatch tie-break.
    std::vector<Event> ordered = events;
    std::sort(ordered.begin(), ordered.end(),
              [](const Event &a, const Event &b) {
                  return a.tUs != b.tUs ? a.tUs < b.tUs : a.seq < b.seq;
              });

    series.spanUs = ordered.back().tUs;
    std::size_t wanted = static_cast<std::size_t>(
                             series.spanUs / opt.windowUs)
                         + 1;
    std::size_t nwin = std::min(wanted, opt.maxWindows);
    series.clamped = wanted > opt.maxWindows;

    auto windowOf = [&](std::uint64_t tUs) {
        return std::min<std::size_t>(tUs / opt.windowUs, nwin - 1);
    };

    series.windows.resize(nwin);
    for (std::size_t w = 0; w < nwin; ++w) {
        series.windows[w].index = w;
        series.windows[w].startUs = w * opt.windowUs;
    }

    // Per-window queue-wait buckets, allocated lazily: the series is
    // bounded by maxWindows, and most windows of a healthy run
    // complete something, so this is at most nwin * (bounds + 1)
    // slots. Bucketing mirrors MetricsRegistry::observe exactly
    // (lower_bound over the shared latency bounds) so a window's
    // quantiles agree with what a per-window histogram would report.
    const std::vector<double> bounds = latencyBoundsUs();
    std::vector<std::vector<std::uint64_t>> waitBuckets(nwin);
    std::vector<double> waitSums(nwin, 0.0);

    // Queue-depth integral per window, in depth-microseconds. Integer
    // accumulation keeps it exactly reproducible; one window holds at
    // most windowUs * maxDepth, far inside u64.
    std::vector<std::uint64_t> depthIntegral(nwin, 0);
    std::uint64_t depth = 0;
    std::uint64_t lastUs = 0;
    auto integrate = [&](std::uint64_t toUs) {
        while (lastUs < toUs) {
            std::size_t w = windowOf(lastUs);
            std::uint64_t edge =
                w + 1 == nwin
                    ? toUs
                    : std::min<std::uint64_t>(
                          toUs, (static_cast<std::uint64_t>(w) + 1)
                                    * opt.windowUs);
            depthIntegral[w] += (edge - lastUs) * depth;
            lastUs = edge;
        }
    };

    for (const Event &e : ordered) {
        TimelineWindow &win = series.windows[windowOf(e.tUs)];
        switch (e.kind) {
          case Kind::Arrival:
            ++win.arrivals;
            break;
          case Kind::Admit:
            ++win.admitted;
            integrate(e.tUs);
            ++depth;
            break;
          case Kind::ShedOverload:
            ++win.shedOverload;
            break;
          case Kind::ShedDeadline:
            ++win.shedDeadline;
            integrate(e.tUs);
            --depth;
            break;
          case Kind::Dispatch:
            ++win.batches;
            win.lanesFilled += e.a;
            win.lanesTotal += e.b;
            break;
          case Kind::Complete: {
            ++win.completed;
            integrate(e.tUs);
            --depth;
            std::size_t w = windowOf(e.tUs);
            if (waitBuckets[w].empty())
                waitBuckets[w].assign(bounds.size() + 1, 0);
            auto it = std::lower_bound(bounds.begin(), bounds.end(),
                                       static_cast<double>(e.a));
            ++waitBuckets[w][static_cast<std::size_t>(
                it - bounds.begin())];
            waitSums[w] += static_cast<double>(e.a);
            break;
          }
          case Kind::BatchComplete:
            win.tokens += e.a;
            break;
        }
    }

    double windowSec = static_cast<double>(opt.windowUs) * 1e-6;
    for (std::size_t w = 0; w < nwin; ++w) {
        TimelineWindow &win = series.windows[w];
        win.tokensPerSec = static_cast<double>(win.tokens) / windowSec;
        // Depth after the final event contributes nothing (the serve
        // loop drains to zero before build()), so dividing by the full
        // window width is exact for every window including the last.
        win.meanQueueDepth = static_cast<double>(depthIntegral[w])
                             / static_cast<double>(opt.windowUs);
        win.occupancy =
            win.lanesTotal
                ? static_cast<double>(win.lanesFilled)
                      / static_cast<double>(win.lanesTotal)
                : 0.0;
        HistogramSnapshot h;
        h.bounds = bounds;
        if (!waitBuckets[w].empty()) {
            h.counts = waitBuckets[w];
            h.count = win.completed;
            h.sum = waitSums[w];
        } else {
            h.counts.assign(bounds.size() + 1, 0);
        }
        win.queueWaitP50Us = h.quantile(0.50);
        win.queueWaitP99Us = h.quantile(0.99);
    }
    return series;
}

namespace {

/** Shortest-roundtrip double for JSON; NaN (empty-window quantile)
 * becomes null — matches writeServeJson's convention. */
std::string
jnum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

} // namespace

void
writeTimelineWindows(const TimelineSeries &series, std::ostream &os,
                     int indent)
{
    std::string pad(static_cast<std::size_t>(indent), ' ');
    os << "[";
    for (std::size_t i = 0; i < series.windows.size(); ++i) {
        const TimelineWindow &w = series.windows[i];
        os << (i ? ",\n" : "\n") << pad << "{\"window\": " << w.index
           << ", \"start_us\": " << w.startUs
           << ", \"arrivals\": " << w.arrivals
           << ", \"admitted\": " << w.admitted
           << ", \"completed\": " << w.completed
           << ", \"shed_overload\": " << w.shedOverload
           << ", \"shed_deadline\": " << w.shedDeadline
           << ", \"batches\": " << w.batches
           << ", \"lanes_filled\": " << w.lanesFilled
           << ", \"lanes_total\": " << w.lanesTotal
           << ", \"tokens\": " << w.tokens
           << ", \"tokens_per_sec\": " << jnum(w.tokensPerSec)
           << ", \"mean_queue_depth\": " << jnum(w.meanQueueDepth)
           << ", \"occupancy\": " << jnum(w.occupancy)
           << ", \"queue_wait_us\": {\"p50\": " << jnum(w.queueWaitP50Us)
           << ", \"p99\": " << jnum(w.queueWaitP99Us) << "}}";
    }
    os << "]";
}

void
printTimeline(const TimelineSeries &series, std::ostream &os)
{
    double maxDepth = 0.0;
    for (const TimelineWindow &w : series.windows)
        maxDepth = std::max(maxDepth, w.meanQueueDepth);

    ConsoleTable t({"Win", "t0 s", "Arr", "Done", "ShedO", "ShedD",
                    "Tiles", "Occ", "Tok/s", "p99 wait ms", "Depth",
                    ""});
    for (const TimelineWindow &w : series.windows) {
        // 24-char bar scaled to the busiest window: the at-a-glance
        // queue-pressure profile of the whole run.
        std::size_t bar =
            maxDepth > 0.0
                ? static_cast<std::size_t>(
                      std::lround(w.meanQueueDepth / maxDepth * 24.0))
                : 0;
        t.addRow({std::to_string(w.index),
                  ConsoleTable::num(
                      static_cast<double>(w.startUs) * 1e-6, 1),
                  std::to_string(w.arrivals),
                  std::to_string(w.completed),
                  std::to_string(w.shedOverload),
                  std::to_string(w.shedDeadline),
                  std::to_string(w.batches),
                  ConsoleTable::num(w.occupancy, 3),
                  ConsoleTable::num(w.tokensPerSec, 0),
                  std::isfinite(w.queueWaitP99Us)
                      ? ConsoleTable::num(w.queueWaitP99Us / 1e3, 1)
                      : "-",
                  ConsoleTable::num(w.meanQueueDepth, 1),
                  std::string(bar, '#')});
    }
    t.print(os);
    if (series.clamped)
        os << "(series clamped at " << series.windows.size()
           << " windows; tail folded into the last)\n";
}

void
printWorstShedWindows(const TimelineSeries &series, std::size_t worst,
                      std::ostream &os)
{
    std::vector<const TimelineWindow *> shedding;
    for (const TimelineWindow &w : series.windows)
        if (w.shedOverload + w.shedDeadline > 0)
            shedding.push_back(&w);
    if (shedding.empty())
        return;
    std::stable_sort(shedding.begin(), shedding.end(),
                     [](const TimelineWindow *a, const TimelineWindow *b) {
                         return a->shedOverload + a->shedDeadline
                                > b->shedOverload + b->shedDeadline;
                     });
    if (shedding.size() > worst)
        shedding.resize(worst);

    os << "worst shed windows:\n";
    ConsoleTable t({"Win", "t0 s", "ShedO", "ShedD", "Arr", "Depth",
                    "p99 wait ms"});
    for (const TimelineWindow *w : shedding)
        t.addRow({std::to_string(w->index),
                  ConsoleTable::num(
                      static_cast<double>(w->startUs) * 1e-6, 1),
                  std::to_string(w->shedOverload),
                  std::to_string(w->shedDeadline),
                  std::to_string(w->arrivals),
                  ConsoleTable::num(w->meanQueueDepth, 1),
                  std::isfinite(w->queueWaitP99Us)
                      ? ConsoleTable::num(w->queueWaitP99Us / 1e3, 1)
                      : "-"});
    t.print(os);
}

} // namespace gobo
