#include "obs/trace.hh"

#include <algorithm>
#include <atomic>

namespace gobo {

namespace {

/** Shared with no one: tracer uids come from their own sequence. */
std::atomic<std::uint64_t> next_tracer_uid{1};

/** Per-thread cache mapping tracer uid -> buffer (see metrics.cc for
 * the rationale; linear scan over a tiny vector). */
struct BufferCache
{
    struct Entry
    {
        std::uint64_t uid;
        void *buffer;
    };
    std::vector<Entry> entries;

    void *
    find(std::uint64_t uid) const
    {
        for (const auto &e : entries)
            if (e.uid == uid)
                return e.buffer;
        return nullptr;
    }
};

thread_local BufferCache buffer_cache;

} // namespace

Tracer::Tracer()
    : uid(next_tracer_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch(std::chrono::steady_clock::now())
{
}

Tracer::~Tracer() = default;

double
Tracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

Tracer::Buffer &
Tracer::localBuffer()
{
    if (void *cached = buffer_cache.find(uid))
        return *static_cast<Buffer *>(cached);
    auto buffer = std::make_unique<Buffer>();
    Buffer *raw = buffer.get();
    {
        std::lock_guard lock(mutex);
        buffer->tid = static_cast<std::uint32_t>(buffers.size());
        buffers.push_back(std::move(buffer));
    }
    buffer_cache.entries.push_back({uid, raw});
    return *raw;
}

void
Tracer::record(std::string name, double ts_us, double dur_us)
{
    record(std::move(name), ts_us, dur_us, {});
}

void
Tracer::record(std::string name, double ts_us, double dur_us,
               std::vector<TraceArg> args)
{
    Buffer &buf = localBuffer();
    std::lock_guard lock(buf.mutex);
    if (buf.events.size() >= maxEventsPerThread) {
        ++buf.dropped;
        return;
    }
    buf.events.push_back(
        {std::move(name), ts_us, dur_us, buf.tid, std::move(args)});
}

void
Tracer::nameThread(std::string name)
{
    Buffer &buf = localBuffer();
    std::lock_guard lock(buf.mutex);
    buf.name = std::move(name);
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> all;
    std::lock_guard lock(mutex);
    for (const auto &buf : buffers) {
        std::lock_guard buf_lock(buf->mutex);
        all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsUs < b.tsUs;
                     });
    return all;
}

std::vector<std::pair<std::uint32_t, std::string>>
Tracer::threadNames() const
{
    std::vector<std::pair<std::uint32_t, std::string>> names;
    std::lock_guard lock(mutex);
    names.reserve(buffers.size());
    for (const auto &buf : buffers) {
        std::lock_guard buf_lock(buf->mutex);
        names.emplace_back(buf->tid,
                           buf->name.empty()
                               ? "worker-" + std::to_string(buf->tid)
                               : buf->name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::uint64_t dropped = 0;
    std::lock_guard lock(mutex);
    for (const auto &buf : buffers) {
        std::lock_guard buf_lock(buf->mutex);
        dropped += buf->dropped;
    }
    return dropped;
}

} // namespace gobo
