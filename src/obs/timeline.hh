/**
 * @file
 * Request-lifecycle flight recorder and windowed time-series telemetry.
 *
 * End-of-run aggregates (obs/metrics) answer "how did the run go";
 * they cannot answer "when did the queue saturate" or "which requests
 * were shed at 14:02". This layer adds the time axis, in *virtual*
 * time so everything stays deterministic and exactly gateable:
 *
 *  - A **flight recorder**: every request's terminal lifecycle record
 *    (arrival/admit/dispatch/complete timestamps, band, lane, batch
 *    id, queue wait, shed cause) lands in a bounded ring buffer. The
 *    last N records are always retrievable, and shed requests are
 *    additionally pinned in their own ring so a postmortem can see
 *    every recent shed's full lifecycle even after thousands of Ok
 *    responses have rolled the main ring over. The serve loop is the
 *    single writer, so recording is a cursor bump and a slot copy —
 *    no lock, no allocation past the up-front reserve.
 *
 *  - A **timeline builder**: lifecycle events accumulate into
 *    fixed-width virtual-time windows — per-window arrival/admission/
 *    completion/shed counts, dispatched tiles and lane occupancy,
 *    virtual tokens/sec, time-weighted mean queue depth, and p50/p99
 *    queue wait through the same bucket-interpolation machinery the
 *    metrics histograms use. The series is a pure function of the
 *    event stream, which for the serve layer is a pure function of
 *    (trace, options): byte-identical across machines, backends,
 *    thread counts, and weight formats, so bench_diff can gate it
 *    exactly. Events may be emitted out of time order (a tile's
 *    completion is known at dispatch); build() orders them by
 *    (timestamp, emission seq), which reproduces the server's
 *    completions-retire-before-dispatch tie-break.
 */

#ifndef GOBO_OBS_TIMELINE_HH
#define GOBO_OBS_TIMELINE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace gobo {

/** Why a request never produced logits. */
enum class ShedCause : std::uint8_t
{
    None,     ///< completed normally.
    Overload, ///< rejected at admission (queue at maxQueue).
    Deadline, ///< dropped at dispatch (queue wait blew the deadline).
};

/** Printable shed-cause name ("none" / "overload" / "deadline"). */
const char *shedCauseName(ShedCause c);

/** Timestamp value meaning "this lifecycle stage never happened". */
inline constexpr std::uint64_t kNeverUs = UINT64_MAX;

/** One request's complete lifecycle, written at its terminal event. */
struct RequestRecord
{
    std::uint64_t id = 0;
    std::uint32_t band = 0;   ///< length band, (len - 1) / bandWidth.
    std::uint32_t lane = UINT32_MAX; ///< lane in its tile; ~0 if shed.
    std::int64_t batchId = -1;       ///< dispatch tile id; -1 if shed
                                     ///< before dispatch.
    std::uint32_t tokens = 0;        ///< sequence length.
    std::uint64_t arrivalUs = 0;     ///< trace arrival (virtual).
    std::uint64_t admitUs = kNeverUs;    ///< admission; never if
                                         ///< overload-shed.
    std::uint64_t dispatchUs = kNeverUs; ///< tile dispatch; never if
                                         ///< shed before one.
    std::uint64_t completeUs = kNeverUs; ///< service completion.
    std::uint64_t queueWaitUs = 0;
    ShedCause shed = ShedCause::None;
};

/**
 * Bounded ring of terminal RequestRecords. Two rings: the tail ring
 * holds the last `capacity` records of any outcome; the shed ring
 * pins the last `shedCapacity` shed records so they survive being
 * rolled out of the tail by later completions. Single-writer by
 * design (the serve loop); readers call tail() after the run.
 * Capacity 0 disables recording entirely (record() is a branch).
 */
class FlightRecorder
{
  public:
    FlightRecorder(std::size_t capacity, std::size_t shedCapacity);

    bool enabled() const { return capacity != 0; }

    /** Append one terminal record (no-op when disabled). */
    void record(const RequestRecord &r);

    /** Lifecycle records ever handed to record(). */
    std::uint64_t recorded() const { return total; }

    /**
     * Every still-retrievable record — the tail ring merged with the
     * pinned shed ring, deduplicated by request id (a record rolled
     * out of the tail may survive in the shed ring), sorted by id.
     */
    std::vector<RequestRecord> tail() const;

  private:
    std::size_t capacity;
    std::size_t shedCapacity;
    std::vector<RequestRecord> ring;     ///< tail ring, cursor-indexed.
    std::vector<RequestRecord> shedRing; ///< pinned shed records.
    std::size_t cursor = 0;
    std::size_t shedCursor = 0;
    std::uint64_t total = 0;
};

/** Windowing policy for the time series. */
struct TimelineOptions
{
    /** Virtual width of one aggregation window. */
    std::uint64_t windowUs = 1000000;
    /**
     * Upper bound on emitted windows — the series must stay bounded
     * no matter how long the trace runs. Events past the cap fold
     * into the final window (and the series marks itself clamped).
     */
    std::size_t maxWindows = 4096;
};

/** Aggregates for one virtual-time window [startUs, startUs + width). */
struct TimelineWindow
{
    std::uint64_t index = 0;
    std::uint64_t startUs = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shedOverload = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t batches = 0;     ///< tiles dispatched this window.
    std::uint64_t lanesFilled = 0;
    std::uint64_t lanesTotal = 0;
    std::uint64_t tokens = 0; ///< tokens in tiles *completing* here.
    /** Virtual throughput: tokens / window width. */
    double tokensPerSec = 0.0;
    /** Time-weighted mean of in-system requests over the window. */
    double meanQueueDepth = 0.0;
    /** lanesFilled / lanesTotal; 0 when nothing dispatched. */
    double occupancy = 0.0;
    /** Queue-wait quantiles of completions in this window, via the
     * metrics bucket interpolation; NaN when nothing completed. */
    double queueWaitP50Us = 0.0;
    double queueWaitP99Us = 0.0;
};

/** The built series: every window from virtual t=0 to the last event. */
struct TimelineSeries
{
    std::uint64_t windowUs = 0;
    std::vector<TimelineWindow> windows;
    /** Virtual timestamp of the last event folded in. */
    std::uint64_t spanUs = 0;
    /** True when maxWindows clipped the tail into the last window. */
    bool clamped = false;
};

/**
 * Accumulates lifecycle events and builds the windowed series. All
 * timestamps are virtual; emission order need not be time order (see
 * file comment). Depth bookkeeping: admit() is +1, shedDeadline() and
 * complete() are -1, shedOverload() never entered the queue.
 */
class TimelineBuilder
{
  public:
    explicit TimelineBuilder(TimelineOptions opt);

    void arrival(std::uint64_t tUs);
    void admit(std::uint64_t tUs);
    void shedOverload(std::uint64_t tUs);
    void shedDeadline(std::uint64_t tUs);
    void dispatch(std::uint64_t tUs, std::size_t lanesFilled,
                  std::size_t lanesTotal);
    /** One request's service completion, with its virtual queue wait. */
    void complete(std::uint64_t tUs, std::uint64_t queueWaitUs);
    /** One tile's service completion, carrying its token count. */
    void batchComplete(std::uint64_t tUs, std::uint64_t tokens);

    /** Order events, integrate queue depth, emit every window. */
    TimelineSeries build() const;

  private:
    enum class Kind : std::uint8_t
    {
        Arrival,
        Admit,
        ShedOverload,
        ShedDeadline,
        Dispatch,
        Complete,
        BatchComplete,
    };

    struct Event
    {
        std::uint64_t tUs;
        std::uint64_t seq; ///< emission order, the time tie-break.
        Kind kind;
        std::uint64_t a = 0; ///< lanesFilled / queueWaitUs / tokens.
        std::uint64_t b = 0; ///< lanesTotal.
    };

    void push(Kind kind, std::uint64_t tUs, std::uint64_t a = 0,
              std::uint64_t b = 0);

    TimelineOptions opt;
    std::vector<Event> events;
};

/**
 * Serialize the windows array as JSON (an array of window objects,
 * one per line, `indent` spaces deep). Shared by the BENCH_serve.json
 * `timeline` block and the standalone gobo-timeline-v1 document so
 * the two can never drift. NaN quantiles become null.
 */
void writeTimelineWindows(const TimelineSeries &series, std::ostream &os,
                          int indent);

/**
 * Console rendering of the series — the `gobo top` view: one row per
 * window with arrival/completion/shed counts, virtual tok/s, mean
 * queue depth (plus a depth bar), occupancy, and p99 queue wait.
 */
void printTimeline(const TimelineSeries &series, std::ostream &os);

/**
 * Console table of the `worst` windows by shed count (skipping
 * windows that shed nothing) — the first place to look when a soak
 * went bad. No-op when nothing was shed.
 */
void printWorstShedWindows(const TimelineSeries &series, std::size_t worst,
                           std::ostream &os);

} // namespace gobo

#endif // GOBO_OBS_TIMELINE_HH
