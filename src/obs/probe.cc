#include "obs/probe.hh"

#include <algorithm>
#include <cmath>

namespace gobo {

ActivationProbe::ActivationProbe(ProbeMode mode) : phase(mode) {}

void
ActivationProbe::setMode(ProbeMode mode)
{
    std::lock_guard lock(mutex);
    phase = mode;
    for (auto &[name, state] : points)
        state.cursor = 0;
}

ProbeMode
ActivationProbe::mode() const
{
    std::lock_guard lock(mutex);
    return phase;
}

void
ActivationProbe::record(std::string_view point, const Tensor &t)
{
    if (!samplingEnabled())
        return;
    std::lock_guard lock(mutex);
    auto it = points.find(point);
    if (it == points.end()) {
        PointState fresh;
        fresh.order = points.size();
        it = points.emplace(std::string(point), std::move(fresh)).first;
    }
    PointState &state = it->second;

    if (phase == ProbeMode::Capture) {
        auto flat = t.flat();
        state.captured.emplace_back(flat.begin(), flat.end());
        return;
    }

    // Compare: pair with the next captured reference in emission order.
    if (state.cursor >= state.captured.size()
        || state.captured[state.cursor].size() != t.size()) {
        ++state.mismatches;
        if (state.cursor < state.captured.size())
            ++state.cursor;
        return;
    }
    const std::vector<float> &ref = state.captured[state.cursor++];
    auto flat = t.flat();
    double max_abs = 0.0, dot = 0.0, ref_sq = 0.0, obs_sq = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        double a = ref[i], b = flat[i];
        max_abs = std::max(max_abs, std::abs(a - b));
        dot += a * b;
        ref_sq += a * a;
        obs_sq += b * b;
    }
    // Cosine of two zero vectors is 1 by convention (identical), of
    // one zero vector 0 (nothing shared) — keeps every report finite.
    double cosine;
    if (ref_sq == 0.0 && obs_sq == 0.0)
        cosine = 1.0;
    else if (ref_sq == 0.0 || obs_sq == 0.0)
        cosine = 0.0;
    else
        cosine = dot / (std::sqrt(ref_sq) * std::sqrt(obs_sq));

    ++state.samples;
    state.maxAbs = std::max(state.maxAbs, max_abs);
    state.cosineSum += cosine;
    state.minCosine = std::min(state.minCosine, cosine);
}

std::size_t
ActivationProbe::capturedCount(std::string_view point) const
{
    std::lock_guard lock(mutex);
    auto it = points.find(point);
    return it == points.end() ? 0 : it->second.captured.size();
}

std::vector<PointDivergence>
ActivationProbe::divergence() const
{
    std::lock_guard lock(mutex);
    std::vector<PointDivergence> out(points.size());
    for (const auto &[name, state] : points) {
        PointDivergence &d = out[state.order];
        d.point = name;
        d.samples = state.samples;
        d.mismatches = state.mismatches;
        d.maxAbs = state.maxAbs;
        d.meanCosine = state.samples
                           ? state.cosineSum
                                 / static_cast<double>(state.samples)
                           : 1.0;
        d.minCosine = state.minCosine;
    }
    return out;
}

void
ActivationProbe::reset()
{
    std::lock_guard lock(mutex);
    points.clear();
}

void
probeActivation(Observer *obs, std::string_view point, const Tensor &t)
{
    if (probeAttached(obs))
        obs->probe->record(point, t);
}

} // namespace gobo
