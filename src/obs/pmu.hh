/**
 * @file
 * Hardware performance-counter telemetry (perf_event) behind the
 * observability stack.
 *
 * The paper's entire performance argument is that BERT inference is
 * memory-bound: src/memsim *models* DRAM traffic from counted bytes,
 * and the audit layer attributes energy from those counts — but
 * nothing checked the model against what the hardware actually did.
 * This module closes that loop: a PmuGroup is one perf_event counter
 * group (cycles, instructions, LLC misses, LLC references, stalled
 * backend cycles) opened for one thread and read with a single read()
 * via PERF_FORMAT_GROUP, so the five counts are one coherent sample.
 *
 * The backend is pluggable: LinuxPmuBackend wraps perf_event_open,
 * and FakePmuBackend produces deterministic synthetic counts for
 * tests and for hosts where the kernel denies access. Availability is
 * probed exactly once per process (perf_event_paranoid commonly
 * forbids counters inside containers); on denial the whole layer
 * degrades to disabled with a single stderr note and a
 * `pmu.available` gauge of 0 — the same zero-overhead-when-off
 * contract as the null Observer. GOBO_PMU=off forces the degrade
 * path, GOBO_PMU=fake forces the deterministic backend.
 *
 * Determinism contract: PMU instrumentation only *reads* counters
 * around compute; it never participates in arithmetic or scheduling,
 * so logits, checksums and every gated bench block are bit-identical
 * with PMU on, off, or unavailable (asserted in tests/test_pmu.cc).
 */

#ifndef GOBO_OBS_PMU_HH
#define GOBO_OBS_PMU_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gobo {

/** One coherent reading of the five-counter group. */
struct PmuSample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t llcReferences = 0;
    std::uint64_t stalledBackend = 0;
    bool valid = false; ///< false when the read failed or PMU is off.

    /** Counter-wise difference (this - begin); valid iff both are. */
    PmuSample since(const PmuSample &begin) const
    {
        PmuSample d;
        d.valid = valid && begin.valid;
        if (d.valid) {
            d.cycles = cycles - begin.cycles;
            d.instructions = instructions - begin.instructions;
            d.llcMisses = llcMisses - begin.llcMisses;
            d.llcReferences = llcReferences - begin.llcReferences;
            d.stalledBackend = stalledBackend - begin.stalledBackend;
        }
        return d;
    }
};

/**
 * Where counter groups come from. Implementations must be safe to
 * call from multiple threads: the registry opens one group per
 * observed thread and reads them concurrently.
 */
class PmuBackend
{
  public:
    virtual ~PmuBackend() = default;

    /** Human-readable backend name ("linux-perf", "fake", "off"). */
    virtual const char *name() const = 0;

    /**
     * Open the five-counter group for one thread. `tid` 0 means the
     * calling thread; a positive tid monitors that OS thread (how the
     * registry attaches to pool workers without running code on
     * them). Returns a backend-private handle, or -1 on failure.
     */
    virtual int openGroup(long tid) = 0;

    /** Read the group in one coherent sample. */
    virtual PmuSample readGroup(int handle) = 0;

    virtual void closeGroup(int handle) = 0;
};

/**
 * perf_event_open backend (Linux only; openGroup always fails
 * elsewhere). Counter values are scaled by time_enabled/time_running,
 * so multiplexed groups still report usable estimates.
 */
class LinuxPmuBackend final : public PmuBackend
{
  public:
    const char *name() const override { return "linux-perf"; }
    int openGroup(long tid) override;
    PmuSample readGroup(int handle) override;
    void closeGroup(int handle) override;

  private:
    // The handle handed out is the group-leader fd; the four follower
    // fds must stay open for the group's lifetime, so they are kept
    // here keyed by leader and closed together in closeGroup.
    std::mutex followerMutex;
    std::vector<std::pair<int, int>> followers; ///< (leader, follower).
};

/**
 * Deterministic synthetic backend: every read of a handle advances
 * that handle's private tick and reports counts that are a pure
 * function of the tick, so a test run sees the same deltas every
 * time, on every machine. Per-read increments (cycles 1000,
 * instructions 1500, LLC references 100, misses 10, stalled 200)
 * give finite, non-trivial derived metrics: IPC 1.5, miss ratio 0.1.
 */
class FakePmuBackend final : public PmuBackend
{
  public:
    const char *name() const override { return "fake"; }
    int openGroup(long tid) override;
    PmuSample readGroup(int handle) override;
    void closeGroup(int handle) override;

  private:
    std::mutex mutex;
    std::vector<std::uint64_t> ticks; ///< per-handle read counts.
    std::vector<bool> open;
};

/** RAII ownership of one opened counter group. */
class PmuGroup
{
  public:
    PmuGroup() = default;
    /** Open for `tid` (0 = calling thread) on `backend`. */
    PmuGroup(PmuBackend &backend, long tid);
    ~PmuGroup();

    PmuGroup(const PmuGroup &) = delete;
    PmuGroup &operator=(const PmuGroup &) = delete;
    PmuGroup(PmuGroup &&other) noexcept;
    PmuGroup &operator=(PmuGroup &&other) noexcept;

    bool ok() const { return handle >= 0; }

    /** One coherent sample; invalid when the group failed to open. */
    PmuSample sample() const;

  private:
    PmuBackend *backend = nullptr;
    int handle = -1;
};

/** How the process-wide PMU mode was resolved (see pmuMode()). */
enum class PmuMode
{
    Probe, ///< try the real backend, degrade silently if denied.
    Off,   ///< GOBO_PMU=off: never open a counter.
    Fake,  ///< GOBO_PMU=fake: deterministic synthetic backend.
};

/**
 * Parse a GOBO_PMU-style value: "off"/"0"/"disabled" force Off,
 * "fake" forces Fake, anything else (including null/empty) probes.
 * Exposed so tests can pin the grammar without mutating the
 * environment.
 */
PmuMode pmuModeFromSpec(const char *text);

/** The process-wide mode: GOBO_PMU parsed once and cached. */
PmuMode pmuMode();

/**
 * The process-wide backend under pmuMode(): the Linux backend when a
 * probe group opens (probed exactly once; on denial a single stderr
 * note is printed and nullptr is cached), the fake backend under
 * GOBO_PMU=fake, nullptr under GOBO_PMU=off or when unavailable.
 */
PmuBackend *defaultPmuBackend();

/** The cache-line size miss counts are multiplied by to get bytes
 * (sysconf when available, 64 otherwise). */
std::size_t pmuCacheLineBytes();

/** Per-worker reading, tagged with the pool slot it monitors. */
struct PmuWorkerSample
{
    std::size_t worker = 0; ///< pool worker slot index.
    PmuSample sample;
};

/** Everything a metrics export needs from one registry. */
struct PmuSnapshot
{
    bool available = false;
    std::string backend = "off";
    std::size_t cacheLineBytes = 64;
    double elapsedSeconds = 0.0; ///< since registry construction.
    PmuSample total;             ///< sum over every observed thread.
    std::vector<PmuWorkerSample> workers;

    // Derived figures; 0 when the inputs are 0 (never NaN).
    double ipc() const;
    double llcMissRatio() const;
    /** Measured DRAM read bandwidth: misses x line / elapsed. */
    double llcMissGBps() const;
};

/**
 * Owns every counter group of one observed run: a lazily-opened
 * per-thread group for whichever threads record spans (keyed like the
 * Tracer's per-thread buffers), plus explicitly attached groups that
 * monitor pool workers by tid. Null-observer economics apply: a
 * registry is only constructed when --pmu asks for one, and a
 * registry whose backend is unavailable never opens a group — every
 * sample comes back invalid and exports render `pmu.available` 0.
 */
class PmuRegistry
{
  public:
    /** Registry over the process-default backend (may be null). */
    PmuRegistry();
    /** Registry over an injected backend (tests: FakePmuBackend). */
    explicit PmuRegistry(PmuBackend &backend);
    ~PmuRegistry();

    PmuRegistry(const PmuRegistry &) = delete;
    PmuRegistry &operator=(const PmuRegistry &) = delete;

    /** True when the backend exists (groups may still fail to open). */
    bool available() const { return backend != nullptr; }

    const char *backendName() const
    {
        return backend ? backend->name() : "off";
    }

    /**
     * Sample the calling thread's group, opening it on first use.
     * Invalid sample when the backend is off — one branch, no
     * syscall, so span instrumentation stays free when PMU is down.
     */
    PmuSample threadSample();

    /**
     * Open one monitoring group per pool worker tid (tid 0 entries —
     * platforms without gettid — are skipped). Idempotent per call
     * site: calling again replaces the previous worker groups.
     */
    void attachWorkers(const std::vector<long> &tids);

    /** Totals + per-worker samples + derived-metric inputs. */
    PmuSnapshot snapshot() const;

  private:
    struct Impl;

    PmuBackend *backend = nullptr;
    std::unique_ptr<Impl> impl;
};

} // namespace gobo

#endif // GOBO_OBS_PMU_HH
