/**
 * @file
 * ActivationProbe — runtime divergence probes for the audit layer.
 *
 * A probe rides on an Observer (`Observer::probe`, null by default)
 * and records named activation points ("embed", "layer[e]", "logits")
 * as the engines emit them. It runs in two phases: Capture stores the
 * FP32 reference activations in emission order; Compare replays the
 * same workload through another engine and folds per-point divergence
 * (max-abs difference and cosine similarity) against the captured
 * reference instead of storing anything.
 *
 * Contract: probe sites only *read* activations after the compute that
 * produced them — they never touch float state the engines consume —
 * so an attached probe cannot change results, and with sampling
 * disabled (`setSampling(false)`) a probe records nothing at all:
 * probes-off runs are bit-identical to unobserved runs (asserted in
 * tests/test_audit.cc). Emission order is the comparison key, so drive
 * probed runs with serial single-sequence calls (the audit harness
 * does); parallel batches record safely but interleave
 * nondeterministically.
 */

#ifndef GOBO_OBS_PROBE_HH
#define GOBO_OBS_PROBE_HH

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/observer.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** What record() does with an incoming activation. */
enum class ProbeMode
{
    Capture, ///< store the tensor as the reference for this point.
    Compare, ///< fold divergence against the next captured reference.
};

/** Divergence of one probe point across every compared sample. */
struct PointDivergence
{
    std::string point;          ///< "embed", "layer[3]", "logits", ...
    std::size_t samples = 0;    ///< successfully compared tensors.
    std::size_t mismatches = 0; ///< missing reference or shape skew.
    double maxAbs = 0.0;        ///< max |ref - observed| over samples.
    double meanCosine = 1.0;    ///< mean cosine similarity.
    double minCosine = 1.0;     ///< worst cosine similarity.
};

/** Two-phase activation recorder; see file comment for the protocol. */
class ActivationProbe
{
  public:
    explicit ActivationProbe(ProbeMode mode = ProbeMode::Capture);

    /** Switch phase; Compare restarts every point's replay cursor. */
    void setMode(ProbeMode mode);
    ProbeMode mode() const;

    /**
     * Sampling gate: while false, record() returns before touching any
     * state — the "probes off" configuration the bit-identity contract
     * test pins down.
     */
    void setSampling(bool enabled)
    {
        sampling.store(enabled, std::memory_order_relaxed);
    }
    bool samplingEnabled() const
    {
        return sampling.load(std::memory_order_relaxed);
    }

    /** Record one activation at a named point (thread-safe). */
    void record(std::string_view point, const Tensor &t);

    /** Captured reference count for one point (0 when unknown). */
    std::size_t capturedCount(std::string_view point) const;

    /** Per-point divergence, in first-emission order. */
    std::vector<PointDivergence> divergence() const;

    /** Drop all captured references and divergence state. */
    void reset();

  private:
    struct PointState
    {
        std::size_t order = 0; ///< first-emission rank, for reporting.
        std::vector<std::vector<float>> captured;
        std::size_t cursor = 0; ///< next reference to compare against.
        std::size_t samples = 0;
        std::size_t mismatches = 0;
        double maxAbs = 0.0;
        double cosineSum = 0.0;
        double minCosine = 1.0;
    };

    mutable std::mutex mutex;
    std::map<std::string, PointState, std::less<>> points;
    ProbeMode phase;
    std::atomic<bool> sampling{true};
};

/** True when `obs` carries a probe that is currently sampling. */
inline bool
probeAttached(const Observer *obs)
{
    return obs && obs->probe && obs->probe->samplingEnabled();
}

/**
 * Record `t` at `point` when a sampling probe is attached; otherwise a
 * couple of branches. Instrumentation sites build point names only
 * after checking probeAttached().
 */
void probeActivation(Observer *obs, std::string_view point,
                     const Tensor &t);

} // namespace gobo

#endif // GOBO_OBS_PROBE_HH
