#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace gobo {

namespace {

/** Monotonic registry uid source; uids are never reused, so stale
 * thread-local cache entries for destroyed registries can never be
 * matched again. */
std::atomic<std::uint64_t> next_registry_uid{1};

/**
 * Per-thread cache mapping registry uid -> shard owned by that
 * registry. A plain vector: a thread typically records into one or two
 * registries, so a linear scan beats any map.
 */
struct ShardCache
{
    struct Entry
    {
        std::uint64_t uid;
        void *shard;
    };
    std::vector<Entry> entries;

    void *
    find(std::uint64_t uid) const
    {
        for (const auto &e : entries)
            if (e.uid == uid)
                return e.shard;
        return nullptr;
    }
};

thread_local ShardCache shard_cache;

/** Portable fetch_add for a double held as bit-cast uint64. */
void
atomicAddDouble(std::atomic<std::uint64_t> &bits, double delta)
{
    std::uint64_t old = bits.load(std::memory_order_relaxed);
    for (;;) {
        double next = std::bit_cast<double>(old) + delta;
        if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(next),
                                       std::memory_order_relaxed))
            return;
    }
}

} // namespace

double
HistogramSnapshot::mean() const
{
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
HistogramSnapshot::quantile(double q) const
{
    fatalIf(q < 0.0 || q > 1.0, "histogram quantile q out of [0,1]: ", q);
    // Empty histogram: NaN, by contract. 0 would be indistinguishable
    // from a genuine 0-latency quantile — a serve run that shed every
    // request must not report p50 = 0 as if latency were excellent.
    if (count == 0)
        return std::numeric_limits<double>::quiet_NaN();
    // Rank of the requested quantile among `count` observations.
    double rank = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        std::uint64_t prev = cum;
        cum += counts[b];
        if (static_cast<double>(cum) < rank || counts[b] == 0)
            continue;
        if (b >= bounds.size()) // overflow bucket: no finite upper edge
            return bounds.back();
        double lower = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
        double upper = bounds[b];
        double frac = (rank - static_cast<double>(prev))
                      / static_cast<double>(counts[b]);
        return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    return bounds.back();
}

std::uint64_t
HistogramSnapshot::overflow() const
{
    return counts.empty() ? 0 : counts.back();
}

double
HistogramSnapshot::overflowFraction() const
{
    return count ? static_cast<double>(overflow())
                       / static_cast<double>(count)
                 : 0.0;
}

bool
HistogramSnapshot::quantilesAreLowerBounds() const
{
    return overflowFraction() > 0.01;
}

const MetricsSnapshot::CounterValue *
MetricsSnapshot::findCounter(std::string_view name) const
{
    for (const auto &c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

const HistogramSnapshot *
MetricsSnapshot::findHistogram(std::string_view name) const
{
    for (const auto &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

const MetricsSnapshot::GaugeValue *
MetricsSnapshot::findGauge(std::string_view name) const
{
    for (const auto &g : gauges)
        if (g.name == name)
            return &g;
    return nullptr;
}

std::vector<double>
latencyBoundsUs(std::size_t per_decade)
{
    fatalIf(per_decade == 0, "latencyBoundsUs needs per_decade > 0");
    std::vector<double> bounds;
    // 1 us .. 10 s is 7 decades.
    for (std::size_t i = 0; i <= 7 * per_decade; ++i)
        bounds.push_back(std::pow(
            10.0, static_cast<double>(i) / static_cast<double>(per_decade)));
    return bounds;
}

MetricsRegistry::MetricsRegistry()
    : uid(next_registry_uid.fetch_add(1, std::memory_order_relaxed))
{
}

MetricsRegistry::~MetricsRegistry() = default;

CounterId
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard lock(mutex);
    for (std::size_t i = 0; i < counterNames.size(); ++i)
        if (counterNames[i] == name)
            return {static_cast<std::uint32_t>(i)};
    counterNames.push_back(name);
    return {static_cast<std::uint32_t>(counterNames.size() - 1)};
}

HistogramId
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard lock(mutex);
    for (std::size_t i = 0; i < histogramDefs.size(); ++i)
        if (histogramDefs[i].name == name)
            return {static_cast<std::uint32_t>(i)};
    fatalIf(bounds.empty(), "histogram '", name, "' needs bounds");
    for (std::size_t i = 0; i < bounds.size(); ++i)
        fatalIf(!std::isfinite(bounds[i])
                    || (i > 0 && bounds[i] <= bounds[i - 1]),
                "histogram '", name,
                "' bounds must be finite and strictly ascending");
    histogramDefs.push_back({name, std::move(bounds)});
    return {static_cast<std::uint32_t>(histogramDefs.size() - 1)};
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    if (void *cached = shard_cache.find(uid))
        return *static_cast<Shard *>(cached);
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
        std::lock_guard lock(mutex);
        shards.push_back(std::move(shard));
    }
    growShard(*raw);
    shard_cache.entries.push_back({uid, raw});
    return *raw;
}

void
MetricsRegistry::growShard(Shard &shard)
{
    // Build the grown arrays outside the lock, publish under it so a
    // concurrent snapshot() never observes a half-swapped shard. Only
    // the owning thread writes (and grows) a shard, so copying the old
    // values without the lock is race-free.
    std::lock_guard lock(mutex);
    if (shard.counterCount < counterNames.size()) {
        auto grown = std::make_unique<std::atomic<std::uint64_t>[]>(
            counterNames.size());
        for (std::size_t i = 0; i < counterNames.size(); ++i)
            grown[i].store(i < shard.counterCount
                               ? shard.counters[i].load(
                                     std::memory_order_relaxed)
                               : 0,
                           std::memory_order_relaxed);
        shard.counters = std::move(grown);
        shard.counterCount = counterNames.size();
    }
    while (shard.hists.size() < histogramDefs.size()) {
        auto hs = std::make_unique<Shard::HistShard>();
        hs->bucketCount = histogramDefs[shard.hists.size()].bounds.size() + 1;
        hs->buckets =
            std::make_unique<std::atomic<std::uint64_t>[]>(hs->bucketCount);
        for (std::size_t b = 0; b < hs->bucketCount; ++b)
            hs->buckets[b].store(0, std::memory_order_relaxed);
        shard.hists.push_back(std::move(hs));
    }
}

void
MetricsRegistry::add(CounterId id, std::uint64_t delta)
{
    if (!id.valid())
        return;
    Shard &shard = localShard();
    if (id.index >= shard.counterCount)
        growShard(shard);
    panicIf(id.index >= shard.counterCount,
            "counter id from a different registry");
    shard.counters[id.index].fetch_add(delta, std::memory_order_relaxed);
}

void
MetricsRegistry::observe(HistogramId id, double value)
{
    if (!id.valid())
        return;
    Shard &shard = localShard();
    if (id.index >= shard.hists.size())
        growShard(shard);
    panicIf(id.index >= shard.hists.size(),
            "histogram id from a different registry");

    const std::vector<double> *bounds;
    {
        // Bounds are append-only and never mutated after registration,
        // but the defs vector can reallocate under registration; take
        // the pointer under the lock. Registration during a hot loop
        // does not happen (ids are interned up front), so this lock is
        // uncontended in practice.
        std::lock_guard lock(mutex);
        bounds = &histogramDefs[id.index].bounds;
    }
    auto it = std::lower_bound(bounds->begin(), bounds->end(), value);
    auto bucket = static_cast<std::size_t>(it - bounds->begin());

    Shard::HistShard &hs = *shard.hists[id.index];
    hs.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    hs.count.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(hs.sumBits, value);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard lock(mutex);
    MetricsSnapshot snap;
    snap.counters.resize(counterNames.size());
    for (std::size_t i = 0; i < counterNames.size(); ++i)
        snap.counters[i].name = counterNames[i];
    snap.histograms.resize(histogramDefs.size());
    for (std::size_t i = 0; i < histogramDefs.size(); ++i) {
        snap.histograms[i].name = histogramDefs[i].name;
        snap.histograms[i].bounds = histogramDefs[i].bounds;
        snap.histograms[i].counts.assign(
            histogramDefs[i].bounds.size() + 1, 0);
    }
    for (const auto &shard : shards) {
        for (std::size_t i = 0; i < shard->counterCount; ++i)
            snap.counters[i].value +=
                shard->counters[i].load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < shard->hists.size(); ++i) {
            const Shard::HistShard &hs = *shard->hists[i];
            for (std::size_t b = 0; b < hs.bucketCount; ++b)
                snap.histograms[i].counts[b] +=
                    hs.buckets[b].load(std::memory_order_relaxed);
            snap.histograms[i].count +=
                hs.count.load(std::memory_order_relaxed);
            snap.histograms[i].sum += std::bit_cast<double>(
                hs.sumBits.load(std::memory_order_relaxed));
        }
    }
    return snap;
}

} // namespace gobo
