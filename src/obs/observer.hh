/**
 * @file
 * Observer — the one handle instrumented code touches.
 *
 * Bundles a MetricsRegistry and a Tracer and pre-interns every
 * hot-path metric the execution stack records, so instrumentation
 * sites pay an id-indexed shard update instead of a name lookup. The
 * handle is threaded through ExecContext as a nullable pointer; a null
 * observer is the default and costs exactly one branch per span or
 * counter — no clock read, no string construction, no allocation.
 *
 * Determinism contract: observers only *read* timestamps and *count*
 * events around compute; they never participate in float arithmetic or
 * alter scheduling, so Serial/Parallel and Packed/Unpacked outputs
 * stay bit-identical with observability on (asserted in
 * tests/test_obs.cc).
 */

#ifndef GOBO_OBS_OBSERVER_HH
#define GOBO_OBS_OBSERVER_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.hh"
#include "obs/pmu.hh"
#include "obs/trace.hh"

namespace gobo {

class ActivationProbe; // obs/probe.hh; observers only carry the pointer.

/** Metrics + tracing for one run; see file comment for the contract. */
class Observer
{
  public:
    Observer()
        : qexecForwards(metrics.counter("qexec.forwards")),
          qexecRowsDecoded(metrics.counter("qexec.rows_decoded")),
          qexecBytesStreamed(metrics.counter("qexec.bytes_streamed")),
          qexecOutlierCorrections(
              metrics.counter("qexec.outlier_corrections")),
          qexecDecodeLut(metrics.counter("qexec.decode.lut")),
          qexecDecodeGroup24(metrics.counter("qexec.decode.group24")),
          qexecDecodeScalar(metrics.counter("qexec.decode.scalar")),
          qexecDecodeUnpacked(metrics.counter("qexec.decode.unpacked")),
          sessionSequences(metrics.counter("session.sequences")),
          sessionBatches(metrics.counter("session.batches")),
          sessionTokens(metrics.counter("session.tokens")),
          sequenceLatencyUs(metrics.histogram(
              "session.sequence_latency_us", latencyBoundsUs())),
          batchLatencyUs(metrics.histogram("session.batch_latency_us",
                                           latencyBoundsUs())),
          serveAdmitted(metrics.counter("serve.admitted")),
          serveShedOverload(metrics.counter("serve.shed_overload")),
          serveShedDeadline(metrics.counter("serve.shed_deadline")),
          serveBatches(metrics.counter("serve.batches")),
          serveLanesFilled(metrics.counter("serve.lanes_filled")),
          serveLanesTotal(metrics.counter("serve.lanes_total")),
          serveLatencyUs(metrics.histogram("serve.request_latency_us",
                                           latencyBoundsUs())),
          serveQueueWaitUs(metrics.histogram("serve.queue_wait_us",
                                             latencyBoundsUs()))
    {
        // The constructing thread is the run's main thread: naming its
        // track here is what lets the Chrome trace distinguish it from
        // the pool workers (which render as "worker-<tid>").
        tracer.nameThread("main");
    }

    MetricsRegistry metrics;
    Tracer tracer;

    /**
     * Optional divergence probe (obs/probe.hh); null by default.
     * Engines hand activations to it through probeActivation(), which
     * costs two branches when no sampling probe is attached.
     */
    ActivationProbe *probe = nullptr;

    /**
     * Optional hardware-counter registry (obs/pmu.hh); null by
     * default. When attached (gobo infer/audit --pmu), every
     * ScopedSpan brackets its interval with per-thread PMU samples and
     * annotates the trace with llc_miss / instructions / cycles
     * deltas. Two branches per span when absent, same economics as the
     * probe — and, like everything else here, sampling never touches
     * compute, so logits stay bit-identical either way.
     */
    PmuRegistry *pmu = nullptr;

    // Pre-interned ids for the instrumented hot paths. Counter names
    // follow the `subsystem.event[.variant]` scheme DESIGN.md §9
    // documents; histograms carry a `_us` unit suffix.
    CounterId qexecForwards;
    CounterId qexecRowsDecoded;
    CounterId qexecBytesStreamed;
    CounterId qexecOutlierCorrections;
    CounterId qexecDecodeLut;
    CounterId qexecDecodeGroup24;
    CounterId qexecDecodeScalar;
    CounterId qexecDecodeUnpacked;
    CounterId sessionSequences;
    CounterId sessionBatches;
    CounterId sessionTokens;
    HistogramId sequenceLatencyUs;
    HistogramId batchLatencyUs;
    // Serving-layer ids (src/serve): admission outcome counters, tile
    // accounting, and the per-request virtual-latency histograms.
    CounterId serveAdmitted;
    CounterId serveShedOverload;
    CounterId serveShedDeadline;
    CounterId serveBatches;
    CounterId serveLanesFilled;
    CounterId serveLanesTotal;
    HistogramId serveLatencyUs;
    HistogramId serveQueueWaitUs;

    /** One branch when `obs` is null — the null-observer contract. */
    static void
    count(Observer *obs, CounterId id, std::uint64_t delta = 1)
    {
        if (obs)
            obs->metrics.add(id, delta);
    }

    /** Per-layer qexec counter ids (qexec.layer.<label>.*). */
    struct QexecLayerIds
    {
        CounterId forwards;
        CounterId rowsDecoded;
        CounterId bytesStreamed;
        CounterId outlierCorrections;
        // Decoded-row cache outcome per row block (Packed only):
        // rows served from a scratch-arena slot vs rows decoded. The
        // pooler showing hits > 0 across forwards is the decode
        // cache's whole point.
        CounterId decodeCacheHits;
        CounterId decodeCacheMisses;
    };

    /**
     * Intern (or look up) the per-layer counter quartet for one span
     * label. These feed the audit layer's measured-traffic energy
     * attribution, so they are keyed by the same labels the trace
     * spans use ("enc[0].query", "pooler"). One mutex + map lookup per
     * observed layer forward — heavier than the pre-interned global
     * ids, but still outside every kernel loop; the returned reference
     * stays valid for the observer's lifetime (std::map nodes are
     * stable).
     */
    const QexecLayerIds &
    layerIds(const std::string &label)
    {
        std::lock_guard lock(layerIdsMutex);
        auto it = layerIdsByLabel.find(label);
        if (it == layerIdsByLabel.end()) {
            QexecLayerIds ids;
            std::string prefix = "qexec.layer." + label;
            ids.forwards = metrics.counter(prefix + ".forwards");
            ids.rowsDecoded = metrics.counter(prefix + ".rows_decoded");
            ids.bytesStreamed =
                metrics.counter(prefix + ".bytes_streamed");
            ids.outlierCorrections =
                metrics.counter(prefix + ".outlier_corrections");
            ids.decodeCacheHits =
                metrics.counter(prefix + ".decode_cache_hits");
            ids.decodeCacheMisses =
                metrics.counter(prefix + ".decode_cache_misses");
            it = layerIdsByLabel.emplace(label, ids).first;
        }
        return it->second;
    }

    /**
     * Intern (or look up) the counter id for one kernel tier
     * ("exec.kernel.generic", "exec.kernel.avx2"). Sessions bump it at
     * each forward entry point, so metric dumps — and the bench JSON
     * built from them — record which SIMD tier actually ran.
     */
    CounterId
    kernelTierId(const std::string &tier)
    {
        std::lock_guard lock(layerIdsMutex);
        auto it = kernelTierIds.find(tier);
        if (it == kernelTierIds.end())
            it = kernelTierIds
                     .emplace(tier, metrics.counter("exec.kernel." + tier))
                     .first;
        return it->second;
    }

  private:
    std::mutex layerIdsMutex;
    std::map<std::string, Observer::QexecLayerIds> layerIdsByLabel;
    std::map<std::string, CounterId> kernelTierIds;
};

/**
 * RAII span: records [construction, destruction) on the calling
 * thread's trace track. With a null observer the constructor is a
 * single branch; name formatting and clock reads happen only when an
 * observer is attached.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Observer *obs, const char *name) : obs(obs)
    {
        if (obs) {
            spanName = name;
            begin();
        }
    }

    /** Span named "prefix[index]" — per-layer / per-sequence spans. */
    ScopedSpan(Observer *obs, const char *prefix, std::size_t index)
        : obs(obs)
    {
        if (obs) {
            spanName = prefix;
            spanName += '[';
            spanName += std::to_string(index);
            spanName += ']';
            begin();
        }
    }

    ScopedSpan(Observer *obs, std::string name) : obs(obs)
    {
        if (obs) {
            spanName = std::move(name);
            begin();
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /**
     * Annotate the span with a key=value arg ("request": 17) rendered
     * into the Chrome trace's args object — request/batch correlation
     * for serve spans. One branch with a null observer, like the
     * constructor.
     */
    void
    arg(const char *key, std::uint64_t value)
    {
        if (obs)
            spanArgs.emplace_back(key, value);
    }

    ~ScopedSpan()
    {
        if (obs) {
            // PMU end-sample before the end timestamp: the counter
            // read is the expensive part, keep it inside the span.
            if (obs->pmu && pmuBegin.valid) {
                PmuSample delta =
                    obs->pmu->threadSample().since(pmuBegin);
                if (delta.valid) {
                    spanArgs.emplace_back("llc_miss", delta.llcMisses);
                    spanArgs.emplace_back("instructions",
                                          delta.instructions);
                    spanArgs.emplace_back("cycles", delta.cycles);
                }
            }
            obs->tracer.record(std::move(spanName), beginUs,
                               obs->tracer.nowUs() - beginUs,
                               std::move(spanArgs));
        }
    }

  private:
    /** Shared begin path once the span is known to be live: start
     * timestamp, then the PMU begin-sample (invalid when no registry
     * is attached or the backend is down — the dtor's cue to skip). */
    void
    begin()
    {
        beginUs = obs->tracer.nowUs();
        if (obs->pmu)
            pmuBegin = obs->pmu->threadSample();
    }

    Observer *obs;
    std::string spanName;
    std::vector<TraceArg> spanArgs;
    PmuSample pmuBegin;
    double beginUs = 0.0;
};

} // namespace gobo

#endif // GOBO_OBS_OBSERVER_HH
