/**
 * @file
 * Exporters over the observability subsystem.
 *
 * Three output shapes: Chrome trace-event JSON from a Tracer (loads in
 * Perfetto / chrome://tracing), a console rendering of a
 * MetricsSnapshot (counters + p50/p90/p99 latency tables via
 * util/table), and machine-readable metrics JSON. Plus two folds:
 * thread-pool telemetry into snapshot counters, and per-name span
 * summaries (count/total/mean) out of a trace — what
 * bench/micro_forward records per layer.
 */

#ifndef GOBO_OBS_EXPORT_HH
#define GOBO_OBS_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gobo {

struct PoolTelemetry;
struct ScratchStats;

/**
 * Write `tracer`'s events as Chrome trace-event JSON
 * ({"traceEvents": [...]}; "ph":"X" complete events, microsecond
 * timestamps). Loadable in Perfetto and chrome://tracing.
 */
void writeChromeTrace(const Tracer &tracer, std::ostream &os);

/**
 * Render the snapshot for humans: a counter table (zero-valued
 * counters are skipped) and one row per histogram with count, mean and
 * p50/p90/p99.
 */
void printMetrics(const MetricsSnapshot &snap, std::ostream &os);

/** Write the snapshot as machine JSON (counters + histograms). */
void writeMetricsJson(const MetricsSnapshot &snap, std::ostream &os);

/**
 * Fold thread-pool telemetry into `snap` as `pool.*` counters (jobs,
 * inline runs, nested jobs, wakes, steals, items drained, per-worker
 * drain counts) so one exporter covers the whole stack.
 */
void appendPoolCounters(MetricsSnapshot &snap, const PoolTelemetry &pool);

/**
 * Fold scratch-arena statistics (exec/scratch.hh) into `snap` as
 * `scratch.*` counters: live arenas, bytes reserved, and decoded-row
 * cache hits/misses.
 */
void appendScratchCounters(MetricsSnapshot &snap, const ScratchStats &s);

/**
 * Fold tracer health into `snap` as `trace.*` counters — today just
 * `trace.dropped_events`, the spans discarded because a per-thread
 * buffer filled. Nonzero means every trace-derived number (span
 * summaries, Chrome export) undercounts.
 */
void appendTraceCounters(MetricsSnapshot &snap, const Tracer &tracer);

/** Aggregate of every span sharing one name. */
struct SpanSummary
{
    std::string name;
    std::uint64_t count = 0;
    double totalUs = 0.0;
    double meanUs = 0.0;
};

/** Per-name span aggregates, sorted by total time descending. */
std::vector<SpanSummary> summarizeSpans(const Tracer &tracer);

} // namespace gobo

#endif // GOBO_OBS_EXPORT_HH
