/**
 * @file
 * Exporters over the observability subsystem.
 *
 * Three output shapes: Chrome trace-event JSON from a Tracer (loads in
 * Perfetto / chrome://tracing), a console rendering of a
 * MetricsSnapshot (counters + p50/p90/p99 latency tables via
 * util/table), and machine-readable metrics JSON. Plus two folds:
 * thread-pool telemetry into snapshot counters, and per-name span
 * summaries (count/total/mean) out of a trace — what
 * bench/micro_forward records per layer.
 */

#ifndef GOBO_OBS_EXPORT_HH
#define GOBO_OBS_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/pmu.hh"
#include "obs/trace.hh"

namespace gobo {

struct PoolTelemetry;
struct ScratchStats;

/**
 * Write `tracer`'s events as Chrome trace-event JSON
 * ({"traceEvents": [...]}; "ph":"X" complete events, microsecond
 * timestamps). Loadable in Perfetto and chrome://tracing.
 */
void writeChromeTrace(const Tracer &tracer, std::ostream &os);

/**
 * Render the snapshot for humans: a counter table (zero-valued
 * counters are skipped) and one row per histogram with count, mean and
 * p50/p90/p99.
 */
void printMetrics(const MetricsSnapshot &snap, std::ostream &os);

/** Write the snapshot as machine JSON (counters + histograms). */
void writeMetricsJson(const MetricsSnapshot &snap, std::ostream &os);

/**
 * Fold thread-pool telemetry into `snap` as `pool.*` counters (jobs,
 * inline runs, nested jobs, wakes, steals, items drained, per-worker
 * drain counts) so one exporter covers the whole stack.
 */
void appendPoolCounters(MetricsSnapshot &snap, const PoolTelemetry &pool);

/**
 * Fold scratch-arena statistics (exec/scratch.hh) into `snap` as
 * `scratch.*` counters: live arenas, bytes reserved, decoded-row
 * cache hits/misses, and the cache's held bytes, budgeted capacity,
 * and eviction count (`scratch.decode_cache_*`).
 */
void appendScratchCounters(MetricsSnapshot &snap, const ScratchStats &s);

/**
 * Fold tracer health into `snap` as `trace.*` counters — today just
 * `trace.dropped_events`, the spans discarded because a per-thread
 * buffer filled. Nonzero means every trace-derived number (span
 * summaries, Chrome export) undercounts.
 */
void appendTraceCounters(MetricsSnapshot &snap, const Tracer &tracer);

/**
 * Fold one PmuSnapshot into `snap`: raw totals as `pmu.*` counters
 * (cycles, instructions, llc_misses, llc_references, stalled_backend,
 * plus per-worker `pmu.worker[i].llc_misses`), and the derived figures
 * as gauges — `pmu.available` (1/0), `pmu.ipc`, `pmu.llc_miss_ratio`,
 * and `pmu.llc_miss_gbps` (misses x cache line / elapsed). With an
 * unavailable backend only `pmu.available` = 0 is appended, so a
 * counters diff between PMU-on and PMU-off runs stays readable.
 */
void appendPmuMetrics(MetricsSnapshot &snap, const PmuSnapshot &pmu);

/**
 * Derive the decoded-row cache gauges from scratch counters:
 * `scratch.decode_row_hit_rate` (hits / (hits + misses)) and
 * `scratch.decode_cache_fill` (held bytes / budgeted capacity). No
 * gauge is appended when the run decoded nothing, because 0/0 is not
 * a measurement.
 */
void appendScratchGauges(MetricsSnapshot &snap, const ScratchStats &s);

/** Aggregate of every span sharing one name. */
struct SpanSummary
{
    std::string name;
    std::uint64_t count = 0;
    double totalUs = 0.0;
    double meanUs = 0.0;
};

/** Per-name span aggregates, sorted by total time descending. */
std::vector<SpanSummary> summarizeSpans(const Tracer &tracer);

/** Aggregate of the PMU deltas carried by every span sharing a name
 * (only spans that actually recorded the llc_miss/instructions/cycles
 * args contribute — spans traced with PMU off are invisible here). */
struct PmuSpanSummary
{
    std::string name;
    std::uint64_t count = 0; ///< spans that carried PMU args.
    std::uint64_t llcMisses = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double totalUs = 0.0; ///< wall time of the contributing spans.
};

/**
 * Per-name aggregates of span PMU annotations, sorted by LLC misses
 * descending — the measured side of the audit layer's modeled-vs-
 * measured DRAM comparison. Empty when no span carried PMU args.
 */
std::vector<PmuSpanSummary> summarizePmuSpans(const Tracer &tracer);

} // namespace gobo

#endif // GOBO_OBS_EXPORT_HH
