/**
 * @file
 * Scoped-span tracer — begin/end events in per-thread buffers,
 * exportable as Chrome trace-event JSON.
 *
 * A span is recorded as one complete ("ph":"X") event: name, start
 * timestamp and duration in microseconds since the tracer's epoch,
 * plus a tracer-assigned thread id. Each thread appends to its own
 * buffer, so recording never serializes concurrent workers beyond one
 * uncontended per-buffer mutex (needed so an export racing a live
 * forward pass is well-defined). Buffers are bounded: past
 * `maxEventsPerThread` new spans are counted as dropped instead of
 * growing without limit.
 *
 * The exported JSON loads directly in Perfetto / chrome://tracing:
 * nesting is inferred from timestamp containment per thread track, so
 * a per-layer span drawn around per-linear spans renders as a flame
 * view of the forward pass.
 */

#ifndef GOBO_OBS_TRACE_HH
#define GOBO_OBS_TRACE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gobo {

/** One key=value annotation on a span ("request": 17, "batch": 3).
 * Rendered into the Chrome trace's "args" object, which is what makes
 * a serve span clickable back to the request it served. */
using TraceArg = std::pair<std::string, std::uint64_t>;

/** One completed span on one thread. */
struct TraceEvent
{
    std::string name;
    double tsUs = 0.0;  ///< start, microseconds since tracer epoch.
    double durUs = 0.0; ///< duration in microseconds.
    std::uint32_t tid = 0; ///< tracer-assigned thread track.
    std::vector<TraceArg> args; ///< empty for unannotated spans.
};

/** Collects spans from every thread; epoch starts at construction. */
class Tracer
{
  public:
    /** Spans a single thread may buffer before drops begin. */
    static constexpr std::size_t maxEventsPerThread = 1 << 20;

    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Microseconds since the tracer epoch (monotonic clock). */
    double nowUs() const;

    /** Record one completed span on the calling thread's track. */
    void record(std::string name, double ts_us, double dur_us);

    /** Record a span with key=value annotations (see TraceArg). */
    void record(std::string name, double ts_us, double dur_us,
                std::vector<TraceArg> args);

    /**
     * Label the calling thread's track ("main"). Unnamed tracks render
     * as "worker-<tid>" in the Chrome trace metadata; pool workers
     * never call this (exec cannot link obs), so the export's default
     * is what names them.
     */
    void nameThread(std::string name);

    /** Every recorded span, merged across threads, sorted by start. */
    std::vector<TraceEvent> events() const;

    /** (tid, name) per thread track; unnamed tracks get "worker-<tid>".
     * Sorted by tid — the Chrome metadata events come from this. */
    std::vector<std::pair<std::uint32_t, std::string>> threadNames() const;

    /** Spans discarded because a thread buffer was full. */
    std::uint64_t droppedEvents() const;

  private:
    struct Buffer
    {
        /** Guards events; uncontended except when an export races the
         * owning thread. */
        std::mutex mutex;
        std::vector<TraceEvent> events;
        std::uint64_t dropped = 0;
        std::uint32_t tid = 0;
        std::string name; ///< empty until nameThread labels the track.
    };

    /** The calling thread's buffer, created on first use. */
    Buffer &localBuffer();

    const std::uint64_t uid;
    const std::chrono::steady_clock::time_point epoch;

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<Buffer>> buffers;
};

} // namespace gobo

#endif // GOBO_OBS_TRACE_HH
