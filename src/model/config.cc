#include "model/config.hh"

#include "util/logging.hh"

namespace gobo {

std::string
familyName(ModelFamily family)
{
    switch (family) {
      case ModelFamily::BertBase: return "BERT-Base";
      case ModelFamily::BertLarge: return "BERT-Large";
      case ModelFamily::DistilBert: return "DistilBERT";
      case ModelFamily::RoBerta: return "RoBERTa";
      case ModelFamily::RoBertaLarge: return "RoBERTa-Large";
    }
    panic("unknown ModelFamily");
}

std::string
fcKindName(FcKind kind)
{
    switch (kind) {
      case FcKind::Query: return "query";
      case FcKind::Key: return "key";
      case FcKind::Value: return "value";
      case FcKind::AttnOutput: return "attn_output";
      case FcKind::Intermediate: return "intermediate";
      case FcKind::Output: return "output";
      case FcKind::Pooler: return "pooler";
    }
    panic("unknown FcKind");
}

std::size_t
ModelConfig::fcWeightParams() const
{
    // Per encoder: 4 [h,h] attention FCs plus the [i,h] and [h,i] FFN
    // pair; one [h,h] pooler after the last encoder.
    std::size_t per_layer = 4 * hidden * hidden + 2 * hidden * intermediate;
    return numLayers * per_layer + hidden * hidden;
}

void
ModelConfig::check() const
{
    fatalIf(numLayers == 0, name, ": numLayers must be positive");
    fatalIf(hidden == 0 || intermediate == 0, name,
            ": hidden/intermediate must be positive");
    fatalIf(numHeads == 0 || hidden % numHeads != 0, name,
            ": hidden ", hidden, " not divisible by heads ", numHeads);
    fatalIf(vocabSize == 0 || maxPosition == 0, name,
            ": vocabSize/maxPosition must be positive");
}

ModelConfig
fullConfig(ModelFamily family)
{
    ModelConfig c;
    c.family = family;
    c.name = familyName(family);
    switch (family) {
      case ModelFamily::BertBase:
        c.numLayers = 12; c.hidden = 768; c.intermediate = 3072;
        c.numHeads = 12; c.vocabSize = 30522; c.maxPosition = 512;
        break;
      case ModelFamily::BertLarge:
        c.numLayers = 24; c.hidden = 1024; c.intermediate = 4096;
        c.numHeads = 16; c.vocabSize = 30522; c.maxPosition = 512;
        break;
      case ModelFamily::DistilBert:
        c.numLayers = 6; c.hidden = 768; c.intermediate = 3072;
        c.numHeads = 12; c.vocabSize = 30522; c.maxPosition = 512;
        break;
      case ModelFamily::RoBerta:
        c.numLayers = 12; c.hidden = 768; c.intermediate = 3072;
        c.numHeads = 12; c.vocabSize = 50265; c.maxPosition = 514;
        break;
      case ModelFamily::RoBertaLarge:
        c.numLayers = 24; c.hidden = 1024; c.intermediate = 4096;
        c.numHeads = 16; c.vocabSize = 50265; c.maxPosition = 514;
        break;
    }
    c.check();
    return c;
}

ModelConfig
miniConfig(ModelFamily family)
{
    ModelConfig c;
    c.family = family;
    c.name = familyName(family) + "-mini";
    switch (family) {
      case ModelFamily::BertBase:
        c.numLayers = 12; c.hidden = 64; c.intermediate = 256;
        c.numHeads = 4; c.vocabSize = 512; c.maxPosition = 64;
        break;
      case ModelFamily::BertLarge:
        c.numLayers = 24; c.hidden = 96; c.intermediate = 384;
        c.numHeads = 6; c.vocabSize = 512; c.maxPosition = 64;
        break;
      case ModelFamily::DistilBert:
        c.numLayers = 6; c.hidden = 64; c.intermediate = 256;
        c.numHeads = 4; c.vocabSize = 512; c.maxPosition = 64;
        break;
      case ModelFamily::RoBerta:
        c.numLayers = 12; c.hidden = 64; c.intermediate = 256;
        c.numHeads = 4; c.vocabSize = 768; c.maxPosition = 64;
        break;
      case ModelFamily::RoBertaLarge:
        c.numLayers = 24; c.hidden = 96; c.intermediate = 384;
        c.numHeads = 6; c.vocabSize = 768; c.maxPosition = 64;
        break;
    }
    c.check();
    return c;
}

std::vector<ModelFamily>
allFamilies()
{
    return {ModelFamily::BertBase, ModelFamily::BertLarge,
            ModelFamily::DistilBert, ModelFamily::RoBerta,
            ModelFamily::RoBertaLarge};
}

} // namespace gobo
