/**
 * @file
 * Memory-footprint accounting matching the paper's Table II.
 *
 * The paper counts FC weight matrices only (no biases, no layer-norm)
 * for the "Weights" row, the word-embedding table only for "Embedding
 * Tables", and reports MiB (it writes "MB"). Activation rows assume a
 * sequence length of 128 and the FFN inner width as the largest
 * activation.
 */

#ifndef GOBO_MODEL_FOOTPRINT_HH
#define GOBO_MODEL_FOOTPRINT_HH

#include <cstddef>

#include "model/config.hh"

namespace gobo {

/** Table II rows for one model, in bytes. */
struct Footprint
{
    std::size_t embeddingBytes = 0;   ///< Word-embedding table, FP32.
    std::size_t weightBytes = 0;      ///< All FC weight matrices, FP32.
    std::size_t inputPerWordBytes = 0;  ///< One hidden vector.
    std::size_t largestActPerWordBytes = 0; ///< One FFN inner vector.
    std::size_t sequenceLength = 0;
    std::size_t activationBytes = 0;  ///< Largest activation, whole seq.
};

/** Compute the Table II accounting for a configuration. */
Footprint footprint(const ModelConfig &config,
                    std::size_t sequence_length = 128);

/**
 * Resident bytes of one compressed FC matrix executed in the Unpacked
 * format: one byte per widened index, plus the FP32 centroid table and
 * the per-outlier (u32 column, f32 correction) pairs the kernel holds.
 */
std::size_t unpackedResidentBytes(std::size_t elements,
                                  std::size_t centroid_count,
                                  std::size_t outlier_count);

/**
 * Resident bytes of the same matrix executed in the Packed format: the
 * B-bit index stream stays packed (`ceil(elements * bits / 8)` bytes),
 * so the resident set is ~bits/32 of FP32 plus the same centroid-table
 * and outlier overhead — the ratio the paper's Table II implies.
 */
std::size_t packedResidentBytes(std::size_t elements, unsigned bits,
                                std::size_t centroid_count,
                                std::size_t outlier_count);

/**
 * Decoded-row cache capacity charged to a Packed run's resident
 * footprint: one per-arena budget (exec/scratch.hh,
 * GOBO_DECODE_CACHE_KB) per executing thread, since every thread that
 * touches a Packed forward owns an arena. The charge keeps the
 * compression story honest — cached decoded rows are resident bytes
 * the packed format would otherwise claim to have saved. Unpacked and
 * FP32 runs never populate the cache and charge nothing.
 */
std::size_t decodeCacheResidentBytes(std::size_t threads);

/** Bytes expressed in the paper's units (MiB, printed as "MB"). */
double toMiB(std::size_t bytes);

/** Bytes expressed in KiB. */
double toKiB(std::size_t bytes);

} // namespace gobo

#endif // GOBO_MODEL_FOOTPRINT_HH
