/**
 * @file
 * Synthetic weight generation calibrated to the paper's observations.
 *
 * The paper's premise (Sec. II-A, Figs. 1b/1c/3) is that every FC layer
 * of every BERT-family model is "some Gaussian plus very few outliers":
 * per layer, weights follow N(mu_l, sigma_l) with distribution
 * parameters that vary across layers, and a tiny population (~0.05-0.4%
 * per layer, up to ~1% in the last layer) sits far outside that
 * Gaussian. Since the pre-trained checkpoints are not available in this
 * offline environment, we generate weights from exactly that family:
 *
 *  - sigma_l depends on the component kind and encoder depth, with a
 *    deterministic per-layer jitter, spanning the ~0.02-0.07 range the
 *    paper's Fig. 1b histograms show;
 *  - outliers are injected at |z| in [outlierMinZ, outlierMaxZ] with
 *    random sign, at a per-kind rate that reproduces the Fig. 3 census
 *    under the paper's log-probability threshold of -4;
 *  - layers the paper identifies as quantization-sensitive (the Value
 *    and Intermediate FCs of the first half of RoBERTa encoders,
 *    Table VI) draw a fraction of their G-group weights from a wider
 *    scale-mixture component, giving them the heavier-tailed, less
 *    Gaussian shape that makes 3-bit clustering lossier there.
 *
 * In addition, generated models carry the *hot-channel* structure of
 * trained transformers: a fixed quarter of the hidden dimensions (the
 * model's hot channels, chosen from the seed) host the rare huge
 * embedding values, so after layer normalization those channels carry
 * most of the residual stream's energy (the well-documented
 * outlier-activation phenomenon). Trained networks balance |w|*|x|
 * across channels, so the FC weight columns reading those
 * high-activation channels are drawn narrower (about half sigma) and
 * hold no far tail, while the cold columns carry the mild heavy-tail
 * mass. This balance is what makes a quantizer's *bulk* resolution —
 * the thing GOBO's L1 monitoring optimizes — the task-relevant
 * quantity during inference.
 *
 * Everything is deterministic in (config, seed): a layer's contents
 * depend only on its own derived stream, never on generation order.
 */

#ifndef GOBO_MODEL_GENERATE_HH
#define GOBO_MODEL_GENERATE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/config.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace gobo {

/** Shape of one layer's weight distribution. */
struct LayerDistribution
{
    double mean = 0.0;            ///< Gaussian centre.
    double sigma = 0.04;          ///< Gaussian scale.
    double outlierFraction = 0.001; ///< Injected far-tail fraction.
    double outlierMinZ = 4.5;     ///< Outlier magnitude lower bound (in sigma).
    double outlierMaxZ = 12.0;    ///< Outlier magnitude upper bound.
    /**
     * Heavier-than-Gaussian "shoulder": a fraction of cold-column
     * weights drawn uniformly at |z| in [heavyLoZ, heavyHiZ]. The
     * shoulder sits inside the G range (below the outlier cut), so it
     * shapes the clustering problem without inflating the outlier
     * census.
     */
    double heavyFraction = 0.0;
    double heavyLoZ = 1.6;        ///< Shoulder lower bound (in sigma).
    double heavyHiZ = 3.1;        ///< Shoulder upper bound (in sigma).
    double hotSigmaScale = 1.0;   ///< Scale of weights on hot columns.
};

/** Static description of one FC weight matrix (no data). */
struct FcLayerSpec
{
    std::string name;
    FcKind kind = FcKind::Query;
    std::size_t encoder = 0;
    std::size_t rows = 0;
    std::size_t cols = 0;
};

/** Enumerate the FC weight matrices of a configuration, paper order. */
std::vector<FcLayerSpec> fcLayerSpecs(const ModelConfig &config);

/**
 * Distribution for one FC layer of one model family. Deterministic
 * (hash-jittered) in its arguments.
 */
LayerDistribution layerDistribution(const ModelConfig &config, FcKind kind,
                                    std::size_t encoder);

/** Distribution used for a family's word-embedding table. */
LayerDistribution embeddingDistribution(const ModelConfig &config);

/**
 * The model's hot channels: the fixed quarter of hidden dimensions
 * that carry the residual stream's outsized activations. Deterministic
 * in (config, seed); returned as a 0/1 mask of length hidden.
 */
std::vector<std::uint8_t> hotChannelMask(const ModelConfig &config,
                                         std::uint64_t seed);

/**
 * Hot channels of the FFN inner (intermediate) space: the units whose
 * bias spikes make them fire large for every token, the FFN
 * counterpart of the residual-stream hot channels. 0/1 mask of length
 * intermediate.
 */
std::vector<std::uint8_t> hotInnerMask(const ModelConfig &config,
                                       std::uint64_t seed);

/** Fill a tensor with iid draws from the given layer distribution. */
void fillWeights(Tensor &w, const LayerDistribution &dist, Rng &rng);

/**
 * Fill an FC weight matrix whose input is the residual stream:
 * columns flagged hot draw from the narrow, tail-free component
 * (dist.hotSigmaScale * sigma); cold columns draw from the usual
 * Gaussian + heavy-tail + outlier mixture. hot_mask length must equal
 * the column count.
 */
void fillFcWeights(Tensor &w, const LayerDistribution &dist,
                   std::span<const std::uint8_t> hot_mask, Rng &rng);

/**
 * Generate one FC weight matrix of a model at full or mini scale
 * without materializing the rest of the model. The layer's stream is
 * derived from (seed, layer index) so the result matches the same layer
 * inside generateModel(config, seed).
 */
Tensor generateFcWeight(const ModelConfig &config, const FcLayerSpec &spec,
                        std::uint64_t seed);

/** Generate the word-embedding table for a configuration. */
Tensor generateWordEmbedding(const ModelConfig &config, std::uint64_t seed);

/**
 * Generate a complete model (embeddings, encoders, pooler, head).
 * Biases and layer-norm parameters get small benign values; the task
 * head is resized and filled by the task setup.
 */
BertModel generateModel(const ModelConfig &config, std::uint64_t seed);

} // namespace gobo

#endif // GOBO_MODEL_GENERATE_HH
