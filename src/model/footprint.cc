#include "model/footprint.hh"

namespace gobo {

Footprint
footprint(const ModelConfig &config, std::size_t sequence_length)
{
    Footprint f;
    f.embeddingBytes = config.wordEmbeddingParams() * sizeof(float);
    f.weightBytes = config.fcWeightParams() * sizeof(float);
    f.inputPerWordBytes = config.hidden * sizeof(float);
    f.largestActPerWordBytes = config.intermediate * sizeof(float);
    f.sequenceLength = sequence_length;
    f.activationBytes = sequence_length * config.intermediate
                        * sizeof(float);
    return f;
}

double
toMiB(std::size_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

double
toKiB(std::size_t bytes)
{
    return static_cast<double>(bytes) / 1024.0;
}

} // namespace gobo
