#include "model/footprint.hh"

#include <cstdint>

#include "exec/scratch.hh"

namespace gobo {

Footprint
footprint(const ModelConfig &config, std::size_t sequence_length)
{
    Footprint f;
    f.embeddingBytes = config.wordEmbeddingParams() * sizeof(float);
    f.weightBytes = config.fcWeightParams() * sizeof(float);
    f.inputPerWordBytes = config.hidden * sizeof(float);
    f.largestActPerWordBytes = config.intermediate * sizeof(float);
    f.sequenceLength = sequence_length;
    f.activationBytes = sequence_length * config.intermediate
                        * sizeof(float);
    return f;
}

namespace {

/** Bytes of the centroid table plus the kernel's outlier pairs. */
std::size_t
tableAndOutlierBytes(std::size_t centroid_count, std::size_t outlier_count)
{
    return centroid_count * sizeof(float)
           + outlier_count * (sizeof(std::uint32_t) + sizeof(float));
}

} // namespace

std::size_t
unpackedResidentBytes(std::size_t elements, std::size_t centroid_count,
                      std::size_t outlier_count)
{
    return elements + tableAndOutlierBytes(centroid_count, outlier_count);
}

std::size_t
packedResidentBytes(std::size_t elements, unsigned bits,
                    std::size_t centroid_count, std::size_t outlier_count)
{
    return (elements * bits + 7) / 8
           + tableAndOutlierBytes(centroid_count, outlier_count);
}

std::size_t
decodeCacheResidentBytes(std::size_t threads)
{
    return threads * decodeCacheBudgetBytes();
}

double
toMiB(std::size_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

double
toKiB(std::size_t bytes)
{
    return static_cast<double>(bytes) / 1024.0;
}

} // namespace gobo
