#include "model/generate.hh"

#include <cmath>

#include "util/logging.hh"

namespace gobo {

namespace {

/** splitmix64 finalizer — cheap deterministic hash for jitter/seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic jitter in [0, 1) from a layer identity and a salt. */
double
jitter(const ModelConfig &config, FcKind kind, std::size_t encoder,
       std::uint64_t salt)
{
    std::uint64_t h = mix64(static_cast<std::uint64_t>(config.family) * 131
                            + static_cast<std::uint64_t>(kind) * 17
                            + encoder + salt * 0x51ed2701);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Flat index of a layer inside the model, used to derive its stream. */
std::uint64_t
layerStreamId(const ModelConfig &config, FcKind kind, std::size_t encoder)
{
    if (kind == FcKind::Pooler)
        return config.numLayers * 6;
    return encoder * 6 + static_cast<std::uint64_t>(kind);
}

/** Per-kind base Gaussian scale, spanning the Fig. 1b range. */
double
baseSigma(FcKind kind)
{
    switch (kind) {
      case FcKind::Query: return 0.046;
      case FcKind::Key: return 0.048;
      case FcKind::Value: return 0.038;
      case FcKind::AttnOutput: return 0.042;
      case FcKind::Intermediate: return 0.044;
      case FcKind::Output: return 0.052;
      case FcKind::Pooler: return 0.030;
    }
    panic("unknown FcKind");
}

/**
 * Per-kind injected far-tail rate, tuned so the log-probability -4
 * census reproduces Fig. 3: most layers between ~0.05% and ~0.4%
 * detected, the pooler just under 1%, model-wide average ~0.1%.
 */
double
baseOutlierFraction(FcKind kind)
{
    switch (kind) {
      case FcKind::Query: return 0.0003;
      case FcKind::Key: return 0.0004;
      case FcKind::Value: return 0.00015;
      case FcKind::AttnOutput: return 0.0006;
      case FcKind::Intermediate: return 0.0005;
      case FcKind::Output: return 0.0008;
      case FcKind::Pooler: return 0.0120;
    }
    panic("unknown FcKind");
}

/** Is this one of the RoBERTa-sensitive layers of Table VI? */
bool
isSensitiveLayer(const ModelConfig &config, FcKind kind,
                 std::size_t encoder)
{
    if (config.family != ModelFamily::RoBerta
        && config.family != ModelFamily::RoBertaLarge)
        return false;
    if (kind != FcKind::Value && kind != FcKind::Intermediate)
        return false;
    // The paper finds the first 6 of 12 (RoBERTa) and first 14 of 24
    // (RoBERTa-Large) encoders sensitive.
    std::size_t sensitive_depth =
        config.family == ModelFamily::RoBerta ? config.numLayers / 2
                                              : (config.numLayers * 14) / 24;
    return encoder < sensitive_depth;
}

} // namespace

std::vector<FcLayerSpec>
fcLayerSpecs(const ModelConfig &config)
{
    std::vector<FcLayerSpec> specs;
    specs.reserve(config.numFcLayers());
    std::size_t h = config.hidden, inter = config.intermediate;
    for (std::size_t e = 0; e < config.numLayers; ++e) {
        std::string prefix = "encoder" + std::to_string(e) + ".";
        specs.push_back({prefix + "query", FcKind::Query, e, h, h});
        specs.push_back({prefix + "key", FcKind::Key, e, h, h});
        specs.push_back({prefix + "value", FcKind::Value, e, h, h});
        specs.push_back({prefix + "attn_output", FcKind::AttnOutput, e, h,
                         h});
        specs.push_back({prefix + "intermediate", FcKind::Intermediate, e,
                         inter, h});
        specs.push_back({prefix + "output", FcKind::Output, e, h, inter});
    }
    specs.push_back({"pooler", FcKind::Pooler, config.numLayers, h, h});
    return specs;
}

LayerDistribution
layerDistribution(const ModelConfig &config, FcKind kind,
                  std::size_t encoder)
{
    LayerDistribution d;
    double depth = config.numLayers <= 1
                       ? 0.0
                       : static_cast<double>(
                             std::min(encoder, config.numLayers - 1))
                             / static_cast<double>(config.numLayers - 1);

    d.sigma = baseSigma(kind) * (1.0 + 0.25 * depth)
              * (0.9 + 0.2 * jitter(config, kind, encoder, 1));
    d.mean = (jitter(config, kind, encoder, 2) - 0.5) * 0.004;
    d.outlierFraction = baseOutlierFraction(kind)
                        * (0.75 + 0.5 * jitter(config, kind, encoder, 3));
    d.outlierMinZ = 4.5;
    d.outlierMaxZ = 12.0;

    // Mild non-Gaussianity on the cold columns: real checkpoints are
    // slightly heavier-tailed than a pure Gaussian.
    d.heavyFraction = 0.04;
    // Hot columns read the high-activation channels and carry the
    // compensating narrow weights.
    d.hotSigmaScale = 0.5;

    if (isSensitiveLayer(config, kind, encoder)) {
        if (config.family == ModelFamily::RoBerta) {
            // RoBERTa's sensitive layers break the |w|*|x| balance:
            // their high-activation columns carry *wide* weights
            // sitting in the region where an 8-entry table is sparse
            // but a 16-entry one is not — the layers are
            // 3-bit-sensitive yet fine at 4 bits (Table VI).
            d.hotSigmaScale = 2.3;
            d.heavyFraction = 0.06;
        } else {
            // The paper finds RoBERTa-Large markedly less sensitive;
            // its Value/Intermediate layers carry only a heavier
            // bounded shoulder.
            d.heavyFraction = 0.12;
        }
    }
    return d;
}

LayerDistribution
embeddingDistribution(const ModelConfig &config)
{
    LayerDistribution d;
    d.sigma = 0.036 * (0.9 + 0.2 * jitter(config, FcKind::Pooler, 999, 4));
    d.mean = 0.0;
    d.outlierFraction = 0.0008;
    d.heavyFraction = 0.02;
    return d;
}

namespace {

/** Draw one weight from the cold-column mixture. */
float
drawCold(const LayerDistribution &dist, Rng &rng)
{
    double u = rng.uniform();
    if (u < dist.outlierFraction) {
        double mag = rng.uniform(dist.outlierMinZ, dist.outlierMaxZ)
                     * dist.sigma;
        double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        return static_cast<float>(dist.mean + sign * mag);
    }
    if (u < dist.outlierFraction + dist.heavyFraction) {
        double mag = rng.uniform(dist.heavyLoZ, dist.heavyHiZ)
                     * dist.sigma;
        double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        return static_cast<float>(dist.mean + sign * mag);
    }
    return static_cast<float>(rng.gaussian(dist.mean, dist.sigma));
}

} // namespace

namespace {

std::vector<std::uint8_t>
pickMask(std::size_t length, std::size_t want, std::uint64_t stream)
{
    std::vector<std::uint8_t> mask(length, 0);
    Rng rng(mix64(stream));
    std::size_t placed = 0;
    while (placed < std::min(want, length)) {
        auto d = static_cast<std::size_t>(
            rng.integer(0, static_cast<std::int64_t>(length) - 1));
        if (!mask[d]) {
            mask[d] = 1;
            ++placed;
        }
    }
    return mask;
}

} // namespace

std::vector<std::uint8_t>
hotChannelMask(const ModelConfig &config, std::uint64_t seed)
{
    return pickMask(config.hidden,
                    std::max<std::size_t>(1, config.hidden / 4),
                    seed ^ 0x407d15ULL
                        ^ static_cast<std::uint64_t>(config.family)
                              * 8191);
}

std::vector<std::uint8_t>
hotInnerMask(const ModelConfig &config, std::uint64_t seed)
{
    return pickMask(config.intermediate,
                    std::max<std::size_t>(1, config.intermediate / 4),
                    seed ^ 0x1a7e2ULL
                        ^ static_cast<std::uint64_t>(config.family)
                              * 524287);
}

void
fillWeights(Tensor &w, const LayerDistribution &dist, Rng &rng)
{
    for (auto &v : w.flat())
        v = drawCold(dist, rng);
}

void
fillFcWeights(Tensor &w, const LayerDistribution &dist,
              std::span<const std::uint8_t> hot_mask, Rng &rng)
{
    fatalIf(w.rank() != 2 || hot_mask.size() != w.cols(),
            "fillFcWeights hot mask size mismatch");
    for (std::size_t r = 0; r < w.rows(); ++r) {
        auto row = w.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (hot_mask[c]) {
                row[c] = static_cast<float>(rng.gaussian(
                    dist.mean, dist.sigma * dist.hotSigmaScale));
            } else {
                row[c] = drawCold(dist, rng);
            }
        }
    }
}

Tensor
generateFcWeight(const ModelConfig &config, const FcLayerSpec &spec,
                 std::uint64_t seed)
{
    Tensor w(spec.rows, spec.cols);
    auto dist = layerDistribution(config, spec.kind, spec.encoder);
    Rng rng(mix64(seed ^ mix64(layerStreamId(config, spec.kind,
                                             spec.encoder) + 0xfc0)));
    // FCs whose input is the residual stream see the gamma-amplified
    // hot channels and carry the balancing narrow columns there; the
    // attention-output and FFN-output FCs read mixed spaces (attention
    // context, GELU activations) without that column structure.
    if (spec.kind == FcKind::Output || spec.kind == FcKind::AttnOutput) {
        fillWeights(w, dist, rng);
    } else {
        auto mask = hotChannelMask(config, seed);
        fillFcWeights(w, dist, mask, rng);
    }
    return w;
}

Tensor
generateWordEmbedding(const ModelConfig &config, std::uint64_t seed)
{
    Tensor w(config.vocabSize, config.hidden);
    Rng rng(mix64(seed ^ 0xe3bedULL));
    auto dist = embeddingDistribution(config);
    fillWeights(w, dist, rng);

    // Spike one or two hot channels of most rows: after the embedding
    // layer norm these become the residual stream's dominant
    // activations (massive-activation channels).
    auto mask = hotChannelMask(config, seed);
    std::vector<std::size_t> hot_dims;
    for (std::size_t d = 0; d < mask.size(); ++d)
        if (mask[d])
            hot_dims.push_back(d);
    for (std::size_t r = 0; r < w.rows(); ++r) {
        double u = rng.uniform();
        std::size_t spikes = u < 0.30 ? 0 : (u < 0.75 ? 1 : 2);
        auto row = w.row(r);
        for (std::size_t s = 0; s < spikes; ++s) {
            auto pick = static_cast<std::size_t>(rng.integer(
                0, static_cast<std::int64_t>(hot_dims.size()) - 1));
            double mag = rng.uniform(10.0, 22.0) * dist.sigma;
            row[hot_dims[pick]] = static_cast<float>(
                rng.bernoulli(0.5) ? mag : -mag);
        }
    }
    return w;
}

BertModel
generateModel(const ModelConfig &config, std::uint64_t seed)
{
    BertModel m(config);

    m.wordEmbedding = generateWordEmbedding(config, seed);
    {
        Rng rng(mix64(seed ^ 0x90511ULL));
        LayerDistribution pos;
        pos.sigma = 0.02;
        pos.outlierFraction = 0.0;
        pos.heavyFraction = 0.0;
        fillWeights(m.positionEmbedding, pos, rng);
        for (auto &v : m.embLnGamma.flat())
            v = static_cast<float>(rng.gaussian(1.0, 0.05));
        for (auto &v : m.embLnBeta.flat())
            v = static_cast<float>(rng.gaussian(0.0, 0.02));
    }

    auto specs = fcLayerSpecs(config);
    auto refs = m.fcLayers();
    panicIf(specs.size() != refs.size(), "spec/ref count mismatch");
    for (std::size_t i = 0; i < specs.size(); ++i)
        *refs[i].weight = generateFcWeight(config, specs[i], seed);

    // Biases and layer-norm parameters: small, benign, FP32-resident
    // (the paper leaves them unquantized and out of its accounting).
    Rng aux(mix64(seed ^ 0xb1a5e5ULL));
    auto fill_small = [&](Tensor &t, double mu, double sd) {
        for (auto &v : t.flat())
            v = static_cast<float>(aux.gaussian(mu, sd));
    };
    // Layer-norm gamma spikes on the hot channels: every LN writes the
    // residual stream's hot dimensions back amplified (the well-known
    // gamma-outlier structure of trained BERT layer norms). Because
    // the normalized values vary per token, the hot activations are
    // large *and* example-dependent. Gammas stay FP32 — the paper
    // leaves layer-norm parameters unquantized — so this structure
    // survives quantization and keeps the task's error budget pinned
    // on the hot weight columns.
    auto hidden_mask = hotChannelMask(config, seed);
    auto spike_gamma = [&](Tensor &gamma) {
        for (std::size_t d = 0; d < hidden_mask.size(); ++d)
            if (hidden_mask[d])
                gamma(d) = static_cast<float>(aux.uniform(3.0, 5.0));
    };
    spike_gamma(m.embLnGamma);

    for (auto &enc : m.encoders) {
        fill_small(enc.queryB, 0.0, 0.02);
        fill_small(enc.keyB, 0.0, 0.02);
        fill_small(enc.valueB, 0.0, 0.02);
        fill_small(enc.attnOutB, 0.0, 0.02);
        fill_small(enc.attnLnGamma, 1.0, 0.05);
        spike_gamma(enc.attnLnGamma);
        fill_small(enc.attnLnBeta, 0.0, 0.02);
        fill_small(enc.interB, 0.0, 0.02);
        fill_small(enc.outB, 0.0, 0.02);
        fill_small(enc.outLnGamma, 1.0, 0.05);
        spike_gamma(enc.outLnGamma);
        fill_small(enc.outLnBeta, 0.0, 0.02);
    }
    fill_small(m.poolerB, 0.0, 0.02);

    return m;
}

} // namespace gobo
