/**
 * @file
 * Binary serialization of FP32 models.
 *
 * A simple versioned container ("GOBM") holding the configuration and
 * every tensor of a BertModel. Used by the examples and integration
 * tests to demonstrate the generate -> save -> load -> quantize ->
 * infer pipeline, and as the uncompressed-size reference for on-disk
 * compression-ratio measurements.
 */

#ifndef GOBO_MODEL_SERIALIZE_HH
#define GOBO_MODEL_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** Write one tensor (rank, dims, raw FP32 payload). */
void writeTensor(std::ostream &os, const Tensor &t);

/** Read one tensor written by writeTensor. Fatal on malformed input. */
Tensor readTensor(std::istream &is);

/** Serialize a whole model to a stream. */
void saveModel(std::ostream &os, const BertModel &model);

/** Serialize a whole model to a file. Fatal if the file cannot open. */
void saveModel(const std::string &path, const BertModel &model);

/** Load a model written by saveModel. Fatal on malformed input. */
BertModel loadModel(std::istream &is);

/** Load a model from a file. Fatal if the file cannot open. */
BertModel loadModel(const std::string &path);

} // namespace gobo

#endif // GOBO_MODEL_SERIALIZE_HH
