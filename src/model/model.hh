/**
 * @file
 * Parameter store for a BERT-family model.
 *
 * Holds every tensor of the encoder stack in the layout the inference
 * engine consumes, and exposes the flat list of FC weight matrices that
 * the quantizer operates on (the paper quantizes FC weights and the
 * word-embedding table; biases and layer-norm parameters stay FP32 and
 * are excluded from the paper's size accounting).
 */

#ifndef GOBO_MODEL_MODEL_HH
#define GOBO_MODEL_MODEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "model/config.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** Parameters of one encoder (BERT layer). */
struct EncoderWeights
{
    // Attention component: four FCs plus the post-attention layer norm.
    Tensor queryW, queryB;   ///< [h, h], [h]
    Tensor keyW, keyB;       ///< [h, h], [h]
    Tensor valueW, valueB;   ///< [h, h], [h]
    Tensor attnOutW, attnOutB; ///< [h, h], [h]
    Tensor attnLnGamma, attnLnBeta; ///< [h], [h]

    // Intermediate component: the FFN up-projection.
    Tensor interW, interB;   ///< [i, h], [i]

    // Output component: down-projection plus the output layer norm.
    Tensor outW, outB;       ///< [h, i], [h]
    Tensor outLnGamma, outLnBeta; ///< [h], [h]
};

/**
 * Reference to one FC weight matrix inside a model, carrying the
 * metadata the quantization policies and the per-layer census need.
 */
struct FcLayerRef
{
    std::string name;       ///< e.g. "encoder3.value".
    FcKind kind;            ///< Component kind.
    std::size_t encoder;    ///< Encoder index; numLayers for the pooler.
    Tensor *weight;         ///< The [out, in] weight matrix.
};

/** Const view counterpart of FcLayerRef. */
struct ConstFcLayerRef
{
    std::string name;
    FcKind kind;
    std::size_t encoder;
    const Tensor *weight;
};

/**
 * A complete model: embeddings, encoder stack, pooler, and a task head.
 * The head shape depends on the task (3 classes for MNLI-like, 1 output
 * for STS-B-like, 2 outputs per token for SQuAD-like).
 */
class BertModel
{
  public:
    /** Allocate all tensors (zero-filled) for the given configuration. */
    explicit BertModel(ModelConfig config);

    const ModelConfig &config() const { return cfg; }

    Tensor wordEmbedding;   ///< [vocab, h]
    Tensor positionEmbedding; ///< [maxPosition, h]
    Tensor embLnGamma, embLnBeta; ///< [h], [h]

    std::vector<EncoderWeights> encoders;

    Tensor poolerW, poolerB; ///< [h, h], [h]

    Tensor headW, headB;     ///< [outputs, h], [outputs]

    /**
     * Enumerate all FC weight matrices in the paper's layer order:
     * encoder 0 (query, key, value, attn_output, intermediate, output),
     * encoder 1, ..., pooler. This is the x-axis of Fig. 3.
     */
    std::vector<FcLayerRef> fcLayers();
    std::vector<ConstFcLayerRef> fcLayers() const;

    /** Resize the task head to `outputs` rows. */
    void resizeHead(std::size_t outputs);

    /** Total FP32 parameter count held by this object. */
    std::size_t parameterCount() const;

  private:
    ModelConfig cfg;
};

} // namespace gobo

#endif // GOBO_MODEL_MODEL_HH
