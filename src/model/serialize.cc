#include "model/serialize.hh"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace gobo {

namespace {

constexpr std::uint32_t modelMagic = 0x474f424d; // "GOBM"
constexpr std::uint32_t modelVersion = 1;

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint64_t
readU64(std::istream &is)
{
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatalIf(!is, "model stream truncated reading u64");
    return v;
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatalIf(!is, "model stream truncated reading u32");
    return v;
}

/**
 * Largest plausible tensor dimension / element count in a model file.
 * The biggest real tensor in scope (BERT-Large word embedding) is
 * ~31M elements; 2^31 leaves two orders of magnitude headroom while a
 * corrupt u64 header would otherwise request a multi-TB allocation
 * and die on bad_alloc instead of a clean fatal.
 */
constexpr std::uint64_t dimCeiling = std::uint64_t{1} << 31;

std::uint64_t
readDim(std::istream &is, const char *what)
{
    std::uint64_t v = readU64(is);
    fatalIf(v > dimCeiling, "model stream corrupt: ", what, " ", v,
            " exceeds plausible ceiling ", dimCeiling);
    return v;
}

template <typename Model, typename Fn>
void
forEachTensor(Model &m, Fn fn)
{
    fn(m.wordEmbedding);
    fn(m.positionEmbedding);
    fn(m.embLnGamma);
    fn(m.embLnBeta);
    for (auto &enc : m.encoders) {
        fn(enc.queryW); fn(enc.queryB);
        fn(enc.keyW); fn(enc.keyB);
        fn(enc.valueW); fn(enc.valueB);
        fn(enc.attnOutW); fn(enc.attnOutB);
        fn(enc.attnLnGamma); fn(enc.attnLnBeta);
        fn(enc.interW); fn(enc.interB);
        fn(enc.outW); fn(enc.outB);
        fn(enc.outLnGamma); fn(enc.outLnBeta);
    }
    fn(m.poolerW); fn(m.poolerB);
    fn(m.headW); fn(m.headB);
}

} // namespace

void
writeTensor(std::ostream &os, const Tensor &t)
{
    writeU32(os, static_cast<std::uint32_t>(t.rank()));
    for (std::size_t d = 0; d < t.rank(); ++d)
        writeU64(os, t.dim(d));
    auto flat = t.flat();
    os.write(reinterpret_cast<const char *>(flat.data()),
             static_cast<std::streamsize>(flat.size() * sizeof(float)));
}

Tensor
readTensor(std::istream &is)
{
    std::uint32_t rank = readU32(is);
    fatalIf(rank > 2, "tensor rank ", rank, " unsupported");
    Tensor t;
    if (rank == 1) {
        t = Tensor(static_cast<std::size_t>(readDim(is, "tensor length")));
    } else if (rank == 2) {
        std::size_t r = static_cast<std::size_t>(readDim(is, "tensor rows"));
        std::size_t c = static_cast<std::size_t>(readDim(is, "tensor cols"));
        fatalIf(r != 0 && c > dimCeiling / r,
                "model stream corrupt: tensor ", r, "x", c,
                " exceeds plausible ceiling ", dimCeiling);
        t = Tensor(r, c);
    }
    auto flat = t.flat();
    is.read(reinterpret_cast<char *>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
    fatalIf(!is && flat.size() > 0, "model stream truncated reading tensor");
    return t;
}

void
saveModel(std::ostream &os, const BertModel &model)
{
    const auto &c = model.config();
    writeU32(os, modelMagic);
    writeU32(os, modelVersion);
    writeU32(os, static_cast<std::uint32_t>(c.family));
    writeU64(os, c.numLayers);
    writeU64(os, c.hidden);
    writeU64(os, c.intermediate);
    writeU64(os, c.numHeads);
    writeU64(os, c.vocabSize);
    writeU64(os, c.maxPosition);
    writeU64(os, c.name.size());
    os.write(c.name.data(), static_cast<std::streamsize>(c.name.size()));
    writeU64(os, model.headW.rows());

    forEachTensor(model, [&](const Tensor &t) { writeTensor(os, t); });
}

void
saveModel(const std::string &path, const BertModel &model)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open ", path, " for writing");
    saveModel(os, model);
    fatalIf(!os, "write to ", path, " failed");
}

BertModel
loadModel(std::istream &is)
{
    fatalIf(readU32(is) != modelMagic, "bad model magic");
    std::uint32_t version = readU32(is);
    fatalIf(version != modelVersion, "unsupported model version ",
            version);

    // The config dims size every tensor BertModel(c) allocates below,
    // so they go through the same ceiling as raw tensor headers.
    ModelConfig c;
    c.family = static_cast<ModelFamily>(readU32(is));
    c.numLayers = static_cast<std::size_t>(readDim(is, "numLayers"));
    c.hidden = static_cast<std::size_t>(readDim(is, "hidden"));
    c.intermediate = static_cast<std::size_t>(readDim(is, "intermediate"));
    c.numHeads = static_cast<std::size_t>(readDim(is, "numHeads"));
    c.vocabSize = static_cast<std::size_t>(readDim(is, "vocabSize"));
    c.maxPosition = static_cast<std::size_t>(readDim(is, "maxPosition"));
    std::size_t name_len = static_cast<std::size_t>(readU64(is));
    fatalIf(name_len > 4096, "model name length ", name_len,
            " implausible");
    c.name.resize(name_len);
    is.read(c.name.data(), static_cast<std::streamsize>(name_len));
    fatalIf(!is, "model stream truncated reading name");
    std::size_t head_outputs
        = static_cast<std::size_t>(readDim(is, "head outputs"));

    BertModel m(c);
    m.resizeHead(head_outputs);
    forEachTensor(m, [&](Tensor &t) {
        Tensor loaded = readTensor(is);
        fatalIf(loaded.rank() != t.rank() || loaded.size() != t.size(),
                "tensor shape mismatch while loading model");
        t = std::move(loaded);
    });
    return m;
}

BertModel
loadModel(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open ", path, " for reading");
    return loadModel(is);
}

} // namespace gobo
