/**
 * @file
 * Model configurations for the BERT family (paper Table I) and the
 * reduced-dimension "mini" variants used for inference-accuracy
 * experiments.
 *
 * Full-size configurations carry the exact dimensions of the released
 * checkpoints so that footprint and compression-ratio experiments
 * (Tables II, III, VII) account bytes exactly. Mini configurations keep
 * the layer counts and component structure but shrink the hidden sizes
 * so the accuracy sweeps (Tables III-VI, Fig. 4) run in minutes.
 */

#ifndef GOBO_MODEL_CONFIG_HH
#define GOBO_MODEL_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace gobo {

/** The five models the paper evaluates. */
enum class ModelFamily
{
    BertBase,
    BertLarge,
    DistilBert,
    RoBerta,
    RoBertaLarge,
};

/** Printable name of a family ("BERT-Base", ...). */
std::string familyName(ModelFamily family);

/** Kinds of FC weight matrices inside a transformer encoder. */
enum class FcKind
{
    Query,        ///< Attention query projection [h, h].
    Key,          ///< Attention key projection [h, h].
    Value,        ///< Attention value projection [h, h].
    AttnOutput,   ///< Attention output projection [h, h].
    Intermediate, ///< FFN up-projection [i, h].
    Output,       ///< FFN down-projection [h, i].
    Pooler,       ///< Final pooler [h, h].
};

/** Printable name of an FC kind ("query", "intermediate", ...). */
std::string fcKindName(FcKind kind);

/** Architecture hyper-parameters of one model. */
struct ModelConfig
{
    std::string name;          ///< Human-readable name.
    ModelFamily family = ModelFamily::BertBase;
    std::size_t numLayers = 0;     ///< Encoder (BERT layer) count.
    std::size_t hidden = 0;        ///< Hidden state width.
    std::size_t intermediate = 0;  ///< FFN inner width.
    std::size_t numHeads = 0;      ///< Attention heads.
    std::size_t vocabSize = 0;     ///< Word-embedding rows.
    std::size_t maxPosition = 0;   ///< Position-embedding rows.

    /** Head size; hidden must divide evenly by numHeads. */
    std::size_t headDim() const { return hidden / numHeads; }

    /** Number of FC weight matrices (6 per encoder + pooler). */
    std::size_t numFcLayers() const { return numLayers * 6 + 1; }

    /**
     * Parameters in all FC weight matrices (weights only, matching the
     * paper's Table II accounting which excludes biases and layer-norm).
     */
    std::size_t fcWeightParams() const;

    /**
     * Parameters in the word-embedding table (the paper's Table II/VII
     * "Embedding Tables" row counts the word table only; the reported
     * MB figures are MiB of vocab x hidden FP32 values).
     */
    std::size_t wordEmbeddingParams() const { return vocabSize * hidden; }

    /** Validate internal consistency; fatal on error. */
    void check() const;
};

/** Full-size configuration with the released checkpoint dimensions. */
ModelConfig fullConfig(ModelFamily family);

/**
 * Reduced-dimension configuration for accuracy experiments. Layer count
 * and component structure match the family; hidden sizes are scaled so
 * a forward pass is cheap. Deterministic per family.
 */
ModelConfig miniConfig(ModelFamily family);

/** All five families, in the paper's presentation order. */
std::vector<ModelFamily> allFamilies();

} // namespace gobo

#endif // GOBO_MODEL_CONFIG_HH
