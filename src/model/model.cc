#include "model/model.hh"

#include "util/logging.hh"

namespace gobo {

BertModel::BertModel(ModelConfig config) : cfg(std::move(config))
{
    cfg.check();
    std::size_t h = cfg.hidden;
    std::size_t inter = cfg.intermediate;

    wordEmbedding = Tensor(cfg.vocabSize, h);
    positionEmbedding = Tensor(cfg.maxPosition, h);
    embLnGamma = Tensor(h);
    embLnBeta = Tensor(h);
    embLnGamma.fill(1.0f);

    encoders.resize(cfg.numLayers);
    for (auto &enc : encoders) {
        enc.queryW = Tensor(h, h);
        enc.queryB = Tensor(h);
        enc.keyW = Tensor(h, h);
        enc.keyB = Tensor(h);
        enc.valueW = Tensor(h, h);
        enc.valueB = Tensor(h);
        enc.attnOutW = Tensor(h, h);
        enc.attnOutB = Tensor(h);
        enc.attnLnGamma = Tensor(h);
        enc.attnLnBeta = Tensor(h);
        enc.attnLnGamma.fill(1.0f);
        enc.interW = Tensor(inter, h);
        enc.interB = Tensor(inter);
        enc.outW = Tensor(h, inter);
        enc.outB = Tensor(h);
        enc.outLnGamma = Tensor(h);
        enc.outLnBeta = Tensor(h);
        enc.outLnGamma.fill(1.0f);
    }

    poolerW = Tensor(h, h);
    poolerB = Tensor(h);
    headW = Tensor(1, h);
    headB = Tensor(1);
}

namespace {

template <typename Ref, typename Model>
std::vector<Ref>
enumerateFcLayers(Model &m)
{
    std::vector<Ref> out;
    out.reserve(m.config().numFcLayers());
    for (std::size_t e = 0; e < m.encoders.size(); ++e) {
        auto &enc = m.encoders[e];
        std::string prefix = "encoder" + std::to_string(e) + ".";
        out.push_back({prefix + "query", FcKind::Query, e, &enc.queryW});
        out.push_back({prefix + "key", FcKind::Key, e, &enc.keyW});
        out.push_back({prefix + "value", FcKind::Value, e, &enc.valueW});
        out.push_back({prefix + "attn_output", FcKind::AttnOutput, e,
                       &enc.attnOutW});
        out.push_back({prefix + "intermediate", FcKind::Intermediate, e,
                       &enc.interW});
        out.push_back({prefix + "output", FcKind::Output, e, &enc.outW});
    }
    out.push_back({"pooler", FcKind::Pooler, m.encoders.size(),
                   &m.poolerW});
    return out;
}

} // namespace

std::vector<FcLayerRef>
BertModel::fcLayers()
{
    return enumerateFcLayers<FcLayerRef>(*this);
}

std::vector<ConstFcLayerRef>
BertModel::fcLayers() const
{
    return enumerateFcLayers<ConstFcLayerRef>(*this);
}

void
BertModel::resizeHead(std::size_t outputs)
{
    fatalIf(outputs == 0, "head needs at least one output");
    headW = Tensor(outputs, cfg.hidden);
    headB = Tensor(outputs);
}

std::size_t
BertModel::parameterCount() const
{
    std::size_t n = wordEmbedding.size() + positionEmbedding.size()
                    + embLnGamma.size() + embLnBeta.size();
    for (const auto &enc : encoders) {
        n += enc.queryW.size() + enc.queryB.size() + enc.keyW.size()
             + enc.keyB.size() + enc.valueW.size() + enc.valueB.size()
             + enc.attnOutW.size() + enc.attnOutB.size()
             + enc.attnLnGamma.size() + enc.attnLnBeta.size()
             + enc.interW.size() + enc.interB.size() + enc.outW.size()
             + enc.outB.size() + enc.outLnGamma.size()
             + enc.outLnBeta.size();
    }
    n += poolerW.size() + poolerB.size() + headW.size() + headB.size();
    return n;
}

} // namespace gobo
