#include "core/quantizer.hh"

#include "core/outliers.hh"
#include "model/generate.hh"
#include "util/bitstream.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace gobo {

QuantizedTensor
quantizeTensor(const Tensor &weights, const GoboConfig &config,
               LayerQuantStats *stats)
{
    fatalIf(weights.size() < 2, "quantizeTensor needs at least 2 weights");
    fatalIf(config.bits == 0 || config.bits > 8,
            "quantizeTensor bits out of range: ", config.bits);

    auto flat = weights.flat();

    QuantizedTensor q;
    q.bits = config.bits;
    q.rows = weights.rows();
    q.cols = weights.cols();

    LayerQuantStats local;
    local.weightCount = flat.size();

    ClusterResult cluster;
    if (config.detectOutliers) {
        OutlierSplit split = splitOutliers(flat, config.outlierThreshold);
        local.mean = split.fit.mean();
        local.sigma = split.fit.sigma();
        local.outlierCount = split.outlierValues.size();
        local.outlierFraction = split.outlierFraction();
        fatalIf(split.gValues.empty(),
                "outlier threshold classified every weight as outlier");
        cluster = clusterWeights(split.gValues, config.bits, config.method,
                                 config.maxIterations);
        q.outlierPositions = std::move(split.outlierPositions);
        q.outlierValues = std::move(split.outlierValues);
    } else {
        GaussianFit fit = GaussianFit::fit(flat);
        local.mean = fit.mean();
        local.sigma = fit.sigma();
        cluster = clusterWeights(flat, config.bits, config.method,
                                 config.maxIterations);
    }

    local.iterations = cluster.iterations;
    local.finalL1 = cluster.finalL1;
    local.finalL2 = cluster.finalL2;

    q.centroids = std::move(cluster.centroids);
    // Every position gets an index (outlier slots carry the nearest
    // centroid and are overridden at decode); this keeps the stream a
    // fixed-rate B bits per weight, which is also what the paper's
    // compression arithmetic assumes.
    auto indexes = assignNearest(flat, q.centroids);
    q.packedIndexes = packIndexes(indexes, q.bits);
    q.check();

    if (stats)
        *stats = local;
    return q;
}

unsigned
ModelQuantOptions::effectiveBits(FcKind kind, std::size_t encoder) const
{
    if (bitsFor) {
        unsigned b = bitsFor(kind, encoder);
        fatalIf(b == 0 || b > 8, "bitsFor returned invalid width ", b);
        return b;
    }
    return base.bits;
}

double
ModelQuantReport::weightCompressionRatio() const
{
    if (weightPayloadBytes == 0)
        return 1.0;
    return static_cast<double>(weightOriginalBytes)
           / static_cast<double>(weightPayloadBytes);
}

double
ModelQuantReport::embeddingCompressionRatio() const
{
    if (embeddingPayloadBytes == 0)
        return 1.0;
    return static_cast<double>(embeddingOriginalBytes)
           / static_cast<double>(embeddingPayloadBytes);
}

double
ModelQuantReport::totalCompressionRatio() const
{
    std::size_t orig = weightOriginalBytes + embeddingOriginalBytes;
    std::size_t comp = weightPayloadBytes + embeddingPayloadBytes;
    if (comp == 0)
        return 1.0;
    return static_cast<double>(orig) / static_cast<double>(comp);
}

double
ModelQuantReport::overallOutlierFraction() const
{
    std::size_t total = 0, outliers = 0;
    for (const auto &entry : layers) {
        total += entry.elements;
        outliers += entry.stats.outlierCount;
    }
    if (total == 0)
        return 0.0;
    return static_cast<double>(outliers) / static_cast<double>(total);
}

namespace {

LayerReportEntry
accountLayer(const std::string &name, FcKind kind, std::size_t encoder,
             const QuantizedTensor &q, const LayerQuantStats &stats)
{
    LayerReportEntry entry;
    entry.name = name;
    entry.kind = kind;
    entry.encoder = encoder;
    entry.elements = q.elementCount();
    entry.bits = q.bits;
    entry.payloadBytes = q.payloadBytes();
    entry.stats = stats;
    return entry;
}

} // namespace

ModelQuantReport
quantizeModelInPlace(BertModel &model, const ModelQuantOptions &options)
{
    ModelQuantReport report;

    auto layers = model.fcLayers();
    std::vector<LayerReportEntry> entries(layers.size());
    parallelFor(layers.size(), options.threads, [&](std::size_t i) {
        auto &layer = layers[i];
        GoboConfig cfg = options.base;
        cfg.bits = options.effectiveBits(layer.kind, layer.encoder);
        LayerQuantStats stats;
        QuantizedTensor q = quantizeTensor(*layer.weight, cfg, &stats);
        entries[i] = accountLayer(layer.name, layer.kind, layer.encoder,
                                  q, stats);
        *layer.weight = q.dequantize();
    });
    for (auto &entry : entries) {
        report.weightOriginalBytes += entry.elements * sizeof(float);
        report.weightPayloadBytes += entry.payloadBytes;
        report.layers.push_back(std::move(entry));
    }

    report.embeddingOriginalBytes = model.wordEmbedding.size()
                                    * sizeof(float);
    if (options.embeddingBits > 0) {
        GoboConfig cfg = options.base;
        cfg.bits = options.embeddingBits;
        LayerQuantStats stats;
        QuantizedTensor q = quantizeTensor(model.wordEmbedding, cfg,
                                           &stats);
        report.embeddingPayloadBytes = q.payloadBytes();
        model.wordEmbedding = q.dequantize();
    } else {
        report.embeddingPayloadBytes = report.embeddingOriginalBytes;
    }
    return report;
}

ModelQuantReport
quantizeConfigStreaming(const ModelConfig &config, std::uint64_t seed,
                        const ModelQuantOptions &options)
{
    ModelQuantReport report;

    auto specs = fcLayerSpecs(config);
    std::vector<LayerReportEntry> entries(specs.size());
    parallelFor(specs.size(), options.threads, [&](std::size_t i) {
        const auto &spec = specs[i];
        Tensor w = generateFcWeight(config, spec, seed);
        GoboConfig cfg = options.base;
        cfg.bits = options.effectiveBits(spec.kind, spec.encoder);
        LayerQuantStats stats;
        QuantizedTensor q = quantizeTensor(w, cfg, &stats);
        entries[i] = accountLayer(spec.name, spec.kind, spec.encoder, q,
                                  stats);
    });
    for (auto &entry : entries) {
        report.weightOriginalBytes += entry.elements * sizeof(float);
        report.weightPayloadBytes += entry.payloadBytes;
        report.layers.push_back(std::move(entry));
    }

    report.embeddingOriginalBytes = config.wordEmbeddingParams()
                                    * sizeof(float);
    if (options.embeddingBits > 0) {
        Tensor emb = generateWordEmbedding(config, seed);
        GoboConfig cfg = options.base;
        cfg.bits = options.embeddingBits;
        QuantizedTensor q = quantizeTensor(emb, cfg);
        report.embeddingPayloadBytes = q.payloadBytes();
    } else {
        report.embeddingPayloadBytes = report.embeddingOriginalBytes;
    }
    return report;
}

std::function<unsigned(FcKind, std::size_t)>
mixedPolicy(std::size_t sensitive_encoders, unsigned low_bits,
            unsigned high_bits)
{
    return [=](FcKind kind, std::size_t encoder) {
        bool sensitive = (kind == FcKind::Value
                          || kind == FcKind::Intermediate)
                         && encoder < sensitive_encoders;
        return sensitive ? high_bits : low_bits;
    };
}

} // namespace gobo
