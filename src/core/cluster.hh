/**
 * @file
 * One-dimensional centroid selection for the "G" group.
 *
 * All three policies the paper compares live here:
 *
 *  - GOBO: equal-population (sorted) initialization, then Lloyd-style
 *    iterations (re-assign each weight to the nearest centroid,
 *    recompute centroids as cluster means) while monitoring the total
 *    L1-norm between weights and their centroids; the iteration stops
 *    at the L1 minimum (Sec. IV-B).
 *  - K-Means: identical initialization and update rule, but iterated
 *    until the cluster assignments stop changing — the classic L2
 *    objective. The paper reports GOBO converging ~9x faster.
 *  - Linear: 2^bits equidistant centroids spanning the G-group range
 *    (no iterations).
 *
 * Because the problem is one-dimensional, clusters are contiguous
 * ranges of the sorted weights and every Lloyd iteration runs in
 * O(K log N) over a sorted+prefix-sum representation: assignment
 * boundaries are binary searches for centroid midpoints, cluster means
 * come from prefix sums, and the exact L1/L2 norms of a segment around
 * its centroid come from a second binary search within the segment.
 * This makes quantizing a full-size BERT-Large a matter of seconds on
 * one core (the paper reports ~10 minutes with scikit-learn).
 */

#ifndef GOBO_CORE_CLUSTER_HH
#define GOBO_CORE_CLUSTER_HH

#include <cstdint>
#include <span>
#include <vector>

namespace gobo {

/** Centroid-selection policy for the G group. */
enum class CentroidMethod
{
    Gobo,   ///< L1-monitored iterative refinement (the contribution).
    KMeans, ///< L2 / assignment-convergence iteration.
    Linear, ///< Equidistant centroids over the G range.
};

/** Printable name ("GOBO", "K-Means", "Linear"). */
const char *centroidMethodName(CentroidMethod method);

/**
 * Sorted view of a weight population with prefix sums, supporting the
 * O(log N) segment queries every Lloyd iteration needs.
 */
class SortedWeights
{
  public:
    /** Copy and sort the values; O(N log N), done once per layer. */
    explicit SortedWeights(std::span<const float> values);

    std::size_t size() const { return vals.size(); }

    /** The sorted values. */
    const std::vector<float> &values() const { return vals; }

    /** Index of the first value >= x. */
    std::size_t lowerBound(double x) const;

    /** Sum of values in [begin, end). */
    double segmentSum(std::size_t begin, std::size_t end) const;

    /** Mean of values in [begin, end); fatal when empty. */
    double segmentMean(std::size_t begin, std::size_t end) const;

    /** Exact sum of |v - c| over [begin, end). */
    double segmentL1(std::size_t begin, std::size_t end, double c) const;

    /** Exact sum of (v - c)^2 over [begin, end). */
    double segmentL2(std::size_t begin, std::size_t end, double c) const;

  private:
    std::vector<float> vals;
    std::vector<double> prefix;   ///< prefix[i] = sum of first i values.
    std::vector<double> prefixSq; ///< prefix of squares.
};

/** One Lloyd iteration's objective values (the Fig. 2 series). */
struct IterationRecord
{
    double l1 = 0.0; ///< Total L1-norm after the iteration.
    double l2 = 0.0; ///< Total L2-norm after the iteration.
};

/** Output of clusterWeights. */
struct ClusterResult
{
    /** Final centroids, ascending. Size is at most 2^bits. */
    std::vector<float> centroids;

    /** Objective trajectory, entry 0 being the initialization. */
    std::vector<IterationRecord> history;

    /**
     * Iterations until the stopping rule fired: the L1-minimum index
     * for GOBO, the assignment-fixpoint index for K-Means, 0 for
     * Linear.
     */
    std::size_t iterations = 0;

    /** Final total L1-norm between weights and assigned centroids. */
    double finalL1 = 0.0;

    /** Final total L2-norm. */
    double finalL2 = 0.0;
};

/**
 * Select centroids for a G-group population.
 *
 * @param g_values non-outlier weights (any order).
 * @param bits index width; 2^bits centroids are used.
 * @param method centroid-selection policy.
 * @param max_iterations safety bound on Lloyd iterations.
 * @param kmeans_tol K-Means also stops once the relative L2
 *        improvement of an iteration falls below this (the standard
 *        inertia tolerance; an exact assignment fixpoint on millions
 *        of weights takes hundreds of no-op iterations otherwise).
 */
ClusterResult clusterWeights(std::span<const float> g_values, unsigned bits,
                             CentroidMethod method,
                             std::size_t max_iterations = 300,
                             double kmeans_tol = 1e-7);

/**
 * Assign each value to the nearest centroid (midpoint rule; centroids
 * must be ascending). Returns one index per value.
 */
std::vector<std::uint32_t> assignNearest(
    std::span<const float> values, std::span<const float> centroids);

/**
 * Equal-population initial centroids over a sorted population: cut the
 * sorted weights into 2^bits equal-size bins and take each bin's mean
 * (paper Sec. IV-B steps 3-4).
 */
std::vector<float> equalPopulationCentroids(const SortedWeights &sorted,
                                            std::size_t k);

/** Equidistant centroids over [min, max] (linear quantization). */
std::vector<float> linearCentroids(double min_value, double max_value,
                                   std::size_t k);

} // namespace gobo

#endif // GOBO_CORE_CLUSTER_HH
