#include "core/qtensor.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/bitstream.hh"
#include "util/logging.hh"

namespace gobo {

namespace {

constexpr std::uint32_t qtMagic = 0x474f4251; // "GOBQ"
constexpr std::uint32_t qtVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatalIf(!is, "quantized tensor stream truncated");
    return v;
}

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    writePod<std::uint64_t>(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &is, std::size_t limit)
{
    auto n = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    fatalIf(n > limit, "quantized tensor vector length ", n,
            " exceeds plausible limit ", limit);
    std::vector<T> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    fatalIf(!is && n > 0, "quantized tensor stream truncated");
    return v;
}

} // namespace

void
QuantizedTensor::check() const
{
    fatalIf(bits == 0 || bits > 8, "QuantizedTensor bits out of range: ",
            bits);
    fatalIf(centroids.empty(), "QuantizedTensor has no centroids");
    fatalIf(centroids.size() > (std::size_t{1} << bits),
            "QuantizedTensor has ", centroids.size(),
            " centroids but only ", bits, "-bit indexes");
    fatalIf(!std::is_sorted(centroids.begin(), centroids.end()),
            "QuantizedTensor centroids not ascending");
    fatalIf(packedIndexes.size() != (elementCount() * bits + 7) / 8,
            "QuantizedTensor packed payload size mismatch");
    // Every packed index must address the centroid table. A container
    // whose table deduplicated below 2^bits entries (or was corrupted
    // on disk) would otherwise be an out-of-bounds read in the
    // execution engines, which index without re-checking.
    if (centroids.size() < (std::size_t{1} << bits)) {
        BitReader reader(packedIndexes.data(), elementCount() * bits);
        for (std::size_t i = 0; i < elementCount(); ++i)
            fatalIf(reader.get(bits) >= centroids.size(),
                    "QuantizedTensor packed index out of centroid "
                    "table of ", centroids.size());
    }
    fatalIf(outlierPositions.size() != outlierValues.size(),
            "QuantizedTensor outlier position/value count mismatch");
    fatalIf(!std::is_sorted(outlierPositions.begin(),
                            outlierPositions.end()),
            "QuantizedTensor outlier positions not ascending");
    fatalIf(!outlierPositions.empty()
                && outlierPositions.back() >= elementCount(),
            "QuantizedTensor outlier position out of range");
}

Tensor
QuantizedTensor::dequantize() const
{
    check();
    Tensor t(rows, cols);
    auto flat = t.flat();
    BitReader reader(packedIndexes.data(), elementCount() * bits);
    for (std::size_t i = 0; i < flat.size(); ++i) {
        std::uint32_t idx = reader.get(bits);
        fatalIf(idx >= centroids.size(), "index ", idx,
                " out of centroid table of ", centroids.size());
        flat[i] = centroids[idx];
    }
    for (std::size_t o = 0; o < outlierPositions.size(); ++o)
        flat[outlierPositions[o]] = outlierValues[o];
    return t;
}

std::uint32_t
QuantizedTensor::indexAt(std::size_t pos) const
{
    fatalIf(pos >= elementCount(), "indexAt position ", pos,
            " out of range ", elementCount());
    std::size_t bit = pos * bits;
    std::size_t byte = bit / 8;
    auto shift = static_cast<unsigned>(bit % 8);
    std::uint32_t window = packedIndexes[byte];
    if (shift + bits > 8)
        window |= static_cast<std::uint32_t>(packedIndexes[byte + 1]) << 8;
    return (window >> shift) & ((1u << bits) - 1u);
}

std::size_t
QuantizedTensor::payloadBits() const
{
    return elementCount() * bits + centroids.size() * 32
           + outlierPositions.size() * (32 + 32);
}

std::size_t
QuantizedTensor::payloadBytes() const
{
    return (payloadBits() + 7) / 8;
}

std::size_t
QuantizedTensor::originalBytes() const
{
    return elementCount() * sizeof(float);
}

double
QuantizedTensor::compressionRatio() const
{
    return static_cast<double>(originalBytes())
           / static_cast<double>(payloadBytes());
}

double
QuantizedTensor::outlierFraction() const
{
    if (elementCount() == 0)
        return 0.0;
    return static_cast<double>(outlierPositions.size())
           / static_cast<double>(elementCount());
}

std::vector<std::uint64_t>
QuantizedTensor::centroidOccupancy() const
{
    std::vector<std::uint64_t> counts(centroids.size(), 0);
    BitReader reader(packedIndexes.data(), elementCount() * bits);
    for (std::size_t i = 0; i < elementCount(); ++i) {
        std::uint32_t idx = reader.get(bits);
        fatalIf(idx >= centroids.size(), "occupancy index ", idx,
                " out of centroid table of ", centroids.size());
        ++counts[idx];
    }
    return counts;
}

void
QuantizedTensor::save(std::ostream &os) const
{
    check();
    writePod(os, qtMagic);
    writePod(os, qtVersion);
    writePod<std::uint32_t>(os, bits);
    writePod<std::uint64_t>(os, rows);
    writePod<std::uint64_t>(os, cols);
    writeVec(os, centroids);
    writeVec(os, packedIndexes);
    writeVec(os, outlierPositions);
    writeVec(os, outlierValues);
}

QuantizedTensor
QuantizedTensor::load(std::istream &is)
{
    fatalIf(readPod<std::uint32_t>(is) != qtMagic,
            "bad quantized tensor magic");
    auto version = readPod<std::uint32_t>(is);
    fatalIf(version != qtVersion, "unsupported quantized tensor version ",
            version);

    QuantizedTensor q;
    q.bits = readPod<std::uint32_t>(is);
    fatalIf(q.bits == 0 || q.bits > 8, "bits field corrupt: ", q.bits);
    q.rows = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    q.cols = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    std::size_t n = q.rows * q.cols;
    q.centroids = readVec<float>(is, std::size_t{1} << q.bits);
    q.packedIndexes = readVec<std::uint8_t>(is, n * q.bits / 8 + 8);
    q.outlierPositions = readVec<std::uint32_t>(is, n);
    q.outlierValues = readVec<float>(is, n);
    q.check();
    return q;
}

} // namespace gobo
