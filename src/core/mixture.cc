#include "core/mixture.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

#include "util/logging.hh"
#include "util/stats.hh"

namespace gobo {

namespace {

constexpr double logTwoPi = 1.8378770664093453; // log(2*pi)

/** log N(x | mean, sigma^2). */
double
logNormal(double x, double mean, double sigma)
{
    double z = (x - mean) / sigma;
    return -0.5 * (logTwoPi + z * z) - std::log(sigma);
}

/** log(sum(exp(a_i))) over a small fixed-size set, stable. */
double
logSumExp(std::span<const double> a)
{
    double mx = -std::numeric_limits<double>::infinity();
    for (double v : a)
        mx = std::max(mx, v);
    if (!std::isfinite(mx))
        return mx;
    double s = 0.0;
    for (double v : a)
        s += std::exp(v - mx);
    return mx + std::log(s);
}

} // namespace

GaussianMixture
GaussianMixture::fit(std::span<const float> xs, std::size_t k,
                     std::size_t max_iterations, double tol)
{
    fatalIf(xs.size() < 2, "GaussianMixture::fit needs >= 2 samples");
    fatalIf(k == 0, "GaussianMixture::fit needs >= 1 component");
    fatalIf(k > 16, "GaussianMixture::fit supports <= 16 components");

    RunningStats rs;
    rs.addAll(xs);
    double global_sd = rs.stddev();
    fatalIf(global_sd == 0.0, "GaussianMixture::fit on constant data");

    GaussianMixture gm;
    gm.comps.resize(k);
    // Initialization: equal weights, common mean, staggered scales —
    // natural for the "narrow bulk + wide shoulder" shapes we model.
    for (std::size_t c = 0; c < k; ++c) {
        gm.comps[c].weight = 1.0 / static_cast<double>(k);
        gm.comps[c].mean = rs.mean();
        gm.comps[c].sigma = global_sd
                            * (0.5 + static_cast<double>(c));
    }
    if (k == 1) {
        gm.comps[0] = {1.0, rs.mean(), global_sd};
        gm.meanLl = 0.0;
        for (float x : xs)
            gm.meanLl += logNormal(x, rs.mean(), global_sd);
        gm.meanLl /= static_cast<double>(xs.size());
        gm.iters = 0;
        return gm;
    }

    auto n = static_cast<double>(xs.size());
    std::vector<double> log_terms(k);
    std::vector<double> resp_sum(k), resp_x(k), resp_xx(k);
    double prev_ll = -std::numeric_limits<double>::infinity();

    for (std::size_t iter = 1; iter <= max_iterations; ++iter) {
        std::fill(resp_sum.begin(), resp_sum.end(), 0.0);
        std::fill(resp_x.begin(), resp_x.end(), 0.0);
        std::fill(resp_xx.begin(), resp_xx.end(), 0.0);
        double ll = 0.0;

        // E step with on-the-fly sufficient statistics.
        for (float xf : xs) {
            double x = xf;
            for (std::size_t c = 0; c < k; ++c)
                log_terms[c] = std::log(gm.comps[c].weight)
                               + logNormal(x, gm.comps[c].mean,
                                           gm.comps[c].sigma);
            double lse = logSumExp(log_terms);
            ll += lse;
            for (std::size_t c = 0; c < k; ++c) {
                double r = std::exp(log_terms[c] - lse);
                resp_sum[c] += r;
                resp_x[c] += r * x;
                resp_xx[c] += r * x * x;
            }
        }
        ll /= n;

        // M step.
        for (std::size_t c = 0; c < k; ++c) {
            if (resp_sum[c] < 1e-9) {
                // Dead component: reset onto the global distribution.
                gm.comps[c] = {1.0 / n, rs.mean(), global_sd};
                continue;
            }
            double w = resp_sum[c] / n;
            double mu = resp_x[c] / resp_sum[c];
            double var = resp_xx[c] / resp_sum[c] - mu * mu;
            gm.comps[c].weight = w;
            gm.comps[c].mean = mu;
            gm.comps[c].sigma = std::sqrt(
                std::max(var, 1e-12 * global_sd * global_sd));
        }

        gm.iters = iter;
        gm.meanLl = ll;
        if (ll - prev_ll < tol && iter > 1)
            break;
        prev_ll = ll;
    }

    std::sort(gm.comps.begin(), gm.comps.end(),
              [](const Component &a, const Component &b) {
                  return a.sigma < b.sigma;
              });
    return gm;
}

double
GaussianMixture::logPdf(double x) const
{
    std::vector<double> log_terms(comps.size());
    for (std::size_t c = 0; c < comps.size(); ++c)
        log_terms[c] = std::log(comps[c].weight)
                       + logNormal(x, comps[c].mean, comps[c].sigma);
    return logSumExp(log_terms);
}

double
MixtureSplit::outlierFraction() const
{
    std::size_t total = gValues.size() + outlierValues.size();
    if (total == 0)
        return 0.0;
    return static_cast<double>(outlierValues.size())
           / static_cast<double>(total);
}

MixtureSplit
splitOutliersMixture(std::span<const float> weights,
                     std::size_t components, double log_prob_threshold)
{
    fatalIf(weights.size() < 2, "splitOutliersMixture needs >= 2 weights");
    auto gm = GaussianMixture::fit(weights, components);

    MixtureSplit split;
    split.gValues.reserve(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (gm.logPdf(weights[i]) < log_prob_threshold) {
            split.outlierPositions.push_back(
                static_cast<std::uint32_t>(i));
            split.outlierValues.push_back(weights[i]);
        } else {
            split.gValues.push_back(weights[i]);
        }
    }
    return split;
}

} // namespace gobo
