/**
 * @file
 * Direct execution from the GOBO format — the compute scheme of the
 * paper's hardware architecture, in software.
 *
 * Because 99.9% of a layer's weights take one of only 2^B values, an
 * FC output needs almost no multiplications:
 *
 *   y_o = sum_i w_oi x_i
 *       = sum_k c_k * (sum_{i: idx_oi = k} x_i)  +  outlier corrections
 *
 * i.e. per output, accumulate the activations into 2^B buckets
 * (additions only, steered by the 3-bit indexes), then do 2^B
 * multiplies by the centroid table. Outliers contribute one extra
 * correction MAC each: (w - c_assigned) * x. The GOBO accelerator
 * builds exactly this datapath; QuantizedLinear reproduces its
 * arithmetic (bit-identical outputs up to FP reassociation) and counts
 * the operations so the multiplier-reduction claim can be measured.
 */

#ifndef GOBO_CORE_QEXEC_HH
#define GOBO_CORE_QEXEC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/quantizer.hh"
#include "exec/context.hh"
#include "kernels/kernels.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** Operation counts for one forward pass. */
struct OpCounts
{
    std::size_t additions = 0;
    std::size_t multiplications = 0;

    OpCounts &
    operator+=(const OpCounts &o)
    {
        additions += o.additions;
        multiplications += o.multiplications;
        return *this;
    }
};

/**
 * An FC layer executed directly from its compressed representation:
 * y = x * W^T + bias with W held as (indexes, centroid table,
 * outliers) — never decoded to FP32.
 *
 * The index stream can be held in either WeightFormat: Unpacked widens
 * every index to one byte at construction (decode-free access, ~8/B
 * times the container bytes resident); Packed keeps only the B-bit
 * stream resident and decodes one output row at a time through the
 * executing tier's KernelSet::decodePackedRow — the generic decoder
 * uses a per-byte LUT (B dividing 8), a per-3-byte-group extraction
 * (B = 3), or a scalar two-byte window (B = 5..7); the avx512 tier
 * expands 64 indexes at a time in-register for B <= 6. Decode is
 * integer-exact, so every tier produces identical bytes, and both
 * formats feed the identical bucket/table/correction arithmetic —
 * outputs are bit-identical across formats and tiers.
 */
class QuantizedLinear
{
  public:
    /**
     * Take ownership of the compressed weights and FP32 bias. `label`
     * names this layer in trace spans and has no effect on compute
     * ("enc[e].query" etc. when built by QuantizedBertModel).
     */
    QuantizedLinear(QuantizedTensor weights, Tensor bias,
                    WeightFormat format = WeightFormat::Unpacked,
                    std::string label = "qlinear");

    /**
     * Forward pass via sequence-tiled per-centroid accumulation: the
     * activations are transposed once into seqTile-lane tiles (the
     * executing tier's width — 8 for generic/avx2, 16 for avx512),
     * each weight row is decoded once, and the bucket/table/correction
     * phases run vertically across the lanes through the context's
     * kernel tier. x is [seq, in]. Parallelizes over a 2-D
     * output-row-block × sequence-tile-block grid on the context's
     * backend, with per-worker scratch arenas (exec/scratch.hh)
     * holding the bucket accumulators and decoded packed rows — the
     * hot path never allocates, and a worker that owns several tile
     * blocks of one row block decodes that block once. Every y(s, o)
     * is produced by exactly one grid cell and keeps the serial
     * bucket/table/correction order (per lane, in double), so backends,
     * weight formats, kernel tiers AND thread counts are all
     * bit-identical here. When `counts` is non-null the operations
     * actually performed are accumulated into it (each task counts
     * locally, tasks are summed in index order).
     *
     * With an observer on the context, each call records one span
     * (named by `label`) plus qexec.* counters: rows decoded, weight
     * bytes streamed, outlier corrections applied, which decode
     * path ran (decode.lut / decode.group24 / decode.scalar /
     * decode.unpacked), and per-layer decoded-row cache hits/misses
     * (qexec.layer.<label>.decode_cache_hits/_misses — how the
     * pooler's cross-forward cache residency shows up in metrics).
     * Instrumentation happens outside the kernel loops and never
     * touches float math.
     */
    Tensor forward(const ExecContext &ctx, const Tensor &x,
                   OpCounts *counts = nullptr) const;
    Tensor forward(const Tensor &x) const;

    /** Operations a forward pass at this sequence length performs. */
    OpCounts opCounts(std::size_t seq) const;

    /** Operations the FP32 dense equivalent performs. */
    OpCounts denseOpCounts(std::size_t seq) const;

    /** Output features. */
    std::size_t outFeatures() const { return weights.rows; }

    /** Input features. */
    std::size_t inFeatures() const { return weights.cols; }

    /** The compressed weights (for storage accounting). */
    const QuantizedTensor &compressed() const { return weights; }

    /** How the index stream is held at runtime. */
    WeightFormat format() const { return fmt; }

    /** Trace-span name for this layer. */
    const std::string &spanLabel() const { return label; }

    /**
     * Bytes of weight state the forward pass actually streams: the
     * index store in its runtime format plus the centroid table and
     * outlier pairs (bias excluded, matching the paper's FC-weights
     * accounting).
     */
    std::size_t residentBytes() const;

  private:
    /** Decode row `row`'s `cols` indexes from the packed stream via
     * tier `kn`'s decoder (any tier yields identical bytes). */
    void decodeRow(const KernelSet &kn, std::size_t row,
                   std::uint8_t *out) const;

    QuantizedTensor weights;
    Tensor bias;
    WeightFormat fmt;
    std::string label;
    /** Process-unique tag for this layer's rows in the scratch-arena
     * decode cache (exec/scratch.hh); never a pointer, so a layer
     * reusing a freed layer's address cannot alias its cache. */
    std::uint64_t scratchId;
    /** Unpacked per-weight centroid indexes, row-major (Unpacked only). */
    std::vector<std::uint8_t> indexes;
    /**
     * One (column, correction) pair per outlier, grouped by row, in
     * the kernel layer's layout (kernels/kernels.hh) so phase 3 can
     * hand a row's slice straight to the outlier-correction kernel.
     */
    std::vector<OutlierTerm> outliers;
    std::vector<std::uint32_t> outlierRowStart; ///< rows+1 offsets.
};

/**
 * A whole model executing its FC layers from the compressed format.
 * Embeddings/biases/norms stay FP32 (as in the paper); the forward
 * pass mirrors nn/encoder exactly, so predictions match a decoded
 * model up to FP reassociation. All FC layers share one WeightFormat
 * (options.format); Packed and Unpacked models are bit-identical.
 */
class QuantizedBertModel
{
  public:
    /**
     * Quantize `model` per `options` into an executable form. The
     * source model is not modified.
     */
    QuantizedBertModel(const BertModel &model,
                       const ModelQuantOptions &options);

    /** Full encoder stack; mirrors gobo::encodeSequence. */
    Tensor encode(const ExecContext &ctx,
                  std::span<const std::int32_t> token_ids) const;
    Tensor encode(std::span<const std::int32_t> token_ids) const;

    /** Pooler + head logits; mirrors pool() + headLogits(). */
    Tensor classify(const ExecContext &ctx,
                    std::span<const std::int32_t> token_ids) const;
    Tensor classify(std::span<const std::int32_t> token_ids) const;

    /** Total operations for one sequence. */
    OpCounts opCounts(std::size_t seq) const;

    /** Dense-FP32 operations for the same sequence. */
    OpCounts denseOpCounts(std::size_t seq) const;

    /** Compressed bytes of all FC weights. */
    std::size_t compressedWeightBytes() const;

    /** Sum of QuantizedLinear::residentBytes over all FC layers. */
    std::size_t residentWeightBytes() const;

    /**
     * Visit every FC layer in BertModel::fcLayers() order — encoder 0
     * (query, key, value, attnOut, inter, out), encoder 1, ...,
     * pooler — so audits can zip the quantized layers with the FP32
     * originals.
     */
    void forEachLayer(
        const std::function<void(const QuantizedLinear &)> &fn) const;

    /** The runtime index format every FC layer uses. */
    WeightFormat format() const { return fmt; }

    const ModelConfig &config() const { return cfg; }

  private:
    struct EncoderLayers
    {
        QuantizedLinear query, key, value, attnOut, inter, out;
        Tensor attnLnGamma, attnLnBeta, outLnGamma, outLnBeta;
    };

    ModelConfig cfg;
    WeightFormat fmt;
    Tensor wordEmbedding, positionEmbedding, embLnGamma, embLnBeta;
    std::vector<EncoderLayers> encoders;
    QuantizedLinear pooler;
    Tensor headW, headB;
};

} // namespace gobo

#endif // GOBO_CORE_QEXEC_HH
