#include "core/container.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "model/serialize.hh"
#include "util/binio.hh"
#include "util/logging.hh"

namespace gobo {

namespace {

constexpr std::uint32_t containerMagic = 0x474f4243; // "GOBC"
constexpr std::uint32_t containerVersion = 1;

void
writeConfig(std::ostream &os, const ModelConfig &c)
{
    writePod<std::uint32_t>(os, static_cast<std::uint32_t>(c.family));
    writePod<std::uint64_t>(os, c.numLayers);
    writePod<std::uint64_t>(os, c.hidden);
    writePod<std::uint64_t>(os, c.intermediate);
    writePod<std::uint64_t>(os, c.numHeads);
    writePod<std::uint64_t>(os, c.vocabSize);
    writePod<std::uint64_t>(os, c.maxPosition);
    writeString(os, c.name);
}

ModelConfig
readConfig(std::istream &is)
{
    ModelConfig c;
    c.family = static_cast<ModelFamily>(readPod<std::uint32_t>(is));
    c.numLayers = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    c.hidden = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    c.intermediate = static_cast<std::size_t>(
        readPod<std::uint64_t>(is));
    c.numHeads = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    c.vocabSize = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    c.maxPosition = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    c.name = readString(is);
    c.check();
    return c;
}

} // namespace

ModelQuantReport
saveCompressedModel(std::ostream &os, const BertModel &model,
                    const ModelQuantOptions &options)
{
    ModelQuantReport report;
    const auto &cfg = model.config();

    writePod(os, containerMagic);
    writePod(os, containerVersion);
    writeConfig(os, cfg);
    writePod<std::uint64_t>(os, model.headW.rows());
    writePod<std::uint32_t>(os, options.embeddingBits);

    // Word embedding: quantized when requested, raw otherwise.
    report.embeddingOriginalBytes = model.wordEmbedding.size()
                                    * sizeof(float);
    if (options.embeddingBits > 0) {
        GoboConfig ecfg = options.base;
        ecfg.bits = options.embeddingBits;
        QuantizedTensor q = quantizeTensor(model.wordEmbedding, ecfg);
        q.save(os);
        report.embeddingPayloadBytes = q.payloadBytes();
    } else {
        writeTensor(os, model.wordEmbedding);
        report.embeddingPayloadBytes = report.embeddingOriginalBytes;
    }
    writeTensor(os, model.positionEmbedding);
    writeTensor(os, model.embLnGamma);
    writeTensor(os, model.embLnBeta);

    // FC weights in enumeration order, each as a quantized tensor.
    for (const auto &layer : model.fcLayers()) {
        GoboConfig lcfg = options.base;
        lcfg.bits = options.effectiveBits(layer.kind, layer.encoder);
        LayerQuantStats stats;
        QuantizedTensor q = quantizeTensor(*layer.weight, lcfg, &stats);
        q.save(os);

        LayerReportEntry entry;
        entry.name = layer.name;
        entry.kind = layer.kind;
        entry.encoder = layer.encoder;
        entry.elements = q.elementCount();
        entry.bits = q.bits;
        entry.payloadBytes = q.payloadBytes();
        entry.stats = stats;
        report.layers.push_back(std::move(entry));
        report.weightOriginalBytes += q.originalBytes();
        report.weightPayloadBytes += q.payloadBytes();
    }

    // FP32 remainder: biases and layer norms per encoder, pooler bias,
    // head.
    for (const auto &enc : model.encoders) {
        writeTensor(os, enc.queryB);
        writeTensor(os, enc.keyB);
        writeTensor(os, enc.valueB);
        writeTensor(os, enc.attnOutB);
        writeTensor(os, enc.attnLnGamma);
        writeTensor(os, enc.attnLnBeta);
        writeTensor(os, enc.interB);
        writeTensor(os, enc.outB);
        writeTensor(os, enc.outLnGamma);
        writeTensor(os, enc.outLnBeta);
    }
    writeTensor(os, model.poolerB);
    writeTensor(os, model.headW);
    writeTensor(os, model.headB);
    return report;
}

ModelQuantReport
saveCompressedModel(const std::string &path, const BertModel &model,
                    const ModelQuantOptions &options)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open ", path, " for writing");
    auto report = saveCompressedModel(os, model, options);
    fatalIf(!os, "write to ", path, " failed");
    return report;
}

BertModel
loadCompressedModel(std::istream &is)
{
    fatalIf(readPod<std::uint32_t>(is) != containerMagic,
            "bad compressed-model magic");
    auto version = readPod<std::uint32_t>(is);
    fatalIf(version != containerVersion,
            "unsupported compressed-model version ", version);

    ModelConfig cfg = readConfig(is);
    auto head_rows = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    auto emb_bits = readPod<std::uint32_t>(is);

    BertModel model(cfg);
    model.resizeHead(head_rows);

    auto expect_shape = [](const Tensor &t, std::size_t rows,
                           std::size_t cols, const char *what) {
        fatalIf(t.rows() != rows || t.cols() != cols,
                "compressed model shape mismatch for ", what);
    };

    if (emb_bits > 0) {
        QuantizedTensor q = QuantizedTensor::load(is);
        Tensor t = q.dequantize();
        expect_shape(t, cfg.vocabSize, cfg.hidden, "word embedding");
        model.wordEmbedding = std::move(t);
    } else {
        model.wordEmbedding = readTensor(is);
        expect_shape(model.wordEmbedding, cfg.vocabSize, cfg.hidden,
                     "word embedding");
    }
    model.positionEmbedding = readTensor(is);
    model.embLnGamma = readTensor(is);
    model.embLnBeta = readTensor(is);

    for (auto &layer : model.fcLayers()) {
        QuantizedTensor q = QuantizedTensor::load(is);
        Tensor t = q.dequantize();
        expect_shape(t, layer.weight->rows(), layer.weight->cols(),
                     layer.name.c_str());
        *layer.weight = std::move(t);
    }

    for (auto &enc : model.encoders) {
        enc.queryB = readTensor(is);
        enc.keyB = readTensor(is);
        enc.valueB = readTensor(is);
        enc.attnOutB = readTensor(is);
        enc.attnLnGamma = readTensor(is);
        enc.attnLnBeta = readTensor(is);
        enc.interB = readTensor(is);
        enc.outB = readTensor(is);
        enc.outLnGamma = readTensor(is);
        enc.outLnBeta = readTensor(is);
    }
    model.poolerB = readTensor(is);
    model.headW = readTensor(is);
    model.headB = readTensor(is);
    return model;
}

BertModel
loadCompressedModel(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open ", path, " for reading");
    return loadCompressedModel(is);
}

} // namespace gobo
