/**
 * @file
 * The GOBO compressed-model container ("GOBC").
 *
 * This is the deployable artifact of the whole pipeline: every FC
 * weight matrix stored in the GOBO format (packed B-bit indexes, FP32
 * centroid table, FP32 outliers), the word embedding optionally
 * quantized the same way, and everything the paper leaves FP32 —
 * biases, layer norms, position embeddings, the task head — stored
 * raw. Loading decodes back into a plain FP32 BertModel, which is what
 * makes GOBO "plug-in compatible with any execution engine": the
 * loaded model runs through the unmodified inference engine.
 *
 * The file size is the honest end-to-end measurement behind the
 * compression-ratio claims: compare it against the FP32 model written
 * by saveModel().
 */

#ifndef GOBO_CORE_CONTAINER_HH
#define GOBO_CORE_CONTAINER_HH

#include <iosfwd>
#include <string>

#include "core/quantizer.hh"
#include "model/model.hh"

namespace gobo {

/**
 * Quantize `model`'s FC weights (and optionally the word embedding)
 * per `options` and write the compressed container. The model itself
 * is not modified. Returns the same accounting quantizeModelInPlace
 * produces.
 */
ModelQuantReport saveCompressedModel(std::ostream &os,
                                     const BertModel &model,
                                     const ModelQuantOptions &options);

/** File variant. Fatal if the file cannot be opened or written. */
ModelQuantReport saveCompressedModel(const std::string &path,
                                     const BertModel &model,
                                     const ModelQuantOptions &options);

/**
 * Load a container and decode it into an FP32 model. Fatal on
 * malformed input.
 */
BertModel loadCompressedModel(std::istream &is);

/** File variant. Fatal if the file cannot be opened. */
BertModel loadCompressedModel(const std::string &path);

} // namespace gobo

#endif // GOBO_CORE_CONTAINER_HH
