#include "core/qexec.hh"

#include <algorithm>
#include <cmath>

#include "exec/scratch.hh"
#include "kernels/kernels.hh"
#include "model/footprint.hh"
#include "nn/encoder.hh"
#include "obs/observer.hh"
#include "obs/probe.hh"
#include "tensor/ops.hh"
#include "util/bitstream.hh"
#include "util/logging.hh"

namespace gobo {

QuantizedLinear::QuantizedLinear(QuantizedTensor w, Tensor b,
                                 WeightFormat format, std::string name)
    : weights(std::move(w)), bias(std::move(b)), fmt(format),
      label(std::move(name)), scratchId(nextScratchOwnerId())
{
    weights.check();
    fatalIf(bias.size() != weights.rows, "QuantizedLinear bias size ",
            bias.size(), " != out features ", weights.rows);

    if (fmt == WeightFormat::Unpacked) {
        // Widen the index stream once; B <= 8 so a byte per weight.
        auto idx32 = unpackIndexes(weights.packedIndexes, weights.bits,
                                   weights.elementCount());
        indexes.reserve(idx32.size());
        for (auto v : idx32)
            indexes.push_back(static_cast<std::uint8_t>(v));
    }

    // Group outlier corrections by row. The index slot under an
    // outlier still contributes its centroid through the bucket sums,
    // so the correction is the difference, not the raw value.
    outlierRowStart.assign(weights.rows + 1, 0);
    outliers.reserve(weights.outlierPositions.size());
    for (std::size_t o = 0; o < weights.outlierPositions.size(); ++o) {
        std::uint32_t pos = weights.outlierPositions[o];
        std::uint32_t row = pos / static_cast<std::uint32_t>(weights.cols);
        std::uint32_t col = pos % static_cast<std::uint32_t>(weights.cols);
        float correction = weights.outlierValues[o]
                           - weights.centroids[weights.indexAt(pos)];
        outliers.push_back({col, correction});
        ++outlierRowStart[row + 1];
    }
    for (std::size_t r = 0; r < weights.rows; ++r)
        outlierRowStart[r + 1] += outlierRowStart[r];
}

void
QuantizedLinear::decodeRow(const KernelSet &kn, std::size_t row,
                           std::uint8_t *out) const
{
    const std::size_t n = weights.cols;
    kn.decodePackedRow(weights.packedIndexes.data(),
                       weights.packedIndexes.size(),
                       row * n * weights.bits, weights.bits, n, out);
}

Tensor
QuantizedLinear::forward(const ExecContext &ctx, const Tensor &x,
                         OpCounts *counts) const
{
    fatalIf(x.rank() != 2 || x.cols() != weights.cols,
            "QuantizedLinear input shape mismatch: got ", x.rows(), "x",
            x.cols(), ", want cols ", weights.cols);

    std::size_t seq = x.rows(), in = weights.cols, out = weights.rows;
    std::size_t k = weights.centroids.size();
    Tensor y(seq, out);

    // Observability: one span per forward plus flat counters, all
    // recorded outside the kernel loops (the totals are closed-form).
    ScopedSpan span(ctx.obs, label);
    if (Observer *obs = ctx.obs) {
        obs->metrics.add(obs->qexecForwards);
        obs->metrics.add(obs->qexecBytesStreamed, residentBytes());
        obs->metrics.add(obs->qexecOutlierCorrections,
                         seq * outliers.size());
        if (fmt == WeightFormat::Unpacked)
            obs->metrics.add(obs->qexecDecodeUnpacked);
        else if (8 % weights.bits == 0)
            obs->metrics.add(obs->qexecDecodeLut);
        else if (weights.bits == 3)
            obs->metrics.add(obs->qexecDecodeGroup24);
        else
            obs->metrics.add(obs->qexecDecodeScalar);
        if (fmt == WeightFormat::Packed)
            obs->metrics.add(obs->qexecRowsDecoded, out);

        // Per-layer mirrors of the traffic counters, keyed by the span
        // label — the measured inputs of memsim's per-layer energy
        // attribution (obs/audit.hh).
        const Observer::QexecLayerIds &lids = obs->layerIds(label);
        obs->metrics.add(lids.forwards);
        obs->metrics.add(lids.bytesStreamed, residentBytes());
        obs->metrics.add(lids.outlierCorrections,
                         seq * outliers.size());
        if (fmt == WeightFormat::Packed)
            obs->metrics.add(lids.rowsDecoded, out);
    }

    // Sequence-tiled execution: transpose the activations once per
    // forward into seqTile-lane tiles ([tile][input][lane]) at the
    // executing tier's width (8 for generic/avx2, 16 for avx512),
    // then run the three bucket phases with vertical SIMD across the
    // lanes. Per lane the reduction order is exactly the historical
    // scalar loop (ascending i, then c, then outlier index, all in
    // double), so the tiled kernel — on every tier, at every tile
    // width — is bit-identical to the original per-(s, o) loop: lanes
    // are independent sequence positions, and widening the tile only
    // adds lanes. Only full tiles are transposed: a padded tail tile
    // would spend seqTile lanes of kernel work on a few live rows
    // (the pooler runs at seq == 1), so tail rows instead take the
    // scalar per-lane path below, which applies the same reduction
    // order one lane at a time.
    const KernelSet &kn = resolveKernels(ctx.kernels);
    const std::size_t tile_w = kn.seqTile;
    fatalIf(tile_w == 0 || tile_w > kMaxSeqTile, "kernel tier '",
            kn.name, "' has invalid seqTile ", tile_w);
    std::size_t full_tiles = seq / tile_w;
    std::size_t tail0 = full_tiles * tile_w;
    std::vector<float> xt(full_tiles * in * tile_w);
    for (std::size_t t = 0; t < full_tiles; ++t) {
        std::size_t s0 = t * tile_w;
        float *tile = xt.data() + t * in * tile_w;
        for (std::size_t l = 0; l < tile_w; ++l) {
            const float *xrow = x.row(s0 + l).data();
            for (std::size_t i = 0; i < in; ++i)
                tile[i * tile_w + l] = xrow[i];
        }
    }

    // 2-D output-row × sequence-tile partitioning. Row blocks split
    // the output dimension first (each keeps the row-outer decode
    // amortization); when there are too few rows to feed every thread
    // — small layers, or a deep sweep at high thread counts — the
    // sequence-tile dimension splits too, so the grid always carries
    // roughly threads*4 stealable tasks. The tail rows (seq % tile)
    // count as one extra tile unit. Every y(s, o) belongs to exactly
    // one (row block, tile block) cell, and each cell runs the serial
    // bucket/table/correction order per (o, tile), so the partition —
    // and the thread count — cannot change a bit of the output. Task
    // OpCounts are reduced in index order below.
    //
    // Scratch comes from the calling thread's arena (exec/scratch.hh):
    // the bucket accumulator tile is plain reusable storage, and for
    // Packed layers the whole row block is decoded into the arena's
    // multi-slot cache, so consecutive tile-block tasks of one row
    // block decode it only once — and a block that survives in cache
    // across forwards (the pooler's, typically) never decodes again.
    // Nothing on this path allocates after warm-up.
    bool packed = fmt == WeightFormat::Packed;
    const Observer::QexecLayerIds *lids_ptr =
        ctx.obs && packed ? &ctx.obs->layerIds(label) : nullptr;
    std::size_t tile_units = full_tiles + (tail0 < seq ? 1 : 0);
    std::size_t target = ctx.isParallel() ? ctx.threads * 4 : 1;
    std::size_t rblocks = std::min(out, target);
    std::size_t tblocks = 1;
    if (rblocks < target && tile_units > 1)
        tblocks =
            std::min(tile_units, (target + rblocks - 1) / rblocks);
    std::size_t n_tasks = rblocks * tblocks;
    std::size_t rblock = (out + rblocks - 1) / rblocks;
    std::size_t tblock = (tile_units + tblocks - 1) / tblocks;
    std::vector<OpCounts> task_counts(counts ? n_tasks : 0);
    // Grain hint: bucket accumulation is in adds + k table ops per
    // (o, s) pair, split evenly across the grid.
    std::size_t task_cost = seq * (in + k) * out / n_tasks + 1;

    ctx.parallelFor(n_tasks, task_cost, [&](std::size_t task) {
        std::size_t rb = task / tblocks, tb = task % tblocks;
        std::size_t o0 = rb * rblock;
        std::size_t o1 = std::min(o0 + rblock, out);
        std::size_t u0 = tb * tblock;
        std::size_t u1 = std::min(u0 + tblock, tile_units);
        if (o0 >= o1 || u0 >= u1)
            return;
        ScratchArena &arena = execScratch();
        const std::uint8_t *rows = nullptr;
        if (packed) {
            struct DecodeCtx
            {
                const QuantizedLinear *layer;
                const KernelSet *kn;
            } dctx{this, &kn};
            bool hit = false;
            rows = arena.decodedRows(
                scratchId, rb, o0, o1, in,
                [](const void *c, std::size_t row, std::uint8_t *dst) {
                    const auto *d = static_cast<const DecodeCtx *>(c);
                    d->layer->decodeRow(*d->kn, row, dst);
                },
                &dctx, &hit);
            // Sharded counters are thread-safe, so tasks report their
            // cache outcome directly (in rows, matching rows_decoded).
            if (lids_ptr)
                ctx.obs->metrics.add(hit ? lids_ptr->decodeCacheHits
                                         : lids_ptr->decodeCacheMisses,
                                     o1 - o0);
        }
        double *bucket = arena.buckets(k * tile_w);
        double acc[kMaxSeqTile];
        OpCounts local;
        for (std::size_t o = o0; o < o1; ++o) {
            const std::uint8_t *irow = packed
                                           ? rows + (o - o0) * in
                                           : indexes.data() + o * in;
            std::uint32_t o_begin = outlierRowStart[o];
            std::uint32_t o_end = outlierRowStart[o + 1];
            double bias_o = bias(o);
            for (std::size_t u = u0; u < u1; ++u) {
                if (u < full_tiles) {
                    const float *tile = xt.data() + u * in * tile_w;
                    std::size_t s0 = u * tile_w;
                    // Phase 1: additions only — steer activations
                    // into the per-centroid buckets (the
                    // accelerator's accumulators), all lanes at once.
                    kn.bucketAccTile(irow, in, tile, bucket, k);
                    // Phase 2: one multiply per centroid per lane.
                    kn.centroidDotTile(weights.centroids.data(), k,
                                       bucket, bias_o, acc);
                    // Phase 3: one correction MAC per outlier per
                    // lane.
                    kn.outlierTile(outliers.data() + o_begin,
                                   o_end - o_begin, tile, acc);
                    for (std::size_t l = 0; l < tile_w; ++l)
                        y.row(s0 + l).data()[o] =
                            static_cast<float>(acc[l]);
                    if (counts) {
                        local.additions +=
                            tile_w * (in + k + (o_end - o_begin));
                        local.multiplications +=
                            tile_w * (k + (o_end - o_begin));
                    }
                    continue;
                }
                // Tail rows (seq % seqTile): the same three phases,
                // one lane at a time, straight off the untransposed
                // rows. The per-lane reduction order matches the tile
                // kernels exactly, so full-tile and tail outputs stay
                // on one numeric contract.
                for (std::size_t s = tail0; s < seq; ++s) {
                    const float *xrow = x.row(s).data();
                    std::fill(bucket, bucket + k, 0.0);
                    for (std::size_t i = 0; i < in; ++i)
                        bucket[irow[i]] += xrow[i];
                    double a = bias_o;
                    for (std::size_t c = 0; c < k; ++c)
                        a += static_cast<double>(weights.centroids[c])
                             * bucket[c];
                    for (std::uint32_t ot = o_begin; ot < o_end; ++ot)
                        a += static_cast<double>(
                                 outliers[ot].correction)
                             * xrow[outliers[ot].column];
                    y.row(s).data()[o] = static_cast<float>(a);
                    if (counts) {
                        local.additions += in + k + (o_end - o_begin);
                        local.multiplications +=
                            k + (o_end - o_begin);
                    }
                }
            }
        }
        if (counts)
            task_counts[task] = local;
    });

    if (counts)
        for (const auto &tc : task_counts)
            *counts += tc;
    return y;
}

Tensor
QuantizedLinear::forward(const Tensor &x) const
{
    return forward(ExecContext::serial(), x);
}

OpCounts
QuantizedLinear::opCounts(std::size_t seq) const
{
    OpCounts ops;
    std::size_t per_out = weights.cols // bucket accumulation
                          + weights.centroids.size(); // table sums
    ops.additions = seq * (weights.rows * per_out + outliers.size());
    ops.multiplications = seq * (weights.rows * weights.centroids.size()
                                 + outliers.size());
    return ops;
}

OpCounts
QuantizedLinear::denseOpCounts(std::size_t seq) const
{
    OpCounts ops;
    ops.additions = seq * weights.rows * weights.cols;
    ops.multiplications = seq * weights.rows * weights.cols;
    return ops;
}

std::size_t
QuantizedLinear::residentBytes() const
{
    std::size_t n = weights.elementCount();
    std::size_t c = weights.centroids.size();
    std::size_t o = outliers.size();
    return fmt == WeightFormat::Packed
               ? packedResidentBytes(n, weights.bits, c, o)
               : unpackedResidentBytes(n, c, o);
}

namespace {

QuantizedLinear
makeLayer(const Tensor &w, const Tensor &b, FcKind kind,
          std::size_t encoder, const ModelQuantOptions &options)
{
    GoboConfig cfg = options.base;
    cfg.bits = options.effectiveBits(kind, encoder);
    std::string label =
        kind == FcKind::Pooler
            ? fcKindName(kind)
            : "enc[" + std::to_string(encoder) + "]." + fcKindName(kind);
    return {quantizeTensor(w, cfg), b, options.format,
            std::move(label)};
}

} // namespace

QuantizedBertModel::QuantizedBertModel(const BertModel &model,
                                       const ModelQuantOptions &options)
    : cfg(model.config()),
      fmt(options.format),
      wordEmbedding(model.wordEmbedding),
      positionEmbedding(model.positionEmbedding),
      embLnGamma(model.embLnGamma),
      embLnBeta(model.embLnBeta),
      pooler(makeLayer(model.poolerW, model.poolerB, FcKind::Pooler,
                       model.config().numLayers, options)),
      headW(model.headW),
      headB(model.headB)
{
    if (options.embeddingBits > 0) {
        GoboConfig ecfg = options.base;
        ecfg.bits = options.embeddingBits;
        wordEmbedding = quantizeTensor(model.wordEmbedding, ecfg)
                            .dequantize();
    }
    encoders.reserve(model.encoders.size());
    for (std::size_t e = 0; e < model.encoders.size(); ++e) {
        const auto &enc = model.encoders[e];
        encoders.push_back(EncoderLayers{
            makeLayer(enc.queryW, enc.queryB, FcKind::Query, e, options),
            makeLayer(enc.keyW, enc.keyB, FcKind::Key, e, options),
            makeLayer(enc.valueW, enc.valueB, FcKind::Value, e, options),
            makeLayer(enc.attnOutW, enc.attnOutB, FcKind::AttnOutput, e,
                      options),
            makeLayer(enc.interW, enc.interB, FcKind::Intermediate, e,
                      options),
            makeLayer(enc.outW, enc.outB, FcKind::Output, e, options),
            enc.attnLnGamma, enc.attnLnBeta, enc.outLnGamma,
            enc.outLnBeta});
    }
}

Tensor
QuantizedBertModel::encode(const ExecContext &ctx,
                           std::span<const std::int32_t> token_ids) const
{
    fatalIf(token_ids.empty(), "encode on empty sequence");
    fatalIf(token_ids.size() > cfg.maxPosition, "sequence length ",
            token_ids.size(), " exceeds maxPosition ", cfg.maxPosition);

    Tensor x(token_ids.size(), cfg.hidden);
    {
        ScopedSpan span(ctx.obs, "embed");
        for (std::size_t s = 0; s < token_ids.size(); ++s) {
            auto id = token_ids[s];
            fatalIf(id < 0
                        || static_cast<std::size_t>(id) >= cfg.vocabSize,
                    "token id ", id, " out of vocab ", cfg.vocabSize);
            auto word = wordEmbedding.row(static_cast<std::size_t>(id));
            auto posv = positionEmbedding.row(s);
            auto dst = x.row(s);
            for (std::size_t c = 0; c < dst.size(); ++c)
                dst[c] = word[c] + posv[c];
        }
        layerNormInplace(ctx, x, embLnGamma.flat(), embLnBeta.flat());
    }
    probeActivation(ctx.obs, "embed", x);

    for (std::size_t e = 0; e < encoders.size(); ++e) {
        const auto &enc = encoders[e];
        ScopedSpan layer_span(ctx.obs, "layer", e);
        Tensor a;
        {
            ScopedSpan span(ctx.obs, "attention");
            Tensor q = enc.query.forward(ctx, x);
            Tensor k = enc.key.forward(ctx, x);
            Tensor v = enc.value.forward(ctx, x);
            Tensor attn_ctx =
                multiHeadAttention(ctx, q, k, v, cfg.numHeads);
            Tensor attn_out = enc.attnOut.forward(ctx, attn_ctx);
            a = add(x, attn_out);
        }
        {
            ScopedSpan span(ctx.obs, "layernorm");
            layerNormInplace(ctx, a, enc.attnLnGamma.flat(),
                             enc.attnLnBeta.flat());
        }

        Tensor y;
        {
            ScopedSpan span(ctx.obs, "ffn");
            Tensor inter = enc.inter.forward(ctx, a);
            geluInplace(ctx, inter);
            Tensor out = enc.out.forward(ctx, inter);
            y = add(a, out);
        }
        {
            ScopedSpan span(ctx.obs, "layernorm");
            layerNormInplace(ctx, y, enc.outLnGamma.flat(),
                             enc.outLnBeta.flat());
        }
        x = std::move(y);
        if (probeAttached(ctx.obs))
            probeActivation(ctx.obs,
                            "layer[" + std::to_string(e) + "]", x);
    }
    return x;
}

Tensor
QuantizedBertModel::encode(std::span<const std::int32_t> token_ids) const
{
    return encode(ExecContext::serial(), token_ids);
}

Tensor
QuantizedBertModel::classify(const ExecContext &ctx,
                             std::span<const std::int32_t> token_ids) const
{
    Tensor hidden = encode(ctx, token_ids);
    Tensor first(1, hidden.cols());
    auto src = hidden.row(0);
    std::copy(src.begin(), src.end(), first.row(0).begin());
    Tensor pooled = pooler.forward(ctx, first);
    tanhInplace(ctx, pooled);
    Tensor logits2d = linear(ctx, pooled, headW, headB);
    Tensor logits(logits2d.cols());
    auto row = logits2d.row(0);
    std::copy(row.begin(), row.end(), logits.flat().begin());
    return logits;
}

Tensor
QuantizedBertModel::classify(std::span<const std::int32_t> token_ids) const
{
    return classify(ExecContext::serial(), token_ids);
}

OpCounts
QuantizedBertModel::opCounts(std::size_t seq) const
{
    OpCounts total;
    for (const auto &enc : encoders) {
        total += enc.query.opCounts(seq);
        total += enc.key.opCounts(seq);
        total += enc.value.opCounts(seq);
        total += enc.attnOut.opCounts(seq);
        total += enc.inter.opCounts(seq);
        total += enc.out.opCounts(seq);
    }
    total += pooler.opCounts(1);
    return total;
}

OpCounts
QuantizedBertModel::denseOpCounts(std::size_t seq) const
{
    OpCounts total;
    for (const auto &enc : encoders) {
        total += enc.query.denseOpCounts(seq);
        total += enc.key.denseOpCounts(seq);
        total += enc.value.denseOpCounts(seq);
        total += enc.attnOut.denseOpCounts(seq);
        total += enc.inter.denseOpCounts(seq);
        total += enc.out.denseOpCounts(seq);
    }
    total += pooler.denseOpCounts(1);
    return total;
}

std::size_t
QuantizedBertModel::compressedWeightBytes() const
{
    std::size_t bytes = 0;
    for (const auto &enc : encoders) {
        bytes += enc.query.compressed().payloadBytes();
        bytes += enc.key.compressed().payloadBytes();
        bytes += enc.value.compressed().payloadBytes();
        bytes += enc.attnOut.compressed().payloadBytes();
        bytes += enc.inter.compressed().payloadBytes();
        bytes += enc.out.compressed().payloadBytes();
    }
    bytes += pooler.compressed().payloadBytes();
    return bytes;
}

void
QuantizedBertModel::forEachLayer(
    const std::function<void(const QuantizedLinear &)> &fn) const
{
    for (const auto &enc : encoders) {
        fn(enc.query);
        fn(enc.key);
        fn(enc.value);
        fn(enc.attnOut);
        fn(enc.inter);
        fn(enc.out);
    }
    fn(pooler);
}

std::size_t
QuantizedBertModel::residentWeightBytes() const
{
    std::size_t bytes = 0;
    for (const auto &enc : encoders) {
        bytes += enc.query.residentBytes();
        bytes += enc.key.residentBytes();
        bytes += enc.value.residentBytes();
        bytes += enc.attnOut.residentBytes();
        bytes += enc.inter.residentBytes();
        bytes += enc.out.residentBytes();
    }
    bytes += pooler.residentBytes();
    return bytes;
}

} // namespace gobo
