/**
 * @file
 * Single-component Gaussian fit and log-PDF scoring.
 *
 * The paper fits one Gaussian per layer (it uses
 * scikit-learn GaussianMixture with a single component, which reduces
 * to the sample mean and standard deviation) and scores every weight
 * with the Gaussian log-PDF; weights scoring below a threshold
 * (default -4) are outliers. This header reproduces that exact
 * computation.
 */

#ifndef GOBO_CORE_GAUSSIAN_HH
#define GOBO_CORE_GAUSSIAN_HH

#include <span>

namespace gobo {

/** A fitted Gaussian N(mean, sigma^2). */
class GaussianFit
{
  public:
    /** Fit to data by maximum likelihood (sample mean / population std). */
    static GaussianFit fit(std::span<const float> xs);

    GaussianFit(double mean, double sigma);

    double mean() const { return mu; }
    double sigma() const { return sd; }

    /** Natural-log PDF at x (what sklearn's score_samples returns). */
    double logPdf(double x) const;

    /**
     * The |z| beyond which logPdf(x) < threshold; weights farther than
     * this many sigmas from the mean are outliers. Returns +inf when no
     * finite value scores below the threshold.
     */
    double zCutoff(double log_prob_threshold) const;

    /**
     * Absolute-value cut: |x - mean| > cut() means outlier. Convenience
     * wrapper over zCutoff for the hot detection loop.
     */
    double absoluteCutoff(double log_prob_threshold) const;

  private:
    double mu;
    double sd;
    double logNorm; ///< -log(sigma * sqrt(2*pi)), cached.
};

} // namespace gobo

#endif // GOBO_CORE_GAUSSIAN_HH
