/**
 * @file
 * One-dimensional Gaussian mixture fitting by EM.
 *
 * The paper computes its per-layer fit with
 * scikit-learn GaussianMixture(n_components=1), which reduces to the
 * sample mean/std (GaussianFit). This module generalizes to K
 * components so the outlier-detection design can be ablated: does
 * modelling the layer as, say, a narrow + a wide Gaussian (which the
 * hot-channel structure actually produces) move the log-probability
 * threshold split? bench/ablation_design reports the comparison.
 */

#ifndef GOBO_CORE_MIXTURE_HH
#define GOBO_CORE_MIXTURE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gobo {

/** A fitted K-component 1-D Gaussian mixture. */
class GaussianMixture
{
  public:
    /** One mixture component. */
    struct Component
    {
        double weight = 0.0; ///< Mixing proportion, sums to 1.
        double mean = 0.0;
        double sigma = 0.0;
    };

    /**
     * Fit by EM.
     * @param xs samples (at least 2, not all equal).
     * @param k component count, >= 1. k = 1 reduces to GaussianFit.
     * @param max_iterations EM iteration bound.
     * @param tol stop when the mean log-likelihood improves less.
     */
    static GaussianMixture fit(std::span<const float> xs, std::size_t k,
                               std::size_t max_iterations = 200,
                               double tol = 1e-7);

    /** The fitted components, sorted by ascending sigma. */
    const std::vector<Component> &components() const { return comps; }

    /** Natural-log mixture density at x (sklearn's score_samples). */
    double logPdf(double x) const;

    /** Mean log-likelihood of the final EM iteration. */
    double meanLogLikelihood() const { return meanLl; }

    /** EM iterations used. */
    std::size_t iterations() const { return iters; }

  private:
    std::vector<Component> comps;
    double meanLl = 0.0;
    std::size_t iters = 0;
};

/**
 * Outlier split against a K-component mixture: weights whose mixture
 * log-density falls below the threshold. With k = 1 this reproduces
 * splitOutliers exactly.
 */
struct MixtureSplit
{
    std::vector<float> gValues;
    std::vector<std::uint32_t> outlierPositions;
    std::vector<float> outlierValues;

    double outlierFraction() const;
};

MixtureSplit splitOutliersMixture(std::span<const float> weights,
                                  std::size_t components,
                                  double log_prob_threshold = -4.0);

} // namespace gobo

#endif // GOBO_CORE_MIXTURE_HH
