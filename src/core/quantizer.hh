/**
 * @file
 * Layer- and model-level GOBO quantization drivers.
 *
 * quantizeTensor implements the seven-step recipe of Sec. IV-B on one
 * weight matrix; the model drivers apply it across a BertModel (for
 * accuracy experiments, replacing each matrix with its decoded form) or
 * across a full-size configuration layer-by-layer without holding the
 * whole model (for exact compression-ratio accounting at the paper's
 * real checkpoint dimensions).
 */

#ifndef GOBO_CORE_QUANTIZER_HH
#define GOBO_CORE_QUANTIZER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cluster.hh"
#include "core/qtensor.hh"
#include "exec/context.hh"
#include "model/config.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** Per-layer quantization settings. */
struct GoboConfig
{
    unsigned bits = 3;            ///< G-group index width.
    double outlierThreshold = -4.0; ///< Log-probability cut (Sec. IV-A).
    CentroidMethod method = CentroidMethod::Gobo;
    std::size_t maxIterations = 300;
    /**
     * Ablation switch: when false, no outliers are detected and every
     * weight lands in the G group (the configuration the paper reports
     * as "drastically reduced compression or sacrificed accuracy").
     */
    bool detectOutliers = true;
};

/** Measurements taken while quantizing one layer. */
struct LayerQuantStats
{
    double mean = 0.0;            ///< Fitted Gaussian centre.
    double sigma = 0.0;           ///< Fitted Gaussian scale.
    std::size_t weightCount = 0;
    std::size_t outlierCount = 0;
    double outlierFraction = 0.0;
    std::size_t iterations = 0;   ///< Clustering iterations used.
    double finalL1 = 0.0;         ///< G-group L1 at the stop point.
    double finalL2 = 0.0;
};

/** Quantize one weight matrix. Optionally reports per-layer stats. */
QuantizedTensor quantizeTensor(const Tensor &weights,
                               const GoboConfig &config,
                               LayerQuantStats *stats = nullptr);

/** Model-level options: a base config plus per-layer overrides. */
struct ModelQuantOptions
{
    GoboConfig base;
    /**
     * Embedding-table index width; 0 keeps the word embedding FP32.
     * The paper uses 3 or 4 (Table VII, Fig. 4).
     */
    unsigned embeddingBits = 0;
    /**
     * Optional per-layer bit override (mixed-precision policies such as
     * Table VI's "4b Value/Intermediate in the first encoders, 3b
     * elsewhere"). Returns the index width for the given layer; when
     * empty, base.bits applies everywhere.
     */
    std::function<unsigned(FcKind, std::size_t /*encoder*/)> bitsFor;
    /**
     * Worker threads for the model-level drivers; layers are
     * quantized independently, so the result is bit-identical to the
     * single-threaded run. 1 (default) keeps everything on one core,
     * matching the paper's deployment claim.
     */
    std::size_t threads = 1;
    /**
     * Runtime index format for compressed-domain engines built from
     * these options (QuantizedBertModel). Packed keeps the B-bit
     * stream resident; Unpacked widens to a byte per weight. The two
     * are bit-identical on outputs.
     */
    WeightFormat format = WeightFormat::Unpacked;

    /** Effective width for one layer. */
    unsigned effectiveBits(FcKind kind, std::size_t encoder) const;
};

/** Accounting for one quantized layer inside a model report. */
struct LayerReportEntry
{
    std::string name;
    FcKind kind = FcKind::Query;
    std::size_t encoder = 0;
    std::size_t elements = 0;
    unsigned bits = 0;
    std::size_t payloadBytes = 0;
    LayerQuantStats stats;
};

/** Whole-model compression accounting. */
struct ModelQuantReport
{
    std::vector<LayerReportEntry> layers;
    std::size_t weightOriginalBytes = 0;
    std::size_t weightPayloadBytes = 0;
    std::size_t embeddingOriginalBytes = 0;
    std::size_t embeddingPayloadBytes = 0;

    /** FC weights only (Table IV's "Potential Comp. Ratio" basis). */
    double weightCompressionRatio() const;

    /** Embedding table only (Table VII). */
    double embeddingCompressionRatio() const;

    /** Weights + embeddings together (Table III). */
    double totalCompressionRatio() const;

    /** Mean outlier fraction weighted by layer size. */
    double overallOutlierFraction() const;
};

/**
 * Quantize every FC weight matrix (and optionally the word embedding)
 * of a model in place: each tensor is replaced by its decoded (FP32)
 * reconstruction, exactly what a downstream FP32 engine would consume.
 * Returns the exact storage accounting.
 */
ModelQuantReport quantizeModelInPlace(BertModel &model,
                                      const ModelQuantOptions &options);

/**
 * Accounting-only pass over a full-size configuration: generates each
 * layer's weights from the synthetic distribution for `seed`, quantizes
 * it, accumulates the exact payload size, and discards the data. Runs
 * BERT-Large in seconds without materializing 1.2 GB of parameters.
 */
ModelQuantReport quantizeConfigStreaming(const ModelConfig &config,
                                         std::uint64_t seed,
                                         const ModelQuantOptions &options);

/**
 * Table VI mixed-precision policy: `high_bits` for the Value and
 * Intermediate FCs of the first `sensitive_encoders` encoders,
 * `low_bits` elsewhere.
 */
std::function<unsigned(FcKind, std::size_t)> mixedPolicy(
    std::size_t sensitive_encoders, unsigned low_bits, unsigned high_bits);

} // namespace gobo

#endif // GOBO_CORE_QUANTIZER_HH
