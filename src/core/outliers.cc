#include "core/outliers.hh"

#include <cmath>

#include "util/logging.hh"

namespace gobo {

double
OutlierSplit::outlierFraction() const
{
    std::size_t total = gValues.size() + outlierValues.size();
    if (total == 0)
        return 0.0;
    return static_cast<double>(outlierValues.size())
           / static_cast<double>(total);
}

OutlierSplit
splitOutliers(std::span<const float> weights, double log_prob_threshold)
{
    fatalIf(weights.size() < 2, "splitOutliers needs at least two weights");

    GaussianFit fit = GaussianFit::fit(weights);
    // logPdf(x) < threshold is equivalent to |x - mean| > cut; the
    // absolute-value form keeps the scan to one comparison per weight.
    double cut = fit.absoluteCutoff(log_prob_threshold);

    OutlierSplit split{fit, {}, {}, {}};
    split.gValues.reserve(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (std::abs(static_cast<double>(weights[i]) - fit.mean()) > cut) {
            split.outlierPositions.push_back(
                static_cast<std::uint32_t>(i));
            split.outlierValues.push_back(weights[i]);
        } else {
            split.gValues.push_back(weights[i]);
        }
    }
    return split;
}

} // namespace gobo
