#include "core/gaussian.hh"

#include <cmath>
#include <limits>
#include <numbers>

#include "util/logging.hh"
#include "util/stats.hh"

namespace gobo {

GaussianFit::GaussianFit(double mean, double sigma) : mu(mean), sd(sigma)
{
    fatalIf(!(sigma > 0.0), "GaussianFit needs sigma > 0, got ", sigma);
    logNorm = -std::log(sd * std::sqrt(2.0 * std::numbers::pi));
}

GaussianFit
GaussianFit::fit(std::span<const float> xs)
{
    fatalIf(xs.size() < 2, "GaussianFit::fit needs at least two samples");
    RunningStats rs;
    rs.addAll(xs);
    double sd = rs.stddev();
    fatalIf(sd == 0.0, "GaussianFit::fit on constant data");
    return {rs.mean(), sd};
}

double
GaussianFit::logPdf(double x) const
{
    double z = (x - mu) / sd;
    return logNorm - 0.5 * z * z;
}

double
GaussianFit::zCutoff(double log_prob_threshold) const
{
    // logNorm - z^2/2 < threshold  <=>  z^2 > 2 (logNorm - threshold).
    double rhs = 2.0 * (logNorm - log_prob_threshold);
    if (rhs <= 0.0)
        return std::numeric_limits<double>::infinity();
    return std::sqrt(rhs);
}

double
GaussianFit::absoluteCutoff(double log_prob_threshold) const
{
    return zCutoff(log_prob_threshold) * sd;
}

} // namespace gobo
