/**
 * @file
 * Outlier / Gaussian-group separation (the "O" and "G" split).
 *
 * GOBO's first step: fit a Gaussian to a layer's weights and peel off
 * the weights whose log-probability under that Gaussian falls below the
 * threshold (default -4, the value the paper found sufficient across
 * all models). Outliers keep their FP32 value and flat position; the
 * remaining G group goes to the clusterer.
 */

#ifndef GOBO_CORE_OUTLIERS_HH
#define GOBO_CORE_OUTLIERS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/gaussian.hh"

namespace gobo {

/** Result of splitting a layer into the G group and the outliers. */
struct OutlierSplit
{
    GaussianFit fit;                  ///< The per-layer Gaussian.
    std::vector<float> gValues;       ///< Non-outlier weights, layer order.
    std::vector<std::uint32_t> outlierPositions; ///< Flat indexes, ascending.
    std::vector<float> outlierValues; ///< FP32 values, same order.

    /** Outliers as a fraction of all weights. */
    double outlierFraction() const;
};

/**
 * Split weights into G group and outliers.
 * @param weights the layer's weights in flat order.
 * @param log_prob_threshold the paper's threshold (default -4).
 */
OutlierSplit splitOutliers(std::span<const float> weights,
                           double log_prob_threshold = -4.0);

} // namespace gobo

#endif // GOBO_CORE_OUTLIERS_HH
