#include "core/cluster.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gobo {

const char *
centroidMethodName(CentroidMethod method)
{
    switch (method) {
      case CentroidMethod::Gobo: return "GOBO";
      case CentroidMethod::KMeans: return "K-Means";
      case CentroidMethod::Linear: return "Linear";
    }
    panic("unknown CentroidMethod");
}

SortedWeights::SortedWeights(std::span<const float> values)
    : vals(values.begin(), values.end())
{
    std::sort(vals.begin(), vals.end());
    prefix.resize(vals.size() + 1, 0.0);
    prefixSq.resize(vals.size() + 1, 0.0);
    for (std::size_t i = 0; i < vals.size(); ++i) {
        prefix[i + 1] = prefix[i] + vals[i];
        prefixSq[i + 1] = prefixSq[i]
                          + static_cast<double>(vals[i]) * vals[i];
    }
}

std::size_t
SortedWeights::lowerBound(double x) const
{
    auto it = std::lower_bound(
        vals.begin(), vals.end(), x,
        [](float a, double b) { return static_cast<double>(a) < b; });
    return static_cast<std::size_t>(it - vals.begin());
}

double
SortedWeights::segmentSum(std::size_t begin, std::size_t end) const
{
    panicIf(begin > end || end > vals.size(), "bad segment [", begin, ", ",
            end, ")");
    return prefix[end] - prefix[begin];
}

double
SortedWeights::segmentMean(std::size_t begin, std::size_t end) const
{
    fatalIf(begin >= end, "segmentMean of empty segment");
    return segmentSum(begin, end) / static_cast<double>(end - begin);
}

double
SortedWeights::segmentL1(std::size_t begin, std::size_t end, double c) const
{
    panicIf(begin > end || end > vals.size(), "bad segment");
    if (begin == end)
        return 0.0;
    std::size_t t = std::clamp(lowerBound(c), begin, end);
    // Values below c contribute c - v; values at or above contribute
    // v - c. Both reduce to prefix-sum expressions.
    double below = c * static_cast<double>(t - begin)
                   - (prefix[t] - prefix[begin]);
    double above = (prefix[end] - prefix[t])
                   - c * static_cast<double>(end - t);
    return below + above;
}

double
SortedWeights::segmentL2(std::size_t begin, std::size_t end, double c) const
{
    panicIf(begin > end || end > vals.size(), "bad segment");
    double n = static_cast<double>(end - begin);
    return (prefixSq[end] - prefixSq[begin])
           - 2.0 * c * (prefix[end] - prefix[begin]) + c * c * n;
}

std::vector<float>
equalPopulationCentroids(const SortedWeights &sorted, std::size_t k)
{
    fatalIf(k == 0, "need at least one centroid");
    std::size_t n = sorted.size();
    std::vector<float> centroids;
    centroids.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
        std::size_t b = (j * n) / k;
        std::size_t e = ((j + 1) * n) / k;
        if (b >= e)
            continue; // fewer values than bins
        auto c = static_cast<float>(sorted.segmentMean(b, e));
        if (centroids.empty() || centroids.back() != c)
            centroids.push_back(c);
    }
    return centroids;
}

std::vector<float>
linearCentroids(double min_value, double max_value, std::size_t k)
{
    fatalIf(k == 0, "need at least one centroid");
    fatalIf(min_value > max_value, "linearCentroids inverted range");
    std::vector<float> centroids;
    centroids.reserve(k);
    if (k == 1) {
        centroids.push_back(
            static_cast<float>((min_value + max_value) / 2.0));
        return centroids;
    }
    double step = (max_value - min_value) / static_cast<double>(k - 1);
    for (std::size_t j = 0; j < k; ++j)
        centroids.push_back(
            static_cast<float>(min_value + step * static_cast<double>(j)));
    return centroids;
}

namespace {

/**
 * Nearest-centroid assignment boundaries over the sorted population:
 * cluster j owns sorted indexes [bounds[j], bounds[j+1]). Centroids
 * must be ascending; boundaries are the midpoints between neighbours.
 */
std::vector<std::size_t>
assignmentBounds(const SortedWeights &sorted,
                 const std::vector<float> &centroids)
{
    std::vector<std::size_t> bounds(centroids.size() + 1, 0);
    for (std::size_t j = 1; j < centroids.size(); ++j) {
        double mid = (static_cast<double>(centroids[j - 1]) + centroids[j])
                     / 2.0;
        bounds[j] = std::max(bounds[j - 1], sorted.lowerBound(mid));
    }
    bounds[centroids.size()] = sorted.size();
    return bounds;
}

/** Exact L1/L2 objective for centroids under nearest assignment. */
IterationRecord
objective(const SortedWeights &sorted, const std::vector<float> &centroids,
          const std::vector<std::size_t> &bounds)
{
    IterationRecord rec;
    for (std::size_t j = 0; j < centroids.size(); ++j) {
        rec.l1 += sorted.segmentL1(bounds[j], bounds[j + 1], centroids[j]);
        rec.l2 += sorted.segmentL2(bounds[j], bounds[j + 1], centroids[j]);
    }
    return rec;
}

/** One Lloyd update: means of the current segments (empty keeps old). */
std::vector<float>
updateCentroids(const SortedWeights &sorted,
                const std::vector<float> &centroids,
                const std::vector<std::size_t> &bounds)
{
    std::vector<float> next(centroids.size());
    for (std::size_t j = 0; j < centroids.size(); ++j) {
        if (bounds[j] < bounds[j + 1])
            next[j] = static_cast<float>(
                sorted.segmentMean(bounds[j], bounds[j + 1]));
        else
            next[j] = centroids[j];
    }
    // Means of ordered segments stay ordered, but an empty cluster
    // keeping its old centroid can break monotonicity; restore it.
    std::sort(next.begin(), next.end());
    return next;
}

} // namespace

ClusterResult
clusterWeights(std::span<const float> g_values, unsigned bits,
               CentroidMethod method, std::size_t max_iterations,
               double kmeans_tol)
{
    fatalIf(bits == 0 || bits > 8, "index width out of range: ", bits);
    fatalIf(g_values.empty(), "clusterWeights on empty G group");
    std::size_t k = std::size_t{1} << bits;

    SortedWeights sorted(g_values);
    ClusterResult result;

    if (method == CentroidMethod::Linear) {
        result.centroids = linearCentroids(sorted.values().front(),
                                           sorted.values().back(), k);
        auto bounds = assignmentBounds(sorted, result.centroids);
        auto rec = objective(sorted, result.centroids, bounds);
        result.history.push_back(rec);
        result.iterations = 0;
        result.finalL1 = rec.l1;
        result.finalL2 = rec.l2;
        return result;
    }

    // Both GOBO and K-Means start from the equal-population cut of the
    // sorted weights and apply the same Lloyd update; they differ only
    // in what they monitor and when they stop.
    std::vector<float> centroids = equalPopulationCentroids(sorted, k);
    auto bounds = assignmentBounds(sorted, centroids);
    result.history.push_back(objective(sorted, centroids, bounds));

    std::vector<float> best_centroids = centroids;
    double best_l1 = result.history.back().l1;
    std::size_t best_iter = 0;

    for (std::size_t iter = 1; iter <= max_iterations; ++iter) {
        auto next = updateCentroids(sorted, centroids, bounds);
        auto next_bounds = assignmentBounds(sorted, next);
        bool assignments_fixed = next_bounds == bounds && next == centroids;
        centroids = std::move(next);
        bounds = std::move(next_bounds);

        auto rec = objective(sorted, centroids, bounds);
        double prev_l2 = result.history.back().l2;
        result.history.push_back(rec);

        if (rec.l1 < best_l1) {
            best_l1 = rec.l1;
            best_centroids = centroids;
            best_iter = iter;
        }

        if (method == CentroidMethod::Gobo) {
            // Stop once the monitored L1 has passed its minimum: the
            // norm rose above the best seen, or nothing moves anymore.
            if (rec.l1 > best_l1 || assignments_fixed) {
                result.centroids = best_centroids;
                result.iterations = best_iter;
                auto b = assignmentBounds(sorted, result.centroids);
                auto final_rec = objective(sorted, result.centroids, b);
                result.finalL1 = final_rec.l1;
                result.finalL2 = final_rec.l2;
                return result;
            }
        } else {
            bool converged = assignments_fixed
                             || (prev_l2 > 0.0
                                 && prev_l2 - rec.l2
                                        < kmeans_tol * prev_l2);
            if (converged) {
                result.centroids = centroids;
                result.iterations = iter;
                result.finalL1 = rec.l1;
                result.finalL2 = rec.l2;
                return result;
            }
        }
    }

    // Safety bound hit: return the best state for GOBO, last for K-Means.
    if (method == CentroidMethod::Gobo) {
        result.centroids = best_centroids;
        result.iterations = best_iter;
        auto b = assignmentBounds(sorted, result.centroids);
        auto rec = objective(sorted, result.centroids, b);
        result.finalL1 = rec.l1;
        result.finalL2 = rec.l2;
    } else {
        result.centroids = centroids;
        result.iterations = max_iterations;
        result.finalL1 = result.history.back().l1;
        result.finalL2 = result.history.back().l2;
    }
    return result;
}

std::vector<std::uint32_t>
assignNearest(std::span<const float> values,
              std::span<const float> centroids)
{
    fatalIf(centroids.empty(), "assignNearest with no centroids");
    panicIf(!std::is_sorted(centroids.begin(), centroids.end()),
            "assignNearest centroids must be ascending");

    // Precompute decision midpoints; index = count of midpoints below v.
    std::vector<float> mids;
    mids.reserve(centroids.size() - 1);
    for (std::size_t j = 1; j < centroids.size(); ++j)
        mids.push_back(static_cast<float>(
            (static_cast<double>(centroids[j - 1]) + centroids[j]) / 2.0));

    std::vector<std::uint32_t> idx;
    idx.reserve(values.size());
    for (float v : values) {
        auto it = std::lower_bound(mids.begin(), mids.end(), v);
        idx.push_back(static_cast<std::uint32_t>(it - mids.begin()));
    }
    return idx;
}

} // namespace gobo
