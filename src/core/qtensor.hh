/**
 * @file
 * The compressed representation of one quantized weight matrix.
 *
 * Per layer, GOBO stores exactly the three things the paper lists at
 * the end of Sec. IV's introduction: (1) the outliers in their original
 * FP32 representation (plus their flat positions so the matrix can be
 * reconstructed), (2) a bit-packed B-bit bin index per weight, and
 * (3) the reconstruction table of 2^B FP32 centroids. Decoding yields a
 * plain FP32 tensor with the original shape — the "plug-in compatible"
 * property: any FP32 execution engine can consume the decoded model.
 */

#ifndef GOBO_CORE_QTENSOR_HH
#define GOBO_CORE_QTENSOR_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "tensor/tensor.hh"

namespace gobo {

/** A GOBO-compressed weight matrix. */
class QuantizedTensor
{
  public:
    unsigned bits = 0;            ///< Index width B.
    std::size_t rows = 0, cols = 0;
    std::vector<float> centroids; ///< Reconstruction table, ascending.
    std::vector<std::uint8_t> packedIndexes; ///< rows*cols B-bit entries.
    std::vector<std::uint32_t> outlierPositions; ///< Flat, ascending.
    std::vector<float> outlierValues;

    /** Elements in the matrix. */
    std::size_t elementCount() const { return rows * cols; }

    /** Reconstruct the FP32 tensor (centroid per index, outliers as-is). */
    Tensor dequantize() const;

    /**
     * The B-bit index stored at flat position `pos`, read from the
     * packed stream without unpacking (an index spans at most two
     * bytes since B <= 8).
     */
    std::uint32_t indexAt(std::size_t pos) const;

    /**
     * Exact storage cost in bits: packed indexes + centroid table +
     * outliers at 32b value + 32b position each. This is the quantity
     * the paper's compression ratios are built from.
     */
    std::size_t payloadBits() const;

    /** payloadBits rounded up to bytes. */
    std::size_t payloadBytes() const;

    /** FP32 footprint of the original matrix in bytes. */
    std::size_t originalBytes() const;

    /** originalBytes / payloadBytes. */
    double compressionRatio() const;

    /** Outliers as a fraction of all elements. */
    double outlierFraction() const;

    /**
     * Index-slot population per centroid: counts[k] is how many of the
     * rows*cols packed indexes select centroid k. Every slot counts,
     * including the slots under outliers (whose nearest-centroid index
     * is what the execution engines' bucket accumulators actually
     * see). The audit layer reads this to flag dead (zero-count) and
     * saturated (one-centroid-dominated) tables.
     */
    std::vector<std::uint64_t> centroidOccupancy() const;

    /** Serialize to a stream (versioned "GOBQ" container). */
    void save(std::ostream &os) const;

    /** Deserialize a container written by save. Fatal on corruption. */
    static QuantizedTensor load(std::istream &is);

    /** Internal-consistency check; fatal on violation. */
    void check() const;
};

} // namespace gobo

#endif // GOBO_CORE_QTENSOR_HH
