#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gobo {

Tensor
matmul(const ExecContext &ctx, const Tensor &a, const Tensor &b)
{
    fatalIf(a.rank() != 2 || b.rank() != 2, "matmul needs rank-2 tensors");
    fatalIf(a.cols() != b.rows(), "matmul shape mismatch: ", a.rows(), "x",
            a.cols(), " * ", b.rows(), "x", b.cols());

    std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    Tensor c(m, n);
    // Row-blocked over C: each thread owns a contiguous block of
    // output rows, so the per-row ikj reduction order (the innermost
    // loop walks contiguous rows of B and C) is the same on every
    // backend.
    ctx.parallelRows(m, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
            for (std::size_t kk = 0; kk < k; ++kk) {
                // No skip on aik == 0: 0 * Inf and 0 * NaN must reach
                // the accumulator (IEEE), or the result silently
                // diverges from any reference dense matmul.
                float aik = a(i, kk);
                const float *brow = b.row(kk).data();
                float *crow = c.row(i).data();
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += aik * brow[j];
            }
        }
    });
    return c;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    return matmul(ExecContext::serial(), a, b);
}

Tensor
linear(const ExecContext &ctx, const Tensor &x, const Tensor &w,
       const Tensor &bias)
{
    fatalIf(x.rank() != 2 || w.rank() != 2, "linear needs rank-2 tensors");
    fatalIf(x.cols() != w.cols(), "linear shape mismatch: x ", x.rows(),
            "x", x.cols(), ", W ", w.rows(), "x", w.cols());
    fatalIf(bias.size() != w.rows(), "linear bias size ", bias.size(),
            " != out features ", w.rows());

    std::size_t seq = x.rows(), in = x.cols(), out = w.rows();
    Tensor y(seq, out);
    // [seq, out] output rows split by output feature when the sequence
    // is short (the pooler runs at seq == 1), by sequence otherwise;
    // either way one thread computes a given y(s, o) with the serial
    // dot-product order.
    if (seq >= out || !ctx.isParallel()) {
        ctx.parallelRows(seq, [&](std::size_t s0, std::size_t s1) {
            for (std::size_t s = s0; s < s1; ++s) {
                const float *xrow = x.row(s).data();
                float *yrow = y.row(s).data();
                for (std::size_t o = 0; o < out; ++o) {
                    const float *wrow = w.row(o).data();
                    float acc = bias(o);
                    for (std::size_t i = 0; i < in; ++i)
                        acc += xrow[i] * wrow[i];
                    yrow[o] = acc;
                }
            }
        });
    } else {
        ctx.parallelRows(out, [&](std::size_t o0, std::size_t o1) {
            for (std::size_t s = 0; s < seq; ++s) {
                const float *xrow = x.row(s).data();
                float *yrow = y.row(s).data();
                for (std::size_t o = o0; o < o1; ++o) {
                    const float *wrow = w.row(o).data();
                    float acc = bias(o);
                    for (std::size_t i = 0; i < in; ++i)
                        acc += xrow[i] * wrow[i];
                    yrow[o] = acc;
                }
            }
        });
    }
    return y;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    return linear(ExecContext::serial(), x, w, bias);
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.size() != b.size() || a.rows() != b.rows(),
            "add shape mismatch");
    Tensor c = a;
    auto cf = c.flat();
    auto bf = b.flat();
    for (std::size_t i = 0; i < cf.size(); ++i)
        cf[i] += bf[i];
    return c;
}

void
softmaxRows(const ExecContext &ctx, Tensor &x)
{
    fatalIf(x.rank() != 2, "softmaxRows needs a rank-2 tensor");
    ctx.parallelRows(x.rows(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            auto row = x.row(r);
            float mx = *std::max_element(row.begin(), row.end());
            float sum = 0.0f;
            for (auto &v : row) {
                v = std::exp(v - mx);
                sum += v;
            }
            for (auto &v : row)
                v /= sum;
        }
    });
}

void
softmaxRows(Tensor &x)
{
    softmaxRows(ExecContext::serial(), x);
}

void
geluInplace(Tensor &x)
{
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (auto &v : x.flat()) {
        float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
tanhInplace(Tensor &x)
{
    for (auto &v : x.flat())
        v = std::tanh(v);
}

void
layerNormInplace(const ExecContext &ctx, Tensor &x,
                 std::span<const float> gamma,
                 std::span<const float> beta, float eps)
{
    fatalIf(x.rank() != 2, "layerNormInplace needs a rank-2 tensor");
    fatalIf(gamma.size() != x.cols() || beta.size() != x.cols(),
            "layerNorm parameter size mismatch");
    ctx.parallelRows(x.rows(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            auto row = x.row(r);
            double mu = 0.0;
            for (float v : row)
                mu += v;
            mu /= static_cast<double>(row.size());
            double var = 0.0;
            for (float v : row) {
                double d = v - mu;
                var += d * d;
            }
            var /= static_cast<double>(row.size());
            auto inv = static_cast<float>(1.0 / std::sqrt(var + eps));
            for (std::size_t c = 0; c < row.size(); ++c)
                row[c] = (row[c] - static_cast<float>(mu)) * inv
                         * gamma[c] + beta[c];
        }
    });
}

void
layerNormInplace(Tensor &x, std::span<const float> gamma,
                 std::span<const float> beta, float eps)
{
    layerNormInplace(ExecContext::serial(), x, gamma, beta, eps);
}

std::size_t
argmax(std::span<const float> xs)
{
    fatalIf(xs.empty(), "argmax of empty span");
    return static_cast<std::size_t>(
        std::max_element(xs.begin(), xs.end()) - xs.begin());
}

Tensor
meanRows(const Tensor &x)
{
    fatalIf(x.rank() != 2, "meanRows needs a rank-2 tensor");
    Tensor out(x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        auto row = x.row(r);
        for (std::size_t c = 0; c < row.size(); ++c)
            out(c) += row[c];
    }
    for (auto &v : out.flat())
        v /= static_cast<float>(x.rows());
    return out;
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    fatalIf(a.size() != b.size(), "relativeError size mismatch");
    double num = 0.0, den = 0.0;
    auto af = a.flat();
    auto bf = b.flat();
    for (std::size_t i = 0; i < af.size(); ++i) {
        double d = static_cast<double>(af[i]) - bf[i];
        num += d * d;
        den += static_cast<double>(af[i]) * af[i];
    }
    if (den == 0.0)
        return num == 0.0 ? 0.0 : 1e300;
    return std::sqrt(num / den);
}

} // namespace gobo
