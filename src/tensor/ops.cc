#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.hh"
#include "util/logging.hh"

namespace gobo {

Tensor
matmul(const ExecContext &ctx, const Tensor &a, const Tensor &b)
{
    fatalIf(a.rank() != 2 || b.rank() != 2, "matmul needs rank-2 tensors");
    fatalIf(a.cols() != b.rows(), "matmul shape mismatch: ", a.rows(), "x",
            a.cols(), " * ", b.rows(), "x", b.cols());

    const KernelSet &kn = resolveKernels(ctx.kernels);
    std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    Tensor c(m, n);
    // Row-blocked over C: each thread owns a contiguous block of
    // output rows, so the per-row ikj reduction order (the innermost
    // axpy walks contiguous rows of B and C) is the same on every
    // backend. The axpy kernel never skips a zero aik: 0 * Inf and
    // 0 * NaN must reach the accumulator (IEEE).
    ctx.parallelRows(m, 2 * k * n, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
            for (std::size_t kk = 0; kk < k; ++kk)
                kn.axpy(a(i, kk), b.row(kk).data(), c.row(i).data(), n);
        }
    });
    return c;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    return matmul(ExecContext::serial(), a, b);
}

namespace {

/**
 * The one linear() loop body: y(s, o) = bias(o) + x[s] . w[o] for the
 * given sequence/output-feature rectangle, through the context's dot
 * kernel. Both parallel splits below call this with their block.
 */
void
linearBlock(const KernelSet &kn, const Tensor &x, const Tensor &w,
            const Tensor &bias, Tensor &y, std::size_t s0,
            std::size_t s1, std::size_t o0, std::size_t o1)
{
    std::size_t in = x.cols();
    for (std::size_t s = s0; s < s1; ++s) {
        const float *xrow = x.row(s).data();
        float *yrow = y.row(s).data();
        for (std::size_t o = o0; o < o1; ++o)
            yrow[o] = kn.dot(bias(o), xrow, w.row(o).data(), in);
    }
}

} // namespace

Tensor
linear(const ExecContext &ctx, const Tensor &x, const Tensor &w,
       const Tensor &bias)
{
    fatalIf(x.rank() != 2 || w.rank() != 2, "linear needs rank-2 tensors");
    fatalIf(x.cols() != w.cols(), "linear shape mismatch: x ", x.rows(),
            "x", x.cols(), ", W ", w.rows(), "x", w.cols());
    fatalIf(bias.size() != w.rows(), "linear bias size ", bias.size(),
            " != out features ", w.rows());

    const KernelSet &kn = resolveKernels(ctx.kernels);
    std::size_t seq = x.rows(), out = w.rows();
    Tensor y(seq, out);
    // [seq, out] output rows split by output feature when the sequence
    // is short (the pooler runs at seq == 1), by sequence otherwise;
    // either way one thread computes a given y(s, o) with the same
    // dot-kernel reduction order.
    std::size_t in = x.cols();
    if (seq >= out || !ctx.isParallel()) {
        ctx.parallelRows(seq, 2 * in * out,
                         [&](std::size_t s0, std::size_t s1) {
            linearBlock(kn, x, w, bias, y, s0, s1, 0, out);
        });
    } else {
        ctx.parallelRows(out, 2 * in * seq,
                         [&](std::size_t o0, std::size_t o1) {
            linearBlock(kn, x, w, bias, y, 0, seq, o0, o1);
        });
    }
    return y;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    return linear(ExecContext::serial(), x, w, bias);
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.size() != b.size() || a.rows() != b.rows(),
            "add shape mismatch");
    Tensor c = a;
    auto cf = c.flat();
    auto bf = b.flat();
    for (std::size_t i = 0; i < cf.size(); ++i)
        cf[i] += bf[i];
    return c;
}

void
softmaxRows(const ExecContext &ctx, Tensor &x)
{
    fatalIf(x.rank() != 2, "softmaxRows needs a rank-2 tensor");
    const KernelSet &kn = resolveKernels(ctx.kernels);
    std::size_t cols = x.cols();
    ctx.parallelRows(x.rows(), 4 * cols,
                     [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r)
            kn.softmaxRow(x.row(r).data(), cols);
    });
}

void
softmaxRows(Tensor &x)
{
    softmaxRows(ExecContext::serial(), x);
}

void
geluInplace(const ExecContext &ctx, Tensor &x)
{
    const KernelSet &kn = resolveKernels(ctx.kernels);
    if (x.rank() != 2) {
        kn.geluRow(x.flat().data(), x.size());
        return;
    }
    std::size_t cols = x.cols();
    ctx.parallelRows(x.rows(), 10 * cols,
                     [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r)
            kn.geluRow(x.row(r).data(), cols);
    });
}

void
geluInplace(Tensor &x)
{
    geluInplace(ExecContext::serial(), x);
}

void
tanhInplace(const ExecContext &ctx, Tensor &x)
{
    const KernelSet &kn = resolveKernels(ctx.kernels);
    if (x.rank() != 2) {
        kn.tanhRow(x.flat().data(), x.size());
        return;
    }
    std::size_t cols = x.cols();
    ctx.parallelRows(x.rows(), 8 * cols,
                     [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r)
            kn.tanhRow(x.row(r).data(), cols);
    });
}

void
tanhInplace(Tensor &x)
{
    tanhInplace(ExecContext::serial(), x);
}

void
layerNormInplace(const ExecContext &ctx, Tensor &x,
                 std::span<const float> gamma,
                 std::span<const float> beta, float eps)
{
    fatalIf(x.rank() != 2, "layerNormInplace needs a rank-2 tensor");
    fatalIf(gamma.size() != x.cols() || beta.size() != x.cols(),
            "layerNorm parameter size mismatch");
    const KernelSet &kn = resolveKernels(ctx.kernels);
    std::size_t cols = x.cols();
    ctx.parallelRows(x.rows(), 8 * cols,
                     [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r)
            kn.layerNormRow(x.row(r).data(), cols, gamma.data(),
                            beta.data(), eps);
    });
}

void
layerNormInplace(Tensor &x, std::span<const float> gamma,
                 std::span<const float> beta, float eps)
{
    layerNormInplace(ExecContext::serial(), x, gamma, beta, eps);
}

std::size_t
argmax(std::span<const float> xs)
{
    fatalIf(xs.empty(), "argmax of empty span");
    return static_cast<std::size_t>(
        std::max_element(xs.begin(), xs.end()) - xs.begin());
}

Tensor
meanRows(const Tensor &x)
{
    fatalIf(x.rank() != 2, "meanRows needs a rank-2 tensor");
    Tensor out(x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        auto row = x.row(r);
        for (std::size_t c = 0; c < row.size(); ++c)
            out(c) += row[c];
    }
    for (auto &v : out.flat())
        v /= static_cast<float>(x.rows());
    return out;
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    fatalIf(a.size() != b.size(), "relativeError size mismatch");
    double num = 0.0, den = 0.0;
    auto af = a.flat();
    auto bf = b.flat();
    for (std::size_t i = 0; i < af.size(); ++i) {
        double d = static_cast<double>(af[i]) - bf[i];
        num += d * d;
        den += static_cast<double>(af[i]) * af[i];
    }
    if (den == 0.0)
        return num == 0.0 ? 0.0 : 1e300;
    return std::sqrt(num / den);
}

} // namespace gobo
