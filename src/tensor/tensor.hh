/**
 * @file
 * Minimal dense FP32 tensor used by the transformer inference engine.
 *
 * The engine only needs 1-D and 2-D row-major tensors (hidden states are
 * [seq, hidden] matrices; weights are [out, in] matrices following the
 * Hugging Face Linear convention the paper's models use). Tensor owns its
 * storage; views are expressed with std::span over rows.
 */

#ifndef GOBO_TENSOR_TENSOR_HH
#define GOBO_TENSOR_TENSOR_HH

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace gobo {

/** Dense row-major FP32 tensor of rank 1 or 2. */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() = default;

    /** 1-D tensor of n zeros. */
    explicit Tensor(std::size_t n) : dims{n}, store(n, 0.0f) {}

    /** 2-D tensor of rows x cols zeros. */
    Tensor(std::size_t rows, std::size_t cols)
        : dims{rows, cols}, store(rows * cols, 0.0f)
    {
    }

    /** 2-D tensor adopting existing data (size must be rows*cols). */
    Tensor(std::size_t rows, std::size_t cols, std::vector<float> data);

    /** Tensor rank: 0 (empty), 1, or 2. */
    std::size_t rank() const { return dims.size(); }

    /** Total number of elements. */
    std::size_t size() const { return store.size(); }

    /** Extent of dimension d. */
    std::size_t dim(std::size_t d) const;

    /** Rows for rank-2, size for rank-1. */
    std::size_t rows() const { return rank() == 2 ? dims[0] : size(); }

    /** Columns for rank-2, 1 for rank-1. */
    std::size_t cols() const { return rank() == 2 ? dims[1] : 1; }

    /** Element access, rank-1. */
    float &operator()(std::size_t i) { return store[i]; }
    float operator()(std::size_t i) const { return store[i]; }

    /** Element access, rank-2. */
    float &
    operator()(std::size_t r, std::size_t c)
    {
        return store[r * dims[1] + c];
    }
    float
    operator()(std::size_t r, std::size_t c) const
    {
        return store[r * dims[1] + c];
    }

    /** Row r as a span (rank-2 only). */
    std::span<float> row(std::size_t r);
    std::span<const float> row(std::size_t r) const;

    /** Flat view of all elements. */
    std::span<float> flat() { return store; }
    std::span<const float> flat() const { return store; }

    /** Mutable access to the backing vector (for codecs). */
    std::vector<float> &data() { return store; }
    const std::vector<float> &data() const { return store; }

    /** Set every element to v. */
    void fill(float v);

  private:
    std::vector<std::size_t> dims;
    std::vector<float> store;
};

} // namespace gobo

#endif // GOBO_TENSOR_TENSOR_HH
