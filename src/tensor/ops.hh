/**
 * @file
 * Tensor operations used by the transformer forward pass.
 *
 * All operations are FP32. The hot ops (matmul, linear, softmaxRows,
 * layerNormInplace, geluInplace, tanhInplace) take an ExecContext and
 * split their row dimension into blocks dispatched on the execution
 * backend; the context-free overloads run serially. Parallel and
 * serial runs are bit-identical: each output row is computed by
 * exactly one thread with the same reduction order as the serial loop.
 * Inner loops dispatch through the context's kernel tier
 * (kernels/kernels.hh): matmul's ikj inner loop is the axpy kernel,
 * linear is the fold-left dot kernel, and the row ops have per-row
 * kernels — so outputs are bit-stable within a tier but differ at
 * tolerance level between the generic and AVX2 tiers.
 */

#ifndef GOBO_TENSOR_OPS_HH
#define GOBO_TENSOR_OPS_HH

#include <cstddef>
#include <span>

#include "exec/context.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** C = A[m,k] * B[k,n]. C is resized/overwritten. */
Tensor matmul(const ExecContext &ctx, const Tensor &a, const Tensor &b);
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * y = x * W^T + bias, the Hugging Face Linear convention: x is
 * [seq, in], W is [out, in], bias is [out], result [seq, out].
 */
Tensor linear(const ExecContext &ctx, const Tensor &x, const Tensor &w,
              const Tensor &bias);
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &bias);

/** Elementwise sum; shapes must match. */
Tensor add(const Tensor &a, const Tensor &b);

/** In-place row-wise softmax over the last dimension. */
void softmaxRows(const ExecContext &ctx, Tensor &x);
void softmaxRows(Tensor &x);

/** In-place elementwise GELU (tanh approximation, as in BERT). The
 * context overload parallelizes across rows like the other row ops. */
void geluInplace(const ExecContext &ctx, Tensor &x);
void geluInplace(Tensor &x);

/** In-place elementwise tanh (the BERT pooler activation). */
void tanhInplace(const ExecContext &ctx, Tensor &x);
void tanhInplace(Tensor &x);

/**
 * In-place layer normalization over the last dimension with learned
 * scale gamma and shift beta (each [cols]).
 */
void layerNormInplace(const ExecContext &ctx, Tensor &x,
                      std::span<const float> gamma,
                      std::span<const float> beta, float eps = 1e-5f);
void layerNormInplace(Tensor &x, std::span<const float> gamma,
                      std::span<const float> beta, float eps = 1e-5f);

/** Index of the maximum element in a span (first on ties). */
std::size_t argmax(std::span<const float> xs);

/** Mean over rows: [rows, cols] -> [cols]. */
Tensor meanRows(const Tensor &x);

/** Relative L2 error ||a-b|| / ||a|| between two equal-sized tensors. */
double relativeError(const Tensor &a, const Tensor &b);

} // namespace gobo

#endif // GOBO_TENSOR_OPS_HH
