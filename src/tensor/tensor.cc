#include "tensor/tensor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gobo {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : dims{rows, cols}, store(std::move(data))
{
    fatalIf(store.size() != rows * cols, "Tensor data size ", store.size(),
            " != ", rows, "x", cols);
}

std::size_t
Tensor::dim(std::size_t d) const
{
    fatalIf(d >= dims.size(), "Tensor dim ", d, " out of rank ",
            dims.size());
    return dims[d];
}

std::span<float>
Tensor::row(std::size_t r)
{
    fatalIf(rank() != 2, "Tensor::row on rank-", rank(), " tensor");
    fatalIf(r >= dims[0], "Tensor row ", r, " out of ", dims[0]);
    return {store.data() + r * dims[1], dims[1]};
}

std::span<const float>
Tensor::row(std::size_t r) const
{
    fatalIf(rank() != 2, "Tensor::row on rank-", rank(), " tensor");
    fatalIf(r >= dims[0], "Tensor row ", r, " out of ", dims[0]);
    return {store.data() + r * dims[1], dims[1]};
}

void
Tensor::fill(float v)
{
    std::fill(store.begin(), store.end(), v);
}

} // namespace gobo
