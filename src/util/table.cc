#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace gobo {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    fatalIf(header.empty(), "ConsoleTable needs at least one column");
}

void
ConsoleTable::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header.size(), "ConsoleTable row has ",
            cells.size(), " cells, expected ", header.size());
    rows.push_back(std::move(cells));
}

void
ConsoleTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << (c + 1 < row.size() ? "  " : "");
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

std::string
ConsoleTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
ConsoleTable::pct(double v, int precision)
{
    return num(v, precision) + "%";
}

} // namespace gobo
