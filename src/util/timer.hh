/**
 * @file
 * Wall-clock timing for the quantization-throughput measurements
 * (the paper's "~10 minutes on a single CPU core" claim).
 */

#ifndef GOBO_UTIL_TIMER_HH
#define GOBO_UTIL_TIMER_HH

#include <chrono>

namespace gobo {

/** Monotonic wall-clock stopwatch. Starts on construction. */
class WallTimer
{
  public:
    WallTimer() : start(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace gobo

#endif // GOBO_UTIL_TIMER_HH
