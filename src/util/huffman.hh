/**
 * @file
 * Canonical Huffman coding for quantization index streams.
 *
 * Deep Compression follows its K-Means dictionary with Huffman coding
 * of the cluster indexes; whether that pays for GOBO is a design
 * question this library answers empirically (bench/ablation_entropy):
 * GOBO's equal-population initialization deliberately balances the
 * cluster populations, so its index stream is nearly uniform and
 * entropy coding buys almost nothing — the fixed-rate B-bit stream the
 * paper (and its hardware) uses is already near-optimal. Skewed
 * centroid policies (Linear especially) leave much more entropy
 * slack.
 *
 * The codec is a standard canonical Huffman: code lengths from a
 * two-queue build over symbol counts, canonical code assignment, MSB-
 * first bit packing, and table-driven canonical decoding.
 */

#ifndef GOBO_UTIL_HUFFMAN_HH
#define GOBO_UTIL_HUFFMAN_HH

#include <cstdint>
#include <span>
#include <vector>

namespace gobo {

/** A canonical Huffman code over a small alphabet. */
class HuffmanCode
{
  public:
    /**
     * Build from symbol frequencies. Symbols with zero count get no
     * code. At least one symbol must have a nonzero count.
     */
    static HuffmanCode build(std::span<const std::size_t> counts);

    /** Alphabet size (including zero-count symbols). */
    std::size_t alphabetSize() const { return lengths.size(); }

    /** Code length of a symbol in bits; 0 when the symbol is unused. */
    unsigned lengthOf(std::uint32_t symbol) const;

    /** Code word of a symbol (valid when lengthOf > 0). */
    std::uint32_t codeOf(std::uint32_t symbol) const;

    /** Total encoded bits for a stream with the given counts. */
    std::size_t encodedBits(std::span<const std::size_t> counts) const;

    /** Encode a symbol stream (every symbol must have a code). */
    std::vector<std::uint8_t> encode(
        std::span<const std::uint32_t> symbols,
        std::size_t &bit_count) const;

    /** Decode `count` symbols from an encoded stream. */
    std::vector<std::uint32_t> decode(
        std::span<const std::uint8_t> bytes, std::size_t bit_count,
        std::size_t count) const;

  private:
    std::vector<unsigned> lengths;       ///< Per symbol; 0 = unused.
    std::vector<std::uint32_t> codes;    ///< Canonical code words.
    // Canonical decoding tables.
    unsigned maxLength = 0;
    std::vector<std::uint32_t> firstCode;   ///< Per length 1..max.
    std::vector<std::uint32_t> firstIndex;  ///< Into sortedSymbols.
    std::vector<std::uint32_t> countAtLen;  ///< Codes of each length.
    std::vector<std::uint32_t> sortedSymbols;
};

/** Shannon entropy of a count distribution, bits per symbol. */
double entropyBitsPerSymbol(std::span<const std::size_t> counts);

/** Histogram of a symbol stream over [0, alphabet). */
std::vector<std::size_t> symbolCounts(
    std::span<const std::uint32_t> symbols, std::size_t alphabet);

} // namespace gobo

#endif // GOBO_UTIL_HUFFMAN_HH
