#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace gobo {

void
RunningStats::add(double x)
{
    ++n;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
RunningStats::addAll(std::span<const float> xs)
{
    for (float x : xs)
        add(x);
}

double
RunningStats::variance() const
{
    return n ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(std::span<const float> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (float x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(std::span<const float> xs)
{
    RunningStats rs;
    rs.addAll(xs);
    return rs.stddev();
}

double
l1Distance(std::span<const float> xs, float c)
{
    double s = 0.0;
    for (float x : xs)
        s += std::abs(static_cast<double>(x) - c);
    return s;
}

double
l2Distance(std::span<const float> xs, float c)
{
    double s = 0.0;
    for (float x : xs) {
        double d = static_cast<double>(x) - c;
        s += d * d;
    }
    return s;
}

double
quantile(std::span<const float> xs, double q)
{
    fatalIf(xs.empty(), "quantile of empty span");
    fatalIf(q < 0.0 || q > 1.0, "quantile q out of [0,1]: ", q);
    std::vector<float> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v.front();
    double pos = q * static_cast<double>(v.size() - 1);
    auto i = static_cast<std::size_t>(pos);
    if (i + 1 >= v.size())
        return v.back();
    double frac = pos - static_cast<double>(i);
    return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

double
Histogram::binWidth() const
{
    return counts.empty() ? 0.0
                          : (hi - lo) / static_cast<double>(counts.size());
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo + (static_cast<double>(i) + 0.5) * binWidth();
}

std::size_t
Histogram::maxCount() const
{
    std::size_t m = 0;
    for (auto c : counts)
        m = std::max(m, c);
    return m;
}

Histogram
histogram(std::span<const float> xs, double lo, double hi, std::size_t bins)
{
    fatalIf(bins == 0, "histogram needs at least one bin");
    fatalIf(hi <= lo, "histogram range is empty: [", lo, ", ", hi, "]");
    Histogram h;
    h.lo = lo;
    h.hi = hi;
    h.counts.assign(bins, 0);
    double width = (hi - lo) / static_cast<double>(bins);
    for (float x : xs) {
        double pos = (static_cast<double>(x) - lo) / width;
        // Clamp in the double domain: casting a double beyond the
        // size_t range is undefined behaviour, so far-above-range
        // values must hit the top bin before the cast.
        std::size_t i = 0;
        if (pos >= static_cast<double>(bins - 1))
            i = bins - 1;
        else if (pos > 0.0)
            i = static_cast<std::size_t>(pos);
        ++h.counts[i];
    }
    return h;
}

double
pearson(std::span<const double> a, std::span<const double> b)
{
    fatalIf(a.size() != b.size(), "pearson: size mismatch ", a.size(),
            " vs ", b.size());
    fatalIf(a.size() < 2, "pearson needs at least two points");
    auto n = static_cast<double>(a.size());
    double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
    double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double da = a[i] - ma;
        double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa == 0.0 || sbb == 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

std::vector<double>
averageRanks(std::span<const double> xs)
{
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });

    std::vector<double> ranks(xs.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Ties share the average of the ranks they would occupy.
        double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                     + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

double
spearman(std::span<const double> a, std::span<const double> b)
{
    auto ra = averageRanks(a);
    auto rb = averageRanks(b);
    return pearson(ra, rb);
}

} // namespace gobo
