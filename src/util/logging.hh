/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `fatal` reports a condition caused by the caller (bad configuration or
 * arguments) and throws; `panic` reports an internal invariant violation
 * and aborts. Both format a message with the source location prepended.
 */

#ifndef GOBO_UTIL_LOGGING_HH
#define GOBO_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gobo {

/** Exception type thrown by gobo::fatal for user-correctable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Report a user-correctable error (bad argument, bad configuration) and
 * throw FatalError. Mirrors gem5's fatal(): the simulation cannot
 * continue, but it is the caller's fault, not a library bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/**
 * Report an internal invariant violation and abort. Mirrors gem5's
 * panic(): this should never happen regardless of what the user does.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    std::cerr << "panic: " << os.str() << std::endl;
    std::abort();
}

/** Verify a user-facing precondition; calls fatal() with msg on failure. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

/** Verify an internal invariant; calls panic() with msg on failure. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

} // namespace gobo

#endif // GOBO_UTIL_LOGGING_HH
