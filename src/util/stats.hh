/**
 * @file
 * Statistical summaries used throughout the quantizer and the benches.
 *
 * Includes single-pass moment accumulation (Welford), quantiles,
 * histograms (for the Fig. 1b reproduction), norms, and the rank
 * correlation metric (Spearman) that scores the STS-B-like task.
 */

#ifndef GOBO_UTIL_STATS_HH
#define GOBO_UTIL_STATS_HH

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace gobo {

/**
 * Numerically stable single-pass accumulator for mean and variance
 * (Welford's algorithm). Used by the Gaussian fit over tens of millions
 * of weights where a naive sum-of-squares loses precision in FP32.
 */
class RunningStats
{
  public:
    /** Fold one observation into the summary. */
    void add(double x);

    /** Fold a whole span of observations into the summary. */
    void addAll(std::span<const float> xs);

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return n ? mu : 0.0; }

    /** Population variance (divides by n). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return lo; }

    /** Largest observation (-inf when empty). */
    double max() const { return hi; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    // Identity elements of min/max, so an empty accumulator reports
    // the documented +/-infinity instead of a finite sentinel.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Arithmetic mean of a span; 0 for an empty span. */
double mean(std::span<const float> xs);

/** Population standard deviation of a span; 0 for an empty span. */
double stddev(std::span<const float> xs);

/** Sum of |x_i - c| over the span — the L1 objective GOBO monitors. */
double l1Distance(std::span<const float> xs, float c);

/** Sum of (x_i - c)^2 over the span — the K-Means (L2) objective. */
double l2Distance(std::span<const float> xs, float c);

/**
 * Quantile by linear interpolation on the sorted copy of xs.
 * @param q in [0, 1]; q=0 is the min, q=1 the max.
 */
double quantile(std::span<const float> xs, double q);

/**
 * Fixed-width histogram over [lo, hi]; values outside are clamped into
 * the first/last bin. Used to reproduce the per-layer weight
 * distribution plot (Fig. 1b) as console output.
 */
struct Histogram
{
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::size_t> counts;

    /** Bin width implied by the range and bin count. */
    double binWidth() const;

    /** Centre of bin i. */
    double binCenter(std::size_t i) const;

    /** Largest bin population (for scaling console bars). */
    std::size_t maxCount() const;
};

/** Build a histogram with `bins` equal-width bins over [lo, hi]. */
Histogram histogram(std::span<const float> xs, double lo, double hi,
                    std::size_t bins);

/** Pearson linear correlation between two equal-length sequences. */
double pearson(std::span<const double> a, std::span<const double> b);

/**
 * Spearman rank correlation (Pearson over average ranks, handling ties),
 * the metric GLUE uses for STS-B.
 */
double spearman(std::span<const double> a, std::span<const double> b);

/** Average ranks of a sequence with ties given their mean rank. */
std::vector<double> averageRanks(std::span<const double> xs);

} // namespace gobo

#endif // GOBO_UTIL_STATS_HH
