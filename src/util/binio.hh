/**
 * @file
 * Small binary stream helpers shared by the serialization code
 * (models, quantized tensors, compressed containers). Little-endian
 * host layout; all readers fail fatally on truncation so corrupt files
 * surface immediately instead of as garbage tensors.
 */

#ifndef GOBO_UTIL_BINIO_HH
#define GOBO_UTIL_BINIO_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace gobo {

/** Write one trivially-copyable value. */
template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

/** Read one trivially-copyable value; fatal on truncation. */
template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatalIf(!is, "binary stream truncated");
    return v;
}

/** Write a length-prefixed vector of trivially-copyable elements. */
template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    writePod<std::uint64_t>(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/**
 * Read a length-prefixed vector, rejecting lengths above `limit` so a
 * corrupt header cannot trigger a huge allocation.
 */
template <typename T>
std::vector<T>
readVec(std::istream &is, std::size_t limit)
{
    auto n = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    fatalIf(n > limit, "binary stream vector length ", n,
            " exceeds plausible limit ", limit);
    std::vector<T> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    fatalIf(!is && n > 0, "binary stream truncated");
    return v;
}

/** Write a length-prefixed string. */
inline void
writeString(std::ostream &os, const std::string &s)
{
    writePod<std::uint64_t>(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/** Read a length-prefixed string with a sanity limit. */
inline std::string
readString(std::istream &is, std::size_t limit = 4096)
{
    auto n = static_cast<std::size_t>(readPod<std::uint64_t>(is));
    fatalIf(n > limit, "binary stream string length ", n,
            " exceeds plausible limit ", limit);
    std::string s(n, '\0');
    is.read(s.data(), static_cast<std::streamsize>(n));
    fatalIf(!is && n > 0, "binary stream truncated");
    return s;
}

} // namespace gobo

#endif // GOBO_UTIL_BINIO_HH
