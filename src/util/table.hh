/**
 * @file
 * Aligned console tables for the bench binaries.
 *
 * Every bench regenerates one of the paper's tables or figures as text;
 * ConsoleTable keeps that output aligned and diff-stable so the
 * EXPERIMENTS.md paper-vs-measured record can quote it directly.
 */

#ifndef GOBO_UTIL_TABLE_HH
#define GOBO_UTIL_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace gobo {

/** Simple column-aligned text table with a header row. */
class ConsoleTable
{
  public:
    /** Set the column headers; defines the column count. */
    explicit ConsoleTable(std::vector<std::string> headers);

    /** Append a row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Render with single-space-padded columns and a rule under headers. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Format a double with fixed precision — bench cell helper. */
    static std::string num(double v, int precision = 2);

    /** Format a percentage ("12.34%") — bench cell helper. */
    static std::string pct(double v, int precision = 2);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace gobo

#endif // GOBO_UTIL_TABLE_HH
