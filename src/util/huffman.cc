#include "util/huffman.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "util/logging.hh"

namespace gobo {

namespace {

/** Compute code lengths by the classic heap-based Huffman build. */
std::vector<unsigned>
huffmanLengths(std::span<const std::size_t> counts)
{
    struct Node
    {
        std::size_t weight;
        int left = -1, right = -1;   ///< Children, -1 for leaves.
        std::uint32_t symbol = 0;
    };
    std::vector<Node> nodes;
    using Entry = std::pair<std::size_t, int>; // (weight, node index)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

    for (std::uint32_t s = 0; s < counts.size(); ++s) {
        if (counts[s] == 0)
            continue;
        nodes.push_back({counts[s], -1, -1, s});
        heap.emplace(counts[s], static_cast<int>(nodes.size()) - 1);
    }
    fatalIf(heap.empty(), "Huffman build with all-zero counts");

    if (heap.size() == 1) {
        // A single-symbol alphabet still needs one bit per symbol.
        std::vector<unsigned> lengths(counts.size(), 0);
        lengths[nodes[0].symbol] = 1;
        return lengths;
    }

    while (heap.size() > 1) {
        auto [wa, a] = heap.top();
        heap.pop();
        auto [wb, b] = heap.top();
        heap.pop();
        nodes.push_back({wa + wb, a, b, 0});
        heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
    }

    // Depth-first walk assigns lengths.
    std::vector<unsigned> lengths(counts.size(), 0);
    std::vector<std::pair<int, unsigned>> stack{
        {heap.top().second, 0u}};
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const auto &n = nodes[static_cast<std::size_t>(idx)];
        if (n.left < 0) {
            lengths[n.symbol] = depth;
        } else {
            stack.emplace_back(n.left, depth + 1);
            stack.emplace_back(n.right, depth + 1);
        }
    }
    return lengths;
}

} // namespace

HuffmanCode
HuffmanCode::build(std::span<const std::size_t> counts)
{
    HuffmanCode code;
    code.lengths = huffmanLengths(counts);
    code.codes.assign(code.lengths.size(), 0);

    code.maxLength = 0;
    for (auto l : code.lengths)
        code.maxLength = std::max(code.maxLength, l);
    panicIf(code.maxLength > 32, "Huffman code length exceeds 32");

    // Canonical assignment: symbols sorted by (length, symbol value).
    code.sortedSymbols.clear();
    for (std::uint32_t s = 0; s < code.lengths.size(); ++s)
        if (code.lengths[s] > 0)
            code.sortedSymbols.push_back(s);
    std::sort(code.sortedSymbols.begin(), code.sortedSymbols.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (code.lengths[a] != code.lengths[b])
                      return code.lengths[a] < code.lengths[b];
                  return a < b;
              });

    code.countAtLen.assign(code.maxLength + 1, 0);
    for (auto s : code.sortedSymbols)
        ++code.countAtLen[code.lengths[s]];

    code.firstCode.assign(code.maxLength + 1, 0);
    code.firstIndex.assign(code.maxLength + 1, 0);
    std::uint32_t next_code = 0, next_index = 0;
    for (unsigned len = 1; len <= code.maxLength; ++len) {
        next_code <<= 1;
        code.firstCode[len] = next_code;
        code.firstIndex[len] = next_index;
        next_code += code.countAtLen[len];
        next_index += code.countAtLen[len];
    }

    for (std::size_t i = 0; i < code.sortedSymbols.size(); ++i) {
        std::uint32_t s = code.sortedSymbols[i];
        unsigned len = code.lengths[s];
        code.codes[s] = code.firstCode[len]
                        + (static_cast<std::uint32_t>(i)
                           - code.firstIndex[len]);
    }
    return code;
}

unsigned
HuffmanCode::lengthOf(std::uint32_t symbol) const
{
    fatalIf(symbol >= lengths.size(), "symbol ", symbol,
            " out of alphabet ", lengths.size());
    return lengths[symbol];
}

std::uint32_t
HuffmanCode::codeOf(std::uint32_t symbol) const
{
    fatalIf(lengthOf(symbol) == 0, "symbol ", symbol, " has no code");
    return codes[symbol];
}

std::size_t
HuffmanCode::encodedBits(std::span<const std::size_t> counts) const
{
    fatalIf(counts.size() != lengths.size(),
            "encodedBits alphabet mismatch");
    std::size_t bits = 0;
    for (std::size_t s = 0; s < counts.size(); ++s) {
        fatalIf(counts[s] > 0 && lengths[s] == 0,
                "stream contains uncoded symbol ", s);
        bits += counts[s] * lengths[s];
    }
    return bits;
}

std::vector<std::uint8_t>
HuffmanCode::encode(std::span<const std::uint32_t> symbols,
                    std::size_t &bit_count) const
{
    // MSB-first packing so canonical decode reads codes left to right.
    std::vector<std::uint8_t> bytes;
    std::uint64_t acc = 0;
    unsigned acc_bits = 0;
    bit_count = 0;
    for (auto s : symbols) {
        unsigned len = lengthOf(s);
        fatalIf(len == 0, "encoding uncoded symbol ", s);
        acc = (acc << len) | codes[s];
        acc_bits += len;
        bit_count += len;
        while (acc_bits >= 8) {
            bytes.push_back(
                static_cast<std::uint8_t>(acc >> (acc_bits - 8)));
            acc_bits -= 8;
            acc &= (1ULL << acc_bits) - 1;
        }
    }
    if (acc_bits > 0)
        bytes.push_back(static_cast<std::uint8_t>(acc << (8 - acc_bits)));
    return bytes;
}

std::vector<std::uint32_t>
HuffmanCode::decode(std::span<const std::uint8_t> bytes,
                    std::size_t bit_count, std::size_t count) const
{
    std::vector<std::uint32_t> out;
    out.reserve(count);
    std::size_t pos = 0;
    auto next_bit = [&]() -> std::uint32_t {
        fatalIf(pos >= bit_count, "Huffman stream exhausted");
        std::size_t byte = pos / 8;
        fatalIf(byte >= bytes.size(), "Huffman stream truncated");
        std::uint32_t bit = (bytes[byte] >> (7 - pos % 8)) & 1u;
        ++pos;
        return bit;
    };

    for (std::size_t n = 0; n < count; ++n) {
        std::uint32_t code_word = 0;
        unsigned len = 0;
        for (;;) {
            code_word = (code_word << 1) | next_bit();
            ++len;
            fatalIf(len > maxLength, "invalid Huffman code in stream");
            if (countAtLen[len] > 0
                && code_word >= firstCode[len]
                && code_word < firstCode[len] + countAtLen[len]) {
                out.push_back(sortedSymbols[firstIndex[len] + code_word
                                            - firstCode[len]]);
                break;
            }
        }
    }
    return out;
}

double
entropyBitsPerSymbol(std::span<const std::size_t> counts)
{
    std::size_t total = std::accumulate(counts.begin(), counts.end(),
                                        std::size_t{0});
    if (total == 0)
        return 0.0;
    double h = 0.0;
    for (auto c : counts) {
        if (c == 0)
            continue;
        double p = static_cast<double>(c) / static_cast<double>(total);
        h -= p * std::log2(p);
    }
    return h;
}

std::vector<std::size_t>
symbolCounts(std::span<const std::uint32_t> symbols, std::size_t alphabet)
{
    std::vector<std::size_t> counts(alphabet, 0);
    for (auto s : symbols) {
        fatalIf(s >= alphabet, "symbol ", s, " out of alphabet ",
                alphabet);
        ++counts[s];
    }
    return counts;
}

} // namespace gobo
