/**
 * @file
 * Deterministic parallel-for over an index range — a thin wrapper
 * around the persistent exec/threadpool.hh pool.
 *
 * Historically this spawned fresh threads per call; it now delegates
 * to ThreadPool::shared() so every parallel loop in the repo reuses
 * one set of workers. The determinism story is unchanged: workers
 * pull indexes from an atomic counter and write into index-addressed
 * slots, so N-thread runs produce bit-identical per-index results
 * (layer-granular quantization keeps per-layer PRNG streams
 * independent by construction).
 */

#ifndef GOBO_UTIL_PARALLEL_HH
#define GOBO_UTIL_PARALLEL_HH

#include <cstddef>

#include "exec/threadpool.hh"

namespace gobo {

/**
 * Run fn(i) for every i in [0, count) on up to `threads` threads
 * (including the caller). threads <= 1 runs inline. fn must be safe
 * to call concurrently for distinct i (typically it writes result[i]
 * only).
 */
template <typename Fn>
void
parallelFor(std::size_t count, std::size_t threads, Fn fn)
{
    ThreadPool::shared().run(count, threads, fn);
}

// defaultThreads() (GOBO_THREADS-aware) comes from exec/threadpool.hh
// and is re-exported here for the existing call sites.

} // namespace gobo

#endif // GOBO_UTIL_PARALLEL_HH
