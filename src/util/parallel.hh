/**
 * @file
 * Minimal deterministic parallel-for over an index range.
 *
 * Layer-granular work (one quantization per FC layer) is embarrassingly
 * parallel and each layer's PRNG stream is independent by
 * construction, so running the loop on N threads produces bit-identical
 * per-layer results in a deterministic order: workers pull indexes
 * from an atomic counter and write into index-addressed slots.
 */

#ifndef GOBO_UTIL_PARALLEL_HH
#define GOBO_UTIL_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace gobo {

/**
 * Run fn(i) for every i in [0, count) on up to `threads` workers.
 * threads <= 1 runs inline. fn must be safe to call concurrently for
 * distinct i (typically it writes result[i] only).
 */
template <typename Fn>
void
parallelFor(std::size_t count, std::size_t threads, Fn fn)
{
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            fn(i);
        }
    };

    std::size_t n_workers = std::min(threads, count);
    std::vector<std::jthread> pool;
    pool.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t)
        pool.emplace_back(worker);
}

/** A sensible default worker count for layer-granular work. */
inline std::size_t
defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace gobo

#endif // GOBO_UTIL_PARALLEL_HH
