/**
 * @file
 * Bit-granular packing for quantized weight indexes.
 *
 * GOBO stores each "G"-group weight as a B-bit bin index (B = 2..7
 * typically). The compressed container packs those indexes back to back
 * with no padding, so a 3-bit model really occupies 3 bits per weight on
 * disk and in the traffic model. BitWriter/BitReader implement that
 * packing for widths 1..32, LSB-first within each byte.
 */

#ifndef GOBO_UTIL_BITSTREAM_HH
#define GOBO_UTIL_BITSTREAM_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace gobo {

/** Append-only bit-granular writer backed by a byte vector. */
class BitWriter
{
  public:
    /**
     * Append the low `bits` bits of `value`.
     * @param value payload; bits above `bits` must be zero.
     * @param bits width in [1, 32].
     */
    void put(std::uint32_t value, unsigned bits);

    /** Number of bits written so far. */
    std::size_t bitCount() const { return nBits; }

    /** Number of bytes the stream occupies (last byte may be partial). */
    std::size_t byteCount() const { return (nBits + 7) / 8; }

    /** Finish and take the backing bytes. The writer is left empty. */
    std::vector<std::uint8_t> take();

    /** Read-only view of the bytes written so far. */
    const std::vector<std::uint8_t> &bytes() const { return buf; }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t nBits = 0;
};

/** Sequential bit-granular reader over a byte buffer. */
class BitReader
{
  public:
    /**
     * @param data backing bytes; must outlive the reader.
     * @param bit_count total valid bits in `data`.
     */
    BitReader(const std::uint8_t *data, std::size_t bit_count)
        : buf(data), nBits(bit_count)
    {
    }

    /** Construct over a whole byte vector (every bit valid). */
    explicit BitReader(const std::vector<std::uint8_t> &data)
        : BitReader(data.data(), data.size() * 8)
    {
    }

    /**
     * Read the next `bits` bits (width in [1, 32]).
     * Fatal if the stream is exhausted.
     */
    std::uint32_t get(unsigned bits);

    /** Bits remaining in the stream. */
    std::size_t remaining() const { return nBits - pos; }

  private:
    const std::uint8_t *buf;
    std::size_t nBits;
    std::size_t pos = 0;
};

/**
 * Pack a vector of indexes at the given width.
 * Convenience wrapper used by the quantized-tensor codec.
 */
std::vector<std::uint8_t> packIndexes(const std::vector<std::uint32_t> &idx,
                                      unsigned bits);

/** Unpack `count` indexes of the given width from packed bytes. */
std::vector<std::uint32_t> unpackIndexes(
    const std::vector<std::uint8_t> &bytes, unsigned bits,
    std::size_t count);

} // namespace gobo

#endif // GOBO_UTIL_BITSTREAM_HH
