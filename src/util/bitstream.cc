#include "util/bitstream.hh"

#include "util/logging.hh"

namespace gobo {

void
BitWriter::put(std::uint32_t value, unsigned bits)
{
    fatalIf(bits == 0 || bits > 32, "BitWriter width out of range: ", bits);
    if (bits < 32)
        panicIf(value >> bits, "BitWriter value ", value,
                " wider than ", bits, " bits");

    unsigned written = 0;
    while (written < bits) {
        std::size_t byte = nBits / 8;
        unsigned bit_in_byte = nBits % 8;
        if (byte >= buf.size())
            buf.push_back(0);
        unsigned room = 8 - bit_in_byte;
        unsigned chunk = std::min(room, bits - written);
        auto piece = static_cast<std::uint8_t>(
            (value >> written) & ((1u << chunk) - 1u));
        buf[byte] |= static_cast<std::uint8_t>(piece << bit_in_byte);
        nBits += chunk;
        written += chunk;
    }
}

std::vector<std::uint8_t>
BitWriter::take()
{
    std::vector<std::uint8_t> out = std::move(buf);
    // A moved-from vector has valid but unspecified contents; clear it
    // so the writer is genuinely empty and safe to reuse.
    buf.clear();
    nBits = 0;
    return out;
}

std::uint32_t
BitReader::get(unsigned bits)
{
    fatalIf(bits == 0 || bits > 32, "BitReader width out of range: ", bits);
    fatalIf(pos + bits > nBits, "BitReader exhausted: need ", bits,
            " bits, have ", nBits - pos);

    std::uint32_t value = 0;
    unsigned read = 0;
    while (read < bits) {
        std::size_t byte = pos / 8;
        unsigned bit_in_byte = pos % 8;
        unsigned room = 8 - bit_in_byte;
        unsigned chunk = std::min(room, bits - read);
        std::uint32_t piece = (buf[byte] >> bit_in_byte)
                              & ((1u << chunk) - 1u);
        value |= piece << read;
        pos += chunk;
        read += chunk;
    }
    return value;
}

std::vector<std::uint8_t>
packIndexes(const std::vector<std::uint32_t> &idx, unsigned bits)
{
    BitWriter w;
    for (auto v : idx)
        w.put(v, bits);
    return w.take();
}

std::vector<std::uint32_t>
unpackIndexes(const std::vector<std::uint8_t> &bytes, unsigned bits,
              std::size_t count)
{
    BitReader r(bytes.data(), bytes.size() * 8);
    std::vector<std::uint32_t> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(r.get(bits));
    return out;
}

} // namespace gobo
