#include "util/rng.hh"

#include <algorithm>

namespace gobo {

void
Rng::fillGaussian(std::vector<float> &dst, double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    for (auto &x : dst)
        x = static_cast<float>(dist(engine));
}

} // namespace gobo
