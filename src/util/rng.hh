/**
 * @file
 * Deterministic pseudo-random number generation for all experiments.
 *
 * Every experiment in this repository seeds an Rng explicitly so that two
 * runs of any bench or test produce bit-identical results. The class wraps
 * std::mt19937_64 with the distributions the model generator and task
 * generators need.
 */

#ifndef GOBO_UTIL_RNG_HH
#define GOBO_UTIL_RNG_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace gobo {

/**
 * Seeded random source with convenience draws.
 *
 * Distribution objects are stateless across calls (constructed per call)
 * so that the sequence of values depends only on the seed and the exact
 * sequence of calls, never on internal distribution caching.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; there is no default seed. */
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Draw one standard-uniform value in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Draw one uniform value in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Draw one Gaussian value with the given mean and std deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Draw one integer uniformly from [lo, hi] inclusive. */
    std::int64_t
    integer(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine);
    }

    /** Fill dst with iid Gaussian samples. */
    void fillGaussian(std::vector<float> &dst, double mean, double stddev);

    /** Shuffle a vector of indices in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine);
    }

    /**
     * Derive an independent child stream. Used to give each layer of a
     * generated model its own stream so layer contents do not depend on
     * generation order.
     */
    Rng
    fork()
    {
        std::uint64_t a = engine();
        std::uint64_t b = engine();
        return Rng(a * 0x9e3779b97f4a7c15ULL ^ b);
    }

    /** Access the raw engine (for std::shuffle and friends). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace gobo

#endif // GOBO_UTIL_RNG_HH
