#include "memsim/memsim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gobo {

InferenceCost
inferenceCost(const ModelConfig &config, std::size_t sequence_length,
              double weight_compression, double embedding_compression)
{
    fatalIf(sequence_length == 0, "inferenceCost needs a sequence");
    fatalIf(weight_compression < 1.0 || embedding_compression < 1.0,
            "compression ratios must be >= 1");

    InferenceCost cost;
    auto weights_fp32 = static_cast<double>(config.fcWeightParams()
                                            * sizeof(float));
    cost.weightBytes = static_cast<std::size_t>(weights_fp32
                                                / weight_compression);
    auto emb_row_fp32 = static_cast<double>(config.hidden * sizeof(float));
    cost.embeddingBytes = static_cast<std::size_t>(
        static_cast<double>(sequence_length) * emb_row_fp32
        / embedding_compression);

    // Per token: 4 [h,h] attention FCs, the FFN pair, the pooler once.
    double s = static_cast<double>(sequence_length);
    double h = static_cast<double>(config.hidden);
    double inter = static_cast<double>(config.intermediate);
    double layers = static_cast<double>(config.numLayers);
    double fc_macs = layers * s * (4.0 * h * h + 2.0 * h * inter)
                     + h * h;
    // Attention score/context products: 2 * s^2 * h per layer.
    double attn_macs = layers * 2.0 * s * s * h;
    cost.macs = fc_macs + attn_macs;

    // Activations stay on chip: one read + one write of each hidden
    // state per FC, approximated as 8 hidden-state passes per layer.
    cost.activationBytes = static_cast<std::size_t>(
        layers * 8.0 * s * h * sizeof(float));
    return cost;
}

MemReport
estimate(const InferenceCost &cost, const MemParams &params)
{
    MemReport r;
    double off_bits = static_cast<double>(cost.offChipBytes()) * 8.0;
    double on_bits = static_cast<double>(cost.activationBytes) * 8.0;
    r.offChipEnergyMicroJ = off_bits * params.dramPjPerBit * 1e-6;
    r.onChipEnergyMicroJ = on_bits * params.onChipPjPerBit * 1e-6;
    r.computeEnergyMicroJ = cost.macs * params.pjPerMac * 1e-6;
    r.totalEnergyMicroJ = r.offChipEnergyMicroJ + r.onChipEnergyMicroJ
                          + r.computeEnergyMicroJ;

    r.memoryLatencyMs = static_cast<double>(cost.offChipBytes())
                        / (params.dramGBps * 1e9) * 1e3;
    r.computeLatencyMs = cost.macs / params.macsPerSecond * 1e3;
    r.latencyMs = std::max(r.memoryLatencyMs, r.computeLatencyMs);
    r.memoryBound = r.memoryLatencyMs >= r.computeLatencyMs;
    return r;
}

std::vector<LayerAttribution>
attributeMeasured(const std::vector<MeasuredTraffic> &traffic,
                  const MemParams &params)
{
    std::vector<LayerAttribution> out;
    out.reserve(traffic.size());
    for (const auto &t : traffic) {
        LayerAttribution a;
        a.layer = t.layer;
        double bits = static_cast<double>(t.bytesStreamed) * 8.0;
        a.offChipEnergyMicroJ = bits * params.dramPjPerBit * 1e-6;
        a.computeEnergyMicroJ = t.macs * params.pjPerMac * 1e-6;
        a.totalEnergyMicroJ = a.offChipEnergyMicroJ
                              + a.computeEnergyMicroJ;
        a.memoryLatencyMs = static_cast<double>(t.bytesStreamed)
                            / (params.dramGBps * 1e9) * 1e3;
        a.computeLatencyMs = t.macs / params.macsPerSecond * 1e3;
        a.latencyMs = std::max(a.memoryLatencyMs, a.computeLatencyMs);
        a.memoryBound = a.memoryLatencyMs >= a.computeLatencyMs;
        out.push_back(std::move(a));
    }
    return out;
}

} // namespace gobo
