/**
 * @file
 * First-order off-chip memory traffic, energy and latency model.
 *
 * The paper's introduction argues that BERT inference is memory-bound:
 * the hidden state is a short vector, so every FC layer streams a large
 * weight matrix from DRAM to do comparatively little compute, and
 * off-chip accesses cost two orders of magnitude more energy and
 * latency than on-chip ones. Under that regime, compressing the
 * streamed footprint by R amplifies bandwidth, performance and energy
 * efficiency by ~R. This module makes that argument quantitative: it
 * counts the bytes one inference streams (weights dominate), the MACs
 * it performs, and derives bandwidth-bound latency and a DRAM/compute
 * energy split under configurable technology parameters.
 */

#ifndef GOBO_MEMSIM_MEMSIM_HH
#define GOBO_MEMSIM_MEMSIM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/config.hh"

namespace gobo {

/** Technology parameters. Defaults approximate DDR4-class systems. */
struct MemParams
{
    double dramPjPerBit = 20.0;    ///< Off-chip access energy, pJ/bit.
    double onChipPjPerBit = 0.2;   ///< On-chip SRAM access, pJ/bit.
    double pjPerMac = 0.6;         ///< FP32 MAC energy, pJ.
    double dramGBps = 25.6;        ///< Off-chip bandwidth, GB/s.
    /**
     * Peak compute, MAC/s. Default models an accelerator-class engine
     * (a few TOPS) — the regime where the paper's premise holds and
     * single-stream inference is bandwidth-bound, not compute-bound.
     */
    double macsPerSecond = 8e12;
};

/** Per-inference traffic and compute for one sequence. */
struct InferenceCost
{
    std::size_t weightBytes = 0;     ///< FC weights streamed off-chip.
    std::size_t embeddingBytes = 0;  ///< Embedding rows fetched.
    std::size_t activationBytes = 0; ///< On-chip activation traffic.
    double macs = 0.0;               ///< Multiply-accumulates.

    std::size_t offChipBytes() const
    {
        return weightBytes + embeddingBytes;
    }
};

/**
 * Traffic/compute for one inference at the given sequence length,
 * with weights and embeddings compressed by the given ratios (1.0 =
 * FP32). Weight matrices are streamed once per inference; embedding
 * fetches touch one row per token.
 */
InferenceCost inferenceCost(const ModelConfig &config,
                            std::size_t sequence_length,
                            double weight_compression = 1.0,
                            double embedding_compression = 1.0);

/** Derived energy/latency figures. */
struct MemReport
{
    double offChipEnergyMicroJ = 0.0;
    double onChipEnergyMicroJ = 0.0;
    double computeEnergyMicroJ = 0.0;
    double totalEnergyMicroJ = 0.0;
    double memoryLatencyMs = 0.0;  ///< Off-chip streaming time.
    double computeLatencyMs = 0.0; ///< Compute-bound time.
    double latencyMs = 0.0;        ///< max(memory, compute).
    bool memoryBound = false;
};

/** Evaluate the model under the technology parameters. */
MemReport estimate(const InferenceCost &cost, const MemParams &params);

/**
 * Traffic one FC layer actually generated, read back from the
 * per-layer qexec.layer.<label>.* counters of an observed run rather
 * than predicted from the model config. `macs` is derived by the
 * caller (forwards × per-forward op count) since the counters record
 * traffic, not arithmetic.
 */
struct MeasuredTraffic
{
    std::string layer;                   ///< Span label, "enc[0].query".
    std::uint64_t forwards = 0;          ///< Forward passes observed.
    std::uint64_t bytesStreamed = 0;     ///< Weight bytes streamed.
    std::uint64_t rowsDecoded = 0;       ///< Packed rows decoded.
    std::uint64_t outlierCorrections = 0;///< Correction MACs applied.
    double macs = 0.0;                   ///< Derived MACs for `forwards`.
};

/** Energy/latency attributed to one layer from measured traffic. */
struct LayerAttribution
{
    std::string layer;
    double offChipEnergyMicroJ = 0.0;
    double computeEnergyMicroJ = 0.0;
    double totalEnergyMicroJ = 0.0;
    double memoryLatencyMs = 0.0;
    double computeLatencyMs = 0.0;
    double latencyMs = 0.0; ///< max(memory, compute) per layer.
    bool memoryBound = false;
};

/**
 * Attribute energy and bandwidth-bound latency to each layer from its
 * measured traffic. Unlike estimate(), the weight bytes here are what
 * the execution engine streamed (compressed container bytes for
 * Packed, widened indexes for Unpacked) — the analytical on-chip
 * activation term has no measured counterpart and is deliberately
 * excluded, so totals cover DRAM + compute only.
 */
std::vector<LayerAttribution>
attributeMeasured(const std::vector<MeasuredTraffic> &traffic,
                  const MemParams &params);

} // namespace gobo

#endif // GOBO_MEMSIM_MEMSIM_HH
