#include "serve/loadgen.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gobo {

namespace {

/**
 * Inverse CDF of Exp(1) tabulated at k/64, k = 0..63, with the tail
 * clamped at -ln(1/256) ≈ 5.545 (a draw can never exceed ~5.5 mean
 * gaps). Sampling interpolates linearly between adjacent entries —
 * additions and multiplications only, so unlike -log(u) the draw is
 * bit-identical across libm implementations. The clamp shaves a hair
 * off the true mean of 1; for a load generator the shape is what
 * matters, and the shape is documented by this table.
 */
constexpr double kExpInvCdf[65] = {
    0.0, 0.015748356968139168, 0.0317486983145803,
    0.048009219186360606, 0.06453852113757118, 0.0813456394539524,
    0.09844007281325252, 0.1158318155251217, 0.13353139262452263,
    0.15154989812720093, 0.16989903679539747, 0.18859116980755003,
    0.2076393647782445, 0.22705745063534608, 0.24686007793152578,
    0.26706278524904525, 0.2876820724517809, 0.3087354816496133,
    0.33024168687057687, 0.3522205935893521, 0.3746934494414107,
    0.39768296766610944, 0.42121346507630353, 0.44531101665536404,
    0.4700036292457356, 0.4953214372300254, 0.5212969236332861,
    0.5479651707154474, 0.5753641449035618, 0.6035350218702582,
    0.6325225587435105, 0.6623755218931916, 0.6931471805599453,
    0.7248958788745256, 0.7576857016975165, 0.7915872533731978,
    0.8266785731844679, 0.8630462173553428, 0.9007865453381898,
    0.9400072584914712, 0.9808292530117262, 1.0233888674305223,
    1.067840630001356, 1.114360645636249, 1.1631508098056809,
    1.2144441041932315, 1.2685113254635072, 1.3256697393034558,
    1.3862943611198906, 1.4508328822574619, 1.5198257537444133,
    1.5939337258981352, 1.6739764335716716, 1.7609878105613013,
    1.8562979903656263, 1.9616585060234524, 2.0794415416798357,
    2.2129729343043585, 2.367123614131617, 2.5494451709255714,
    2.772588722239781, 3.0602707946915624, 3.4657359027997265,
    4.1588830833596715, 5.545177444479562,
};

/** Exp(1) draw from a uniform u in [0, 1) via the table above. */
double
expDraw(double u)
{
    double x = u * 64.0;
    auto k = static_cast<std::size_t>(x);
    if (k >= 64)
        k = 63;
    return kExpInvCdf[k]
           + (kExpInvCdf[k + 1] - kExpInvCdf[k]) * (x - static_cast<double>(k));
}

/** Strict full-string u64 parse: digits only, no overflow. */
std::optional<std::uint64_t>
parseU64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v, 10);
    if (ec != std::errc{} || ptr != text.data() + text.size())
        return std::nullopt;
    return v;
}

/** Strict full-string finite double parse (digits, '.', exponent). */
std::optional<double>
parseDouble(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    // std::from_chars for double is not universally available in
    // libstdc++'s older dialects; strtod with a bounded copy keeps the
    // same strictness (whole string or nothing).
    std::string buf(text);
    // Reject leading signs/whitespace strtod would accept: a spec
    // value is a plain non-negative number.
    if (buf[0] != '.' && (buf[0] < '0' || buf[0] > '9'))
        return std::nullopt;
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || !(v == v)
        || v > 1e300 || v < -1e300)
        return std::nullopt;
    return v;
}

} // namespace

std::optional<TraceSpec>
parseTraceSpec(std::string_view text)
{
    TraceSpec spec;
    if (text.empty())
        return std::nullopt;
    while (!text.empty()) {
        std::size_t comma = text.find(',');
        std::string_view pair = text.substr(0, comma);
        text = comma == std::string_view::npos
                   ? std::string_view{}
                   : text.substr(comma + 1);
        std::size_t eq = pair.find('=');
        if (eq == std::string_view::npos)
            return std::nullopt;
        std::string_view key = pair.substr(0, eq);
        std::string_view val = pair.substr(eq + 1);
        if (key == "n") {
            auto v = parseU64(val);
            if (!v || *v == 0 || *v > 10'000'000)
                return std::nullopt;
            spec.requests = static_cast<std::size_t>(*v);
        } else if (key == "seed") {
            auto v = parseU64(val);
            if (!v)
                return std::nullopt;
            spec.seed = *v;
        } else if (key == "rate") {
            auto v = parseDouble(val);
            if (!v || *v <= 0.0)
                return std::nullopt;
            spec.ratePerSec = *v;
        } else if (key == "len") {
            std::size_t colon = val.find(':');
            if (colon == std::string_view::npos)
                return std::nullopt;
            auto lo = parseU64(val.substr(0, colon));
            auto hi = parseU64(val.substr(colon + 1));
            if (!lo || !hi || *lo == 0 || *hi < *lo || *hi > 1'000'000)
                return std::nullopt;
            spec.minLen = static_cast<std::size_t>(*lo);
            spec.maxLen = static_cast<std::size_t>(*hi);
        } else if (key == "long") {
            auto v = parseDouble(val);
            if (!v || *v < 0.0 || *v > 1.0)
                return std::nullopt;
            spec.longFraction = *v;
        } else if (key == "burst") {
            std::size_t x = val.find('x');
            if (x == std::string_view::npos)
                return std::nullopt;
            auto factor = parseDouble(val.substr(0, x));
            auto duty = parseDouble(val.substr(x + 1));
            if (!factor || *factor < 1.0 || !duty || *duty < 0.0
                || *duty > 1.0)
                return std::nullopt;
            spec.burstFactor = *factor;
            spec.burstDuty = *duty;
        } else if (key == "period") {
            auto v = parseU64(val);
            if (!v || *v == 0)
                return std::nullopt;
            spec.burstPeriodUs = *v;
        } else {
            return std::nullopt;
        }
    }
    return spec;
}

std::string
traceSpecString(const TraceSpec &spec)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "n=%zu,seed=%llu,rate=%g,len=%zu:%zu,long=%g,"
                  "burst=%gx%g,period=%llu",
                  spec.requests,
                  static_cast<unsigned long long>(spec.seed),
                  spec.ratePerSec, spec.minLen, spec.maxLen,
                  spec.longFraction, spec.burstFactor, spec.burstDuty,
                  static_cast<unsigned long long>(spec.burstPeriodUs));
    return buf;
}

std::vector<TraceRequest>
generateTrace(const TraceSpec &spec, std::size_t vocab)
{
    std::vector<TraceRequest> trace;
    trace.reserve(spec.requests);

    Xoshiro256pp stream(spec.seed);
    double clockUs = 0.0;
    std::size_t halfSpan = (spec.maxLen - spec.minLen) / 2;
    for (std::size_t i = 0; i < spec.requests; ++i) {
        // Arrival: exponential inter-arrival at the effective rate. The
        // burst window is evaluated at the previous arrival's clock, so
        // the draw sequence stays a pure function of the spec.
        double rate = spec.ratePerSec;
        if (spec.burstDuty > 0.0 && spec.burstFactor > 1.0) {
            double phase = clockUs
                           - static_cast<double>(spec.burstPeriodUs)
                                 * std::floor(
                                     clockUs
                                     / static_cast<double>(
                                         spec.burstPeriodUs));
            if (phase < spec.burstDuty
                            * static_cast<double>(spec.burstPeriodUs))
                rate *= spec.burstFactor;
        }
        clockUs += expDraw(stream.nextDouble()) / rate * 1e6;

        // Length: lower band [minLen, minLen + halfSpan] or upper band
        // (minLen + halfSpan, maxLen], chosen by longFraction.
        bool upper = stream.nextDouble() < spec.longFraction
                     && halfSpan + spec.minLen < spec.maxLen;
        std::size_t lo = upper ? spec.minLen + halfSpan + 1 : spec.minLen;
        std::size_t hi = upper ? spec.maxLen : spec.minLen + halfSpan;
        std::size_t len = lo + stream.next() % (hi - lo + 1);

        TraceRequest req;
        req.id = i;
        req.arrivalUs = static_cast<std::uint64_t>(clockUs);
        // Token content from a per-request stream keyed by (seed, id):
        // independent of the arrival/length draw order, so a request's
        // tokens are reproducible in isolation.
        SplitMix64 tok(mix64(spec.seed ^ (i + 1) * 0x9e3779b97f4a7c15ULL));
        req.tokens.reserve(len);
        for (std::size_t t = 0; t < len; ++t)
            req.tokens.push_back(static_cast<std::int32_t>(
                tok.next() % static_cast<std::uint64_t>(vocab)));
        trace.push_back(std::move(req));
    }
    return trace;
}

} // namespace gobo
