#include "serve/server.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <ostream>

#include "kernels/kernels.hh"
#include "obs/observer.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace gobo {

const char *
serveStatusName(ServeStatus s)
{
    switch (s) {
      case ServeStatus::Ok:
        return "ok";
      case ServeStatus::ShedOverload:
        return "shed_overload";
      case ServeStatus::ShedDeadline:
        return "shed_deadline";
    }
    return "?";
}

std::uint64_t
foldResponseChecksum(std::uint64_t h, const ServeResponse &r)
{
    h = mix64(h ^ (r.id * 0x9e3779b97f4a7c15ULL));
    h = mix64(h ^ static_cast<std::uint64_t>(r.status));
    for (std::size_t i = 0; i < r.logits.size(); ++i)
        h = mix64(h ^ std::bit_cast<std::uint32_t>(r.logits(i)));
    return h;
}

ServeServer::ServeServer(const InferenceSession &session,
                         ServeOptions options)
    : session(session), opt(options)
{
    if (opt.tileLanes == 0)
        opt.tileLanes = resolveKernels(session.context().kernels).seqTile;
    fatalIf(opt.tileLanes == 0, "serve: tileLanes must be positive");
    fatalIf(opt.bandWidth == 0, "serve: bandWidth must be positive");
    fatalIf(opt.maxQueue == 0, "serve: maxQueue must be positive");
    fatalIf(opt.serviceTokensPerSec <= 0.0,
            "serve: serviceTokensPerSec must be positive");
}

ServeRun
ServeServer::runTrace(const std::vector<TraceRequest> &trace)
{
    // Metric handles. The registry is per-run state conceptually, but
    // interning is idempotent so reusing the server just accumulates.
    CounterId cAdmitted = registry.counter("serve.admitted");
    CounterId cShedOverload = registry.counter("serve.shed_overload");
    CounterId cShedDeadline = registry.counter("serve.shed_deadline");
    CounterId cBatches = registry.counter("serve.batches");
    CounterId cLanesFilled = registry.counter("serve.lanes_filled");
    CounterId cLanesTotal = registry.counter("serve.lanes_total");
    HistogramId hLatency = registry.histogram(
        "serve.request_latency_us", latencyBoundsUs());
    HistogramId hQueueWait =
        registry.histogram("serve.queue_wait_us", latencyBoundsUs());
    HistogramId hExec =
        registry.histogram("serve.batch_exec_us", latencyBoundsUs());
    Observer *obs = opt.obs;

    ServeRun run;
    run.responses.resize(trace.size());
    ServeSummary &sum = run.summary;
    sum.requests = trace.size();

    /** One queued request: its trace index and admission time. */
    struct Pending
    {
        std::size_t idx;
        std::uint64_t admitUs;
    };
    // Band queues, keyed by (len - 1) / bandWidth. std::map so the
    // earliest-deadline scan below breaks ties by band index — part of
    // the determinism contract, not a style choice.
    std::map<std::size_t, std::vector<Pending>> bands;
    std::map<std::size_t, ServeBandStats> bandStats;
    // Virtual single-server service model: completion times are
    // monotonic, so a deque suffices for the completion "heap".
    std::deque<std::pair<std::uint64_t, std::uint64_t>> completions;
    std::uint64_t inSystem = 0;
    std::uint64_t serverFreeAtUs = 0;

    // Timeline + flight recorder. Both consume only virtual-time
    // lifecycle events, so everything they produce inherits the
    // determinism of the queue dynamics. Neither feeds back into any
    // scheduling or shed decision — responses are bit-identical with
    // the recorder on or off (pinned in tests/test_timeline.cc).
    TimelineBuilder timeline(
        {opt.timelineWindowUs, opt.timelineMaxWindows});
    FlightRecorder recorder(opt.recorderCapacity,
                            opt.recorderShedCapacity);
    std::int64_t nextBatchId = 0;

    auto shed = [&](std::size_t idx, ServeStatus status,
                    std::uint64_t waitUs) {
        ScopedSpan span(obs, "serve.shed");
        span.arg("request", trace[idx].id);
        ServeResponse &r = run.responses[idx];
        r.id = trace[idx].id;
        r.status = status;
        r.queueWaitUs = waitUs;
        r.latencyUs = waitUs;
        // Admission happens at the arrival instant, so the shed
        // instant is arrival + wait for both causes (overload sheds
        // carry waitUs == 0).
        std::uint64_t tUs = trace[idx].arrivalUs + waitUs;
        RequestRecord rec;
        rec.id = trace[idx].id;
        rec.band = static_cast<std::uint32_t>(
            (trace[idx].tokens.size() - 1) / opt.bandWidth);
        rec.tokens =
            static_cast<std::uint32_t>(trace[idx].tokens.size());
        rec.arrivalUs = trace[idx].arrivalUs;
        rec.queueWaitUs = waitUs;
        if (status == ServeStatus::ShedOverload) {
            rec.shed = ShedCause::Overload;
            timeline.shedOverload(tUs);
            ++sum.shedOverload;
            registry.add(cShedOverload);
            Observer::count(obs, obs ? obs->serveShedOverload
                                     : CounterId{});
        } else {
            // Deadline sheds were admitted and dropped at dispatch:
            // their record keeps the admit instant and stamps the
            // dispatch instant the drop happened at.
            rec.shed = ShedCause::Deadline;
            rec.admitUs = trace[idx].arrivalUs;
            rec.dispatchUs = tUs;
            timeline.shedDeadline(tUs);
            ++sum.shedDeadline;
            registry.add(cShedDeadline);
            Observer::count(obs, obs ? obs->serveShedDeadline
                                     : CounterId{});
        }
        recorder.record(rec);
    };

    auto flushBand = [&](std::size_t band, std::uint64_t nowUs) {
        auto node = bands.extract(band);
        std::vector<Pending> tile = std::move(node.mapped());
        std::uint64_t batchStartUs =
            std::max(nowUs, serverFreeAtUs);

        // Deadline shedding happens at dispatch, against the virtual
        // queue wait: a request that already blew its SLO is dropped
        // instead of occupying a lane.
        std::vector<Pending> kept;
        kept.reserve(tile.size());
        for (const Pending &p : tile) {
            if (opt.requestDeadlineUs != 0
                && batchStartUs - p.admitUs > opt.requestDeadlineUs) {
                shed(p.idx, ServeStatus::ShedDeadline,
                     batchStartUs - p.admitUs);
                --inSystem;
            } else {
                kept.push_back(p);
            }
        }
        if (kept.empty())
            return;
        std::int64_t batchId = nextBatchId++;

        // Real execution of the tile. Composition never changes the
        // math: headLogitsBatch is bit-identical to one-at-a-time
        // serial calls, so *when* a request got batched is invisible
        // in its logits.
        TokenBatch batch;
        std::vector<std::uint64_t> requestIds;
        batch.reserve(kept.size());
        requestIds.reserve(kept.size());
        for (const Pending &p : kept) {
            batch.push_back(trace[p.idx].tokens);
            requestIds.push_back(trace[p.idx].id);
        }
        WallTimer timer;
        std::vector<Tensor> logits;
        {
            ScopedSpan span(obs, "serve.batch");
            span.arg("batch", static_cast<std::uint64_t>(batchId));
            span.arg("requests", kept.size());
            logits = session.headLogitsBatch(batch, requestIds);
        }
        registry.observe(hExec, timer.seconds() * 1e6);

        // Virtual service accounting: the tile occupies the server for
        // its token count over the modeled rate, plus fixed overhead.
        std::size_t tokens = batchTokens(batch);
        sum.tokensServed += tokens;
        auto serviceUs = static_cast<std::uint64_t>(
            static_cast<double>(tokens) / opt.serviceTokensPerSec
            * 1e6);
        std::uint64_t completionUs =
            batchStartUs + opt.batchOverheadUs + serviceUs;
        serverFreeAtUs = completionUs;
        completions.emplace_back(completionUs, kept.size());

        // Completion events are emitted now, with future timestamps —
        // the builder re-sorts by (timestamp, emission seq), and
        // emission order already matches the server's same-instant
        // tie-break (this tile's completions were emitted before any
        // later tile's dispatch).
        timeline.dispatch(batchStartUs, kept.size(), opt.tileLanes);
        timeline.batchComplete(completionUs, tokens);

        ++sum.batches;
        sum.lanesFilled += kept.size();
        sum.lanesTotal += opt.tileLanes;
        registry.add(cBatches);
        registry.add(cLanesFilled, kept.size());
        registry.add(cLanesTotal, opt.tileLanes);
        if (obs) {
            obs->metrics.add(obs->serveBatches);
            obs->metrics.add(obs->serveLanesFilled, kept.size());
            obs->metrics.add(obs->serveLanesTotal, opt.tileLanes);
        }

        ServeBandStats &bs = bandStats[band];
        bs.band = band;
        bs.minLen = band * opt.bandWidth + 1;
        bs.maxLen = (band + 1) * opt.bandWidth;
        bs.requests += kept.size();
        ++bs.batches;

        for (std::size_t i = 0; i < kept.size(); ++i) {
            const Pending &p = kept[i];
            ServeResponse &r = run.responses[p.idx];
            r.id = trace[p.idx].id;
            r.status = ServeStatus::Ok;
            r.logits = std::move(logits[i]);
            r.queueWaitUs = batchStartUs - p.admitUs;
            r.latencyUs = completionUs - p.admitUs;
            timeline.complete(completionUs, r.queueWaitUs);
            RequestRecord rec;
            rec.id = r.id;
            rec.band = static_cast<std::uint32_t>(band);
            rec.lane = static_cast<std::uint32_t>(i);
            rec.batchId = batchId;
            rec.tokens = static_cast<std::uint32_t>(
                trace[p.idx].tokens.size());
            rec.arrivalUs = p.admitUs;
            rec.admitUs = p.admitUs;
            rec.dispatchUs = batchStartUs;
            rec.completeUs = completionUs;
            rec.queueWaitUs = r.queueWaitUs;
            recorder.record(rec);
            ++sum.completed;
            registry.observe(hLatency,
                             static_cast<double>(r.latencyUs));
            registry.observe(hQueueWait,
                             static_cast<double>(r.queueWaitUs));
            if (obs) {
                obs->metrics.observe(obs->serveLatencyUs,
                                     static_cast<double>(r.latencyUs));
                obs->metrics.observe(
                    obs->serveQueueWaitUs,
                    static_cast<double>(r.queueWaitUs));
            }
        }
    };

    // Advance virtual time to `nowUs`, retiring completions and
    // flushing deadline-expired tiles in event order. Completions at
    // the same instant run first: the server frees capacity before the
    // next dispatch claims it.
    auto advance = [&](std::uint64_t nowUs) {
        for (;;) {
            std::uint64_t compT = completions.empty()
                                      ? UINT64_MAX
                                      : completions.front().first;
            std::uint64_t flushT = UINT64_MAX;
            std::size_t flushIdx = 0;
            for (const auto &[b, q] : bands) {
                if (q.empty())
                    continue;
                std::uint64_t d =
                    q.front().admitUs + opt.flushDeadlineUs;
                if (d < flushT) {
                    flushT = d;
                    flushIdx = b;
                }
            }
            std::uint64_t t = std::min(compT, flushT);
            if (t > nowUs)
                break;
            if (compT <= flushT) {
                inSystem -= completions.front().second;
                completions.pop_front();
            } else {
                flushBand(flushIdx, flushT);
            }
        }
    };

    WallTimer wall;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRequest &req = trace[i];
        fatalIf(req.tokens.empty(), "serve: request ", req.id,
                " has no tokens");
        advance(req.arrivalUs);
        timeline.arrival(req.arrivalUs);

        ScopedSpan span(obs, "serve.admit");
        span.arg("request", req.id);
        if (inSystem >= opt.maxQueue) {
            // Backpressure: reject now with an explicit status rather
            // than letting the queue (and every queued request's
            // latency) grow without bound.
            shed(i, ServeStatus::ShedOverload, 0);
            continue;
        }
        registry.add(cAdmitted);
        Observer::count(obs, obs ? obs->serveAdmitted : CounterId{});
        timeline.admit(req.arrivalUs);
        std::size_t band = (req.tokens.size() - 1) / opt.bandWidth;
        auto &queue = bands[band];
        queue.push_back({i, req.arrivalUs});
        ++inSystem;
        if (queue.size() >= opt.tileLanes)
            flushBand(band, req.arrivalUs);
    }
    // Shutdown drain: advancing past every pending deadline flushes
    // the remaining partial tiles, so no admitted request is lost.
    advance(UINT64_MAX - 1);
    sum.wallSeconds = wall.seconds();

    fatalIf(inSystem != 0, "serve: ", inSystem,
            " requests still in system after drain");
    sum.tileOccupancy =
        sum.lanesTotal
            ? static_cast<double>(sum.lanesFilled)
                  / static_cast<double>(sum.lanesTotal)
            : 0.0;
    sum.tokensPerSec = sum.wallSeconds > 0.0
                           ? static_cast<double>(sum.tokensServed)
                                 / sum.wallSeconds
                           : 0.0;
    for (auto &[band, bs] : bandStats) {
        bs.occupancy =
            bs.batches ? static_cast<double>(bs.requests)
                             / static_cast<double>(bs.batches
                                                   * opt.tileLanes)
                       : 0.0;
        sum.bands.push_back(bs);
    }

    MetricsSnapshot snap = registry.snapshot();
    if (const HistogramSnapshot *h =
            snap.findHistogram("serve.request_latency_us")) {
        sum.latencyP50Us = h->quantile(0.50);
        sum.latencyP95Us = h->quantile(0.95);
        sum.latencyP99Us = h->quantile(0.99);
    }
    if (const HistogramSnapshot *h =
            snap.findHistogram("serve.queue_wait_us")) {
        sum.queueWaitP50Us = h->quantile(0.50);
        sum.queueWaitP95Us = h->quantile(0.95);
        sum.queueWaitP99Us = h->quantile(0.99);
    }
    if (const HistogramSnapshot *h =
            snap.findHistogram("serve.batch_exec_us")) {
        sum.execP50Us = h->quantile(0.50);
        sum.execP95Us = h->quantile(0.95);
        sum.execP99Us = h->quantile(0.99);
    }

    std::uint64_t checksum = 0x243f6a8885a308d3ULL; // pi, arbitrary
    for (const ServeResponse &r : run.responses)
        checksum = foldResponseChecksum(checksum, r);
    sum.responseChecksum = checksum;

    sum.timeline = timeline.build();
    run.flightRecords = recorder.tail();
    run.flightRecorded = recorder.recorded();
    return run;
}

namespace {

/** Shortest-roundtrip double for JSON; NaN (undefined quantile on an
 * all-shed run) becomes null. */
std::string
jnum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

/** kNeverUs (lifecycle stage never happened) becomes JSON null. */
std::string
jstamp(std::uint64_t tUs)
{
    return tUs == kNeverUs ? "null" : std::to_string(tUs);
}

/**
 * The admission-options object, shared by writeServeJson and
 * writeTimelineJson. One writer on purpose: bench_diff refuses to
 * compare reports whose options differ, so every knob that shapes the
 * deterministic outcome — including the timeline window and recorder
 * capacities — must appear here or a changed knob would slip past the
 * scenario-mismatch refusal.
 */
void
writeOptionsJson(const ServeOptions &opt, std::ostream &os)
{
    os << "{\"max_queue\": " << opt.maxQueue
       << ", \"flush_deadline_us\": " << opt.flushDeadlineUs
       << ", \"request_deadline_us\": " << opt.requestDeadlineUs
       << ", \"tile_lanes\": " << opt.tileLanes
       << ", \"band_width\": " << opt.bandWidth
       << ", \"service_tokens_per_sec\": "
       << jnum(opt.serviceTokensPerSec)
       << ", \"batch_overhead_us\": " << opt.batchOverheadUs
       << ", \"timeline_window_us\": " << opt.timelineWindowUs
       << ", \"timeline_max_windows\": " << opt.timelineMaxWindows
       << ", \"recorder_capacity\": " << opt.recorderCapacity
       << ", \"recorder_shed_capacity\": " << opt.recorderShedCapacity
       << "}";
}

/** The environment stamp both report formats open with. */
void
writeMetaJson(const ServeReportMeta &meta, std::ostream &os)
{
    os << "  \"trace\": \"" << meta.trace << "\",\n";
    os << "  \"kernel_tier\": \"" << meta.kernelTier << "\",\n";
    os << "  \"threads\": " << meta.threads << ",\n";
    os << "  \"engine\": \"" << meta.engine << "\",\n";
}

} // namespace

void
writeServeJson(const ServeSummary &sum, const ServeOptions &opt,
               const ServeReportMeta &meta, std::ostream &os)
{
    char hex[32];
    std::snprintf(hex, sizeof hex, "0x%016llx",
                  static_cast<unsigned long long>(sum.responseChecksum));
    os << "{\n";
    os << "  \"bench\": \"micro_serve\",\n";
    writeMetaJson(meta, os);
    os << "  \"format\": \"" << meta.format << "\",\n";
    os << "  \"options\": ";
    writeOptionsJson(opt, os);
    os << ",\n";
    os << "  \"requests\": " << sum.requests << ",\n";
    os << "  \"completed\": " << sum.completed << ",\n";
    os << "  \"shed_overload\": " << sum.shedOverload << ",\n";
    os << "  \"shed_deadline\": " << sum.shedDeadline << ",\n";
    os << "  \"batches\": " << sum.batches << ",\n";
    os << "  \"lanes_filled\": " << sum.lanesFilled << ",\n";
    os << "  \"lanes_total\": " << sum.lanesTotal << ",\n";
    os << "  \"tile_occupancy\": " << jnum(sum.tileOccupancy) << ",\n";
    os << "  \"bands\": [";
    for (std::size_t i = 0; i < sum.bands.size(); ++i) {
        const ServeBandStats &b = sum.bands[i];
        os << (i ? ",\n            " : "\n            ")
           << "{\"band\": " << b.band << ", \"min_len\": " << b.minLen
           << ", \"max_len\": " << b.maxLen
           << ", \"requests\": " << b.requests
           << ", \"batches\": " << b.batches
           << ", \"occupancy\": " << jnum(b.occupancy) << "}";
    }
    os << "],\n";
    os << "  \"latency_virtual_us\": {\"p50\": " << jnum(sum.latencyP50Us)
       << ", \"p95\": " << jnum(sum.latencyP95Us)
       << ", \"p99\": " << jnum(sum.latencyP99Us) << "},\n";
    os << "  \"queue_wait_virtual_us\": {\"p50\": "
       << jnum(sum.queueWaitP50Us)
       << ", \"p95\": " << jnum(sum.queueWaitP95Us)
       << ", \"p99\": " << jnum(sum.queueWaitP99Us) << "},\n";
    // Wall-clock block: machine-dependent, never gated exactly.
    os << "  \"batch_exec_us\": {\"p50\": " << jnum(sum.execP50Us)
       << ", \"p95\": " << jnum(sum.execP95Us)
       << ", \"p99\": " << jnum(sum.execP99Us) << "},\n";
    os << "  \"tokens_served\": " << sum.tokensServed << ",\n";
    os << "  \"wall_seconds\": " << jnum(sum.wallSeconds) << ",\n";
    os << "  \"tokens_per_sec\": " << jnum(sum.tokensPerSec) << ",\n";
    // Deterministic like the counters above: bench_diff gates every
    // window exactly against the committed baseline.
    os << "  \"timeline\": {\"window_us\": " << sum.timeline.windowUs
       << ", \"clamped\": " << (sum.timeline.clamped ? "true" : "false")
       << ", \"windows\": ";
    writeTimelineWindows(sum.timeline, os, 4);
    os << "},\n";
    os << "  \"response_checksum\": \"" << hex << "\"\n";
    os << "}\n";
}

void
writeTimelineJson(const ServeRun &run, const ServeOptions &opt,
                  const ServeReportMeta &meta, std::ostream &os)
{
    const ServeSummary &sum = run.summary;
    os << "{\n";
    os << "  \"format\": \"gobo-timeline-v1\",\n";
    writeMetaJson(meta, os);
    os << "  \"weight_format\": \"" << meta.format << "\",\n";
    os << "  \"options\": ";
    writeOptionsJson(opt, os);
    os << ",\n";
    os << "  \"window_us\": " << sum.timeline.windowUs << ",\n";
    os << "  \"clamped\": " << (sum.timeline.clamped ? "true" : "false")
       << ",\n";
    os << "  \"windows\": ";
    writeTimelineWindows(sum.timeline, os, 2);
    os << ",\n";
    os << "  \"flight_recorder\": {\"recorded\": " << run.flightRecorded
       << ", \"retained\": " << run.flightRecords.size()
       << ", \"records\": [";
    for (std::size_t i = 0; i < run.flightRecords.size(); ++i) {
        const RequestRecord &r = run.flightRecords[i];
        os << (i ? ",\n    " : "\n    ") << "{\"id\": " << r.id
           << ", \"band\": " << r.band << ", \"lane\": "
           << (r.lane == UINT32_MAX ? "null" : std::to_string(r.lane))
           << ", \"batch\": "
           << (r.batchId < 0 ? "null" : std::to_string(r.batchId))
           << ", \"tokens\": " << r.tokens
           << ", \"shed\": \"" << shedCauseName(r.shed) << "\""
           << ", \"arrival_us\": " << r.arrivalUs
           << ", \"admit_us\": " << jstamp(r.admitUs)
           << ", \"dispatch_us\": " << jstamp(r.dispatchUs)
           << ", \"complete_us\": " << jstamp(r.completeUs)
           << ", \"queue_wait_us\": " << r.queueWaitUs << "}";
    }
    os << "]}\n";
    os << "}\n";
}

} // namespace gobo
