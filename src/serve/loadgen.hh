/**
 * @file
 * Trace-driven load generator for the serving daemon.
 *
 * A trace is a fully deterministic function of its spec: SplitMix64
 * seeds a xoshiro256++ stream for arrivals and lengths, every request's
 * token content comes from its own SplitMix64 stream keyed by (seed,
 * id), and the exponential inter-arrival draw goes through an embedded
 * inverse-CDF table instead of libm's log() — basic IEEE arithmetic is
 * correctly rounded everywhere, so the same spec produces the same
 * trace byte for byte on every platform. That is what makes a
 * 100k-request soak a replayable CI scenario rather than a demo: the
 * committed BENCH_serve.json baseline can gate shed counts and
 * response checksums exactly.
 *
 * The spec grammar is strict (parseTraceSpec): unknown keys, trailing
 * junk, or out-of-range values are rejected, never guessed at.
 */

#ifndef GOBO_SERVE_LOADGEN_HH
#define GOBO_SERVE_LOADGEN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gobo {

/**
 * SplitMix64 — the seeding/hashing generator (Steele et al.). One
 * 64-bit state word, invertible finalizer, passes BigCrush; the
 * standard way to expand one seed into independent streams.
 */
struct SplitMix64
{
    std::uint64_t state;

    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
};

/** One stateless SplitMix64 finalization step — a 64-bit mixer for
 * checksums and per-request stream keys. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256++ (Blackman & Vigna) — the trace's main stream. Seeded
 * through SplitMix64 so a zero or small seed still yields a
 * well-mixed state.
 */
class Xoshiro256pp
{
  public:
    explicit Xoshiro256pp(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &w : s)
            w = sm.next();
    }

    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(s[0] + s[3], 23) + s[0];
        std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1) from the top 53 bits. */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

/** One generated request: virtual arrival time plus its tokens. */
struct TraceRequest
{
    std::uint64_t id = 0;
    std::uint64_t arrivalUs = 0; ///< virtual arrival timestamp.
    std::vector<std::int32_t> tokens;
};

/**
 * Everything that determines a trace. Arrivals are a Poisson-like
 * process at `ratePerSec`, optionally modulated by a periodic burst
 * pattern: for the first `burstDuty` fraction of every
 * `burstPeriodUs` window the rate is multiplied by `burstFactor`.
 * Sequence lengths draw from two uniform bands — the lower half of
 * [minLen, maxLen] with probability 1 - longFraction, the upper half
 * otherwise — which is enough to make length-band batch formation and
 * tile occupancy mean something.
 */
struct TraceSpec
{
    std::size_t requests = 1000;
    std::uint64_t seed = 42;
    double ratePerSec = 300.0;
    std::size_t minLen = 1;
    std::size_t maxLen = 32;
    double longFraction = 0.25;
    double burstFactor = 1.0;
    double burstDuty = 0.0;
    std::uint64_t burstPeriodUs = 200000;
};

/**
 * Parse a trace spec string: comma-separated key=value pairs, all
 * optional, every value checked with no trailing junk accepted.
 *
 *   n=100000        requests (1 .. 10^7)
 *   seed=7          stream seed (any u64)
 *   rate=300        mean arrivals per second (> 0)
 *   len=1:64        sequence length range (1 <= min <= max)
 *   long=0.25       fraction drawn from the upper length band [0, 1]
 *   burst=4x0.2     burst rate factor (>= 1) x duty fraction [0, 1]
 *   period=200000   burst period in microseconds (> 0)
 *
 * Returns nullopt on any violation — an unparsable load scenario must
 * never silently degrade into a different one.
 */
std::optional<TraceSpec> parseTraceSpec(std::string_view text);

/** Canonical spec string (parses back to the same spec); stamped into
 * BENCH_serve.json so diffs can refuse cross-scenario comparisons. */
std::string traceSpecString(const TraceSpec &spec);

/**
 * Generate the trace: `spec.requests` requests sorted by arrival time,
 * token ids uniform in [0, vocab). Deterministic in (spec, vocab).
 */
std::vector<TraceRequest> generateTrace(const TraceSpec &spec,
                                        std::size_t vocab);

} // namespace gobo

#endif // GOBO_SERVE_LOADGEN_HH
