/**
 * @file
 * Continuous-batching admission layer in front of InferenceSession.
 *
 * Requests enter an admission queue, a batch former coalesces them
 * into sequence tiles — tileLanes lanes (the executing kernel tier's
 * seqTile by default: 8 for generic/avx2, 16 for avx512), grouped by
 * length band so a tile never mixes a 3-token probe with a 500-token
 * document — and
 * each tile is dispatched as one batched forward. A band flushes when
 * its tile fills or when its oldest request has waited
 * `flushDeadlineUs`, whichever comes first; under overload the server
 * sheds instead of queuing unboundedly (`maxQueue` bound, explicit
 * ShedOverload status) and drops requests whose queue wait already
 * blew their deadline (ShedDeadline) rather than burning service time
 * on an answer nobody is waiting for.
 *
 * Determinism is the design center: queue dynamics run in *virtual*
 * time. Arrivals come timestamped by the trace, and service occupancy
 * advances by a configured token-rate model, so batch composition,
 * shed decisions, and virtual latency quantiles are pure functions of
 * (trace, options) — bit-identical across machines, thread counts,
 * and kernel tiers (they never read a logit). The actual forward passes
 * still execute for real on the session's backend; their wall-clock
 * times feed separate (non-deterministic) histograms. Replaying the
 * same trace against a serial session one request at a time must
 * reproduce every Ok response's logits exactly — the batched forward
 * is bit-identical to one-at-a-time calls by the session contract —
 * and tests/test_serve.cc pins that.
 *
 * SLO tracking runs through the obs layer: the server owns a
 * MetricsRegistry (latency/queue-wait/exec histograms, always on) and
 * mirrors counters and the serve.admit / serve.batch / serve.shed
 * span taxonomy onto an attached Observer.
 */

#ifndef GOBO_SERVE_SERVER_HH
#define GOBO_SERVE_SERVER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/session.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "serve/loadgen.hh"
#include "tensor/tensor.hh"

namespace gobo {

class Observer;

/** Terminal state of one request. */
enum class ServeStatus
{
    Ok,           ///< executed; logits populated.
    ShedOverload, ///< rejected at admission: queue at maxQueue.
    ShedDeadline, ///< dropped at dispatch: queue wait blew the deadline.
};

/** Printable status name. */
const char *serveStatusName(ServeStatus s);

/** One request's outcome. Latencies are virtual-time (deterministic). */
struct ServeResponse
{
    std::uint64_t id = 0;
    ServeStatus status = ServeStatus::ShedOverload;
    Tensor logits;                  ///< empty unless status == Ok.
    std::uint64_t queueWaitUs = 0;  ///< admission -> dispatch.
    std::uint64_t latencyUs = 0;    ///< admission -> completion.
};

/** Admission/batching policy plus the virtual service model. */
struct ServeOptions
{
    /** Requests allowed in the system (queued + in service) before
     * admission sheds with ShedOverload. */
    std::size_t maxQueue = 256;
    /** Max virtual wait of a band's oldest request before a partial
     * tile flushes anyway. */
    std::uint64_t flushDeadlineUs = 20000;
    /** Per-request SLO: shed at dispatch once queue wait exceeds this.
     * 0 disables deadline shedding. */
    std::uint64_t requestDeadlineUs = 0;
    /** Lanes per dispatch tile. 0 (the default) resolves to the
     * executing kernel tier's KernelSet::seqTile at server
     * construction, so a full tile keeps every SIMD lane of the
     * batched forward busy; the resolved value is what gets stamped
     * into the options JSON. */
    std::size_t tileLanes = 0;
    /** Length-band granularity: band = (len - 1) / bandWidth. */
    std::size_t bandWidth = 16;
    /** Virtual service model: tokens per second one server drains. */
    double serviceTokensPerSec = 4000.0;
    /** Virtual fixed cost per dispatched tile. */
    std::uint64_t batchOverheadUs = 200;
    /** Width of one timeline window (virtual µs) in the per-run
     * windowed series (ServeSummary::timeline). */
    std::uint64_t timelineWindowUs = 1000000;
    /** Timeline windows cap; the tail folds into the last window. */
    std::size_t timelineMaxWindows = 4096;
    /** Flight-recorder tail ring: last N terminal request records kept
     * for postmortems. 0 disables the recorder entirely. */
    std::size_t recorderCapacity = 256;
    /** Flight-recorder shed ring: shed records additionally pinned
     * here so they survive being rolled out of the tail. */
    std::size_t recorderShedCapacity = 256;
    /** Span/counter sink; null disables the serve.* span taxonomy. */
    Observer *obs = nullptr;
};

/** Per-band occupancy accounting for one run. */
struct ServeBandStats
{
    std::size_t band = 0;
    std::size_t minLen = 0; ///< smallest length this band covers.
    std::size_t maxLen = 0; ///< largest length this band covers.
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    /** requests / (batches * tileLanes): 1.0 = every lane useful. */
    double occupancy = 0.0;
};

/** Deterministic + measured outcomes of one trace run. */
struct ServeSummary
{
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t shedOverload = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t batches = 0;
    std::uint64_t lanesFilled = 0;
    std::uint64_t lanesTotal = 0;
    /** lanesFilled / lanesTotal across all dispatched tiles. */
    double tileOccupancy = 0.0;
    std::vector<ServeBandStats> bands;

    // Virtual-time quantiles (deterministic, from the obs histograms).
    double latencyP50Us = 0.0, latencyP95Us = 0.0, latencyP99Us = 0.0;
    double queueWaitP50Us = 0.0, queueWaitP95Us = 0.0,
           queueWaitP99Us = 0.0;

    // Wall-clock execution measurements (machine-dependent).
    double execP50Us = 0.0, execP95Us = 0.0, execP99Us = 0.0;
    std::uint64_t tokensServed = 0;
    double wallSeconds = 0.0;
    double tokensPerSec = 0.0;

    /** Digest over (id, status, logits bits) of every response,
     * folded in request-id order so completion order is invisible:
     * the replay-identity gate in BENCH_serve.json. Stable across
     * backends, thread counts, and weight formats — but only within a
     * kernel tier: the fp32 task head behind headLogits reassociates
     * on AVX2 (DESIGN.md §11), so the logit bits (and this digest)
     * differ across tiers even for quantized engines. bench_diff
     * refuses cross-tier comparisons for exactly this reason. */
    std::uint64_t responseChecksum = 0;

    /** Windowed virtual-time series (obs/timeline.hh): deterministic
     * for fixed (trace, options), exactly gateable like the counters
     * above. Window width comes from ServeOptions::timelineWindowUs. */
    TimelineSeries timeline;
};

/** Everything runTrace() produces. */
struct ServeRun
{
    /** One response per trace request, indexed by request id. */
    std::vector<ServeResponse> responses;
    ServeSummary summary;
    /** Flight-recorder tail: the last recorderCapacity terminal
     * request records plus pinned shed records, sorted by id. Empty
     * when recorderCapacity == 0. */
    std::vector<RequestRecord> flightRecords;
    /** Lifecycle records ever handed to the recorder (>= the tail's
     * size once the rings wrap). */
    std::uint64_t flightRecorded = 0;
};

/**
 * The serving loop bound to one session. The session's ExecContext
 * decides how each dispatched tile executes (backend, threads, kernel
 * tier); the server only decides *what* gets batched together and
 * when — decisions it makes in virtual time (see file comment).
 */
class ServeServer
{
  public:
    /** `session` must outlive the server. */
    ServeServer(const InferenceSession &session, ServeOptions options);

    /**
     * Run a trace to completion: admit every request in arrival order,
     * flush deadline-expired tiles as virtual time advances, and drain
     * every queued request at the end — shutdown loses nothing, and
     * each request id gets exactly one response.
     */
    ServeRun runTrace(const std::vector<TraceRequest> &trace);

    /** The per-run metrics registry (latency/queue-wait/exec
     * histograms plus serve.* counters); valid after runTrace. */
    const MetricsRegistry &metrics() const { return registry; }

    /** The options the server actually runs under — defaults resolved
     * (tileLanes = the kernel tier's seqTile). Pass *these* to the
     * JSON writers, never the caller's pre-construction copy: the
     * stamp exists so diffs refuse across different geometry, and an
     * unresolved 0 would make different tile widths compare equal. */
    const ServeOptions &options() const { return opt; }

  private:
    const InferenceSession &session;
    ServeOptions opt;
    MetricsRegistry registry;
};

/** Fold one response into a running checksum (see
 * ServeSummary::responseChecksum); exposed for replay tests. */
std::uint64_t foldResponseChecksum(std::uint64_t h,
                                   const ServeResponse &r);

/** Execution-environment stamp for the serve JSON report; diff
 * tooling refuses to compare reports whose stamps differ. */
struct ServeReportMeta
{
    std::string trace;      ///< canonical spec string (traceSpecString).
    std::string kernelTier; ///< resolved SIMD tier name.
    std::size_t threads = 1;
    std::string engine; ///< "qexec" or "fp32".
    std::string format; ///< "packed" or "unpacked".
};

/**
 * Write the BENCH_serve.json document: environment stamp, admission
 * options, and the summary (deterministic virtual-time fields plus the
 * machine-dependent wall-clock ones). Undefined quantiles (empty
 * histograms) are emitted as JSON null; the response checksum as a hex
 * string so 64-bit exactness survives JSON number parsing.
 */
void writeServeJson(const ServeSummary &sum, const ServeOptions &opt,
                    const ServeReportMeta &meta, std::ostream &os);

/**
 * Write the standalone gobo-timeline-v1 document (`gobo serve
 * --timeline-out`): format marker, the same environment/options stamp
 * as writeServeJson, the windowed series, and the flight-recorder
 * tail. Window objects are byte-identical to the BENCH_serve.json
 * `timeline` block (both go through writeTimelineWindows). Lifecycle
 * timestamps that never happened (kNeverUs) are emitted as null.
 */
void writeTimelineJson(const ServeRun &run, const ServeOptions &opt,
                       const ServeReportMeta &meta, std::ostream &os);

} // namespace gobo

#endif // GOBO_SERVE_SERVER_HH
