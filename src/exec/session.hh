/**
 * @file
 * InferenceSession — the serving entry point over the execution stack.
 *
 * A session owns a model (FP32 BertModel or compressed-domain
 * QuantizedBertModel) together with the ExecContext it runs under, and
 * exposes single-sequence and batched forward passes. Batched calls
 * parallelize *across* sequences on the context's pool, and each
 * per-sequence forward keeps its own intra-sequence parallelism: the
 * pool composes the two levels by sharing nested submissions onto the
 * worker deques, so when sequence lengths are skewed the threads that
 * finish short sequences steal tile tasks from the long ones instead
 * of idling. Composition only moves work between threads, so batch
 * results stay bit-identical to one-at-a-time calls (and to the
 * serial backend) — the determinism contract DESIGN.md §12 documents.
 * The CLI `infer` command, the examples, and bench/micro_forward all
 * drive inference through this class instead of ad-hoc encoder calls.
 */

#ifndef GOBO_EXEC_SESSION_HH
#define GOBO_EXEC_SESSION_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/qexec.hh"
#include "exec/context.hh"
#include "model/model.hh"
#include "tensor/tensor.hh"

namespace gobo {

/** A batch of token sequences. */
using TokenBatch = std::vector<std::vector<std::int32_t>>;

/**
 * Total tokens across a batch — the sum of per-sequence lengths, NOT
 * batch.size() * batch[0].size(): mixed-length batches are the norm
 * under serving load, and throughput computed from the first
 * sequence's length is simply wrong there. Every tokens/sec report
 * over a TokenBatch goes through this.
 */
inline std::size_t
batchTokens(const TokenBatch &batch)
{
    std::size_t tokens = 0;
    for (const auto &seq : batch)
        tokens += seq.size();
    return tokens;
}

/** A model + execution context bound together for repeated inference. */
class InferenceSession
{
  public:
    /** Serve an FP32 model under `ctx`. */
    InferenceSession(BertModel model, ExecContext ctx = {});

    /** Serve a compressed-domain model under `ctx`. */
    InferenceSession(QuantizedBertModel model, ExecContext ctx = {});

    /** True when executing from the compressed format. */
    bool compressed() const { return quantized.has_value(); }

    /**
     * Runtime index format of the compressed engine (Unpacked for an
     * FP32 session, which has no index stream).
     */
    WeightFormat weightFormat() const;

    /**
     * Bytes of FC-weight state the forward pass streams: FP32 weights
     * for the dense engine, the runtime-format index stream plus
     * centroid/outlier state for the compressed one.
     */
    std::size_t residentWeightBytes() const;

    const ExecContext &context() const { return ctx; }

    /** Rebind the execution context (e.g. to switch backends). */
    void setContext(ExecContext c) { ctx = c; }

    /**
     * The FP32 model, for callers that need weight access (task
     * harness, span head). Fatal on a compressed session.
     */
    const BertModel &model() const;

    const ModelConfig &config() const;

    /** Hidden states [seq, hidden] for one sequence. */
    Tensor encodeSequence(std::span<const std::int32_t> tokens) const;

    /** Classification-head logits [outputs] for one sequence. */
    Tensor headLogits(std::span<const std::int32_t> tokens) const;

    /**
     * Span-extraction logits [seq, 2] for one sequence (FP32 engine
     * only — the compressed engine keeps the span head FP32-free).
     */
    Tensor spanLogits(std::span<const std::int32_t> tokens) const;

    /** encodeSequence over a batch, parallel across sequences. */
    std::vector<Tensor> encodeBatch(const TokenBatch &batch) const;

    /** headLogits over a batch, parallel across sequences. */
    std::vector<Tensor> headLogitsBatch(const TokenBatch &batch) const;

    /**
     * headLogitsBatch with request correlation: `requestIds[i]` is
     * stamped onto lane i's "sequence" trace span as a "request" arg,
     * so a serve tile's per-lane spans link back to the requests they
     * served. Ids are observability-only — the math and scheduling
     * are identical to the overload above. Must match batch.size().
     */
    std::vector<Tensor>
    headLogitsBatch(const TokenBatch &batch,
                    std::span<const std::uint64_t> requestIds) const;

  private:
    /**
     * Context for the per-sequence forward inside a batched call. The
     * session's own context rides through unchanged: intra-sequence
     * loops become nested pool submissions that compose with the
     * batch-level loop by work-stealing, rather than the historical
     * all-or-nothing serial degrade once batch_size >= threads.
     */
    ExecContext innerContext() const;

    ExecContext ctx;
    std::optional<BertModel> fp32;
    std::optional<QuantizedBertModel> quantized;
};

} // namespace gobo

#endif // GOBO_EXEC_SESSION_HH
