/**
 * @file
 * Persistent worker pool behind every parallel loop in the repo.
 *
 * Workers are spawned once and reused across submissions; a parallel
 * loop is one "job generation" that the submitting thread and up to
 * `count - 1` workers drain together by pulling indexes from an atomic
 * counter and writing into index-addressed slots. The pool never wakes
 * more workers than there are work items, so tiny loops do not pay for
 * idle cores, and a nested submission from inside a worker runs inline
 * rather than deadlocking on its own pool.
 *
 * Determinism contract: the pool schedules *which thread* runs fn(i),
 * never *what* fn(i) computes. As long as fn(i) only writes slot i and
 * keeps a fixed reduction order internally, an N-thread run is
 * bit-identical to a serial one.
 */

#ifndef GOBO_EXEC_THREADPOOL_HH
#define GOBO_EXEC_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gobo {

/**
 * Worker count used when the caller does not specify one: the
 * GOBO_THREADS environment variable if set to a positive integer
 * (CI and benchmarking override), otherwise the hardware concurrency.
 */
std::size_t defaultThreads();

/** A persistent pool of worker threads draining index ranges. */
class ThreadPool
{
  public:
    /** Spawn `workers` persistent threads (0 means defaultThreads()). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Signals the workers to exit and joins them. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Persistent worker threads (the caller adds one more at run()). */
    std::size_t workerCount() const { return workers.size(); }

    /**
     * Run fn(i) for every i in [0, count), blocking until all calls
     * return. The calling thread participates, joined by up to
     * min(workerCount(), count - 1, parallelism - 1) workers; fn must
     * be safe to call concurrently for distinct i. The first exception
     * thrown by fn stops new indexes from being issued and is
     * rethrown here once in-flight calls finish. Reentrant calls from
     * inside a worker run inline on the calling thread.
     *
     * parallelism <= 1 (or count <= 1) runs inline with no
     * synchronization at all.
     */
    void run(std::size_t count, std::size_t parallelism,
             const std::function<void(std::size_t)> &fn);

    /** run() with no parallelism cap beyond the pool size. */
    void
    run(std::size_t count, const std::function<void(std::size_t)> &fn)
    {
        run(count, workers.size() + 1, fn);
    }

    /**
     * The process-wide pool (defaultThreads() - 1 workers, created on
     * first use). Everything in the repo that parallelizes goes
     * through this instance unless handed an explicit pool.
     */
    static ThreadPool &shared();

  private:
    void workerLoop();
    void drain(const std::function<void(std::size_t)> &fn,
               std::size_t count);

    std::vector<std::jthread> workers;

    std::mutex mutex;
    std::condition_variable wake;   ///< workers wait here for a job.
    std::condition_variable done;   ///< the submitter waits here.

    // State of the current job generation, guarded by `mutex` except
    // where noted.
    std::uint64_t generation = 0;
    const std::function<void(std::size_t)> *jobFn = nullptr;
    std::size_t jobCount = 0;
    std::size_t jobSlots = 0;       ///< workers still allowed to join.
    std::size_t active = 0;         ///< workers inside the current job.
    std::atomic<std::size_t> next{0}; ///< next index to claim.
    std::exception_ptr error;
    bool stopping = false;

    /** Serializes concurrent run() calls from different threads. */
    std::mutex submitMutex;
};

} // namespace gobo

#endif // GOBO_EXEC_THREADPOOL_HH
