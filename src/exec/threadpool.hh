/**
 * @file
 * Persistent worker pool behind every parallel loop in the repo.
 *
 * Workers are spawned once and reused across submissions; a parallel
 * loop is one "job generation" that the submitting thread and up to
 * `count - 1` workers drain together by pulling indexes from an atomic
 * counter and writing into index-addressed slots. The pool never wakes
 * more workers than there are work items, so tiny loops do not pay for
 * idle cores, and a nested submission from inside a worker runs inline
 * rather than deadlocking on its own pool.
 *
 * Determinism contract: the pool schedules *which thread* runs fn(i),
 * never *what* fn(i) computes. As long as fn(i) only writes slot i and
 * keeps a fixed reduction order internally, an N-thread run is
 * bit-identical to a serial one.
 */

#ifndef GOBO_EXEC_THREADPOOL_HH
#define GOBO_EXEC_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gobo {

/**
 * Worker count used when the caller does not specify one: the
 * GOBO_THREADS environment variable if set to a positive integer
 * (CI and benchmarking override), otherwise the hardware concurrency.
 */
std::size_t defaultThreads();

/**
 * Point-in-time pool activity counters (see ThreadPool::telemetry()).
 * Values are relaxed-atomic reads: each is individually exact, but a
 * snapshot taken while jobs run may be torn across fields.
 */
struct PoolTelemetry
{
    /** run() calls dispatched to the workers. */
    std::uint64_t jobs = 0;
    /** run() calls executed inline (serial, tiny, or nested). */
    std::uint64_t inlineRuns = 0;
    /** Times a worker woke up and joined a job. */
    std::uint64_t wakes = 0;
    /** Indexes claimed across all participants (incl. submitters). */
    std::uint64_t itemsDrained = 0;
    /** Indexes claimed per persistent worker (submitters excluded). */
    std::vector<std::uint64_t> workerItems;
};

/** A persistent pool of worker threads draining index ranges. */
class ThreadPool
{
  public:
    /** Spawn `workers` persistent threads (0 means defaultThreads()). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Signals the workers to exit and joins them. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Persistent worker threads (the caller adds one more at run()). */
    std::size_t workerCount() const { return workers.size(); }

    /**
     * Run fn(i) for every i in [0, count), blocking until all calls
     * return. The calling thread participates, joined by up to
     * min(workerCount(), count - 1, parallelism - 1) workers; fn must
     * be safe to call concurrently for distinct i. The first exception
     * thrown by fn stops new indexes from being issued and is
     * rethrown here once in-flight calls finish. Reentrant calls from
     * inside a worker run inline on the calling thread.
     *
     * parallelism <= 1 (or count <= 1) runs inline with no
     * synchronization at all.
     */
    void run(std::size_t count, std::size_t parallelism,
             const std::function<void(std::size_t)> &fn);

    /** run() with no parallelism cap beyond the pool size. */
    void
    run(std::size_t count, const std::function<void(std::size_t)> &fn)
    {
        run(count, workers.size() + 1, fn);
    }

    /**
     * The process-wide pool (defaultThreads() - 1 workers, created on
     * first use). Everything in the repo that parallelizes goes
     * through this instance unless handed an explicit pool.
     */
    static ThreadPool &shared();

    /**
     * Activity counters since construction. Pull-based so the pool
     * itself stays free of observability dependencies: instrumentation
     * is per-participant relaxed atomics folded once per drain, never
     * a per-item shared update.
     */
    PoolTelemetry telemetry() const;

  private:
    /** Per-participant counters, padded against false sharing. */
    struct alignas(64) ParticipantStats
    {
        std::atomic<std::uint64_t> items{0};
        std::atomic<std::uint64_t> wakes{0};
    };

    void workerLoop(std::size_t worker);
    void drain(const std::function<void(std::size_t)> &fn,
               std::size_t count, std::atomic<std::uint64_t> &items);

    std::vector<std::jthread> workers;

    /** workers.size() + 1 entries; the last is the submitter slot. */
    std::unique_ptr<ParticipantStats[]> stats;
    std::atomic<std::uint64_t> statJobs{0};
    std::atomic<std::uint64_t> statInline{0};

    std::mutex mutex;
    std::condition_variable wake;   ///< workers wait here for a job.
    std::condition_variable done;   ///< the submitter waits here.

    // State of the current job generation, guarded by `mutex` except
    // where noted.
    std::uint64_t generation = 0;
    const std::function<void(std::size_t)> *jobFn = nullptr;
    std::size_t jobCount = 0;
    std::size_t jobSlots = 0;       ///< workers still allowed to join.
    std::size_t active = 0;         ///< workers inside the current job.
    std::atomic<std::size_t> next{0}; ///< next index to claim.
    std::exception_ptr error;
    bool stopping = false;

    /** Serializes concurrent run() calls from different threads. */
    std::mutex submitMutex;
};

} // namespace gobo

#endif // GOBO_EXEC_THREADPOOL_HH
