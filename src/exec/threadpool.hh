/**
 * @file
 * Persistent worker pool behind every parallel loop in the repo.
 *
 * Workers are spawned once and reused across submissions. A parallel
 * loop is one "job": its index range is split into contiguous tasks
 * scattered across per-participant deques, and every participant runs
 * chunked self-scheduling over them — an owner carves chunks off its
 * own newest task, and a participant whose deque runs dry *steals* the
 * larger half of another deque's oldest task. Stealing is what makes
 * uneven work items (skewed sequence lengths, outlier-heavy weight
 * rows) balance without any up-front cost model.
 *
 * Submissions from inside a worker no longer run inline: a nested
 * run() pushes its range onto the submitting worker's own deque, where
 * idle workers steal it, so batch-level parallelism composes with
 * intra-sequence parallelism instead of degrading to one thread per
 * batch slot. The nested submitter helps drain until its own job
 * completes, so nesting can never deadlock on the pool.
 *
 * Determinism contract: the pool schedules *which thread* runs fn(i),
 * never *what* fn(i) computes. As long as fn(i) only writes slot i and
 * keeps a fixed reduction order internally, an N-thread run is
 * bit-identical to a serial one — stealing moves indexes between
 * threads, not arithmetic between indexes.
 */

#ifndef GOBO_EXEC_THREADPOOL_HH
#define GOBO_EXEC_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace gobo {

/**
 * Worker count used when the caller does not specify one: the
 * GOBO_THREADS environment variable if set to a positive integer
 * (CI and benchmarking override), otherwise the hardware concurrency.
 *
 * The environment is read and parsed exactly once; the result is
 * cached for the life of the process so hot paths (per-batch inner
 * contexts) can call this freely. An unparsable or non-positive value
 * is rejected with a warning on stderr instead of silently falling
 * back.
 */
std::size_t defaultThreads();

/**
 * Parse a GOBO_THREADS-style spec: a positive decimal integer with no
 * trailing junk, capped at 65536. Returns nullopt for anything else
 * (including null). Exposed so tests can pin the accepted grammar
 * without mutating the process environment.
 */
std::optional<std::size_t> parseThreadsSpec(const char *text);

/**
 * Strict unsigned-integer parse for CLI arguments: decimal digits
 * only, no sign, no leading whitespace, no trailing junk, and nullopt
 * on overflow past uint64. The permissive strtoull idiom (which eats
 * whitespace, accepts "-1" by wrapping, and ignores trailing garbage)
 * silently mangles seeds and thread counts; every argv integer in the
 * tools goes through here instead.
 */
std::optional<std::uint64_t> parseUint64Spec(const char *text);

/**
 * Point-in-time pool activity counters (see ThreadPool::telemetry()).
 * Values are relaxed-atomic reads: each is individually exact, but a
 * snapshot taken while jobs run may be torn across fields.
 */
struct PoolTelemetry
{
    /** Top-level run() calls dispatched to the workers. */
    std::uint64_t jobs = 0;
    /** run() calls executed inline (serial, trivial, or under-grain). */
    std::uint64_t inlineRuns = 0;
    /** Nested run() calls shared onto the pool from inside a job. */
    std::uint64_t nestedJobs = 0;
    /** Times a worker woke up and joined a job. */
    std::uint64_t wakes = 0;
    /** Times a participant stole a task half from another deque. */
    std::uint64_t steals = 0;
    /** Indexes executed across all participants (incl. submitters). */
    std::uint64_t itemsDrained = 0;
    /** Indexes executed per persistent worker (submitters excluded). */
    std::vector<std::uint64_t> workerItems;
};

/** A persistent pool of worker threads draining stealable deques. */
class ThreadPool
{
  public:
    /** Spawn `workers` persistent threads (0 means defaultThreads()). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Signals the workers to exit and joins them. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Persistent worker threads (the caller adds one more at run()). */
    std::size_t workerCount() const { return workers.size(); }

    /**
     * Run fn(i) for every i in [0, count), blocking until all calls
     * return. The calling thread participates, joined by up to
     * min(workerCount(), count - 1, parallelism - 1) workers; fn must
     * be safe to call concurrently for distinct i. The first exception
     * thrown by fn stops new indexes from being issued and is
     * rethrown here once in-flight calls finish.
     *
     * parallelism <= 1 (or count <= 1) runs inline with no
     * synchronization at all. A reentrant call from inside a job
     * shares its range onto the pool (see file comment) and returns
     * once every nested index has executed; its parallelism is
     * bounded by the enclosing top-level job's cap.
     */
    void run(std::size_t count, std::size_t parallelism,
             const std::function<void(std::size_t)> &fn);

    /** run() with no parallelism cap beyond the pool size. */
    void
    run(std::size_t count, const std::function<void(std::size_t)> &fn)
    {
        run(count, workers.size() + 1, fn);
    }

    /**
     * The process-wide pool (defaultThreads() - 1 workers, created on
     * first use). Everything in the repo that parallelizes goes
     * through this instance unless handed an explicit pool.
     */
    static ThreadPool &shared();

    /**
     * Activity counters since construction. Pull-based so the pool
     * itself stays free of observability dependencies: instrumentation
     * is per-participant relaxed atomics folded once per drain, never
     * a per-item shared update.
     */
    PoolTelemetry telemetry() const;

    /**
     * OS thread ids of the persistent workers, in slot order — what
     * the PMU registry needs to open per-worker counter groups
     * (perf_event_open monitors a thread by tid without running any
     * code on it). Pull-based for the same layering reason as
     * telemetry(): exec stays free of obs symbols. Each worker
     * publishes its tid as the first action of its loop; this waits
     * briefly for stragglers, and any still-unpublished (or
     * non-Linux) entry is 0, which consumers skip.
     */
    std::vector<long> workerThreadIds() const;

  private:
    /** One parallel loop in flight: its fn plus completion state. */
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        /** Indexes not yet executed; 0 means the job is complete. */
        std::atomic<std::size_t> pending{0};
        /** Set after the first exception: claimed indexes are skipped. */
        std::atomic<bool> cancelled{false};
        /** First exception thrown by fn; guarded by the pool mutex. */
        std::exception_ptr error;
    };

    /** A contiguous index range of one job, sitting in a deque. */
    struct Task
    {
        Job *job;
        std::size_t begin, end;
    };

    /**
     * One participant's deque. The owner pushes and pops at the back
     * (newest task first, so nested jobs run before the enclosing
     * range); thieves split the front (oldest) task. A plain mutex is
     * fine here: every acquisition moves a whole chunk, never a
     * single index.
     */
    struct alignas(64) WorkQueue
    {
        std::mutex m;
        std::vector<Task> tasks;
    };

    /** Per-participant counters, padded against false sharing. */
    struct alignas(64) ParticipantStats
    {
        std::atomic<std::uint64_t> items{0};
        std::atomic<std::uint64_t> wakes{0};
        std::atomic<std::uint64_t> steals{0};
    };

    void workerLoop(std::size_t worker);
    /** Pop a chunk of the newest task on `slot`'s own deque. */
    bool popChunk(std::size_t slot, Task &chunk);
    /** Steal a task half from another deque onto `slot`'s, then pop. */
    bool stealChunk(std::size_t slot, Task &chunk);
    /** Execute every index of `chunk`; returns when all are done. */
    void executeChunk(const Task &chunk, std::size_t slot);
    /** Help drain until `job` completes (pops, steals, then blocks). */
    void drainJob(Job &job, std::size_t slot);
    /** Share a nested submission onto the calling participant's deque. */
    void nestedRun(std::size_t count,
                   const std::function<void(std::size_t)> &fn);
    /** Take the job's error (under the pool mutex) and rethrow it. */
    void rethrowJobError(Job &job);

    std::vector<std::jthread> workers;

    /** OS tid per worker slot; 0 until published (or non-Linux). */
    std::unique_ptr<std::atomic<long>[]> workerTids;

    /** workers.size() + 1 queues/stats; the last is the submitter slot. */
    std::unique_ptr<WorkQueue[]> queues;
    std::unique_ptr<ParticipantStats[]> stats;
    std::atomic<std::uint64_t> statJobs{0};
    std::atomic<std::uint64_t> statInline{0};
    std::atomic<std::uint64_t> statNested{0};

    std::mutex mutex;
    std::condition_variable wake;   ///< workers wait here for a job.
    std::condition_variable done;   ///< submitters wait here.

    // Wake/ticket state, guarded by `mutex`.
    std::uint64_t wakeSignal = 0;   ///< bumped when new work appears.
    std::uint64_t topGeneration = 0; ///< bumped per top-level run().
    std::size_t helperTickets = 0;  ///< workers still allowed to join.
    std::size_t sleepers = 0;       ///< workers parked on `wake`.
    bool stopping = false;

    /** Serializes concurrent top-level run() calls. */
    std::mutex submitMutex;
};

} // namespace gobo

#endif // GOBO_EXEC_THREADPOOL_HH
