#include "exec/scratch.hh"

#include <mutex>

namespace gobo {

namespace {

/**
 * Registry of live arenas so scratchStats() can aggregate. Arenas are
 * thread_local and die at thread exit, so membership churns; the
 * mutex only guards the vector, never the hot path (arena methods
 * don't touch it).
 */
std::mutex registry_mutex;
std::vector<const ScratchArena *> registry;

} // namespace

ScratchArena::ScratchArena()
{
    std::lock_guard lock(registry_mutex);
    registry.push_back(this);
}

ScratchArena::~ScratchArena()
{
    std::lock_guard lock(registry_mutex);
    std::erase(registry, this);
}

double *
ScratchArena::buckets(std::size_t n)
{
    if (bucketBuf.size() < n) {
        bucketBuf.resize(n);
        reserved.store(bucketBuf.capacity() * sizeof(double)
                           + rowBuf.capacity(),
                       std::memory_order_relaxed);
    }
    return bucketBuf.data();
}

const std::uint8_t *
ScratchArena::decodedRows(std::uint64_t ownerId, std::size_t block,
                          std::size_t row0, std::size_t row1,
                          std::size_t cols, RowDecodeFn decode,
                          const void *ctx)
{
    std::size_t rows = row1 - row0;
    if (tagOwner == ownerId && tagBlock == block && tagRow0 == row0
        && tagRow1 == row1 && tagCols == cols) {
        rowHits.fetch_add(rows, std::memory_order_relaxed);
        return rowBuf.data();
    }
    if (rowBuf.size() < rows * cols) {
        rowBuf.resize(rows * cols);
        reserved.store(bucketBuf.capacity() * sizeof(double)
                           + rowBuf.capacity(),
                       std::memory_order_relaxed);
    }
    for (std::size_t r = 0; r < rows; ++r)
        decode(ctx, row0 + r, rowBuf.data() + r * cols);
    rowMisses.fetch_add(rows, std::memory_order_relaxed);
    tagOwner = ownerId;
    tagBlock = block;
    tagRow0 = row0;
    tagRow1 = row1;
    tagCols = cols;
    return rowBuf.data();
}

ScratchArena &
execScratch()
{
    thread_local ScratchArena arena;
    return arena;
}

ScratchStats
scratchStats()
{
    ScratchStats s;
    std::lock_guard lock(registry_mutex);
    for (const ScratchArena *a : registry) {
        ++s.arenas;
        s.bytesReserved += a->reserved.load(std::memory_order_relaxed);
        s.decodeRowHits +=
            a->rowHits.load(std::memory_order_relaxed);
        s.decodeRowMisses +=
            a->rowMisses.load(std::memory_order_relaxed);
    }
    return s;
}

std::uint64_t
nextScratchOwnerId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace gobo
