#include "exec/scratch.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

#include "exec/threadpool.hh" // parseUint64Spec

namespace gobo {

namespace {

/**
 * Registry of live arenas so scratchStats() can aggregate. Arenas are
 * thread_local and die at thread exit, so membership churns; the
 * mutex only guards the vector, never the hot path (arena methods
 * don't touch it).
 */
std::mutex registry_mutex;
std::vector<const ScratchArena *> registry;

} // namespace

std::size_t
decodeCacheBudgetBytes()
{
    // Parsed once and cached, same contract as GOBO_THREADS: strict
    // grammar, warn-and-default on garbage.
    static const std::size_t cached = [] {
        constexpr std::size_t kDefault = std::size_t{1024} * 1024;
        if (const char *env = std::getenv("GOBO_DECODE_CACHE_KB")) {
            if (auto v = parseUint64Spec(env))
                return static_cast<std::size_t>(*v) * 1024;
            std::cerr << "gobo: ignoring invalid GOBO_DECODE_CACHE_KB='"
                      << env
                      << "' (want a non-negative integer); using "
                         "1024\n";
        }
        return kDefault;
    }();
    return cached;
}

ScratchArena::ScratchArena(std::size_t cacheBudget)
    : budget(cacheBudget == std::size_t(-1) ? decodeCacheBudgetBytes()
                                            : cacheBudget)
{
    std::lock_guard lock(registry_mutex);
    registry.push_back(this);
}

ScratchArena::~ScratchArena()
{
    std::lock_guard lock(registry_mutex);
    std::erase(registry, this);
}

void
ScratchArena::updateReserved()
{
    std::size_t bytes =
        bucketBuf.capacity() * sizeof(double) + rowBuf.capacity();
    for (const Slot &s : slots)
        bytes += s.buf.capacity();
    reserved.store(bytes, std::memory_order_relaxed);
    cacheBytes.store(heldBytes, std::memory_order_relaxed);
}

double *
ScratchArena::buckets(std::size_t n)
{
    if (bucketBuf.size() < n) {
        bucketBuf.resize(n);
        updateReserved();
    }
    return bucketBuf.data();
}

const std::uint8_t *
ScratchArena::decodedRows(std::uint64_t ownerId, std::size_t block,
                          std::size_t row0, std::size_t row1,
                          std::size_t cols, RowDecodeFn decode,
                          const void *ctx, bool *hit)
{
    std::size_t rows = row1 - row0;
    std::size_t need = rows * cols;

    for (Slot &s : slots)
        if (s.owner == ownerId && s.block == block && s.row0 == row0
            && s.row1 == row1 && s.cols == cols) {
            s.referenced = true;
            rowHits.fetch_add(rows, std::memory_order_relaxed);
            if (hit)
                *hit = true;
            return s.buf.data();
        }
    if (hit)
        *hit = false;
    rowMisses.fetch_add(rows, std::memory_order_relaxed);

    if (need > budget) {
        // Over-budget (or caching disabled): the pre-cache behavior —
        // decode into a transient buffer this call owns exclusively.
        if (rowBuf.size() < need) {
            rowBuf.resize(need);
            updateReserved();
        }
        for (std::size_t r = 0; r < rows; ++r)
            decode(ctx, row0 + r, rowBuf.data() + r * cols);
        return rowBuf.data();
    }

    // Clock eviction: sweep until the block fits, giving each
    // referenced slot one second chance. Terminates because every
    // pass clears reference bits and heldBytes only counts live
    // slots, so at worst the cache drains to empty (need <= budget).
    while (heldBytes + need > budget && !slots.empty()) {
        Slot &v = slots[clockHand];
        clockHand = (clockHand + 1) % slots.size();
        if (v.owner == kEmptyTag)
            continue;
        if (v.referenced) {
            v.referenced = false;
            continue;
        }
        heldBytes -= v.buf.size();
        v.owner = kEmptyTag;
        evictions.fetch_add(1, std::memory_order_relaxed);
    }

    Slot *dst = nullptr;
    for (Slot &s : slots)
        if (s.owner == kEmptyTag) {
            dst = &s;
            break;
        }
    if (dst == nullptr) {
        slots.emplace_back();
        dst = &slots.back();
    }
    dst->buf.resize(need);
    for (std::size_t r = 0; r < rows; ++r)
        decode(ctx, row0 + r, dst->buf.data() + r * cols);
    dst->owner = ownerId;
    dst->block = block;
    dst->row0 = row0;
    dst->row1 = row1;
    dst->cols = cols;
    dst->referenced = true;
    heldBytes += need;
    updateReserved();
    return dst->buf.data();
}

void
ScratchArena::setDecodeCacheBudget(std::size_t bytes)
{
    slots.clear();
    clockHand = 0;
    heldBytes = 0;
    budget = bytes;
    updateReserved();
}

ScratchArena &
execScratch()
{
    thread_local ScratchArena arena;
    return arena;
}

ScratchStats
scratchStats()
{
    ScratchStats s;
    std::lock_guard lock(registry_mutex);
    for (const ScratchArena *a : registry) {
        ++s.arenas;
        s.bytesReserved += a->reserved.load(std::memory_order_relaxed);
        s.decodeRowHits +=
            a->rowHits.load(std::memory_order_relaxed);
        s.decodeRowMisses +=
            a->rowMisses.load(std::memory_order_relaxed);
        s.decodeCacheBytes +=
            a->cacheBytes.load(std::memory_order_relaxed);
        s.decodeCacheCapacity += a->budget;
        s.decodeCacheEvictions +=
            a->evictions.load(std::memory_order_relaxed);
    }
    return s;
}

std::uint64_t
nextScratchOwnerId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace gobo
