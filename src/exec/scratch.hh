/**
 * @file
 * Per-worker scratch arenas for the compressed-domain hot path.
 *
 * The bucket kernels need two kinds of transient storage per task: the
 * per-centroid accumulator tile and, for Packed layers, the decoded
 * byte-per-weight index rows. Allocating either inside the parallel
 * loop puts malloc on the hot path and (worse) re-decodes a packed row
 * for every sequence tile that touches it. A ScratchArena is owned by
 * exactly one thread (the accessor is thread_local, and the pool's
 * workers are persistent, so in practice arenas are keyed by worker
 * slot): buffers grow monotonically and are reused across tasks,
 * layers, and forwards without synchronization.
 *
 * Ownership rule: a pointer obtained from the arena is valid until the
 * *same thread* asks the arena for anything else — tasks must finish
 * with their scratch before returning to the pool, and must not ask
 * for scratch on behalf of another thread. Nothing in the arena is
 * ever shared across threads, which is also why it cannot affect
 * determinism: scratch holds decoded indexes (a pure function of the
 * weights) and kernel accumulators that every task overwrites before
 * reading.
 *
 * The decoded-row cache is a bounded multi-slot cache tagged by
 * (owner id, row block, row range, cols): each slot holds one decoded
 * row block, the per-arena byte budget comes from GOBO_DECODE_CACHE_KB
 * (default 1024 KB; 0 disables caching), and eviction is clock /
 * second-chance — a slot referenced since the hand last passed gets
 * one more revolution. Because slots persist across forwards, hot
 * small layers (the pooler runs on every request) stop paying bit
 * unpacking entirely after warm-up. A request larger than the budget
 * bypasses the cache into a transient buffer, preserving the old
 * single-use behavior. Owners are identified by a process-unique id
 * (never a pointer, which could be reused after a layer is
 * destroyed), so a new layer can never alias a dead one's slots.
 * Cache capacity is charged to the run's resident footprint
 * (model/footprint.hh), keeping the compression story honest.
 */

#ifndef GOBO_EXEC_SCRATCH_HH
#define GOBO_EXEC_SCRATCH_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gobo {

/** Aggregate scratch counters across every live arena (see
 * scratchStats()). Decode hits/misses are counted in rows; the cache
 * fields are bytes (held / budgeted) and evicted slots. */
struct ScratchStats
{
    std::uint64_t arenas = 0;       ///< threads that touched scratch.
    std::uint64_t bytesReserved = 0; ///< sum of buffer capacities.
    std::uint64_t decodeRowHits = 0; ///< rows served from the cache.
    std::uint64_t decodeRowMisses = 0; ///< rows actually decoded.
    std::uint64_t decodeCacheBytes = 0; ///< decoded bytes held.
    std::uint64_t decodeCacheCapacity = 0; ///< sum of arena budgets.
    std::uint64_t decodeCacheEvictions = 0; ///< slots evicted.
};

/** One thread's grow-only scratch buffers. Not thread-safe by design;
 * reach it through execScratch() only. */
class ScratchArena
{
  public:
    /** Budget defaults to decodeCacheBudgetBytes() (the env knob). */
    explicit ScratchArena(std::size_t cacheBudget = std::size_t(-1));
    ~ScratchArena();
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** Decode callback: write row `row`'s indexes (one byte each) to
     * `out`. `ctx` is the owner object the caller captured. */
    using RowDecodeFn = void (*)(const void *ctx, std::size_t row,
                                 std::uint8_t *out);

    /** A zeroable double buffer of at least `n` elements (the kernels
     * zero-fill it themselves). Invalidated by the next arena call. */
    double *buckets(std::size_t n);

    /**
     * Decoded indexes for rows [row0, row1) of owner `ownerId`, one
     * byte per weight, `cols` per row, consecutive rows `cols` apart.
     * Served from the slot whose tag (ownerId, block, row0, row1,
     * cols) matches; otherwise decode(ctx, row, dst) is invoked once
     * per row into a cache slot (evicting clock-wise to fit the
     * budget) or, for blocks larger than the whole budget, into a
     * transient buffer. The pointer is invalidated by the next
     * decodedRows() call (buckets() leaves it intact). `hit`, when
     * non-null, reports whether the block came from cache.
     */
    const std::uint8_t *decodedRows(std::uint64_t ownerId,
                                    std::size_t block, std::size_t row0,
                                    std::size_t row1, std::size_t cols,
                                    RowDecodeFn decode, const void *ctx,
                                    bool *hit = nullptr);

    /** Replace the cache budget, dropping every cached slot (test and
     * tooling hook; the hot path never calls this). */
    void setDecodeCacheBudget(std::size_t bytes);

    /** This arena's cache budget in bytes. */
    std::size_t decodeCacheBudget() const { return budget; }

  private:
    friend ScratchStats scratchStats();

    /** One cached row block; `owner == kEmptyTag` means free. */
    struct Slot
    {
        std::uint64_t owner;
        std::size_t block, row0, row1, cols;
        bool referenced; ///< clock second-chance bit.
        std::vector<std::uint8_t> buf;
    };
    static constexpr std::uint64_t kEmptyTag = ~std::uint64_t{0};

    void updateReserved();

    std::vector<double> bucketBuf;
    std::vector<std::uint8_t> rowBuf; ///< over-budget transient blocks.
    std::vector<Slot> slots;
    std::size_t clockHand = 0;
    std::size_t budget;
    std::size_t heldBytes = 0; ///< sum of live slots' buf sizes.

    // Relaxed atomics: bumped only by the owning thread, read by
    // scratchStats() from anywhere.
    std::atomic<std::uint64_t> rowHits{0};
    std::atomic<std::uint64_t> rowMisses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> cacheBytes{0};
    std::atomic<std::size_t> reserved{0};
};

/** The calling thread's arena (created on first use, lives until the
 * thread exits). */
ScratchArena &execScratch();

/** Snapshot of every live arena's counters, for telemetry export. */
ScratchStats scratchStats();

/** A process-unique id for tagging decoded rows in the arenas. Taken
 * once per owner (e.g. per QuantizedLinear) at construction. */
std::uint64_t nextScratchOwnerId();

/**
 * The per-arena decoded-row cache budget: GOBO_DECODE_CACHE_KB
 * kilobytes (strictly parsed; invalid values warn and fall back),
 * default 1024 KB. 0 disables caching — every block decodes into the
 * transient buffer.
 */
std::size_t decodeCacheBudgetBytes();

} // namespace gobo

#endif // GOBO_EXEC_SCRATCH_HH
