/**
 * @file
 * Per-worker scratch arenas for the compressed-domain hot path.
 *
 * The bucket kernels need two kinds of transient storage per task: the
 * per-centroid accumulator tile and, for Packed layers, the decoded
 * byte-per-weight index rows. Allocating either inside the parallel
 * loop puts malloc on the hot path and (worse) re-decodes a packed row
 * for every sequence tile that touches it. A ScratchArena is owned by
 * exactly one thread (the accessor is thread_local, and the pool's
 * workers are persistent, so in practice arenas are keyed by worker
 * slot): buffers grow monotonically and are reused across tasks,
 * layers, and forwards without synchronization.
 *
 * Ownership rule: a pointer obtained from the arena is valid until the
 * *same thread* asks the arena for anything else — tasks must finish
 * with their scratch before returning to the pool, and must not ask
 * for scratch on behalf of another thread. Nothing in the arena is
 * ever shared across threads, which is also why it cannot affect
 * determinism: scratch holds decoded indexes (a pure function of the
 * weights) and kernel accumulators that every task overwrites before
 * reading.
 *
 * The decoded-row cache is a single slot tagged by (owner id, row
 * block, row range): a worker that executes several sequence-tile
 * tasks of the same output-row block in a row decodes that block once.
 * Owners are identified by a process-unique id (never a pointer, which
 * could be reused after a layer is destroyed).
 */

#ifndef GOBO_EXEC_SCRATCH_HH
#define GOBO_EXEC_SCRATCH_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gobo {

/** Aggregate scratch counters across every live arena (see
 * scratchStats()). Decode hits/misses are counted in rows. */
struct ScratchStats
{
    std::uint64_t arenas = 0;       ///< threads that touched scratch.
    std::uint64_t bytesReserved = 0; ///< sum of buffer capacities.
    std::uint64_t decodeRowHits = 0; ///< rows served from the cache.
    std::uint64_t decodeRowMisses = 0; ///< rows actually decoded.
};

/** One thread's grow-only scratch buffers. Not thread-safe by design;
 * reach it through execScratch() only. */
class ScratchArena
{
  public:
    ScratchArena();
    ~ScratchArena();
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** Decode callback: write row `row`'s indexes (one byte each) to
     * `out`. `ctx` is the owner object the caller captured. */
    using RowDecodeFn = void (*)(const void *ctx, std::size_t row,
                                 std::uint8_t *out);

    /** A zeroable double buffer of at least `n` elements (the kernels
     * zero-fill it themselves). Invalidated by the next arena call. */
    double *buckets(std::size_t n);

    /**
     * Decoded indexes for rows [row0, row1) of owner `ownerId`, one
     * byte per weight, `cols` per row, consecutive rows `cols` apart.
     * Served from the single-slot cache when the tag (ownerId, block,
     * row0, row1) matches the previous call on this thread; otherwise
     * decode(ctx, row, dst) is invoked once per row. Invalidated by
     * the next decodedRows() call (buckets() leaves it intact).
     */
    const std::uint8_t *decodedRows(std::uint64_t ownerId,
                                    std::size_t block, std::size_t row0,
                                    std::size_t row1, std::size_t cols,
                                    RowDecodeFn decode, const void *ctx);

  private:
    friend ScratchStats scratchStats();

    std::vector<double> bucketBuf;
    std::vector<std::uint8_t> rowBuf;

    // Cache tag for rowBuf's contents; ~0 means empty.
    std::uint64_t tagOwner = ~std::uint64_t{0};
    std::size_t tagBlock = 0, tagRow0 = 0, tagRow1 = 0, tagCols = 0;

    // Relaxed atomics: bumped only by the owning thread, read by
    // scratchStats() from anywhere.
    std::atomic<std::uint64_t> rowHits{0};
    std::atomic<std::uint64_t> rowMisses{0};
    std::atomic<std::size_t> reserved{0};
};

/** The calling thread's arena (created on first use, lives until the
 * thread exits). */
ScratchArena &execScratch();

/** Snapshot of every live arena's counters, for telemetry export. */
ScratchStats scratchStats();

/** A process-unique id for tagging decoded rows in the arenas. Taken
 * once per owner (e.g. per QuantizedLinear) at construction. */
std::uint64_t nextScratchOwnerId();

} // namespace gobo

#endif // GOBO_EXEC_SCRATCH_HH
