#include "exec/session.hh"

#include "kernels/kernels.hh"
#include "nn/encoder.hh"
#include "obs/observer.hh"
#include "obs/probe.hh"
#include "util/logging.hh"

namespace gobo {

namespace {

/**
 * Bump exec.kernel.<tier> for the tier this context resolves to, so
 * every metrics dump names the SIMD tier that produced its numbers
 * (bench JSON refuses cross-tier diffs on this field).
 */
void
recordKernelTier(const ExecContext &ctx)
{
    if (ctx.obs)
        ctx.obs->metrics.add(
            ctx.obs->kernelTierId(resolveKernels(ctx.kernels).name));
}

/**
 * RAII sequence accounting: tokens + sequence count on entry, latency
 * histogram on exit. A null observer costs one branch at each end.
 */
class SequenceProbe
{
  public:
    SequenceProbe(Observer *obs, std::size_t tokens) : obs(obs)
    {
        if (obs) {
            obs->metrics.add(obs->sessionSequences);
            obs->metrics.add(obs->sessionTokens, tokens);
            beginUs = obs->tracer.nowUs();
        }
    }

    SequenceProbe(const SequenceProbe &) = delete;
    SequenceProbe &operator=(const SequenceProbe &) = delete;

    ~SequenceProbe()
    {
        if (obs)
            obs->metrics.observe(obs->sequenceLatencyUs,
                                 obs->tracer.nowUs() - beginUs);
    }

  private:
    Observer *obs;
    double beginUs = 0.0;
};

/** Batch-level counterpart: batch counter + batch-latency histogram
 * wrapped around a span covering the whole batched call. */
class BatchProbe
{
  public:
    BatchProbe(Observer *obs, const char *name)
        : obs(obs), span(obs, name)
    {
        if (obs) {
            obs->metrics.add(obs->sessionBatches);
            beginUs = obs->tracer.nowUs();
        }
    }

    BatchProbe(const BatchProbe &) = delete;
    BatchProbe &operator=(const BatchProbe &) = delete;

    ~BatchProbe()
    {
        if (obs)
            obs->metrics.observe(obs->batchLatencyUs,
                                 obs->tracer.nowUs() - beginUs);
    }

  private:
    Observer *obs;
    ScopedSpan span;
    double beginUs = 0.0;
};

} // namespace

InferenceSession::InferenceSession(BertModel model, ExecContext c)
    : ctx(c), fp32(std::move(model))
{
}

InferenceSession::InferenceSession(QuantizedBertModel model,
                                   ExecContext c)
    : ctx(c), quantized(std::move(model))
{
}

const BertModel &
InferenceSession::model() const
{
    fatalIf(!fp32, "InferenceSession::model() on a compressed session");
    return *fp32;
}

WeightFormat
InferenceSession::weightFormat() const
{
    return quantized ? quantized->format() : WeightFormat::Unpacked;
}

std::size_t
InferenceSession::residentWeightBytes() const
{
    if (quantized)
        return quantized->residentWeightBytes();
    return fp32->config().fcWeightParams() * sizeof(float);
}

const ModelConfig &
InferenceSession::config() const
{
    return fp32 ? fp32->config() : quantized->config();
}

Tensor
InferenceSession::encodeSequence(
    std::span<const std::int32_t> tokens) const
{
    SequenceProbe probe(ctx.obs, tokens.size());
    ScopedSpan span(ctx.obs, "session.encode");
    recordKernelTier(ctx);
    return fp32 ? gobo::encodeSequence(ctx, *fp32, tokens)
                : quantized->encode(ctx, tokens);
}

Tensor
InferenceSession::headLogits(std::span<const std::int32_t> tokens) const
{
    SequenceProbe probe(ctx.obs, tokens.size());
    ScopedSpan span(ctx.obs, "session.headLogits");
    recordKernelTier(ctx);
    Tensor logits;
    if (quantized) {
        logits = quantized->classify(ctx, tokens);
    } else {
        Tensor hidden = gobo::encodeSequence(ctx, *fp32, tokens);
        Tensor pooled = pool(ctx, *fp32, hidden);
        logits = gobo::headLogits(ctx, *fp32, pooled);
    }
    // Both engines emit at the same point, so a Capture run on the
    // FP32 session pairs with a Compare run on the quantized one.
    probeActivation(ctx.obs, "logits", logits);
    return logits;
}

Tensor
InferenceSession::spanLogits(std::span<const std::int32_t> tokens) const
{
    fatalIf(!fp32, "spanLogits needs the FP32 engine");
    recordKernelTier(ctx);
    Tensor hidden = gobo::encodeSequence(ctx, *fp32, tokens);
    return gobo::spanLogits(ctx, *fp32, hidden);
}

ExecContext
InferenceSession::innerContext() const
{
    // Batch-level and intra-sequence parallelism compose: a
    // per-sequence loop submitted from inside a batch slot lands on
    // the submitting worker's own deque, where threads that finished
    // their (possibly shorter) sequences steal it. The historical
    // serial degrade once batch_size >= threads left threads idle for
    // the whole tail of a skewed batch; with stealing, handing the
    // unchanged context down is both the simple and the fast choice.
    // Either composition is bit-identical — scheduling never touches
    // reduction order — so this is purely a scheduling decision. The
    // observer and kernel tier ride along with the context.
    return ctx;
}

std::vector<Tensor>
InferenceSession::encodeBatch(const TokenBatch &batch) const
{
    BatchProbe probe(ctx.obs, "session.encodeBatch");
    recordKernelTier(ctx);
    std::vector<Tensor> out(batch.size());
    ExecContext inner = innerContext();
    ctx.parallelFor(batch.size(), [&](std::size_t i) {
        SequenceProbe seq_probe(inner.obs, batch[i].size());
        ScopedSpan span(inner.obs, "sequence", i);
        out[i] = fp32 ? gobo::encodeSequence(inner, *fp32, batch[i])
                      : quantized->encode(inner, batch[i]);
    });
    return out;
}

std::vector<Tensor>
InferenceSession::headLogitsBatch(const TokenBatch &batch) const
{
    return headLogitsBatch(batch, {});
}

std::vector<Tensor>
InferenceSession::headLogitsBatch(
    const TokenBatch &batch,
    std::span<const std::uint64_t> requestIds) const
{
    fatalIf(!requestIds.empty() && requestIds.size() != batch.size(),
            "headLogitsBatch: ", requestIds.size(), " request ids for ",
            batch.size(), " sequences");
    BatchProbe probe(ctx.obs, "session.headLogitsBatch");
    recordKernelTier(ctx);
    std::vector<Tensor> out(batch.size());
    ExecContext inner = innerContext();
    ctx.parallelFor(batch.size(), [&](std::size_t i) {
        SequenceProbe seq_probe(inner.obs, batch[i].size());
        ScopedSpan span(inner.obs, "sequence", i);
        if (!requestIds.empty())
            span.arg("request", requestIds[i]);
        if (quantized) {
            out[i] = quantized->classify(inner, batch[i]);
        } else {
            Tensor hidden = gobo::encodeSequence(inner, *fp32, batch[i]);
            Tensor pooled = pool(inner, *fp32, hidden);
            out[i] = gobo::headLogits(inner, *fp32, pooled);
        }
    });
    return out;
}

} // namespace gobo
