#include "exec/session.hh"

#include "nn/encoder.hh"
#include "util/logging.hh"

namespace gobo {

InferenceSession::InferenceSession(BertModel model, ExecContext c)
    : ctx(c), fp32(std::move(model))
{
}

InferenceSession::InferenceSession(QuantizedBertModel model,
                                   ExecContext c)
    : ctx(c), quantized(std::move(model))
{
}

const BertModel &
InferenceSession::model() const
{
    fatalIf(!fp32, "InferenceSession::model() on a compressed session");
    return *fp32;
}

WeightFormat
InferenceSession::weightFormat() const
{
    return quantized ? quantized->format() : WeightFormat::Unpacked;
}

std::size_t
InferenceSession::residentWeightBytes() const
{
    if (quantized)
        return quantized->residentWeightBytes();
    return fp32->config().fcWeightParams() * sizeof(float);
}

const ModelConfig &
InferenceSession::config() const
{
    return fp32 ? fp32->config() : quantized->config();
}

Tensor
InferenceSession::encodeSequence(
    std::span<const std::int32_t> tokens) const
{
    return fp32 ? gobo::encodeSequence(ctx, *fp32, tokens)
                : quantized->encode(ctx, tokens);
}

Tensor
InferenceSession::headLogits(std::span<const std::int32_t> tokens) const
{
    if (quantized)
        return quantized->classify(ctx, tokens);
    Tensor hidden = gobo::encodeSequence(ctx, *fp32, tokens);
    Tensor pooled = pool(*fp32, hidden);
    return gobo::headLogits(*fp32, pooled);
}

Tensor
InferenceSession::spanLogits(std::span<const std::int32_t> tokens) const
{
    fatalIf(!fp32, "spanLogits needs the FP32 engine");
    Tensor hidden = gobo::encodeSequence(ctx, *fp32, tokens);
    return gobo::spanLogits(*fp32, hidden);
}

ExecContext
InferenceSession::innerContext(std::size_t batch_size) const
{
    // Once the batch dimension can keep every thread busy, per-
    // sequence forwards run serially inside their slot; a nested
    // parallel dispatch would only add scheduling overhead (the pool
    // runs reentrant submissions inline anyway). Either composition
    // is bit-identical, so this is purely a scheduling choice.
    if (ctx.isParallel() && batch_size >= ctx.threads)
        return ExecContext::serial();
    return ctx;
}

std::vector<Tensor>
InferenceSession::encodeBatch(const TokenBatch &batch) const
{
    std::vector<Tensor> out(batch.size());
    ExecContext inner = innerContext(batch.size());
    ctx.parallelFor(batch.size(), [&](std::size_t i) {
        out[i] = fp32 ? gobo::encodeSequence(inner, *fp32, batch[i])
                      : quantized->encode(inner, batch[i]);
    });
    return out;
}

std::vector<Tensor>
InferenceSession::headLogitsBatch(const TokenBatch &batch) const
{
    std::vector<Tensor> out(batch.size());
    ExecContext inner = innerContext(batch.size());
    ctx.parallelFor(batch.size(), [&](std::size_t i) {
        if (quantized) {
            out[i] = quantized->classify(inner, batch[i]);
        } else {
            Tensor hidden = gobo::encodeSequence(inner, *fp32, batch[i]);
            Tensor pooled = pool(*fp32, hidden);
            out[i] = gobo::headLogits(*fp32, pooled);
        }
    });
    return out;
}

} // namespace gobo
