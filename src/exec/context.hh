/**
 * @file
 * Execution context threaded through the forward-pass stack.
 *
 * Every compute routine that can parallelize (tensor ops, the encoder,
 * compressed-domain execution, the batched InferenceSession) takes an
 * ExecContext and dispatches through it: Backend::Serial runs inline,
 * Backend::Parallel drains row blocks on the shared ThreadPool. The
 * two backends are bit-identical by construction — the context only
 * decides which thread computes a slot, never the reduction order
 * inside it — so tests can assert exact equality between them.
 */

#ifndef GOBO_EXEC_CONTEXT_HH
#define GOBO_EXEC_CONTEXT_HH

#include <algorithm>
#include <cstddef>
#include <functional>

#include "exec/threadpool.hh"

namespace gobo {

class Observer;   // obs/observer.hh; contexts only carry the pointer.
struct KernelSet; // kernels/kernels.hh; contexts only carry the pointer.

/** How compute loops execute. */
enum class Backend
{
    Serial,   ///< inline on the calling thread.
    Parallel, ///< row blocks drained on the thread pool.
};

/** Printable backend name. */
inline const char *
backendName(Backend b)
{
    return b == Backend::Serial ? "serial" : "parallel";
}

/**
 * How a compressed-domain engine holds its weight indexes at runtime.
 *
 * Unpacked trades memory for decode-free access: every B-bit index is
 * widened to one byte at load time, so a 3-bit model streams ~2.7x the
 * bytes its container occupies. Packed keeps the B-bit stream resident
 * — the paper's memory-traffic story — and decodes rows on the fly
 * inside the bucket-accumulation kernel. Both formats are bit-identical
 * on outputs; the choice only moves bytes.
 */
enum class WeightFormat
{
    Unpacked, ///< one byte per weight index, decoded at load time.
    Packed,   ///< the B-bit index stream stays resident.
};

/** Printable weight-format name. */
inline const char *
weightFormatName(WeightFormat f)
{
    return f == WeightFormat::Unpacked ? "unpacked" : "packed";
}

/**
 * The execution environment a forward pass runs in: a backend, a
 * parallelism budget, and the pool that provides the workers. Cheap
 * to copy; default-constructed it is the serial backend, so existing
 * single-threaded call sites keep their exact behaviour.
 */
struct ExecContext
{
    Backend backend = Backend::Serial;
    /** Max threads a loop may use (including the calling thread). */
    std::size_t threads = 1;
    /** Pool to draw workers from; nullptr means ThreadPool::shared(). */
    ThreadPool *pool = nullptr;
    /**
     * Weight format compressed-domain engines built under this context
     * should use. Construction-time preference: call sites that
     * quantize a model for this context (CLI, benches, sessions) read
     * it when building the QuantizedBertModel; it does not reformat an
     * engine that already exists.
     */
    WeightFormat weightFormat = WeightFormat::Unpacked;
    /**
     * Observability sink for spans and counters (obs/observer.hh);
     * null (the default) disables instrumentation at the cost of one
     * branch per site. Instrumentation never feeds back into compute
     * or scheduling, so attaching an observer cannot change results.
     */
    Observer *obs = nullptr;
    /**
     * Kernel tier compute loops dispatch through (kernels/kernels.hh).
     * Null (the default) means the process-wide active tier — the best
     * tier cpuid approves, or whatever GOBO_KERNEL pins. Tests and
     * tools set it to compare tiers in one process; every op resolves
     * it with resolveKernels() so serial sub-contexts inherit the
     * caller's tier.
     */
    const KernelSet *kernels = nullptr;

    /**
     * Minimum estimated flops a loop must carry before it is worth
     * waking workers: below this, wake/sync latency dominates the
     * compute (the committed baseline showed fp32 *losing* throughput
     * in parallel on small matmuls). Loops submitted through the
     * cost-hinted parallelFor/parallelRows overloads with a total
     * estimate under the grain run inline on the pool's serial path,
     * so they show up in PoolTelemetry::inlineRuns.
     */
    static constexpr std::size_t kMinParallelFlops =
        std::size_t{1} << 18;

    /**
     * Per-context grain override for the cost-hinted overloads; 0 (the
     * default) means kMinParallelFlops. Tests lower it to force tiny
     * loops onto the pool, benches may raise it on slow-wake machines.
     */
    std::size_t grainFlops = 0;

    /** The serial context (the default). */
    static ExecContext
    serial()
    {
        return {};
    }

    /**
     * A parallel context with `threads` workers (0 means
     * defaultThreads(), which honours GOBO_THREADS).
     */
    static ExecContext
    parallel(std::size_t threads = 0)
    {
        ExecContext ctx;
        ctx.backend = Backend::Parallel;
        ctx.threads = threads == 0 ? defaultThreads() : threads;
        if (ctx.threads <= 1)
            ctx.backend = Backend::Serial;
        return ctx;
    }

    bool
    isParallel() const
    {
        return backend == Backend::Parallel && threads > 1;
    }

    /**
     * Run fn(i) for i in [0, count): inline when serial, on the pool
     * when parallel. fn must only write index-addressed state.
     */
    void
    parallelFor(std::size_t count,
                const std::function<void(std::size_t)> &fn) const
    {
        if (!isParallel() || count <= 1) {
            for (std::size_t i = 0; i < count; ++i)
                fn(i);
            return;
        }
        (pool ? *pool : ThreadPool::shared()).run(count, threads, fn);
    }

    /**
     * Cost-hinted parallelFor: `costPerItem` is the caller's estimate
     * of flops (or equivalent work) per index. When the whole loop is
     * under the grain it is routed through the pool's inline path —
     * still counted, never parallelized — so small ops stop paying
     * wake/sync overhead.
     */
    void
    parallelFor(std::size_t count, std::size_t costPerItem,
                const std::function<void(std::size_t)> &fn) const
    {
        if (!isParallel() || count <= 1) {
            for (std::size_t i = 0; i < count; ++i)
                fn(i);
            return;
        }
        std::size_t grain =
            grainFlops != 0 ? grainFlops : kMinParallelFlops;
        std::size_t threads_eff =
            count * costPerItem < grain ? 1 : threads;
        (pool ? *pool : ThreadPool::shared())
            .run(count, threads_eff, fn);
    }

    /**
     * Run fn(begin, end) over contiguous blocks of [0, rows). Blocks
     * are sized so each participating thread gets a handful, bounding
     * scheduling overhead while keeping the tail balanced; the block
     * decomposition does not affect results because fn computes each
     * row independently.
     */
    void
    parallelRows(std::size_t rows,
                 const std::function<void(std::size_t, std::size_t)>
                     &fn) const
    {
        if (!isParallel() || rows <= 1) {
            if (rows > 0)
                fn(0, rows);
            return;
        }
        std::size_t blocks = std::min(rows, threads * 4);
        std::size_t block = (rows + blocks - 1) / blocks;
        parallelFor(blocks, [&](std::size_t b) {
            std::size_t begin = b * block;
            std::size_t end = std::min(begin + block, rows);
            if (begin < end)
                fn(begin, end);
        });
    }

    /**
     * Cost-hinted parallelRows: `costPerRow` estimates flops per row.
     * Under-grain loops run as a single inline block on the pool's
     * serial path (counted in inlineRuns); everything else behaves
     * like parallelRows above.
     */
    void
    parallelRows(std::size_t rows, std::size_t costPerRow,
                 const std::function<void(std::size_t, std::size_t)>
                     &fn) const
    {
        if (!isParallel() || rows <= 1) {
            if (rows > 0)
                fn(0, rows);
            return;
        }
        std::size_t grain =
            grainFlops != 0 ? grainFlops : kMinParallelFlops;
        if (rows * costPerRow < grain) {
            (pool ? *pool : ThreadPool::shared())
                .run(1, 1, [&](std::size_t) { fn(0, rows); });
            return;
        }
        parallelRows(rows, fn);
    }
};

} // namespace gobo

#endif // GOBO_EXEC_CONTEXT_HH
