#include "exec/threadpool.hh"

#include <cstdlib>

namespace gobo {

namespace {

/**
 * Set while a thread is draining a job, so a nested run() from inside
 * fn falls back to inline execution instead of waiting on the pool it
 * is itself a worker of.
 */
thread_local bool inside_pool = false;

} // namespace

std::size_t
defaultThreads()
{
    if (const char *env = std::getenv("GOBO_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t n_workers)
{
    if (n_workers == 0)
        n_workers = defaultThreads();
    stats = std::make_unique<ParticipantStats[]>(n_workers + 1);
    workers.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t)
        workers.emplace_back([this, t] { workerLoop(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    // Join here, before any member is destroyed: a worker may still be
    // inside done.notify_one() after finishing its last job, and the
    // condition variables must outlive that call.
    workers.clear();
}

void
ThreadPool::drain(const std::function<void(std::size_t)> &fn,
                  std::size_t count, std::atomic<std::uint64_t> &items)
{
    inside_pool = true;
    std::uint64_t claimed = 0;
    for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            break;
        ++claimed;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard lock(mutex);
            if (!error)
                error = std::current_exception();
            // Stop issuing new indexes; in-flight calls finish.
            next.store(count, std::memory_order_relaxed);
        }
    }
    // One relaxed add per drain, not per item — telemetry must not
    // put a shared cacheline in the claim loop.
    items.fetch_add(claimed, std::memory_order_relaxed);
    inside_pool = false;
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock lock(mutex);
            wake.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            // Late to a job that is already fully claimed or out of
            // slots: go back to sleep until the next generation.
            if (jobSlots == 0
                || next.load(std::memory_order_relaxed) >= jobCount)
                continue;
            --jobSlots;
            ++active;
            fn = jobFn;
            count = jobCount;
        }
        stats[worker].wakes.fetch_add(1, std::memory_order_relaxed);
        drain(*fn, count, stats[worker].items);
        {
            std::lock_guard lock(mutex);
            --active;
        }
        done.notify_one();
    }
}

void
ThreadPool::run(std::size_t count, std::size_t parallelism,
                const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    // Inline paths: explicit serial request, trivial ranges, or a
    // nested call from a thread already draining a job.
    if (parallelism <= 1 || count <= 1 || workers.empty()
        || inside_pool) {
        statInline.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::lock_guard submit(submitMutex);
    statJobs.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard lock(mutex);
        jobFn = &fn;
        jobCount = count;
        // The submitter is one participant; cap helpers by the
        // remaining work and the requested parallelism.
        jobSlots = std::min({workers.size(), count - 1,
                             parallelism - 1});
        next.store(0, std::memory_order_relaxed);
        error = nullptr;
        ++generation;
    }
    wake.notify_all();

    drain(fn, count, stats[workers.size()].items);

    std::unique_lock lock(mutex);
    // No worker can join after this point: every index is claimed, so
    // the jobSlots/next check in workerLoop turns late arrivals away.
    done.wait(lock, [&] { return active == 0; });
    jobFn = nullptr;
    jobSlots = 0;
    if (error)
        std::rethrow_exception(error);
}

PoolTelemetry
ThreadPool::telemetry() const
{
    PoolTelemetry t;
    t.jobs = statJobs.load(std::memory_order_relaxed);
    t.inlineRuns = statInline.load(std::memory_order_relaxed);
    t.workerItems.reserve(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w) {
        std::uint64_t items =
            stats[w].items.load(std::memory_order_relaxed);
        t.workerItems.push_back(items);
        t.itemsDrained += items;
        t.wakes += stats[w].wakes.load(std::memory_order_relaxed);
    }
    // The submitter slot contributes drained items but no wakes.
    t.itemsDrained +=
        stats[workers.size()].items.load(std::memory_order_relaxed);
    return t;
}

ThreadPool &
ThreadPool::shared()
{
    // The submitting thread always participates, so the pool only
    // needs defaultThreads() - 1 helpers to saturate the machine.
    static ThreadPool pool(defaultThreads() > 1 ? defaultThreads() - 1
                                                : 1);
    return pool;
}

} // namespace gobo
