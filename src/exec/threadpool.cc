#include "exec/threadpool.hh"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace gobo {

namespace {

/** The calling thread's OS tid (what perf_event_open monitors by);
 * 0 where the platform has no such notion. */
long
currentOsTid()
{
#ifdef __linux__
    return static_cast<long>(syscall(SYS_gettid));
#else
    return 0;
#endif
}

/**
 * Owner-side chunking: each pop takes 1/4 of the newest task's
 * remaining range (at least one index), so early chunks are big and
 * cheap while the tail self-schedules finely without a cost model.
 */
constexpr std::size_t kOwnerChunkDiv = 4;

/**
 * Which pool (if any) the current thread is draining, and its slot in
 * that pool's queue array. Workers set these once for their lifetime;
 * the top-level submitter sets them for the duration of its drain.
 * They route a nested run() to the right deque, and turn a run()
 * against a *different* pool into an inline call (a blocking cross-
 * pool submission from inside a worker could form a cycle).
 */
thread_local ThreadPool *tls_pool = nullptr;
thread_local std::size_t tls_slot = SIZE_MAX;

} // namespace

std::optional<std::size_t>
parseThreadsSpec(const char *text)
{
    auto v = parseUint64Spec(text);
    if (!v || *v == 0 || *v > 65536)
        return std::nullopt;
    return static_cast<std::size_t>(*v);
}

std::optional<std::uint64_t>
parseUint64Spec(const char *text)
{
    if (text == nullptr || *text == '\0')
        return std::nullopt;
    // from_chars is the strict parser: no whitespace/sign skipping, and
    // overflow is a reported error instead of a saturating wrap.
    const char *last = text + std::strlen(text);
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(text, last, value, 10);
    if (ec != std::errc{} || ptr != last)
        return std::nullopt;
    return value;
}

std::size_t
defaultThreads()
{
    // Parsed once and cached: innerContext() and friends call this on
    // the per-batch path, and getenv+strtol per call was measurable.
    static const std::size_t cached = [] {
        if (const char *env = std::getenv("GOBO_THREADS")) {
            if (auto v = parseThreadsSpec(env))
                return *v;
            std::cerr << "gobo: ignoring invalid GOBO_THREADS='" << env
                      << "' (want a positive integer <= 65536); using "
                         "hardware concurrency\n";
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? std::size_t{1} : std::size_t{hw};
    }();
    return cached;
}

ThreadPool::ThreadPool(std::size_t n_workers)
{
    if (n_workers == 0)
        n_workers = defaultThreads();
    queues = std::make_unique<WorkQueue[]>(n_workers + 1);
    stats = std::make_unique<ParticipantStats[]>(n_workers + 1);
    workerTids = std::make_unique<std::atomic<long>[]>(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t)
        workerTids[t].store(0, std::memory_order_relaxed);
    workers.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t)
        workers.emplace_back([this, t] { workerLoop(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    // Join here, before any member is destroyed: a worker may still be
    // inside done.notify_all() after finishing its last chunk, and the
    // condition variables must outlive that call.
    workers.clear();
}

bool
ThreadPool::popChunk(std::size_t slot, Task &chunk)
{
    WorkQueue &q = queues[slot];
    std::lock_guard lock(q.m);
    if (q.tasks.empty())
        return false;
    Task &t = q.tasks.back();
    std::size_t n = t.end - t.begin;
    std::size_t take = std::max<std::size_t>(1, n / kOwnerChunkDiv);
    chunk = {t.job, t.begin, t.begin + take};
    t.begin += take;
    if (t.begin == t.end)
        q.tasks.pop_back();
    return true;
}

bool
ThreadPool::stealChunk(std::size_t slot, Task &chunk)
{
    std::size_t slots = workers.size() + 1;
    for (std::size_t off = 1; off < slots; ++off) {
        std::size_t v = (slot + off) % slots;
        Task stolen;
        {
            std::lock_guard lock(queues[v].m);
            auto &tasks = queues[v].tasks;
            if (tasks.empty())
                continue;
            // Split the oldest task: its owner is carving chunks off
            // the newest, so the front is the least-contended range.
            Task &t = tasks.front();
            std::size_t n = t.end - t.begin;
            if (n <= 1) {
                stolen = t;
                tasks.erase(tasks.begin());
            } else {
                std::size_t mid = t.begin + n / 2;
                stolen = {t.job, mid, t.end};
                t.end = mid;
            }
        }
        stats[slot].steals.fetch_add(1, std::memory_order_relaxed);
        // Re-queue the stolen range on our own deque so it stays
        // stealable, then self-schedule off it like any other task.
        {
            std::lock_guard lock(queues[slot].m);
            queues[slot].tasks.push_back(stolen);
        }
        return popChunk(slot, chunk);
    }
    return false;
}

void
ThreadPool::executeChunk(const Task &chunk, std::size_t slot)
{
    Job &job = *chunk.job;
    const auto &fn = *job.fn;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        if (job.cancelled.load(std::memory_order_relaxed))
            continue; // count as done so the job still completes.
        try {
            fn(i);
        } catch (...) {
            std::lock_guard lock(mutex);
            if (!job.error)
                job.error = std::current_exception();
            job.cancelled.store(true, std::memory_order_relaxed);
        }
    }
    std::size_t n = chunk.end - chunk.begin;
    // One relaxed add per chunk, not per item — telemetry must not
    // put a shared cacheline in the execution loop.
    stats[slot].items.fetch_add(n, std::memory_order_relaxed);
    if (job.pending.fetch_sub(n) == n) {
        // Last chunk of the job. Notify under the mutex so a submitter
        // between its predicate check and its wait cannot miss this.
        std::lock_guard lock(mutex);
        done.notify_all();
    }
}

void
ThreadPool::drainJob(Job &job, std::size_t slot)
{
    while (job.pending.load() != 0) {
        Task chunk;
        if (popChunk(slot, chunk) || stealChunk(slot, chunk)) {
            executeChunk(chunk, slot);
            continue;
        }
        // Nothing claimable anywhere: the job's remaining indexes are
        // in flight on other threads. Block until a job completes or
        // new work appears (an in-flight index may spawn a nested job
        // whose tasks we can help drain).
        std::unique_lock lock(mutex);
        if (job.pending.load() == 0)
            break;
        std::uint64_t seen = wakeSignal;
        done.wait(lock, [&] {
            return job.pending.load() == 0 || wakeSignal != seen;
        });
    }
}

void
ThreadPool::rethrowJobError(Job &job)
{
    std::exception_ptr err;
    {
        std::lock_guard lock(mutex);
        err = job.error;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    tls_pool = this;
    tls_slot = worker;
    workerTids[worker].store(currentOsTid(), std::memory_order_release);
    std::uint64_t seen_signal = 0, joined_gen = 0;
    for (;;) {
        {
            std::unique_lock lock(mutex);
            ++sleepers;
            wake.wait(lock, [&] {
                return stopping || wakeSignal != seen_signal;
            });
            --sleepers;
            seen_signal = wakeSignal;
            if (stopping)
                return;
            // Ticket check: join each top-level job at most once, and
            // only while its parallelism budget has room. A wake for a
            // nested job inside a generation we already joined needs
            // no new ticket.
            if (joined_gen != topGeneration) {
                if (helperTickets == 0)
                    continue;
                --helperTickets;
                joined_gen = topGeneration;
            }
        }
        stats[worker].wakes.fetch_add(1, std::memory_order_relaxed);
        for (;;) {
            Task chunk;
            if (popChunk(worker, chunk) || stealChunk(worker, chunk))
                executeChunk(chunk, worker);
            else
                break;
        }
    }
}

void
ThreadPool::nestedRun(std::size_t count,
                      const std::function<void(std::size_t)> &fn)
{
    statNested.fetch_add(1, std::memory_order_relaxed);
    Job job;
    job.fn = &fn;
    job.pending.store(count, std::memory_order_relaxed);
    std::size_t slot = tls_slot;
    {
        std::lock_guard lock(queues[slot].m);
        queues[slot].tasks.push_back({&job, 0, count});
    }
    {
        // Bump the signal under the mutex so a worker between its
        // sleep-predicate check and its wait cannot miss it.
        std::lock_guard lock(mutex);
        ++wakeSignal;
    }
    wake.notify_all();
    done.notify_all(); // blocked submitters may steal in and help.
    drainJob(job, slot);
    rethrowJobError(job);
}

void
ThreadPool::run(std::size_t count, std::size_t parallelism,
                const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    // Inline paths: explicit serial request (including loops the
    // caller judged under-grain) and trivial ranges. Also a submission
    // from inside a *different* pool's worker: a blocking cross-pool
    // handoff could form a cycle, so it degrades to inline like the
    // historical nested behaviour.
    bool foreign = tls_pool != nullptr && tls_pool != this;
    if (parallelism <= 1 || count <= 1 || workers.empty() || foreign) {
        statInline.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    if (tls_pool == this) {
        // Nested submission: share the range onto this participant's
        // deque so idle workers steal it, instead of running inline.
        // Parallelism is bounded by the enclosing job's ticket cap.
        nestedRun(count, fn);
        return;
    }

    std::lock_guard submit(submitMutex);
    statJobs.fetch_add(1, std::memory_order_relaxed);
    Job job;
    job.fn = &fn;
    job.pending.store(count, std::memory_order_relaxed);

    std::size_t sub_slot = workers.size();
    std::size_t parts = std::min({workers.size() + 1, parallelism,
                                  count});
    // Scatter near-equal contiguous ranges: the submitter's own deque
    // gets the first, worker deques the rest. Which workers actually
    // join is the scheduler's business — any participant steals from
    // any deque, so a sleeping owner never strands its range.
    std::size_t base = count / parts, rem = count % parts;
    std::size_t begin = 0;
    for (std::size_t p = 0; p < parts; ++p) {
        std::size_t len = base + (p < rem ? 1 : 0);
        std::size_t slot = p == 0 ? sub_slot : p - 1;
        {
            std::lock_guard lock(queues[slot].m);
            queues[slot].tasks.push_back({&job, begin, begin + len});
        }
        begin += len;
    }
    {
        std::lock_guard lock(mutex);
        ++topGeneration;
        helperTickets = std::min({workers.size(), parallelism - 1,
                                  count - 1});
        ++wakeSignal;
    }
    wake.notify_all();

    tls_pool = this;
    tls_slot = sub_slot;
    drainJob(job, sub_slot);
    tls_pool = nullptr;
    tls_slot = SIZE_MAX;
    // pending == 0 here means every index executed and no thread holds
    // a Task pointing at `job`, so the stack frame may safely die.
    rethrowJobError(job);
}

PoolTelemetry
ThreadPool::telemetry() const
{
    PoolTelemetry t;
    t.jobs = statJobs.load(std::memory_order_relaxed);
    t.inlineRuns = statInline.load(std::memory_order_relaxed);
    t.nestedJobs = statNested.load(std::memory_order_relaxed);
    t.workerItems.reserve(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w) {
        std::uint64_t items =
            stats[w].items.load(std::memory_order_relaxed);
        t.workerItems.push_back(items);
        t.itemsDrained += items;
        t.wakes += stats[w].wakes.load(std::memory_order_relaxed);
        t.steals += stats[w].steals.load(std::memory_order_relaxed);
    }
    // The submitter slot contributes items and steals but no wakes.
    t.itemsDrained +=
        stats[workers.size()].items.load(std::memory_order_relaxed);
    t.steals +=
        stats[workers.size()].steals.load(std::memory_order_relaxed);
    return t;
}

std::vector<long>
ThreadPool::workerThreadIds() const
{
    std::vector<long> tids(workers.size(), 0);
    for (std::size_t w = 0; w < workers.size(); ++w) {
        // Publication races only construction: each worker stores its
        // tid as the first action of workerLoop, so a short bounded
        // wait covers a caller that attaches counters immediately
        // after spawning the pool. 0 after the wait means a platform
        // without tids — consumers skip those slots.
        for (int spin = 0; spin < 1000; ++spin) {
            long tid = workerTids[w].load(std::memory_order_acquire);
            if (tid != 0) {
                tids[w] = tid;
                break;
            }
            std::this_thread::yield();
        }
    }
    return tids;
}

ThreadPool &
ThreadPool::shared()
{
    // The submitting thread always participates, so the pool only
    // needs defaultThreads() - 1 helpers to saturate the machine.
    static ThreadPool pool(defaultThreads() > 1 ? defaultThreads() - 1
                                                : 1);
    return pool;
}

} // namespace gobo
