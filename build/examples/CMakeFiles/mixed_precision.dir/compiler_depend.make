# Empty compiler generated dependencies file for mixed_precision.
# This may be replaced when dependencies are built.
