file(REMOVE_RECURSE
  "CMakeFiles/compress_model.dir/compress_model.cpp.o"
  "CMakeFiles/compress_model.dir/compress_model.cpp.o.d"
  "compress_model"
  "compress_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
