file(REMOVE_RECURSE
  "CMakeFiles/gobo_cli.dir/gobo_cli.cc.o"
  "CMakeFiles/gobo_cli.dir/gobo_cli.cc.o.d"
  "gobo"
  "gobo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
