# Empty compiler generated dependencies file for gobo_cli.
# This may be replaced when dependencies are built.
