# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bitstream[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_container[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_loaders[1]_include.cmake")
include("/root/repo/build/tests/test_gaussian[1]_include.cmake")
include("/root/repo/build/tests/test_generate[1]_include.cmake")
include("/root/repo/build/tests/test_huffman[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_mixture[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_outliers[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_qexec[1]_include.cmake")
include("/root/repo/build/tests/test_qtensor[1]_include.cmake")
include("/root/repo/build/tests/test_quantizer[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_task[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
