# Empty compiler generated dependencies file for test_qtensor.
# This may be replaced when dependencies are built.
