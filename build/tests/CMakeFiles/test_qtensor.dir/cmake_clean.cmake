file(REMOVE_RECURSE
  "CMakeFiles/test_qtensor.dir/test_qtensor.cc.o"
  "CMakeFiles/test_qtensor.dir/test_qtensor.cc.o.d"
  "test_qtensor"
  "test_qtensor.pdb"
  "test_qtensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qtensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
