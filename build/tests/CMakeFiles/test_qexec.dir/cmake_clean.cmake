file(REMOVE_RECURSE
  "CMakeFiles/test_qexec.dir/test_qexec.cc.o"
  "CMakeFiles/test_qexec.dir/test_qexec.cc.o.d"
  "test_qexec"
  "test_qexec.pdb"
  "test_qexec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
