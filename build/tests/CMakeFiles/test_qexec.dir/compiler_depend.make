# Empty compiler generated dependencies file for test_qexec.
# This may be replaced when dependencies are built.
