file(REMOVE_RECURSE
  "CMakeFiles/test_outliers.dir/test_outliers.cc.o"
  "CMakeFiles/test_outliers.dir/test_outliers.cc.o.d"
  "test_outliers"
  "test_outliers.pdb"
  "test_outliers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
