# Empty dependencies file for test_fuzz_loaders.
# This may be replaced when dependencies are built.
