file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_loaders.dir/test_fuzz_loaders.cc.o"
  "CMakeFiles/test_fuzz_loaders.dir/test_fuzz_loaders.cc.o.d"
  "test_fuzz_loaders"
  "test_fuzz_loaders.pdb"
  "test_fuzz_loaders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_loaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
