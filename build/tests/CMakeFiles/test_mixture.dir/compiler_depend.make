# Empty compiler generated dependencies file for test_mixture.
# This may be replaced when dependencies are built.
