file(REMOVE_RECURSE
  "CMakeFiles/gobo_baselines.dir/q8bert.cc.o"
  "CMakeFiles/gobo_baselines.dir/q8bert.cc.o.d"
  "CMakeFiles/gobo_baselines.dir/qbert.cc.o"
  "CMakeFiles/gobo_baselines.dir/qbert.cc.o.d"
  "libgobo_baselines.a"
  "libgobo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
