# Empty dependencies file for gobo_baselines.
# This may be replaced when dependencies are built.
