file(REMOVE_RECURSE
  "libgobo_baselines.a"
)
