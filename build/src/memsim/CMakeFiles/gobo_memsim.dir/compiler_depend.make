# Empty compiler generated dependencies file for gobo_memsim.
# This may be replaced when dependencies are built.
