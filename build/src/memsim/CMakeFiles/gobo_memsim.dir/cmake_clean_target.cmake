file(REMOVE_RECURSE
  "libgobo_memsim.a"
)
