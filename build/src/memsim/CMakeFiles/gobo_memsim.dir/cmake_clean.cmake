file(REMOVE_RECURSE
  "CMakeFiles/gobo_memsim.dir/memsim.cc.o"
  "CMakeFiles/gobo_memsim.dir/memsim.cc.o.d"
  "libgobo_memsim.a"
  "libgobo_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
