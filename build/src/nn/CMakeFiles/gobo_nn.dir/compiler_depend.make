# Empty compiler generated dependencies file for gobo_nn.
# This may be replaced when dependencies are built.
