file(REMOVE_RECURSE
  "libgobo_nn.a"
)
