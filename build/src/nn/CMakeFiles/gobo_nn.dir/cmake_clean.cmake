file(REMOVE_RECURSE
  "CMakeFiles/gobo_nn.dir/encoder.cc.o"
  "CMakeFiles/gobo_nn.dir/encoder.cc.o.d"
  "libgobo_nn.a"
  "libgobo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
