file(REMOVE_RECURSE
  "libgobo_core.a"
)
