file(REMOVE_RECURSE
  "CMakeFiles/gobo_core.dir/cluster.cc.o"
  "CMakeFiles/gobo_core.dir/cluster.cc.o.d"
  "CMakeFiles/gobo_core.dir/container.cc.o"
  "CMakeFiles/gobo_core.dir/container.cc.o.d"
  "CMakeFiles/gobo_core.dir/gaussian.cc.o"
  "CMakeFiles/gobo_core.dir/gaussian.cc.o.d"
  "CMakeFiles/gobo_core.dir/mixture.cc.o"
  "CMakeFiles/gobo_core.dir/mixture.cc.o.d"
  "CMakeFiles/gobo_core.dir/outliers.cc.o"
  "CMakeFiles/gobo_core.dir/outliers.cc.o.d"
  "CMakeFiles/gobo_core.dir/qexec.cc.o"
  "CMakeFiles/gobo_core.dir/qexec.cc.o.d"
  "CMakeFiles/gobo_core.dir/qtensor.cc.o"
  "CMakeFiles/gobo_core.dir/qtensor.cc.o.d"
  "CMakeFiles/gobo_core.dir/quantizer.cc.o"
  "CMakeFiles/gobo_core.dir/quantizer.cc.o.d"
  "libgobo_core.a"
  "libgobo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
