
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/gobo_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/container.cc" "src/core/CMakeFiles/gobo_core.dir/container.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/container.cc.o.d"
  "/root/repo/src/core/gaussian.cc" "src/core/CMakeFiles/gobo_core.dir/gaussian.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/gaussian.cc.o.d"
  "/root/repo/src/core/mixture.cc" "src/core/CMakeFiles/gobo_core.dir/mixture.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/mixture.cc.o.d"
  "/root/repo/src/core/outliers.cc" "src/core/CMakeFiles/gobo_core.dir/outliers.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/outliers.cc.o.d"
  "/root/repo/src/core/qexec.cc" "src/core/CMakeFiles/gobo_core.dir/qexec.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/qexec.cc.o.d"
  "/root/repo/src/core/qtensor.cc" "src/core/CMakeFiles/gobo_core.dir/qtensor.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/qtensor.cc.o.d"
  "/root/repo/src/core/quantizer.cc" "src/core/CMakeFiles/gobo_core.dir/quantizer.cc.o" "gcc" "src/core/CMakeFiles/gobo_core.dir/quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/gobo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gobo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gobo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gobo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
