# Empty dependencies file for gobo_core.
# This may be replaced when dependencies are built.
