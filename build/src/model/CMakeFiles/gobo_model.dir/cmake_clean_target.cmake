file(REMOVE_RECURSE
  "libgobo_model.a"
)
