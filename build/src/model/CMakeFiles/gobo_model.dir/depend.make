# Empty dependencies file for gobo_model.
# This may be replaced when dependencies are built.
