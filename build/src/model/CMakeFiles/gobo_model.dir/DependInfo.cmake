
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/gobo_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/gobo_model.dir/config.cc.o.d"
  "/root/repo/src/model/footprint.cc" "src/model/CMakeFiles/gobo_model.dir/footprint.cc.o" "gcc" "src/model/CMakeFiles/gobo_model.dir/footprint.cc.o.d"
  "/root/repo/src/model/generate.cc" "src/model/CMakeFiles/gobo_model.dir/generate.cc.o" "gcc" "src/model/CMakeFiles/gobo_model.dir/generate.cc.o.d"
  "/root/repo/src/model/model.cc" "src/model/CMakeFiles/gobo_model.dir/model.cc.o" "gcc" "src/model/CMakeFiles/gobo_model.dir/model.cc.o.d"
  "/root/repo/src/model/serialize.cc" "src/model/CMakeFiles/gobo_model.dir/serialize.cc.o" "gcc" "src/model/CMakeFiles/gobo_model.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gobo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gobo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
