file(REMOVE_RECURSE
  "CMakeFiles/gobo_model.dir/config.cc.o"
  "CMakeFiles/gobo_model.dir/config.cc.o.d"
  "CMakeFiles/gobo_model.dir/footprint.cc.o"
  "CMakeFiles/gobo_model.dir/footprint.cc.o.d"
  "CMakeFiles/gobo_model.dir/generate.cc.o"
  "CMakeFiles/gobo_model.dir/generate.cc.o.d"
  "CMakeFiles/gobo_model.dir/model.cc.o"
  "CMakeFiles/gobo_model.dir/model.cc.o.d"
  "CMakeFiles/gobo_model.dir/serialize.cc.o"
  "CMakeFiles/gobo_model.dir/serialize.cc.o.d"
  "libgobo_model.a"
  "libgobo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
