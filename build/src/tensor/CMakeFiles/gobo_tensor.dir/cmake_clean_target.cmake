file(REMOVE_RECURSE
  "libgobo_tensor.a"
)
