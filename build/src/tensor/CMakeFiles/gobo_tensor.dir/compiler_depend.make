# Empty compiler generated dependencies file for gobo_tensor.
# This may be replaced when dependencies are built.
