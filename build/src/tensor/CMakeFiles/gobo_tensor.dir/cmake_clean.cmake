file(REMOVE_RECURSE
  "CMakeFiles/gobo_tensor.dir/ops.cc.o"
  "CMakeFiles/gobo_tensor.dir/ops.cc.o.d"
  "CMakeFiles/gobo_tensor.dir/tensor.cc.o"
  "CMakeFiles/gobo_tensor.dir/tensor.cc.o.d"
  "libgobo_tensor.a"
  "libgobo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
