file(REMOVE_RECURSE
  "CMakeFiles/gobo_task.dir/metrics.cc.o"
  "CMakeFiles/gobo_task.dir/metrics.cc.o.d"
  "CMakeFiles/gobo_task.dir/task.cc.o"
  "CMakeFiles/gobo_task.dir/task.cc.o.d"
  "libgobo_task.a"
  "libgobo_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
