# Empty dependencies file for gobo_task.
# This may be replaced when dependencies are built.
