file(REMOVE_RECURSE
  "libgobo_task.a"
)
