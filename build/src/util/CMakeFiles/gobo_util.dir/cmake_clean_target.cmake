file(REMOVE_RECURSE
  "libgobo_util.a"
)
