file(REMOVE_RECURSE
  "CMakeFiles/gobo_util.dir/bitstream.cc.o"
  "CMakeFiles/gobo_util.dir/bitstream.cc.o.d"
  "CMakeFiles/gobo_util.dir/huffman.cc.o"
  "CMakeFiles/gobo_util.dir/huffman.cc.o.d"
  "CMakeFiles/gobo_util.dir/rng.cc.o"
  "CMakeFiles/gobo_util.dir/rng.cc.o.d"
  "CMakeFiles/gobo_util.dir/stats.cc.o"
  "CMakeFiles/gobo_util.dir/stats.cc.o.d"
  "CMakeFiles/gobo_util.dir/table.cc.o"
  "CMakeFiles/gobo_util.dir/table.cc.o.d"
  "libgobo_util.a"
  "libgobo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gobo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
