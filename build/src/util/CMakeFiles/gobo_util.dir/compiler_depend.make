# Empty compiler generated dependencies file for gobo_util.
# This may be replaced when dependencies are built.
