
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_centroid_policies.cc" "bench/CMakeFiles/table4_centroid_policies.dir/table4_centroid_policies.cc.o" "gcc" "bench/CMakeFiles/table4_centroid_policies.dir/table4_centroid_policies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gobo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gobo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/gobo_task.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gobo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/gobo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gobo_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gobo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gobo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
