# Empty compiler generated dependencies file for table4_centroid_policies.
# This may be replaced when dependencies are built.
