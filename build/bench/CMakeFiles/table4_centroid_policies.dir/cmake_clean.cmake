file(REMOVE_RECURSE
  "CMakeFiles/table4_centroid_policies.dir/table4_centroid_policies.cc.o"
  "CMakeFiles/table4_centroid_policies.dir/table4_centroid_policies.cc.o.d"
  "table4_centroid_policies"
  "table4_centroid_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_centroid_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
