file(REMOVE_RECURSE
  "CMakeFiles/micro_quantizer.dir/micro_quantizer.cc.o"
  "CMakeFiles/micro_quantizer.dir/micro_quantizer.cc.o.d"
  "micro_quantizer"
  "micro_quantizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_quantizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
