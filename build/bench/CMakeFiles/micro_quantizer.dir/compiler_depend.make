# Empty compiler generated dependencies file for micro_quantizer.
# This may be replaced when dependencies are built.
