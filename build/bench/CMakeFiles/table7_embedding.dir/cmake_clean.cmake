file(REMOVE_RECURSE
  "CMakeFiles/table7_embedding.dir/table7_embedding.cc.o"
  "CMakeFiles/table7_embedding.dir/table7_embedding.cc.o.d"
  "table7_embedding"
  "table7_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
