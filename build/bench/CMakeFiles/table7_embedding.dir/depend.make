# Empty dependencies file for table7_embedding.
# This may be replaced when dependencies are built.
