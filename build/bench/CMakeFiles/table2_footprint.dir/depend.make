# Empty dependencies file for table2_footprint.
# This may be replaced when dependencies are built.
