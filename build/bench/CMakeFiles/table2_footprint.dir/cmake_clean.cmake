file(REMOVE_RECURSE
  "CMakeFiles/table2_footprint.dir/table2_footprint.cc.o"
  "CMakeFiles/table2_footprint.dir/table2_footprint.cc.o.d"
  "table2_footprint"
  "table2_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
