# Empty compiler generated dependencies file for table6_roberta.
# This may be replaced when dependencies are built.
