file(REMOVE_RECURSE
  "CMakeFiles/table6_roberta.dir/table6_roberta.cc.o"
  "CMakeFiles/table6_roberta.dir/table6_roberta.cc.o.d"
  "table6_roberta"
  "table6_roberta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_roberta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
