# Empty dependencies file for ablation_qexec.
# This may be replaced when dependencies are built.
