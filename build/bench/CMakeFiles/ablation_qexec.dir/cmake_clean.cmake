file(REMOVE_RECURSE
  "CMakeFiles/ablation_qexec.dir/ablation_qexec.cc.o"
  "CMakeFiles/ablation_qexec.dir/ablation_qexec.cc.o.d"
  "ablation_qexec"
  "ablation_qexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
