file(REMOVE_RECURSE
  "CMakeFiles/fig2_convergence.dir/fig2_convergence.cc.o"
  "CMakeFiles/fig2_convergence.dir/fig2_convergence.cc.o.d"
  "fig2_convergence"
  "fig2_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
