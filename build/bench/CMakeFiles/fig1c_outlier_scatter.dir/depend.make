# Empty dependencies file for fig1c_outlier_scatter.
# This may be replaced when dependencies are built.
