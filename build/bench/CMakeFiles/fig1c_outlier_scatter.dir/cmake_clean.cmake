file(REMOVE_RECURSE
  "CMakeFiles/fig1c_outlier_scatter.dir/fig1c_outlier_scatter.cc.o"
  "CMakeFiles/fig1c_outlier_scatter.dir/fig1c_outlier_scatter.cc.o.d"
  "fig1c_outlier_scatter"
  "fig1c_outlier_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_outlier_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
