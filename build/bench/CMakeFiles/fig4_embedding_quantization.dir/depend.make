# Empty dependencies file for fig4_embedding_quantization.
# This may be replaced when dependencies are built.
