file(REMOVE_RECURSE
  "CMakeFiles/fig4_embedding_quantization.dir/fig4_embedding_quantization.cc.o"
  "CMakeFiles/fig4_embedding_quantization.dir/fig4_embedding_quantization.cc.o.d"
  "fig4_embedding_quantization"
  "fig4_embedding_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_embedding_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
