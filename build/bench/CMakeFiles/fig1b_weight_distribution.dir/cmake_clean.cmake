file(REMOVE_RECURSE
  "CMakeFiles/fig1b_weight_distribution.dir/fig1b_weight_distribution.cc.o"
  "CMakeFiles/fig1b_weight_distribution.dir/fig1b_weight_distribution.cc.o.d"
  "fig1b_weight_distribution"
  "fig1b_weight_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_weight_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
