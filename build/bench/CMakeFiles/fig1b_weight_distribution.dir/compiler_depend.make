# Empty compiler generated dependencies file for fig1b_weight_distribution.
# This may be replaced when dependencies are built.
