file(REMOVE_RECURSE
  "CMakeFiles/fig3_outlier_fraction.dir/fig3_outlier_fraction.cc.o"
  "CMakeFiles/fig3_outlier_fraction.dir/fig3_outlier_fraction.cc.o.d"
  "fig3_outlier_fraction"
  "fig3_outlier_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_outlier_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
