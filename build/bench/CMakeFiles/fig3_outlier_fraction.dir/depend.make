# Empty dependencies file for fig3_outlier_fraction.
# This may be replaced when dependencies are built.
