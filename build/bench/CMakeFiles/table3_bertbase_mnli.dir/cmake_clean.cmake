file(REMOVE_RECURSE
  "CMakeFiles/table3_bertbase_mnli.dir/table3_bertbase_mnli.cc.o"
  "CMakeFiles/table3_bertbase_mnli.dir/table3_bertbase_mnli.cc.o.d"
  "table3_bertbase_mnli"
  "table3_bertbase_mnli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bertbase_mnli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
