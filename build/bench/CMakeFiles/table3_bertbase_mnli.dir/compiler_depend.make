# Empty compiler generated dependencies file for table3_bertbase_mnli.
# This may be replaced when dependencies are built.
