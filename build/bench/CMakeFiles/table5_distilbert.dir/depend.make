# Empty dependencies file for table5_distilbert.
# This may be replaced when dependencies are built.
