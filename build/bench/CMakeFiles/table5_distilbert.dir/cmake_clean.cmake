file(REMOVE_RECURSE
  "CMakeFiles/table5_distilbert.dir/table5_distilbert.cc.o"
  "CMakeFiles/table5_distilbert.dir/table5_distilbert.cc.o.d"
  "table5_distilbert"
  "table5_distilbert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_distilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
