file(REMOVE_RECURSE
  "CMakeFiles/ablation_memsim.dir/ablation_memsim.cc.o"
  "CMakeFiles/ablation_memsim.dir/ablation_memsim.cc.o.d"
  "ablation_memsim"
  "ablation_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
