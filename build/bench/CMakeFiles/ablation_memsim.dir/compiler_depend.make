# Empty compiler generated dependencies file for ablation_memsim.
# This may be replaced when dependencies are built.
