/**
 * @file
 * google-benchmark microbenchmarks of the quantizer itself: per-layer
 * quantization wall-clock across layer sizes and centroid policies,
 * outlier detection, packing, and decode. The paper's deployment
 * claim — quantizing BERT-Base takes ~10 minutes on one CPU core with
 * scikit-learn — is reproduced (and beaten by orders of magnitude,
 * thanks to the sorted prefix-sum clusterer) by the FullModel
 * benchmark.
 */

#include <benchmark/benchmark.h>

#include "core/cluster.hh"
#include "core/outliers.hh"
#include "core/quantizer.hh"
#include "model/generate.hh"

using namespace gobo;

namespace {

Tensor
layerWeights(std::size_t flat_index)
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    return generateFcWeight(cfg, specs[flat_index], 42);
}

void
BM_OutlierDetection(benchmark::State &state)
{
    Tensor w = layerWeights(4); // intermediate, 2.36M weights
    for (auto _ : state) {
        auto split = splitOutliers(w.flat(), -4.0);
        benchmark::DoNotOptimize(split.outlierValues.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_OutlierDetection)->Unit(benchmark::kMillisecond);

void
BM_ClusterPolicy(benchmark::State &state)
{
    auto method = static_cast<CentroidMethod>(state.range(0));
    unsigned bits = static_cast<unsigned>(state.range(1));
    Tensor w = layerWeights(4);
    auto split = splitOutliers(w.flat(), -4.0);
    std::size_t iters = 0;
    for (auto _ : state) {
        auto res = clusterWeights(split.gValues, bits, method);
        iters = res.iterations;
        benchmark::DoNotOptimize(res.centroids.data());
    }
    state.counters["lloyd_iters"] = static_cast<double>(iters);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(
                                split.gValues.size()));
}
BENCHMARK(BM_ClusterPolicy)
    ->Args({static_cast<int>(CentroidMethod::Gobo), 3})
    ->Args({static_cast<int>(CentroidMethod::KMeans), 3})
    ->Args({static_cast<int>(CentroidMethod::Linear), 3})
    ->Args({static_cast<int>(CentroidMethod::Gobo), 4})
    ->Args({static_cast<int>(CentroidMethod::KMeans), 4})
    ->Unit(benchmark::kMillisecond);

void
BM_QuantizeLayer(benchmark::State &state)
{
    // Layer sizes of BERT-Base: attention FC (590K) via index 0,
    // intermediate (2.36M) via index 4.
    Tensor w = layerWeights(static_cast<std::size_t>(state.range(0)));
    GoboConfig cfg;
    cfg.bits = 3;
    for (auto _ : state) {
        auto q = quantizeTensor(w, cfg);
        benchmark::DoNotOptimize(q.packedIndexes.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(w.size() * 4));
}
BENCHMARK(BM_QuantizeLayer)->Arg(0)->Arg(4)->Unit(
    benchmark::kMillisecond);

void
BM_DequantizeLayer(benchmark::State &state)
{
    Tensor w = layerWeights(4);
    GoboConfig cfg;
    cfg.bits = 3;
    auto q = quantizeTensor(w, cfg);
    for (auto _ : state) {
        Tensor t = q.dequantize();
        benchmark::DoNotOptimize(t.data().data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(w.size() * 4));
}
BENCHMARK(BM_DequantizeLayer)->Unit(benchmark::kMillisecond);

void
BM_FullModelQuantization(benchmark::State &state)
{
    // Whole-model single-core quantization at full BERT-Base scale
    // (85.5M weights + 23.4M embedding entries). The paper reports ~10
    // minutes with scikit-learn; this implementation runs it in
    // seconds.
    auto cfg = fullConfig(ModelFamily::BertBase);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    for (auto _ : state) {
        auto report = quantizeConfigStreaming(cfg, 42, opt);
        benchmark::DoNotOptimize(report.weightPayloadBytes);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(
            (cfg.fcWeightParams() + cfg.wordEmbeddingParams()) * 4));
}
BENCHMARK(BM_FullModelQuantization)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

} // namespace

BENCHMARK_MAIN();
