/**
 * @file
 * Regenerates paper Table VI: RoBERTa and RoBERTa-Large on MNLI under
 * K-Means and GOBO centroid selection, including the mixed-precision
 * "3b/4b" policy (4-bit Value and Intermediate FCs in the first
 * encoders, 3-bit elsewhere) that recovers the sensitive layers'
 * accuracy at almost-3-bit cost.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

namespace {

void
runModel(ModelFamily family, std::size_t sensitive_encoders,
         const Options &opt)
{
    auto setup = makeTask(family, TaskKind::MnliLike, opt);
    std::printf("%s — baseline %.2f%%\n", familyName(family).c_str(),
                100.0 * setup.baseline);

    ConsoleTable t({"Bits", "K-Means Acc", "K-Means Err", "GOBO Acc",
                    "GOBO Err", "Potential CR"});
    for (unsigned bits : {3u, 4u, 5u, 6u}) {
        double km = evalQuantized(
            setup, uniformOptions(bits, CentroidMethod::KMeans));
        double gobo = evalQuantized(
            setup, uniformOptions(bits, CentroidMethod::Gobo));
        t.addRow({std::to_string(bits),
                  ConsoleTable::pct(100.0 * km, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - km), 2),
                  ConsoleTable::pct(100.0 * gobo, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - gobo), 2),
                  ConsoleTable::num(potentialRatio(bits), 2) + "x"});
        std::printf("  [bits=%u done]\n", bits);
    }

    // Mixed 3b/4b row: 4-bit Value + Intermediate in the first
    // sensitive_encoders encoders, 3-bit elsewhere.
    {
        ModelQuantOptions mixed = uniformOptions(3, CentroidMethod::Gobo);
        mixed.bitsFor = mixedPolicy(sensitive_encoders, 3, 4);
        double acc = evalQuantized(setup, mixed);

        // Effective compression: weighted bits over the full-size
        // layer dims.
        auto full = fullConfig(family);
        double bits_weighted = 0.0, weights_total = 0.0;
        for (const auto &spec : fcLayerSpecs(full)) {
            auto n = static_cast<double>(spec.rows * spec.cols);
            bits_weighted += n * mixed.bitsFor(spec.kind, spec.encoder);
            weights_total += n;
        }
        double avg_bits = bits_weighted / weights_total;
        t.addRow({"3b/4b mixed",
                  "-", "-",
                  ConsoleTable::pct(100.0 * acc, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - acc), 2),
                  ConsoleTable::num(32.0 / avg_bits, 2) + "x"});
    }

    std::puts("");
    t.print(std::cout);
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::puts("Table VI: GLUE/MNLI on RoBERTa and RoBERTa-Large\n");

    runModel(ModelFamily::RoBerta, 6, opt);
    runModel(ModelFamily::RoBertaLarge, 14, opt);

    std::puts("paper (RoBERTa): 3b loses 7.92%, the 3b/4b mixed policy "
              "cuts that to 1.41% at 10.13x; 4b loses 0.30%.");
    std::puts("paper (RoBERTa-Large): 3b loses 5.94%, mixed 0.87% at "
              "10.03x; 4b loses 0.32%.");
    return 0;
}
