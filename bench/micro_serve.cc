/**
 * @file
 * Serving-path benchmark: trace-driven load through the
 * continuous-batching admission layer (src/serve).
 *
 * Replays a deterministic synthetic request trace (serve/loadgen)
 * through ServeServer over a packed 3-bit qexec session and writes
 * BENCH_serve.json. The deterministic block of that JSON — shed
 * counts, batch counts, tile occupancy, virtual latency quantiles —
 * is a pure function of (trace, options); the response checksum is
 * additionally a function of the kernel tier (the fp32 task head
 * reassociates on AVX2). Both are gated *exactly* by
 * tools/bench_diff.py against the committed baseline, which refuses
 * cross-tier diffs; wall-clock fields (tokens/sec, exec quantiles)
 * are machine-dependent and gated loosely or not at all. The windowed
 * `timeline` block (obs/timeline.hh) rides along in the JSON and is
 * gated window by window the same way.
 *
 * The default trace runs the virtual server near saturation with 4x
 * bursts, so both shed paths (overload at admission, deadline at
 * dispatch) exercise nonzero counts in the baseline — a diff that
 * silently stops shedding is a behavior change, not noise.
 *
 * A deterministic subsample of Ok responses is replayed one-at-a-time
 * through a serial session and compared bit-for-bit: batch formation
 * must be invisible in the logits (full-trace replay identity is
 * pinned in tests/test_serve.cc).
 *
 * Flags: --trace SPEC (loadgen grammar), --threads N, --fast
 * (smaller trace; do not diff against the full baseline), --out PATH.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.hh"
#include "core/qexec.hh"
#include "exec/session.hh"
#include "exec/threadpool.hh"
#include "kernels/kernels.hh"
#include "model/generate.hh"
#include "obs/timeline.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

namespace {

/** Near-saturation scenario: ~150 req/s of mean ~24.5 tokens against
 * a 4000 tok/s virtual server, with 4x bursts 20% of the time. */
constexpr const char *kDefaultTrace =
    "n=2000,seed=42,rate=150,len=1:64,long=0.25,burst=4x0.2,"
    "period=200000";
constexpr const char *kFastTrace =
    "n=500,seed=42,rate=150,len=1:64,long=0.25,burst=4x0.2,"
    "period=200000";

} // namespace

int
main(int argc, char **argv)
{
    std::string spec_text = kDefaultTrace;
    bool spec_set = false, fast = false;
    std::size_t threads = defaultThreads();
    std::string out = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            spec_text = argv[++i];
            spec_set = true;
        } else if (arg == "--fast") {
            fast = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            auto v = parseThreadsSpec(argv[++i]);
            if (!v) {
                std::fprintf(stderr, "invalid --threads '%s'\n",
                             argv[i]);
                return 2;
            }
            threads = *v;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace SPEC] [--threads N]"
                         " [--fast] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (fast && !spec_set)
        spec_text = kFastTrace;

    auto spec = parseTraceSpec(spec_text);
    if (!spec) {
        std::fprintf(stderr, "invalid trace spec: %s\n",
                     spec_text.c_str());
        return 2;
    }

    const char *tier = activeKernels().name;
    std::printf("Micro-benchmark: serving path (threads=%zu,"
                " kernels=%s)\ntrace %s\n\n",
                threads, tier, traceSpecString(*spec).c_str());

    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, 42);
    Rng rng(42 * 31 + 5);
    model.resizeHead(3);
    rng.fillGaussian(model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(model.headB.data(), 0.0, 0.5);
    if (spec->maxLen > cfg.maxPosition) {
        std::fprintf(stderr, "trace len max %zu exceeds maxPosition %zu\n",
                     spec->maxLen, cfg.maxPosition);
        return 2;
    }
    auto trace = generateTrace(*spec, cfg.vocabSize);

    ModelQuantOptions qopt = uniformOptions(3, CentroidMethod::Gobo, 4);
    qopt.format = WeightFormat::Packed;
    qopt.threads = threads;
    InferenceSession session(QuantizedBertModel(model, qopt),
                             ExecContext::parallel(threads));

    // Near-saturation policy: the queue bound trips during bursts
    // (overload sheds) and the deadline trips on the backlog behind
    // them (deadline sheds) — the baseline must exercise both paths.
    ServeOptions sopt;
    sopt.maxQueue = 24;
    sopt.requestDeadlineUs = 150000;
    ServeServer server(session, sopt);
    // Stamp the resolved options (tileLanes = the tier's seqTile)
    // into the JSON, not the pre-construction copy.
    sopt = server.options();
    ServeRun run = server.runTrace(trace);
    const ServeSummary &sum = run.summary;

    // Batch-forming identity spot check: every 97th Ok response must
    // equal a one-at-a-time serial forward of the same tokens.
    InferenceSession serial(QuantizedBertModel(model, qopt),
                            ExecContext::serial());
    std::size_t checked = 0;
    for (std::size_t i = 0; i < run.responses.size(); i += 97) {
        const ServeResponse &r = run.responses[i];
        if (r.status != ServeStatus::Ok)
            continue;
        Tensor ref = serial.headLogits(trace[i].tokens);
        for (std::size_t j = 0; j < ref.size(); ++j)
            if (ref(j) != r.logits(j)) {
                std::fprintf(stderr,
                             "replay mismatch: request %zu logit %zu\n",
                             i, j);
                return 1;
            }
        ++checked;
    }
    std::printf("serial replay identity: %zu/%llu Ok responses"
                " spot-checked, bit-identical\n\n",
                checked,
                static_cast<unsigned long long>(sum.completed));

    ConsoleTable t({"Metric", "Value"});
    t.addRow({"requests", std::to_string(sum.requests)});
    t.addRow({"completed", std::to_string(sum.completed)});
    t.addRow({"shed_overload", std::to_string(sum.shedOverload)});
    t.addRow({"shed_deadline", std::to_string(sum.shedDeadline)});
    t.addRow({"batches", std::to_string(sum.batches)});
    t.addRow({"tile_occupancy", ConsoleTable::num(sum.tileOccupancy, 3)});
    t.addRow({"latency p50 us", ConsoleTable::num(sum.latencyP50Us, 0)});
    t.addRow({"latency p95 us", ConsoleTable::num(sum.latencyP95Us, 0)});
    t.addRow({"latency p99 us", ConsoleTable::num(sum.latencyP99Us, 0)});
    t.addRow({"tokens/sec (wall)",
              ConsoleTable::num(sum.tokensPerSec, 0)});
    t.print(std::cout);
    std::printf("\nresponse checksum 0x%016llx\n\n",
                static_cast<unsigned long long>(sum.responseChecksum));
    printWorstShedWindows(sum.timeline, 3, std::cout);

    ServeReportMeta meta;
    meta.trace = traceSpecString(*spec);
    meta.kernelTier = tier;
    meta.threads = threads;
    meta.engine = "qexec";
    meta.format = weightFormatName(WeightFormat::Packed);
    std::ofstream os(out, std::ios::binary);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    writeServeJson(sum, sopt, meta, os);
    os.close();
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
