/**
 * @file
 * Regenerates paper Fig. 4: the effect of embedding-table quantization
 * on accuracy, across all five models, in two scenarios: (a) FP32
 * weights with a 3b/4b embedding table — isolating the embedding
 * effect — and (b) full GOBO quantization (3b/4b weights AND
 * embeddings). Accuracies are normalized to the FP32 baseline, as in
 * the figure.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);

    std::puts("Fig. 4: effect of embedding-table quantization on "
              "accuracy (MNLI-like task, normalized to FP32)\n");

    ConsoleTable t({"Model", "FP32 W + 3b emb", "FP32 W + 4b emb",
                    "GOBO 3b W + 3b emb", "GOBO 4b W + 4b emb"});

    for (auto family : allFamilies()) {
        auto setup = makeTask(family, TaskKind::MnliLike, opt);

        auto norm = [&](unsigned weight_bits, unsigned emb_bits) {
            ModelQuantOptions q;
            if (weight_bits == 0) {
                // FP32 weights: quantize embeddings only. Express via
                // 8-bit... no — leave weights untouched by giving every
                // layer the identity path: quantize a copy manually.
                BertModel copy = setup.model;
                GoboConfig cfg;
                cfg.bits = emb_bits;
                QuantizedTensor qe = quantizeTensor(copy.wordEmbedding,
                                                    cfg);
                copy.wordEmbedding = qe.dequantize();
                return evaluate(copy, setup.data) / setup.baseline;
            }
            q = uniformOptions(weight_bits, CentroidMethod::Gobo,
                               emb_bits);
            return evalQuantized(setup, q) / setup.baseline;
        };

        t.addRow({familyName(family),
                  ConsoleTable::num(norm(0, 3), 4),
                  ConsoleTable::num(norm(0, 4), 4),
                  ConsoleTable::num(norm(3, 3), 4),
                  ConsoleTable::num(norm(4, 4), 4)});
        std::printf("  [%s done, baseline %.4f]\n",
                    familyName(family).c_str(), setup.baseline);
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\npaper: embedding-only quantization stays within ~0.5%"
              " of FP32 (sometimes above it); full GOBO with 4b keeps"
              " accuracy, 3b costs ~0.2%.");
    return 0;
}
