/**
 * @file
 * Per-kernel throughput: the SIMD layer measured in isolation.
 *
 * Times the hot kernels — fold-left dot, axpy, the sequence-tiled
 * bucket scatter (phase 1 of the compressed-domain FC), and the
 * packed-row decode (phase 0) — on every tier the host can run
 * (generic, avx2, avx512), and reports GB/s of streamed operands and
 * GFLOP/s of useful arithmetic. Bucket and decode are swept across B
 * in {2, 3, 4} (k = 2^B buckets): the bucket kernel's flop count per
 * element is fixed (one add per index per lane), so the sweep shows
 * how bucket-working-set size moves the scatter, not the flops. Tile
 * kernels run at their tier's seqTile width (8 generic/avx2, 16
 * avx512); each result row stamps that width, and bench_diff refuses
 * to compare rows whose widths differ.
 *
 * Results go to BENCH_kernels.json (or --out PATH); the committed
 * baseline lives in bench/baseline/BENCH_kernels.json. Schema is in
 * EXPERIMENTS.md. Tier-to-tier speedup here is the microscopic view
 * of the micro_forward end-to-end win.
 *
 * When hardware counters are available (obs/pmu.hh; GOBO_PMU governs
 * the backend) every timed loop is additionally bracketed with PMU
 * samples and the JSON gains a `pmu` roofline block: DRAM bytes/s
 * actually measured from LLC misses vs. the wall-clock GB/s of
 * operands *streamed through the kernel*, plus arithmetic intensity
 * (flops per missed byte) and IPC. The block is machine-dependent by
 * construction and never gated — bench_diff.py skips it by design.
 *
 * Flags: --seed N, --fast (fewer repetitions), --out PATH.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.hh"
#include "kernels/kernels.hh"
#include "obs/pmu.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace gobo;

namespace {

using Result = benchjson::KernelResult;

/** Consumed by every timing loop so the kernel calls stay live. */
volatile double g_sink = 0.0;

double
timeDot(const KernelSet &kn, const std::vector<float> &a,
        const std::vector<float> &b, std::size_t reps)
{
    std::size_t n = a.size();
    float acc = 0.0f;
    acc = kn.dot(acc, a.data(), b.data(), n); // warm-up
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        acc = kn.dot(acc * 1e-30f, a.data(), b.data(), n);
    double secs = timer.seconds();
    g_sink += acc;
    return secs;
}

double
timeAxpy(const KernelSet &kn, const std::vector<float> &x,
         std::vector<float> &y, std::size_t reps)
{
    std::size_t n = x.size();
    kn.axpy(1e-30f, x.data(), y.data(), n); // warm-up
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        kn.axpy(1e-30f, x.data(), y.data(), n);
    double secs = timer.seconds();
    g_sink += y[0];
    return secs;
}

double
timeBucket(const KernelSet &kn, const std::vector<std::uint8_t> &irow,
           const std::vector<float> &xt, std::vector<double> &bucket,
           std::size_t k, std::size_t reps)
{
    std::size_t in = irow.size();
    kn.bucketAccTile(irow.data(), in, xt.data(), bucket.data(), k);
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        kn.bucketAccTile(irow.data(), in, xt.data(), bucket.data(), k);
    double secs = timer.seconds();
    g_sink += bucket[0];
    return secs;
}

double
timeDecode(const KernelSet &kn, const std::vector<std::uint8_t> &packed,
           std::uint32_t bits, std::size_t n,
           std::vector<std::uint8_t> &out, std::size_t reps)
{
    kn.decodePackedRow(packed.data(), packed.size(), 0, bits, n,
                       out.data());
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        kn.decodePackedRow(packed.data(), packed.size(), 0, bits, n,
                           out.data());
    double secs = timer.seconds();
    g_sink += out[0];
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 42;
    std::size_t reps = 40000;
    std::string out = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--fast") {
            reps = 4000;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--seed N] [--fast] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<const KernelSet *> tiers = {&genericKernels()};
    if (const KernelSet *avx2 = avx2Kernels())
        tiers.push_back(avx2);
    if (const KernelSet *avx512 = avx512Kernels())
        tiers.push_back(avx512);

    // Dense kernels at a BERT-base-like width; the bucket kernel at the
    // hidden size (one weight row against one activation tile).
    constexpr std::size_t kDenseN = 4096;
    constexpr std::size_t kIn = 3072;

    Rng rng(seed);
    std::vector<float> a(kDenseN), b(kDenseN), y(kDenseN);
    rng.fillGaussian(a, 0.0, 1.0);
    rng.fillGaussian(b, 0.0, 1.0);
    rng.fillGaussian(y, 0.0, 1.0);
    // Activation tiles are sized for the widest tier; a tier's bucket
    // kernel only reads the first seqTile lanes of each element.
    std::vector<float> xt(kIn * kMaxSeqTile);
    rng.fillGaussian(xt, 0.0, 1.0);

    std::printf("Micro-benchmark: kernel throughput (%zu reps, tiers:",
                reps);
    for (const KernelSet *t : tiers)
        std::printf(" %s", t->name);
    std::printf(")\n\n");

    // Hardware counters for the roofline block. The registry samples
    // only this (the timing) thread; with the backend off every sample
    // is invalid and the roofline vector stays empty. Timing loops are
    // untouched either way: sampling happens strictly outside them, so
    // wall-clock results are identical with PMU on, off, or absent.
    PmuRegistry pmu;
    std::vector<benchjson::KernelRoofline> roofline;
    const double line = static_cast<double>(pmuCacheLineBytes());
    auto addRoofline = [&](const Result &r, const PmuSample &delta,
                           double secs, double flops) {
        if (!delta.valid)
            return;
        double missBytes = static_cast<double>(delta.llcMisses) * line;
        benchjson::KernelRoofline roof;
        roof.kernel = r.kernel;
        roof.tier = r.tier;
        roof.bits = r.bits;
        roof.wallGbPerSec = r.gbPerSec;
        roof.measuredGbPerSec = secs > 0 ? missBytes / secs / 1e9 : 0.0;
        roof.arithmeticIntensity =
            missBytes > 0 ? flops / missBytes : 0.0;
        roof.ipc = delta.cycles > 0
                       ? static_cast<double>(delta.instructions) /
                             static_cast<double>(delta.cycles)
                       : 0.0;
        roofline.push_back(std::move(roof));
    };

    std::vector<Result> results;
    for (const KernelSet *t : tiers) {
        const KernelSet &kn = *t;
        {
            PmuSample t0 = pmu.threadSample();
            double secs = timeDot(kn, a, b, reps);
            PmuSample delta = pmu.threadSample().since(t0);
            double calls = static_cast<double>(reps);
            // Streams both operand vectors; one mul + one add per
            // element.
            double bytes = calls * 2.0 * kDenseN * sizeof(float);
            double flops = calls * 2.0 * kDenseN;
            results.push_back({"dot", kn.name, 0, kDenseN, kn.seqTile,
                               bytes / secs / 1e9, flops / secs / 1e9});
            addRoofline(results.back(), delta, secs, flops);
        }
        {
            PmuSample t0 = pmu.threadSample();
            double secs = timeAxpy(kn, a, y, reps);
            PmuSample delta = pmu.threadSample().since(t0);
            double calls = static_cast<double>(reps);
            // Streams x, reads and writes y; one mul + one add per
            // element.
            double bytes = calls * 3.0 * kDenseN * sizeof(float);
            double flops = calls * 2.0 * kDenseN;
            results.push_back({"axpy", kn.name, 0, kDenseN, kn.seqTile,
                               bytes / secs / 1e9, flops / secs / 1e9});
            addRoofline(results.back(), delta, secs, flops);
        }
        const std::size_t tile = kn.seqTile;
        for (unsigned bits : {2u, 3u, 4u}) {
            std::size_t k = std::size_t{1} << bits;
            std::vector<std::uint8_t> irow(kIn);
            Rng irng(seed * 97 + bits);
            for (auto &v : irow)
                v = static_cast<std::uint8_t>(
                    irng.integer(0, static_cast<int>(k) - 1));
            std::vector<double> bucket(k * tile);
            PmuSample t0 = pmu.threadSample();
            double secs = timeBucket(kn, irow, xt, bucket, k,
                                     reps / 4);
            PmuSample delta = pmu.threadSample().since(t0);
            double calls = static_cast<double>(reps / 4);
            // Streams the index row and the activation tile, plus the
            // bucket working set (reads + writes, but it stays in L1).
            double bytes =
                calls * (kIn * (1.0 + tile * sizeof(float))
                         + 2.0 * k * tile * sizeof(double));
            // One double add per (index, lane).
            double flops = calls * kIn * tile;
            results.push_back({"bucket_acc_tile", kn.name, bits, kIn,
                               tile, bytes / secs / 1e9,
                               flops / secs / 1e9});
            addRoofline(results.back(), delta, secs, flops);
        }
        for (unsigned bits : {2u, 3u, 4u}) {
            // Packed-row decode: the phase-0 step of the compressed-
            // domain FC. Bytes = packed input read + widened output
            // written; no arithmetic, so GFLOP/s is 0 by construction.
            std::vector<std::uint8_t> packed((kIn * bits + 7) / 8, 0);
            Rng drng(seed * 131 + bits);
            std::size_t mask = (std::size_t{1} << bits) - 1;
            for (std::size_t i = 0; i < kIn; ++i) {
                std::size_t v = static_cast<std::size_t>(
                    drng.integer(0, static_cast<int>(mask)));
                std::size_t bit = i * bits;
                for (unsigned j = 0; j < bits; ++j, ++bit)
                    packed[bit / 8] = static_cast<std::uint8_t>(
                        packed[bit / 8]
                        | (((v >> j) & 1u) << (bit % 8)));
            }
            std::vector<std::uint8_t> widened(kIn);
            PmuSample t0 = pmu.threadSample();
            double secs =
                timeDecode(kn, packed, bits, kIn, widened, reps / 4);
            PmuSample delta = pmu.threadSample().since(t0);
            double calls = static_cast<double>(reps / 4);
            double bytes =
                calls * (static_cast<double>(packed.size()) + kIn);
            results.push_back({"decode_row", kn.name, bits, kIn, tile,
                               bytes / secs / 1e9, 0.0});
            addRoofline(results.back(), delta, secs, 0.0);
        }
    }

    ConsoleTable table(
        {"Kernel", "Tier", "B", "N", "Tile", "GB/s", "GFLOP/s"});
    for (const auto &r : results)
        table.addRow({r.kernel, r.tier,
                      r.bits ? std::to_string(r.bits) : "-",
                      std::to_string(r.n), std::to_string(r.seqTile),
                      ConsoleTable::num(r.gbPerSec, 2),
                      ConsoleTable::num(r.gflopPerSec, 2)});
    table.print(std::cout);

    if (!roofline.empty()) {
        std::printf("\nRoofline (hardware counters, %s backend, "
                    "%zu-byte lines; machine-dependent, ungated):\n",
                    pmu.backendName(), pmuCacheLineBytes());
        ConsoleTable roof({"Kernel", "Tier", "B", "Wall GB/s",
                           "DRAM GB/s", "Flop/DRAM-byte", "IPC"});
        for (const auto &r : roofline)
            roof.addRow({r.kernel, r.tier,
                         r.bits ? std::to_string(r.bits) : "-",
                         ConsoleTable::num(r.wallGbPerSec, 2),
                         ConsoleTable::num(r.measuredGbPerSec, 2),
                         ConsoleTable::num(r.arithmeticIntensity, 1),
                         ConsoleTable::num(r.ipc, 2)});
        roof.print(std::cout);
    } else if (!pmu.available()) {
        std::printf("\n(no roofline: hardware counters unavailable)\n");
    }

    benchjson::KernelsDoc doc;
    doc.seqTile = kSeqTile;
    doc.results = results;
    doc.pmuAvailable = pmu.available();
    doc.pmuBackend = pmu.backendName();
    doc.cacheLineBytes = pmuCacheLineBytes();
    doc.roofline = std::move(roofline);

    std::ofstream json(out);
    if (json) {
        benchjson::writeKernelsJson(doc, json);
        json.close();
        std::printf("\nwrote %s\n", out.c_str());
    }
    return 0;
}
