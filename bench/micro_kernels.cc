/**
 * @file
 * Per-kernel throughput: the SIMD layer measured in isolation.
 *
 * Times the three hot kernels — fold-left dot, axpy, and the
 * sequence-tiled bucket scatter (phase 1 of the compressed-domain FC)
 * — on every tier the host can run, and reports GB/s of streamed
 * operands and GFLOP/s of useful arithmetic. The bucket kernel is
 * swept across B in {2, 3, 4} (k = 2^B buckets): its flop count per
 * element is fixed (one add per index per lane), so the sweep shows
 * how bucket-working-set size moves the scatter, not the flops.
 *
 * Results go to BENCH_kernels.json (or --out PATH); the committed
 * baseline lives in bench/baseline/BENCH_kernels.json. Schema is in
 * EXPERIMENTS.md. Tier-to-tier speedup here is the microscopic view
 * of the micro_forward end-to-end win.
 *
 * Flags: --seed N, --fast (fewer repetitions), --out PATH.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "kernels/kernels.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace gobo;

namespace {

struct Result
{
    std::string kernel;
    std::string tier;
    unsigned bits = 0; ///< 0 when the kernel does not depend on B.
    std::size_t n = 0;
    double gbPerSec = 0.0;
    double gflopPerSec = 0.0;
};

/** Consumed by every timing loop so the kernel calls stay live. */
volatile double g_sink = 0.0;

double
timeDot(const KernelSet &kn, const std::vector<float> &a,
        const std::vector<float> &b, std::size_t reps)
{
    std::size_t n = a.size();
    float acc = 0.0f;
    acc = kn.dot(acc, a.data(), b.data(), n); // warm-up
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        acc = kn.dot(acc * 1e-30f, a.data(), b.data(), n);
    double secs = timer.seconds();
    g_sink += acc;
    return secs;
}

double
timeAxpy(const KernelSet &kn, const std::vector<float> &x,
         std::vector<float> &y, std::size_t reps)
{
    std::size_t n = x.size();
    kn.axpy(1e-30f, x.data(), y.data(), n); // warm-up
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        kn.axpy(1e-30f, x.data(), y.data(), n);
    double secs = timer.seconds();
    g_sink += y[0];
    return secs;
}

double
timeBucket(const KernelSet &kn, const std::vector<std::uint8_t> &irow,
           const std::vector<float> &xt, std::vector<double> &bucket,
           std::size_t k, std::size_t reps)
{
    std::size_t in = irow.size();
    kn.bucketAccTile(irow.data(), in, xt.data(), bucket.data(), k);
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        kn.bucketAccTile(irow.data(), in, xt.data(), bucket.data(), k);
    double secs = timer.seconds();
    g_sink += bucket[0];
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 42;
    std::size_t reps = 40000;
    std::string out = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--fast") {
            reps = 4000;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--seed N] [--fast] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<const KernelSet *> tiers = {&genericKernels()};
    if (const KernelSet *avx2 = avx2Kernels())
        tiers.push_back(avx2);

    // Dense kernels at a BERT-base-like width; the bucket kernel at the
    // hidden size (one weight row against one activation tile).
    constexpr std::size_t kDenseN = 4096;
    constexpr std::size_t kIn = 3072;

    Rng rng(seed);
    std::vector<float> a(kDenseN), b(kDenseN), y(kDenseN);
    rng.fillGaussian(a, 0.0, 1.0);
    rng.fillGaussian(b, 0.0, 1.0);
    rng.fillGaussian(y, 0.0, 1.0);
    std::vector<float> xt(kIn * kSeqTile);
    rng.fillGaussian(xt, 0.0, 1.0);

    std::printf("Micro-benchmark: kernel throughput (%zu reps, tiers:",
                reps);
    for (const KernelSet *t : tiers)
        std::printf(" %s", t->name);
    std::printf(")\n\n");

    std::vector<Result> results;
    for (const KernelSet *t : tiers) {
        const KernelSet &kn = *t;
        {
            double secs = timeDot(kn, a, b, reps);
            double calls = static_cast<double>(reps);
            // Streams both operand vectors; one mul + one add per
            // element.
            double bytes = calls * 2.0 * kDenseN * sizeof(float);
            double flops = calls * 2.0 * kDenseN;
            results.push_back({"dot", kn.name, 0, kDenseN,
                               bytes / secs / 1e9, flops / secs / 1e9});
        }
        {
            double secs = timeAxpy(kn, a, y, reps);
            double calls = static_cast<double>(reps);
            // Streams x, reads and writes y; one mul + one add per
            // element.
            double bytes = calls * 3.0 * kDenseN * sizeof(float);
            double flops = calls * 2.0 * kDenseN;
            results.push_back({"axpy", kn.name, 0, kDenseN,
                               bytes / secs / 1e9, flops / secs / 1e9});
        }
        for (unsigned bits : {2u, 3u, 4u}) {
            std::size_t k = std::size_t{1} << bits;
            std::vector<std::uint8_t> irow(kIn);
            Rng irng(seed * 97 + bits);
            for (auto &v : irow)
                v = static_cast<std::uint8_t>(
                    irng.integer(0, static_cast<int>(k) - 1));
            std::vector<double> bucket(k * kSeqTile);
            double secs = timeBucket(kn, irow, xt, bucket, k,
                                     reps / 4);
            double calls = static_cast<double>(reps / 4);
            // Streams the index row and the activation tile, plus the
            // bucket working set (reads + writes, but it stays in L1).
            double bytes =
                calls * (kIn * (1.0 + kSeqTile * sizeof(float))
                         + 2.0 * k * kSeqTile * sizeof(double));
            // One double add per (index, lane).
            double flops = calls * kIn * kSeqTile;
            results.push_back({"bucket_acc_tile", kn.name, bits, kIn,
                               bytes / secs / 1e9, flops / secs / 1e9});
        }
    }

    ConsoleTable table(
        {"Kernel", "Tier", "B", "N", "GB/s", "GFLOP/s"});
    for (const auto &r : results)
        table.addRow({r.kernel, r.tier,
                      r.bits ? std::to_string(r.bits) : "-",
                      std::to_string(r.n), ConsoleTable::num(r.gbPerSec, 2),
                      ConsoleTable::num(r.gflopPerSec, 2)});
    table.print(std::cout);

    std::FILE *json = std::fopen(out.c_str(), "w");
    if (json) {
        std::fprintf(json,
                     "{\n  \"bench\": \"micro_kernels\",\n"
                     "  \"seq_tile\": %zu,\n  \"results\": [\n",
                     kSeqTile);
        for (std::size_t i = 0; i < results.size(); ++i)
            std::fprintf(
                json,
                "    {\"kernel\": \"%s\", \"tier\": \"%s\","
                " \"bits\": %u, \"n\": %zu, \"gb_per_sec\": %.3f,"
                " \"gflop_per_sec\": %.3f}%s\n",
                results[i].kernel.c_str(), results[i].tier.c_str(),
                results[i].bits, results[i].n, results[i].gbPerSec,
                results[i].gflopPerSec,
                i + 1 < results.size() ? "," : "");
        std::fprintf(json, "  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote %s\n", out.c_str());
    }
    return 0;
}
