/**
 * @file
 * Shared plumbing for the experiment binaries: flag parsing and the
 * build-task / quantize / evaluate cycle every accuracy table uses.
 *
 * Every bench accepts:
 *   --seed N      experiment seed (default 42)
 *   --fast        shrink evaluation sets ~4x for quick smoke runs
 */

#ifndef GOBO_BENCH_BENCH_UTIL_HH
#define GOBO_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/quantizer.hh"
#include "exec/context.hh"
#include "model/generate.hh"
#include "task/task.hh"
#include "util/parallel.hh"

namespace gobo::bench {

/** Parsed common flags. */
struct Options
{
    std::uint64_t seed = 42;
    bool fast = false;
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--fast") == 0) {
            opt.fast = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--seed N] [--fast]\n", argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

/** A fine-tuned mini model with its labelled evaluation set. */
struct TaskSetup
{
    BertModel model;
    Dataset data;
    double baseline = 0.0;
};

/**
 * Generate the family's mini model, fine-tune it for the task (head +
 * noisy-teacher labels), and score the FP32 baseline.
 */
inline TaskSetup
makeTask(ModelFamily family, TaskKind kind, const Options &opt)
{
    auto cfg = miniConfig(family);
    BertModel model = generateModel(cfg, opt.seed);
    TaskSpec spec = defaultSpec(kind, family, opt.seed);
    if (opt.fast)
        spec.numExamples = std::max<std::size_t>(100,
                                                 spec.numExamples / 4);
    Dataset data = buildTask(model, spec);
    // Parallel across examples; bit-identical to a serial evaluate.
    double baseline = evaluate(ExecContext::parallel(), model, data);
    return {std::move(model), std::move(data), baseline};
}

/** Quantize a copy of the setup's model and score it. */
inline double
evalQuantized(const TaskSetup &setup, const ModelQuantOptions &options)
{
    BertModel copy = setup.model;
    quantizeModelInPlace(copy, options);
    return evaluate(ExecContext::parallel(), copy, setup.data);
}

/** Convenience: uniform-bits options with a method. */
inline ModelQuantOptions
uniformOptions(unsigned bits, CentroidMethod method,
               unsigned embedding_bits = 0)
{
    ModelQuantOptions opt;
    opt.base.bits = bits;
    opt.base.method = method;
    opt.embeddingBits = embedding_bits;
    // Benches use every core; results are bit-identical to serial
    // (micro_quantizer measures the single-core claim separately).
    opt.threads = defaultThreads();
    return opt;
}

/** "32-bit over B-bit" potential compression ratio column. */
inline double
potentialRatio(unsigned bits)
{
    return 32.0 / static_cast<double>(bits);
}

} // namespace gobo::bench

#endif // GOBO_BENCH_BENCH_UTIL_HH
