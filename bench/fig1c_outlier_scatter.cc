/**
 * @file
 * Regenerates paper Fig. 1c: the weights of one BERT layer with the
 * outliers highlighted. The console rendering reports the G-group
 * range, the magnitude bands, and the far-out fringe the figure colour
 * codes — the "tiny fraction of weights on the fringes of the
 * Gaussian" observation.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/outliers.hh"
#include "model/generate.hh"
#include "util/table.hh"

using namespace gobo;

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv);
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    const auto &spec = specs[6 * 5 + 4]; // encoder5.intermediate

    Tensor w = generateFcWeight(cfg, spec, opt.seed);
    auto split = splitOutliers(w.flat(), -4.0);
    double cut = split.fit.absoluteCutoff(-4.0);

    std::printf("Fig. 1c: weights of one BERT layer (%s, %zu weights)\n\n",
                spec.name.c_str(), w.size());
    std::printf("Gaussian fit: mean %+0.5f sigma %0.5f\n",
                split.fit.mean(), split.fit.sigma());
    std::printf("log-prob threshold -4  =>  |w - mean| > %0.4f "
                "(%.2f sigma) is an outlier\n\n",
                cut, split.fit.zCutoff(-4.0));

    // Magnitude census in bands of sigma.
    ConsoleTable t({"|z| band", "weights", "share", "class"});
    double sigma = split.fit.sigma();
    const double bands[] = {0, 1, 2, 3, split.fit.zCutoff(-4.0), 6, 9,
                            100};
    const char *names[] = {"[0,1)", "[1,2)", "[2,3)", "[3,cut)",
                           "[cut,6)", "[6,9)", "[9,inf)"};
    std::size_t counts[7] = {};
    for (float v : w.flat()) {
        double z = std::abs((static_cast<double>(v) - split.fit.mean())
                            / sigma);
        for (int b = 0; b < 7; ++b) {
            if (z >= bands[b] && z < bands[b + 1]) {
                ++counts[b];
                break;
            }
        }
    }
    for (int b = 0; b < 7; ++b) {
        double share = 100.0 * static_cast<double>(counts[b])
                       / static_cast<double>(w.size());
        t.addRow({names[b], std::to_string(counts[b]),
                  ConsoleTable::pct(share, 4),
                  bands[b] >= split.fit.zCutoff(-4.0) ? "Outlier (O)"
                                                      : "Gaussian (G)"});
    }
    t.print(std::cout);

    std::printf("\nG group: %zu weights (%.3f%%), outliers: %zu "
                "(%.3f%%)\n",
                split.gValues.size(),
                100.0 - 100.0 * split.outlierFraction(),
                split.outlierValues.size(),
                100.0 * split.outlierFraction());
    float w_min = w.flat()[0], w_max = w.flat()[0];
    for (float v : w.flat()) {
        w_min = std::min(w_min, v);
        w_max = std::max(w_max, v);
    }
    std::printf("full range [%+0.3f, %+0.3f]; G range [%+0.3f, %+0.3f]\n",
                w_min, w_max, split.fit.mean() - cut,
                split.fit.mean() + cut);
    std::puts("\npaper: a tiny fraction of weights sits far outside the"
              " Gaussian; magnitudes are considerably larger than the"
              " rest.");
    return 0;
}
