/**
 * @file
 * Compressed-domain execution ablation — the compute story of GOBO's
 * hardware architecture. Executing straight from the (indexes,
 * centroid table, outliers) form collapses per-output multiplications
 * from `in` to `2^B + outliers-in-row`: this bench measures the
 * multiplier reduction, verifies prediction agreement with the decoded
 * FP32 model, and reports the weight bytes the engine holds resident.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/qexec.hh"
#include "exec/session.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "tensor/ops.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::puts("Ablation: compressed-domain execution (QuantizedLinear / "
              "QuantizedBertModel)\n");

    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, opt.seed);
    TaskSpec spec = defaultSpec(TaskKind::MnliLike, ModelFamily::BertBase,
                                opt.seed);
    spec.numExamples = opt.fast ? 60 : 200;
    Dataset data = buildTask(model, spec);

    TokenBatch batch;
    for (const auto &ex : data.examples)
        batch.push_back(ex.tokens);

    ConsoleTable t({"Bits", "Mults / dense", "Adds / dense",
                    "Agreement", "Resident weight MB (full scale)"});
    for (unsigned bits : {2u, 3u, 4u}) {
        ModelQuantOptions qopt = uniformOptions(bits,
                                                CentroidMethod::Gobo, 4);
        QuantizedBertModel qmodel(model, qopt);
        BertModel decoded = model;
        quantizeModelInPlace(decoded, qopt);

        auto ops = qmodel.opCounts(spec.seqLen);
        auto dense = qmodel.denseOpCounts(spec.seqLen);

        // Both engines serve the same batch through InferenceSession;
        // agreement compares their argmax labels example by example.
        InferenceSession qsession(std::move(qmodel),
                                  ExecContext::parallel());
        InferenceSession dsession(std::move(decoded),
                                  ExecContext::parallel());
        auto qlogits = qsession.headLogitsBatch(batch);
        auto dlogits = dsession.headLogitsBatch(batch);
        std::size_t agree = 0;
        for (std::size_t i = 0; i < batch.size(); ++i)
            agree += argmax(qlogits[i].flat()) == argmax(dlogits[i].flat())
                         ? 1
                         : 0;

        // Resident weight bytes at full checkpoint scale.
        auto report = quantizeConfigStreaming(
            fullConfig(ModelFamily::BertBase), opt.seed, qopt);

        t.addRow({std::to_string(bits),
                  ConsoleTable::pct(100.0
                                        * static_cast<double>(
                                            ops.multiplications)
                                        / static_cast<double>(
                                            dense.multiplications),
                                    2),
                  ConsoleTable::pct(100.0
                                        * static_cast<double>(
                                            ops.additions)
                                        / static_cast<double>(
                                            dense.additions),
                                    2),
                  ConsoleTable::num(100.0 * static_cast<double>(agree)
                                        / static_cast<double>(
                                            data.examples.size()),
                                    1)
                      + "%",
                  ConsoleTable::num(
                      static_cast<double>(report.weightPayloadBytes)
                          / (1024.0 * 1024.0),
                      1)});
        std::printf("  [bits=%u done]\n", bits);
    }
    std::puts("");
    t.print(std::cout);

    // Wall-clock comparison on one layer (software emulation; the
    // hardware wins by replacing multipliers with accumulators, which
    // a scalar CPU core cannot show at full strength).
    auto specs = fcLayerSpecs(cfg);
    Tensor w = generateFcWeight(cfg, specs[4], opt.seed);
    Tensor bias(w.rows());
    GoboConfig qcfg;
    qcfg.bits = 3;
    QuantizedLinear ql(quantizeTensor(w, qcfg), bias);
    Tensor x(16, w.cols());
    Rng rng(opt.seed);
    rng.fillGaussian(x.data(), 0.0, 1.0);

    double sink = 0.0;
    WallTimer timer;
    for (int i = 0; i < 200; ++i)
        sink += ql.forward(x)(0, 0);
    double q_ms = timer.milliseconds() / 200.0;
    timer.reset();
    Tensor dense_w = ql.compressed().dequantize();
    for (int i = 0; i < 200; ++i)
        sink += linear(x, dense_w, bias)(0, 0);
    double d_ms = timer.milliseconds() / 200.0;
    std::printf("\none FC layer forward (software): quantized %.3f ms, "
                "dense %.3f ms (checksum %.3f)\n",
                q_ms, d_ms, sink);
    std::puts("hardware premise: per output, `in` multiplies become "
              "2^B (+1 per outlier); the adders remain and a multiplier"
              " array shrinks ~100x.");
    return 0;
}
