/**
 * @file
 * Regenerates paper Table I: the BERT architecture (per-component FC
 * dimensions and layer counts) for BERT-Base and BERT-Large.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/config.hh"
#include "util/table.hh"

using namespace gobo;

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv);
    auto base = fullConfig(ModelFamily::BertBase);
    auto large = fullConfig(ModelFamily::BertLarge);

    std::puts("Table I: BERT Architecture");
    ConsoleTable t({"Component", "BERT-Base FC# x Dim",
                    "BERT-Large FC# x Dim"});
    auto dims = [](std::size_t a, std::size_t b) {
        return std::to_string(a) + " x " + std::to_string(b);
    };
    t.addRow({"BERT layers", std::to_string(base.numLayers),
              std::to_string(large.numLayers)});
    t.addRow({"Attention", "4x " + dims(base.hidden, base.hidden),
              "4x " + dims(large.hidden, large.hidden)});
    t.addRow({"Intermediate",
              "1x " + dims(base.hidden, base.intermediate),
              "1x " + dims(large.hidden, large.intermediate)});
    t.addRow({"Output", "1x " + dims(base.intermediate, base.hidden),
              "1x " + dims(large.intermediate, large.hidden)});
    t.addRow({"BERT Pooler", dims(base.hidden, base.hidden),
              dims(large.hidden, large.hidden)});
    t.addRow({"Total FC layers", std::to_string(base.numFcLayers()),
              std::to_string(large.numFcLayers())});
    t.addRow({"FC weight parameters",
              std::to_string(base.fcWeightParams()),
              std::to_string(large.fcWeightParams())});
    t.print(std::cout);

    std::puts("\npaper: 73 / 145 FC layers; 110M / 340M total params"
              " (incl. embeddings)");
    return 0;
}
