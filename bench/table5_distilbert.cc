/**
 * @file
 * Regenerates paper Table V: GOBO vs GOBO-with-K-Means centroid
 * selection on DistilBERT / MNLI across index widths. The paper's
 * point: GOBO needs half the centroids K-Means does, and GOBO on top
 * of knowledge distillation yields a model ~20x smaller than
 * BERT-Base.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);

    // DistilBERT's losses are a fraction of a percent; average over
    // independent seeds (models, tasks, noise) so the table reports
    // the effect rather than one draw's luck.
    std::size_t n_seeds = opt.fast ? 1 : 3;
    std::vector<TaskSetup> setups;
    double baseline = 0.0;
    for (std::size_t s = 0; s < n_seeds; ++s) {
        Options seed_opt = opt;
        seed_opt.seed = opt.seed + 1000 * s;
        setups.push_back(makeTask(ModelFamily::DistilBert,
                                  TaskKind::MnliLike, seed_opt));
        baseline += setups.back().baseline;
    }
    baseline /= static_cast<double>(n_seeds);

    std::printf("Table V: GLUE/MNLI on DistilBERT — baseline %.2f%% "
                "(mean of %zu seeds)\n\n",
                100.0 * baseline, n_seeds);

    ConsoleTable t({"Bits", "K-Means Acc", "K-Means Err", "GOBO Acc",
                    "GOBO Err", "Potential CR"});
    for (unsigned bits : {3u, 4u, 5u}) {
        double km = 0.0, gobo = 0.0;
        for (const auto &setup : setups) {
            km += evalQuantized(setup, uniformOptions(
                                           bits, CentroidMethod::KMeans));
            gobo += evalQuantized(setup,
                                  uniformOptions(bits,
                                                 CentroidMethod::Gobo));
        }
        km /= static_cast<double>(n_seeds);
        gobo /= static_cast<double>(n_seeds);
        t.addRow({std::to_string(bits),
                  ConsoleTable::pct(100.0 * km, 2),
                  ConsoleTable::pct(100.0 * (baseline - km), 2),
                  ConsoleTable::pct(100.0 * gobo, 2),
                  ConsoleTable::pct(100.0 * (baseline - gobo), 2),
                  ConsoleTable::num(potentialRatio(bits), 2) + "x"});
        std::printf("  [bits=%u done]\n", bits);
    }
    std::puts("");
    t.print(std::cout);

    // The 20x headline: DistilBERT's FC weights at 3b against
    // BERT-Base's FP32 FC weights (half the layers x ~10x per layer).
    auto distil = fullConfig(ModelFamily::DistilBert);
    auto bert = fullConfig(ModelFamily::BertBase);
    auto gobo_opt = uniformOptions(3, CentroidMethod::Gobo, 4);
    auto report = quantizeConfigStreaming(distil, opt.seed, gobo_opt);
    double bert_bytes = static_cast<double>(bert.fcWeightParams()
                                            * sizeof(float));
    std::printf("\nGOBO-compressed DistilBERT weights are %.1fx smaller"
                " than FP32 BERT-Base weights (paper: ~20x)\n",
                bert_bytes
                    / static_cast<double>(report.weightPayloadBytes));
    std::puts("paper: GOBO 3b err 0.68% vs K-Means 1.15%; both lossless"
              " one bit later (4b GOBO, 5b K-Means).");
    return 0;
}
