/**
 * @file
 * JSON writers for the bench result documents.
 *
 * BENCH_forward.json and BENCH_kernels.json used to be formatted by
 * fprintf blocks inline in the bench mains, which meant their shape
 * could only be validated by running a full benchmark. Extracting the
 * writers here (header-only; both bench binaries and the test suite
 * include it) lets tests/test_json_outputs.cc feed synthetic documents
 * through the exact code that writes the committed baselines and run
 * the strict jsonlint validator over the result.
 *
 * The emitted byte format is unchanged from the inline writers — the
 * committed baselines under bench/baseline/ still parse field-for-
 * field — except that BENCH_kernels.json gains the optional `pmu`
 * roofline block (machine-dependent by construction; bench_diff.py
 * skips it by design — see EXPERIMENTS.md).
 */

#ifndef GOBO_BENCH_BENCH_JSON_HH
#define GOBO_BENCH_BENCH_JSON_HH

#include <cstddef>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "obs/export.hh"

namespace gobo::benchjson {

namespace detail {

/** Locale-proof printf into an ostream (the bench docs are ASCII and
 * every float goes through an explicit %-format). */
template <typename... Args>
inline void
put(std::ostream &os, const char *fmt, Args... args)
{
    char buf[512];
    std::snprintf(buf, sizeof buf, fmt, args...);
    os << buf;
}

} // namespace detail

// ---------------------------------------------------------------------------
// BENCH_forward.json

struct ForwardResult
{
    std::string engine;
    std::string backend;
    double tokensPerSec = 0.0;
    std::size_t residentBytes = 0;
};

struct ScalingPoint
{
    std::size_t threads = 0;
    double tokensPerSec = 0.0;
    double speedupVsSerial = 0.0;
};

struct ForwardDoc
{
    std::size_t seqLen = 0;
    std::size_t batch = 0;
    std::size_t threads = 0;
    std::size_t cores = 0;
    std::string kernelTier;
    /** Active tier's sequence-tile width (KernelSet::seqTile). Changes
     * batching granularity, so bench_diff refuses cross-width diffs. */
    std::size_t seqTile = 0;
    /** Decoded-row cache budget (GOBO_DECODE_CACHE_KB) in KiB; part of
     * the environment stamp since it shifts both throughput and
     * resident accounting. */
    std::size_t decodeCacheKb = 0;
    std::vector<ForwardResult> results;
    std::vector<ScalingPoint> scaling;
    std::vector<SpanSummary> spans;
    double fp32ParallelSpeedup = 0.0;
    double qexecParallelTokensPerSec = 0.0;
    double packedResidentOverFp32 = 0.0;
};

inline void
writeForwardJson(const ForwardDoc &doc, std::ostream &os)
{
    using detail::put;
    put(os,
        "{\n  \"bench\": \"micro_forward\",\n"
        "  \"seq_len\": %zu,\n  \"batch\": %zu,\n"
        "  \"threads\": %zu,\n  \"cores\": %zu,\n"
        "  \"kernel_tier\": \"%s\",\n"
        "  \"seq_tile\": %zu,\n"
        "  \"decode_cache_kb\": %zu,\n"
        "  \"results\": [\n",
        doc.seqLen, doc.batch, doc.threads, doc.cores,
        doc.kernelTier.c_str(), doc.seqTile, doc.decodeCacheKb);
    for (std::size_t i = 0; i < doc.results.size(); ++i)
        put(os,
            "    {\"engine\": \"%s\", \"backend\": \"%s\","
            " \"tokens_per_sec\": %.1f,"
            " \"resident_bytes\": %zu}%s\n",
            doc.results[i].engine.c_str(),
            doc.results[i].backend.c_str(), doc.results[i].tokensPerSec,
            doc.results[i].residentBytes,
            i + 1 < doc.results.size() ? "," : "");
    put(os, "  ],\n  \"scaling\": [\n");
    for (std::size_t i = 0; i < doc.scaling.size(); ++i)
        put(os,
            "    {\"threads\": %zu,"
            " \"tokens_per_sec\": %.1f,"
            " \"speedup_vs_serial\": %.3f}%s\n",
            doc.scaling[i].threads, doc.scaling[i].tokensPerSec,
            doc.scaling[i].speedupVsSerial,
            i + 1 < doc.scaling.size() ? "," : "");
    put(os, "  ],\n  \"spans\": [\n");
    for (std::size_t i = 0; i < doc.spans.size(); ++i)
        put(os,
            "    {\"name\": \"%s\", \"count\": %zu,"
            " \"total_us\": %.1f, \"mean_us\": %.2f}%s\n",
            doc.spans[i].name.c_str(),
            static_cast<std::size_t>(doc.spans[i].count),
            doc.spans[i].totalUs, doc.spans[i].meanUs,
            i + 1 < doc.spans.size() ? "," : "");
    put(os,
        "  ],\n  \"fp32_parallel_speedup\": %.3f,\n"
        "  \"qexec_parallel_tokens_per_sec\": %.1f,\n"
        "  \"packed_resident_over_fp32\": %.5f\n}\n",
        doc.fp32ParallelSpeedup, doc.qexecParallelTokensPerSec,
        doc.packedResidentOverFp32);
}

// ---------------------------------------------------------------------------
// BENCH_kernels.json

struct KernelResult
{
    std::string kernel;
    std::string tier;
    unsigned bits = 0; ///< 0 when the kernel does not depend on B.
    std::size_t n = 0;
    /** The tier's sequence-tile width — tile kernels process this many
     * lanes per call, so GB/s figures are only comparable at equal
     * width (bench_diff refuses mismatches on shared keys). */
    std::size_t seqTile = 0;
    double gbPerSec = 0.0;
    double gflopPerSec = 0.0;
};

/** Roofline position of one (kernel, tier, bits) cell, from hardware
 * counters sampled around the same timed loop the wall-clock figures
 * come from. Machine-dependent by construction — never gated. */
struct KernelRoofline
{
    std::string kernel;
    std::string tier;
    unsigned bits = 0;
    double wallGbPerSec = 0.0;     ///< the gated results[] figure.
    double measuredGbPerSec = 0.0; ///< LLC misses x line / elapsed.
    /** Useful flops per DRAM byte actually moved (misses x line);
     * high values mean the working set lived in cache. */
    double arithmeticIntensity = 0.0;
    double ipc = 0.0;
};

struct KernelsDoc
{
    /** Baseline (generic-tier) tile width, kept at the document level
     * for schema continuity; each result row additionally carries its
     * own tier's `seq_tile` since widths differ across tiers. */
    std::size_t seqTile = 0;
    std::vector<KernelResult> results;

    // The pmu block renders whenever pmuBackend is non-empty; with
    // pmuAvailable false it still records that counters were absent,
    // so a reader can tell "no PMU on this host" from "old schema".
    bool pmuAvailable = false;
    std::string pmuBackend; ///< empty = omit the pmu block entirely.
    std::size_t cacheLineBytes = 64;
    std::vector<KernelRoofline> roofline;
};

inline void
writeKernelsJson(const KernelsDoc &doc, std::ostream &os)
{
    using detail::put;
    put(os,
        "{\n  \"bench\": \"micro_kernels\",\n"
        "  \"seq_tile\": %zu,\n  \"results\": [\n",
        doc.seqTile);
    for (std::size_t i = 0; i < doc.results.size(); ++i)
        put(os,
            "    {\"kernel\": \"%s\", \"tier\": \"%s\","
            " \"bits\": %u, \"n\": %zu, \"seq_tile\": %zu,"
            " \"gb_per_sec\": %.3f,"
            " \"gflop_per_sec\": %.3f}%s\n",
            doc.results[i].kernel.c_str(), doc.results[i].tier.c_str(),
            doc.results[i].bits, doc.results[i].n,
            doc.results[i].seqTile,
            doc.results[i].gbPerSec, doc.results[i].gflopPerSec,
            i + 1 < doc.results.size() ? "," : "");
    put(os, "  ]");
    if (!doc.pmuBackend.empty()) {
        put(os,
            ",\n  \"pmu\": {\n"
            "    \"available\": %s,\n"
            "    \"backend\": \"%s\",\n"
            "    \"cache_line_bytes\": %zu,\n"
            "    \"results\": [\n",
            doc.pmuAvailable ? "true" : "false",
            doc.pmuBackend.c_str(), doc.cacheLineBytes);
        for (std::size_t i = 0; i < doc.roofline.size(); ++i)
            put(os,
                "      {\"kernel\": \"%s\", \"tier\": \"%s\","
                " \"bits\": %u, \"wall_gb_per_sec\": %.3f,"
                " \"measured_gb_per_sec\": %.3f,"
                " \"arithmetic_intensity_flop_per_byte\": %.3f,"
                " \"ipc\": %.3f}%s\n",
                doc.roofline[i].kernel.c_str(),
                doc.roofline[i].tier.c_str(), doc.roofline[i].bits,
                doc.roofline[i].wallGbPerSec,
                doc.roofline[i].measuredGbPerSec,
                doc.roofline[i].arithmeticIntensity, doc.roofline[i].ipc,
                i + 1 < doc.roofline.size() ? "," : "");
        put(os, "    ]\n  }");
    }
    put(os, "\n}\n");
}

} // namespace gobo::benchjson

#endif // GOBO_BENCH_BENCH_JSON_HH
