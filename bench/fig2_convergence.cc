/**
 * @file
 * Regenerates paper Fig. 2: L1- and L2-norm trajectories of GOBO's
 * centroid refinement vs K-Means on one representative layer, the
 * iteration each converges at, and the resulting speedup (paper: ~9x,
 * with GOBO done in ~7 iterations).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "core/outliers.hh"
#include "model/generate.hh"
#include "util/table.hh"

using namespace gobo;

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv);
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    const auto &spec = specs[6 * 5 + 4]; // encoder5.intermediate

    Tensor w = generateFcWeight(cfg, spec, opt.seed);
    auto split = splitOutliers(w.flat(), -4.0);
    std::printf("Fig. 2: clustering convergence on %s "
                "(%zu G weights, 3-bit)\n\n",
                spec.name.c_str(), split.gValues.size());

    auto gobo = clusterWeights(split.gValues, 3, CentroidMethod::Gobo);
    auto km = clusterWeights(split.gValues, 3, CentroidMethod::KMeans);

    ConsoleTable t({"iter", "GOBO L1", "GOBO L2", "K-Means L1",
                    "K-Means L2"});
    std::size_t rows = std::max(gobo.history.size(), km.history.size());
    for (std::size_t i = 0; i < rows; ++i) {
        auto cell = [&](const ClusterResult &r, bool l1) {
            if (i >= r.history.size())
                return std::string("-");
            return ConsoleTable::num(l1 ? r.history[i].l1
                                        : r.history[i].l2,
                                     l1 ? 1 : 2);
        };
        // Print every iteration early on, then every 5th.
        if (i > 12 && i % 5 != 0 && i + 1 != rows)
            continue;
        t.addRow({std::to_string(i), cell(gobo, true), cell(gobo, false),
                  cell(km, true), cell(km, false)});
    }
    t.print(std::cout);

    double speedup = static_cast<double>(km.iterations)
                     / static_cast<double>(std::max<std::size_t>(
                         1, gobo.iterations));
    std::printf("\nGOBO converged at iteration %zu (L1 minimum); "
                "K-Means at iteration %zu\n",
                gobo.iterations, km.iterations);
    std::printf("convergence speedup: %.1fx   (paper: ~9x, GOBO done in"
                " ~7 iterations)\n",
                speedup);
    std::printf("final norms: GOBO L1 %.1f (lower), K-Means L2 %.2f "
                "(lower) — each optimizes its own objective\n",
                gobo.finalL1, km.finalL2);
    return 0;
}
