/**
 * @file
 * Regenerates paper Table VII: embedding-table size and compression
 * ratio for all five models at 3-bit and 4-bit GOBO quantization,
 * computed over full-size generated tables with exact payload
 * accounting.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/quantizer.hh"
#include "model/footprint.hh"
#include "model/generate.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::puts("Table VII: embedding-table size (MB) and compression "
              "ratio, threshold -4\n");

    ConsoleTable t({"Model", "FP32 MB", "3-bit MB", "3-bit CR",
                    "4-bit MB", "4-bit CR"});
    for (auto family : allFamilies()) {
        auto cfg = fullConfig(family);
        Tensor emb = generateWordEmbedding(cfg, opt.seed);
        double fp32_mb = toMiB(emb.size() * sizeof(float));

        double mb[2], cr[2];
        int slot = 0;
        for (unsigned bits : {3u, 4u}) {
            GoboConfig qcfg;
            qcfg.bits = bits;
            auto q = quantizeTensor(emb, qcfg);
            mb[slot] = toMiB(q.payloadBytes());
            cr[slot] = q.compressionRatio();
            ++slot;
        }
        t.addRow({familyName(family), ConsoleTable::num(fp32_mb, 2),
                  ConsoleTable::num(mb[0], 2),
                  ConsoleTable::num(cr[0], 2) + "x",
                  ConsoleTable::num(mb[1], 2),
                  ConsoleTable::num(cr[1], 2) + "x"});
        std::printf("  [%s done]\n", familyName(family).c_str());
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\npaper: FP32 89.42-196.34 MB; 3-bit CR 10.10-10.66x; "
              "4-bit CR 7.69-8.00x.");
    return 0;
}
