/**
 * @file
 * Entropy-coding ablation: would Huffman coding the index stream (as
 * Deep Compression does after its K-Means pass) buy GOBO anything?
 *
 * The answer is a design insight of the equal-population
 * initialization: GOBO balances cluster populations, so its 3-bit
 * index stream is close to uniform (~3.0 bits of entropy) and the
 * fixed-rate format the paper's hardware consumes is already
 * near-optimal. K-Means drifts the populations (entropy drops a bit);
 * Linear quantization concentrates almost everything in the central
 * bins (entropy collapses), but its accuracy is unusable at these
 * widths (Table IV).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "core/outliers.hh"
#include "model/generate.hh"
#include "util/huffman.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::puts("Ablation: entropy coding the 3-bit index stream "
              "(BERT-Base layers)\n");

    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);

    ConsoleTable t({"Layer", "Policy", "Index entropy (bits)",
                    "Huffman (bits/idx)", "Fixed", "Saving"});
    for (std::size_t flat : {4u, 34u, 64u}) {
        Tensor w = generateFcWeight(cfg, specs[flat], opt.seed);
        auto split = splitOutliers(w.flat(), -4.0);
        for (auto method : {CentroidMethod::Gobo, CentroidMethod::KMeans,
                            CentroidMethod::Linear}) {
            auto cluster = clusterWeights(split.gValues, 3, method);
            auto idx = assignNearest(split.gValues, cluster.centroids);
            auto counts = symbolCounts(idx, cluster.centroids.size());
            auto code = HuffmanCode::build(counts);
            double avg = static_cast<double>(code.encodedBits(counts))
                         / static_cast<double>(idx.size());
            t.addRow({specs[flat].name, centroidMethodName(method),
                      ConsoleTable::num(entropyBitsPerSymbol(counts), 3),
                      ConsoleTable::num(avg, 3), "3.000",
                      ConsoleTable::pct(100.0 * (3.0 - avg) / 3.0, 1)});
        }
        std::printf("  [%s done]\n", specs[flat].name.c_str());
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\ninsight: equal-population bins make the fixed-rate "
              "B-bit stream near-optimal — no entropy coder (and no "
              "variable-rate decoder in hardware) is needed.");
    return 0;
}
