/**
 * @file
 * Regenerates paper Table IV: accuracy under the three "G"-group
 * centroid-selection policies (Linear, K-Means, GOBO) as the index
 * width sweeps, for GLUE/MNLI and GLUE/STS-B on BERT-Base and SQuAD
 * v1.1 on BERT-Large, plus the potential compression-ratio column.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

namespace {

void
runBlock(const char *title, ModelFamily family, TaskKind kind,
         const std::vector<unsigned> &bit_sweep, const Options &opt)
{
    auto setup = makeTask(family, kind, opt);
    std::printf("%s — baseline %s = %.2f%%\n", title, metricName(kind),
                100.0 * setup.baseline);

    ConsoleTable t({"Bits", "Linear " + std::string(metricName(kind)),
                    "Linear Err", "K-Means " + std::string(
                        metricName(kind)),
                    "K-Means Err", "GOBO " + std::string(
                        metricName(kind)),
                    "GOBO Err", "Potential CR"});

    for (unsigned bits : bit_sweep) {
        std::vector<std::string> row{std::to_string(bits)};
        for (auto method : {CentroidMethod::Linear,
                            CentroidMethod::KMeans,
                            CentroidMethod::Gobo}) {
            double score = evalQuantized(setup,
                                         uniformOptions(bits, method));
            row.push_back(ConsoleTable::pct(100.0 * score, 2));
            row.push_back(ConsoleTable::pct(
                100.0 * (setup.baseline - score), 2));
        }
        row.push_back(ConsoleTable::num(potentialRatio(bits), 2) + "x");
        t.addRow(row);
        std::printf("  [bits=%u done]\n", bits);
    }
    std::puts("");
    t.print(std::cout);
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::puts("Table IV: GOBO with different G-group centroid selection "
              "policies\n");

    runBlock("GLUE/MNLI with BERT-Base", ModelFamily::BertBase,
             TaskKind::MnliLike, {2, 3, 4, 5, 6}, opt);
    runBlock("GLUE/STS-B with BERT-Base", ModelFamily::BertBase,
             TaskKind::StsbLike, {2, 3, 4, 5}, opt);
    runBlock("SQuAD v1.1 with BERT-Large", ModelFamily::BertLarge,
             TaskKind::SquadLike, {2, 3, 4, 5, 6, 7}, opt);

    std::puts("paper (MNLI): GOBO 3b err 0.69% vs K-Means 1.36% vs "
              "Linear 51.97%; GOBO lossless at 4b, K-Means at 5b, "
              "Linear at 6b.");
    std::puts("paper (STS-B): GOBO lossless at 3b, K-Means 4b, Linear "
              "5b. paper (SQuAD): GOBO 3b err 0.91%, 4b lossless.");
    return 0;
}
