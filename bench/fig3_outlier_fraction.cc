/**
 * @file
 * Regenerates paper Fig. 3: the percentage of weights detected as
 * outliers (log-probability threshold -4) in each of the 73 FC layers
 * of full-size BERT-Base, plus the model-wide average the paper quotes
 * (~0.1%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/outliers.hh"
#include "model/generate.hh"
#include "util/timer.hh"

using namespace gobo;

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv);
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);

    std::puts("Fig. 3: per-FC-layer outlier percentage, BERT-Base, "
              "threshold -4\n");

    WallTimer timer;
    std::size_t total = 0, outliers = 0;
    double max_frac = 0.0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        Tensor w = generateFcWeight(cfg, specs[i], opt.seed);
        auto split = splitOutliers(w.flat(), -4.0);
        double pct = 100.0 * split.outlierFraction();
        max_frac = std::max(max_frac, pct);
        total += w.size();
        outliers += split.outlierValues.size();
        int bar = static_cast<int>(pct * 60.0); // 1% spans the width
        std::printf("layer %2zu %-24s %5.3f%% |%-60.*s|\n", i + 1,
                    specs[i].name.c_str(), pct, bar,
                    "############################################"
                    "################");
    }

    double avg = 100.0 * static_cast<double>(outliers)
                 / static_cast<double>(total);
    std::printf("\nmodel-wide outlier fraction: %.3f%% "
                "(paper: ~0.1%% on average)\n", avg);
    std::printf("largest per-layer fraction: %.3f%% (paper: <0.4%% for "
                "all but the last layer, <1%% for the last)\n",
                max_frac);
    std::printf("census of %zu weights in %.1f s\n", total,
                timer.seconds());
    return 0;
}
