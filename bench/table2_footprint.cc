/**
 * @file
 * Regenerates paper Table II: memory footprint of BERT-Base and
 * BERT-Large (embedding tables, weights, per-word activations) at
 * sequence length 128.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/config.hh"
#include "model/footprint.hh"
#include "util/table.hh"

using namespace gobo;

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv);
    auto base = footprint(fullConfig(ModelFamily::BertBase));
    auto large = footprint(fullConfig(ModelFamily::BertLarge));

    std::puts("Table II: BERT Memory Footprint (seq length 128)");
    ConsoleTable t({"Row", "BERT-Base", "BERT-Large", "paper"});
    t.addRow({"Embedding Tables",
              ConsoleTable::num(toMiB(base.embeddingBytes), 2) + " MB",
              ConsoleTable::num(toMiB(large.embeddingBytes), 2) + " MB",
              "89.42 / 119.22 MB"});
    t.addRow({"Weights",
              ConsoleTable::num(toMiB(base.weightBytes), 2) + " MB",
              ConsoleTable::num(toMiB(large.weightBytes) / 1024.0, 2)
                  + " GB",
              "326.26 MB / 1.12 GB"});
    t.addRow({"Model Input per Word",
              ConsoleTable::num(toKiB(base.inputPerWordBytes), 0) + " KB",
              ConsoleTable::num(toKiB(large.inputPerWordBytes), 0) + " KB",
              "3 / 4 KB"});
    t.addRow({"Largest layer Acts per Word",
              ConsoleTable::num(toKiB(base.largestActPerWordBytes), 0)
                  + " KB",
              ConsoleTable::num(toKiB(large.largestActPerWordBytes), 0)
                  + " KB",
              "12 / 16 KB"});
    t.addRow({"Sequence Length", std::to_string(base.sequenceLength),
              std::to_string(large.sequenceLength), "128 / 128"});
    t.addRow({"Activations",
              ConsoleTable::num(toMiB(base.activationBytes), 1) + " MB",
              ConsoleTable::num(toMiB(large.activationBytes), 1) + " MB",
              "1.5 / 2 MB"});
    t.print(std::cout);
    return 0;
}
