/**
 * @file
 * The paper's title claim, quantified: low latency and energy
 * efficiency from compression. Streams FP32 vs GOBO-compressed models
 * through the first-order memory model and reports per-inference
 * latency, energy, and the memory-vs-compute balance.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/quantizer.hh"
#include "memsim/memsim.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::puts("Ablation: off-chip traffic, latency and energy per "
              "inference (seq 128, DDR4-class memory, accelerator-class "
              "compute)\n");

    ConsoleTable t({"Model", "Scheme", "Off-chip MB", "Latency ms",
                    "Energy uJ", "Bound", "Speedup", "Energy x"});

    MemParams params;
    for (auto family : {ModelFamily::BertBase, ModelFamily::BertLarge,
                        ModelFamily::DistilBert}) {
        auto cfg = fullConfig(family);

        auto fp32 = estimate(inferenceCost(cfg, 128), params);
        double fp32_mb = static_cast<double>(
                             inferenceCost(cfg, 128).offChipBytes())
                         / (1024.0 * 1024.0);
        t.addRow({familyName(family), "FP32",
                  ConsoleTable::num(fp32_mb, 1),
                  ConsoleTable::num(fp32.latencyMs, 2),
                  ConsoleTable::num(fp32.totalEnergyMicroJ, 0),
                  fp32.memoryBound ? "memory" : "compute", "1.00x",
                  "1.00x"});

        for (unsigned bits : {3u, 4u}) {
            ModelQuantOptions qopt = uniformOptions(
                bits, CentroidMethod::Gobo, 4);
            auto report = quantizeConfigStreaming(cfg, opt.seed, qopt);
            auto cost = inferenceCost(
                cfg, 128, report.weightCompressionRatio(),
                report.embeddingCompressionRatio());
            auto r = estimate(cost, params);
            double mb = static_cast<double>(cost.offChipBytes())
                        / (1024.0 * 1024.0);
            t.addRow({familyName(family),
                      "GOBO " + std::to_string(bits) + "b",
                      ConsoleTable::num(mb, 1),
                      ConsoleTable::num(r.latencyMs, 2),
                      ConsoleTable::num(r.totalEnergyMicroJ, 0),
                      r.memoryBound ? "memory" : "compute",
                      ConsoleTable::num(fp32.latencyMs / r.latencyMs, 2)
                          + "x",
                      ConsoleTable::num(fp32.totalEnergyMicroJ
                                            / r.totalEnergyMicroJ,
                                        2)
                          + "x"});
            std::printf("  [%s %ub done]\n", familyName(family).c_str(),
                        bits);
        }
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\npremise (paper Sec. I): single-stream BERT inference "
              "is memory-bound, so a ~10x footprint cut buys ~10x "
              "latency and off-chip energy until compute binds.");

    // Sequence-length sweep: weights stream once regardless of length,
    // while compute grows with it (quadratically once attention
    // dominates) — compression moves the memory/compute crossover to
    // much shorter sequences.
    std::puts("\nSequence-length sweep, BERT-Base (latency ms and "
              "binding resource):");
    ConsoleTable s({"Seq", "FP32 ms", "FP32 bound", "GOBO 3b ms",
                    "GOBO 3b bound", "Speedup"});
    auto cfg = fullConfig(ModelFamily::BertBase);
    ModelQuantOptions qopt = uniformOptions(3, CentroidMethod::Gobo, 4);
    auto report = quantizeConfigStreaming(cfg, opt.seed, qopt);
    for (std::size_t seq : {32u, 64u, 128u, 256u, 384u, 512u}) {
        auto fp32 = estimate(inferenceCost(cfg, seq), params);
        auto comp = estimate(
            inferenceCost(cfg, seq, report.weightCompressionRatio(),
                          report.embeddingCompressionRatio()),
            params);
        s.addRow({std::to_string(seq),
                  ConsoleTable::num(fp32.latencyMs, 2),
                  fp32.memoryBound ? "memory" : "compute",
                  ConsoleTable::num(comp.latencyMs, 2),
                  comp.memoryBound ? "memory" : "compute",
                  ConsoleTable::num(fp32.latencyMs / comp.latencyMs, 2)
                      + "x"});
    }
    s.print(std::cout);
    std::puts("\ncompression pays in full while memory-bound; past the "
              "crossover the win saturates at the compute bound.");
    return 0;
}
